#include "dcm_lint/include_graph.h"

#include <algorithm>
#include <map>
#include <set>

namespace dcm::lint {
namespace {

// The declared layer DAG: module -> direct allowed dependencies. A module
// may always include itself. Order: base layers first. Keep DESIGN.md §10
// in sync with this table.
struct Layer {
  std::string_view module;
  std::vector<std::string_view> deps;
};

const std::vector<Layer>& layers() {
  static const std::vector<Layer> kLayers = {
      {"common", {}},
      {"sim", {"common"}},
      {"fit", {"common"}},
      {"metrics", {"common", "sim"}},
      {"trace", {"common", "sim"}},
      {"bus", {"common", "sim"}},
      {"model", {"common", "fit"}},
      {"ntier", {"common", "sim", "metrics", "model", "trace", "bus"}},
      {"fault", {"common", "sim", "ntier", "bus"}},
      {"control", {"common", "sim", "metrics", "model", "ntier", "bus"}},
      {"workload", {"common", "sim", "metrics", "ntier", "trace"}},
      {"core",
       {"common", "sim", "fit", "metrics", "trace", "bus", "model", "ntier", "fault",
        "control", "workload"}},
      {"scenario", {"common", "sim", "metrics", "workload", "control", "core"}},
  };
  return kLayers;
}

/// Module of a repo-relative src path: "src/x/y.h" -> "x"; the top-level
/// umbrella "src/dcm.h" -> ""; non-src paths -> nullopt-like sentinel.
constexpr std::string_view kNotSrc = "\x01not-src";

std::string_view module_of(std::string_view path) {
  constexpr std::string_view kSrc = "src/";
  if (path.substr(0, kSrc.size()) != kSrc) return kNotSrc;
  const std::string_view rest = path.substr(kSrc.size());
  const size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";  // umbrella header
  return rest.substr(0, slash);
}

/// Module a quoted include target belongs to, resolving relative to src/:
/// "common/check.h" -> "common", "dcm.h" -> "". Targets whose first
/// component is not a declared module (and are not the umbrella) return
/// kNotSrc and are ignored by the layering check.
std::string_view module_of_target(std::string_view target) {
  const size_t slash = target.find('/');
  if (slash == std::string_view::npos) {
    return target == "dcm.h" ? std::string_view{""} : kNotSrc;
  }
  const std::string_view module = target.substr(0, slash);
  return is_known_module(module) ? module : kNotSrc;
}

std::string deps_list(std::string_view module) {
  std::string out;
  for (const std::string_view dep : allowed_deps(module)) {
    if (!out.empty()) out += ", ";
    out += dep;
  }
  return out.empty() ? std::string("nothing") : out;
}

void check_layering(const std::string& path, const std::vector<IncludeDirective>& includes,
                    std::vector<Diagnostic>& out) {
  const std::string_view from = module_of(path);
  if (from == kNotSrc) return;
  if (from.empty()) return;  // the umbrella may include any module
  if (!is_known_module(from)) {
    out.push_back({"layering-violation", path, 1,
                   "module '" + std::string(from) +
                       "' is not declared in the layer DAG; add it to "
                       "tools/dcm_lint/include_graph.cpp and DESIGN.md §10"});
    return;
  }
  const auto& deps = allowed_deps(from);
  for (const IncludeDirective& inc : includes) {
    const std::string_view to = module_of_target(inc.target);
    if (to == kNotSrc || to == from) continue;
    if (to.empty()) {
      out.push_back({"layering-violation", path, inc.line,
                     "module '" + std::string(from) +
                         "' includes the umbrella header dcm.h; the umbrella sits above "
                         "every module"});
      continue;
    }
    if (std::find(deps.begin(), deps.end(), to) == deps.end()) {
      out.push_back({"layering-violation", path, inc.line,
                     "module '" + std::string(from) + "' may not include '" +
                         std::string(to) + "' (layer contract: " + std::string(from) +
                         " -> {" + deps_list(from) + "})"});
    }
  }
}

struct CycleFinder {
  // file -> (resolved include target, line)
  std::map<std::string, std::vector<std::pair<std::string, int>>> edges;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;  // canonical cycle keys
  std::vector<Diagnostic>* out = nullptr;

  void dfs(const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    for (const auto& [target, line] : edges[node]) {
      const int c = color[target];
      if (c == 1) {
        report(target, line, node);
      } else if (c == 0) {
        dfs(target);
      }
    }
    stack.pop_back();
    color[node] = 2;
  }

  void report(const std::string& entry, int line, const std::string& from) {
    // The cycle is the stack suffix starting at `entry`.
    auto it = std::find(stack.begin(), stack.end(), entry);
    if (it == stack.end()) return;
    std::vector<std::string> cycle(it, stack.end());
    // Canonical key: rotation starting at the lexicographically smallest
    // member, so the same cycle found from different roots reports once.
    const auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::vector<std::string> canon(min_it, cycle.end());
    canon.insert(canon.end(), cycle.begin(), min_it);
    std::string key;
    for (const std::string& p : canon) key += p + ";";
    if (!reported.insert(key).second) return;

    std::string chain;
    for (const std::string& p : canon) chain += p + " -> ";
    chain += canon.front();
    out->push_back({"include-cycle", from, line, "include cycle: " + chain});
  }
};

}  // namespace

std::vector<IncludeDirective> collect_includes(const LexResult& lexed) {
  std::vector<IncludeDirective> out;
  const auto& ts = lexed.tokens;
  for (size_t i = 0; i + 2 < ts.size(); ++i) {
    if (ts[i].kind != TokenKind::kPunct || ts[i].text != "#") continue;
    if (ts[i + 1].kind != TokenKind::kIdentifier || ts[i + 1].text != "include") continue;
    if (ts[i + 1].line != ts[i].line) continue;
    const Token& target = ts[i + 2];
    if (target.kind != TokenKind::kString || target.line != ts[i].line) continue;
    if (target.text.size() < 2) continue;
    out.push_back({target.line, std::string(target.text.substr(1, target.text.size() - 2))});
  }
  return out;
}

bool is_known_module(std::string_view module) {
  for (const Layer& layer : layers()) {
    if (layer.module == module) return true;
  }
  return false;
}

const std::vector<std::string_view>& allowed_deps(std::string_view module) {
  static const std::vector<std::string_view> kEmpty;
  for (const Layer& layer : layers()) {
    if (layer.module == module) return layer.deps;
  }
  return kEmpty;
}

void run_include_passes(
    const std::vector<std::pair<std::string, const LexResult*>>& files,
    std::vector<Diagnostic>& out) {
  CycleFinder cycles;
  cycles.out = &out;
  std::set<std::string> known_paths;
  for (const auto& [path, lexed] : files) known_paths.insert(path);

  std::vector<std::string> src_files;
  for (const auto& [path, lexed] : files) {
    if (module_of(path) == kNotSrc) continue;
    src_files.push_back(path);
    const std::vector<IncludeDirective> includes = collect_includes(*lexed);
    check_layering(path, includes, out);
    for (const IncludeDirective& inc : includes) {
      const std::string resolved = "src/" + inc.target;
      if (known_paths.count(resolved) > 0) {
        cycles.edges[path].emplace_back(resolved, inc.line);
      }
    }
  }

  std::sort(src_files.begin(), src_files.end());
  for (const std::string& path : src_files) {
    if (cycles.color[path] == 0) cycles.dfs(path);
  }
}

}  // namespace dcm::lint
