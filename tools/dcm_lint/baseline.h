// Baseline files: a committed list of accepted findings so CI fails only on
// NEW findings. Format is one finding per line, tab-separated:
//
//   rule<TAB>path<TAB>line
//
// Lines starting with '#' and blank lines are ignored. Matching is exact on
// (rule, path, line); when surrounding edits shift line numbers the baseline
// entry stops matching and the finding resurfaces — regenerate with
// `dcm_lint --write-baseline` after reviewing.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "dcm_lint/rules.h"

namespace dcm::lint {

struct BaselineEntry {
  std::string rule;
  std::string path;
  int line = 0;
};

/// Parses a baseline file. Returns false (and leaves `out` untouched) when
/// the file cannot be read; malformed lines are skipped.
bool load_baseline(const std::filesystem::path& file, std::vector<BaselineEntry>& out);

/// Serializes findings in baseline format (sorted, with a header comment).
std::string format_baseline(const std::vector<Diagnostic>& diags);

/// Removes findings matched by the baseline. Each baseline entry matches at
/// most one finding, so duplicated findings on one line are not mass-waived.
std::vector<Diagnostic> apply_baseline(std::vector<Diagnostic> diags,
                                       const std::vector<BaselineEntry>& baseline);

}  // namespace dcm::lint
