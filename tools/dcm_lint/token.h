// Token model for dcm_lint's C++-ish lexer.
//
// The lexer is deliberately not a full C++ front end: rules only need
// identifiers, literals, punctuation and comments with accurate line
// numbers. Tokens hold string_views into the source buffer owned by the
// caller, so a FileContext must not outlive the buffer it was built from.
#pragma once

#include <string_view>
#include <vector>

namespace dcm::lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (new/delete/for/assert/...)
  kNumber,      // pp-number: 42, 1.0, 1e-9, 0x1F, 1'000'000ull
  kString,      // "..." including raw strings R"(...)"
  kChar,        // 'x'
  kPunct,       // operators/punctuation; ==, !=, ->, ::, <=, >=, &&, || fused
};

struct Token {
  TokenKind kind;
  std::string_view text;
  int line;  // 1-based line of the token's first character
};

// Comments are kept out of the main token stream; the suppression pass
// scans them for `dcm-lint: allow(<rule>[, <rule>...])` markers.
struct Comment {
  std::string_view text;  // without the // or /* */ delimiters
  int start_line;
  int end_line;  // == start_line for line comments
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `source`. Never fails: on malformed input (unterminated
/// string/comment) it degrades to lexing the remainder as best it can,
/// which is the right behavior for a linter.
LexResult lex(std::string_view source);

}  // namespace dcm::lint
