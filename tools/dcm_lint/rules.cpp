#include "dcm_lint/rules.h"

#include <algorithm>
#include <array>
#include <set>

namespace dcm::lint {
namespace {

bool under(std::string_view path, std::string_view prefix) {
  return path.substr(0, prefix.size()) == prefix;
}

bool in_src(std::string_view path) { return under(path, "src/"); }
bool in_src_or_tests(std::string_view path) {
  return under(path, "src/") || under(path, "tests/") || under(path, "examples/");
}
// The sweep CLI shares the determinism contract with the library: a stray
// random draw or unordered walk there breaks sweep digests all the same.
bool in_dcm_run(std::string_view path) { return under(path, "tools/dcm_run/"); }
// Examples are documentation that compiles; they must model the same
// determinism discipline the library enforces.
bool in_examples(std::string_view path) { return under(path, "examples/"); }

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Token before index i, or nullptr at the start of the file.
const Token* prev_tok(const std::vector<Token>& ts, size_t i) {
  return i > 0 ? &ts[i - 1] : nullptr;
}

const Token* next_tok(const std::vector<Token>& ts, size_t i) {
  return i + 1 < ts.size() ? &ts[i + 1] : nullptr;
}

bool is_member_access(const Token* prev) {
  return prev != nullptr && (is_punct(*prev, ".") || is_punct(*prev, "->"));
}

/// A call of exactly `name`: std::rand(), ::rand() and bare rand() all
/// match, while clock.time() (member call) and `double time() const`
/// (declaration: a non-keyword identifier directly precedes the name) do
/// not.
bool is_free_call(const std::vector<Token>& ts, size_t i, std::string_view name) {
  if (!is_ident(ts[i], name)) return false;
  const Token* next = next_tok(ts, i);
  if (next == nullptr || !is_punct(*next, "(")) return false;
  const Token* prev = prev_tok(ts, i);
  if (prev == nullptr) return true;
  if (is_member_access(prev)) return false;
  if (prev->kind == TokenKind::kIdentifier && prev->text != "return" &&
      prev->text != "co_return" && prev->text != "co_yield" && prev->text != "else" &&
      prev->text != "do" && prev->text != "case") {
    return false;
  }
  return true;
}

void report(std::vector<Diagnostic>& out, std::string_view rule, const FileContext& ctx,
            int line, std::string message) {
  out.push_back({std::string(rule), std::string(ctx.path), line, std::move(message)});
}

// ---------------------------------------------------------------------------
// no-wall-clock: simulation results must be a function of the seed alone;
// sim time comes from sim::Engine::now(), never the host clock. Scoped to
// hot-path-reachable functions: a clock read in a helper the dispatch loop
// calls is an error wherever the helper lives, while cold timing code (e.g.
// the macro-bench wall-time measurement around run_experiment) is legal.

class NoWallClock final : public Rule {
 public:
  std::string_view id() const override { return "no-wall-clock"; }
  bool applies_to(std::string_view path) const override { return in_src(path); }

  void run(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    static constexpr std::array<std::string_view, 9> kClockIdents = {
        "system_clock", "steady_clock",  "high_resolution_clock",
        "gettimeofday", "clock_gettime", "timespec_get",
        "localtime",    "gmtime",        "mktime"};
    const auto& ts = ctx.tokens;
    for (size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kIdentifier) continue;
      if (!ctx.hot(ts[i].line)) continue;
      const bool named_clock =
          std::find(kClockIdents.begin(), kClockIdents.end(), ts[i].text) !=
          kClockIdents.end();
      if (named_clock || is_free_call(ts, i, "time") || is_free_call(ts, i, "clock")) {
        report(out, id(), ctx, ts[i].line,
               "wall-clock access '" + std::string(ts[i].text) +
                   "' on the hot path; sim code must take time from sim::Engine::now()");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// no-ambient-randomness: every stochastic draw flows through common/rng so
// experiments replay bit-identically from the master seed. Inside src/ the
// rule follows hot-path reachability; the sweep CLI and examples are
// covered whole-file — they pick seeds and build configs, so a stray draw
// anywhere in them breaks replay even though no line is dispatch-reachable.

class NoAmbientRandomness final : public Rule {
 public:
  std::string_view id() const override { return "no-ambient-randomness"; }
  bool applies_to(std::string_view path) const override {
    return in_src(path) || in_dcm_run(path) || in_examples(path);
  }

  void run(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    static constexpr std::array<std::string_view, 7> kIdents = {
        "random_device", "srand", "srandom", "drand48", "lrand48", "mrand48", "rand_r"};
    const bool whole_file = in_dcm_run(ctx.path) || in_examples(ctx.path);
    const auto& ts = ctx.tokens;
    for (size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kIdentifier) continue;
      if (!whole_file && !ctx.hot(ts[i].line)) continue;
      const bool named = std::find(kIdents.begin(), kIdents.end(), ts[i].text) != kIdents.end();
      if (named || is_free_call(ts, i, "rand") || is_free_call(ts, i, "random")) {
        report(out, id(), ctx, ts[i].line,
               "ambient randomness '" + std::string(ts[i].text) +
                   "'; draw from a seeded dcm::Rng stream (common/rng.h)");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// no-unordered-iteration: iterating an unordered container feeds
// implementation-defined order into event scheduling or control decisions.
// Detected: range-for whose range expression (a) mentions an unordered_*
// type directly, or (b) names a variable this file declared with an
// unordered_* type.

class NoUnorderedIteration final : public Rule {
 public:
  std::string_view id() const override { return "no-unordered-iteration"; }
  // Tree-wide: hash-order iteration anywhere in the library (or the CLI and
  // examples that feed it) can leak implementation-defined order into event
  // scheduling, control decisions, or result emission.
  bool applies_to(std::string_view path) const override {
    return in_src(path) || in_dcm_run(path) || in_examples(path);
  }

  void run(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& ts = ctx.tokens;
    const std::set<std::string_view> unordered_vars = collect_unordered_vars(ts);

    for (size_t i = 0; i < ts.size(); ++i) {
      if (!is_ident(ts[i], "for")) continue;
      const Token* open = next_tok(ts, i);
      if (open == nullptr || !is_punct(*open, "(")) continue;
      // Find the top-level `:` and the matching `)`.
      int depth = 0;
      size_t colon = 0, close = 0;
      for (size_t j = i + 1; j < ts.size(); ++j) {
        if (ts[j].kind != TokenKind::kPunct) continue;
        if (ts[j].text == "(" || ts[j].text == "[" || ts[j].text == "{") {
          ++depth;
        } else if (ts[j].text == ")" || ts[j].text == "]" || ts[j].text == "}") {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        } else if (ts[j].text == ":" && depth == 1 && colon == 0) {
          colon = j;
        }
      }
      if (colon == 0 || close == 0) continue;  // not a range-for
      for (size_t j = colon + 1; j < close; ++j) {
        if (ts[j].kind != TokenKind::kIdentifier) continue;
        const bool unordered_type = ts[j].text.substr(0, 10) == "unordered_";
        const bool unordered_var = unordered_vars.count(ts[j].text) > 0;
        if (unordered_type || unordered_var) {
          report(out, id(), ctx, ts[i].line,
                 "range-for over unordered container '" + std::string(ts[j].text) +
                     "'; iteration order is implementation-defined and leaks into "
                     "event order — use an ordered container or sort first");
          break;
        }
      }
    }
  }

 private:
  // Names declared as `std::unordered_map<...> name` (also &/*/const forms).
  static std::set<std::string_view> collect_unordered_vars(const std::vector<Token>& ts) {
    static constexpr std::array<std::string_view, 4> kTypes = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    std::set<std::string_view> vars;
    for (size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kIdentifier) continue;
      if (std::find(kTypes.begin(), kTypes.end(), ts[i].text) == kTypes.end()) continue;
      size_t j = i + 1;
      if (j < ts.size() && is_punct(ts[j], "<")) {
        int depth = 0;
        for (; j < ts.size(); ++j) {
          if (ts[j].kind != TokenKind::kPunct) continue;
          if (ts[j].text == "<") ++depth;
          else if (ts[j].text == ">" && --depth == 0) { ++j; break; }
        }
      }
      while (j < ts.size() &&
             (is_punct(ts[j], "&") || is_punct(ts[j], "*") || is_ident(ts[j], "const"))) {
        ++j;
      }
      if (j < ts.size() && ts[j].kind == TokenKind::kIdentifier) vars.insert(ts[j].text);
    }
    return vars;
  }
};

// ---------------------------------------------------------------------------
// no-raw-assert: assert() vanishes under NDEBUG, so release builds skip the
// invariant; DCM_CHECK stays on and DCM_DCHECK is the sanctioned debug-only
// form.

class NoRawAssert final : public Rule {
 public:
  std::string_view id() const override { return "no-raw-assert"; }
  bool applies_to(std::string_view path) const override { return in_src_or_tests(path); }

  void run(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& ts = ctx.tokens;
    for (size_t i = 0; i < ts.size(); ++i) {
      if (is_free_call(ts, i, "assert")) {
        report(out, id(), ctx, ts[i].line,
               "raw assert(); use DCM_CHECK (always on) or DCM_DCHECK (debug-only) "
               "from common/check.h");
      }
      // #include <cassert> / <assert.h> / "assert.h"
      if (is_punct(ts[i], "#") && i + 1 < ts.size() && is_ident(ts[i + 1], "include") &&
          ts[i + 1].line == ts[i].line) {
        if (include_names_assert(ts, i + 2, ts[i].line)) {
          report(out, id(), ctx, ts[i].line,
                 "includes the assert header; use common/check.h instead");
        }
      }
    }
  }

 private:
  static bool include_names_assert(const std::vector<Token>& ts, size_t i, int line) {
    if (i >= ts.size() || ts[i].line != line) return false;
    if (ts[i].kind == TokenKind::kString) {
      return ts[i].text.find("assert.h") != std::string_view::npos;
    }
    if (is_punct(ts[i], "<")) {
      for (size_t j = i + 1; j < ts.size() && ts[j].line == line; ++j) {
        if (is_punct(ts[j], ">")) break;
        if (is_ident(ts[j], "cassert") || is_ident(ts[j], "assert")) return true;
      }
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// no-float-eq: exact equality on floats is almost never what simulation or
// fitting code means. Token-level heuristic: flag ==/!= when either operand
// next to the operator is a floating-point literal.

class NoFloatEq final : public Rule {
 public:
  std::string_view id() const override { return "no-float-eq"; }
  bool applies_to(std::string_view path) const override { return in_src_or_tests(path); }

  void run(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& ts = ctx.tokens;
    for (size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kPunct || (ts[i].text != "==" && ts[i].text != "!="))
        continue;
      const Token* lhs = prev_tok(ts, i);
      const Token* rhs = next_tok(ts, i);
      // Allow a unary sign on the right: x == -1.0
      if (rhs != nullptr && (is_punct(*rhs, "-") || is_punct(*rhs, "+"))) {
        rhs = next_tok(ts, i + 1);
      }
      if ((lhs != nullptr && is_float_literal(*lhs)) ||
          (rhs != nullptr && is_float_literal(*rhs))) {
        report(out, id(), ctx, ts[i].line,
               "floating-point equality comparison; compare with an explicit "
               "tolerance (or EXPECT_NEAR in tests)");
      }
    }
  }

 private:
  static bool is_float_literal(const Token& t) {
    if (t.kind != TokenKind::kNumber) return false;
    const std::string_view s = t.text;
    const bool hex = s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X');
    if (hex) {
      return s.find('p') != std::string_view::npos || s.find('P') != std::string_view::npos;
    }
    return s.find('.') != std::string_view::npos ||
           s.find('e') != std::string_view::npos || s.find('E') != std::string_view::npos;
  }
};

// ---------------------------------------------------------------------------
// no-raw-new-in-hot-path: PR 1 made the event core allocation-free at steady
// state, and the request-slab/arena refactor extended that guarantee through
// the tier/server request path; raw new/delete in a function the dispatch
// loop reaches would quietly reintroduce per-event or per-request
// allocations. Scope is hot-path reachability (anywhere under src/), not a
// directory list: a helper in src/common called per event is covered, cold
// setup code is not. Placement new for SBO/slab internals is expected to
// carry an explicit allow() suppression.

class NoRawNewInHotPath final : public Rule {
 public:
  std::string_view id() const override { return "no-raw-new-in-hot-path"; }
  bool applies_to(std::string_view path) const override { return in_src(path); }

  void run(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    const auto& ts = ctx.tokens;
    for (size_t i = 0; i < ts.size(); ++i) {
      if (!ctx.hot(ts[i].line)) continue;
      if (is_ident(ts[i], "new")) {
        // `#include <new>` names the header, not the operator.
        const Token* prev = prev_tok(ts, i);
        if (prev != nullptr && is_punct(*prev, "<") && i >= 2 &&
            is_ident(ts[i - 2], "include")) {
          continue;
        }
        report(out, id(), ctx, ts[i].line,
               "raw 'new' in the sim hot path; use the engine's slab/SBO storage "
               "(suppress explicitly for placement-new internals)");
      } else if (is_ident(ts[i], "delete")) {
        const Token* prev = prev_tok(ts, i);
        if (prev != nullptr && is_punct(*prev, "=")) continue;  // = delete
        report(out, id(), ctx, ts[i].line,
               "raw 'delete' in the sim hot path; use the engine's slab/SBO storage "
               "(suppress explicitly for SBO destroy internals)");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// no-pointer-keyed-order: an ordered map/set keyed on a pointer orders its
// elements by address, and addresses differ run to run — iterating one feeds
// ASLR into event order and result digests. (Pointer-keyed *unordered*
// containers are legal as lookups; iterating them is no-unordered-iteration's
// business.)

class NoPointerKeyedOrder final : public Rule {
 public:
  std::string_view id() const override { return "no-pointer-keyed-order"; }
  bool applies_to(std::string_view path) const override {
    return in_src(path) || in_dcm_run(path) || in_examples(path);
  }

  void run(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    static constexpr std::array<std::string_view, 4> kContainers = {"map", "set",
                                                                   "multimap", "multiset"};
    const auto& ts = ctx.tokens;
    for (size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kIdentifier) continue;
      if (std::find(kContainers.begin(), kContainers.end(), ts[i].text) ==
          kContainers.end()) {
        continue;
      }
      if (!is_punct(ts[i + 1], "<")) continue;
      // Walk the key type: tokens until the ',' or '>' that closes it.
      int angle = 1;
      int round = 0;
      bool pointer_key = false;
      for (size_t j = i + 2; j < ts.size() && angle > 0; ++j) {
        const Token& t = ts[j];
        if (t.kind != TokenKind::kPunct) continue;
        if (t.text == "<") ++angle;
        else if (t.text == ">") --angle;
        else if (t.text == "(") ++round;
        else if (t.text == ")") --round;
        else if (t.text == "," && angle == 1 && round == 0) break;
        else if (t.text == "*" && round == 0) pointer_key = true;
      }
      if (pointer_key) {
        report(out, id(), ctx, ts[i].line,
               "ordered '" + std::string(ts[i].text) +
                   "' keyed on a pointer; iteration order is the address order, which "
                   "differs run to run — key on a stable id (name, index) instead");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// no-unanchored-float-accumulate: incrementally updating a long-lived
// float/double (`sum_ += x` on add, `sum_ -= x` on evict) drifts away from
// the value a fresh recompute would give, and the drift is
// evaluation-order-dependent — the exact bug class fixed by hand in
// SlidingRate (re-anchor `sum_ = 0.0` on empty window) and CpuScheduler
// (virtual-clock re-anchor). The rule fires on += / -= applied inside a loop
// to a float variable that outlives the enclosing function (class member or
// namespace-scope), unless the file re-anchors the variable with a plain
// assignment somewhere. Per-call local accumulators are deterministic and
// exempt.

class NoUnanchoredFloatAccumulate final : public Rule {
 public:
  std::string_view id() const override { return "no-unanchored-float-accumulate"; }
  bool applies_to(std::string_view path) const override { return in_src(path); }

  void run(const FileContext& ctx, std::vector<Diagnostic>& out) const override {
    if (ctx.tree == nullptr) return;
    const auto file_it = ctx.tree->by_file.find(std::string(ctx.path));
    if (file_it == ctx.tree->by_file.end()) return;
    const FileFacts& facts = file_it->second;
    const auto& ts = ctx.tokens;

    for (const FunctionDef& fn : facts.functions) {
      for (const auto& [lo, hi] : fn.loop_ranges) {
        for (size_t i = lo; i < hi && i + 1 < ts.size(); ++i) {
          if (ts[i].kind != TokenKind::kIdentifier) continue;
          // `v += e` or `v[k] += e`.
          size_t op = i + 1;
          if (is_punct(ts[op], "[")) {
            int depth = 0;
            for (; op < hi; ++op) {
              if (ts[op].kind != TokenKind::kPunct) continue;
              if (ts[op].text == "[") ++depth;
              else if (ts[op].text == "]" && --depth == 0) { ++op; break; }
            }
          }
          if (op >= ts.size() || ts[op].kind != TokenKind::kPunct ||
              (ts[op].text != "+=" && ts[op].text != "-=")) {
            continue;
          }
          const std::string_view name = ts[i].text;
          if (fn.local_floats.count(name) > 0) continue;  // fresh per call
          const bool long_lived =
              facts.long_lived_floats.count(name) > 0 ||
              ctx.tree->long_lived_floats.count(name) > 0;
          if (!long_lived) continue;
          if (has_reanchor(facts, ts, name)) continue;
          report(out, id(), ctx, ts[i].line,
                 "'" + std::string(name) +
                     "' accumulates " + std::string(ts[op].text) +
                     " in a loop with no re-anchoring assignment; incremental float "
                     "state drifts from the recomputed value (re-anchor like "
                     "SlidingRate/CpuScheduler, or recompute)");
        }
      }
    }
  }

 private:
  /// A plain `name = …` assignment anywhere in this file, other than the
  /// declaration's own initializer, re-anchors the accumulator.
  static bool has_reanchor(const FileFacts& facts, const std::vector<Token>& ts,
                           std::string_view name) {
    for (size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kIdentifier || ts[i].text != name) continue;
      if (facts.float_decl_name_tokens.count(i) > 0) continue;
      size_t op = i + 1;
      if (is_punct(ts[op], "[")) {
        int depth = 0;
        for (; op < ts.size(); ++op) {
          if (ts[op].kind != TokenKind::kPunct) continue;
          if (ts[op].text == "[") ++depth;
          else if (ts[op].text == "]" && --depth == 0) { ++op; break; }
        }
      }
      if (op < ts.size() && is_punct(ts[op], "=")) return true;
    }
    return false;
  }
};

}  // namespace

const std::vector<std::unique_ptr<Rule>>& default_rules() {
  static const std::vector<std::unique_ptr<Rule>>* rules = [] {
    auto* v = new std::vector<std::unique_ptr<Rule>>();
    v->push_back(std::make_unique<NoWallClock>());
    v->push_back(std::make_unique<NoAmbientRandomness>());
    v->push_back(std::make_unique<NoUnorderedIteration>());
    v->push_back(std::make_unique<NoRawAssert>());
    v->push_back(std::make_unique<NoFloatEq>());
    v->push_back(std::make_unique<NoRawNewInHotPath>());
    v->push_back(std::make_unique<NoPointerKeyedOrder>());
    v->push_back(std::make_unique<NoUnanchoredFloatAccumulate>());
    return v;
  }();
  return *rules;
}

bool is_known_rule(std::string_view id) {
  if (id == "header-self-sufficiency") return true;
  if (id == "layering-violation" || id == "include-cycle") return true;
  for (const auto& rule : default_rules()) {
    if (rule->id() == id) return true;
  }
  return false;
}

}  // namespace dcm::lint
