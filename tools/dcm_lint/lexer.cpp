#include "dcm_lint/token.h"

#include <cctype>
#include <string>

namespace dcm::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Two-character operators the rules care about. Everything else is emitted
// one character at a time, which is fine for pattern matching. Compound
// assignments fuse so the accumulate rule can tell `x += y` from `x + (=)`
// and the re-anchor scan can tell a plain `=` from `+=`/`==`.
bool fuses(char a, char b) {
  switch (a) {
    case '=': return b == '=';
    case '!': return b == '=';
    case '<': return b == '=';
    case '>': return b == '=';
    case '-': return b == '>' || b == '=';
    case '+': return b == '=';
    case '*': return b == '=';
    case '/': return b == '=';
    case ':': return b == ':';
    case '&': return b == '&';
    case '|': return b == '|';
    default: return false;
  }
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexResult run() {
    // A UTF-8 byte-order mark would otherwise desync the first token into
    // three stray punctuation bytes.
    if (src_.size() >= 3 && src_[0] == '\xEF' && src_[1] == '\xBB' && src_[2] == '\xBF') {
      pos_ = 3;
    }
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        // Line splice.
        ++line_;
        pos_ += 2;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && peek(1) == '/') {
        line_comment();
      } else if (c == '/' && peek(1) == '*') {
        block_comment();
      } else if (is_ident_start(c)) {
        identifier_or_literal_prefix();
      } else if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        number();
      } else if (c == '"') {
        string_literal(pos_);
      } else if (c == '\'') {
        char_literal();
      } else {
        punct();
      }
    }
    return std::move(result_);
  }

 private:
  char peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void emit(TokenKind kind, size_t start, size_t end, int line) {
    result_.tokens.push_back({kind, src_.substr(start, end - start), line});
  }

  void line_comment() {
    const size_t start = pos_ + 2;
    const int start_line = line_;
    // A backslash (optionally followed by \r) at the end of the line splices
    // the next physical line into the comment — treating it as code would
    // desync every token after it.
    size_t end = src_.find('\n', start);
    while (end != std::string_view::npos) {
      size_t last = end;
      if (last > start && src_[last - 1] == '\r') --last;
      if (last > start && src_[last - 1] == '\\') {
        ++line_;  // the comment swallows this newline
        end = src_.find('\n', end + 1);
      } else {
        break;
      }
    }
    const size_t stop = end == std::string_view::npos ? src_.size() : end;
    result_.comments.push_back({src_.substr(start, stop - start), start_line, line_});
    pos_ = stop;  // final newline handled by the main loop
  }

  void block_comment() {
    const size_t start = pos_ + 2;
    const int start_line = line_;
    size_t end = src_.find("*/", start);
    size_t stop = end == std::string_view::npos ? src_.size() : end;
    for (size_t i = start; i < stop; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    result_.comments.push_back({src_.substr(start, stop - start), start_line, line_});
    pos_ = end == std::string_view::npos ? src_.size() : end + 2;
  }

  // An identifier, unless it is a string/char-literal encoding prefix
  // (u8"...", L'x', R"(...)", u8R"(...)").
  void identifier_or_literal_prefix() {
    const size_t start = pos_;
    const int line = line_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
    const std::string_view text = src_.substr(start, pos_ - start);
    const char next = pos_ < src_.size() ? src_[pos_] : '\0';
    const bool str_prefix = text == "u8" || text == "u" || text == "U" || text == "L";
    const bool raw_prefix =
        text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR";
    if (next == '"' && raw_prefix) {
      raw_string(start, line);
      return;
    }
    if (next == '"' && str_prefix) {
      string_literal(start);
      return;
    }
    if (next == '\'' && str_prefix) {
      char_literal_from(start, line);
      return;
    }
    emit(TokenKind::kIdentifier, start, pos_, line);
  }

  // pp-number: digits, idents, dots, digit separators, and exponent signs.
  void number() {
    const size_t start = pos_;
    const int line = line_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (is_ident_char(c) || c == '.') {
        ++pos_;
      } else if (c == '\'' && is_ident_char(peek(1))) {
        pos_ += 2;  // digit separator
      } else if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
        } else {
          break;
        }
      } else {
        break;
      }
    }
    emit(TokenKind::kNumber, start, pos_, line);
  }

  // `token_start` may precede pos_ when the literal has an encoding prefix.
  void string_literal(size_t token_start) {
    const int line = line_;
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
      } else if (c == '"') {
        ++pos_;
        break;
      } else if (c == '\n') {
        break;  // unterminated; recover at the newline
      } else {
        ++pos_;
      }
    }
    emit(TokenKind::kString, token_start, pos_, line);
  }

  void raw_string(size_t token_start, int line) {
    ++pos_;  // opening quote
    const size_t delim_start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != '\n') ++pos_;
    const std::string_view delim = src_.substr(delim_start, pos_ - delim_start);
    // Find )delim"
    std::string closer(")");
    closer.append(delim);
    closer.push_back('"');
    size_t end = src_.find(closer, pos_);
    size_t stop = end == std::string_view::npos ? src_.size() : end + closer.size();
    for (size_t i = pos_; i < stop; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = stop;
    emit(TokenKind::kString, token_start, pos_, line);
  }

  void char_literal() { char_literal_from(pos_, line_); }

  void char_literal_from(size_t token_start, int line) {
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
      } else if (c == '\'') {
        ++pos_;
        break;
      } else if (c == '\n') {
        break;
      } else {
        ++pos_;
      }
    }
    emit(TokenKind::kChar, token_start, pos_, line);
  }

  void punct() {
    const size_t start = pos_;
    const int line = line_;
    if (pos_ + 1 < src_.size() && fuses(src_[pos_], src_[pos_ + 1])) {
      pos_ += 2;
    } else {
      ++pos_;
    }
    emit(TokenKind::kPunct, start, pos_, line);
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  LexResult result_;
};

}  // namespace

LexResult lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace dcm::lint
