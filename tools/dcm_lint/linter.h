// Driver: lex a file, run every applicable rule, drop suppressed findings.
//
// Suppression: `// dcm-lint: allow(rule-id[, rule-id...])` placed on the
// offending line or on the line directly above it. A block comment spanning
// lines [a, b] suppresses the named rules on lines [a, b + 1]. A comment may
// carry several allow(...) groups. Naming a rule that does not exist is
// itself reported (rule id `unknown-suppression`) so typos cannot silently
// disable enforcement.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "dcm_lint/rules.h"

namespace dcm::lint {

/// Lints in-memory content as if it lived at `path` (repo-relative, '/'
/// separators). This is the seam the gtest fixture corpus drives: fixtures
/// are presented under virtual paths inside each rule's scope.
std::vector<Diagnostic> lint_source(std::string_view path, std::string_view content);

/// Reads and lints one file; `path` is used for scoping and reporting.
std::vector<Diagnostic> lint_file(const std::filesystem::path& file, std::string_view path);

/// Walks `roots` (repo-relative directories under `repo_root`), lints every
/// .h/.hpp/.cc/.cpp, and returns all findings sorted by (path, line, rule).
/// The linter's own fixture corpus (tests/tools/dcm_lint/fixtures) is
/// skipped — those files violate rules on purpose.
std::vector<Diagnostic> lint_tree(const std::filesystem::path& repo_root,
                                  const std::vector<std::string>& roots);

}  // namespace dcm::lint
