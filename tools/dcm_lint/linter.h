// Driver: lex every file, build whole-tree facts (hot-path reachability,
// include graph), run every applicable rule, drop suppressed findings.
//
// Suppression: `// dcm-lint: allow(rule-id[, rule-id...])`.
//   - A trailing comment (code precedes it on the same line) suppresses the
//     named rules on the comment's own line(s) only.
//   - A standalone comment suppresses them on the first following non-blank
//     line (whitespace-only lines are skipped; the next comment or code line
//     is the target).
// A comment may carry several allow(...) groups. Naming a rule that does not
// exist is itself reported (rule id `unknown-suppression`) so typos cannot
// silently disable enforcement. Suppressions also apply to the tree-level
// passes (layering-violation, include-cycle) at the reported line.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "dcm_lint/rules.h"

namespace dcm::lint {

/// One in-memory file presented to the linter under a repo-relative path
/// ('/' separators).
struct SourceFile {
  std::string path;
  std::string content;
};

/// Lints a set of files as one tree: cross-file passes (layering, include
/// cycles, hot-path reachability) see all of them at once. Findings are
/// sorted by (path, line, rule).
std::vector<Diagnostic> lint_sources(const std::vector<SourceFile>& files);

/// Lints in-memory content as if it lived at `path`. Tree facts are built
/// from this single file, so hot-path seeds defined inside it (a `Server`
/// method, say) still anchor reachability. This is the seam the gtest
/// fixture corpus drives.
std::vector<Diagnostic> lint_source(std::string_view path, std::string_view content);

/// Reads and lints one file; `path` is used for scoping and reporting.
std::vector<Diagnostic> lint_file(const std::filesystem::path& file, std::string_view path);

/// Walks `roots` (repo-relative directories under `repo_root`), lints every
/// .h/.hpp/.cc/.cpp as one tree, and returns all findings sorted by
/// (path, line, rule). The linter's own fixture corpus
/// (tests/tools/dcm_lint/fixtures) is skipped — those files violate rules
/// on purpose.
std::vector<Diagnostic> lint_tree(const std::filesystem::path& repo_root,
                                  const std::vector<std::string>& roots);

}  // namespace dcm::lint
