#include "dcm_lint/linter.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "dcm_lint/include_graph.h"

namespace dcm::lint {
namespace {

namespace fs = std::filesystem;

struct Suppressions {
  // line -> rule ids allowed on that line
  std::map<int, std::set<std::string>> allowed;
  std::vector<Diagnostic> unknown;  // typo'd rule names
};

void trim(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
}

/// 1-based line numbers that contain any non-whitespace character.
std::set<int> nonblank_lines(std::string_view content) {
  std::set<int> out;
  int line = 1;
  bool seen = false;
  for (const char c : content) {
    if (c == '\n') {
      if (seen) out.insert(line);
      ++line;
      seen = false;
    } else if (c != ' ' && c != '\t' && c != '\r') {
      seen = true;
    }
  }
  if (seen) out.insert(line);
  return out;
}

Suppressions collect_suppressions(std::string_view path, std::string_view content,
                                  const LexResult& lexed) {
  static constexpr std::string_view kMarker = "dcm-lint:";
  static constexpr std::string_view kAllow = "allow(";
  Suppressions result;

  const std::set<int> nonblank = nonblank_lines(content);
  std::set<int> token_lines;
  for (const Token& t : lexed.tokens) token_lines.insert(t.line);

  for (const Comment& comment : lexed.comments) {
    // Scope: a comment sharing a line with code covers its own line(s); a
    // standalone comment pins to the first following non-blank line.
    std::vector<int> scope;
    bool shares_code_line = false;
    for (int line = comment.start_line; line <= comment.end_line; ++line) {
      if (token_lines.count(line) > 0) shares_code_line = true;
    }
    if (shares_code_line) {
      for (int line = comment.start_line; line <= comment.end_line; ++line) {
        scope.push_back(line);
      }
    } else {
      const auto next = nonblank.upper_bound(comment.end_line);
      if (next != nonblank.end()) scope.push_back(*next);
    }

    size_t pos = comment.text.find(kMarker);
    while (pos != std::string_view::npos) {
      size_t open = comment.text.find(kAllow, pos + kMarker.size());
      if (open == std::string_view::npos) break;
      size_t close = comment.text.find(')', open);
      if (close == std::string_view::npos) break;
      std::string_view list =
          comment.text.substr(open + kAllow.size(), close - open - kAllow.size());
      while (!list.empty()) {
        const size_t comma = list.find(',');
        std::string_view name = list.substr(0, comma);
        trim(name);
        if (!name.empty()) {
          if (!is_known_rule(name)) {
            result.unknown.push_back(
                {"unknown-suppression", std::string(path), comment.start_line,
                 "allow() names unknown rule '" + std::string(name) + "'"});
          }
          for (const int line : scope) {
            result.allowed[line].insert(std::string(name));
          }
        }
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
      }
      pos = comment.text.find(kMarker, close);
    }
  }
  return result;
}

bool suppressed(const Suppressions& sup, const Diagnostic& diag) {
  const auto it = sup.allowed.find(diag.line);
  return it != sup.allowed.end() && it->second.count(diag.rule) > 0;
}

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

void sort_diags(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
}

}  // namespace

std::vector<Diagnostic> lint_sources(const std::vector<SourceFile>& files) {
  // Lex everything first: tree passes and per-file rules share one lex.
  std::vector<LexResult> lexed(files.size());
  std::vector<Suppressions> sups(files.size());
  std::vector<std::pair<std::string, const LexResult*>> pairs;
  pairs.reserve(files.size());
  std::map<std::string, size_t> index_of;
  for (size_t i = 0; i < files.size(); ++i) {
    lexed[i] = lex(files[i].content);
    sups[i] = collect_suppressions(files[i].path, files[i].content, lexed[i]);
    pairs.emplace_back(files[i].path, &lexed[i]);
    index_of.emplace(files[i].path, i);
  }

  const TreeFacts tree = build_tree_facts(pairs);

  std::vector<Diagnostic> diags;
  for (size_t i = 0; i < files.size(); ++i) {
    diags.insert(diags.end(), sups[i].unknown.begin(), sups[i].unknown.end());
    const FileContext ctx{files[i].path, lexed[i].tokens, lexed[i].comments, &tree};
    for (const auto& rule : default_rules()) {
      if (!rule->applies_to(files[i].path)) continue;
      std::vector<Diagnostic> found;
      rule->run(ctx, found);
      for (Diagnostic& d : found) {
        if (!suppressed(sups[i], d)) diags.push_back(std::move(d));
      }
    }
  }

  std::vector<Diagnostic> tree_diags;
  run_include_passes(pairs, tree_diags);
  for (Diagnostic& d : tree_diags) {
    const auto it = index_of.find(d.path);
    if (it != index_of.end() && suppressed(sups[it->second], d)) continue;
    diags.push_back(std::move(d));
  }

  sort_diags(diags);
  return diags;
}

std::vector<Diagnostic> lint_source(std::string_view path, std::string_view content) {
  return lint_sources({{std::string(path), std::string(content)}});
}

std::vector<Diagnostic> lint_file(const fs::path& file, std::string_view path) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return {{"io-error", std::string(path), 0, "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(path, buffer.str());
}

std::vector<Diagnostic> lint_tree(const fs::path& repo_root,
                                  const std::vector<std::string>& roots) {
  std::vector<fs::path> paths;
  for (const std::string& root : roots) {
    const fs::path dir = repo_root / root;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path())) continue;
      const std::string rel =
          fs::relative(entry.path(), repo_root).generic_string();
      if (rel.find("tests/tools/dcm_lint/fixtures") != std::string::npos) continue;
      paths.push_back(entry.path());
    }
  }
  // Directory iteration order is filesystem-dependent; sort so the linter's
  // own output is deterministic.
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  std::vector<Diagnostic> diags;
  files.reserve(paths.size());
  for (const fs::path& file : paths) {
    const std::string rel = fs::relative(file, repo_root).generic_string();
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      diags.push_back({"io-error", rel, 0, "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.push_back({rel, buffer.str()});
  }

  std::vector<Diagnostic> found = lint_sources(files);
  diags.insert(diags.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  sort_diags(diags);
  return diags;
}

}  // namespace dcm::lint
