#include "dcm_lint/linter.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace dcm::lint {
namespace {

namespace fs = std::filesystem;

struct Suppressions {
  // line -> rule ids allowed on that line
  std::map<int, std::set<std::string>> allowed;
  std::vector<Diagnostic> unknown;  // typo'd rule names
};

void trim(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
}

Suppressions collect_suppressions(std::string_view path,
                                  const std::vector<Comment>& comments) {
  static constexpr std::string_view kMarker = "dcm-lint:";
  static constexpr std::string_view kAllow = "allow(";
  Suppressions result;
  for (const Comment& comment : comments) {
    size_t pos = comment.text.find(kMarker);
    while (pos != std::string_view::npos) {
      size_t open = comment.text.find(kAllow, pos + kMarker.size());
      if (open == std::string_view::npos) break;
      size_t close = comment.text.find(')', open);
      if (close == std::string_view::npos) break;
      std::string_view list =
          comment.text.substr(open + kAllow.size(), close - open - kAllow.size());
      while (!list.empty()) {
        const size_t comma = list.find(',');
        std::string_view name = list.substr(0, comma);
        trim(name);
        if (!name.empty()) {
          if (!is_known_rule(name)) {
            result.unknown.push_back(
                {"unknown-suppression", std::string(path), comment.start_line,
                 "allow() names unknown rule '" + std::string(name) + "'"});
          }
          for (int line = comment.start_line; line <= comment.end_line + 1; ++line) {
            result.allowed[line].insert(std::string(name));
          }
        }
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
      }
      pos = comment.text.find(kMarker, close);
    }
  }
  return result;
}

bool suppressed(const Suppressions& sup, const Diagnostic& diag) {
  const auto it = sup.allowed.find(diag.line);
  return it != sup.allowed.end() && it->second.count(diag.rule) > 0;
}

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

void sort_diags(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
}

}  // namespace

std::vector<Diagnostic> lint_source(std::string_view path, std::string_view content) {
  const LexResult lexed = lex(content);
  const Suppressions sup = collect_suppressions(path, lexed.comments);
  const FileContext ctx{path, lexed.tokens, lexed.comments};

  std::vector<Diagnostic> diags = sup.unknown;
  for (const auto& rule : default_rules()) {
    if (!rule->applies_to(path)) continue;
    std::vector<Diagnostic> found;
    rule->run(ctx, found);
    for (Diagnostic& d : found) {
      if (!suppressed(sup, d)) diags.push_back(std::move(d));
    }
  }
  sort_diags(diags);
  return diags;
}

std::vector<Diagnostic> lint_file(const fs::path& file, std::string_view path) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return {{"io-error", std::string(path), 0, "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  return lint_source(path, content);
}

std::vector<Diagnostic> lint_tree(const fs::path& repo_root,
                                  const std::vector<std::string>& roots) {
  std::vector<Diagnostic> diags;
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    const fs::path dir = repo_root / root;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path())) continue;
      const std::string rel =
          fs::relative(entry.path(), repo_root).generic_string();
      if (rel.find("tests/tools/dcm_lint/fixtures") != std::string::npos) continue;
      files.push_back(entry.path());
    }
  }
  // Directory iteration order is filesystem-dependent; sort so the linter's
  // own output is deterministic.
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    const std::string rel = fs::relative(file, repo_root).generic_string();
    std::vector<Diagnostic> found = lint_file(file, rel);
    diags.insert(diags.end(), std::make_move_iterator(found.begin()),
                 std::make_move_iterator(found.end()));
  }
  sort_diags(diags);
  return diags;
}

}  // namespace dcm::lint
