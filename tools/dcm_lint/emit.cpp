#include "dcm_lint/emit.h"

#include <set>
#include <sstream>

namespace dcm::lint {
namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "{\"findings\":[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i > 0) out << ",";
    out << "\n  {\"rule\":\"" << json_escape(d.rule) << "\",\"path\":\""
        << json_escape(d.path) << "\",\"line\":" << d.line << ",\"message\":\""
        << json_escape(d.message) << "\"}";
  }
  if (!diags.empty()) out << "\n";
  out << "]}\n";
  return out.str();
}

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  std::set<std::string> rule_ids;
  for (const Diagnostic& d : diags) rule_ids.insert(d.rule);

  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"dcm_lint\",\n"
      << "          \"informationUri\": \"https://example.invalid/dcm\",\n"
      << "          \"rules\": [";
  bool first = true;
  for (const std::string& id : rule_ids) {
    if (!first) out << ",";
    first = false;
    out << "\n            {\"id\": \"" << json_escape(id) << "\"}";
  }
  if (!rule_ids.empty()) out << "\n          ";
  out << "]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i > 0) out << ",";
    out << "\n        {\n"
        << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(d.message) << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \"" << json_escape(d.path)
        << "\"},\n"
        << "                \"region\": {\"startLine\": " << (d.line > 0 ? d.line : 1)
        << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
  }
  if (!diags.empty()) out << "\n      ";
  out << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace dcm::lint
