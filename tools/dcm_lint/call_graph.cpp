#include "dcm_lint/call_graph.h"

#include <algorithm>
#include <array>
#include <deque>

namespace dcm::lint {
namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

// Keywords that read like `name (...)` but never open a function definition.
bool is_nonfunction_keyword(std::string_view t) {
  static constexpr std::array<std::string_view, 18> kKw = {
      "if",      "for",      "while",     "switch",   "catch",  "return",
      "sizeof",  "alignof",  "decltype",  "new",      "delete", "throw",
      "co_return", "co_await", "co_yield", "static_assert", "alignas", "defined"};
  return std::find(kKw.begin(), kKw.end(), t) != kKw.end();
}

// C++ keywords excluded from reference collection (they can never name a
// function this analysis defined).
bool is_cpp_keyword(std::string_view t) {
  static constexpr std::array<std::string_view, 52> kKw = {
      "if",       "else",     "for",      "while",    "do",      "switch",
      "case",     "default",  "break",    "continue", "return",  "goto",
      "new",      "delete",   "this",     "nullptr",  "true",    "false",
      "const",    "constexpr", "consteval", "constinit", "static", "inline",
      "virtual",  "override", "final",    "mutable",  "volatile", "noexcept",
      "template", "typename", "class",    "struct",   "enum",    "union",
      "namespace", "using",    "typedef",  "auto",     "void",    "bool",
      "char",     "int",      "long",     "short",    "float",   "double",
      "unsigned", "signed",   "sizeof",   "try"};
  return std::find(kKw.begin(), kKw.end(), t) != kKw.end();
}

/// Index of the closer matching the opener at `open` (one of ( [ {), or
/// npos when unbalanced. Angle brackets are ignored on purpose: template
/// argument lists do not nest reliably at token level.
size_t match_forward(const std::vector<Token>& ts, size_t open) {
  int depth = 0;
  for (size_t j = open; j < ts.size(); ++j) {
    if (ts[j].kind != TokenKind::kPunct) continue;
    const std::string_view t = ts[j].text;
    if (t == "(" || t == "[" || t == "{") {
      ++depth;
    } else if (t == ")" || t == "]" || t == "}") {
      if (--depth == 0) return j;
    }
  }
  return std::string_view::npos;
}

/// Recognizes a float/double variable declaration whose *name* starts at or
/// after `i` (`i` is the type keyword). Returns the token index of the name,
/// or npos. Pointer/reference declarations are skipped — `double* p` is not
/// an accumulator.
size_t float_decl_name(const std::vector<Token>& ts, size_t i) {
  size_t j = i + 1;
  while (j < ts.size() && is_ident(ts[j], "const")) ++j;
  if (j >= ts.size() || ts[j].kind != TokenKind::kIdentifier) return std::string_view::npos;
  if (is_cpp_keyword(ts[j].text)) return std::string_view::npos;
  const size_t name = j;
  if (name + 1 >= ts.size()) return std::string_view::npos;
  const Token& after = ts[name + 1];
  // `double rate(` is a function; `double x;`, `double x = …`, `double x{…}`,
  // `double x[…]`, `double x,` are declarations.
  if (is_punct(after, ";") || is_punct(after, "=") || is_punct(after, "{") ||
      is_punct(after, "[") || is_punct(after, ",")) {
    return name;
  }
  return std::string_view::npos;
}

struct Scope {
  enum Kind { kNamespace, kClass, kOther };
  Kind kind;
  std::string_view name;  // class name, empty otherwise
};

class Scanner {
 public:
  explicit Scanner(const LexResult& lexed) : ts_(lexed.tokens) {}

  FileFacts run() {
    size_t i = 0;
    const size_t n = ts_.size();
    while (i < n) {
      const Token& t = ts_[i];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "{") {
          stack_.push_back({Scope::kOther, {}});
        } else if (t.text == "}") {
          if (!stack_.empty()) stack_.pop_back();
        }
        ++i;
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) {
        ++i;
        continue;
      }
      if (t.text == "namespace") {
        i = handle_namespace(i);
        continue;
      }
      if (t.text == "enum") {
        i = handle_enum(i);
        continue;
      }
      if ((t.text == "class" || t.text == "struct") && !is_template_param(i)) {
        i = handle_class(i);
        continue;
      }
      // Long-lived float declarations live at class / namespace / file scope
      // (function bodies are consumed wholesale below, so anything the main
      // walk sees here is outside a body).
      if (t.text == "double" || t.text == "float") {
        const size_t name = float_decl_name(ts_, i);
        if (name != std::string_view::npos) {
          facts_.long_lived_floats.insert(ts_[name].text);
          facts_.float_decl_name_tokens.insert(name);
        }
        ++i;
        continue;
      }
      // Candidate function definition: `name (` ... `) [qualifiers] {`.
      const bool op = t.text == "operator";
      if (!is_nonfunction_keyword(t.text) &&
          ((i + 1 < n && is_punct(ts_[i + 1], "(")) || op)) {
        const size_t next = try_function(i);
        if (next != i) {
          i = next;
          continue;
        }
      }
      ++i;
    }
    return std::move(facts_);
  }

 private:
  bool is_template_param(size_t i) const {
    // `template <class T, class U>`: the keyword follows '<' or ','.
    if (i == 0) return false;
    const Token& prev = ts_[i - 1];
    return is_punct(prev, "<") || is_punct(prev, ",");
  }

  size_t handle_namespace(size_t i) {
    size_t j = i + 1;
    while (j < ts_.size() &&
           (ts_[j].kind == TokenKind::kIdentifier || is_punct(ts_[j], "::"))) {
      ++j;
    }
    if (j < ts_.size() && is_punct(ts_[j], "{")) {
      stack_.push_back({Scope::kNamespace, {}});
      return j + 1;
    }
    return j;  // namespace alias / using-directive fragment
  }

  size_t handle_enum(size_t i) {
    // Consume to the '{' (push an opaque scope) or ';' (opaque declaration);
    // this also swallows the `class` in `enum class`.
    for (size_t j = i + 1; j < ts_.size(); ++j) {
      if (is_punct(ts_[j], "{")) {
        stack_.push_back({Scope::kOther, {}});
        return j + 1;
      }
      if (is_punct(ts_[j], ";") || is_punct(ts_[j], "=")) return j;  // `enum X e;` / default arg
    }
    return ts_.size();
  }

  size_t handle_class(size_t i) {
    std::string_view name;
    for (size_t j = i + 1; j < ts_.size(); ++j) {
      const Token& t = ts_[j];
      if (t.kind == TokenKind::kIdentifier && name.empty() && t.text != "final" &&
          t.text != "alignas") {
        name = t.text;
      } else if (is_punct(t, "(")) {
        const size_t close = match_forward(ts_, j);
        if (close == std::string_view::npos) return ts_.size();
        j = close;
      } else if (is_punct(t, "{")) {
        stack_.push_back({Scope::kClass, name});
        return j + 1;
      } else if (is_punct(t, ";") || is_punct(t, ">")) {
        // Forward declaration, or `class T` inside a template argument list.
        return j;
      }
    }
    return ts_.size();
  }

  /// At token `i` (identifier, possibly `operator`): if a function
  /// definition starts here, record it and return the index just past its
  /// body; otherwise return `i` unchanged.
  size_t try_function(size_t i) {
    const size_t n = ts_.size();
    std::string name(ts_[i].text);
    size_t params_open;
    if (ts_[i].text == "operator") {
      // `operator==(`, `operator()(`, `operator[](`, `operator bool(`.
      size_t j = i + 1;
      while (j < n && ts_[j].kind == TokenKind::kPunct && !is_punct(ts_[j], "(")) {
        name += ts_[j].text;
        ++j;
      }
      if (j < n && is_punct(ts_[j], "(") && name == "operator") {
        // operator(): the first '(' is part of the name.
        if (j + 1 < n && is_punct(ts_[j + 1], ")") && j + 2 < n &&
            is_punct(ts_[j + 2], "(")) {
          name += "()";
          j += 2;
        }
      } else if (j < n && ts_[j].kind == TokenKind::kIdentifier) {
        // conversion operator: `operator bool (`
        name += " ";
        name += ts_[j].text;
        ++j;
      }
      if (j >= n || !is_punct(ts_[j], "(")) return i;
      params_open = j;
    } else {
      params_open = i + 1;
    }
    const size_t params_close = match_forward(ts_, params_open);
    if (params_close == std::string_view::npos) return i;

    // Skim post-parameter qualifiers to find '{' (definition), or bail.
    size_t k = params_close + 1;
    while (k < n) {
      const Token& t = ts_[k];
      if (t.kind == TokenKind::kIdentifier &&
          (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
           t.text == "final" || t.text == "mutable" || t.text == "volatile" ||
           t.text == "try")) {
        if (t.text == "noexcept" && k + 1 < n && is_punct(ts_[k + 1], "(")) {
          const size_t close = match_forward(ts_, k + 1);
          if (close == std::string_view::npos) return i;
          k = close + 1;
        } else {
          ++k;
        }
        continue;
      }
      if (is_punct(t, "&") || is_punct(t, "&&")) {
        ++k;
        continue;
      }
      if (is_punct(t, "->")) {
        // Trailing return type: skip tokens until the body '{' or a ';'.
        ++k;
        while (k < n && !is_punct(ts_[k], "{") && !is_punct(ts_[k], ";")) {
          if (is_punct(ts_[k], "(")) {
            const size_t close = match_forward(ts_, k);
            if (close == std::string_view::npos) return i;
            k = close;
          }
          ++k;
        }
        continue;
      }
      if (is_punct(t, ":")) {
        // Constructor initializer list: `): a_(x), b_{y} {`.
        ++k;
        while (k < n) {
          while (k < n && (ts_[k].kind == TokenKind::kIdentifier ||
                           is_punct(ts_[k], "::") || is_punct(ts_[k], "<") ||
                           is_punct(ts_[k], ">") || is_punct(ts_[k], ","))) {
            ++k;
          }
          if (k >= n || (!is_punct(ts_[k], "(") && !is_punct(ts_[k], "{"))) return i;
          const bool brace = is_punct(ts_[k], "{");
          const size_t close = match_forward(ts_, k);
          if (close == std::string_view::npos) return i;
          k = close + 1;
          if (k < n && is_punct(ts_[k], ",")) {
            ++k;
            continue;
          }
          if (brace && k < n && !is_punct(ts_[k], "{")) {
            // `b_{y}` was actually the body of a ctor with empty qualifiers
            // — can't distinguish; treat the brace we just matched as the
            // body only when nothing else follows the list.
          }
          break;
        }
        continue;
      }
      break;
    }
    if (k >= n || !is_punct(ts_[k], "{")) return i;

    const size_t body_end = match_forward(ts_, k);
    if (body_end == std::string_view::npos) return i;

    FunctionDef def;
    def.qualified = qualify(i, name);
    def.body_begin = k;
    def.body_end = body_end;
    def.line_begin = ts_[i].line;
    def.line_end = ts_[body_end].line;
    scan_body(def);
    facts_.functions.push_back(std::move(def));
    return body_end + 1;
  }

  /// Prefixes explicit `A::B::` qualifiers and enclosing class names.
  std::string qualify(size_t name_tok, const std::string& name) const {
    std::string qual = name;
    size_t b = name_tok;
    while (b >= 2 && is_punct(ts_[b - 1], "::") &&
           ts_[b - 2].kind == TokenKind::kIdentifier) {
      qual = std::string(ts_[b - 2].text) + "::" + qual;
      b -= 2;
    }
    // Inline definition inside `class X { … }`: prepend the class stack.
    std::string prefix;
    for (const Scope& s : stack_) {
      if (s.kind == Scope::kClass && !s.name.empty()) {
        prefix += std::string(s.name) + "::";
      }
    }
    return prefix + qual;
  }

  /// Collects references, local float declarations, and loop body spans.
  void scan_body(FunctionDef& def) {
    std::set<std::string_view> refs;
    for (size_t j = def.body_begin + 1; j < def.body_end; ++j) {
      const Token& t = ts_[j];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "double" || t.text == "float") {
        const size_t name = float_decl_name(ts_, j);
        if (name != std::string_view::npos && name < def.body_end) {
          def.local_floats.insert(ts_[name].text);
        }
        continue;
      }
      if (t.text == "for" || t.text == "while") {
        if (j + 1 < def.body_end && is_punct(ts_[j + 1], "(")) {
          const size_t close = match_forward(ts_, j + 1);
          if (close != std::string_view::npos && close < def.body_end) {
            add_loop_range(def, close + 1);
          }
        }
        continue;
      }
      if (t.text == "do") {
        add_loop_range(def, j + 1);
        continue;
      }
      if (!is_cpp_keyword(t.text)) refs.insert(t.text);
    }
    def.refs.assign(refs.begin(), refs.end());
  }

  /// Loop body starting at `start`: `{ … }` or a single statement to `;`.
  void add_loop_range(FunctionDef& def, size_t start) {
    if (start >= def.body_end) return;
    if (is_punct(ts_[start], "{")) {
      const size_t close = match_forward(ts_, start);
      if (close != std::string_view::npos) def.loop_ranges.emplace_back(start, close);
      return;
    }
    for (size_t j = start; j < def.body_end; ++j) {
      if (is_punct(ts_[j], ";")) {
        def.loop_ranges.emplace_back(start, j);
        return;
      }
      if (is_punct(ts_[j], "{")) {
        const size_t close = match_forward(ts_, j);
        if (close == std::string_view::npos) return;
        j = close;
      }
    }
  }

  const std::vector<Token>& ts_;
  std::vector<Scope> stack_;
  FileFacts facts_;
};

std::string_view last_component(std::string_view qualified) {
  const size_t pos = qualified.rfind("::");
  return pos == std::string_view::npos ? qualified : qualified.substr(pos + 2);
}

std::string_view enclosing_class(std::string_view qualified) {
  const size_t last = qualified.rfind("::");
  if (last == std::string_view::npos) return {};
  const std::string_view head = qualified.substr(0, last);
  const size_t prev = head.rfind("::");
  return prev == std::string_view::npos ? head : head.substr(prev + 2);
}

}  // namespace

FileFacts scan_file(std::string_view /*path*/, const LexResult& lexed) {
  return Scanner(lexed).run();
}

void HotPathIndex::add(const std::string& path, LineRange range) {
  ranges_[path].push_back(range);
}

void HotPathIndex::finalize() {
  for (auto& [path, ranges] : ranges_) {
    std::sort(ranges.begin(), ranges.end(),
              [](const LineRange& a, const LineRange& b) { return a.begin < b.begin; });
    std::vector<LineRange> merged;
    for (const LineRange& r : ranges) {
      if (!merged.empty() && r.begin <= merged.back().end + 1) {
        merged.back().end = std::max(merged.back().end, r.end);
      } else {
        merged.push_back(r);
      }
    }
    ranges = std::move(merged);
  }
}

bool HotPathIndex::is_hot(std::string_view path, int line) const {
  const auto it = ranges_.find(path);
  if (it == ranges_.end()) return false;
  const auto& ranges = it->second;
  auto pos = std::upper_bound(ranges.begin(), ranges.end(), line,
                              [](int l, const LineRange& r) { return l < r.begin; });
  if (pos == ranges.begin()) return false;
  --pos;
  return line >= pos->begin && line <= pos->end;
}

const std::vector<std::pair<std::string_view, std::string_view>>& hot_path_seeds() {
  // The event-dispatch loop and the tier/server request path. A "*" method
  // matches every member; a non-* entry is a prefix (Engine::run covers
  // run_until / run_for / run_to_completion). Keep DESIGN.md §10 in sync.
  static const std::vector<std::pair<std::string_view, std::string_view>> kSeeds = {
      {"Engine", "run"},     {"EventQueue", "pop"}, {"Server", "*"},
      {"CpuScheduler", "*"}, {"Tier", "*"},         {"SlotPool", "*"},
      {"Vm", "*"},           {"LoadBalancer", "*"},
  };
  return kSeeds;
}

TreeFacts build_tree_facts(
    const std::vector<std::pair<std::string, const LexResult*>>& files) {
  TreeFacts facts;

  // Scan every file; build the name index for edge resolution.
  struct DefRef {
    const std::string* path;
    const FunctionDef* def;
  };
  std::vector<DefRef> defs;
  for (const auto& [path, lexed] : files) {
    FileFacts file_facts = scan_file(path, *lexed);
    for (const std::string_view name : file_facts.long_lived_floats) {
      facts.long_lived_floats.insert(std::string(name));
    }
    facts.by_file.emplace(path, std::move(file_facts));
  }
  for (const auto& [path, file_facts] : facts.by_file) {
    for (const FunctionDef& def : file_facts.functions) {
      defs.push_back({&path, &def});
    }
  }

  std::map<std::string_view, std::vector<size_t>> by_name;
  for (size_t d = 0; d < defs.size(); ++d) {
    by_name[last_component(defs[d].def->qualified)].push_back(d);
  }

  // Seed set.
  std::vector<bool> hot(defs.size(), false);
  std::deque<size_t> queue;
  for (size_t d = 0; d < defs.size(); ++d) {
    const std::string_view cls = enclosing_class(defs[d].def->qualified);
    const std::string_view method = last_component(defs[d].def->qualified);
    for (const auto& [seed_class, seed_method] : hot_path_seeds()) {
      if (cls != seed_class) continue;
      if (seed_method == "*" || method.substr(0, seed_method.size()) == seed_method) {
        hot[d] = true;
        queue.push_back(d);
        break;
      }
    }
  }

  // Forward closure over name-matched references.
  while (!queue.empty()) {
    const size_t d = queue.front();
    queue.pop_front();
    for (const std::string_view ref : defs[d].def->refs) {
      const auto it = by_name.find(ref);
      if (it == by_name.end()) continue;
      for (const size_t target : it->second) {
        if (!hot[target]) {
          hot[target] = true;
          queue.push_back(target);
        }
      }
    }
  }

  for (size_t d = 0; d < defs.size(); ++d) {
    if (!hot[d]) continue;
    facts.hot.add(*defs[d].path, {defs[d].def->line_begin, defs[d].def->line_end});
    facts.hot_functions.insert(defs[d].def->qualified);
  }
  facts.hot.finalize();
  return facts;
}

}  // namespace dcm::lint
