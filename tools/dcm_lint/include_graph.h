// Include-graph analysis: architectural layering and cycle detection.
//
// The repo's modules form a layered DAG (declared in kLayerDeps below and
// documented in DESIGN.md §10). Every `#include "module/header.h"` edge
// between files under src/ is checked against it:
//
//   layering-violation  a module includes a module its layer may not see
//   include-cycle       a cycle in the file-level include graph
//
// Quoted includes that do not resolve to a src/ module (gtest, dcm_lint's
// own headers, system headers) are ignored. The single top-level umbrella
// header src/dcm.h sits above every module and may include anything;
// modules must not include it back.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dcm_lint/rules.h"

namespace dcm::lint {

/// One parsed quoted include directive.
struct IncludeDirective {
  int line = 0;
  std::string target;  // path between the quotes, e.g. "common/check.h"
};

/// Extracts `#include "…"` directives from a lexed file.
std::vector<IncludeDirective> collect_includes(const LexResult& lexed);

/// True when `module` is declared in the layer DAG.
bool is_known_module(std::string_view module);

/// Direct allowed dependencies of `module` (empty for unknown modules).
const std::vector<std::string_view>& allowed_deps(std::string_view module);

/// Runs both checks over every file under src/. `files` pairs each
/// repo-relative path with its lexed form.
void run_include_passes(
    const std::vector<std::pair<std::string, const LexResult*>>& files,
    std::vector<Diagnostic>& out);

}  // namespace dcm::lint
