// dcm_lint CLI.
//
//   dcm_lint [--root <repo-root>] [dir...]
//
// Lints the given repo-relative directories (default: src tests
// tools/dcm_run) and prints one line per finding:
//
//   src/foo/bar.cpp:42: error: [no-wall-clock] wall-clock access '...'
//
// Exit status: 0 when clean, 1 when any finding, 2 on usage errors. CI runs
// this over the committed tree and fails the lint job on a nonzero exit.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dcm_lint/linter.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dcm_lint: --root needs an argument\n");
        return 2;
      }
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: dcm_lint [--root <repo-root>] [dir...]\n");
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "dcm_lint: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      dirs.emplace_back(argv[i]);
    }
  }
  if (dirs.empty()) dirs = {"src", "tests", "tools/dcm_run"};

  const std::vector<dcm::lint::Diagnostic> diags = dcm::lint::lint_tree(root, dirs);
  for (const auto& d : diags) {
    std::printf("%s:%d: error: [%s] %s\n", d.path.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "dcm_lint: %zu finding(s)\n", diags.size());
    return 1;
  }
  return 0;
}
