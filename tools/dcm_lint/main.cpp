// dcm_lint CLI.
//
//   dcm_lint [--root <repo-root>] [--baseline <file>] [--write-baseline <file>]
//            [--json <file>] [--sarif <file>] [dir...]
//
// Lints the given repo-relative directories (default: src tests tools/dcm_run
// examples) as one tree — cross-file passes (layering, include cycles,
// hot-path reachability) need all files at once — and prints one line per
// finding:
//
//   src/foo/bar.cpp:42: error: [no-wall-clock] wall-clock access '...'
//
// --baseline drops findings listed in the committed baseline file, so CI
// fails only on NEW findings. --write-baseline regenerates that file from
// the current findings (exit 0). --json / --sarif write machine-readable
// reports ('-' for stdout); both reflect post-baseline findings.
//
// Exit status: 0 when clean, 1 when any finding, 2 on usage errors. CI runs
// this over the committed tree and fails the lint job on a nonzero exit.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dcm_lint/baseline.h"
#include "dcm_lint/emit.h"
#include "dcm_lint/linter.h"

namespace {

bool write_report(const std::string& dest, const std::string& content) {
  if (dest == "-") {
    std::fputs(content.c_str(), stdout);
    return true;
  }
  std::ofstream out(dest, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_file;
  std::string write_baseline_file;
  std::string json_file;
  std::string sarif_file;
  std::vector<std::string> dirs;

  const auto flag_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "dcm_lint: %s needs an argument\n", flag);
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--root") == 0) {
      if ((value = flag_arg(i, "--root")) == nullptr) return 2;
      root = value;
    } else if (std::strcmp(argv[i], "--baseline") == 0) {
      if ((value = flag_arg(i, "--baseline")) == nullptr) return 2;
      baseline_file = value;
    } else if (std::strcmp(argv[i], "--write-baseline") == 0) {
      if ((value = flag_arg(i, "--write-baseline")) == nullptr) return 2;
      write_baseline_file = value;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if ((value = flag_arg(i, "--json")) == nullptr) return 2;
      json_file = value;
    } else if (std::strcmp(argv[i], "--sarif") == 0) {
      if ((value = flag_arg(i, "--sarif")) == nullptr) return 2;
      sarif_file = value;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: dcm_lint [--root <repo-root>] [--baseline <file>]\n"
          "                [--write-baseline <file>] [--json <file|->]\n"
          "                [--sarif <file|->] [dir...]\n");
      return 0;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "dcm_lint: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      dirs.emplace_back(argv[i]);
    }
  }
  if (dirs.empty()) dirs = {"src", "tests", "tools/dcm_run", "examples"};

  std::vector<dcm::lint::Diagnostic> diags = dcm::lint::lint_tree(root, dirs);

  if (!write_baseline_file.empty()) {
    if (!write_report(write_baseline_file, dcm::lint::format_baseline(diags))) {
      std::fprintf(stderr, "dcm_lint: cannot write baseline '%s'\n",
                   write_baseline_file.c_str());
      return 2;
    }
    std::fprintf(stderr, "dcm_lint: wrote %zu finding(s) to baseline %s\n",
                 diags.size(), write_baseline_file.c_str());
    return 0;
  }

  if (!baseline_file.empty()) {
    std::vector<dcm::lint::BaselineEntry> baseline;
    if (!dcm::lint::load_baseline(baseline_file, baseline)) {
      std::fprintf(stderr, "dcm_lint: cannot read baseline '%s'\n",
                   baseline_file.c_str());
      return 2;
    }
    diags = dcm::lint::apply_baseline(std::move(diags), baseline);
  }

  if (!json_file.empty() && !write_report(json_file, dcm::lint::to_json(diags))) {
    std::fprintf(stderr, "dcm_lint: cannot write '%s'\n", json_file.c_str());
    return 2;
  }
  if (!sarif_file.empty() && !write_report(sarif_file, dcm::lint::to_sarif(diags))) {
    std::fprintf(stderr, "dcm_lint: cannot write '%s'\n", sarif_file.c_str());
    return 2;
  }

  for (const auto& d : diags) {
    std::printf("%s:%d: error: [%s] %s\n", d.path.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "dcm_lint: %zu finding(s)\n", diags.size());
    return 1;
  }
  return 0;
}
