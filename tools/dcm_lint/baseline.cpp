#include "dcm_lint/baseline.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace dcm::lint {

bool load_baseline(const std::filesystem::path& file, std::vector<BaselineEntry>& out) {
  std::ifstream in(file);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    const size_t tab1 = line.find('\t');
    if (tab1 == std::string::npos) continue;
    const size_t tab2 = line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) continue;
    BaselineEntry entry;
    entry.rule = line.substr(0, tab1);
    entry.path = line.substr(tab1 + 1, tab2 - tab1 - 1);
    try {
      entry.line = std::stoi(line.substr(tab2 + 1));
    } catch (...) {
      continue;
    }
    out.push_back(std::move(entry));
  }
  return true;
}

std::string format_baseline(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "# dcm_lint baseline: accepted findings (rule<TAB>path<TAB>line).\n"
      << "# Regenerate with: dcm_lint --root . --write-baseline <this file>\n";
  for (const Diagnostic& d : diags) {
    out << d.rule << '\t' << d.path << '\t' << d.line << '\n';
  }
  return out.str();
}

std::vector<Diagnostic> apply_baseline(std::vector<Diagnostic> diags,
                                       const std::vector<BaselineEntry>& baseline) {
  // Budgets: each baseline entry waives one finding with its exact key.
  std::vector<std::pair<BaselineEntry, int>> budget;
  budget.reserve(baseline.size());
  for (const BaselineEntry& e : baseline) {
    bool merged = false;
    for (auto& [have, count] : budget) {
      if (have.rule == e.rule && have.path == e.path && have.line == e.line) {
        ++count;
        merged = true;
        break;
      }
    }
    if (!merged) budget.emplace_back(e, 1);
  }

  std::vector<Diagnostic> kept;
  kept.reserve(diags.size());
  for (Diagnostic& d : diags) {
    bool waived = false;
    for (auto& [entry, count] : budget) {
      if (count > 0 && entry.rule == d.rule && entry.path == d.path &&
          entry.line == d.line) {
        --count;
        waived = true;
        break;
      }
    }
    if (!waived) kept.push_back(std::move(d));
  }
  return kept;
}

}  // namespace dcm::lint
