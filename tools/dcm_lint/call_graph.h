// Approximate call-graph construction and hot-path reachability.
//
// dcm_lint's hot-path rules (no-raw-new-in-hot-path, no-wall-clock,
// no-ambient-randomness) used to be scoped by directory; that both missed
// helpers outside src/sim called from the dispatch loop and forced allow()
// suppressions onto cold configuration code. This pass extracts every
// function definition from the lexed token streams, records which
// identifiers each body references, and computes the forward closure from
// the event-dispatch and request-path seed functions (Engine::run*,
// EventQueue::pop, Server::*, CpuScheduler::*, Tier::*, SlotPool::*, Vm::*,
// LoadBalancer::*). A rule then asks `facts.hot.is_hot(path, line)` instead
// of matching directories.
//
// The analysis is deliberately approximate and over-inclusive:
//   - edges are matched by unqualified name (a reference to `acquire`
//     reaches every function whose last component is `acquire`);
//   - lambdas defined inside a body count as part of that body, so
//     callbacks handed to the engine are traversed without resolving the
//     type erasure;
//   - mentioning a class name reaches its constructor.
// Over-approximation errs toward checking more code, which is the safe
// direction for determinism rules; allow() handles the rest.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dcm_lint/token.h"

namespace dcm::lint {

struct LineRange {
  int begin = 0;
  int end = 0;
};

/// One function definition (a body was seen). `qualified` is the
/// class-qualified name without namespaces, e.g. "Server::submit",
/// "EventFn::EventFn", or "derive_seed" for free functions.
struct FunctionDef {
  std::string qualified;
  size_t body_begin = 0;  // token index of the opening '{'
  size_t body_end = 0;    // token index of the matching '}'
  int line_begin = 0;
  int line_end = 0;
  std::vector<std::string_view> refs;        // identifiers referenced in the body
  std::set<std::string_view> local_floats;   // float/double vars declared in the body
  std::vector<std::pair<size_t, size_t>> loop_ranges;  // token spans of loop bodies
};

/// Facts one file contributes to the whole-tree analysis.
struct FileFacts {
  std::vector<FunctionDef> functions;
  // float/double vars declared at class or namespace scope — long-lived
  // accumulators, the no-unanchored-float-accumulate candidates.
  std::set<std::string_view> long_lived_floats;
  // token indices of the *names* in those declarations, so a declaration
  // initializer (`double sum_ = 0.0;`) is not mistaken for a re-anchor.
  std::set<size_t> float_decl_name_tokens;
};

/// Single-pass scanner: function bodies, references, class/namespace-scope
/// float declarations.
FileFacts scan_file(std::string_view path, const LexResult& lexed);

/// Hot-line lookup built from the reachable set.
class HotPathIndex {
 public:
  void add(const std::string& path, LineRange range);
  void finalize();  // sort + merge ranges
  bool is_hot(std::string_view path, int line) const;

 private:
  std::map<std::string, std::vector<LineRange>, std::less<>> ranges_;
};

/// Whole-tree facts shared with the rules via FileContext.
struct TreeFacts {
  HotPathIndex hot;
  // Union of every file's long-lived float names; a .cpp mutating `sum_`
  // learns its type from the header that declared it.
  std::set<std::string, std::less<>> long_lived_floats;
  std::map<std::string, FileFacts, std::less<>> by_file;
  // Qualified names of reachable functions, for tests/debugging.
  std::set<std::string> hot_functions;
};

/// The seed list (class, method-prefix); method "*" matches any. Exposed so
/// tests and docs stay in sync with the implementation.
const std::vector<std::pair<std::string_view, std::string_view>>& hot_path_seeds();

/// Scans every file and computes hot-path reachability from the seeds.
TreeFacts build_tree_facts(
    const std::vector<std::pair<std::string, const LexResult*>>& files);

}  // namespace dcm::lint
