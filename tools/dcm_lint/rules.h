// dcm_lint rule registry.
//
// Each rule scans a lexed file and reports diagnostics. Rules are scoped by
// repo-relative path (forward slashes) so e.g. wall-clock reads are only an
// error inside src/ — benches and tools may time themselves freely.
//
// Rule IDs (see README "Static analysis & determinism" for rationale):
//   no-wall-clock            src/                wall-clock time sources
//   no-ambient-randomness    src/                rand()/random_device/srand
//   no-unordered-iteration   src/{sim,ntier,control}  range-for over unordered containers
//   no-raw-assert            src/, tests/        assert() instead of DCM_CHECK
//   no-float-eq              src/, tests/        ==/!= against float literals
//   no-raw-new-in-hot-path   src/sim             raw new/delete in the event core
//
// A seventh rule, header-self-sufficiency, is a build-time driver (the
// dcm_header_selfcheck CMake target compiles every src/**/*.h standalone)
// rather than a token rule.
//
// Any finding can be suppressed with a comment on the same line or the
// line above: // dcm-lint: allow(rule-id[, rule-id...])
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dcm_lint/token.h"

namespace dcm::lint {

struct Diagnostic {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
};

struct FileContext {
  std::string_view path;  // repo-relative, '/'-separated
  const std::vector<Token>& tokens;
  const std::vector<Comment>& comments;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view id() const = 0;
  virtual bool applies_to(std::string_view path) const = 0;
  virtual void run(const FileContext& ctx, std::vector<Diagnostic>& out) const = 0;
};

/// The registry of all built-in token rules.
const std::vector<std::unique_ptr<Rule>>& default_rules();

/// True if `id` names a known rule (including header-self-sufficiency, so
/// suppression comments for it do not trip the unknown-rule diagnostic).
bool is_known_rule(std::string_view id);

}  // namespace dcm::lint
