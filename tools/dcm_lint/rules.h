// dcm_lint rule registry.
//
// Each rule scans a lexed file and reports diagnostics. Two kinds of
// scoping compose:
//   - path scope (`applies_to`): which repo-relative paths a rule covers;
//   - hot-path scope: rules marked hot-path only fire on lines inside
//     functions reachable from the dispatch-loop/request-path seeds (see
//     call_graph.h), so a helper in src/common called from the event loop
//     is caught while cold configuration code is not.
//
// Rule IDs (see README "Static analysis & determinism" for rationale):
//   no-wall-clock                  src/, hot path      wall-clock time sources
//   no-ambient-randomness          src/+dcm_run, hot   rand()/random_device/srand
//   no-raw-new-in-hot-path        src/, hot path      raw new/delete on the hot path
//   no-unordered-iteration         src/+dcm_run+examples  range-for over unordered containers
//   no-raw-assert                  src/, tests/, examples/  assert() instead of DCM_CHECK
//   no-float-eq                    src/, tests/, examples/  ==/!= against float literals
//   no-pointer-keyed-order         src/+dcm_run        ordered map/set keyed on a pointer
//   no-unanchored-float-accumulate src/                += on a long-lived float in a loop
//                                                      with no re-anchoring assignment
//
// Tree-level passes (not token rules): layering-violation and include-cycle
// (include_graph.h) and the build-time header-self-sufficiency driver (the
// dcm_header_selfcheck CMake target compiles every src/**/*.h standalone).
//
// Any finding can be suppressed with a comment on the same line or the
// line above: // dcm-lint: allow(rule-id[, rule-id...])
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dcm_lint/call_graph.h"
#include "dcm_lint/token.h"

namespace dcm::lint {

struct Diagnostic {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
};

struct FileContext {
  std::string_view path;  // repo-relative, '/'-separated
  const std::vector<Token>& tokens;
  const std::vector<Comment>& comments;
  // Whole-tree facts: hot-path reachability and cross-file type knowledge.
  // Always non-null when driven through lint_source/lint_sources/lint_tree.
  const TreeFacts* tree = nullptr;

  bool hot(int line) const { return tree != nullptr && tree->hot.is_hot(path, line); }
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view id() const = 0;
  virtual bool applies_to(std::string_view path) const = 0;
  virtual void run(const FileContext& ctx, std::vector<Diagnostic>& out) const = 0;
};

/// The registry of all built-in token rules.
const std::vector<std::unique_ptr<Rule>>& default_rules();

/// True if `id` names a known rule, including the tree-level pass ids
/// (layering-violation, include-cycle) and header-self-sufficiency, so
/// suppression comments for them do not trip the unknown-rule diagnostic.
bool is_known_rule(std::string_view id);

}  // namespace dcm::lint
