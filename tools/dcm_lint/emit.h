// Machine-readable output: JSON (one object per finding) and SARIF 2.1.0
// (for code-scanning UIs). Both are deterministic: findings are emitted in
// the order given, which the linter already sorts by (path, line, rule).
#pragma once

#include <string>
#include <vector>

#include "dcm_lint/rules.h"

namespace dcm::lint {

/// `{"findings":[{"rule":…,"path":…,"line":…,"message":…},…]}`.
std::string to_json(const std::vector<Diagnostic>& diags);

/// Minimal SARIF 2.1.0 log with one run; each distinct rule id becomes a
/// reportingDescriptor and each finding a result with a physical location.
std::string to_sarif(const std::vector<Diagnostic>& diags);

}  // namespace dcm::lint
