# CLI digest-label regression (run with cmake -P; pass -DDCM_RUN=<binary>).
#
# `dcm_run run <scenario> --digest` must print the canonical
# registry-pinned result_digest of the single root-seed run — not a sweep
# digest over a derived seed — and must say which digest it is printing.
# The quickstart value below is the same pin registry_digest_test asserts.
if(NOT DEFINED DCM_RUN)
  message(FATAL_ERROR "pass -DDCM_RUN=<path to dcm_run>")
endif()

execute_process(
  COMMAND ${DCM_RUN} run quickstart --digest --quiet
  OUTPUT_VARIABLE run_out
  RESULT_VARIABLE run_rc
  OUTPUT_STRIP_TRAILING_WHITESPACE)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "dcm_run run quickstart --digest failed (rc=${run_rc})")
endif()
if(NOT run_out STREQUAL "result_digest 8007654335316031933")
  message(FATAL_ERROR "run --digest must print the canonical result_digest, got: ${run_out}")
endif()

execute_process(
  COMMAND ${DCM_RUN} sweep quickstart --axis controller.kind=ec2,dcm --digest --quiet
  OUTPUT_VARIABLE sweep_out
  RESULT_VARIABLE sweep_rc
  OUTPUT_STRIP_TRAILING_WHITESPACE)
if(NOT sweep_rc EQUAL 0)
  message(FATAL_ERROR "dcm_run sweep --digest failed (rc=${sweep_rc})")
endif()
if(NOT sweep_out MATCHES "^sweep_digest [0-9]+$")
  message(FATAL_ERROR "sweep --digest must be labelled sweep_digest, got: ${sweep_out}")
endif()

execute_process(
  COMMAND ${DCM_RUN} tournament quickstart --controllers ec2,queueing
          --set run.duration=90 --digest --quiet
  OUTPUT_VARIABLE tournament_out
  RESULT_VARIABLE tournament_rc
  OUTPUT_STRIP_TRAILING_WHITESPACE)
if(NOT tournament_rc EQUAL 0)
  message(FATAL_ERROR "dcm_run tournament --digest failed (rc=${tournament_rc})")
endif()
if(NOT tournament_out MATCHES "^scorecard_digest [0-9]+$")
  message(FATAL_ERROR "tournament --digest must be labelled scorecard_digest, got: ${tournament_out}")
endif()

message(STATUS "dcm_run digest labels OK")
