// dcm_run — scenario & sweep CLI over the registry.
//
//   dcm_run list
//       One line per registered scenario: name + summary.
//   dcm_run show <scenario|file.ini>
//       Print the registered INI text (for a file: its canonical form).
//   dcm_run run <scenario|file.ini> [options]
//       Run one scenario.
//   dcm_run sweep <scenario|file.ini> --axis section.key=v1,v2,... [options]
//       Expand the axes' cartesian grid and run every point.
//   dcm_run bench [scenario...] [--reps N] [--json path|-] [--quiet]
//       Macro benchmark: events/sec + simulated-seconds per wall-second for
//       the named scenarios (default: the committed BENCH_macro.json suite),
//       each run digest-verified against the scenario registry. Exit 1 on
//       any digest mismatch.
//   dcm_run tournament [scenario...] [--controllers a,b,...] [options]
//       Race the controller zoo: sweep every named controller (default: all
//       registered) across the named scenarios (default: quickstart, fig5,
//       chaos-resilience) with pinned seeds, and print the ranked scorecard
//       (SLO-violation seconds, VM-hours, actuation churn). --digest prints
//       only "scorecard_digest <n>" (bit-identical for any --jobs).
//
// Options (run and sweep):
//   --set section.key=value   override a base-scenario field (repeatable)
//   --trace                   enable request tracing (same as --set
//                             trace.enabled=true; core digests unchanged)
//   --trace-rate R            head-sampling probability in [0,1] (implies
//                             --trace; default 1)
//   --jobs N                  worker threads (sweep; 0 = all cores; default 1)
//   --seed-policy derive|fixed  per-run seeds derived from the root seed
//                             (default) or pinned to it (paired comparisons)
//   --json <path|->           write dcm-result-v1 JSON (- = stdout)
//   --csv <prefix>            write <prefix>_run<i>_timeline.csv per run
//   --digest                  print only the digest line — "result_digest
//                             <n>" for run (the canonical registry-pinned
//                             digest), "sweep_digest <n>" for sweep (CI's
//                             jobs-invariance compare relies on both being
//                             bit-stable)
//   --quiet                   suppress per-run summary tables
//
// Exit status: 0 on success, 1 on any failure, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "common/table.h"
#include "scenario/macro_bench.h"
#include "scenario/registry.h"
#include "scenario/result_writer.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "scenario/tournament.h"

using namespace dcm;

namespace {

struct Options {
  std::string command;
  std::string target;
  std::vector<std::string> targets;  // bench accepts several scenarios
  std::vector<std::string> sets;
  std::vector<std::string> axes;
  std::vector<std::string> controllers;  // tournament; empty = all registered
  int jobs = 1;
  int reps = 3;
  scenario::SeedPolicy seed_policy = scenario::SeedPolicy::kDerivePerRun;
  std::string json_path;
  std::string csv_prefix;
  bool digest_only = false;
  bool quiet = false;
  bool trace = false;
  double trace_rate = -1.0;  // < 0 = keep the scenario's rate
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s show <scenario|file.ini>\n"
               "       %s run <scenario|file.ini> [--set s.k=v]... [--json path|-]\n"
               "             [--csv prefix] [--trace] [--trace-rate R] [--digest] [--quiet]\n"
               "       %s sweep <scenario|file.ini> --axis s.k=v1,v2,... [--axis ...]\n"
               "             [--jobs N] [--seed-policy derive|fixed] [--set s.k=v]...\n"
               "             [--json path|-] [--csv prefix] [--trace] [--trace-rate R]\n"
               "             [--digest] [--quiet]\n"
               "       %s bench [scenario...] [--reps N] [--json path|-] [--quiet]\n"
               "       %s tournament [scenario...] [--controllers a,b,...] [--jobs N]\n"
               "             [--set s.k=v]... [--json path|-] [--csv prefix] [--digest]\n"
               "             [--quiet]\n",
               argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

// A registry name, or a path to an INI file (anything with a '.' or '/' is
// treated as a path so `dcm_run run my/exp.ini` needs no flag).
scenario::Scenario load_target(const std::string& target) {
  if (scenario::has_scenario(target)) return scenario::get_scenario(target);
  if (target.find('/') != std::string::npos || target.find('.') != std::string::npos) {
    return scenario::Scenario::load(target);
  }
  return scenario::get_scenario(target);  // throws with the known-name list
}

int cmd_list() {
  TextTable table({"scenario", "summary"});
  for (const auto& name : scenario::scenario_names()) {
    table.add_row({name, scenario::get_scenario(name).summary});
  }
  table.print();
  return 0;
}

int cmd_show(const std::string& target) {
  if (scenario::has_scenario(target)) {
    std::fputs(scenario::scenario_text(target).c_str(), stdout);
  } else {
    // For a file: parse (strict) and print the canonical emission.
    std::fputs(load_target(target).to_text().c_str(), stdout);
  }
  return 0;
}

void write_outputs(const Options& opts, const std::string& name,
                   const std::vector<scenario::SweepRun>& runs) {
  if (opts.digest_only) {
    // A single `run` prints the canonical per-run digest — the number the
    // scenario registry pins — under its own label; sweeps print the merged
    // sweep digest, labelled explicitly so the two can never be confused.
    if (opts.command == "run" && runs.size() == 1) {
      std::printf("result_digest %llu\n",
                  static_cast<unsigned long long>(scenario::result_digest(runs[0].result)));
    } else {
      std::printf("sweep_digest %llu\n",
                  static_cast<unsigned long long>(scenario::sweep_digest(runs)));
    }
  }
  if (!opts.json_path.empty()) {
    if (opts.json_path == "-") {
      scenario::write_result_json(std::cout, name, runs);
    } else {
      std::ofstream out(opts.json_path);
      if (!out) throw std::runtime_error("cannot open " + opts.json_path);
      scenario::write_result_json(out, name, runs);
      if (!opts.digest_only) std::printf("wrote %s\n", opts.json_path.c_str());
    }
  }
  if (!opts.csv_prefix.empty()) {
    for (const auto& run : runs) {
      const std::string path =
          opts.csv_prefix + "_run" + std::to_string(run.index) + "_timeline.csv";
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot open " + path);
      // Trace-driven runs get the offered-users column.
      const auto experiment = run.scenario.experiment();
      const workload::Trace* trace =
          experiment.workload.kind == core::WorkloadSpec::Kind::kTrace
              ? &experiment.workload.trace
              : nullptr;
      scenario::write_timeline_csv(out, run.result, trace);
      if (!opts.digest_only) std::printf("wrote %s\n", path.c_str());
      if (run.result.trace_report != nullptr) {
        const std::string spans_path =
            opts.csv_prefix + "_run" + std::to_string(run.index) + "_spans.csv";
        std::ofstream spans_out(spans_path);
        if (!spans_out) throw std::runtime_error("cannot open " + spans_path);
        scenario::write_spans_csv(spans_out, run.result);
        if (!opts.digest_only) std::printf("wrote %s\n", spans_path.c_str());
      }
    }
  }
}

int cmd_bench(const Options& opts) {
  scenario::MacroBenchOptions bench;
  bench.scenarios = opts.targets;
  bench.repetitions = opts.reps;
  const auto rows = scenario::run_macro_suite(bench);
  if (!opts.quiet) scenario::print_macro_table(rows);
  if (!opts.json_path.empty()) {
    if (opts.json_path == "-") {
      scenario::write_macro_json(std::cout, rows);
    } else {
      std::ofstream out(opts.json_path);
      if (!out) throw std::runtime_error("cannot open " + opts.json_path);
      scenario::write_macro_json(out, rows);
      if (!opts.quiet) std::printf("wrote %s\n", opts.json_path.c_str());
    }
  }
  if (!scenario::all_digests_ok(rows)) {
    std::fprintf(stderr,
                 "dcm_run: bench digest mismatch against the scenario registry — "
                 "the simulation's output changed\n");
    return 1;
  }
  return 0;
}

int cmd_tournament(const Options& opts) {
  scenario::TournamentOptions tournament_opts;
  if (!opts.targets.empty()) tournament_opts.scenarios = opts.targets;
  tournament_opts.controllers = opts.controllers;
  tournament_opts.jobs = opts.jobs;
  for (const auto& set : opts.sets) {
    const scenario::SweepAxis axis = scenario::parse_axis(set);
    if (axis.values.size() != 1) {
      throw std::runtime_error("--set " + set + " must have exactly one value");
    }
    tournament_opts.overrides.emplace_back(axis.section + "." + axis.key, axis.values[0]);
  }

  const scenario::Tournament tournament = scenario::run_tournament(tournament_opts);

  if (opts.digest_only) {
    std::printf("scorecard_digest %llu\n",
                static_cast<unsigned long long>(scenario::scorecard_digest(tournament)));
  } else if (!opts.quiet) {
    scenario::print_tournament(tournament);
  }
  if (!opts.json_path.empty()) {
    if (opts.json_path == "-") {
      scenario::write_tournament_json(std::cout, tournament);
    } else {
      std::ofstream out(opts.json_path);
      if (!out) throw std::runtime_error("cannot open " + opts.json_path);
      scenario::write_tournament_json(out, tournament);
      if (!opts.digest_only && !opts.quiet) std::printf("wrote %s\n", opts.json_path.c_str());
    }
  }
  if (!opts.csv_prefix.empty()) {
    const std::string path = opts.csv_prefix + "_tournament.csv";
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    scenario::write_tournament_csv(out, tournament);
    if (!opts.digest_only && !opts.quiet) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int cmd_run_or_sweep(const Options& opts) {
  scenario::SweepPlan plan;
  plan.base = load_target(opts.target);
  plan.seed_policy = opts.seed_policy;
  // A single run IS the canonical run: it must keep the scenario's root seed
  // (derive-per-run seeding would silently swap in derive_seed(root, 0) and
  // print a digest nothing in the registry pins).
  if (opts.command == "run") plan.seed_policy = scenario::SeedPolicy::kFixed;
  if (opts.trace) {
    // Applied before --set so an explicit --set trace.* still wins.
    Config config = plan.base.to_config();
    config.set("trace", "enabled", "true");
    if (opts.trace_rate >= 0.0) {
      config.set("trace", "rate", str_format("%.17g", opts.trace_rate));
    }
    plan.base = scenario::Scenario::from_config(config);
  }
  for (const auto& set : opts.sets) {
    // --set is a single-value axis applied to the base, not a dimension.
    const scenario::SweepAxis axis = scenario::parse_axis(set);
    if (axis.values.size() != 1) {
      throw std::runtime_error("--set " + set + " must have exactly one value");
    }
    Config config = plan.base.to_config();
    config.set(axis.section, axis.key, axis.values[0]);
    plan.base = scenario::Scenario::from_config(config);
  }
  for (const auto& axis : opts.axes) plan.axes.push_back(scenario::parse_axis(axis));

  scenario::SweepRunner runner(std::move(plan), opts.jobs);
  if (!opts.digest_only && !opts.quiet) {
    std::printf("%zu run(s), %d worker(s)\n", runner.planned().size(), runner.jobs());
  }
  const std::vector<scenario::SweepRun> runs = runner.run();

  if (!opts.digest_only && !opts.quiet) {
    for (const auto& run : runs) {
      std::printf("--- run %zu: %s", run.index, run.scenario.name.c_str());
      for (const auto& [key, value] : run.overrides) {
        std::printf(" %s=%s", key.c_str(), value.c_str());
      }
      std::printf(" (seed %llu) ---\n", static_cast<unsigned long long>(run.scenario.seed));
      scenario::print_summary(run.result);
      scenario::print_trace_summary(run.result);
      std::puts("");
    }
  }
  write_outputs(opts, runs.size() == 1 ? runs[0].scenario.name : opts.target, runs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  Options opts;
  opts.command = argv[1];

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dcm_run: %s needs an argument\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--set") {
      opts.sets.push_back(next());
    } else if (arg == "--reps") {
      const auto parsed = parse_int(next());
      if (!parsed || *parsed < 1) return usage(argv[0]);
      opts.reps = static_cast<int>(*parsed);
    } else if (arg == "--axis") {
      opts.axes.push_back(next());
    } else if (arg == "--controllers") {
      for (const auto& name : split(next(), ',')) {
        const std::string trimmed{trim(name)};
        if (!trimmed.empty()) opts.controllers.push_back(trimmed);
      }
    } else if (arg == "--jobs") {
      const auto parsed = parse_int(next());
      if (!parsed) return usage(argv[0]);
      opts.jobs = static_cast<int>(*parsed);
    } else if (arg == "--seed-policy") {
      const std::string policy = next();
      if (policy == "derive") {
        opts.seed_policy = scenario::SeedPolicy::kDerivePerRun;
      } else if (policy == "fixed") {
        opts.seed_policy = scenario::SeedPolicy::kFixed;
      } else {
        std::fprintf(stderr, "dcm_run: unknown seed policy '%s'\n", policy.c_str());
        return 2;
      }
    } else if (arg == "--json") {
      opts.json_path = next();
    } else if (arg == "--csv") {
      opts.csv_prefix = next();
    } else if (arg == "--trace") {
      opts.trace = true;
    } else if (arg == "--trace-rate") {
      const auto parsed = parse_double(next());
      if (!parsed || *parsed < 0.0 || *parsed > 1.0) {
        std::fprintf(stderr, "dcm_run: --trace-rate needs a value in [0, 1]\n");
        return 2;
      }
      opts.trace = true;
      opts.trace_rate = *parsed;
    } else if (arg == "--digest") {
      opts.digest_only = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "dcm_run: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else if (opts.command == "bench" || opts.command == "tournament") {
      opts.targets.push_back(arg);
    } else if (opts.target.empty()) {
      opts.target = arg;
    } else {
      return usage(argv[0]);
    }
  }

  set_log_level(LogLevel::kWarn);
  try {
    if (opts.command == "list") return cmd_list();
    if (opts.command == "bench") return cmd_bench(opts);
    if (opts.command == "tournament") return cmd_tournament(opts);
    if (opts.command == "show" && !opts.target.empty()) return cmd_show(opts.target);
    if ((opts.command == "run" || opts.command == "sweep") && !opts.target.empty()) {
      if (opts.command == "sweep" && opts.axes.empty()) {
        std::fprintf(stderr, "dcm_run: sweep needs at least one --axis\n");
        return 2;
      }
      return cmd_run_or_sweep(opts);
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dcm_run: error: %s\n", e.what());
    return 1;
  }
}
