// Quickstart: deploy a 3-tier RUBBoS-like application, drive it with
// realistic closed-loop clients, and read the results.
//
//   $ ./quickstart [users]
//
// Walks through the core public API: topology → workload → run → metrics,
// plus the concurrency-aware model's view of the same deployment.
#include <cstdio>
#include <cstdlib>

#include "dcm.h"

using namespace dcm;

int main(int argc, char** argv) {
  const int users = argc > 1 ? std::atoi(argv[1]) : 300;

  // 1. Describe the deployment: #W/#A/#D hardware and the soft-resource
  //    allocation (Apache threads / Tomcat threads / per-Tomcat DB conns).
  core::ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 100, 80};  // the paper's default allocation
  config.workload = core::WorkloadSpec::rubbos(users, /*think_s=*/3.0);
  config.controller = core::ControllerSpec::none();
  config.duration_seconds = 120.0;
  config.warmup_seconds = 30.0;

  std::printf("running 1/1/1 with soft allocation 1000/100/80, %d users...\n\n", users);
  const core::ExperimentResult result = core::run_experiment(config);

  std::printf("throughput      : %.1f req/s\n", result.mean_throughput);
  std::printf("response time   : mean %.1f ms, p95 %.1f ms, max %.1f ms\n",
              result.mean_response_time * 1e3, result.p95_response_time * 1e3,
              result.max_response_time * 1e3);
  std::printf("completed/errors: %llu / %llu\n\n",
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.errors));

  // 2. What does the concurrency-aware model (paper Eq. 1-8) say about this
  //    deployment?
  const model::ConcurrencyModel tomcat = core::tomcat_reference_model();
  const model::ConcurrencyModel mysql = core::mysql_reference_model();
  std::printf("model: Tomcat optimal concurrency N_b = %d (deployed pool: 100)\n",
              tomcat.optimal_concurrency_int());
  std::printf("model: MySQL  optimal concurrency N_b = %d (deployed conns: 80)\n",
              mysql.optimal_concurrency_int());
  std::printf("model: Tomcat-bound peak throughput = %.1f req/s\n", tomcat.max_throughput());

  // 3. Apply the model's allocation and re-run — the Fig. 4(a) experiment
  //    in two calls.
  config.soft.app_threads = tomcat.optimal_concurrency_int();
  const core::ExperimentResult tuned = core::run_experiment(config);
  std::printf("\nwith model-optimal Tomcat pool (%d threads): %.1f req/s (%+.0f%%)\n",
              config.soft.app_threads, tuned.mean_throughput,
              100.0 * (tuned.mean_throughput / result.mean_throughput - 1.0));
  return 0;
}
