// Capacity planning with operational laws + the concurrency-aware model.
//
//   $ ./capacity_planning [target_req_per_s]
//
// Given a target workload, uses the paper's Eq. 1-8 to answer:
//   * which tier bottlenecks first and at what throughput,
//   * how many servers each tier needs for the target,
//   * what soft-resource allocation those servers should run,
// then validates the plan by simulating it at the target load.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "dcm.h"

using namespace dcm;

int main(int argc, char** argv) {
  const double target = argc > 1 ? std::atof(argv[1]) : 150.0;  // req/s

  const model::ConcurrencyModel tomcat = core::tomcat_reference_model();
  const model::ConcurrencyModel mysql = core::mysql_reference_model();

  // Per-server peak capacity at the model-optimal concurrency.
  const double tomcat_peak = tomcat.max_throughput();
  const double mysql_peak = mysql.max_throughput();

  // Operational-law bottleneck analysis for the 1/1/1 deployment using the
  // *effective* service demand at optimum (1/peak).
  const std::vector<model::TierDemand> tiers = {
      {"apache", 1.0, 1.0e-3, 1, 1.0},
      {"tomcat", 1.0, 1.0 / tomcat_peak, 1, 1.0},
      {"mysql", 1.0, 1.0 / mysql_peak, 1, 1.0},
  };
  const auto report = model::analyze_bottleneck(tiers);
  std::printf("=== capacity plan for %.0f req/s ===\n\n", target);
  std::printf("per-server peak: tomcat %.1f req/s (N_b=%d), mysql %.1f req/s (N_b=%d)\n",
              tomcat_peak, tomcat.optimal_concurrency_int(), mysql_peak,
              mysql.optimal_concurrency_int());
  std::printf("1/1/1 bottleneck tier: %s at %.1f req/s\n\n",
              tiers[static_cast<size_t>(report.bottleneck_tier)].name.c_str(),
              report.max_throughput);

  // Servers needed per tier (ceil of target / per-server peak).
  const int k_tomcat = static_cast<int>(std::ceil(target / tomcat_peak));
  const int k_mysql = static_cast<int>(std::ceil(target / mysql_peak));
  const int conns = static_cast<int>(
      std::ceil(static_cast<double>(k_mysql * mysql.optimal_concurrency_int()) / k_tomcat));
  std::printf("plan: 1/%d/%d, Tomcat pool %d, per-Tomcat DB conns %d (total %d ≈ %d·N_b)\n\n",
              k_tomcat, k_mysql, tomcat.optimal_concurrency_int(), conns, k_tomcat * conns,
              k_mysql);

  // Validate: simulate the plan at the target offered load (users chosen by
  // the closed-loop identity U ≈ X·(Z + R), R small).
  const int users = static_cast<int>(target * 3.3);
  core::ExperimentConfig config;
  config.hardware = {1, k_tomcat, k_mysql};
  config.soft = {1000, tomcat.optimal_concurrency_int(), conns};
  config.workload = core::WorkloadSpec::rubbos(users);
  config.controller = core::ControllerSpec::none();
  config.duration_seconds = 150.0;
  config.warmup_seconds = 50.0;
  config.max_vms_per_tier = std::max({8, k_tomcat, k_mysql});
  const auto result = core::run_experiment(config);

  std::printf("validation at %d users: %.1f req/s (target %.0f), rt mean %.0f ms p95 %.0f ms\n",
              users, result.mean_throughput, target, result.mean_response_time * 1e3,
              result.p95_response_time * 1e3);
  std::printf("%s\n", result.mean_throughput >= 0.95 * target
                          ? "plan meets the target."
                          : "plan falls short — raise the per-tier counts.");
  return 0;
}
