// Online model estimation from live monitoring data (paper Sec. III-C:
// "determine these parameters via online monitoring of the whole system,
// then regress").
//
//   $ ./online_model_fitting
//
// Runs the 3-tier system under a slowly ramping workload, feeds the
// per-second bus samples into OnlineModelEstimator exactly as the DCM
// controller would, and compares the fitted optimum against the ground
// truth the simulator was built with.
#include <cstdio>

#include "bus/consumer.h"
#include "dcm.h"

using namespace dcm;

int main() {
  set_log_level(LogLevel::kWarn);

  sim::Engine engine;
  // Wide-open pools so the ramp explores a broad concurrency range.
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 1, 1}, {1000, 400, 400}));
  bus::Broker broker;
  ntier::MonitorFleet fleet(engine, app, broker);
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();

  // Ramp 5 → 400 JMeter users over 400 s: concurrency sweeps the curve.
  auto generator = workload::make_jmeter(engine, app, catalog, 5);
  std::vector<int> ramp;
  for (int t = 0; t < 400; ++t) ramp.push_back(5 + t);
  const workload::Trace trace(ramp);
  workload::TracePlayer player(engine, *generator, trace);
  player.start();

  bus::Consumer consumer(broker, "fitting-demo", ntier::kMetricsTopic);
  control::OnlineModelEstimator tomcat_estimator;
  control::OnlineModelEstimator mysql_estimator;

  // Poll the bus every 15 s, as the controller does, printing fit progress.
  engine.schedule_periodic(sim::from_seconds(15.0), [&] {
    for (const auto& record : consumer.poll(4096)) {
      const auto sample = ntier::MetricSample::parse(record.value);
      if (!sample || sample->vm_state != "ACTIVE") continue;
      if (sample->tier == "tomcat") {
        tomcat_estimator.observe(sample->concurrency, sample->throughput);
      } else if (sample->tier == "mysql") {
        mysql_estimator.observe(sample->concurrency, sample->throughput);
      }
    }
    const auto tomcat_fit = tomcat_estimator.fit(1, 1.0);
    std::printf("t=%5.0fs  tomcat bins=%2zu  N_b=%s\n", sim::to_seconds(engine.now()),
                tomcat_estimator.bin_count(),
                tomcat_fit ? format_number(tomcat_fit->optimal_concurrency(), 1).c_str()
                           : "(not ready)");
  });

  engine.run_until(sim::from_seconds(400.0));

  const auto tomcat_fit = tomcat_estimator.fit(1, 1.0);
  const auto mysql_fit = mysql_estimator.fit(1, core::kDbVisitRatio);
  std::puts("\n=== final fits vs simulator ground truth ===");
  if (tomcat_fit) {
    std::printf("tomcat: fitted N_b=%.1f (truth %d), R²=%.3f over %d samples\n",
                tomcat_fit->optimal_concurrency(),
                core::tomcat_reference_model().optimal_concurrency_int(),
                tomcat_fit->r_squared, tomcat_fit->samples);
  } else {
    std::puts("tomcat: not enough concurrency spread to fit");
  }
  if (mysql_fit) {
    std::printf("mysql : fitted N_b=%.1f (truth %d), R²=%.3f over %d samples\n",
                mysql_fit->optimal_concurrency(),
                core::mysql_reference_model().optimal_concurrency_int(), mysql_fit->r_squared,
                mysql_fit->samples);
  } else {
    std::puts("mysql : not enough concurrency spread to fit");
  }
  std::puts("\n(N_b sits on Eq. 7's flat plateau — fits within ±40% of the truth still");
  std::puts(" deploy allocations within ~1% of peak throughput; see EXPERIMENTS.md)");
  return 0;
}
