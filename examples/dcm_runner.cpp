// dcm_runner — config-file-driven experiment runner.
//
//   $ ./dcm_runner <scenario-name|experiment.ini> [output_prefix]
//
// Runs a registered scenario (see `dcm_run list`) or a scenario INI file
// (see src/scenario/scenario.h for the schema — parsing is strict, so
// misspelled sections/keys fail loudly instead of silently defaulting),
// prints a summary, and — when an output prefix is given — writes the
// per-second dcm-result-v1 CSV timeline.
//
// Example configuration:
//
//   [workload]
//   kind = trace
//   trace = big-spike
//   peak_users = 350
//   [controller]
//   kind = dcm
//   [run]
//   duration = 700
#include <cstdio>
#include <exception>
#include <fstream>

#include "dcm.h"

using namespace dcm;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <scenario-name|experiment.ini> [output_prefix]\n",
                 argv[0]);
    return 2;
  }
  set_log_level(LogLevel::kWarn);
  try {
    const scenario::Scenario spec = scenario::has_scenario(argv[1])
                                        ? scenario::get_scenario(argv[1])
                                        : scenario::Scenario::load(argv[1]);
    const core::ExperimentConfig config = spec.experiment();
    const core::ExperimentResult result = core::run_experiment(config);

    scenario::print_summary(result);
    if (argc > 2) {
      const std::string path = std::string(argv[2]) + "_timeline.csv";
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot open " + path);
      const workload::Trace* trace =
          config.workload.kind == core::WorkloadSpec::Kind::kTrace
              ? &config.workload.trace
              : nullptr;
      scenario::write_timeline_csv(out, result, trace);
      std::printf("wrote %s\n", path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
