// dcm_runner — config-file-driven experiment runner.
//
//   $ ./dcm_runner experiment.ini [output_prefix]
//
// Runs the experiment described by the INI file (see
// src/core/config_loader.h for the schema), prints a summary, and — when an
// output prefix is given — writes per-second CSV timelines.
//
// Example configuration:
//
//   [hardware]
//   app = 1
//   db = 1
//   [workload]
//   kind = trace
//   trace = big-spike
//   peak_users = 350
//   [controller]
//   kind = dcm
//   [run]
//   duration = 700
#include <cstdio>
#include <exception>

#include "common/csv.h"
#include "core/config_loader.h"
#include "core/dcm.h"

using namespace dcm;

namespace {

void write_timelines(const std::string& prefix, const core::ExperimentResult& result) {
  CsvWriter writer(prefix + "_timeline.csv");
  std::vector<std::string> header = {"t_s", "rt_ms", "throughput"};
  for (const auto& tier : result.tiers) {
    header.push_back(tier.name + "_vms");
    header.push_back(tier.name + "_util");
  }
  writer.write_header(header);
  const auto& rt = result.client.response_time_series().buckets();
  const auto& tp = result.client.throughput_series().buckets();
  size_t seconds = std::max(rt.size(), tp.size());
  for (const auto& tier : result.tiers) {
    seconds = std::max(seconds, tier.provisioned_vms.buckets().size());
  }
  const auto mean_at = [](const auto& buckets, size_t i) {
    return i < buckets.size() ? buckets[i].stat.mean() : 0.0;
  };
  const auto sum_at = [](const auto& buckets, size_t i) {
    return i < buckets.size() ? buckets[i].stat.sum() : 0.0;
  };
  for (size_t t = 0; t < seconds; ++t) {
    std::vector<double> row = {static_cast<double>(t), mean_at(rt, t) * 1e3, sum_at(tp, t)};
    for (const auto& tier : result.tiers) {
      row.push_back(mean_at(tier.provisioned_vms.buckets(), t));
      row.push_back(mean_at(tier.cpu_util.buckets(), t));
    }
    writer.write_row(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <experiment.ini> [output_prefix]\n", argv[0]);
    return 2;
  }
  set_log_level(LogLevel::kWarn);
  try {
    const core::ExperimentConfig config = core::experiment_from_file(argv[1]);
    const core::ExperimentResult result = core::run_experiment(config);

    std::printf("throughput            : %.1f req/s\n", result.mean_throughput);
    std::printf("response time         : mean %.0f ms, p95 %.0f ms, max %.0f ms\n",
                result.mean_response_time * 1e3, result.p95_response_time * 1e3,
                result.max_response_time * 1e3);
    std::printf("completed / errors    : %llu / %llu\n",
                static_cast<unsigned long long>(result.completed),
                static_cast<unsigned long long>(result.errors));
    std::printf("SLA violation (>1 s)  : %.1f%% of seconds\n",
                result.sla_violation_fraction * 100.0);
    std::printf("VM-seconds            : %.0f (%.2f req per VM-second)\n",
                result.total_vm_seconds, result.requests_per_vm_second);
    std::printf("control actions       : %zu\n", result.actions.size());
    for (const auto& action : result.actions) {
      std::printf("  %8.1fs  %-7s %-10s %s\n", sim::to_seconds(action.time),
                  action.tier.c_str(), action.action.c_str(), action.detail.c_str());
    }
    if (argc > 2) {
      write_timelines(argv[2], result);
      std::printf("wrote %s_timeline.csv\n", argv[2]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
