// Bursty-workload autoscaling: DCM vs hardware-only EC2-AutoScale.
//
//   $ ./bursty_autoscaling [trace.csv] [output_prefix]
//
// Replays a user-count trace (default: the built-in Large-Variation trace)
// against both controllers and writes per-second CSV timelines — the data
// behind the paper's Fig. 5 panels — to <prefix>_dcm.csv / <prefix>_ec2.csv.
//
// Thin client of the scenario registry: the two runs are the registered
// "fig5" / "fig5-ec2" scenarios; a trace CSV on the command line overrides
// their workload.trace. All output goes through the shared dcm-result-v1
// writers.
#include <cstdio>
#include <fstream>
#include <string>

#include "dcm.h"

using namespace dcm;

namespace {

core::ExperimentResult run_scenario(const char* name, const char* trace_csv,
                                    core::ExperimentConfig* config_out) {
  scenario::Scenario spec = scenario::get_scenario(name);
  if (trace_csv != nullptr) spec.workload.trace = trace_csv;
  *config_out = spec.experiment();
  return core::run_experiment(*config_out);
}

void write_csv(const std::string& path, const core::ExperimentResult& result,
               const workload::Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  scenario::write_timeline_csv(out, result, &trace);
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);  // keep the console output compact
  const char* trace_csv = argc > 1 ? argv[1] : nullptr;
  const std::string prefix = argc > 2 ? argv[2] : "bursty";

  core::ExperimentConfig dcm_config;
  core::ExperimentConfig ec2_config;
  const auto dcm = run_scenario("fig5", trace_csv, &dcm_config);
  const auto ec2 = run_scenario("fig5-ec2", trace_csv, &ec2_config);

  const workload::Trace& trace = dcm_config.workload.trace;
  std::printf("trace: %zu s, users %0.f mean / %d peak\n\n", trace.step_count(),
              trace.mean_users(), trace.max_users());

  scenario::print_comparison({"DCM", "EC2-AutoScale"}, {&dcm, &ec2});

  write_csv(prefix + "_dcm.csv", dcm, trace);
  write_csv(prefix + "_ec2.csv", ec2, ec2_config.workload.trace);
  std::printf("\nwrote %s_dcm.csv and %s_ec2.csv\n", prefix.c_str(), prefix.c_str());
  return 0;
}
