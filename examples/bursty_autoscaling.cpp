// Bursty-workload autoscaling: DCM vs hardware-only EC2-AutoScale.
//
//   $ ./bursty_autoscaling [trace.csv] [output_prefix]
//
// Replays a user-count trace (default: the built-in Large-Variation trace)
// against both controllers and writes per-second CSV timelines — the data
// behind the paper's Fig. 5 panels — to <prefix>_dcm.csv / <prefix>_ec2.csv.
#include <cstdio>
#include <string>

#include "common/csv.h"
#include "core/dcm.h"

using namespace dcm;

namespace {

core::ExperimentResult run(const workload::Trace& trace, core::ControllerSpec controller) {
  core::ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 200, 80};
  config.workload = core::WorkloadSpec::trace_driven(trace);
  config.controller = std::move(controller);
  config.duration_seconds = sim::to_seconds(trace.duration());
  config.warmup_seconds = 30.0;
  return core::run_experiment(config);
}

void write_csv(const std::string& path, const core::ExperimentResult& result,
               const workload::Trace& trace) {
  CsvWriter writer(path);
  writer.write_header({"t_s", "users", "rt_ms", "throughput", "tomcat_vms", "tomcat_util",
                       "mysql_vms", "mysql_util"});
  const auto& rt = result.client.response_time_series().buckets();
  const auto& tp = result.client.throughput_series().buckets();
  const size_t seconds = static_cast<size_t>(sim::to_seconds(trace.duration()));
  const auto bucket_mean = [](const auto& buckets, size_t i) {
    return i < buckets.size() ? buckets[i].stat.mean() : 0.0;
  };
  const auto bucket_sum = [](const auto& buckets, size_t i) {
    return i < buckets.size() ? buckets[i].stat.sum() : 0.0;
  };
  for (size_t t = 0; t < seconds; ++t) {
    writer.write_row(std::vector<double>{
        static_cast<double>(t),
        static_cast<double>(trace.users_at(sim::from_seconds(static_cast<double>(t)))),
        bucket_mean(rt, t) * 1e3, bucket_sum(tp, t),
        bucket_mean(result.tiers[1].provisioned_vms.buckets(), t),
        bucket_mean(result.tiers[1].cpu_util.buckets(), t),
        bucket_mean(result.tiers[2].provisioned_vms.buckets(), t),
        bucket_mean(result.tiers[2].cpu_util.buckets(), t)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);  // keep the console output compact
  const workload::Trace trace =
      argc > 1 ? workload::Trace::load_csv(argv[1]) : workload::Trace::large_variation();
  const std::string prefix = argc > 2 ? argv[2] : "bursty";

  std::printf("trace: %zu s, users %0.f mean / %d peak\n", trace.step_count(),
              trace.mean_users(), trace.max_users());

  control::DcmConfig dcm_config;
  dcm_config.app_tier_model = core::tomcat_reference_model();
  dcm_config.db_tier_model = core::mysql_reference_model();

  const auto dcm = run(trace, core::ControllerSpec::dcm_controller(dcm_config));
  const auto ec2 = run(trace, core::ControllerSpec::ec2());

  std::printf("\n                     %12s %14s\n", "DCM", "EC2-AutoScale");
  std::printf("mean rt (ms)         %12.1f %14.1f\n", dcm.mean_response_time * 1e3,
              ec2.mean_response_time * 1e3);
  std::printf("p95 rt (ms)          %12.1f %14.1f\n", dcm.p95_response_time * 1e3,
              ec2.p95_response_time * 1e3);
  std::printf("max rt (ms)          %12.1f %14.1f\n", dcm.max_response_time * 1e3,
              ec2.max_response_time * 1e3);
  std::printf("throughput (req/s)   %12.1f %14.1f\n", dcm.mean_throughput,
              ec2.mean_throughput);
  std::printf("scale events         %12d %14d\n",
              dcm.action_count("scale_out") + dcm.action_count("scale_in"),
              ec2.action_count("scale_out") + ec2.action_count("scale_in"));
  std::printf("pool re-allocations  %12d %14d\n",
              dcm.action_count("set_stp") + dcm.action_count("set_conns"), 0);

  write_csv(prefix + "_dcm.csv", dcm, trace);
  write_csv(prefix + "_ec2.csv", ec2, trace);
  std::printf("\nwrote %s_dcm.csv and %s_ec2.csv\n", prefix.c_str(), prefix.c_str());
  return 0;
}
