// Failure drill: VM crashes under live load, with and without a controller.
//
//   $ ./failure_drill
//
// Injects a Tomcat crash at t=120 s and a MySQL crash at t=240 s while
// realistic clients drive the system, and shows how the EC2-AutoScale
// controller detects the lost capacity (utilisation of the survivors
// spikes) and boots replacements — versus an uncontrolled deployment that
// stays degraded.
#include <cstdio>

#include "bus/broker.h"
#include "control/ec2_autoscale.h"
#include "dcm.h"

using namespace dcm;

namespace {

struct DrillOutcome {
  double x_before, x_degraded, x_recovered;
  uint64_t errors;
  int replacements;
};

DrillOutcome run_drill(bool with_controller) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 2, 2}, {1000, 100, 40}));
  bus::Broker broker;
  ntier::MonitorFleet fleet(engine, app, broker);
  std::unique_ptr<control::Ec2AutoScaleController> controller;
  if (with_controller) {
    controller = std::make_unique<control::Ec2AutoScaleController>(engine, app, broker);
    controller->start();
  }

  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  auto generator = workload::make_rubbos_clients(engine, app, catalog, 400);
  generator->start();

  engine.schedule_at(sim::from_seconds(120.0), [&] { app.tier(1).fail_one(); });
  engine.schedule_at(sim::from_seconds(240.0), [&] { app.tier(2).fail_one(); });
  engine.run_until(sim::from_seconds(480.0));

  DrillOutcome outcome;
  const auto& stats = generator->stats();
  outcome.x_before = stats.mean_throughput(sim::from_seconds(60.0), sim::from_seconds(120.0));
  outcome.x_degraded = stats.mean_throughput(sim::from_seconds(125.0), sim::from_seconds(180.0));
  outcome.x_recovered =
      stats.mean_throughput(sim::from_seconds(360.0), sim::from_seconds(480.0));
  outcome.errors = stats.errors();
  outcome.replacements = 0;
  if (controller) {
    for (const auto& action : controller->log().filtered("scale_out")) {
      (void)action;
      ++outcome.replacements;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::puts("=== failure drill: tomcat crash @120s, mysql crash @240s, 400 users ===\n");

  const DrillOutcome bare = run_drill(false);
  const DrillOutcome managed = run_drill(true);

  std::printf("%-28s %14s %14s\n", "", "uncontrolled", "EC2-AutoScale");
  std::printf("%-28s %11.1f/s %11.1f/s\n", "throughput before failures", bare.x_before,
              managed.x_before);
  std::printf("%-28s %11.1f/s %11.1f/s\n", "throughput just after crash", bare.x_degraded,
              managed.x_degraded);
  std::printf("%-28s %11.1f/s %11.1f/s\n", "throughput at end", bare.x_recovered,
              managed.x_recovered);
  std::printf("%-28s %14llu %14llu\n", "failed requests",
              static_cast<unsigned long long>(bare.errors),
              static_cast<unsigned long long>(managed.errors));
  std::printf("%-28s %14d %14d\n", "replacement scale-outs", bare.replacements,
              managed.replacements);
  std::puts("\n(the controller detects the survivors' saturation and restores capacity;");
  std::puts(" the uncontrolled deployment stays degraded for the rest of the run)");
  return 0;
}
