// JSON trajectory reporter for the microbenchmarks.
//
// Emits a compact, diff-friendly BENCH_micro.json next to the working
// directory (override with DCM_BENCH_JSON=/path). One object per benchmark
// run with ns/op and items/s, so successive PRs can be compared with a
// one-line jq against the committed baseline (see README, "Microbenchmark
// trajectory").
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace dcm::bench {

// Extends the console reporter so it can be installed as the (single)
// display reporter: normal console output plus the JSON side file.
class JsonTrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTrajectoryReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // Keep per-run entries and mean aggregates; drop median/stddev/cv so
      // the file stays a flat name -> number mapping.
      if (run.run_type == Run::RT_Aggregate && run.aggregate_name != "mean") continue;
      Row row;
      row.name = run.benchmark_name();
      row.ns_per_op = run.GetAdjustedRealTime();  // benchmarks use ns time units
      const auto items = run.counters.find("items_per_second");
      row.items_per_second = items != run.counters.end() ? items->second.value : 0.0;
      rows_.push_back(std::move(row));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"schema\": \"dcm-bench-v1\",\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"ns_per_op\": %.2f, \"items_per_second\": %.0f}%s\n",
                   escaped(rows_[i].name).c_str(), rows_[i].ns_per_op,
                   rows_[i].items_per_second, i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct Row {
    std::string name;
    double ns_per_op = 0.0;
    double items_per_second = 0.0;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::vector<Row> rows_;
};

}  // namespace dcm::bench
