// Ablation studies over DCM's design choices (DESIGN.md §5):
//   A1 — thread-pool headroom factor (paper: deploy more than the
//        theoretical N_b because not all threads stay active)
//   A2 — load-balancing policy (round-robin vs least-connections)
//   A3 — control period (responsiveness vs stability)
//   A4 — soft-resource adaptation only vs VM scaling only vs both
//   A5 — model quality (wrong models, with and without online refit)
//
// A1/A3/A5 are declarative sweeps over registered scenarios (fixed seed, so
// every variant faces the identical trace); A4 compares three registered
// scenarios directly; A2 stays hand-wired because the LB policy is a
// topology-level knob the scenario schema deliberately doesn't expose.
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"
#include "scenario/registry.h"
#include "scenario/sweep.h"

using namespace dcm;

namespace {

void add_result_row(TextTable& table, const std::string& label,
                    const core::ExperimentResult& r) {
  table.add_row({label, format_number(r.mean_response_time * 1e3, 1),
                 format_number(r.p95_response_time * 1e3, 1),
                 format_number(r.max_response_time * 1e3, 1),
                 format_number(r.mean_throughput, 1),
                 std::to_string(r.action_count("scale_out"))});
}

TextTable result_table() {
  return TextTable({"variant", "rt_mean_ms", "rt_p95_ms", "rt_max_ms", "x_req_s", "scale_outs"});
}

// One-axis sweep over a registered scenario, paired on the base root seed.
std::vector<scenario::SweepRun> axis_sweep(const char* scenario_name, const char* axis) {
  scenario::SweepPlan plan;
  plan.base = scenario::get_scenario(scenario_name);
  plan.axes.push_back(scenario::parse_axis(axis));
  plan.seed_policy = scenario::SeedPolicy::kFixed;
  return scenario::SweepRunner(std::move(plan), /*jobs=*/0).run();
}

core::ExperimentResult run_scenario(const char* name) {
  return core::run_experiment(scenario::get_scenario(name).experiment());
}

}  // namespace

int main() {
  std::puts("=== Ablation studies ===\n");

  {
    std::puts("--- A1: DCM thread-pool headroom factor ---");
    TextTable table = result_table();
    for (const auto& run : axis_sweep("fig5", "controller.headroom=1,1.25,1.5,2,3")) {
      add_result_row(table, "headroom=" + run.overrides[0].second, run.result);
    }
    table.print();
    std::puts("");
  }

  {
    std::puts("--- A3: control period (EC2-AutoScale baseline) ---");
    TextTable table = result_table();
    for (const auto& run : axis_sweep("fig5-ec2", "controller.control_period=5,15,30,60")) {
      add_result_row(table, "period=" + run.overrides[0].second + "s", run.result);
    }
    table.print();
    std::puts("");
  }

  {
    std::puts("--- A4: which DCM level does the work? ---");
    TextTable table = result_table();
    add_result_row(table, "vm-scaling only (EC2)", run_scenario("fig5-ec2"));
    add_result_row(table, "soft-resources only", run_scenario("ablation-soft-only"));
    add_result_row(table, "full DCM (both levels)", run_scenario("fig5"));
    table.print();
    std::puts("");
  }

  {
    std::puts("--- A5: model quality — what if DCM's trained models are wrong? ---");
    TextTable table = result_table();
    add_result_row(table, "correct models", run_scenario("fig5"));
    // Badly wrong models (optima near the default pools, N_b ≈ 200/160):
    // DCM degenerates to hardware-only behaviour — then online refitting
    // from monitoring samples recovers it.
    const auto wrong =
        axis_sweep("ablation-wrong-models", "controller.online_estimation=false,true");
    add_result_row(table, "wrong models (N_b 200/160)", wrong[0].result);
    add_result_row(table, "wrong models + online refit", wrong[1].result);
    table.print();
    std::puts("");
  }

  {
    std::puts("--- A2: static allocation sensitivity at fixed 1/2/1 (LB stress) ---");
    // Round-robin vs least-connections is wired at topology level; compare
    // under heterogeneous load by skewing demand variability.
    TextTable table({"lb_policy", "x_req_s", "rt_mean_ms"});
    for (const auto policy : {ntier::LbPolicy::kRoundRobin, ntier::LbPolicy::kLeastConnections}) {
      core::ExperimentConfig config;
      config.hardware = {1, 2, 1};
      config.soft = {1000, 100, 18};
      config.workload = core::WorkloadSpec::rubbos(400);
      config.controller = core::ControllerSpec::none();
      config.duration_seconds = 150.0;
      config.warmup_seconds = 50.0;

      // Build manually to override the LB policy.
      sim::Engine engine;
      auto app_config = core::rubbos_app_config(config.hardware, config.soft, config.seed);
      for (auto& tier : app_config.tiers) tier.lb_policy = policy;
      ntier::NTierApp app(engine, app_config);
      const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
      auto generator = workload::make_rubbos_clients(engine, app, catalog, 400);
      generator->start();
      engine.run_until(sim::from_seconds(config.duration_seconds));
      const double x = generator->stats().mean_throughput(
          sim::from_seconds(config.warmup_seconds),
          sim::from_seconds(config.duration_seconds));
      table.add_row({policy == ntier::LbPolicy::kRoundRobin ? "round-robin" : "least-conn",
                     format_number(x, 1),
                     format_number(generator->stats().response_time_stats().mean() * 1e3, 1)});
    }
    table.print();
  }
  return 0;
}
