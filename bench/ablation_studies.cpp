// Ablation studies over DCM's design choices (DESIGN.md §5):
//   A1 — thread-pool headroom factor (paper: deploy more than the
//        theoretical N_b because not all threads stay active)
//   A2 — load-balancing policy (round-robin vs least-connections)
//   A3 — control period (responsiveness vs stability)
//   A4 — soft-resource adaptation only vs VM scaling only vs both
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"

using namespace dcm;

namespace {

core::ExperimentConfig trace_config() {
  core::ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 200, 80};
  config.workload = core::WorkloadSpec::trace_driven(workload::Trace::large_variation());
  config.duration_seconds = 700.0;
  config.warmup_seconds = 30.0;
  return config;
}

control::DcmConfig dcm_defaults() {
  control::DcmConfig dcm;
  dcm.app_tier_model = core::tomcat_reference_model();
  dcm.db_tier_model = core::mysql_reference_model();
  return dcm;
}

void add_result_row(TextTable& table, const std::string& label,
                    const core::ExperimentResult& r) {
  table.add_row({label, format_number(r.mean_response_time * 1e3, 1),
                 format_number(r.p95_response_time * 1e3, 1),
                 format_number(r.max_response_time * 1e3, 1),
                 format_number(r.mean_throughput, 1),
                 std::to_string(r.action_count("scale_out"))});
}

TextTable result_table() {
  return TextTable({"variant", "rt_mean_ms", "rt_p95_ms", "rt_max_ms", "x_req_s", "scale_outs"});
}

}  // namespace

int main() {
  std::puts("=== Ablation studies ===\n");

  {
    std::puts("--- A1: DCM thread-pool headroom factor ---");
    TextTable table = result_table();
    for (const double headroom : {1.0, 1.25, 1.5, 2.0, 3.0}) {
      control::DcmConfig dcm = dcm_defaults();
      dcm.stp_headroom = headroom;
      auto config = trace_config();
      config.controller = core::ControllerSpec::dcm_controller(dcm);
      add_result_row(table, "headroom=" + format_number(headroom, 2),
                     core::run_experiment(config));
    }
    table.print();
    std::puts("");
  }

  {
    std::puts("--- A3: control period (EC2-AutoScale baseline) ---");
    TextTable table = result_table();
    for (const double period : {5.0, 15.0, 30.0, 60.0}) {
      control::ScalingPolicy policy;
      policy.control_period = sim::from_seconds(period);
      auto config = trace_config();
      config.controller = core::ControllerSpec::ec2(policy);
      add_result_row(table, "period=" + format_number(period, 0) + "s",
                     core::run_experiment(config));
    }
    table.print();
    std::puts("");
  }

  {
    std::puts("--- A4: which DCM level does the work? ---");
    TextTable table = result_table();

    // VM scaling only (the baseline).
    {
      auto config = trace_config();
      config.controller = core::ControllerSpec::ec2();
      add_result_row(table, "vm-scaling only (EC2)", core::run_experiment(config));
    }
    // Soft-resource adaptation only: clamp tiers at one VM each so only the
    // APP-agent can act.
    {
      control::DcmConfig dcm = dcm_defaults();
      auto config = trace_config();
      config.max_vms_per_tier = 1;
      config.controller = core::ControllerSpec::dcm_controller(dcm);
      add_result_row(table, "soft-resources only", core::run_experiment(config));
    }
    // Full DCM.
    {
      auto config = trace_config();
      config.controller = core::ControllerSpec::dcm_controller(dcm_defaults());
      add_result_row(table, "full DCM (both levels)", core::run_experiment(config));
    }
    table.print();
    std::puts("");
  }

  {
    std::puts("--- A5: model quality — what if DCM's trained models are wrong? ---");
    TextTable table = result_table();
    // Correct models (the trained Table I optima).
    {
      auto config = trace_config();
      config.controller = core::ControllerSpec::dcm_controller(dcm_defaults());
      add_result_row(table, "correct models", core::run_experiment(config));
    }
    // Badly wrong models: optima near the default pools (N_b ≈ 200/160),
    // i.e. DCM degenerates to hardware-only behaviour.
    control::DcmConfig wrong = dcm_defaults();
    wrong.app_tier_model.params = {2.84e-2, 1e-4, (2.84e-2 - 1e-4) / (200.0 * 200.0)};
    wrong.db_tier_model.params = {7.19e-3, 1e-4, (7.19e-3 - 1e-4) / (160.0 * 160.0)};
    {
      auto config = trace_config();
      config.controller = core::ControllerSpec::dcm_controller(wrong);
      add_result_row(table, "wrong models (N_b 200/160)", core::run_experiment(config));
    }
    // Wrong models + online refitting from monitoring samples.
    {
      control::DcmConfig refit = wrong;
      refit.online_estimation = true;
      auto config = trace_config();
      config.controller = core::ControllerSpec::dcm_controller(refit);
      add_result_row(table, "wrong models + online refit", core::run_experiment(config));
    }
    table.print();
    std::puts("");
  }

  {
    std::puts("--- A2: static allocation sensitivity at fixed 1/2/1 (LB stress) ---");
    // Round-robin vs least-connections is wired at topology level; compare
    // under heterogeneous load by skewing demand variability.
    TextTable table({"lb_policy", "x_req_s", "rt_mean_ms"});
    for (const auto policy : {ntier::LbPolicy::kRoundRobin, ntier::LbPolicy::kLeastConnections}) {
      core::ExperimentConfig config;
      config.hardware = {1, 2, 1};
      config.soft = {1000, 100, 18};
      config.workload = core::WorkloadSpec::rubbos(400);
      config.controller = core::ControllerSpec::none();
      config.duration_seconds = 150.0;
      config.warmup_seconds = 50.0;

      // Build manually to override the LB policy.
      sim::Engine engine;
      auto app_config = core::rubbos_app_config(config.hardware, config.soft, config.seed);
      for (auto& tier : app_config.tiers) tier.lb_policy = policy;
      ntier::NTierApp app(engine, app_config);
      const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
      auto generator = workload::make_rubbos_clients(engine, app, catalog, 400);
      generator->start();
      engine.run_until(sim::from_seconds(config.duration_seconds));
      const double x = generator->stats().mean_throughput(
          sim::from_seconds(config.warmup_seconds),
          sim::from_seconds(config.duration_seconds));
      table.add_row({policy == ntier::LbPolicy::kRoundRobin ? "round-robin" : "least-conn",
                     format_number(x, 1),
                     format_number(generator->stats().response_time_stats().mean() * 1e3, 1)});
    }
    table.print();
  }
  return 0;
}
