// Fig. 5 — DCM vs EC2-AutoScale under the "Large Variation" bursty trace.
//
// Reproduces all six panels as printed series:
//   (a)/(b) per-interval response time and throughput for DCM / EC2
//   (c)/(d) Tomcat tier VM count + CPU utilisation for DCM / EC2
//   (e)/(f) MySQL tier VM count + CPU utilisation for DCM / EC2
// plus the scaling-activity timeline and a summary table. Expected shape:
// the EC2 case shows >1 s response-time spikes coinciding with its scaling
// activity (bursts near 50-90 s, 220-260 s, 520-560 s); DCM stays stable.
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"

using namespace dcm;

namespace {

core::ExperimentResult run_with(core::ControllerSpec controller, const workload::Trace& trace) {
  core::ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 200, 80};
  config.workload = core::WorkloadSpec::trace_driven(trace);
  config.controller = std::move(controller);
  config.duration_seconds = 700.0;
  config.warmup_seconds = 30.0;
  return core::run_experiment(config);
}

double series_at(const metrics::TimeSeries& series, size_t second,
                 bool rate = false) {
  const auto& buckets = series.buckets();
  if (second >= buckets.size()) return 0.0;
  return rate ? buckets[second].stat.sum() : buckets[second].stat.mean();
}

// Mean of a window [from, from+width) of per-second buckets.
double window_mean(const metrics::TimeSeries& series, size_t from, size_t width,
                   bool rate = false) {
  double sum = 0.0;
  int n = 0;
  for (size_t s = from; s < from + width; ++s) {
    sum += series_at(series, s, rate);
    ++n;
  }
  return n ? sum / n : 0.0;
}

void print_timeline(const char* name, const core::ExperimentResult& result,
                    const workload::Trace& trace) {
  std::printf("--- %s: 10 s-window series (panels a/c/e style) ---\n", name);
  TextTable table({"t_s", "users", "rt_ms", "x_req_s", "tomcat_vms", "tomcat_util",
                   "mysql_vms", "mysql_util"});
  for (size_t t = 0; t + 10 <= 700; t += 10) {
    table.add_row(
        {static_cast<double>(t), static_cast<double>(trace.users_at(sim::from_seconds(
                                      static_cast<double>(t)))),
         window_mean(result.client.response_time_series(), t, 10) * 1000.0,
         window_mean(result.client.throughput_series(), t, 10, /*rate=*/true),
         window_mean(result.tiers[1].provisioned_vms, t, 10),
         window_mean(result.tiers[1].cpu_util, t, 10),
         window_mean(result.tiers[2].provisioned_vms, t, 10),
         window_mean(result.tiers[2].cpu_util, t, 10)},
        2);
  }
  table.print();

  std::printf("\n--- %s: scaling & soft-resource activity ---\n", name);
  for (const auto& action : result.actions) {
    std::printf("  %8.1fs  %-7s %-10s %s\n", sim::to_seconds(action.time),
                action.tier.c_str(), action.action.c_str(), action.detail.c_str());
  }
  std::puts("");
}

}  // namespace

int main() {
  std::puts("=== Fig. 5: DCM vs EC2-AutoScale, 'Large Variation' bursty trace ===\n");
  const workload::Trace trace = workload::Trace::large_variation();

  control::DcmConfig dcm_config;
  dcm_config.app_tier_model = core::tomcat_reference_model();
  dcm_config.db_tier_model = core::mysql_reference_model();

  const auto dcm = run_with(core::ControllerSpec::dcm_controller(dcm_config), trace);
  const auto ec2 = run_with(core::ControllerSpec::ec2(), trace);

  print_timeline("DCM", dcm, trace);
  print_timeline("EC2-AutoScale", ec2, trace);

  std::puts("--- summary (post-warmup) ---");
  TextTable summary({"metric", "DCM", "EC2-AutoScale"});
  summary.add_row({"mean response time (ms)", format_number(dcm.mean_response_time * 1e3, 1),
                   format_number(ec2.mean_response_time * 1e3, 1)});
  summary.add_row({"p95 response time (ms)", format_number(dcm.p95_response_time * 1e3, 1),
                   format_number(ec2.p95_response_time * 1e3, 1)});
  summary.add_row({"max response time (ms)", format_number(dcm.max_response_time * 1e3, 1),
                   format_number(ec2.max_response_time * 1e3, 1)});
  summary.add_row({"mean throughput (req/s)", format_number(dcm.mean_throughput, 1),
                   format_number(ec2.mean_throughput, 1)});
  summary.add_row({"completed requests", std::to_string(dcm.completed),
                   std::to_string(ec2.completed)});
  summary.add_row({"scale-out events", std::to_string(dcm.action_count("scale_out")),
                   std::to_string(ec2.action_count("scale_out"))});
  summary.add_row({"scale-in events", std::to_string(dcm.action_count("scale_in")),
                   std::to_string(ec2.action_count("scale_in"))});
  summary.add_row({"SLA violation (rt>1s)",
                   format_number(dcm.sla_violation_fraction * 100.0, 1) + "%",
                   format_number(ec2.sla_violation_fraction * 100.0, 1) + "%"});
  summary.add_row({"VM-seconds (tomcat+mysql)", format_number(dcm.total_vm_seconds, 0),
                   format_number(ec2.total_vm_seconds, 0)});
  summary.add_row({"requests per VM-second", format_number(dcm.requests_per_vm_second, 2),
                   format_number(ec2.requests_per_vm_second, 2)});
  summary.add_row({"soft-resource actions",
                   std::to_string(dcm.action_count("set_stp") + dcm.action_count("set_conns")),
                   "0"});
  summary.print();
  std::puts("\n(paper: EC2 case shows >1 s RT spikes at its scale events; DCM stays stable)");
  return 0;
}
