// Fig. 5 — DCM vs EC2-AutoScale under the "Large Variation" bursty trace.
//
// Reproduces all six panels as printed series:
//   (a)/(b) per-interval response time and throughput for DCM / EC2
//   (c)/(d) Tomcat tier VM count + CPU utilisation for DCM / EC2
//   (e)/(f) MySQL tier VM count + CPU utilisation for DCM / EC2
// plus the scaling-activity timeline and a summary table. Expected shape:
// the EC2 case shows >1 s response-time spikes coinciding with its scaling
// activity (bursts near 50-90 s, 220-260 s, 520-560 s); DCM stays stable.
//
// Thin client of the scenario registry: both runs are the registered
// "fig5" / "fig5-ec2" scenarios (identical deployment, trace and root seed,
// so the comparison is paired); all output goes through the shared
// dcm-result-v1 printers.
#include <cstdio>

#include "scenario/registry.h"
#include "scenario/result_writer.h"

using namespace dcm;

namespace {

struct NamedRun {
  const char* label;
  core::ExperimentConfig experiment;
  core::ExperimentResult result;
};

NamedRun run(const char* label, const char* scenario_name) {
  NamedRun out;
  out.label = label;
  out.experiment = scenario::get_scenario(scenario_name).experiment();
  out.result = core::run_experiment(out.experiment);
  return out;
}

}  // namespace

int main() {
  std::puts("=== Fig. 5: DCM vs EC2-AutoScale, 'Large Variation' bursty trace ===\n");

  const NamedRun dcm_run = run("DCM", "fig5");
  const NamedRun ec2_run = run("EC2-AutoScale", "fig5-ec2");

  scenario::print_windowed_timeline(dcm_run.label, dcm_run.result,
                                    &dcm_run.experiment.workload.trace, 700);
  scenario::print_windowed_timeline(ec2_run.label, ec2_run.result,
                                    &ec2_run.experiment.workload.trace, 700);

  std::puts("--- summary (post-warmup) ---");
  scenario::print_comparison({dcm_run.label, ec2_run.label},
                             {&dcm_run.result, &ec2_run.result});
  std::puts("\n(paper: EC2 case shows >1 s RT spikes at its scale events; DCM stays stable)");
  return 0;
}
