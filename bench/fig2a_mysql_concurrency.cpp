// Fig. 2(a) — Impact of request-processing concurrency on MySQL.
//
// A JMeter closed loop with zero think time stresses the MySQL-only
// deployment at precisely controlled concurrency (the worker cap matches
// the user count, the paper's "matching thread pool" discipline). Expected
// shape: throughput peaks near concurrency 40, stays reasonable through 80,
// then collapses toward 600.
#include <cstdio>

#include "common/table.h"
#include "core/topologies.h"
#include "sim/engine.h"
#include "workload/closed_loop.h"

namespace {

struct Point {
  int concurrency;
  double throughput;
  double response_ms;
};

Point measure(int concurrency) {
  using namespace dcm;
  sim::Engine engine;
  ntier::NTierApp app(engine, core::mysql_only_app_config(/*worker_cap=*/concurrency));
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  workload::ClosedLoopConfig config;
  config.users = concurrency;
  config.seed = 1000 + static_cast<uint64_t>(concurrency);
  workload::ClosedLoopGenerator generator(engine, app, core::mysql_query_factory(catalog),
                                          std::move(config));
  generator.start();
  const double duration = 60.0;
  engine.run_until(sim::from_seconds(duration));
  Point p;
  p.concurrency = concurrency;
  p.throughput = generator.stats().mean_throughput(sim::from_seconds(10.0),
                                                   sim::from_seconds(duration));
  p.response_ms = generator.stats().response_time_stats().mean() * 1000.0;
  return p;
}

}  // namespace

int main() {
  using namespace dcm;
  std::puts("=== Fig. 2(a): MySQL throughput vs request processing concurrency ===");
  std::puts("(paper: peak near concurrency 40; reasonable 20-80; collapse by 600)\n");

  const ntier::CpuModelConfig cpu = core::mysql_cpu_model();
  TextTable table({"concurrency", "throughput_qps", "eq7_predicted_qps", "mean_latency_ms"});
  double peak = 0.0;
  int peak_n = 0;
  for (const int n : {1, 5, 10, 20, 30, 36, 40, 50, 60, 80, 100, 120, 160, 200, 300, 400, 600}) {
    const Point p = measure(n);
    table.add_row({static_cast<double>(p.concurrency), p.throughput, cpu.throughput_at(n),
                   p.response_ms});
    if (p.throughput > peak) {
      peak = p.throughput;
      peak_n = n;
    }
  }
  table.print();
  std::printf("\nmeasured peak: %.1f qps at concurrency %d (paper knee: ~40)\n", peak, peak_n);
  return 0;
}
