// Macro benchmark driver — end-to-end events/sec over the registry suite.
//
// Thin main over scenario::run_macro_suite (the same engine behind
// `dcm_run bench`). Prints the console table and, when DCM_BENCH_JSON names
// a path, writes the dcm-bench-v1 "macro" JSON there — mirroring
// micro_benchmarks' reporter contract so CI uploads both trajectories the
// same way. Exits non-zero if any run's result digest deviates from the
// registry reference: a throughput number from a wrong simulation is
// worthless.
//
// Usage: macro_benchmarks [reps]   (default 3)
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "scenario/macro_bench.h"

int main(int argc, char** argv) {
  dcm::scenario::MacroBenchOptions options;
  if (argc > 1) options.repetitions = std::atoi(argv[1]);
  if (options.repetitions < 1) options.repetitions = 1;

  const auto rows = dcm::scenario::run_macro_suite(options);
  dcm::scenario::print_macro_table(rows);

  if (const char* path = std::getenv("DCM_BENCH_JSON")) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "macro_benchmarks: cannot open %s\n", path);
      return 1;
    }
    dcm::scenario::write_macro_json(out, rows);
    std::printf("wrote %s\n", path);
  }
  if (!dcm::scenario::all_digests_ok(rows)) {
    std::fprintf(stderr,
                 "macro_benchmarks: result digest mismatch against the scenario "
                 "registry — the simulation's output changed\n");
    return 1;
  }
  return 0;
}
