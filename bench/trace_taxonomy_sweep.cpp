// Beyond-the-paper sweep: DCM vs EC2-AutoScale across the full AutoScale
// trace taxonomy (Gandhi et al.), of which the paper evaluated only the
// Large-Variation pattern. Shows where concurrency adaptation matters most
// (burst-dominated patterns) and where the two controllers converge
// (slow/smooth patterns).
//
// Declarative 6×2 grid over the registered "fig5" scenario: the trace
// pattern and the controller kind are sweep axes, the seed policy is fixed
// so both controllers face the identical synthesized trace, and the runs
// execute on all available cores (bit-identical results regardless of the
// worker count — see src/scenario/sweep.h).
#include <cstdio>
#include <string>

#include "common/logging.h"
#include "common/table.h"
#include "scenario/registry.h"
#include "scenario/sweep.h"
#include "workload/trace_taxonomy.h"

using namespace dcm;

int main() {
  set_log_level(LogLevel::kWarn);
  std::puts("=== DCM vs EC2-AutoScale across the AutoScale trace taxonomy ===\n");

  std::string patterns;
  for (const auto pattern : workload::all_trace_patterns()) {
    const char* name = workload::trace_pattern_name(pattern);
    patterns += patterns.empty() ? name : "," + std::string(name);
  }

  scenario::SweepPlan plan;
  plan.base = scenario::get_scenario("fig5");
  plan.axes.push_back(scenario::parse_axis("workload.trace=" + patterns));
  plan.axes.push_back(scenario::parse_axis("controller.kind=dcm,ec2"));
  plan.seed_policy = scenario::SeedPolicy::kFixed;
  const auto runs = scenario::SweepRunner(std::move(plan), /*jobs=*/0).run();

  TextTable table({"pattern", "dcm_rt_p95_ms", "ec2_rt_p95_ms", "dcm_rt_max_ms",
                   "ec2_rt_max_ms", "dcm_x", "ec2_x"});
  // controller.kind is the fast axis: runs arrive as (trace, dcm), (trace, ec2).
  for (size_t i = 0; i + 1 < runs.size(); i += 2) {
    const auto& dcm_result = runs[i].result;
    const auto& ec2_result = runs[i + 1].result;
    table.add_row({runs[i].overrides[0].second,
                   format_number(dcm_result.p95_response_time * 1e3, 0),
                   format_number(ec2_result.p95_response_time * 1e3, 0),
                   format_number(dcm_result.max_response_time * 1e3, 0),
                   format_number(ec2_result.max_response_time * 1e3, 0),
                   format_number(dcm_result.mean_throughput, 1),
                   format_number(ec2_result.mean_throughput, 1)});
  }
  table.print();
  std::puts("\n(the paper's Fig. 5 uses large-variation; the sweep shows DCM's advantage");
  std::puts(" is largest on burst-dominated patterns — big-spike, quickly-varying,");
  std::puts(" large-variation — and near-parity on smooth ones, with slightly longer");
  std::puts(" tails on steady ramps where the tighter pools queue briefly until the");
  std::puts(" scale-out lands)");
  return 0;
}
