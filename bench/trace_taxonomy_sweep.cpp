// Beyond-the-paper sweep: DCM vs EC2-AutoScale across the full AutoScale
// trace taxonomy (Gandhi et al.), of which the paper evaluated only the
// Large-Variation pattern. Shows where concurrency adaptation matters most
// (burst-dominated patterns) and where the two controllers converge
// (slow/smooth patterns).
#include <cstdio>

#include "common/logging.h"
#include "common/table.h"
#include "core/experiment.h"
#include "workload/trace_taxonomy.h"

using namespace dcm;

namespace {

core::ExperimentResult run(const workload::Trace& trace, core::ControllerSpec controller) {
  core::ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 200, 80};
  config.workload = core::WorkloadSpec::trace_driven(trace);
  config.controller = std::move(controller);
  config.duration_seconds = sim::to_seconds(trace.duration());
  config.warmup_seconds = 30.0;
  return core::run_experiment(config);
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  std::puts("=== DCM vs EC2-AutoScale across the AutoScale trace taxonomy ===\n");

  control::DcmConfig dcm_config;
  dcm_config.app_tier_model = core::tomcat_reference_model();
  dcm_config.db_tier_model = core::mysql_reference_model();

  TextTable table({"pattern", "dcm_rt_p95_ms", "ec2_rt_p95_ms", "dcm_rt_max_ms",
                   "ec2_rt_max_ms", "dcm_x", "ec2_x"});
  for (const auto pattern : workload::all_trace_patterns()) {
    const workload::Trace trace = workload::make_trace(pattern);
    const auto dcm = run(trace, core::ControllerSpec::dcm_controller(dcm_config));
    const auto ec2 = run(trace, core::ControllerSpec::ec2());
    table.add_row({trace_pattern_name(pattern), format_number(dcm.p95_response_time * 1e3, 0),
                   format_number(ec2.p95_response_time * 1e3, 0),
                   format_number(dcm.max_response_time * 1e3, 0),
                   format_number(ec2.max_response_time * 1e3, 0),
                   format_number(dcm.mean_throughput, 1),
                   format_number(ec2.mean_throughput, 1)});
  }
  table.print();
  std::puts("\n(the paper's Fig. 5 uses large-variation; the sweep shows DCM's advantage");
  std::puts(" is largest on burst-dominated patterns — big-spike, quickly-varying,");
  std::puts(" large-variation — and near-parity on smooth ones, with slightly longer");
  std::puts(" tails on steady ramps where the tighter pools queue briefly until the");
  std::puts(" scale-out lands)");
  return 0;
}
