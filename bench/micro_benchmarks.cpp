// Microbenchmarks of the simulator's hot paths (google-benchmark).
//
// In addition to the console output, every run writes BENCH_micro.json
// (override the path with DCM_BENCH_JSON) so CI can archive the trajectory
// and PRs can be compared against the committed baseline.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "bench_json_reporter.h"
#include "bus/consumer.h"
#include "bus/producer.h"
#include "common/rng.h"
#include "fit/levenberg_marquardt.h"
#include "metrics/p2_quantile.h"
#include "model/concurrency_model.h"
#include "ntier/cpu_scheduler.h"
#include "ntier/metric_sample.h"
#include "ntier/slot_pool.h"
#include "scenario/result_writer.h"
#include "scenario/sweep.h"
#include "sim/engine.h"

namespace {

void BM_EngineScheduleDispatch(benchmark::State& state) {
  dcm::sim::Engine engine;
  int64_t t = 0;
  for (auto _ : state) {
    engine.schedule_at(++t, [] {});
    engine.run_until(t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineScheduleDispatch);

void BM_EnginePendingHeap(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    dcm::sim::Engine engine;
    for (int i = 0; i < depth; ++i) {
      engine.schedule_at(i, [] {});
    }
    engine.run_until(depth);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * depth);
}
BENCHMARK(BM_EnginePendingHeap)->Arg(1024)->Arg(16384);

void BM_EngineCancelHeavy(benchmark::State& state) {
  // Timeout-style workload: every event gets scheduled with a handle and
  // half are cancelled before they fire — the generation-counted slab must
  // absorb the churn without allocating.
  constexpr int kBatch = 64;
  dcm::sim::Engine engine;
  std::vector<dcm::sim::EventHandle> handles;
  handles.reserve(kBatch);
  int64_t t = 0;
  for (auto _ : state) {
    handles.clear();
    for (int i = 0; i < kBatch; ++i) {
      handles.push_back(engine.schedule_at(t + i + 1, [] {}));
    }
    for (int i = 0; i < kBatch; i += 2) handles[static_cast<size_t>(i)].cancel();
    t += kBatch;
    engine.run_until(t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_EngineCancelHeavy);

void BM_EnginePeriodicTimers(benchmark::State& state) {
  // Monitoring-agent-style load: many staggered periodic timers re-arming
  // forever. Items are timer ticks.
  const int timers = static_cast<int>(state.range(0));
  dcm::sim::Engine engine;
  uint64_t ticks = 0;
  uint64_t* ticks_ptr = &ticks;
  std::vector<dcm::sim::EventHandle> handles;
  handles.reserve(static_cast<size_t>(timers));
  for (int i = 0; i < timers; ++i) {
    handles.push_back(engine.schedule_periodic(1000 + i, [ticks_ptr] { ++*ticks_ptr; }));
  }
  int64_t horizon = 0;
  for (auto _ : state) {
    horizon += 100000;
    engine.run_until(horizon);
  }
  state.SetItemsProcessed(static_cast<int64_t>(ticks));
}
BENCHMARK(BM_EnginePeriodicTimers)->Arg(16)->Arg(256);

void BM_SlotPoolAcquireRelease(benchmark::State& state) {
  dcm::sim::Engine engine;
  dcm::ntier::SlotPool pool(engine, "bench", 64);
  for (auto _ : state) {
    pool.acquire([] {});
    pool.release();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SlotPoolAcquireRelease);

void BM_CpuSchedulerChurn(benchmark::State& state) {
  const int concurrency = static_cast<int>(state.range(0));
  dcm::ntier::CpuModelConfig cpu_config;
  cpu_config.params = {1e-3, 1e-4, 1e-6};
  dcm::sim::Engine engine;
  dcm::ntier::CpuScheduler cpu(engine, cpu_config);
  cpu.set_thread_count(concurrency);
  uint64_t completed = 0;
  std::function<void()> spawn = [&] {
    cpu.submit(1e-3, [&] {
      ++completed;
      spawn();
    });
  };
  for (int i = 0; i < concurrency; ++i) spawn();
  double horizon = 0.0;
  for (auto _ : state) {
    horizon += 0.01;
    engine.run_until(dcm::sim::from_seconds(horizon));
  }
  state.SetItemsProcessed(static_cast<int64_t>(completed));
}
BENCHMARK(BM_CpuSchedulerChurn)->Arg(8)->Arg(64)->Arg(256);

void BM_BusProduceConsume(benchmark::State& state) {
  dcm::bus::Broker broker;
  broker.create_topic("t", {4, 0});
  dcm::bus::Producer producer(broker);
  dcm::bus::Consumer consumer(broker, "g", "t");
  int64_t t = 0;
  for (auto _ : state) {
    ++t;
    producer.send("t", "key-" + std::to_string(t % 16), "payload", t);
    benchmark::DoNotOptimize(consumer.poll(16));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BusProduceConsume);

void BM_MetricSampleSerializeParse(benchmark::State& state) {
  dcm::ntier::MetricSample sample;
  sample.time = 123456789;
  sample.server_id = "tomcat-vm1";
  sample.tier = "tomcat";
  sample.depth = 1;
  sample.vm_state = "ACTIVE";
  sample.throughput = 87.5;
  sample.avg_response_time = 0.042;
  sample.concurrency = 19.7;
  sample.cpu_util = 0.93;
  sample.thread_pool_size = 20;
  sample.conn_pool_size = 18;
  sample.queue_length = 3;
  for (auto _ : state) {
    const std::string payload = sample.serialize();
    benchmark::DoNotOptimize(dcm::ntier::MetricSample::parse(payload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricSampleSerializeParse);

void BM_P2Quantile(benchmark::State& state) {
  dcm::metrics::P2Quantile q(0.95);
  dcm::Rng rng(1);
  for (auto _ : state) {
    q.add(rng.exponential(0.1));
  }
  benchmark::DoNotOptimize(q.value());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_P2Quantile);

void BM_LevenbergMarquardtEq7(benchmark::State& state) {
  // Fit Eq. 7 to a synthetic sweep — the online estimator's refit cost.
  const dcm::model::ServiceTimeParams truth{7.19e-3, 5.04e-3, 1.65e-6};
  std::vector<double> x, y;
  for (int n = 1; n <= 120; n += 4) {
    x.push_back(n);
    y.push_back(dcm::model::server_throughput(truth, n));
  }
  const dcm::fit::ModelFn fn = [](const std::vector<double>& p, double n) {
    return n / (p[0] + p[1] * (n - 1.0) + p[2] * n * (n - 1.0));
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dcm::fit::levenberg_marquardt(fn, x, y, {0.01, 0.001, 1e-5}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LevenbergMarquardtEq7);

void BM_SweepRunner(benchmark::State& state) {
  // A 16-run sweep (4 load levels x 2 controllers x 2 VM caps) executed
  // with the argument's worker-thread count. Every engine is independent,
  // so the runs embarrassingly parallelize; on an 8-core host the /8 row
  // lands near 8x the /1 items/s (this container is single-core, so the
  // trajectory there only shows pool overhead — see BENCH_micro.json).
  // The digest check keeps the benchmark honest: a thread count that
  // changed the merged bits would be measuring a different computation.
  const int jobs = static_cast<int>(state.range(0));
  dcm::scenario::SweepPlan plan;
  plan.base = dcm::scenario::Scenario::parse(
      "[workload]\nkind=rubbos\nusers=60\n"
      "[controller]\nkind=ec2\n"
      "[run]\nduration=30\nwarmup=5\nseed=9\n");
  plan.axes.push_back(dcm::scenario::parse_axis("workload.users=40,60,80,100"));
  plan.axes.push_back(dcm::scenario::parse_axis("controller.kind=none,ec2"));
  plan.axes.push_back(dcm::scenario::parse_axis("run.max_vms=4,8"));
  uint64_t digest = 0;
  for (auto _ : state) {
    const auto runs = dcm::scenario::SweepRunner(plan, jobs).run();
    const uint64_t d = dcm::scenario::sweep_digest(runs);
    if (digest == 0) digest = d;
    if (d != digest) state.SkipWithError("sweep digest varied across runs");
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
// UseRealTime: the work happens on pool threads, so main-thread CPU time
// would undercount; wall clock is the honest denominator for items/s. The
// default ns unit keeps BENCH_micro.json's ns_per_op field uniform.
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* out = std::getenv("DCM_BENCH_JSON");
  dcm::bench::JsonTrajectoryReporter reporter(out != nullptr ? out : "BENCH_micro.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
