// Fig. 2(b) — System throughput after scaling out WITHOUT soft-resource
// adaptation.
//
// Three deployments under increasing RUBBoS-client load:
//   1/1/1 default pools (1000/100/80)
//   1/2/1 default pools — the naive scale-out: 2×80 connections flood MySQL
//   1/2/1 re-tuned      — DBConnP 20 per Tomcat (total 40 ≈ MySQL knee)
//
// Expected shape: all three track offered load while unsaturated; at high
// load the naive 1/2/1 drops BELOW the original 1/1/1, while the re-tuned
// 1/2/1 is strictly best.
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"

namespace {

double throughput(dcm::core::HardwareConfig hw, dcm::core::SoftAllocation soft, int users) {
  dcm::core::ExperimentConfig config;
  config.hardware = hw;
  config.soft = soft;
  config.workload = dcm::core::WorkloadSpec::rubbos(users, 3.0, 77 + static_cast<uint64_t>(users));
  config.controller = dcm::core::ControllerSpec::none();
  config.duration_seconds = 150.0;
  config.warmup_seconds = 50.0;
  return dcm::core::run_experiment(config).mean_throughput;
}

}  // namespace

int main() {
  using namespace dcm;
  std::puts("=== Fig. 2(b): scaling out the app tier without pool re-tuning ===");
  std::puts("(paper: 1/2/1 with default pools degrades below 1/1/1 at high load)\n");

  TextTable table({"users", "x_1/1/1_default", "x_1/2/1_default", "x_1/2/1_retuned"});
  for (const int users : {50, 100, 150, 200, 250, 300, 350, 400, 500}) {
    const double x111 = throughput({1, 1, 1}, {1000, 100, 80}, users);
    const double x121_default = throughput({1, 2, 1}, {1000, 100, 80}, users);
    const double x121_retuned = throughput({1, 2, 1}, {1000, 100, 20}, users);
    table.add_row({static_cast<double>(users), x111, x121_default, x121_retuned}, 1);
  }
  table.print();
  std::puts("\ncolumns are steady-state throughput in req/s");
  return 0;
}
