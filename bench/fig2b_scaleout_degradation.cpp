// Fig. 2(b) — System throughput after scaling out WITHOUT soft-resource
// adaptation.
//
// Three deployments under increasing RUBBoS-client load:
//   1/1/1 default pools (1000/100/80)
//   1/2/1 default pools — the naive scale-out: 2×80 connections flood MySQL
//   1/2/1 re-tuned      — DBConnP 20 per Tomcat (total 40 ≈ MySQL knee)
//
// Expected shape: all three track offered load while unsaturated; at high
// load the naive 1/2/1 drops BELOW the original 1/1/1, while the re-tuned
// 1/2/1 is strictly best.
//
// Thin client of the scenario registry: the deployment and run window come
// from the "fig2b" scenario; each point overrides one knob and the offered
// load, with the per-load seed derived from the scenario's root seed.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/experiment.h"
#include "scenario/registry.h"

namespace {

double throughput(const dcm::scenario::Scenario& base, int app_vms, int db_connections,
                  int users) {
  dcm::scenario::Scenario point = base;
  point.hardware.app = app_vms;
  point.soft.db_connections = db_connections;
  point.workload.users = users;
  // Same load level ⇒ same seed across the three deployments (paired
  // columns), different load levels ⇒ independent streams.
  point.seed = dcm::derive_seed(base.seed, static_cast<uint64_t>(users));
  return dcm::core::run_experiment(point.experiment()).mean_throughput;
}

}  // namespace

int main() {
  using namespace dcm;
  std::puts("=== Fig. 2(b): scaling out the app tier without pool re-tuning ===");
  std::puts("(paper: 1/2/1 with default pools degrades below 1/1/1 at high load)\n");

  const scenario::Scenario base = scenario::get_scenario("fig2b");
  TextTable table({"users", "x_1/1/1_default", "x_1/2/1_default", "x_1/2/1_retuned"});
  for (const int users : {50, 100, 150, 200, 250, 300, 350, 400, 500}) {
    const double x111 = throughput(base, 1, 80, users);
    const double x121_default = throughput(base, 2, 80, users);
    const double x121_retuned = throughput(base, 2, 20, users);
    table.add_row({static_cast<double>(users), x111, x121_default, x121_retuned}, 1);
  }
  table.print();
  std::puts("\ncolumns are steady-state throughput in req/s");
  return 0;
}
