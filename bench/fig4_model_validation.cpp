// Fig. 4 — Model validation with realistic RUBBoS clients (3 s think time).
//
// (a) 1/1/1: five Tomcat thread-pool allocations including the predicted
//     optimum 20. Expected: 1000/20/80 dominates at saturation, ~25-30%
//     over the default 100.
// (b) 1/2/1: five per-Tomcat DB-connection allocations including the
//     predicted 18 (two Tomcats share the MySQL optimum 36). Expected:
//     1000/100/18 dominates, and over-sized pools (80 ⇒ 160 at MySQL)
//     degrade sharply.
#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "common/table.h"
#include "core/experiment.h"

using namespace dcm;

namespace {

double throughput(core::HardwareConfig hw, core::SoftAllocation soft, int users) {
  core::ExperimentConfig config;
  config.hardware = hw;
  config.soft = soft;
  config.workload = core::WorkloadSpec::rubbos(users, 3.0, 31 + static_cast<uint64_t>(users));
  config.controller = core::ControllerSpec::none();
  config.duration_seconds = 150.0;
  config.warmup_seconds = 50.0;
  return core::run_experiment(config).mean_throughput;
}

void sweep(const char* title, core::HardwareConfig hw, const char* knob,
           const std::vector<core::SoftAllocation>& allocations,
           const std::vector<std::string>& labels) {
  std::printf("%s\n", title);
  std::vector<std::string> header = {"users"};
  for (const auto& label : labels) header.push_back(knob + ("=" + label));
  TextTable table(header);
  for (const int users : {100, 200, 300, 400, 500, 600}) {
    std::vector<std::string> row = {std::to_string(users)};
    for (const auto& soft : allocations) {
      row.push_back(str_format("%.1f", throughput(hw, soft, users)));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::puts("");
}

}  // namespace

int main() {
  std::puts("=== Fig. 4: model validation under realistic RUBBoS clients ===\n");

  sweep("--- (a) 1/1/1, Tomcat thread pool sweep (model optimum: 20) ---", {1, 1, 1},
        "stp",
        {{1000, 5, 80}, {1000, 20, 80}, {1000, 50, 80}, {1000, 100, 80}, {1000, 200, 80}},
        {"5", "20*", "50", "100(def)", "200"});

  sweep("--- (b) 1/2/1, per-Tomcat DB connection sweep (model optimum: 18) ---", {1, 2, 1},
        "conns",
        {{1000, 100, 5}, {1000, 100, 18}, {1000, 100, 40}, {1000, 100, 80}, {1000, 100, 120}},
        {"5", "18*", "40", "80(def)", "120"});

  std::puts("(*) model-predicted optimal allocation; columns are req/s");
  return 0;
}
