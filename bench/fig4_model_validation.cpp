// Fig. 4 — Model validation with realistic RUBBoS clients (3 s think time).
//
// (a) 1/1/1: five Tomcat thread-pool allocations including the predicted
//     optimum 20. Expected: 1000/20/80 dominates at saturation, ~25-30%
//     over the default 100.
// (b) 1/2/1: five per-Tomcat DB-connection allocations including the
//     predicted 18 (two Tomcats share the MySQL optimum 36). Expected:
//     1000/100/18 dominates, and over-sized pools (80 ⇒ 160 at MySQL)
//     degrade sharply.
//
// Thin client of the scenario registry: panel (a) mutates the "fig4a"
// scenario's soft.app_threads, panel (b) the "fig4b" scenario's
// soft.db_connections; per-load seeds derive from each scenario's root seed.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/experiment.h"
#include "scenario/registry.h"

using namespace dcm;

namespace {

double throughput(const scenario::Scenario& base, core::SoftAllocation soft, int users) {
  scenario::Scenario point = base;
  point.soft = soft;
  point.workload.users = users;
  point.seed = derive_seed(base.seed, static_cast<uint64_t>(users));
  return core::run_experiment(point.experiment()).mean_throughput;
}

void sweep(const char* title, const scenario::Scenario& base, const char* knob,
           const std::vector<core::SoftAllocation>& allocations,
           const std::vector<std::string>& labels) {
  std::printf("%s\n", title);
  std::vector<std::string> header = {"users"};
  for (const auto& label : labels) header.push_back(knob + ("=" + label));
  TextTable table(header);
  for (const int users : {100, 200, 300, 400, 500, 600}) {
    std::vector<std::string> row = {std::to_string(users)};
    for (const auto& soft : allocations) {
      row.push_back(str_format("%.1f", throughput(base, soft, users)));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::puts("");
}

}  // namespace

int main() {
  std::puts("=== Fig. 4: model validation under realistic RUBBoS clients ===\n");

  sweep("--- (a) 1/1/1, Tomcat thread pool sweep (model optimum: 20) ---",
        scenario::get_scenario("fig4a"), "stp",
        {{1000, 5, 80}, {1000, 20, 80}, {1000, 50, 80}, {1000, 100, 80}, {1000, 200, 80}},
        {"5", "20*", "50", "100(def)", "200"});

  sweep("--- (b) 1/2/1, per-Tomcat DB connection sweep (model optimum: 18) ---",
        scenario::get_scenario("fig4b"), "conns",
        {{1000, 100, 5}, {1000, 100, 18}, {1000, 100, 40}, {1000, 100, 80}, {1000, 100, 120}},
        {"5", "18*", "40", "80(def)", "120"});

  std::puts("(*) model-predicted optimal allocation; columns are req/s");
  return 0;
}
