// Table I — model training parameters and prediction results.
//
// Reproduces the paper's training pipeline end to end:
//   1. JMeter sweeps with the "matching thread pool" discipline make the
//      target tier the bottleneck (1/1/1 for Tomcat, 1/2/1 for MySQL).
//   2. The monitor-measured <per-server concurrency, system throughput>
//      pairs feed the Least-Square (Levenberg–Marquardt) fit of Eq. 7.
//   3. Report S0, α, β, γ, R², N_b and X_max — one column per model.
//
// Two fits are shown per tier: the normalized fit (γ pinned to 1 — what the
// online controller uses; N_b is invariant) and a fit with S0 fixed to the
// known single-thread service demand (recovers γ).
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"
#include "model/trainer.h"
#include "scenario/registry.h"

using namespace dcm;

namespace {

struct TrainingSet {
  std::vector<model::TrainingSample> samples;
  double max_concurrency = 0.0;
};

// The training deployments are the registered "table1-tomcat" /
// "table1-mysql" scenarios (wide-open pools so concurrency reaches the
// target tier); the sweep itself needs the matching-thread-pool discipline,
// which stays a core::jmeter_concurrency_sweep concern.
TrainingSet collect(const char* scenario_name, int tier_depth, double concurrency_cap,
                    const std::vector<int>& offered) {
  const core::ExperimentConfig base = scenario::get_scenario(scenario_name).experiment();
  const auto points = core::jmeter_concurrency_sweep(base, offered, /*match_app_pools=*/true);
  TrainingSet set;
  for (const auto& p : points) {
    const double conc = p.per_server_concurrency[static_cast<size_t>(tier_depth)];
    if (conc < 0.8 || conc > concurrency_cap) continue;
    set.samples.push_back({std::max(1.0, conc), p.throughput});
    set.max_concurrency = std::max(set.max_concurrency, conc);
  }
  return set;
}

void report(const char* name, const model::TrainedModel& normalized,
            const model::TrainedModel& with_s0, double paper_nb,
            const TrainingSet& set) {
  TextTable table({"parameter", "normalized_fit", "known_S0_fit"});
  const auto& n = normalized.model;
  const auto& k = with_s0.model;
  table.add_row({"S0 (s)", format_number(n.params.s0, 6), format_number(k.params.s0, 6)});
  table.add_row({"alpha (s)", format_number(n.params.alpha, 6), format_number(k.params.alpha, 6)});
  table.add_row({"beta (s)", format_number(n.params.beta, 8), format_number(k.params.beta, 8)});
  table.add_row({"gamma", format_number(n.gamma, 3), format_number(k.gamma, 3)});
  table.add_row({"R^2", format_number(normalized.r_squared, 4),
                 format_number(with_s0.r_squared, 4)});
  table.add_row({"N_b", format_number(normalized.optimal_concurrency(), 1),
                 format_number(with_s0.optimal_concurrency(), 1)});
  table.add_row({"X_max (req/s)", format_number(normalized.max_throughput(), 1),
                 format_number(with_s0.max_throughput(), 1)});
  std::printf("--- %s model (paper N_b = %.0f, trained on %zu samples, max conc %.0f) ---\n",
              name, paper_nb, set.samples.size(), set.max_concurrency);
  table.print();
  // Eq. 7 is nearly flat around the knee (the paper's own parameters give
  // <2% throughput change between N_b/2 and 2·N_b), so N_b is weakly
  // identified from throughput data; what matters for control is that the
  // fitted optimum performs at the plateau. Quantify that:
  const double x_at_fit = normalized.model.throughput(normalized.optimal_concurrency());
  const double x_at_paper = normalized.model.throughput(paper_nb);
  std::printf("plateau check: X(fitted N_b)=%.1f vs X(paper N_b)=%.1f (%.2f%% apart)\n\n",
              x_at_fit, x_at_paper, 100.0 * std::abs(x_at_fit - x_at_paper) /
                                        std::max(x_at_fit, x_at_paper));
}

}  // namespace

int main() {
  std::puts("=== Table I: concurrency-aware model training ===\n");

  // Tomcat model: 1/1/1, Tomcat is the bottleneck; sweep 1..200 as in the
  // paper's training phase.
  {
    const std::vector<int> offered = {1,  2,  4,  6,  8,  10, 14, 18, 22, 28,
                                      35, 45, 60, 80, 100, 130, 160, 200};
    const TrainingSet set = collect("table1-tomcat", /*tier_depth=*/1, /*cap=*/220.0, offered);
    const model::Trainer trainer(/*servers=*/1, /*visit_ratio=*/1.0);
    const auto normalized = trainer.fit_normalized(set.samples);
    const auto with_s0 = trainer.fit_with_known_s0(core::tomcat_cpu_model().params.s0,
                                                   set.samples);
    report("Tomcat", normalized, with_s0, 20.0, set);
  }

  // MySQL model: 1/2/1, MySQL is the bottleneck. Train below the thrash
  // region (the quadratic Eq. 7 does not model swap-collapse; the paper's
  // R²=0.97 likewise comes from a sweep that stays in the smooth regime).
  {
    const std::vector<int> offered = {2,  4,  8,  12, 16, 20, 24, 28, 32, 36,
                                      42, 48, 56, 64, 72, 80, 96, 110, 130};
    const TrainingSet set = collect("table1-mysql", /*tier_depth=*/2, /*cap=*/62.0, offered);
    const model::Trainer trainer(/*servers=*/1, /*visit_ratio=*/core::kDbVisitRatio);
    const auto normalized = trainer.fit_normalized(set.samples);
    const auto with_s0 = trainer.fit_with_known_s0(core::mysql_cpu_model().params.s0,
                                                   set.samples);
    report("MySQL", normalized, with_s0, 36.0, set);
  }

  std::puts("notes:");
  std::puts(" * normalized fit pins gamma=1 (N_b is invariant to the gamma scaling)");
  std::puts(" * the paper's gamma (11.03 / 4.45) absorbs its testbed's client scale;");
  std::puts("   the simulator's single-server training recovers gamma near 1 by design");
  return 0;
}
