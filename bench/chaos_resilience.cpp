// Chaos-resilience ablation (DESIGN.md "Failure model & resilience"):
// run the registered chaos-resilience scenario with the resilience stack
// armed and disarmed against the *identical* deterministic fault schedule
// (fixed root seed ⇒ the fault plan is bit-identical across variants), and
// report the goodput / error-rate gap the stack buys, plus the failure
// accounting that explains it (timeouts, retries, injected faults).
#include <cstdio>

#include "common/table.h"
#include "core/experiment.h"
#include "scenario/registry.h"
#include "scenario/sweep.h"

using namespace dcm;

namespace {

int count_faults(const core::ExperimentResult& r, const char* kind) {
  int n = 0;
  for (const auto& e : r.fault_log) n += e.kind == kind ? 1 : 0;
  return n;
}

}  // namespace

int main() {
  std::puts("=== Chaos resilience: same fault schedule, stack on vs off ===\n");

  scenario::SweepPlan plan;
  plan.base = scenario::get_scenario("chaos-resilience");
  plan.axes.push_back(scenario::parse_axis("resilience.enabled=true,false"));
  plan.seed_policy = scenario::SeedPolicy::kFixed;
  const auto runs = scenario::SweepRunner(std::move(plan), /*jobs=*/0).run();

  TextTable table({"variant", "goodput_req_s", "error_rate", "timeouts", "retries",
                   "x_req_s", "rt_p95_ms"});
  for (const auto& run : runs) {
    const core::ExperimentResult& r = run.result;
    const bool armed = run.overrides[0].second == "true";
    table.add_row({armed ? "resilience on" : "resilience off (baseline)",
                   format_number(r.goodput, 1), format_number(r.error_rate, 3),
                   std::to_string(r.timeouts), std::to_string(r.retries),
                   format_number(r.mean_throughput, 1),
                   format_number(r.p95_response_time * 1e3, 1)});
  }
  table.print();
  std::puts("");

  std::puts("--- Injected fault schedule (identical for both variants) ---");
  TextTable faults({"kind", "count"});
  const core::ExperimentResult& armed = runs[0].result;
  for (const char* kind : {"vm_crash", "vm_slowdown", "telemetry_loss", "agent_silence"}) {
    faults.add_row({kind, std::to_string(count_faults(armed, kind))});
  }
  faults.add_row({"lb_eject (recovery)", std::to_string(count_faults(armed, "lb_eject"))});
  faults.add_row({"replace_launch (recovery)",
                  std::to_string(count_faults(armed, "replace_launch"))});
  faults.print();
  return 0;
}
