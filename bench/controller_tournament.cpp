// Controller tournament — the full auto-scaler zoo raced across the default
// scenario trio (steady load, the paper's Fig. 5 bursty trace, and the chaos
// fault plan with resilience armed).
//
// Every controller faces the identical synthesized trace, client randomness
// and fault schedule (SeedPolicy::kFixed per scenario), so the comparison is
// paired. Cells are ranked lexicographically on (SLO-violation seconds,
// VM-hours, actuation churn); the standings sum per-scenario ranks. Expected
// shape: DCM leads on SLO seconds at comparable cost, the raw threshold pair
// churns the most, the hysteresis-free PI/predictive variants land between.
//
// Thin client of the tournament harness: the identical field is reachable as
//   dcm_run tournament            (and --digest for the scorecard digest)
// and the printed scorecard digest matches that CLI invocation bit-for-bit.
#include <cstdio>

#include "scenario/tournament.h"

int main() {
  std::puts("=== Controller tournament: the auto-scaler zoo, ranked ===\n");

  const dcm::scenario::TournamentOptions options;  // default field + trio
  const dcm::scenario::Tournament tournament = dcm::scenario::run_tournament(options);
  dcm::scenario::print_tournament(tournament);

  std::printf("\nscorecard_digest %llu\n",
              static_cast<unsigned long long>(dcm::scenario::scorecard_digest(tournament)));
  return 0;
}
