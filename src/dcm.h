// Umbrella header — the public API of the DCM reproduction library.
//
// Layers (bottom-up):
//   sim/       deterministic discrete-event engine
//   metrics/   streaming statistics and time series
//   bus/       Kafka-like monitoring message bus
//   fit/       least-squares / Levenberg–Marquardt fitting
//   model/     the paper's concurrency-aware model (Eq. 1–8)
//   ntier/     simulated n-tier application (servers, pools, VMs, tiers)
//   workload/  RUBBoS-style workload generators and traces
//   control/   monitoring pipeline + EC2-AutoScale and DCM controllers
//   core/      canonical topologies and the one-call experiment runner
//   scenario/  declarative scenarios, the registry, parallel sweeps and
//              the dcm-result-v1 writers
#pragma once

#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "control/dcm_controller.h"
#include "control/ec2_autoscale.h"
#include "control/online_estimator.h"
#include "core/experiment.h"
#include "core/topologies.h"
#include "model/bottleneck.h"
#include "model/concurrency_model.h"
#include "model/trainer.h"
#include "ntier/app.h"
#include "ntier/monitor_agent.h"
#include "scenario/registry.h"
#include "scenario/result_writer.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"
#include "sim/engine.h"
#include "workload/closed_loop.h"
#include "workload/trace.h"
#include "workload/trace_player.h"
