#include "core/experiment.h"

#include <algorithm>
#include <unordered_map>

#include "bus/broker.h"
#include "common/check.h"
#include "common/rng.h"
#include "control/ec2_autoscale.h"
#include "ntier/monitor_agent.h"
#include "workload/trace_player.h"

namespace dcm::core {

WorkloadSpec WorkloadSpec::jmeter(int users) {
  WorkloadSpec spec;
  spec.kind = Kind::kJmeter;
  spec.users = users;
  return spec;
}

WorkloadSpec WorkloadSpec::rubbos(int users, double think_s) {
  WorkloadSpec spec;
  spec.kind = Kind::kRubbosClients;
  spec.users = users;
  spec.mean_think_seconds = think_s;
  return spec;
}

WorkloadSpec WorkloadSpec::trace_driven(workload::Trace trace, double think_s) {
  WorkloadSpec spec;
  spec.kind = Kind::kTrace;
  spec.trace = std::move(trace);
  spec.mean_think_seconds = think_s;
  return spec;
}

uint64_t experiment_stream_seed(uint64_t root, SeedStream stream) {
  return derive_seed(root, static_cast<uint64_t>(stream));
}

ControllerSpec ControllerSpec::none() { return {}; }

ControllerSpec ControllerSpec::ec2(control::ScalingPolicy policy) {
  ControllerSpec spec;
  spec.kind = Kind::kEc2AutoScale;
  spec.policy = policy;
  return spec;
}

ControllerSpec ControllerSpec::dcm_controller(control::DcmConfig config) {
  ControllerSpec spec;
  spec.kind = Kind::kDcm;
  spec.policy = config.policy;
  spec.dcm = std::move(config);
  return spec;
}

ControllerSpec ControllerSpec::predictive_controller(control::PredictiveConfig config) {
  ControllerSpec spec;
  spec.kind = Kind::kPredictive;
  spec.policy = config.policy;
  spec.predictive = std::move(config);
  return spec;
}

ControllerSpec ControllerSpec::queueing_controller(control::QueueingConfig config) {
  ControllerSpec spec;
  spec.kind = Kind::kQueueing;
  spec.policy = config.policy;
  spec.queueing = std::move(config);
  return spec;
}

ControllerSpec ControllerSpec::pi_controller(control::PiConfig config) {
  ControllerSpec spec;
  spec.kind = Kind::kPi;
  spec.policy = config.policy;
  spec.pi = std::move(config);
  return spec;
}

const char* ControllerSpec::registry_name() const {
  switch (kind) {
    case Kind::kNone: return "";
    case Kind::kEc2AutoScale: return "ec2";
    case Kind::kDcm: return "dcm";
    case Kind::kPredictive: return "predictive";
    case Kind::kQueueing: return "queueing";
    case Kind::kPi: return "pi";
  }
  return "";
}

control::ControllerMenu ControllerSpec::menu() const {
  control::ControllerMenu menu;
  menu.policy = policy;
  menu.dcm = dcm;
  menu.predictive = predictive;
  menu.queueing = queueing;
  menu.pi = pi;
  return menu;
}

TierTimeline::TierTimeline(const std::string& tier_name)
    : name(tier_name),
      provisioned_vms(tier_name + ".vms", sim::kNanosPerSecond),
      cpu_util(tier_name + ".util", sim::kNanosPerSecond),
      concurrency(tier_name + ".concurrency", sim::kNanosPerSecond) {}

int ExperimentResult::action_count(const std::string& action, const std::string& tier) const {
  int n = 0;
  for (const auto& a : actions) {
    if (a.action == action && (tier.empty() || a.tier == tier)) ++n;
  }
  return n;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  DCM_CHECK(config.duration_seconds > 0.0);
  DCM_CHECK(config.warmup_seconds >= 0.0);
  DCM_CHECK(config.warmup_seconds < config.duration_seconds);

  const uint64_t topology_seed = experiment_stream_seed(config.seed, SeedStream::kTopology);
  const uint64_t workload_seed = experiment_stream_seed(config.seed, SeedStream::kWorkload);
  const uint64_t fault_seed = experiment_stream_seed(config.seed, SeedStream::kFault);

  sim::Engine engine;
  ntier::NTierApp app(engine,
                      build_service_graph(config.topology, config.hardware, config.soft,
                                          config.max_vms_per_tier),
                      topology_seed);
  const ntier::ServiceGraph& graph = *app.graph();
  bus::Broker broker;
  ntier::MonitorFleet fleet(engine, app, broker);

  if (config.resilience.enabled) {
    // Inter-tier sub-request deadlines/retries on every node that issues
    // downstream calls, and health-checked balancing on every non-root node.
    ntier::SubRequestRetryPolicy sub_retry;
    sub_retry.timeout_seconds = config.resilience.subrequest_timeout_seconds;
    sub_retry.max_retries = config.resilience.subrequest_retries;
    ntier::HealthCheckConfig health;
    health.period_seconds = config.resilience.health_period_seconds;
    health.failure_threshold = config.resilience.health_failure_threshold;
    health.replace_failed = config.resilience.replace_failed;
    for (size_t i = 0; i < app.tier_count(); ++i) {
      if (!graph.out_edges(i).empty()) app.tier(i).set_subrequest_retry(sub_retry);
      if (i > 0) app.tier(i).enable_health_checks(health);
    }
  }

  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix(kDbVisitRatio);
  workload::RequestFactory factory = workload::graph_request_factory(catalog, graph);

  std::unique_ptr<workload::ClosedLoopGenerator> generator;
  std::unique_ptr<workload::TracePlayer> player;
  switch (config.workload.kind) {
    case WorkloadSpec::Kind::kJmeter:
      generator = workload::make_jmeter(engine, app, std::move(factory),
                                        config.workload.users, workload_seed);
      break;
    case WorkloadSpec::Kind::kRubbosClients:
      generator = workload::make_rubbos_clients(engine, app, std::move(factory),
                                                config.workload.users,
                                                config.workload.mean_think_seconds,
                                                workload_seed);
      break;
    case WorkloadSpec::Kind::kTrace:
      generator = workload::make_rubbos_clients(engine, app, std::move(factory),
                                                config.workload.trace.users_at(0),
                                                config.workload.mean_think_seconds,
                                                workload_seed);
      player = std::make_unique<workload::TracePlayer>(engine, *generator,
                                                       config.workload.trace);
      break;
  }
  if (config.resilience.enabled) {
    workload::RetryPolicy client_retry;
    client_retry.timeout_seconds = config.resilience.client_timeout_seconds;
    client_retry.max_retries = config.resilience.client_retries;
    client_retry.backoff_base_seconds = config.resilience.client_backoff_seconds;
    generator->set_retry_policy(client_retry);
  }

  std::unique_ptr<trace::Tracer> tracer;
  if (config.trace.enabled) {
    tracer = std::make_unique<trace::Tracer>(
        experiment_stream_seed(config.seed, SeedStream::kTrace), config.trace);
    generator->set_tracer(tracer.get());
  }

  std::unique_ptr<control::ControllerBase> controller;
  if (config.controller.kind != ControllerSpec::Kind::kNone) {
    control::ControllerMenu menu = config.controller.menu();
    if (config.controller.kind == ControllerSpec::Kind::kDcm) {
      // When the caller left the managed pair at the 3-tier defaults, derive
      // it from the graph roles (first app node / first db node) so non-chain
      // topologies get the right pair without explicit indexes. Chains derive
      // their existing values, so this never shifts a legacy configuration.
      if (menu.dcm.app_tier == 1 && menu.dcm.db_tier == 2) {
        const int app_node = graph.first_node_with_role(ntier::NodeRole::kApp);
        const int db_node = graph.first_node_with_role(ntier::NodeRole::kDb);
        if (app_node >= 0 && db_node >= 0 && app_node < db_node) {
          menu.dcm.app_tier = static_cast<size_t>(app_node);
          menu.dcm.db_tier = static_cast<size_t>(db_node);
        }
      }
      if (config.resilience.enabled) {
        menu.dcm.watchdog_periods = config.resilience.watchdog_periods;
        menu.dcm.min_fit_r2 = config.resilience.min_fit_r2;
      }
    }
    controller =
        control::make_controller(config.controller.registry_name(), engine, app, broker, menu);
  }

  if (controller && tracer) {
    // Soft-actuation / scaling / watchdog events annotate overlapping traces.
    trace::Tracer* tap = tracer.get();
    controller->set_action_observer([tap](const control::ControlAction& a) {
      tap->annotate(a.time, a.action, a.tier + " " + a.detail);
    });
  }

  std::unique_ptr<fault::FaultInjector> injector;
  if (config.faults.any_enabled()) {
    injector = std::make_unique<fault::FaultInjector>(
        engine, app, broker, &fleet,
        fault::FaultPlan::synthesize(config.faults, fault_seed, config.duration_seconds));
  }

  ExperimentResult result;
  for (size_t i = 0; i < app.tier_count(); ++i) {
    result.tiers.emplace_back(app.tier(i).name());
  }

  // Per-second system sampler for the Fig. 5-style timelines.
  std::unordered_map<const ntier::Server*, double> prev_util;
  auto sampler = engine.schedule_periodic(sim::kNanosPerSecond, [&] {
    const sim::SimTime now = engine.now();
    // Stamp the *previous* second's bucket.
    const sim::SimTime stamp = now - sim::kNanosPerSecond;
    for (size_t i = 0; i < app.tier_count(); ++i) {
      const ntier::Tier& tier = app.tier(i);
      TierTimeline& line = result.tiers[i];
      line.provisioned_vms.add(stamp, static_cast<double>(tier.provisioned_vm_count()));
      line.concurrency.add(stamp, static_cast<double>(tier.total_in_flight()));
      double util_sum = 0.0;
      int active = 0;
      for (const auto& vm : tier.vms()) {
        if (vm->state() != ntier::VmState::kActive &&
            vm->state() != ntier::VmState::kDraining) {
          continue;
        }
        const ntier::Server* server = &vm->server();
        const double integral = server->cpu_util_integral();
        const double delta = integral - prev_util[server];
        prev_util[server] = integral;
        if (vm->state() == ntier::VmState::kActive) {
          util_sum += delta;  // window is 1 s, so the delta is the mean util
          ++active;
        }
      }
      line.cpu_util.add(stamp, active > 0 ? util_sum / active : 0.0);
    }
  });

  if (controller) controller->start();
  if (player) {
    player->start();
  } else {
    generator->start();
  }

  engine.run_until(sim::from_seconds(config.duration_seconds));
  sampler.cancel();

  // Summaries over the post-warmup window.
  const sim::SimTime warmup = sim::from_seconds(config.warmup_seconds);
  const sim::SimTime end = sim::from_seconds(config.duration_seconds);
  const workload::ClientStats& stats = generator->stats();
  result.client = stats;
  result.completed = stats.completed();
  result.errors = stats.errors();
  result.mean_throughput = stats.mean_throughput(warmup, end);
  result.goodput = stats.mean_goodput(warmup, end);
  result.error_rate = stats.error_rate(warmup, end);
  result.timeouts = stats.timeouts();
  result.retries = stats.retries();
  for (size_t i = 0; i < app.tier_count(); ++i) {
    result.timeouts += app.tier(i).subrequest_timeouts();
    result.retries += app.tier(i).subrequest_retries();
  }

  // Merge the injected faults with every tier's recovery actions into one
  // time-sorted trail (stable: injector entries before tier events on ties,
  // tiers in depth order).
  if (injector) result.fault_log = injector->log();
  for (size_t i = 0; i < app.tier_count(); ++i) {
    for (const auto& event : app.tier(i).events()) {
      result.fault_log.push_back(
          fault::FaultLogEntry{event.at, event.kind, event.detail, app.tier(i).name()});
    }
  }
  std::stable_sort(
      result.fault_log.begin(), result.fault_log.end(),
      [](const fault::FaultLogEntry& a, const fault::FaultLogEntry& b) { return a.at < b.at; });

  metrics::Welford rt;
  double rt_max = 0.0;
  int sla_seconds = 0, measured_seconds = 0;
  for (const auto& bucket : stats.response_time_series().buckets()) {
    if (bucket.start < warmup) continue;
    rt.merge(bucket.stat);
    rt_max = std::max(rt_max, bucket.stat.max());
    if (bucket.stat.count() > 0) {
      ++measured_seconds;
      if (bucket.stat.mean() > result.sla_bound_seconds) ++sla_seconds;
    }
  }
  result.mean_response_time = rt.mean();
  result.max_response_time = rt_max;
  result.p95_response_time = stats.response_time_histogram().p95();
  result.sla_violation_fraction =
      measured_seconds > 0 ? static_cast<double>(sla_seconds) / measured_seconds : 0.0;
  result.sla_violation_seconds = sla_seconds;
  result.measured_seconds = measured_seconds;

  // Resource efficiency: integrate the per-second provisioned-VM series.
  result.vm_seconds.resize(result.tiers.size(), 0.0);
  for (size_t i = 0; i < result.tiers.size(); ++i) {
    for (const auto& bucket : result.tiers[i].provisioned_vms.buckets()) {
      result.vm_seconds[i] += bucket.stat.mean();  // 1 s buckets
    }
    // `result` is built fresh in this call; the sum starts at zero. Scalable tiers only.
    if (i > 0) result.total_vm_seconds += result.vm_seconds[i];  // dcm-lint: allow(no-unanchored-float-accumulate)
  }
  result.requests_per_vm_second =
      result.total_vm_seconds > 0.0
          ? static_cast<double>(result.completed) / result.total_vm_seconds
          : 0.0;

  if (controller) result.actions = controller->log().actions();

  if (tracer) {
    // Fault-injection events (already time-sorted) join the annotation
    // stream post-run; the report overlays them on overlapping traces.
    for (const auto& entry : result.fault_log) {
      tracer->annotate(entry.at, entry.kind,
                       entry.target.empty() ? entry.detail
                                            : entry.target + " " + entry.detail);
    }
    result.trace_report = trace::build_report(*tracer);
  }
  result.events_dispatched = engine.events_dispatched();
  return result;
}

std::vector<SweepPoint> jmeter_concurrency_sweep(const ExperimentConfig& base,
                                                 const std::vector<int>& concurrencies,
                                                 bool match_app_pools) {
  std::vector<SweepPoint> points;
  points.reserve(concurrencies.size());
  for (int c : concurrencies) {
    DCM_CHECK(c >= 1);
    ExperimentConfig config = base;
    config.workload = WorkloadSpec::jmeter(c);
    // Each sweep point is an independent run: decorrelate via the root
    // seed so no point shares streams with another.
    config.seed = derive_seed(base.seed, static_cast<uint64_t>(c));
    config.controller = ControllerSpec::none();
    if (match_app_pools) config.soft.app_threads = c;
    const ExperimentResult result = run_experiment(config);
    // Per-node server counts come from the materialized topology (for the
    // chains this reproduces the old web/app/db hardware mapping).
    const ntier::ServiceGraph graph = build_service_graph(
        config.topology, config.hardware, config.soft, config.max_vms_per_tier);

    SweepPoint point;
    point.concurrency = c;
    point.throughput = result.mean_throughput;
    point.response_time = result.mean_response_time;
    const sim::SimTime warmup = sim::from_seconds(config.warmup_seconds);
    for (size_t i = 0; i < result.tiers.size(); ++i) {
      metrics::Welford conc;
      for (const auto& bucket : result.tiers[i].concurrency.buckets()) {
        if (bucket.start < warmup) continue;
        conc.merge(bucket.stat);
      }
      const int servers = graph.node(i).tier.initial_vms;
      point.per_server_concurrency.push_back(conc.mean() / std::max(1, servers));
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace dcm::core
