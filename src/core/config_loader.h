// Builds an ExperimentConfig from an INI file — the dcm_sim CLI's backend.
//
// Recognised sections/keys (all optional, with the library defaults):
//
//   [hardware]    web / app / db               — initial VM counts
//   [soft]        web_threads / app_threads / db_connections
//   [workload]    kind = jmeter|rubbos|trace
//                 users, think_seconds, seed
//                 trace = <taxonomy pattern name> | <path to CSV>
//                 peak_users (taxonomy traces only)
//   [controller]  kind = none|ec2|dcm
//                 control_period, scale_out_util, scale_in_util,
//                 scale_in_consecutive, predictive, sla_rt,
//                 headroom, online_estimation
//   [topology]    kind = chain3|chain4|graph
//                 nodes = name:role, ...         (graph only)
//                 edges = from->to:calls[:managed], ...  (graph only;
//                         calls is a non-negative integer or `q`, the
//                         sampled servlet's query count)
//   [run]         duration, warmup, seed, max_vms
#pragma once

#include <string>

#include "common/config.h"
#include "core/experiment.h"

namespace dcm::core {

/// Translates a parsed Config. Throws std::runtime_error on invalid values
/// (unknown workload/controller kind, unknown trace name, ...).
ExperimentConfig experiment_from_config(const Config& config);

/// Convenience: load + translate.
ExperimentConfig experiment_from_file(const std::string& path);

/// Parses the optional [topology] section into a TopologySpec. Strict:
/// throws on an unknown kind, malformed node/edge spellings, or graph-only
/// keys (nodes/edges) under a chain kind. Absent section = chain3.
TopologySpec topology_spec_from_config(const Config& config);

/// Canonical text spellings (the exact forms topology_spec_from_config
/// emits back unchanged): "chain3", "name:role, ...", "a->b:calls[:managed]".
const char* topology_kind_name(TopologySpec::Kind kind);
std::string topology_nodes_to_string(const TopologySpec& spec);
std::string topology_edges_to_string(const TopologySpec& spec);

}  // namespace dcm::core
