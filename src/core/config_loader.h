// Builds an ExperimentConfig from an INI file — the dcm_sim CLI's backend.
//
// Recognised sections/keys (all optional, with the library defaults):
//
//   [hardware]    web / app / db               — initial VM counts
//   [soft]        web_threads / app_threads / db_connections
//   [workload]    kind = jmeter|rubbos|trace
//                 users, think_seconds, seed
//                 trace = <taxonomy pattern name> | <path to CSV>
//                 peak_users (taxonomy traces only)
//   [controller]  kind = none|ec2|dcm
//                 control_period, scale_out_util, scale_in_util,
//                 scale_in_consecutive, predictive, sla_rt,
//                 headroom, online_estimation
//   [run]         duration, warmup, seed, max_vms
#pragma once

#include <string>

#include "common/config.h"
#include "core/experiment.h"

namespace dcm::core {

/// Translates a parsed Config. Throws std::runtime_error on invalid values
/// (unknown workload/controller kind, unknown trace name, ...).
ExperimentConfig experiment_from_config(const Config& config);

/// Convenience: load + translate.
ExperimentConfig experiment_from_file(const std::string& path);

}  // namespace dcm::core
