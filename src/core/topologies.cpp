#include "core/topologies.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace dcm::core {

namespace {

[[noreturn]] void spec_error(const std::string& message) {
  throw std::runtime_error("topology: " + message);
}

/// The HAProxy pass-through tier of the 4-tier layout: forwarding work only,
/// effectively unbounded event loop, never scaled (as in the paper).
ntier::TierConfig haproxy_tier_config() {
  ntier::TierConfig lb;
  lb.name = "haproxy";
  lb.server.cpu.params = {5.0e-5, 1.0e-7, 1.0e-10};  // ~50 µs per forward
  lb.server.cpu.thrash_threshold = 1e18;
  lb.server.cpu.thrash_factor = 0.0;
  lb.server.max_threads = 10000;
  lb.server.downstream_connections = 0;
  lb.server.pre_fraction = 0.5;
  lb.server.demand_cv = 0.05;
  lb.initial_vms = 1;
  lb.min_vms = 1;
  lb.max_vms = 1;
  return lb;
}

/// Per-role tier template for kGraph nodes. Web/app/db reuse the calibrated
/// rubbos tiers; lb is the HAProxy pass-through; cache is a memcached-like
/// in-memory store (scalable, single CPU phase).
ntier::TierConfig graph_node_tier(const std::string& name, ntier::NodeRole role,
                                  HardwareConfig hw, SoftAllocation soft,
                                  int max_vms_per_tier) {
  ntier::TierConfig tier;
  tier.name = name;
  switch (role) {
    case ntier::NodeRole::kWeb:
      tier.server.cpu = apache_cpu_model();
      tier.server.max_threads = soft.web_threads;
      tier.server.pre_fraction = 0.5;
      tier.server.demand_cv = 0.10;
      tier.initial_vms = hw.web;
      tier.max_vms = std::max(hw.web, max_vms_per_tier);
      break;
    case ntier::NodeRole::kApp:
      tier.server.cpu = tomcat_cpu_model();
      tier.server.max_threads = soft.app_threads;
      tier.server.pre_fraction = 0.5;
      tier.server.demand_cv = 0.25;
      tier.initial_vms = hw.app;
      tier.max_vms = std::max(hw.app, max_vms_per_tier);
      break;
    case ntier::NodeRole::kDb:
      tier.server.cpu = mysql_cpu_model();
      tier.server.max_threads = 1000;
      tier.server.pre_fraction = 1.0;  // leaf: single CPU phase
      tier.server.demand_cv = 0.25;
      tier.initial_vms = hw.db;
      tier.max_vms = std::max(hw.db, max_vms_per_tier);
      break;
    case ntier::NodeRole::kLb:
      return haproxy_tier_config();
    case ntier::NodeRole::kCache:
      tier.server.cpu = cache_cpu_model();
      tier.server.max_threads = 500;
      tier.server.pre_fraction = 1.0;  // leaf: single CPU phase
      tier.server.demand_cv = 0.10;
      tier.initial_vms = 1;
      tier.max_vms = max_vms_per_tier;
      break;
  }
  tier.server.downstream_connections = 0;  // pools are declared on edges
  tier.min_vms = 1;
  return tier;
}

}  // namespace

ntier::CpuModelConfig apache_cpu_model() {
  ntier::CpuModelConfig cpu;
  cpu.params = {1.0e-3, 2.0e-5, 1.0e-8};  // light proxy work, near-linear scaling
  cpu.thrash_threshold = 1e18;
  cpu.thrash_factor = 0.0;
  return cpu;
}

ntier::CpuModelConfig tomcat_cpu_model() {
  ntier::CpuModelConfig cpu;
  // Table I Tomcat column: S0=2.84e-2, α=9.87e-3, β=4.54e-5 ⇒ N_b ≈ 20.
  cpu.params = {2.84e-2, 9.87e-3, 4.54e-5};
  cpu.thrash_threshold = 300.0;  // JVM-side collapse far beyond normal pools
  cpu.thrash_factor = 1.0e-4;
  return cpu;
}

ntier::CpuModelConfig mysql_cpu_model() {
  ntier::CpuModelConfig cpu;
  // Table I MySQL column (per query): S0=7.19e-3, α=5.04e-3, β=1.65e-6
  // ⇒ N_b ≈ 36. Thrash threshold 64: "reasonable between 20 and 80",
  // collapse well before 160 (Fig. 2a / Sec. V-B narrative).
  cpu.params = {7.19e-3, 5.04e-3, 1.65e-6};
  cpu.thrash_threshold = 64.0;
  cpu.thrash_factor = 1.0e-4;
  return cpu;
}

ntier::CpuModelConfig cache_cpu_model() {
  ntier::CpuModelConfig cpu;
  // Memcached-like GET: ~2 ms mean including the network hop, tiny
  // per-thread overhead, no thrash regime in any reachable range.
  cpu.params = {2.0e-3, 2.0e-5, 1.0e-9};
  cpu.thrash_threshold = 1e18;
  cpu.thrash_factor = 0.0;
  return cpu;
}

ntier::AppConfig rubbos_app_config(HardwareConfig hw, SoftAllocation soft, uint64_t seed,
                                   int max_vms_per_tier) {
  DCM_CHECK(hw.web >= 1 && hw.app >= 1 && hw.db >= 1);
  DCM_CHECK(soft.web_threads >= 1 && soft.app_threads >= 1 && soft.db_connections >= 1);

  ntier::AppConfig config;
  config.seed = seed;

  ntier::TierConfig web;
  web.name = "apache";
  web.server.cpu = apache_cpu_model();
  web.server.max_threads = soft.web_threads;
  web.server.downstream_connections = 0;  // HAProxy fronts the app tier; no per-Apache cap
  web.server.pre_fraction = 0.5;
  web.server.demand_cv = 0.10;
  web.initial_vms = hw.web;
  web.min_vms = 1;
  web.max_vms = std::max(hw.web, max_vms_per_tier);

  ntier::TierConfig app;
  app.name = "tomcat";
  app.server.cpu = tomcat_cpu_model();
  app.server.max_threads = soft.app_threads;
  app.server.downstream_connections = soft.db_connections;
  app.server.pre_fraction = 0.5;
  app.server.demand_cv = 0.25;
  app.initial_vms = hw.app;
  app.min_vms = 1;
  app.max_vms = std::max(hw.app, max_vms_per_tier);

  ntier::TierConfig db;
  db.name = "mysql";
  db.server.cpu = mysql_cpu_model();
  // max_connections-style cap, far above any sane upstream pool: the
  // concurrency reaching MySQL is governed by the Tomcat DBConnP, exactly
  // as in the paper.
  db.server.max_threads = 1000;
  db.server.downstream_connections = 0;
  db.server.pre_fraction = 1.0;  // leaf: single CPU phase
  db.server.demand_cv = 0.25;
  db.initial_vms = hw.db;
  db.min_vms = 1;
  db.max_vms = std::max(hw.db, max_vms_per_tier);

  config.tiers = {web, app, db};
  return config;
}

ntier::ServiceGraph build_service_graph(const TopologySpec& spec, HardwareConfig hw,
                                        SoftAllocation soft, int max_vms_per_tier) {
  if (spec.kind == TopologySpec::Kind::kChain3) {
    // Byte-identical tier templates to the legacy chain app; the edges are
    // the chain's hops in depth order, so edge id == source depth and the
    // graph deployment reproduces the chain digests bit-for-bit.
    const ntier::AppConfig chain = rubbos_app_config(hw, soft, /*seed=*/1, max_vms_per_tier);
    std::vector<ntier::ServiceNode> nodes;
    nodes.push_back({chain.tiers[0], ntier::NodeRole::kWeb});
    nodes.push_back({chain.tiers[1], ntier::NodeRole::kApp});
    nodes.push_back({chain.tiers[2], ntier::NodeRole::kDb});
    std::vector<ntier::ServiceEdge> edges;
    edges.push_back({/*from=*/0, /*to=*/1, /*fixed_calls=*/1, /*servlet_calls=*/false,
                     /*mean_calls=*/1.0, /*pool_capacity=*/0, /*managed=*/false});
    // The app→db edge is throttled by the tier template's DBConnP (the
    // pool lives in the TierConfig for single-edge nodes); the managed flag
    // records it as the DCM-actuated soft resource.
    edges.push_back({/*from=*/1, /*to=*/2, /*fixed_calls=*/0, /*servlet_calls=*/true,
                     /*mean_calls=*/kDbVisitRatio, /*pool_capacity=*/soft.db_connections,
                     /*managed=*/true});
    return ntier::ServiceGraph(std::move(nodes), std::move(edges));
  }
  if (spec.kind == TopologySpec::Kind::kChain4) {
    const ntier::AppConfig chain = rubbos_app_config(hw, soft, /*seed=*/1, max_vms_per_tier);
    std::vector<ntier::ServiceNode> nodes;
    nodes.push_back({chain.tiers[0], ntier::NodeRole::kWeb});
    nodes.push_back({chain.tiers[1], ntier::NodeRole::kApp});
    nodes.push_back({haproxy_tier_config(), ntier::NodeRole::kLb});
    nodes.push_back({chain.tiers[2], ntier::NodeRole::kDb});
    std::vector<ntier::ServiceEdge> edges;
    edges.push_back({0, 1, 1, false, 1.0, 0, false});
    // Each app-tier query takes one LB hop; the app's DBConnP throttles the
    // app→lb calls exactly as the old 4-tier hop plumbing did.
    edges.push_back({1, 2, 0, true, kDbVisitRatio, soft.db_connections, true});
    edges.push_back({2, 3, 1, false, 1.0, 0, false});
    return ntier::ServiceGraph(std::move(nodes), std::move(edges));
  }

  // kGraph: named nodes with roles, edges by name.
  if (spec.nodes.empty()) spec_error("graph topology declares no nodes");
  std::unordered_map<std::string, int> ids;
  std::vector<ntier::ServiceNode> nodes;
  nodes.reserve(spec.nodes.size());
  for (const auto& n : spec.nodes) {
    if (n.name.empty()) spec_error("graph node with empty name");
    ntier::NodeRole role;
    if (!ntier::parse_node_role(n.role, &role)) {
      spec_error("node '" + n.name + "' has unknown role '" + n.role +
                 "' (want web|app|db|lb|cache)");
    }
    if (!ids.emplace(n.name, static_cast<int>(nodes.size())).second) {
      spec_error("duplicate node name '" + n.name + "'");
    }
    nodes.push_back({graph_node_tier(n.name, role, hw, soft, max_vms_per_tier), role});
  }
  std::vector<ntier::ServiceEdge> edges;
  edges.reserve(spec.edges.size());
  for (const auto& e : spec.edges) {
    const auto from = ids.find(e.from);
    const auto to = ids.find(e.to);
    if (from == ids.end()) spec_error("edge references undeclared node '" + e.from + "'");
    if (to == ids.end()) spec_error("edge references undeclared node '" + e.to + "'");
    if (!e.servlet_calls && e.calls < 0) {
      spec_error("edge " + e.from + "->" + e.to + " has negative calls");
    }
    ntier::ServiceEdge edge;
    edge.from = from->second;
    edge.to = to->second;
    edge.fixed_calls = e.servlet_calls ? 0 : e.calls;
    edge.servlet_calls = e.servlet_calls;
    edge.mean_calls = e.servlet_calls ? kDbVisitRatio : static_cast<double>(e.calls);
    edge.pool_capacity = e.managed ? soft.db_connections : 0;
    edge.managed = e.managed;
    edges.push_back(edge);
  }
  // Single-edge nodes route their pool through the tier template (the
  // legacy DBConnP mechanism); only fan-out nodes carry per-edge pools.
  std::vector<int> out_count(nodes.size(), 0);
  for (const auto& e : edges) ++out_count[static_cast<size_t>(e.from)];
  for (const auto& e : edges) {
    if (e.pool_capacity > 0 && out_count[static_cast<size_t>(e.from)] == 1) {
      nodes[static_cast<size_t>(e.from)].tier.server.downstream_connections =
          e.pool_capacity;
    }
  }
  return ntier::ServiceGraph(std::move(nodes), std::move(edges));
}

ntier::ServiceGraph rubbos_4tier_graph(HardwareConfig hw, SoftAllocation soft,
                                       int max_vms_per_tier) {
  TopologySpec spec;
  spec.kind = TopologySpec::Kind::kChain4;
  return build_service_graph(spec, hw, soft, max_vms_per_tier);
}

ntier::AppConfig mysql_only_app_config(int worker_cap, uint64_t seed) {
  DCM_CHECK(worker_cap >= 1);
  ntier::AppConfig config;
  config.seed = seed;
  ntier::TierConfig db;
  db.name = "mysql";
  db.server.cpu = mysql_cpu_model();
  db.server.max_threads = worker_cap;
  db.server.downstream_connections = 0;
  db.server.pre_fraction = 1.0;
  db.server.demand_cv = 0.25;
  db.initial_vms = 1;
  db.min_vms = 1;
  db.max_vms = 1;
  config.tiers = {db};
  return config;
}

workload::RequestFactory mysql_query_factory(const workload::ServletCatalog& catalog) {
  return [&catalog](sim::Arena* arena, uint64_t id, Rng& rng, sim::SimTime now) {
    const auto& servlet = catalog.servlet(catalog.sample(rng));
    auto req = ntier::make_request_context(arena);
    req->id = id;
    req->created = now;
    req->demand_scale = {servlet.db_scale};
    req->downstream_calls = {0};
    return req;
  };
}

model::ConcurrencyModel tomcat_reference_model(int servers) {
  model::ConcurrencyModel m;
  m.params = tomcat_cpu_model().params;
  m.gamma = 1.0;
  m.servers = servers;
  m.visit_ratio = 1.0;
  return m;
}

model::ConcurrencyModel mysql_reference_model(int servers) {
  model::ConcurrencyModel m;
  m.params = mysql_cpu_model().params;
  m.gamma = 1.0;
  m.servers = servers;
  m.visit_ratio = kDbVisitRatio;
  return m;
}

}  // namespace dcm::core
