#include "core/topologies.h"

#include <algorithm>

#include "common/check.h"

namespace dcm::core {

ntier::CpuModelConfig apache_cpu_model() {
  ntier::CpuModelConfig cpu;
  cpu.params = {1.0e-3, 2.0e-5, 1.0e-8};  // light proxy work, near-linear scaling
  cpu.thrash_threshold = 1e18;
  cpu.thrash_factor = 0.0;
  return cpu;
}

ntier::CpuModelConfig tomcat_cpu_model() {
  ntier::CpuModelConfig cpu;
  // Table I Tomcat column: S0=2.84e-2, α=9.87e-3, β=4.54e-5 ⇒ N_b ≈ 20.
  cpu.params = {2.84e-2, 9.87e-3, 4.54e-5};
  cpu.thrash_threshold = 300.0;  // JVM-side collapse far beyond normal pools
  cpu.thrash_factor = 1.0e-4;
  return cpu;
}

ntier::CpuModelConfig mysql_cpu_model() {
  ntier::CpuModelConfig cpu;
  // Table I MySQL column (per query): S0=7.19e-3, α=5.04e-3, β=1.65e-6
  // ⇒ N_b ≈ 36. Thrash threshold 64: "reasonable between 20 and 80",
  // collapse well before 160 (Fig. 2a / Sec. V-B narrative).
  cpu.params = {7.19e-3, 5.04e-3, 1.65e-6};
  cpu.thrash_threshold = 64.0;
  cpu.thrash_factor = 1.0e-4;
  return cpu;
}

ntier::AppConfig rubbos_app_config(HardwareConfig hw, SoftAllocation soft, uint64_t seed,
                                   int max_vms_per_tier) {
  DCM_CHECK(hw.web >= 1 && hw.app >= 1 && hw.db >= 1);
  DCM_CHECK(soft.web_threads >= 1 && soft.app_threads >= 1 && soft.db_connections >= 1);

  ntier::AppConfig config;
  config.seed = seed;

  ntier::TierConfig web;
  web.name = "apache";
  web.server.cpu = apache_cpu_model();
  web.server.max_threads = soft.web_threads;
  web.server.downstream_connections = 0;  // HAProxy fronts the app tier; no per-Apache cap
  web.server.pre_fraction = 0.5;
  web.server.demand_cv = 0.10;
  web.initial_vms = hw.web;
  web.min_vms = 1;
  web.max_vms = std::max(hw.web, max_vms_per_tier);

  ntier::TierConfig app;
  app.name = "tomcat";
  app.server.cpu = tomcat_cpu_model();
  app.server.max_threads = soft.app_threads;
  app.server.downstream_connections = soft.db_connections;
  app.server.pre_fraction = 0.5;
  app.server.demand_cv = 0.25;
  app.initial_vms = hw.app;
  app.min_vms = 1;
  app.max_vms = std::max(hw.app, max_vms_per_tier);

  ntier::TierConfig db;
  db.name = "mysql";
  db.server.cpu = mysql_cpu_model();
  // max_connections-style cap, far above any sane upstream pool: the
  // concurrency reaching MySQL is governed by the Tomcat DBConnP, exactly
  // as in the paper.
  db.server.max_threads = 1000;
  db.server.downstream_connections = 0;
  db.server.pre_fraction = 1.0;  // leaf: single CPU phase
  db.server.demand_cv = 0.25;
  db.initial_vms = hw.db;
  db.min_vms = 1;
  db.max_vms = std::max(hw.db, max_vms_per_tier);

  config.tiers = {web, app, db};
  return config;
}

ntier::AppConfig rubbos_4tier_app_config(HardwareConfig hw, SoftAllocation soft, uint64_t seed,
                                         int max_vms_per_tier) {
  ntier::AppConfig config = rubbos_app_config(hw, soft, seed, max_vms_per_tier);

  // Insert the HAProxy tier between app and db: forwarding work only.
  ntier::TierConfig lb;
  lb.name = "haproxy";
  lb.server.cpu.params = {5.0e-5, 1.0e-7, 1.0e-10};  // ~50 µs per forward
  lb.server.max_threads = 10000;  // effectively unbounded event loop
  lb.server.downstream_connections = 0;
  lb.server.pre_fraction = 0.5;
  lb.server.demand_cv = 0.05;
  lb.initial_vms = 1;
  lb.min_vms = 1;
  lb.max_vms = 1;  // the paper never scales the LB tier
  config.tiers.insert(config.tiers.begin() + 2, lb);
  return config;
}

workload::RequestFactory four_tier_request_factory(const workload::ServletCatalog& catalog) {
  return [&catalog](sim::Arena* arena, uint64_t id, Rng& rng, sim::SimTime now) {
    const size_t index = catalog.sample(rng);
    const auto& servlet = catalog.servlet(index);
    auto req = ntier::make_request_context(arena);
    req->id = id;
    req->servlet = static_cast<int>(index);
    req->created = now;
    // web → app → haproxy → db; each app-tier query takes one LB hop.
    req->demand_scale = {servlet.web_scale, servlet.app_scale, 1.0, servlet.db_scale};
    req->downstream_calls = {1, servlet.db_queries, 1, 0};
    return req;
  };
}

ntier::AppConfig mysql_only_app_config(int worker_cap, uint64_t seed) {
  DCM_CHECK(worker_cap >= 1);
  ntier::AppConfig config;
  config.seed = seed;
  ntier::TierConfig db;
  db.name = "mysql";
  db.server.cpu = mysql_cpu_model();
  db.server.max_threads = worker_cap;
  db.server.downstream_connections = 0;
  db.server.pre_fraction = 1.0;
  db.server.demand_cv = 0.25;
  db.initial_vms = 1;
  db.min_vms = 1;
  db.max_vms = 1;
  config.tiers = {db};
  return config;
}

workload::RequestFactory mysql_query_factory(const workload::ServletCatalog& catalog) {
  return [&catalog](sim::Arena* arena, uint64_t id, Rng& rng, sim::SimTime now) {
    const auto& servlet = catalog.servlet(catalog.sample(rng));
    auto req = ntier::make_request_context(arena);
    req->id = id;
    req->created = now;
    req->demand_scale = {servlet.db_scale};
    req->downstream_calls = {0};
    return req;
  };
}

model::ConcurrencyModel tomcat_reference_model(int servers) {
  model::ConcurrencyModel m;
  m.params = tomcat_cpu_model().params;
  m.gamma = 1.0;
  m.servers = servers;
  m.visit_ratio = 1.0;
  return m;
}

model::ConcurrencyModel mysql_reference_model(int servers) {
  model::ConcurrencyModel m;
  m.params = mysql_cpu_model().params;
  m.gamma = 1.0;
  m.servers = servers;
  m.visit_ratio = kDbVisitRatio;
  return m;
}

}  // namespace dcm::core
