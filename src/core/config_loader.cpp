#include "core/config_loader.h"

#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "workload/trace_taxonomy.h"

namespace dcm::core {
namespace {

workload::Trace resolve_trace(const std::string& name, int peak_users, uint64_t seed) {
  for (const auto pattern : workload::all_trace_patterns()) {
    if (name == workload::trace_pattern_name(pattern)) {
      return workload::make_trace(pattern, peak_users, seed);
    }
  }
  // Not a taxonomy name — treat as a CSV path.
  return workload::Trace::load_csv(name);
}

// Parses an "s0,alpha,beta" triple for the model-override keys.
model::ServiceTimeParams parse_model_params(const std::string& section, const std::string& key,
                                            const std::string& value) {
  std::vector<double> parts;
  for (const auto& field : split(value, ',')) {
    const auto parsed = parse_double(std::string(trim(field)));
    if (!parsed) {
      throw std::runtime_error("config: [" + section + "] " + key +
                               " must be 's0,alpha,beta', got: " + value);
    }
    parts.push_back(*parsed);
  }
  if (parts.size() != 3) {
    throw std::runtime_error("config: [" + section + "] " + key +
                             " must be 's0,alpha,beta', got: " + value);
  }
  return {parts[0], parts[1], parts[2]};
}

[[noreturn]] void topology_error(const std::string& message) {
  throw std::runtime_error("config: [topology] " + message);
}

TopologySpec::Node parse_topology_node(const std::string& field) {
  const std::vector<std::string> parts = split(field, ':');
  if (parts.size() != 2) {
    topology_error("node '" + field + "' must be 'name:role'");
  }
  TopologySpec::Node node;
  node.name = std::string(trim(parts[0]));
  node.role = std::string(trim(parts[1]));
  if (node.name.empty() || node.role.empty()) {
    topology_error("node '" + field + "' must be 'name:role'");
  }
  return node;
}

TopologySpec::Edge parse_topology_edge(const std::string& field) {
  // from->to[:calls][:managed]; calls is a non-negative integer or 'q'.
  const std::vector<std::string> parts = split(field, ':');
  if (parts.empty() || parts.size() > 3) {
    topology_error("edge '" + field + "' must be 'from->to:calls[:managed]'");
  }
  TopologySpec::Edge edge;
  const size_t arrow = parts[0].find("->");
  if (arrow == std::string::npos) {
    topology_error("edge '" + field + "' is missing '->'");
  }
  edge.from = std::string(trim(std::string_view(parts[0]).substr(0, arrow)));
  edge.to = std::string(trim(std::string_view(parts[0]).substr(arrow + 2)));
  if (edge.from.empty() || edge.to.empty()) {
    topology_error("edge '" + field + "' must name both endpoints");
  }
  if (parts.size() >= 2) {
    const std::string calls(trim(parts[1]));
    if (calls == "q") {
      edge.servlet_calls = true;
    } else {
      const auto parsed = parse_int(calls);
      if (!parsed || *parsed < 0) {
        topology_error("edge '" + field + "' calls must be a non-negative integer or 'q'");
      }
      edge.calls = static_cast<int>(*parsed);
    }
  }
  if (parts.size() == 3) {
    if (trim(parts[2]) != "managed") {
      topology_error("edge '" + field + "' trailing field must be 'managed'");
    }
    edge.managed = true;
  }
  return edge;
}

}  // namespace

TopologySpec topology_spec_from_config(const Config& config) {
  TopologySpec spec;
  const std::string kind = config.get_string("topology", "kind", "chain3");
  if (kind == "chain3") {
    spec.kind = TopologySpec::Kind::kChain3;
  } else if (kind == "chain4") {
    spec.kind = TopologySpec::Kind::kChain4;
  } else if (kind == "graph") {
    spec.kind = TopologySpec::Kind::kGraph;
  } else {
    topology_error("unknown kind '" + kind + "' (expected chain3|chain4|graph)");
  }
  if (spec.kind != TopologySpec::Kind::kGraph) {
    if (config.has("topology", "nodes") || config.has("topology", "edges")) {
      topology_error("nodes/edges only apply to kind = graph");
    }
    return spec;
  }
  for (const std::string& field : split(config.get_string("topology", "nodes", ""), ',')) {
    if (trim(field).empty()) topology_error("empty node entry in nodes list");
    spec.nodes.push_back(parse_topology_node(std::string(trim(field))));
  }
  for (const std::string& field : split(config.get_string("topology", "edges", ""), ',')) {
    if (trim(field).empty()) topology_error("empty edge entry in edges list");
    spec.edges.push_back(parse_topology_edge(std::string(trim(field))));
  }
  if (spec.nodes.empty()) topology_error("kind = graph requires a nodes list");
  return spec;
}

const char* topology_kind_name(TopologySpec::Kind kind) {
  switch (kind) {
    case TopologySpec::Kind::kChain3:
      return "chain3";
    case TopologySpec::Kind::kChain4:
      return "chain4";
    case TopologySpec::Kind::kGraph:
      return "graph";
  }
  throw std::runtime_error("config: corrupt topology kind");
}

std::string topology_nodes_to_string(const TopologySpec& spec) {
  std::string out;
  for (const auto& node : spec.nodes) {
    if (!out.empty()) out += ", ";
    out += node.name + ":" + node.role;
  }
  return out;
}

std::string topology_edges_to_string(const TopologySpec& spec) {
  std::string out;
  for (const auto& edge : spec.edges) {
    if (!out.empty()) out += ", ";
    out += edge.from + "->" + edge.to + ":" +
           (edge.servlet_calls ? std::string("q") : std::to_string(edge.calls));
    if (edge.managed) out += ":managed";
  }
  return out;
}

ExperimentConfig experiment_from_config(const Config& config) {
  ExperimentConfig experiment;

  experiment.hardware.web = static_cast<int>(config.get_int("hardware", "web", 1));
  experiment.hardware.app = static_cast<int>(config.get_int("hardware", "app", 1));
  experiment.hardware.db = static_cast<int>(config.get_int("hardware", "db", 1));

  experiment.soft.web_threads = static_cast<int>(config.get_int("soft", "web_threads", 1000));
  experiment.soft.app_threads = static_cast<int>(config.get_int("soft", "app_threads", 100));
  experiment.soft.db_connections =
      static_cast<int>(config.get_int("soft", "db_connections", 80));

  experiment.topology = topology_spec_from_config(config);

  experiment.duration_seconds = config.get_double("run", "duration", 300.0);
  experiment.warmup_seconds = config.get_double("run", "warmup", 30.0);
  experiment.seed = static_cast<uint64_t>(config.get_int("run", "seed", 1));
  experiment.max_vms_per_tier = static_cast<int>(config.get_int("run", "max_vms", 8));

  if (config.has("workload", "seed")) {
    // The old two-seed split ([run] seed + [workload] seed) was a
    // reproducibility footgun; all streams now derive from [run] seed.
    throw std::runtime_error(
        "config: [workload] seed was removed — set [run] seed; every stream "
        "(workload, topology, trace) is derived from that single root seed");
  }
  const int users = static_cast<int>(config.get_int("workload", "users", 100));
  const double think = config.get_double("workload", "think_seconds", 3.0);
  const std::string workload_kind = config.get_string("workload", "kind", "rubbos");
  if (workload_kind == "jmeter") {
    experiment.workload = WorkloadSpec::jmeter(users);
  } else if (workload_kind == "rubbos") {
    experiment.workload = WorkloadSpec::rubbos(users, think);
  } else if (workload_kind == "trace") {
    const std::string trace_name =
        config.get_string("workload", "trace", "large-variation");
    const int peak = static_cast<int>(config.get_int("workload", "peak_users", 350));
    const uint64_t trace_seed =
        experiment_stream_seed(experiment.seed, SeedStream::kTrace);
    experiment.workload =
        WorkloadSpec::trace_driven(resolve_trace(trace_name, peak, trace_seed), think);
  } else {
    throw std::runtime_error("config: unknown workload kind '" + workload_kind + "'");
  }

  fault::FaultSpec& faults = experiment.faults;
  faults.crash_mttf_seconds = config.get_double("faults", "crash_mttf", 0.0);
  faults.slowdown_mttf_seconds = config.get_double("faults", "slowdown_mttf", 0.0);
  faults.slowdown_factor = config.get_double("faults", "slowdown_factor", 0.25);
  faults.slowdown_duration_seconds = config.get_double("faults", "slowdown_duration", 30.0);
  faults.telemetry_loss_mttf_seconds = config.get_double("faults", "telemetry_loss_mttf", 0.0);
  faults.telemetry_loss_duration_seconds =
      config.get_double("faults", "telemetry_loss_duration", 30.0);
  faults.agent_silence_mttf_seconds = config.get_double("faults", "agent_silence_mttf", 0.0);
  faults.agent_silence_duration_seconds =
      config.get_double("faults", "agent_silence_duration", 30.0);

  ResilienceSpec& resilience = experiment.resilience;
  resilience.enabled = config.get_bool("resilience", "enabled", false);
  resilience.client_timeout_seconds =
      config.get_double("resilience", "client_timeout", resilience.client_timeout_seconds);
  resilience.client_retries = static_cast<int>(
      config.get_int("resilience", "client_retries", resilience.client_retries));
  resilience.client_backoff_seconds =
      config.get_double("resilience", "client_backoff", resilience.client_backoff_seconds);
  resilience.subrequest_timeout_seconds = config.get_double(
      "resilience", "subrequest_timeout", resilience.subrequest_timeout_seconds);
  resilience.subrequest_retries = static_cast<int>(
      config.get_int("resilience", "subrequest_retries", resilience.subrequest_retries));
  resilience.health_period_seconds =
      config.get_double("resilience", "health_period", resilience.health_period_seconds);
  resilience.health_failure_threshold = static_cast<int>(config.get_int(
      "resilience", "health_failure_threshold", resilience.health_failure_threshold));
  resilience.replace_failed =
      config.get_bool("resilience", "replace_failed", resilience.replace_failed);
  resilience.watchdog_periods = static_cast<int>(
      config.get_int("resilience", "watchdog_periods", resilience.watchdog_periods));
  resilience.min_fit_r2 =
      config.get_double("resilience", "min_fit_r2", resilience.min_fit_r2);

  experiment.trace.enabled = config.get_bool("trace", "enabled", false);
  experiment.trace.rate = config.get_double("trace", "rate", 1.0);
  if (experiment.trace.rate < 0.0 || experiment.trace.rate > 1.0) {
    throw std::runtime_error("config: [trace] rate must be in [0, 1]");
  }

  control::ScalingPolicy policy;
  policy.control_period =
      sim::from_seconds(config.get_double("controller", "control_period", 15.0));
  policy.scale_out_util = config.get_double("controller", "scale_out_util", 0.80);
  policy.scale_in_util = config.get_double("controller", "scale_in_util", 0.40);
  policy.scale_in_consecutive =
      static_cast<int>(config.get_int("controller", "scale_in_consecutive", 3));
  policy.predictive = config.get_bool("controller", "predictive", false);
  policy.scale_out_response_time = config.get_double("controller", "sla_rt", 0.0);
  policy.hysteresis = config.get_double("controller", "hysteresis", 0.0);
  if (policy.hysteresis < 0.0) {
    throw std::runtime_error("config: [controller] hysteresis must be >= 0");
  }

  const std::string controller_kind = config.get_string("controller", "kind", "none");
  if (controller_kind == "none") {
    experiment.controller = ControllerSpec::none();
  } else if (controller_kind == "ec2") {
    experiment.controller = ControllerSpec::ec2(policy);
  } else if (controller_kind == "dcm") {
    control::DcmConfig dcm;
    dcm.policy = policy;
    dcm.app_tier_model = tomcat_reference_model();
    dcm.db_tier_model = mysql_reference_model();
    // Optional explicit Eq. 5 parameter overrides ("s0,alpha,beta") — used
    // by the wrong-models ablation and by anyone fitting their own system.
    if (config.has("controller", "app_model")) {
      dcm.app_tier_model.params = parse_model_params(
          "controller", "app_model", config.get_string("controller", "app_model"));
    }
    if (config.has("controller", "db_model")) {
      dcm.db_tier_model.params = parse_model_params(
          "controller", "db_model", config.get_string("controller", "db_model"));
    }
    dcm.stp_headroom = config.get_double("controller", "headroom", 1.0);
    dcm.online_estimation = config.get_bool("controller", "online_estimation", false);
    experiment.controller = ControllerSpec::dcm_controller(std::move(dcm));
  } else if (controller_kind == "predictive") {
    control::PredictiveConfig predictive;
    predictive.policy = policy;
    predictive.level_alpha = config.get_double("controller", "alpha", 0.5);
    predictive.trend_beta = config.get_double("controller", "beta", 0.3);
    predictive.horizon_periods = static_cast<int>(config.get_int("controller", "horizon", 2));
    if (predictive.level_alpha <= 0.0 || predictive.level_alpha > 1.0) {
      throw std::runtime_error("config: [controller] alpha must be in (0, 1]");
    }
    if (predictive.trend_beta < 0.0 || predictive.trend_beta > 1.0) {
      throw std::runtime_error("config: [controller] beta must be in [0, 1]");
    }
    if (predictive.horizon_periods < 1) {
      throw std::runtime_error("config: [controller] horizon must be >= 1");
    }
    experiment.controller = ControllerSpec::predictive_controller(predictive);
  } else if (controller_kind == "queueing") {
    control::QueueingConfig queueing;
    queueing.policy = policy;
    queueing.target_util = config.get_double("controller", "target_util", 0.6);
    if (queueing.target_util <= 0.0 || queueing.target_util >= 1.0) {
      throw std::runtime_error("config: [controller] target_util must be in (0, 1)");
    }
    experiment.controller = ControllerSpec::queueing_controller(queueing);
  } else if (controller_kind == "pi") {
    control::PiConfig pi;
    pi.policy = policy;
    pi.target_util = config.get_double("controller", "target_util", 0.6);
    pi.kp = config.get_double("controller", "kp", 2.0);
    pi.ki = config.get_double("controller", "ki", 0.5);
    pi.deadband = config.get_double("controller", "deadband", 0.5);
    if (pi.target_util <= 0.0 || pi.target_util >= 1.0) {
      throw std::runtime_error("config: [controller] target_util must be in (0, 1)");
    }
    if (pi.kp < 0.0 || pi.ki < 0.0 || pi.deadband < 0.0) {
      throw std::runtime_error("config: [controller] kp/ki/deadband must be >= 0");
    }
    experiment.controller = ControllerSpec::pi_controller(pi);
  } else {
    throw std::runtime_error("config: unknown controller kind '" + controller_kind + "'");
  }
  return experiment;
}

ExperimentConfig experiment_from_file(const std::string& path) {
  return experiment_from_config(Config::load(path));
}

}  // namespace dcm::core
