// Canonical deployments — the single source of truth for the calibrated
// simulator parameters used by benches, tests and examples.
//
// The per-tier CPU models take (S0, α, β) directly from the paper's Table I
// (they are the paper's own fitted ground truth), extended with a thrash
// term for MySQL so the Fig. 2(a) collapse past ~2× the optimal concurrency
// is as sharp as the measured system's (see DESIGN.md §3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/concurrency_model.h"
#include "ntier/app.h"
#include "ntier/service_graph.h"
#include "workload/closed_loop.h"
#include "workload/servlet.h"

namespace dcm::core {

/// Visit ratio of the DB tier (queries per HTTP request, paper Sec. III-A).
inline constexpr double kDbVisitRatio = 2.0;

ntier::CpuModelConfig apache_cpu_model();
ntier::CpuModelConfig tomcat_cpu_model();
ntier::CpuModelConfig mysql_cpu_model();
/// Memcached-like in-memory cache node: sub-millisecond GETs with
/// near-linear thread scaling (used by `cache`-role graph nodes).
ntier::CpuModelConfig cache_cpu_model();

/// The paper's three-digit hardware notation #W/#A/#D.
struct HardwareConfig {
  int web = 1;
  int app = 1;
  int db = 1;

  bool operator==(const HardwareConfig&) const = default;
};

/// The paper's soft-resource notation #W_T/#A_T/#A_C: Apache threads,
/// Tomcat threads, and the per-Tomcat DB connection pool.
struct SoftAllocation {
  int web_threads = 1000;
  int app_threads = 100;
  int db_connections = 80;

  bool operator==(const SoftAllocation&) const = default;
};

/// Builds the 3-tier RUBBoS-like deployment (web/app/db).
ntier::AppConfig rubbos_app_config(HardwareConfig hw, SoftAllocation soft, uint64_t seed = 1,
                                   int max_vms_per_tier = 8);

/// Declarative deployment shape. The two canonical chains are built-in
/// (kChain3 = web/app/db, kChain4 = web/app/db-lb/db with the HAProxy hop);
/// kGraph materializes an arbitrary DAG from named nodes with roles and
/// typed edges. Every kind lowers to the same ServiceGraph representation —
/// a chain is just the degenerate DAG.
struct TopologySpec {
  enum class Kind { kChain3, kChain4, kGraph };

  struct Node {
    std::string name;  // tier name, unique within the spec
    std::string role;  // "web" | "app" | "db" | "lb" | "cache"
    bool operator==(const Node&) const = default;
  };
  struct Edge {
    std::string from;
    std::string to;
    int calls = 1;              // fixed calls per visit (servlet_calls off)
    bool servlet_calls = false;  // calls = the sampled servlet's query count
    bool managed = false;        // DCM-actuated connection pool on this edge
    bool operator==(const Edge&) const = default;
  };

  Kind kind = Kind::kChain3;
  std::vector<Node> nodes;  // kGraph only; node 0 = client-facing root
  std::vector<Edge> edges;  // kGraph only; declaration order = edge ids

  bool operator==(const TopologySpec&) const = default;
};

/// Materializes a TopologySpec into a validated ServiceGraph with the
/// calibrated per-role tier templates (hardware counts and soft allocations
/// applied as in rubbos_app_config; the managed edge's pool gets
/// soft.db_connections). Throws std::runtime_error on an invalid spec
/// (unknown role, duplicate/undeclared node names, cycles, ...).
ntier::ServiceGraph build_service_graph(const TopologySpec& spec, HardwareConfig hw,
                                        SoftAllocation soft, int max_vms_per_tier = 8);

/// The paper's alternative 4-tier deployment (web/app/db-lb/db with a
/// near-zero-demand HAProxy pass-through that is never scaled), expressed as
/// a degenerate chain graph: edges web→app (1 call), app→lb (the servlet's
/// queries, throttled by the managed DB connection pool), lb→db (1 call).
ntier::ServiceGraph rubbos_4tier_graph(HardwareConfig hw, SoftAllocation soft,
                                       int max_vms_per_tier = 8);

/// Single-tier MySQL deployment for the Fig. 2(a) stress experiment: the
/// worker cap is the "matching thread pool size" knob, so the offered JMeter
/// concurrency is the request processing concurrency.
ntier::AppConfig mysql_only_app_config(int worker_cap = 1000, uint64_t seed = 1);

/// Request factory issuing raw single-query requests against the MySQL-only
/// deployment (demand profile drawn from the catalog's servlets).
workload::RequestFactory mysql_query_factory(const workload::ServletCatalog& catalog);

/// Reference concurrency models built from the ground-truth parameters —
/// what offline training recovers; used to seed DCM in tests/benches that
/// skip the training phase. N_b ≈ 20 (Tomcat), ≈ 36 (MySQL), as in Table I.
model::ConcurrencyModel tomcat_reference_model(int servers = 1);
model::ConcurrencyModel mysql_reference_model(int servers = 1);

}  // namespace dcm::core
