// Canonical deployments — the single source of truth for the calibrated
// simulator parameters used by benches, tests and examples.
//
// The per-tier CPU models take (S0, α, β) directly from the paper's Table I
// (they are the paper's own fitted ground truth), extended with a thrash
// term for MySQL so the Fig. 2(a) collapse past ~2× the optimal concurrency
// is as sharp as the measured system's (see DESIGN.md §3).
#pragma once

#include <cstdint>

#include "model/concurrency_model.h"
#include "ntier/app.h"
#include "workload/closed_loop.h"
#include "workload/servlet.h"

namespace dcm::core {

/// Visit ratio of the DB tier (queries per HTTP request, paper Sec. III-A).
inline constexpr double kDbVisitRatio = 2.0;

ntier::CpuModelConfig apache_cpu_model();
ntier::CpuModelConfig tomcat_cpu_model();
ntier::CpuModelConfig mysql_cpu_model();

/// The paper's three-digit hardware notation #W/#A/#D.
struct HardwareConfig {
  int web = 1;
  int app = 1;
  int db = 1;

  bool operator==(const HardwareConfig&) const = default;
};

/// The paper's soft-resource notation #W_T/#A_T/#A_C: Apache threads,
/// Tomcat threads, and the per-Tomcat DB connection pool.
struct SoftAllocation {
  int web_threads = 1000;
  int app_threads = 100;
  int db_connections = 80;

  bool operator==(const SoftAllocation&) const = default;
};

/// Builds the 3-tier RUBBoS-like deployment (web/app/db).
ntier::AppConfig rubbos_app_config(HardwareConfig hw, SoftAllocation soft, uint64_t seed = 1,
                                   int max_vms_per_tier = 8);

/// The paper's alternative 4-tier deployment: an HAProxy tier fronting the
/// databases (web/app/db-lb/db). The LB tier is a near-zero-demand
/// pass-through and is never scaled; requests built by
/// four_tier_request_factory() carry the extra hop.
ntier::AppConfig rubbos_4tier_app_config(HardwareConfig hw, SoftAllocation soft,
                                         uint64_t seed = 1, int max_vms_per_tier = 8);

/// Request factory for the 4-tier layout (demand plan: web → app →
/// db-lb → db, with the servlet's queries fanned through the LB hop).
workload::RequestFactory four_tier_request_factory(const workload::ServletCatalog& catalog);

/// Single-tier MySQL deployment for the Fig. 2(a) stress experiment: the
/// worker cap is the "matching thread pool size" knob, so the offered JMeter
/// concurrency is the request processing concurrency.
ntier::AppConfig mysql_only_app_config(int worker_cap = 1000, uint64_t seed = 1);

/// Request factory issuing raw single-query requests against the MySQL-only
/// deployment (demand profile drawn from the catalog's servlets).
workload::RequestFactory mysql_query_factory(const workload::ServletCatalog& catalog);

/// Reference concurrency models built from the ground-truth parameters —
/// what offline training recovers; used to seed DCM in tests/benches that
/// skip the training phase. N_b ≈ 20 (Tomcat), ≈ 36 (MySQL), as in Table I.
model::ConcurrencyModel tomcat_reference_model(int servers = 1);
model::ConcurrencyModel mysql_reference_model(int servers = 1);

}  // namespace dcm::core
