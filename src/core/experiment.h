// ExperimentRunner — one-call wiring of engine + app + monitoring bus +
// workload + (optional) controller, with per-second system timelines.
//
// Every bench and example builds on this facade; it is the reproduction's
// equivalent of the paper's testbed harness.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "control/actuators.h"
#include "control/controller_registry.h"
#include "control/dcm_controller.h"
#include "control/pi_controller.h"
#include "control/predictive_controller.h"
#include "control/queueing_controller.h"
#include "control/scaling_policy.h"
#include "core/topologies.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "metrics/timeseries.h"
#include "trace/attribution.h"
#include "workload/client_stats.h"
#include "workload/trace.h"

namespace dcm::core {

struct WorkloadSpec {
  enum class Kind { kJmeter, kRubbosClients, kTrace };
  Kind kind = Kind::kRubbosClients;
  int users = 100;                 // kJmeter / kRubbosClients
  double mean_think_seconds = 3.0;  // kRubbosClients / kTrace
  workload::Trace trace;            // kTrace

  static WorkloadSpec jmeter(int users);
  static WorkloadSpec rubbos(int users, double think_s = 3.0);
  static WorkloadSpec trace_driven(workload::Trace trace, double think_s = 3.0);
};

struct ControllerSpec {
  enum class Kind { kNone, kEc2AutoScale, kDcm, kPredictive, kQueueing, kPi };
  Kind kind = Kind::kNone;
  control::ScalingPolicy policy;
  /// Per-family tuning knobs; only the chosen kind's member is read, and
  /// `policy` above is copied into it at construction time.
  control::DcmConfig dcm;
  control::PredictiveConfig predictive;
  control::QueueingConfig queueing;
  control::PiConfig pi;

  static ControllerSpec none();
  static ControllerSpec ec2(control::ScalingPolicy policy = {});
  static ControllerSpec dcm_controller(control::DcmConfig config);
  static ControllerSpec predictive_controller(control::PredictiveConfig config);
  static ControllerSpec queueing_controller(control::QueueingConfig config);
  static ControllerSpec pi_controller(control::PiConfig config);

  /// The controller-registry key for this kind ("" for kNone).
  const char* registry_name() const;
  /// Bundles the spec into the registry's construction menu.
  control::ControllerMenu menu() const;
};

/// End-to-end resilience switchboard. One flag arms the whole stack with
/// the listed defaults: client deadline/retry, inter-tier sub-request
/// deadline/retry, tier health checks with replacement launches, and the
/// DCM watchdog (watchdog fields apply only to the DCM controller).
struct ResilienceSpec {
  bool enabled = false;
  double client_timeout_seconds = 2.0;
  int client_retries = 2;
  double client_backoff_seconds = 0.25;
  double subrequest_timeout_seconds = 1.0;
  int subrequest_retries = 1;
  double health_period_seconds = 5.0;
  int health_failure_threshold = 3;
  bool replace_failed = true;
  int watchdog_periods = 2;
  double min_fit_r2 = 0.0;  // 0 = R² gate off
};

struct ExperimentConfig {
  HardwareConfig hardware;
  SoftAllocation soft;
  /// Deployment shape (default: the 3-tier chain). Every kind lowers to a
  /// ServiceGraph; the chains are degenerate DAGs that reproduce the legacy
  /// per-depth wiring — and its result digests — bit-for-bit.
  TopologySpec topology;
  WorkloadSpec workload;
  ControllerSpec controller;
  /// Fault schedule rates; all-zero (the default) injects nothing. The
  /// concrete schedule derives from the root seed (SeedStream::kFault), so
  /// two configs differing only in resilience see the same faults.
  fault::FaultSpec faults;
  ResilienceSpec resilience;
  /// Request tracing (off by default). Sampling is a pure hash of the
  /// derived kTrace seed and the request id, so enabling it — at any rate —
  /// leaves the simulation's event and draw sequence bit-identical.
  trace::TraceSpec trace;
  double duration_seconds = 300.0;
  /// Measurement excludes [0, warmup); timelines still cover everything.
  double warmup_seconds = 30.0;
  int max_vms_per_tier = 8;
  /// The experiment's single root seed. Every stochastic stream (topology
  /// service-time draws, workload think/demand draws, trace synthesis) is
  /// derived from it via `derive_seed(seed, <stream>)` — see the
  /// SeedStream enum. There is deliberately no per-component seed knob:
  /// one root seed fully determines the run.
  uint64_t seed = 1;
};

/// Stream ids for the root-seed derivation (DESIGN.md "Seed derivation").
/// Keep stable: changing an id changes every derived stream and therefore
/// every reproduced number.
enum class SeedStream : uint64_t {
  kTopology = 0,  // per-server service-time variation
  kWorkload = 1,  // generator think times / servlet mix draws
  kTrace = 2,     // taxonomy trace synthesis; also keys request-trace
                  // sampling (a pure hash — consumes nothing from the stream)
  kFault = 3,     // fault-plan synthesis (chaos runs)
};

/// `derive_seed(root, stream)` with a typed stream id.
uint64_t experiment_stream_seed(uint64_t root, SeedStream stream);

/// Per-tier, per-second system timelines (the Fig. 5 panel data).
struct TierTimeline {
  std::string name;
  metrics::TimeSeries provisioned_vms;
  metrics::TimeSeries cpu_util;
  metrics::TimeSeries concurrency;  // total in-flight requests across servers

  explicit TierTimeline(const std::string& tier_name);
};

struct ExperimentResult {
  workload::ClientStats client;
  std::vector<TierTimeline> tiers;
  std::vector<control::ControlAction> actions;

  // Post-warmup summary.
  double mean_throughput = 0.0;  // req/s
  double mean_response_time = 0.0;
  double p95_response_time = 0.0;
  double max_response_time = 0.0;
  uint64_t completed = 0;
  uint64_t errors = 0;

  // Failure accounting (chaos runs; all zero on a healthy run).
  uint64_t timeouts = 0;  // client + inter-tier deadline expirations
  uint64_t retries = 0;   // client + inter-tier re-issued attempts
  double goodput = 0.0;   // post-warmup req/s completing within the bound
  double error_rate = 0.0;  // post-warmup errors / (errors + completions)
  /// Injected faults and recovery actions (injector log merged with every
  /// tier's eject/replace events), sorted by time.
  std::vector<fault::FaultLogEntry> fault_log;

  /// Resource-efficiency accounting (the paper's motivation): provisioned
  /// VM-seconds per tier over the whole run (booting + active + draining
  /// all cost money), and completed requests per VM-second.
  std::vector<double> vm_seconds;     // per tier
  double total_vm_seconds = 0.0;      // across scalable tiers
  double requests_per_vm_second = 0.0;

  /// SLA view: fraction of post-warmup seconds whose mean response time
  /// exceeded the bound (1 s by default, the paper's visual SLA line).
  double sla_violation_fraction = 0.0;
  double sla_bound_seconds = 1.0;
  /// The same violation count in whole seconds, and the post-warmup window
  /// it was measured over — the tournament scorecard's SLO column.
  int sla_violation_seconds = 0;
  int measured_seconds = 0;

  /// Engine events dispatched over the whole run — the macro benchmark's
  /// work unit (events/sec). Diagnostic only; never feeds the result digest.
  uint64_t events_dispatched = 0;

  /// Present only when config.trace.enabled: sampled span streams plus the
  /// folded latency-attribution table. Never feeds the result digest.
  std::shared_ptr<const trace::TraceReport> trace_report;

  /// Count of actions of a given kind on a given tier ("" = any tier).
  int action_count(const std::string& action, const std::string& tier = "") const;
};

ExperimentResult run_experiment(const ExperimentConfig& config);

/// Sweep helper for the training/validation benches: measures steady-state
/// throughput of the given deployment under a JMeter closed loop at each
/// offered concurrency. When `match_pools` is true the app-tier thread pool
/// is set to the offered concurrency (the paper's "matching thread pool"
/// training discipline — concurrency in the server equals the workload's).
struct SweepPoint {
  int concurrency = 0;       // offered (JMeter users)
  double throughput = 0.0;   // steady-state system throughput (req/s)
  double response_time = 0.0;
  /// Measured mean request-processing concurrency per server, per tier —
  /// the x-axis the paper's model training actually uses.
  std::vector<double> per_server_concurrency;
};

std::vector<SweepPoint> jmeter_concurrency_sweep(const ExperimentConfig& base,
                                                 const std::vector<int>& concurrencies,
                                                 bool match_app_pools);

}  // namespace dcm::core
