// Golden-section search for a 1-D unimodal minimum, plus an integer-domain
// variant used to pick the best whole-number concurrency.
#pragma once

#include <functional>

namespace dcm::fit {

struct GoldenResult {
  double x = 0.0;
  double value = 0.0;
  int evaluations = 0;
};

/// Minimizes f over [lo, hi]; f is assumed unimodal on the interval.
GoldenResult golden_section_minimize(const std::function<double(double)>& f, double lo, double hi,
                                     double tolerance = 1e-8, int max_iterations = 200);

/// Exhaustive argmin of f over integers in [lo, hi] (inclusive).
/// Ties break toward the smaller argument.
int integer_argmin(const std::function<double(int)>& f, int lo, int hi);

}  // namespace dcm::fit
