// Linear least squares and goodness-of-fit.
#pragma once

#include <functional>
#include <vector>

#include "fit/matrix.h"

namespace dcm::fit {

/// Solves min ||A x - y||² via the normal equations. Returns empty if the
/// system is singular (rank-deficient design).
std::vector<double> linear_least_squares(const Matrix& a, const std::vector<double>& y);

/// Ordinary polynomial fit y ≈ c0 + c1 x + ... + c_deg x^deg.
std::vector<double> polyfit(const std::vector<double>& x, const std::vector<double>& y, int degree);

/// Coefficient of determination R² = 1 - SS_res/SS_tot for predictions
/// against observations. Returns 1 when SS_tot == 0 and SS_res == 0.
double r_squared(const std::vector<double>& observed, const std::vector<double>& predicted);

}  // namespace dcm::fit
