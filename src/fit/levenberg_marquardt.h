// Levenberg–Marquardt nonlinear least squares with numeric Jacobian.
//
// Fits model(params, x) to (x, y) pairs — this is the "Least-Square Fitting
// method" the paper uses to estimate (S0, α, β, γ) in Eq. 7 (Sec. V-A).
// Parameters can be box-constrained; steps are clipped into the box.
#pragma once

#include <functional>
#include <vector>

namespace dcm::fit {

struct LmOptions {
  int max_iterations = 200;
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.1;
  /// Converged when the relative SSE improvement drops below this.
  double tolerance = 1e-10;
  /// Relative step used for the forward-difference Jacobian.
  double jacobian_step = 1e-6;
  /// Optional per-parameter bounds (empty = unbounded).
  std::vector<double> lower_bounds;
  std::vector<double> upper_bounds;
};

struct LmResult {
  std::vector<double> params;
  double sse = 0.0;        // final sum of squared residuals
  double r_squared = 0.0;  // against the observations
  int iterations = 0;
  bool converged = false;
};

/// model(params, x) -> predicted y.
using ModelFn = std::function<double(const std::vector<double>&, double)>;

LmResult levenberg_marquardt(const ModelFn& model, const std::vector<double>& x,
                             const std::vector<double>& y, std::vector<double> initial,
                             const LmOptions& options = {});

}  // namespace dcm::fit
