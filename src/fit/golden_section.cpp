#include "fit/golden_section.h"

#include <cmath>

#include "common/check.h"

namespace dcm::fit {

GoldenResult golden_section_minimize(const std::function<double(double)>& f, double lo, double hi,
                                     double tolerance, int max_iterations) {
  DCM_CHECK(hi >= lo);
  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;

  GoldenResult result;
  double a = lo, b = hi;
  double c = b - inv_phi * (b - a);
  double d = a + inv_phi * (b - a);
  double fc = f(c);
  double fd = f(d);
  result.evaluations = 2;

  for (int i = 0; i < max_iterations && (b - a) > tolerance; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - inv_phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + inv_phi * (b - a);
      fd = f(d);
    }
    ++result.evaluations;
  }
  result.x = 0.5 * (a + b);
  result.value = f(result.x);
  ++result.evaluations;
  return result;
}

int integer_argmin(const std::function<double(int)>& f, int lo, int hi) {
  DCM_CHECK(hi >= lo);
  int best = lo;
  double best_value = f(lo);
  for (int i = lo + 1; i <= hi; ++i) {
    const double v = f(i);
    if (v < best_value) {
      best_value = v;
      best = i;
    }
  }
  return best;
}

}  // namespace dcm::fit
