#include "fit/levenberg_marquardt.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "fit/least_squares.h"
#include "fit/matrix.h"

namespace dcm::fit {
namespace {

void clip_to_bounds(std::vector<double>& params, const LmOptions& opt) {
  if (!opt.lower_bounds.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i] = std::max(params[i], opt.lower_bounds[i]);
    }
  }
  if (!opt.upper_bounds.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i] = std::min(params[i], opt.upper_bounds[i]);
    }
  }
}

double sse_of(const ModelFn& model, const std::vector<double>& params,
              const std::vector<double>& x, const std::vector<double>& y) {
  double sse = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - model(params, x[i]);
    sse += r * r;
  }
  return sse;
}

}  // namespace

LmResult levenberg_marquardt(const ModelFn& model, const std::vector<double>& x,
                             const std::vector<double>& y, std::vector<double> initial,
                             const LmOptions& options) {
  DCM_CHECK(x.size() == y.size());
  DCM_CHECK(!x.empty());
  DCM_CHECK(!initial.empty());
  if (!options.lower_bounds.empty()) DCM_CHECK(options.lower_bounds.size() == initial.size());
  if (!options.upper_bounds.empty()) DCM_CHECK(options.upper_bounds.size() == initial.size());

  const size_t n = x.size();
  const size_t p = initial.size();

  std::vector<double> params = std::move(initial);
  clip_to_bounds(params, options);
  double sse = sse_of(model, params, x, y);
  double lambda = options.initial_lambda;

  LmResult result;
  result.params = params;
  result.sse = sse;

  std::vector<double> residuals(n);
  Matrix jac(n, p);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Residuals and forward-difference Jacobian at current params.
    for (size_t i = 0; i < n; ++i) residuals[i] = y[i] - model(params, x[i]);
    for (size_t j = 0; j < p; ++j) {
      const double h = std::max(std::fabs(params[j]) * options.jacobian_step, 1e-12);
      std::vector<double> bumped = params;
      bumped[j] += h;
      for (size_t i = 0; i < n; ++i) {
        jac(i, j) = (model(bumped, x[i]) - model(params, x[i])) / h;
      }
    }

    // Normal equations: (J^T J + λ diag(J^T J)) δ = J^T r
    const Matrix jt = jac.transpose();
    Matrix jtj = jt * jac;
    std::vector<double> jtr(p, 0.0);
    for (size_t j = 0; j < p; ++j) {
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) sum += jac(i, j) * residuals[i];
      jtr[j] = sum;
    }

    bool stepped = false;
    for (int attempt = 0; attempt < 12 && !stepped; ++attempt) {
      Matrix damped = jtj;
      for (size_t j = 0; j < p; ++j) {
        damped(j, j) += lambda * std::max(jtj(j, j), 1e-12);
      }
      const std::vector<double> delta = damped.solve(jtr);
      if (delta.empty()) {
        lambda *= options.lambda_up;
        continue;
      }
      std::vector<double> trial = params;
      for (size_t j = 0; j < p; ++j) trial[j] += delta[j];
      clip_to_bounds(trial, options);
      const double trial_sse = sse_of(model, trial, x, y);
      if (trial_sse < sse) {
        const double improvement = (sse - trial_sse) / std::max(sse, 1e-300);
        params = std::move(trial);
        sse = trial_sse;
        lambda = std::max(lambda * options.lambda_down, 1e-12);
        stepped = true;
        if (improvement < options.tolerance) {
          result.converged = true;
        }
      } else {
        lambda *= options.lambda_up;
      }
    }
    if (!stepped) {
      // No downhill step found at any damping — treat as converged.
      result.converged = true;
    }
    if (result.converged) break;
  }

  result.params = params;
  result.sse = sse;
  std::vector<double> predicted(n);
  for (size_t i = 0; i < n; ++i) predicted[i] = model(params, x[i]);
  result.r_squared = r_squared(y, predicted);
  return result;
}

}  // namespace dcm::fit
