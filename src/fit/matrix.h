// Small dense row-major matrix — just enough linear algebra for the model
// fitting pipeline (normal equations, LM steps). Not a general BLAS.
#pragma once

#include <cstddef>
#include <vector>

namespace dcm::fit {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  static Matrix identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c);
  double operator()(size_t r, size_t c) const;

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix scaled(double s) const;

  /// Solves A x = b by Gaussian elimination with partial pivoting.
  /// A must be square with rows()==b.size(). Returns empty on singularity.
  std::vector<double> solve(const std::vector<double>& b) const;

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

}  // namespace dcm::fit
