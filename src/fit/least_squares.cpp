#include "fit/least_squares.h"

#include <cmath>

#include "common/check.h"

namespace dcm::fit {

std::vector<double> linear_least_squares(const Matrix& a, const std::vector<double>& y) {
  DCM_CHECK(a.rows() == y.size());
  DCM_CHECK(a.rows() >= a.cols());
  const Matrix at = a.transpose();
  const Matrix ata = at * a;
  // A^T y
  std::vector<double> aty(a.cols(), 0.0);
  for (size_t c = 0; c < a.cols(); ++c) {
    double sum = 0.0;
    for (size_t r = 0; r < a.rows(); ++r) sum += a(r, c) * y[r];
    aty[c] = sum;
  }
  return ata.solve(aty);
}

std::vector<double> polyfit(const std::vector<double>& x, const std::vector<double>& y,
                            int degree) {
  DCM_CHECK(x.size() == y.size());
  DCM_CHECK(degree >= 0);
  DCM_CHECK(x.size() >= static_cast<size_t>(degree) + 1);
  Matrix a(x.size(), static_cast<size_t>(degree) + 1);
  for (size_t r = 0; r < x.size(); ++r) {
    double pw = 1.0;
    for (int c = 0; c <= degree; ++c) {
      a(r, static_cast<size_t>(c)) = pw;
      pw *= x[r];
    }
  }
  return linear_least_squares(a, y);
}

double r_squared(const std::vector<double>& observed, const std::vector<double>& predicted) {
  DCM_CHECK(observed.size() == predicted.size());
  DCM_CHECK(!observed.empty());
  double mean = 0.0;
  for (double v : observed) mean += v;
  mean /= static_cast<double>(observed.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - mean) * (observed[i] - mean);
  }
  // Sums of squares are non-negative, so <= 0 is the exact-zero case without
  // a float equality comparison.
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace dcm::fit
