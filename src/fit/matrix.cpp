#include "fit/matrix.h"

#include <cmath>

#include "common/check.h"

namespace dcm::fit {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(size_t r, size_t c) {
  DCM_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(size_t r, size_t c) const {
  DCM_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  DCM_CHECK_MSG(cols_ == rhs.rows_, "matrix product shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      // Exact-zero fast path (skips no-op row work), not a tolerance check.
      if (a == 0.0) continue;  // dcm-lint: allow(no-float-eq)
      for (size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  DCM_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  DCM_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::scaled(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

std::vector<double> Matrix::solve(const std::vector<double>& b) const {
  DCM_CHECK(rows_ == cols_);
  DCM_CHECK(b.size() == rows_);
  const size_t n = rows_;
  Matrix a = *this;
  std::vector<double> x = b;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > best) {
        best = std::fabs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-300) return {};  // singular
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
      std::swap(x[pivot], x[col]);
    }
    // Eliminate below.
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      // Exact-zero fast path: already-eliminated entries need no row update.
      if (factor == 0.0) continue;  // dcm-lint: allow(no-float-eq)
      for (size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      x[r] -= factor * x[col];
    }
  }
  // Back substitution.
  for (size_t i = n; i-- > 0;) {
    double sum = x[i];
    for (size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
    x[i] = sum / a(i, i);
  }
  return x;
}

}  // namespace dcm::fit
