// LatencyAttribution — folds sampled traces into the per-tier, per-cause
// waterfall the paper's Fig. 2/4 story needs: for each (tier, cause) pair,
// how many seconds requests sank there and what *share* of end-to-end
// latency that cause owned at the median and at the tail.
//
// Only leaf causes enter the fold (is_leaf_cause): pool-queue wait,
// connection-pool wait, CPU run-queue wait, nominal service, retry backoff
// and deadline waits. kDownstream spans are containers — the downstream
// tier's own leaf spans carry that wall-clock — and kThink precedes the
// request. Under retries a timed-out attempt's server-side spans still
// record, so cause shares can sum past 1 in storms; on a healthy run the
// leaf causes partition the latency up to scheduling gaps.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "trace/tracer.h"

namespace dcm::trace {

struct AttributionRow {
  int tier = kClientTier;
  SpanKind cause = SpanKind::kPoolWait;
  uint64_t traces = 0;        // traces in which this cause appeared
  double total_seconds = 0.0;
  double mean_seconds = 0.0;  // mean over the traces it appeared in
  // Percentiles (nearest-rank) of this cause's share of its trace's
  // end-to-end latency, over the traces it appeared in.
  double p50_share = 0.0;
  double p95_share = 0.0;
  double p99_share = 0.0;
};

/// Per-edge waterfall over kDownstream container spans: how much wall-clock
/// each service-graph edge (identified by its declaration-order id) owned,
/// attributed to the issuing tier. Unlike the leaf-cause table, these rows
/// aggregate whole downstream subtrees, so sibling edges of a fan-out node
/// can be compared directly (which branch dominates the tail) while nested
/// edges along a path overlap by construction.
struct EdgeAttributionRow {
  int tier = kClientTier;  // issuing (upstream) tier
  int edge = kNoEdge;
  uint64_t traces = 0;
  double total_seconds = 0.0;
  double mean_seconds = 0.0;
  double p50_share = 0.0;
  double p95_share = 0.0;
  double p99_share = 0.0;
};

class LatencyAttribution {
 public:
  /// Folds one finalized successful trace (ignores anything else).
  void add(const TraceContext& trace);

  uint64_t trace_count() const { return trace_count_; }

  /// Rows sorted by (tier, cause) — a deterministic table.
  std::vector<AttributionRow> rows() const;

  /// Rows sorted by (tier, edge) — the per-edge waterfall.
  std::vector<EdgeAttributionRow> edge_rows() const;

 private:
  struct CauseAgg {
    std::vector<double> shares;  // per-trace share of end-to-end latency
    double total_seconds = 0.0;
  };

  uint64_t trace_count_ = 0;
  std::map<std::pair<int, int>, CauseAgg> causes_;  // (tier, SpanKind)
  std::map<std::pair<int, int>, CauseAgg> edges_;   // (tier, edge id)
};

/// The exported view of one run's tracing: counts, every finalized trace
/// (span streams in sampling order), run-level annotations, and the folded
/// attribution table.
struct TraceReport {
  TraceSpec spec;
  uint64_t sampled = 0;    // contexts handed out
  uint64_t finalized = 0;  // settled before the run ended
  uint64_t completed = 0;  // finalized with ok=true
  std::vector<std::shared_ptr<const TraceContext>> traces;  // finalized only
  std::vector<TraceAnnotation> annotations;
  std::vector<AttributionRow> attribution;
  std::vector<EdgeAttributionRow> edge_attribution;
};

/// Builds the report from everything the tracer collected.
std::shared_ptr<const TraceReport> build_report(const Tracer& tracer);

/// Annotations overlapping [trace.started, trace.finished].
std::vector<TraceAnnotation> annotations_overlapping(const TraceReport& report,
                                                     const TraceContext& trace);

}  // namespace dcm::trace
