#include "trace/trace.h"

namespace dcm::trace {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kThink:
      return "think";
    case SpanKind::kLbPick:
      return "lb_pick";
    case SpanKind::kPoolWait:
      return "pool_wait";
    case SpanKind::kConnWait:
      return "conn_wait";
    case SpanKind::kService:
      return "service";
    case SpanKind::kCpuWait:
      return "cpu_wait";
    case SpanKind::kDownstream:
      return "downstream";
    case SpanKind::kBackoff:
      return "backoff";
    case SpanKind::kTimeoutWait:
      return "timeout_wait";
  }
  return "unknown";
}

bool is_leaf_cause(SpanKind kind) {
  switch (kind) {
    case SpanKind::kPoolWait:
    case SpanKind::kConnWait:
    case SpanKind::kService:
    case SpanKind::kCpuWait:
    case SpanKind::kBackoff:
    case SpanKind::kTimeoutWait:
      return true;
    case SpanKind::kThink:
    case SpanKind::kLbPick:
    case SpanKind::kDownstream:
      return false;
  }
  return false;
}

}  // namespace dcm::trace
