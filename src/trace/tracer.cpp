#include "trace/tracer.h"

#include "common/check.h"
#include "common/rng.h"

namespace dcm::trace {

Tracer::Tracer(uint64_t seed, TraceSpec spec) : seed_(seed), spec_(spec) {
  DCM_CHECK(spec_.rate >= 0.0 && spec_.rate <= 1.0);
}

bool Tracer::should_sample(uint64_t request_id) const {
  if (!spec_.enabled || spec_.rate <= 0.0) return false;
  if (spec_.rate >= 1.0) return true;
  // One SplitMix64 finalization of (seed ⊕ id) → uniform u64 → [0,1).
  // A hash, not a stream: sampling never advances any generator.
  uint64_t state = seed_ ^ (request_id * 0x9E3779B97F4A7C15ull);
  const uint64_t hashed = splitmix64(state);
  const double u = static_cast<double>(hashed >> 11) * 0x1.0p-53;
  return u < spec_.rate;
}

std::shared_ptr<TraceContext> Tracer::maybe_sample(uint64_t request_id, int servlet,
                                                   sim::SimTime now) {
  if (!should_sample(request_id)) return nullptr;
  auto context = std::make_shared<TraceContext>();
  context->request_id = request_id;
  context->servlet = servlet;
  context->started = now;
  traces_.push_back(context);
  return context;
}

void Tracer::annotate(sim::SimTime at, std::string kind, std::string detail) {
  annotations_.push_back(TraceAnnotation{at, std::move(kind), std::move(detail)});
}

}  // namespace dcm::trace
