// Tracer — deterministic head sampler + trace collector for one experiment.
//
// The tracer decides at issue time whether a request is sampled (a pure
// hash of the trace seed and the request id against the configured rate —
// no Rng stream is consumed, so the simulation's event/draw sequence is
// bit-identical with tracing on or off, at any rate), hands out the
// TraceContext the instrumentation hooks append spans to, and records
// run-level annotations (soft-resource actuations, watchdog transitions,
// injected faults) that the report later overlays on overlapping traces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"
#include "trace/trace.h"

namespace dcm::trace {

/// Experiment-level tracing knobs ([trace] in scenario INI).
struct TraceSpec {
  bool enabled = false;
  /// Head-sampling probability in [0, 1]; 1 = every request.
  double rate = 1.0;
};

/// A run-level event overlapping sampled traces (controller actuations,
/// injected faults). Purely observational, like the spans themselves.
struct TraceAnnotation {
  sim::SimTime at = 0;
  std::string kind;    // "set_stp", "crash", "watchdog_freeze", ...
  std::string detail;  // tier/target + parameters
};

class Tracer {
 public:
  /// `seed` is the derived trace-stream seed (SeedStream::kTrace).
  Tracer(uint64_t seed, TraceSpec spec);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TraceSpec& spec() const { return spec_; }

  /// Pure sampling decision — same (seed, id) always answers the same.
  bool should_sample(uint64_t request_id) const;

  /// Returns a registered TraceContext when the request is sampled, null
  /// otherwise. The tracer keeps every handed-out context alive.
  std::shared_ptr<TraceContext> maybe_sample(uint64_t request_id, int servlet,
                                             sim::SimTime now);

  /// Records a run-level annotation (observation-only).
  void annotate(sim::SimTime at, std::string kind, std::string detail);

  uint64_t sampled() const { return static_cast<uint64_t>(traces_.size()); }
  const std::vector<std::shared_ptr<TraceContext>>& traces() const { return traces_; }
  const std::vector<TraceAnnotation>& annotations() const { return annotations_; }

 private:
  uint64_t seed_;
  TraceSpec spec_;
  std::vector<std::shared_ptr<TraceContext>> traces_;
  std::vector<TraceAnnotation> annotations_;
};

}  // namespace dcm::trace
