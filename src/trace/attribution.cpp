#include "trace/attribution.h"

#include <algorithm>

#include "common/check.h"

namespace dcm::trace {
namespace {

// Nearest-rank percentile over an already-sorted sample vector.
double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t n = sorted.size();
  const double rank = q * static_cast<double>(n);
  size_t index = static_cast<size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index == 0) index = 1;
  if (index > n) index = n;
  return sorted[index - 1];
}

}  // namespace

void LatencyAttribution::add(const TraceContext& trace) {
  if (!trace.finalized || !trace.ok) return;
  const double total = sim::to_seconds(trace.finished - trace.started);
  if (total <= 0.0) return;
  ++trace_count_;

  // Sum this trace's seconds per (tier, leaf cause) first, then fold each
  // cause's share exactly once per trace.
  std::map<std::pair<int, int>, double> per_cause;
  std::map<std::pair<int, int>, double> per_edge;
  for (const Span& span : trace.spans) {
    const double seconds = sim::to_seconds(span.end - span.start);
    if (seconds <= 0.0) continue;
    if (is_leaf_cause(span.kind)) {
      per_cause[{span.tier, static_cast<int>(span.kind)}] += seconds;
    }
    // The edge waterfall folds kDownstream containers — one per issued
    // call, stamped with the issuing tier and the graph edge id.
    if (span.kind == SpanKind::kDownstream && span.edge != kNoEdge) {
      per_edge[{span.tier, span.edge}] += seconds;
    }
  }
  for (const auto& [key, seconds] : per_cause) {
    CauseAgg& agg = causes_[key];
    agg.shares.push_back(seconds / total);
    agg.total_seconds += seconds;
  }
  for (const auto& [key, seconds] : per_edge) {
    CauseAgg& agg = edges_[key];
    agg.shares.push_back(seconds / total);
    agg.total_seconds += seconds;
  }
}

std::vector<AttributionRow> LatencyAttribution::rows() const {
  std::vector<AttributionRow> rows;
  rows.reserve(causes_.size());
  for (const auto& [key, agg] : causes_) {
    AttributionRow row;
    row.tier = key.first;
    row.cause = static_cast<SpanKind>(key.second);
    row.traces = static_cast<uint64_t>(agg.shares.size());
    row.total_seconds = agg.total_seconds;
    row.mean_seconds =
        agg.shares.empty() ? 0.0 : agg.total_seconds / static_cast<double>(agg.shares.size());
    std::vector<double> sorted = agg.shares;
    std::sort(sorted.begin(), sorted.end());
    row.p50_share = percentile_sorted(sorted, 0.50);
    row.p95_share = percentile_sorted(sorted, 0.95);
    row.p99_share = percentile_sorted(sorted, 0.99);
    rows.push_back(row);
  }
  return rows;
}

std::vector<EdgeAttributionRow> LatencyAttribution::edge_rows() const {
  std::vector<EdgeAttributionRow> rows;
  rows.reserve(edges_.size());
  for (const auto& [key, agg] : edges_) {
    EdgeAttributionRow row;
    row.tier = key.first;
    row.edge = key.second;
    row.traces = static_cast<uint64_t>(agg.shares.size());
    row.total_seconds = agg.total_seconds;
    row.mean_seconds =
        agg.shares.empty() ? 0.0 : agg.total_seconds / static_cast<double>(agg.shares.size());
    std::vector<double> sorted = agg.shares;
    std::sort(sorted.begin(), sorted.end());
    row.p50_share = percentile_sorted(sorted, 0.50);
    row.p95_share = percentile_sorted(sorted, 0.95);
    row.p99_share = percentile_sorted(sorted, 0.99);
    rows.push_back(row);
  }
  return rows;
}

std::shared_ptr<const TraceReport> build_report(const Tracer& tracer) {
  auto report = std::make_shared<TraceReport>();
  report->spec = tracer.spec();
  report->sampled = tracer.sampled();
  report->annotations = tracer.annotations();

  LatencyAttribution attribution;
  for (const auto& context : tracer.traces()) {
    if (!context->finalized) continue;
    ++report->finalized;
    if (context->ok) ++report->completed;
    report->traces.push_back(context);
    attribution.add(*context);
  }
  report->attribution = attribution.rows();
  report->edge_attribution = attribution.edge_rows();
  return report;
}

std::vector<TraceAnnotation> annotations_overlapping(const TraceReport& report,
                                                     const TraceContext& trace) {
  DCM_CHECK(trace.finalized);
  std::vector<TraceAnnotation> overlapping;
  for (const auto& annotation : report.annotations) {
    if (annotation.at >= trace.started && annotation.at <= trace.finished) {
      overlapping.push_back(annotation);
    }
  }
  return overlapping;
}

}  // namespace dcm::trace
