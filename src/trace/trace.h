// Request-level tracing: typed spans on sampled requests.
//
// A sampled request carries one TraceContext for its whole journey —
// client issue through every tier visit, retries included — and each
// instrumentation hook appends a typed Span. The contract that keeps the
// simulation digest bit-identical whether tracing is on or off:
//
//   * recording only appends to this side structure — it never schedules
//     events, draws from an Rng stream, or touches simulation state;
//   * the untraced fast path is a single null-pointer check (requests that
//     were not sampled carry a null TraceContext);
//   * sampling is a pure hash of (trace seed, request id), so enabling
//     tracing at any rate consumes nothing from any random stream.
//
// Span times are SimTime (ns). `tier` is the tier depth the span occurred
// at; kClientTier marks client-side spans (think, client backoff, client
// deadline waits).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace dcm::trace {

/// Client-side spans carry this instead of a tier depth.
inline constexpr int kClientTier = -1;

enum class SpanKind : uint8_t {
  kThink = 0,     // client think time preceding the issue (informational)
  kLbPick,        // load-balancer pick (zero-width marker; value = members)
  kPoolWait,      // worker-pool queue wait at a tier
  kConnWait,      // downstream-connection-pool wait at a tier
  kService,       // nominal CPU demand (value = work seconds)
  kCpuWait,       // CPU run-queue wait: elapsed minus nominal demand
  kDownstream,    // whole downstream sub-request (nested; not a leaf cause)
  kBackoff,       // retry backoff sleep (client or inter-tier)
  kTimeoutWait,   // time sunk into an attempt that hit its deadline
};

/// Stable lower_snake name ("pool_wait", ...) used in CSV/JSON output.
const char* span_kind_name(SpanKind kind);

/// True for the kinds that own wall-clock exclusively and therefore enter
/// the latency-attribution sum (kThink precedes the request, kLbPick is a
/// marker, kDownstream aggregates the next tier's own leaf spans).
bool is_leaf_cause(SpanKind kind);

/// Spans not tied to a service-graph call edge carry this.
inline constexpr int kNoEdge = -1;

struct Span {
  SpanKind kind = SpanKind::kThink;
  int tier = kClientTier;    // tier depth, or kClientTier
  int edge = kNoEdge;        // service-graph edge id (kConnWait/kDownstream/
                             // kTimeoutWait at a tier), or kNoEdge
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  double value = 0.0;        // kind-specific payload (see SpanKind)
};

struct TraceContext {
  uint64_t request_id = 0;
  int servlet = -1;
  sim::SimTime started = 0;   // first client issue
  sim::SimTime finished = 0;  // final settlement (success or final failure)
  bool ok = false;
  bool finalized = false;
  int attempts = 1;           // client-side issue attempts
  std::vector<Span> spans;

  /// Appends a span; drops it silently once the trace is finalized (late
  /// responses of attempts the client already settled still try to record).
  void add_span(SpanKind kind, int tier, sim::SimTime start, sim::SimTime end,
                double value = 0.0) {
    if (finalized) return;
    spans.push_back(Span{kind, tier, kNoEdge, start, end, value});
  }

  /// add_span with the service-graph edge id the span occurred on.
  void add_edge_span(SpanKind kind, int tier, int edge, sim::SimTime start,
                     sim::SimTime end, double value = 0.0) {
    if (finalized) return;
    spans.push_back(Span{kind, tier, edge, start, end, value});
  }

  /// Settles the trace; no spans are accepted afterwards.
  void finalize(sim::SimTime at, bool success) {
    if (finalized) return;
    finished = at;
    ok = success;
    finalized = true;
  }
};

}  // namespace dcm::trace
