#include "model/visit_ratio.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/check.h"

namespace dcm::model {

std::vector<double> propagate_visit_ratios(size_t node_count,
                                           const std::vector<VisitEdge>& edges) {
  if (node_count == 0) return {};
  const int n = static_cast<int>(node_count);
  std::vector<int> in_degree(node_count, 0);
  for (const auto& e : edges) {
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) {
      throw std::runtime_error("propagate_visit_ratios: edge " + std::to_string(e.from) +
                               "->" + std::to_string(e.to) + " references a node outside [0, " +
                               std::to_string(n) + ")");
    }
    if (e.calls < 0.0) {
      throw std::runtime_error("propagate_visit_ratios: edge " + std::to_string(e.from) +
                               "->" + std::to_string(e.to) + " has negative calls-per-visit");
    }
    ++in_degree[static_cast<size_t>(e.to)];
  }

  // Kahn topological pass; V accumulates path-multiplied contributions as
  // nodes retire. Whatever never reaches in-degree 0 is on (or behind) a
  // cycle, which we report by node id so scenario authors can fix the spec.
  std::vector<double> visit(node_count, 0.0);
  visit[0] = 1.0;
  std::vector<int> ready;
  ready.reserve(node_count);
  for (int i = 0; i < n; ++i) {
    if (in_degree[static_cast<size_t>(i)] == 0) ready.push_back(i);
  }
  size_t processed = 0;
  // `ready` doubles as the processing queue; ids are appended as their last
  // in-edge retires, so iteration order is deterministic.
  for (size_t head = 0; head < ready.size(); ++head) {
    const int node = ready[head];
    ++processed;
    for (const auto& e : edges) {
      if (e.from != node) continue;
      visit[static_cast<size_t>(e.to)] += visit[static_cast<size_t>(node)] * e.calls;
      if (--in_degree[static_cast<size_t>(e.to)] == 0) ready.push_back(e.to);
    }
  }
  if (processed != node_count) {
    std::string cyclic;
    for (int i = 0; i < n; ++i) {
      if (in_degree[static_cast<size_t>(i)] > 0) {
        if (!cyclic.empty()) cyclic += ", ";
        cyclic += std::to_string(i);
      }
    }
    throw std::runtime_error(
        "propagate_visit_ratios: service graph has a cycle involving nodes {" + cyclic +
        "}; visit ratios are only defined on a DAG");
  }
  return visit;
}

VisitRatioEstimator::VisitRatioEstimator(size_t tiers) : throughput_sum_(tiers, 0.0) {
  DCM_CHECK(tiers >= 1);
}

void VisitRatioEstimator::observe(size_t tier, double throughput) {
  if (tier >= throughput_sum_.size() || throughput < 0.0) return;
  throughput_sum_[tier] += throughput;
  if (tier == 0 && throughput > 0.0) ++front_samples_;
}

double VisitRatioEstimator::visit_ratio(size_t tier) const {
  DCM_CHECK(tier < throughput_sum_.size());
  const double front = throughput_sum_[0];
  if (front <= 0.0) return 0.0;
  return throughput_sum_[tier] / front;
}

std::vector<double> VisitRatioEstimator::all_ratios() const {
  std::vector<double> out;
  out.reserve(throughput_sum_.size());
  for (size_t i = 0; i < throughput_sum_.size(); ++i) out.push_back(visit_ratio(i));
  return out;
}

void VisitRatioEstimator::reset() {
  std::fill(throughput_sum_.begin(), throughput_sum_.end(), 0.0);
  front_samples_ = 0;
}

}  // namespace dcm::model
