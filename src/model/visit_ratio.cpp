#include "model/visit_ratio.h"

#include <algorithm>

#include "common/check.h"

namespace dcm::model {

VisitRatioEstimator::VisitRatioEstimator(size_t tiers) : throughput_sum_(tiers, 0.0) {
  DCM_CHECK(tiers >= 1);
}

void VisitRatioEstimator::observe(size_t tier, double throughput) {
  if (tier >= throughput_sum_.size() || throughput < 0.0) return;
  throughput_sum_[tier] += throughput;
  if (tier == 0 && throughput > 0.0) ++front_samples_;
}

double VisitRatioEstimator::visit_ratio(size_t tier) const {
  DCM_CHECK(tier < throughput_sum_.size());
  const double front = throughput_sum_[0];
  if (front <= 0.0) return 0.0;
  return throughput_sum_[tier] / front;
}

std::vector<double> VisitRatioEstimator::all_ratios() const {
  std::vector<double> out;
  out.reserve(throughput_sum_.size());
  for (size_t i = 0; i < throughput_sum_.size(); ++i) out.push_back(visit_ratio(i));
  return out;
}

void VisitRatioEstimator::reset() {
  std::fill(throughput_sum_.begin(), throughput_sum_.end(), 0.0);
  front_samples_ = 0;
}

}  // namespace dcm::model
