// Model training — the paper's "Least-Square Fitting" step (Sec. V-A).
//
// Input: <concurrency, throughput> pairs measured while the target tier is
// the bottleneck. Output: fitted (S0, α, β, γ) plus R², N_b and X_max, i.e.
// one row of the paper's Table I.
//
// Identifiability note: in Eq. 7, scaling γ and (S0, α, β) by the same
// constant leaves the curve unchanged, so from a single configuration's
// sweep only three degrees of freedom are observable. Two modes resolve
// this:
//   * fit_with_known_s0 — S0 measured independently (throughput at
//     concurrency 1 ⇒ γK/S0, plus a direct single-thread service-time
//     measurement), fitting α, β, γ. This is how the Table I bench runs.
//   * fit_normalized — pin γ = 1 and fit S0, α, β. The optimum
//     N_b = sqrt((S0−α)/β) is invariant under the shared scaling, so this
//     mode is sufficient for the controller, which only needs N_b.
#pragma once

#include <vector>

#include "model/concurrency_model.h"

namespace dcm::model {

struct TrainingSample {
  double concurrency = 0.0;  // per-server request processing concurrency
  double throughput = 0.0;   // measured system throughput (req/s)
};

struct TrainedModel {
  ConcurrencyModel model;
  double r_squared = 0.0;
  int samples = 0;
  bool converged = false;

  double optimal_concurrency() const { return model.optimal_concurrency(); }
  int optimal_concurrency_int() const { return model.optimal_concurrency_int(); }
  double max_throughput() const { return model.max_throughput(); }
};

class Trainer {
 public:
  /// `servers` and `visit_ratio` describe the training configuration (K_b,
  /// V_b in Eq. 7) and are carried into the returned model.
  Trainer(int servers, double visit_ratio);

  /// Fits α, β, γ with S0 fixed to an independent measurement.
  TrainedModel fit_with_known_s0(double s0, const std::vector<TrainingSample>& samples) const;

  /// Fits S0, α, β with γ pinned to 1 (sufficient for N_b).
  TrainedModel fit_normalized(const std::vector<TrainingSample>& samples) const;

 private:
  int servers_;
  double visit_ratio_;
};

}  // namespace dcm::model
