#include "model/trainer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "fit/levenberg_marquardt.h"

namespace dcm::model {
namespace {

std::pair<std::vector<double>, std::vector<double>> unzip(
    const std::vector<TrainingSample>& samples) {
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    DCM_CHECK(s.concurrency >= 1.0);
    DCM_CHECK(s.throughput >= 0.0);
    x.push_back(s.concurrency);
    y.push_back(s.throughput);
  }
  return {std::move(x), std::move(y)};
}

double peak_throughput(const std::vector<double>& y) {
  return *std::max_element(y.begin(), y.end());
}

}  // namespace

Trainer::Trainer(int servers, double visit_ratio) : servers_(servers), visit_ratio_(visit_ratio) {
  DCM_CHECK(servers_ >= 1);
  DCM_CHECK(visit_ratio_ > 0.0);
}

TrainedModel Trainer::fit_with_known_s0(double s0,
                                        const std::vector<TrainingSample>& samples) const {
  DCM_CHECK(s0 > 0.0);
  DCM_CHECK_MSG(samples.size() >= 4, "need at least 4 samples to fit 3 parameters");
  auto [x, y] = unzip(samples);
  const double k = static_cast<double>(servers_);
  const double v = visit_ratio_;

  // params = {alpha, beta, gamma}
  const fit::ModelFn fn = [s0, k, v](const std::vector<double>& p, double n) {
    const double denom = s0 + p[0] * (n - 1.0) + p[1] * n * (n - 1.0);
    return p[2] * k * n / (v * denom);
  };

  fit::LmOptions opt;
  opt.lower_bounds = {0.0, 0.0, 1e-6};
  opt.upper_bounds = {s0, s0, 1e6};
  // Initial guess: γ from the single-thread point if present, mild overhead.
  const double x1 = y.front() > 0 ? y.front() : peak_throughput(y);
  const double gamma0 = std::max(1e-3, x1 * v * s0 / (k * x.front()));
  const auto lm = fit::levenberg_marquardt(fn, x, y, {s0 * 0.1, s0 * 1e-3, gamma0}, opt);

  TrainedModel out;
  out.model.params = {s0, lm.params[0], lm.params[1]};
  out.model.gamma = lm.params[2];
  out.model.servers = servers_;
  out.model.visit_ratio = visit_ratio_;
  out.r_squared = lm.r_squared;
  out.samples = static_cast<int>(samples.size());
  out.converged = lm.converged;
  return out;
}

TrainedModel Trainer::fit_normalized(const std::vector<TrainingSample>& samples) const {
  DCM_CHECK_MSG(samples.size() >= 4, "need at least 4 samples to fit 3 parameters");
  auto [x, y] = unzip(samples);
  const double k = static_cast<double>(servers_);
  const double v = visit_ratio_;

  // params = {s0, alpha, beta}, gamma pinned at 1.
  const fit::ModelFn fn = [k, v](const std::vector<double>& p, double n) {
    const double denom = p[0] + p[1] * (n - 1.0) + p[2] * n * (n - 1.0);
    return k * n / (v * denom);
  };

  // Initial S0 from the lowest-concurrency sample: X(1) ≈ K/(V·S0).
  const double x_low = y.front() > 0 ? y.front() : peak_throughput(y);
  const double s0_guess = std::max(1e-6, k / (v * x_low));

  fit::LmOptions opt;
  opt.lower_bounds = {1e-9, 0.0, 0.0};
  opt.upper_bounds = {1e3, 1e3, 1e3};
  const auto lm = fit::levenberg_marquardt(fn, x, y, {s0_guess, s0_guess * 0.1, s0_guess * 1e-3},
                                           opt);

  TrainedModel out;
  out.model.params = {lm.params[0], lm.params[1], lm.params[2]};
  out.model.gamma = 1.0;
  out.model.servers = servers_;
  out.model.visit_ratio = visit_ratio_;
  out.r_squared = lm.r_squared;
  out.samples = static_cast<int>(samples.size());
  out.converged = lm.converged;
  return out;
}

}  // namespace dcm::model
