#include "model/concurrency_model.h"

#include <cmath>

#include "common/check.h"
#include "fit/golden_section.h"

namespace dcm::model {

double inflated_service_time(const ServiceTimeParams& p, double n) {
  DCM_DCHECK(n >= 1.0);
  return p.s0 + p.alpha * (n - 1.0) + p.beta * n * (n - 1.0);
}

double effective_service_time(const ServiceTimeParams& p, double n) {
  return inflated_service_time(p, n) / n;
}

double server_throughput(const ServiceTimeParams& p, double n) {
  return n / inflated_service_time(p, n);
}

double ConcurrencyModel::throughput(double n) const {
  return gamma * static_cast<double>(servers) * n /
         (visit_ratio * inflated_service_time(params, n));
}

double ConcurrencyModel::optimal_concurrency() const {
  if (params.beta <= 0.0 || params.s0 <= params.alpha) return 1.0;
  return std::sqrt((params.s0 - params.alpha) / params.beta);
}

int ConcurrencyModel::optimal_concurrency_int(int limit) const {
  DCM_CHECK(limit >= 1);
  return fit::integer_argmin([this](int n) { return -throughput(static_cast<double>(n)); }, 1,
                             limit);
}

double ConcurrencyModel::max_throughput() const {
  if (params.beta <= 0.0 || params.s0 <= params.alpha) {
    // Degenerate: Eq. 7 is monotone increasing; no finite interior optimum.
    return throughput(1.0);
  }
  const double term = 2.0 * std::sqrt((params.s0 - params.alpha) * params.beta) + params.alpha -
                      params.beta;
  return gamma * static_cast<double>(servers) / (visit_ratio * term);
}

}  // namespace dcm::model
