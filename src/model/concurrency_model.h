// The paper's concurrency-aware model (Sec. III).
//
// Service time with N threads (Eq. 5):   S*(N) = S0 + α(N−1) + βN(N−1)
// Effective per-request time (Eq. 6):    S(N)  = S*(N) / N
// System max throughput (Eq. 7):         X(N)  = γ·K·N / S*(N)
// Optimal concurrency (Sec. III-C):      N_b   = sqrt((S0 − α) / β)
// Peak throughput (Eq. 8):  Max(X) = γK / (V·(2√((S0−α)β) + α − β))
#pragma once

namespace dcm::model {

/// Per-server multithreading parameters (seconds).
struct ServiceTimeParams {
  double s0 = 0.0;     // single-threaded service time
  double alpha = 0.0;  // linear thread-contention coefficient
  double beta = 0.0;   // quadratic crosstalk/coherency coefficient

  bool valid() const { return s0 > 0.0 && alpha >= 0.0 && beta >= 0.0; }
};

/// Eq. 5 — total service time experienced by one request at concurrency n.
double inflated_service_time(const ServiceTimeParams& p, double n);

/// Eq. 6 — effective average service time (S*(n)/n).
double effective_service_time(const ServiceTimeParams& p, double n);

/// Per-server throughput at concurrency n: n / S*(n) (Eq. 7 with γ=K=1).
double server_throughput(const ServiceTimeParams& p, double n);

/// The full concurrency-aware throughput model of one tier.
struct ConcurrencyModel {
  ServiceTimeParams params;
  double gamma = 1.0;       // multi-server linearity correction (Eq. 4)
  int servers = 1;          // K_b
  double visit_ratio = 1.0;  // V_b (sub-requests per HTTP request)

  /// Eq. 7 — predicted system throughput when each server of this tier runs
  /// at concurrency n.
  double throughput(double n) const;

  /// Continuous optimizer N_b = sqrt((S0−α)/β). Requires β>0 and S0>α;
  /// returns 1.0 when the closed form degenerates (monotone curve).
  double optimal_concurrency() const;

  /// Best integer per-server concurrency in [1, limit] by direct argmax of
  /// Eq. 7 (ties to the smaller value). This is what the APP-agent deploys.
  int optimal_concurrency_int(int limit = 4096) const;

  /// Eq. 8 — throughput at the optimum.
  double max_throughput() const;
};

}  // namespace dcm::model
