// Visit-ratio estimation from monitoring data (Forced Flow Law, Eq. 1) and
// static visit-ratio propagation over a service DAG.
//
// The paper assumes V_m is known from workload characteristics ("a sample
// HTTP request … triggers two subsequent queries to MySQL"). In production
// the mix drifts, so DCM's model inputs should be measured: V_m is simply
// the ratio of tier-m completion throughput to front-tier (system)
// throughput over a window. Feed it the per-second per-server throughputs
// the monitoring bus already carries.
//
// For non-chain topologies the static V_m comes from the topology itself:
// each call edge carries a mean calls-per-visit multiplier, and a node's
// visit ratio is the path-multiplied sum over every root→node path
// (propagate_visit_ratios below). A chain web→app→db with 1 and q calls per
// hop degenerates to the paper's V = {1, 1, q}.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcm::model {

/// One typed call edge of a service DAG for visit-ratio propagation:
/// every visit of node `from` issues `calls` sub-requests to node `to`
/// (mean over the request mix; fractional values are fine).
struct VisitEdge {
  int from = 0;
  int to = 0;
  double calls = 1.0;
};

/// Path-multiplied visit ratios over a service DAG. Node 0 is the root
/// (V_0 = 1); V_to accumulates V_from · calls over every edge, evaluated in
/// topological order, so a node reached along several paths sums their
/// contributions. Nodes unreachable from the root keep V = 0.
///
/// Throws std::runtime_error with the offending node set if the edges
/// contain a cycle (visit ratios would diverge), or if an edge references a
/// node outside [0, node_count) or carries negative calls.
std::vector<double> propagate_visit_ratios(size_t node_count,
                                           const std::vector<VisitEdge>& edges);

class VisitRatioEstimator {
 public:
  /// `tiers` = number of tiers; tier 0 (the client-facing tier) defines the
  /// system-throughput baseline.
  explicit VisitRatioEstimator(size_t tiers);

  /// Feeds one per-second server throughput observation for a tier.
  void observe(size_t tier, double throughput);

  /// Estimated V_m = Σ tier-m throughput / Σ front-tier throughput.
  /// Returns 0 while the front tier has seen no traffic.
  double visit_ratio(size_t tier) const;
  std::vector<double> all_ratios() const;

  /// Number of non-zero front-tier observations (confidence proxy).
  uint64_t observations() const { return front_samples_; }

  void reset();

 private:
  std::vector<double> throughput_sum_;  // per tier
  uint64_t front_samples_ = 0;
};

}  // namespace dcm::model
