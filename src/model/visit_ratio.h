// Visit-ratio estimation from monitoring data (Forced Flow Law, Eq. 1).
//
// The paper assumes V_m is known from workload characteristics ("a sample
// HTTP request … triggers two subsequent queries to MySQL"). In production
// the mix drifts, so DCM's model inputs should be measured: V_m is simply
// the ratio of tier-m completion throughput to front-tier (system)
// throughput over a window. Feed it the per-second per-server throughputs
// the monitoring bus already carries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcm::model {

class VisitRatioEstimator {
 public:
  /// `tiers` = number of tiers; tier 0 (the client-facing tier) defines the
  /// system-throughput baseline.
  explicit VisitRatioEstimator(size_t tiers);

  /// Feeds one per-second server throughput observation for a tier.
  void observe(size_t tier, double throughput);

  /// Estimated V_m = Σ tier-m throughput / Σ front-tier throughput.
  /// Returns 0 while the front tier has seen no traffic.
  double visit_ratio(size_t tier) const;
  std::vector<double> all_ratios() const;

  /// Number of non-zero front-tier observations (confidence proxy).
  uint64_t observations() const { return front_samples_; }

  void reset();

 private:
  std::vector<double> throughput_sum_;  // per tier
  uint64_t front_samples_ = 0;
};

}  // namespace dcm::model
