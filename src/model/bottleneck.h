// Operational-law bottleneck analysis (paper Sec. III-A, Eq. 1–4).
//
// Given per-tier visit ratios V_m, service demands S_m and server counts
// K_m, computes each tier's total demand, identifies the bottleneck tier,
// and bounds system throughput (Utilization Law + Forced Flow Law).
#pragma once

#include <string>
#include <vector>

namespace dcm::model {

struct TierDemand {
  std::string name;
  double visit_ratio = 1.0;    // V_m — sub-requests per HTTP request
  double service_time = 0.0;   // S_m — seconds per sub-request
  int servers = 1;             // K_m
  double gamma = 1.0;          // multi-server correction (Eq. 4)
};

struct BottleneckReport {
  int bottleneck_tier = -1;     // index into the input vector
  double max_throughput = 0.0;  // Eq. 4 at the bottleneck
  /// Per-tier capacity γ_m·K_m/(V_m·S_m); the system bound is the min.
  std::vector<double> tier_capacity;
  /// Predicted utilisation of each tier when running at max_throughput.
  std::vector<double> utilization_at_peak;
};

/// Analyzes a fixed configuration. Tiers must be non-empty with positive
/// demands.
BottleneckReport analyze_bottleneck(const std::vector<TierDemand>& tiers);

/// Eq. 2 — system throughput implied by observing utilisation U_m at tier m.
double throughput_from_utilization(const TierDemand& tier, double utilization);

/// Utilization Law inverse: utilisation of `tier` at system throughput x.
double utilization_at_throughput(const TierDemand& tier, double x);

/// Little's-law propagation: in-flight requests at each tier when the
/// system runs at throughput x — N_m = x · V_m · S_m, totalled across the
/// tier's servers. With DAG-derived visit ratios (propagate_visit_ratios)
/// this is the per-node effective concurrency a graph topology induces.
std::vector<double> concurrency_at_throughput(const std::vector<TierDemand>& tiers, double x);

}  // namespace dcm::model
