#include "model/bottleneck.h"

#include <algorithm>

#include "common/check.h"

namespace dcm::model {

BottleneckReport analyze_bottleneck(const std::vector<TierDemand>& tiers) {
  DCM_CHECK(!tiers.empty());
  BottleneckReport report;
  report.tier_capacity.reserve(tiers.size());

  double min_capacity = 0.0;
  for (size_t i = 0; i < tiers.size(); ++i) {
    const TierDemand& t = tiers[i];
    DCM_CHECK(t.visit_ratio > 0.0);
    DCM_CHECK(t.service_time > 0.0);
    DCM_CHECK(t.servers >= 1);
    DCM_CHECK(t.gamma > 0.0);
    const double capacity =
        t.gamma * static_cast<double>(t.servers) / (t.visit_ratio * t.service_time);
    report.tier_capacity.push_back(capacity);
    if (report.bottleneck_tier < 0 || capacity < min_capacity) {
      min_capacity = capacity;
      report.bottleneck_tier = static_cast<int>(i);
    }
  }
  report.max_throughput = min_capacity;

  report.utilization_at_peak.reserve(tiers.size());
  for (size_t i = 0; i < tiers.size(); ++i) {
    report.utilization_at_peak.push_back(min_capacity / report.tier_capacity[i]);
  }
  return report;
}

double throughput_from_utilization(const TierDemand& tier, double utilization) {
  DCM_CHECK(tier.visit_ratio > 0.0 && tier.service_time > 0.0);
  return utilization * tier.gamma * static_cast<double>(tier.servers) /
         (tier.visit_ratio * tier.service_time);
}

double utilization_at_throughput(const TierDemand& tier, double x) {
  DCM_CHECK(tier.visit_ratio > 0.0 && tier.service_time > 0.0);
  return x * tier.visit_ratio * tier.service_time /
         (tier.gamma * static_cast<double>(tier.servers));
}

std::vector<double> concurrency_at_throughput(const std::vector<TierDemand>& tiers, double x) {
  DCM_CHECK(x >= 0.0);
  std::vector<double> concurrency;
  concurrency.reserve(tiers.size());
  for (const TierDemand& t : tiers) {
    DCM_CHECK(t.visit_ratio >= 0.0 && t.service_time >= 0.0);
    concurrency.push_back(x * t.visit_ratio * t.service_time);
  }
  return concurrency;
}

}  // namespace dcm::model
