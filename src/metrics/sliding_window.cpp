#include "metrics/sliding_window.h"

#include <algorithm>

#include "common/check.h"

namespace dcm::metrics {

SlidingWindowStat::SlidingWindowStat(sim::SimTime window) : window_(window) {
  DCM_CHECK(window > 0);
}

void SlidingWindowStat::add(sim::SimTime now, double value) {
  DCM_CHECK_MSG(points_.empty() || now >= points_.back().first, "out-of-order sample");
  points_.emplace_back(now, value);
}

void SlidingWindowStat::evict(sim::SimTime now) {
  const sim::SimTime cutoff = now - window_;
  while (!points_.empty() && points_.front().first <= cutoff) points_.pop_front();
}

double SlidingWindowStat::mean(sim::SimTime now) {
  evict(now);
  if (points_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [t, v] : points_) sum += v;
  return sum / static_cast<double>(points_.size());
}

double SlidingWindowStat::max(sim::SimTime now) {
  evict(now);
  double best = 0.0;
  bool first = true;
  for (const auto& [t, v] : points_) {
    best = first ? v : std::max(best, v);
    first = false;
  }
  return best;
}

size_t SlidingWindowStat::count(sim::SimTime now) {
  evict(now);
  return points_.size();
}

SlidingRate::SlidingRate(sim::SimTime window) : window_(window) { DCM_CHECK(window > 0); }

void SlidingRate::add(sim::SimTime now, double weight) {
  DCM_CHECK_MSG(events_.empty() || now >= events_.back().first, "out-of-order event");
  events_.emplace_back(now, weight);
  sum_ += weight;
}

void SlidingRate::evict(sim::SimTime now) {
  const sim::SimTime cutoff = now - window_;
  while (!events_.empty() && events_.front().first <= cutoff) {
    sum_ -= events_.front().second;
    events_.pop_front();
  }
  // Incremental add/subtract accumulates floating-point residue; an empty
  // window must report exactly 0, not the drift, so re-anchor the sum here.
  // Every later sum restarts from this exact zero.
  if (events_.empty()) sum_ = 0.0;
}

double SlidingRate::rate(sim::SimTime now) {
  evict(now);
  return sum_ / sim::to_seconds(window_);
}

}  // namespace dcm::metrics
