// Bucketed time-series recorder.
//
// Benches record per-second series (throughput, response time, #VMs, CPU
// util) exactly as the paper's figures plot them. Samples are aggregated
// into fixed-width buckets; each bucket reports count/mean/min/max/sum.
#pragma once

#include <string>
#include <vector>

#include "metrics/welford.h"
#include "sim/time.h"

namespace dcm::metrics {

struct BucketStat {
  sim::SimTime start = 0;
  Welford stat;
};

class TimeSeries {
 public:
  TimeSeries(std::string name, sim::SimTime bucket_width);

  void add(sim::SimTime t, double value);

  const std::string& name() const { return name_; }
  sim::SimTime bucket_width() const { return bucket_width_; }
  const std::vector<BucketStat>& buckets() const { return buckets_; }

  /// (bucket start seconds, bucket mean) pairs — the plottable series.
  std::vector<std::pair<double, double>> mean_series() const;
  /// (bucket start seconds, bucket sum / bucket width) — a rate series.
  std::vector<std::pair<double, double>> rate_series() const;
  /// (bucket start seconds, bucket max).
  std::vector<std::pair<double, double>> max_series() const;

  /// Aggregate over the whole recording.
  Welford overall() const;

 private:
  size_t bucket_index(sim::SimTime t);

  std::string name_;
  sim::SimTime bucket_width_;
  std::vector<BucketStat> buckets_;
  // Last-bucket fast path; kMaxSimTime start marks "no bucket cached yet"
  // (no sample time satisfies t >= kMaxSimTime with room below the width).
  sim::SimTime cached_start_ = sim::kMaxSimTime;
  size_t cached_index_ = 0;
};

}  // namespace dcm::metrics
