#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dcm::metrics {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  DCM_CHECK(edges_.size() >= 2);
  for (size_t i = 1; i < edges_.size(); ++i) DCM_CHECK(edges_[i] > edges_[i - 1]);
  counts_.assign(edges_.size() + 1, 0);
}

Histogram Histogram::linear(double lo, double hi, int buckets) {
  DCM_CHECK(buckets >= 1);
  DCM_CHECK(hi > lo);
  std::vector<double> edges(static_cast<size_t>(buckets) + 1);
  for (int i = 0; i <= buckets; ++i) {
    edges[static_cast<size_t>(i)] = lo + (hi - lo) * i / buckets;
  }
  return Histogram(std::move(edges));
}

Histogram Histogram::logarithmic(double lo, double hi, int buckets_per_decade) {
  DCM_CHECK(lo > 0.0);
  DCM_CHECK(hi > lo);
  DCM_CHECK(buckets_per_decade >= 1);
  const double decades = std::log10(hi / lo);
  const int buckets = std::max(1, static_cast<int>(std::ceil(decades * buckets_per_decade)));
  std::vector<double> edges(static_cast<size_t>(buckets) + 1);
  for (int i = 0; i <= buckets; ++i) {
    edges[static_cast<size_t>(i)] = lo * std::pow(hi / lo, static_cast<double>(i) / buckets);
  }
  return Histogram(std::move(edges));
}

void Histogram::add(double x, uint64_t weight) {
  size_t idx;
  if (x < edges_.front()) {
    idx = 0;  // underflow
  } else if (x >= edges_.back()) {
    idx = counts_.size() - 1;  // overflow
  } else {
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    idx = static_cast<size_t>(it - edges_.begin());  // 1..B
  }
  counts_[idx] += weight;
  total_ += weight;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double Histogram::quantile(double q) const {
  DCM_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      if (i == 0) return edges_.front();
      if (i == counts_.size() - 1) return edges_.back();
      // Linear interpolation inside bucket i (covers edges_[i-1], edges_[i]).
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return edges_[i - 1] + frac * (edges_[i] - edges_[i - 1]);
    }
    cum = next;
  }
  return edges_.back();
}

}  // namespace dcm::metrics
