// P² streaming quantile estimator (Jain & Chlamtac, 1985).
//
// Estimates a single quantile in O(1) memory without storing samples; used
// by monitoring agents to report per-second p95/p99 latency cheaply.
#pragma once

#include <array>
#include <cstdint>

namespace dcm::metrics {

class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.95.
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact for the first five samples. After that the
  /// P² markers are interpolated to the desired rank 1 + q·(n-1) rather
  /// than read off the middle marker directly, which would understate tail
  /// quantiles on skewed streams whenever the marker position lags the
  /// desired position. Returns 0 before any sample.
  double value() const;

  uint64_t count() const { return count_; }

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  uint64_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{};  // actual marker positions
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace dcm::metrics
