// Fixed-bucket histograms with quantile interpolation.
//
// Two layouts: linear (equal-width buckets over [lo, hi]) and log2-spaced
// (for latency, where the dynamic range spans microseconds to seconds).
// Out-of-range samples land in underflow/overflow buckets and still count
// toward quantiles at the range edges.
#pragma once

#include <cstdint>
#include <vector>

namespace dcm::metrics {

class Histogram {
 public:
  /// Equal-width buckets over [lo, hi].
  static Histogram linear(double lo, double hi, int buckets);
  /// Log-spaced buckets over [lo, hi] (lo > 0).
  static Histogram logarithmic(double lo, double hi, int buckets_per_decade = 16);

  void add(double x, uint64_t weight = 1);
  void reset();

  uint64_t count() const { return total_; }
  double quantile(double q) const;  // q in [0,1]
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  Histogram(std::vector<double> edges);

  std::vector<double> edges_;    // ascending bucket boundaries, size B+1
  std::vector<uint64_t> counts_;  // size B+2: [underflow, B buckets, overflow]
  uint64_t total_ = 0;
};

}  // namespace dcm::metrics
