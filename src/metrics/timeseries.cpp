#include "metrics/timeseries.h"

#include "common/check.h"

namespace dcm::metrics {

TimeSeries::TimeSeries(std::string name, sim::SimTime bucket_width)
    : name_(std::move(name)), bucket_width_(bucket_width) {
  DCM_CHECK(bucket_width_ > 0);
}

size_t TimeSeries::bucket_index(sim::SimTime t) {
  DCM_CHECK(t >= 0);
  // Samples arrive in near-monotonic time order, so consecutive adds almost
  // always land in the bucket hit last — one comparison instead of a 64-bit
  // division per sample.
  if (t >= cached_start_ && t - cached_start_ < bucket_width_) return cached_index_;
  const auto idx = static_cast<size_t>(t / bucket_width_);
  while (buckets_.size() <= idx) {
    buckets_.push_back(BucketStat{static_cast<sim::SimTime>(buckets_.size()) * bucket_width_, {}});
  }
  cached_index_ = idx;
  cached_start_ = static_cast<sim::SimTime>(idx) * bucket_width_;
  return idx;
}

void TimeSeries::add(sim::SimTime t, double value) { buckets_[bucket_index(t)].stat.add(value); }

std::vector<std::pair<double, double>> TimeSeries::mean_series() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.emplace_back(sim::to_seconds(b.start), b.stat.mean());
  return out;
}

std::vector<std::pair<double, double>> TimeSeries::rate_series() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(buckets_.size());
  const double width_s = sim::to_seconds(bucket_width_);
  for (const auto& b : buckets_) out.emplace_back(sim::to_seconds(b.start), b.stat.sum() / width_s);
  return out;
}

std::vector<std::pair<double, double>> TimeSeries::max_series() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.emplace_back(sim::to_seconds(b.start), b.stat.max());
  return out;
}

Welford TimeSeries::overall() const {
  Welford total;
  for (const auto& b : buckets_) total.merge(b.stat);
  return total;
}

}  // namespace dcm::metrics
