// Streaming mean/variance/extrema via Welford's algorithm.
#pragma once

#include <cstdint>

namespace dcm::metrics {

class Welford {
 public:
  void add(double x);
  void merge(const Welford& other);
  void reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dcm::metrics
