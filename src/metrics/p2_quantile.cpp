#include "metrics/p2_quantile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dcm::metrics {

P2Quantile::P2Quantile(double q) : q_(q) {
  DCM_CHECK(q > 0.0 && q < 1.0);
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const double qi = heights_[static_cast<size_t>(i)];
  const double qp = heights_[static_cast<size_t>(i + 1)];
  const double qm = heights_[static_cast<size_t>(i - 1)];
  const double ni = positions_[static_cast<size_t>(i)];
  const double np = positions_[static_cast<size_t>(i + 1)];
  const double nm = positions_[static_cast<size_t>(i - 1)];
  return qi + d / (np - nm) *
                  ((ni - nm + d) * (qp - qi) / (np - ni) + (np - ni - d) * (qi - qm) / (ni - nm));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[static_cast<size_t>(i)] +
         d * (heights_[static_cast<size_t>(j)] - heights_[static_cast<size_t>(i)]) /
             (positions_[static_cast<size_t>(j)] - positions_[static_cast<size_t>(i)]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[static_cast<size_t>(i)] = i + 1;
    }
    return;
  }

  // Locate the cell containing x and clamp extremes into the end markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    for (int i = 1; i < 5; ++i) {
      if (x < heights_[static_cast<size_t>(i)]) {
        k = i - 1;
        break;
      }
    }
  }

  for (int i = k + 1; i < 5; ++i) positions_[static_cast<size_t>(i)] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[static_cast<size_t>(i)] += increments_[static_cast<size_t>(i)];

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[static_cast<size_t>(i)] - positions_[static_cast<size_t>(i)];
    const double np = positions_[static_cast<size_t>(i + 1)];
    const double nm = positions_[static_cast<size_t>(i - 1)];
    const double ni = positions_[static_cast<size_t>(i)];
    if ((d >= 1.0 && np - ni > 1.0) || (d <= -1.0 && nm - ni < -1.0)) {
      const double dir = d >= 0 ? 1.0 : -1.0;
      double candidate = parabolic(i, dir);
      if (candidate <= heights_[static_cast<size_t>(i - 1)] ||
          candidate >= heights_[static_cast<size_t>(i + 1)]) {
        candidate = linear(i, dir);
      }
      heights_[static_cast<size_t>(i)] = candidate;
      positions_[static_cast<size_t>(i)] += dir;
    }
  }
  ++count_;
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile over the few samples seen so far.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const double idx = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<size_t>(idx);
    const size_t hi = std::min(lo + 1, static_cast<size_t>(count_ - 1));
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  // The classic P² estimate is the middle marker's height, but its actual
  // position positions_[2] lags the desired rank 1 + q·(n-1) by up to one
  // sample-step between marker adjustments, which systematically understates
  // tail quantiles on skewed streams. Interpolate linearly between the
  // markers bracketing the desired rank instead.
  const double target = 1.0 + q_ * static_cast<double>(count_ - 1);
  if (target <= positions_[0]) return heights_[0];
  if (target >= positions_[4]) return heights_[4];
  size_t i = 3;
  while (i > 0 && positions_[i] > target) --i;
  const double span = positions_[i + 1] - positions_[i];
  if (span <= 0.0) return heights_[i];
  const double frac = (target - positions_[i]) / span;
  return heights_[i] + frac * (heights_[i + 1] - heights_[i]);
}

}  // namespace dcm::metrics
