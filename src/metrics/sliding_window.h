// Time-windowed aggregates.
//
// SlidingWindowStat keeps (time, value) observations and answers mean/max
// over the trailing window — the controller's view of "utilisation over the
// last control period". SlidingRate counts events per trailing window —
// per-server throughput.
#pragma once

#include <deque>

#include "sim/time.h"

namespace dcm::metrics {

class SlidingWindowStat {
 public:
  explicit SlidingWindowStat(sim::SimTime window);

  void add(sim::SimTime now, double value);

  /// Aggregates over observations with time > now - window.
  double mean(sim::SimTime now);
  double max(sim::SimTime now);
  size_t count(sim::SimTime now);

 private:
  void evict(sim::SimTime now);

  sim::SimTime window_;
  std::deque<std::pair<sim::SimTime, double>> points_;
};

class SlidingRate {
 public:
  explicit SlidingRate(sim::SimTime window);

  void add(sim::SimTime now, double weight = 1.0);

  /// Events per second over the trailing window.
  double rate(sim::SimTime now);

 private:
  void evict(sim::SimTime now);

  sim::SimTime window_;
  std::deque<std::pair<sim::SimTime, double>> events_;
  double sum_ = 0.0;
};

}  // namespace dcm::metrics
