#include "control/queueing_controller.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dcm::control {

QueueingController::QueueingController(sim::Engine& engine, ntier::NTierApp& app,
                                       bus::Broker& broker, QueueingConfig config)
    : ControllerBase(engine, app, broker, config.policy, "queueing"),
      config_(config),
      demand_(app.tier_count(), 0.0),
      initialized_(app.tier_count(), false) {
  DCM_CHECK(config_.target_util > 0.0 && config_.target_util < 1.0);
  DCM_CHECK(config_.demand_smoothing > 0.0 && config_.demand_smoothing <= 1.0);
}

void QueueingController::decide(const std::vector<TierObservation>& observations) {
  for (size_t i = 0; i < observations.size(); ++i) {
    const TierObservation& obs = observations[i];
    if (obs.samples == 0 || obs.active_vms <= 0) continue;  // hold the estimate

    // Utilisation law: total demand in busy-servers, invariant under the
    // fleet size actually serving it.
    const double demand = static_cast<double>(obs.active_vms) * obs.mean_util;
    if (initialized_[i]) {
      demand_[i] = config_.demand_smoothing * demand +
                   (1.0 - config_.demand_smoothing) * demand_[i];
    } else {
      demand_[i] = demand;
      initialized_[i] = true;
    }

    // k* = ceil(D / ρ*), with a whisker of slack so FP noise on an exact
    // multiple (D = 1.2, ρ* = 0.6) doesn't round a 2-server answer up to 3.
    const int desired =
        std::max(1, static_cast<int>(std::ceil(demand_[i] / config_.target_util - 1e-9)));
    actuate_toward(i, obs, desired);
  }
}

}  // namespace dcm::control
