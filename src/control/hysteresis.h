// Schmitt-trigger gate for actuation thresholds.
//
// A bare `util > threshold` comparison flaps when the signal hovers near the
// threshold: one period reads hot, the next reads cool, and the controller
// alternates scale-out/scale-in ("ping-pong" scaling). The gate widens the
// comparison into a band of ±`width` around the threshold and remembers its
// last state: it turns ON only when the signal crosses `threshold + width`
// decisively and turns OFF only after the signal retreats past
// `threshold - width`. Inside the band the previous verdict holds.
//
// `width <= 0` degenerates to the bare strict comparison with no state, so a
// zero-width gate is bit-identical to the pre-gate controllers — that is what
// keeps the pinned registry digests stable while hysteresis is off by
// default.
#pragma once

#include <cmath>

namespace dcm::control {

/// Which side of the threshold counts as the gate's ON state.
enum class TriggerDirection {
  kAbove,  // ON when the signal is high (scale-out style triggers)
  kBelow,  // ON when the signal is low (scale-in style triggers)
};

class HysteresisGate {
 public:
  constexpr HysteresisGate() = default;
  constexpr HysteresisGate(double width, TriggerDirection direction, bool initial_state = false)
      : width_(width), direction_(direction), state_(initial_state) {}

  /// Feeds one signal sample; returns the gate state after the update.
  bool update(double value, double threshold) {
    if (!std::isfinite(value) || !std::isfinite(threshold)) {
      state_ = false;
      return state_;
    }
    if (!(width_ > 0.0)) {
      // Degenerate gate: the bare strict comparison the controllers used
      // before hysteresis existed. No memory, no band.
      state_ = direction_ == TriggerDirection::kAbove ? value > threshold : value < threshold;
      return state_;
    }
    if (direction_ == TriggerDirection::kAbove) {
      if (value > threshold + width_) {
        state_ = true;
      } else if (value < threshold - width_) {
        state_ = false;
      }
    } else {
      if (value < threshold - width_) {
        state_ = true;
      } else if (value > threshold + width_) {
        state_ = false;
      }
    }
    return state_;
  }

  bool state() const { return state_; }
  double width() const { return width_; }
  TriggerDirection direction() const { return direction_; }

  /// Forgets the current state (e.g. after a telemetry gap).
  void reset(bool state = false) { state_ = state; }

 private:
  double width_ = 0.0;
  TriggerDirection direction_ = TriggerDirection::kAbove;
  bool state_ = false;
};

}  // namespace dcm::control
