// Shared VM-level scaling policy (paper Sec. V-B).
//
// Both controllers use the same "quick start, slow turn off" hardware rule
// learned from AutoScale: scale out when a tier's utilisation exceeds the
// upper threshold during one control period; scale in only after the
// utilisation stays below the lower threshold for several consecutive
// periods.
#pragma once

#include "sim/time.h"

namespace dcm::control {

struct ScalingPolicy {
  sim::SimTime control_period = sim::from_seconds(15.0);
  double scale_out_util = 0.80;
  double scale_in_util = 0.40;
  int scale_in_consecutive = 3;
  /// Tier 0 (the web tier) is not scaled in the paper's experiments.
  bool scale_front_tier = false;
  /// Suppress further scale-outs of a tier while one of its VMs is booting.
  bool wait_for_booting = true;

  // --- extensions beyond the paper's policy ---

  /// SLA-driven trigger: also scale a tier out when its completion-weighted
  /// mean response time over the period exceeds this (seconds; 0 = off).
  double scale_out_response_time = 0.0;
  /// Predictive trigger: linearly extrapolate the tier's utilisation one
  /// control period ahead (u_t + (u_t − u_{t−1})) and scale out when the
  /// *projection* crosses the threshold — buying back the VM preparation
  /// delay the paper's Sec. VI discusses. Scale-in stays reactive.
  bool predictive = false;
  /// Schmitt-trigger band half-width applied to both utilisation thresholds
  /// (see control/hysteresis.h). 0 keeps the bare strict comparisons and the
  /// historical digests; > 0 requires the signal to breach
  /// threshold ± hysteresis before a trigger arms or disarms, killing scale
  /// flapping when utilisation hovers at a threshold.
  double hysteresis = 0.0;
};

}  // namespace dcm::control
