#include "control/controller_registry.h"

#include <stdexcept>

#include "control/ec2_autoscale.h"

namespace dcm::control {

const std::vector<std::string>& controller_names() {
  // Sorted by hand; registry_names_sorted in the tests pins it.
  static const std::vector<std::string> kNames = {"dcm", "ec2", "pi", "predictive", "queueing"};
  return kNames;
}

bool has_controller(const std::string& name) {
  for (const auto& known : controller_names()) {
    if (known == name) return true;
  }
  return false;
}

std::unique_ptr<ControllerBase> make_controller(const std::string& name, sim::Engine& engine,
                                                ntier::NTierApp& app, bus::Broker& broker,
                                                const ControllerMenu& menu) {
  if (name == "ec2") {
    return std::make_unique<Ec2AutoScaleController>(engine, app, broker, menu.policy);
  }
  if (name == "dcm") {
    DcmConfig config = menu.dcm;
    config.policy = menu.policy;
    return std::make_unique<DcmController>(engine, app, broker, std::move(config));
  }
  if (name == "predictive") {
    PredictiveConfig config = menu.predictive;
    config.policy = menu.policy;
    return std::make_unique<PredictiveController>(engine, app, broker, config);
  }
  if (name == "queueing") {
    QueueingConfig config = menu.queueing;
    config.policy = menu.policy;
    return std::make_unique<QueueingController>(engine, app, broker, config);
  }
  if (name == "pi") {
    PiConfig config = menu.pi;
    config.policy = menu.policy;
    return std::make_unique<PiController>(engine, app, broker, config);
  }
  throw std::invalid_argument("unknown controller: " + name);
}

}  // namespace dcm::control
