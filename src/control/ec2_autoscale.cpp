#include "control/ec2_autoscale.h"

namespace dcm::control {

Ec2AutoScaleController::Ec2AutoScaleController(sim::Engine& engine, ntier::NTierApp& app,
                                               bus::Broker& broker, ScalingPolicy policy)
    : ControllerBase(engine, app, broker, policy, "ec2-autoscale") {}

void Ec2AutoScaleController::decide(const std::vector<TierObservation>& observations) {
  for (size_t i = 0; i < observations.size(); ++i) {
    apply_hardware_rule(i, observations[i]);
  }
}

}  // namespace dcm::control
