// Control-theoretic auto-scaler: discrete PI on the utilisation error with
// anti-windup.
//
// Each control period computes the per-tier error e_t = ū_t − ρ* and a PI
// control signal
//
//   Δ_t = Kp·e_t + Ki·Σe      (Σe = the clamped running error integral)
//
// interpreted as "VMs worth of pressure": Δ above the deadband requests one
// more VM, Δ below −deadband requests one fewer, and the request goes
// through the shared capacity-target actuation (booting suppression, slow
// scale-in streak). The proportional term reacts to the instantaneous
// error; the integral term removes the steady-state offset a pure
// threshold rule leaves when utilisation settles just under the trigger.
//
// Anti-windup, two mechanisms:
//   * conditional integration — when the actuator cannot follow (tier at
//     its VM limit, launch suppressed while a VM boots), the integral is
//     frozen instead of accumulating an error the plant can never remove;
//   * reset on actuation — once a VM is actually added or removed the
//     accumulated evidence is about the old fleet, so the integral restarts
//     from zero (a back-calculation step aggressive enough for a ±1 VM/period
//     actuator).
// The integral is additionally clamped to ±integral_limit as a backstop.
#pragma once

#include "control/controller.h"

namespace dcm::control {

struct PiConfig {
  ScalingPolicy policy;
  /// Per-server utilisation setpoint ρ* (0 < ρ* < 1).
  double target_util = 0.6;
  /// Proportional gain (VMs per unit utilisation error).
  double kp = 2.0;
  /// Integral gain (VMs per unit accumulated error).
  double ki = 0.5;
  /// |Δ| must exceed this before a VM is requested (hold band).
  double deadband = 0.5;
  /// Clamp on the running error integral (anti-windup backstop).
  double integral_limit = 5.0;
};

class PiController final : public ControllerBase {
 public:
  PiController(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker, PiConfig config);

  /// Current error integral for a tier (tests/inspection).
  double integral(size_t tier_index) const { return integral_[tier_index]; }

 protected:
  void decide(const std::vector<TierObservation>& observations) override;

 private:
  PiConfig config_;
  std::vector<double> integral_;
};

}  // namespace dcm::control
