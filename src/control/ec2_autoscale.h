// EC2-AutoScale — the paper's baseline (Sec. V-B): hardware-only threshold
// scaling, no soft-resource adaptation. Soft resources keep whatever the
// deployment started with, so a scale-out of the app tier silently doubles
// the concurrency reaching the DB tier — the failure mode the paper's
// Fig. 5(b,d,f) demonstrates.
#pragma once

#include "control/controller.h"

namespace dcm::control {

class Ec2AutoScaleController final : public ControllerBase {
 public:
  Ec2AutoScaleController(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker,
                         ScalingPolicy policy = {});

 protected:
  void decide(const std::vector<TierObservation>& observations) override;
};

}  // namespace dcm::control
