// Online concurrency-model estimation.
//
// The paper determines model parameters "via online monitoring of the whole
// system, then regress based on the measured system throughput and the
// thread allocation" (Sec. III-C). This estimator bins the per-second
// (concurrency, throughput) samples of one tier's servers by integer
// concurrency and, once the bins span a wide enough concurrency range,
// refits Eq. 7 in normalized form (γ = 1 — the optimum N_b is invariant to
// the γ/(S0,α,β) scaling, see model::Trainer).
//
// Bins are sliding windows over the most recent samples rather than
// unbounded accumulators: after a regime change (VM flavor swap, cache
// warmup, co-tenant interference) stale pre-change samples age out of the
// window instead of permanently biasing the fit.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "model/trainer.h"

namespace dcm::control {

struct EstimatorConfig {
  int min_bins = 8;            // distinct concurrency levels required
  double min_spread = 3.0;     // max/min concurrency ratio required
  int min_samples_per_bin = 2;
  double min_r_squared = 0.80;  // reject fits worse than this
  int window_per_bin = 64;      // most-recent samples a bin remembers
};

/// Mean over a fixed-capacity ring of the most recent samples.
class WindowedMeanBin {
 public:
  explicit WindowedMeanBin(size_t capacity);

  void add(double x);
  double mean() const;
  /// Samples currently inside the window.
  uint64_t count() const { return size_; }

 private:
  std::vector<double> ring_;
  size_t capacity_;
  size_t size_ = 0;
  size_t head_ = 0;  // next write position
  double sum_ = 0.0;
};

class OnlineModelEstimator {
 public:
  explicit OnlineModelEstimator(EstimatorConfig config = {});

  /// Feeds one per-second server sample. Idle samples (concurrency < ~1) and
  /// zero-throughput samples at nonzero concurrency (stalled measurement
  /// intervals — no completions is not a throughput observation) are
  /// rejected: neither carries signal about the concurrency-throughput curve.
  void observe(double concurrency, double throughput);

  bool ready() const;
  size_t bin_count() const;

  /// Attempts a fit; nullopt when not ready or the fit is poor. The
  /// returned model carries servers/visit_ratio for context only — N_b is
  /// the value the DCM controller consumes.
  std::optional<model::TrainedModel> fit(int servers, double visit_ratio) const;

 private:
  EstimatorConfig config_;
  std::map<int, WindowedMeanBin> bins_;  // rounded concurrency -> recent throughput
};

}  // namespace dcm::control
