// Online concurrency-model estimation.
//
// The paper determines model parameters "via online monitoring of the whole
// system, then regress based on the measured system throughput and the
// thread allocation" (Sec. III-C). This estimator bins the per-second
// (concurrency, throughput) samples of one tier's servers by integer
// concurrency and, once the bins span a wide enough concurrency range,
// refits Eq. 7 in normalized form (γ = 1 — the optimum N_b is invariant to
// the γ/(S0,α,β) scaling, see model::Trainer).
#pragma once

#include <map>
#include <optional>

#include "metrics/welford.h"
#include "model/trainer.h"

namespace dcm::control {

struct EstimatorConfig {
  int min_bins = 8;            // distinct concurrency levels required
  double min_spread = 3.0;     // max/min concurrency ratio required
  int min_samples_per_bin = 2;
  double min_r_squared = 0.80;  // reject fits worse than this
};

class OnlineModelEstimator {
 public:
  explicit OnlineModelEstimator(EstimatorConfig config = {});

  /// Feeds one per-second server sample (concurrency >= ~1 to count).
  void observe(double concurrency, double throughput);

  bool ready() const;
  size_t bin_count() const;

  /// Attempts a fit; nullopt when not ready or the fit is poor. The
  /// returned model carries servers/visit_ratio for context only — N_b is
  /// the value the DCM controller consumes.
  std::optional<model::TrainedModel> fit(int servers, double visit_ratio) const;

 private:
  EstimatorConfig config_;
  std::map<int, metrics::Welford> bins_;  // rounded concurrency -> throughput
};

}  // namespace dcm::control
