// Name-keyed controller registry: the single place that knows every
// concrete auto-scaler. `src/scenario` exposes the names as the
// `controller.kind` vocabulary and sweep axis, and `dcm_run tournament`
// iterates them to race the whole zoo.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/controller.h"
#include "control/dcm_controller.h"
#include "control/pi_controller.h"
#include "control/predictive_controller.h"
#include "control/queueing_controller.h"

namespace dcm::control {

/// Everything a registry construction might need: the shared VM-level
/// policy plus each family's tuning knobs. `make_controller` stamps
/// `policy` into the chosen family's config, so callers set the policy
/// once and only fill the knobs of families they care about.
struct ControllerMenu {
  ScalingPolicy policy;
  DcmConfig dcm;
  PredictiveConfig predictive;
  QueueingConfig queueing;
  PiConfig pi;
};

/// Registered controller names, sorted (stable sweep-axis order).
const std::vector<std::string>& controller_names();

bool has_controller(const std::string& name);

/// Constructs the named controller. Throws std::invalid_argument for an
/// unknown name.
std::unique_ptr<ControllerBase> make_controller(const std::string& name, sim::Engine& engine,
                                                ntier::NTierApp& app, bus::Broker& broker,
                                                const ControllerMenu& menu);

}  // namespace dcm::control
