// Queueing-theoretic auto-scaler: M/G/1-PS target-utilisation inversion.
//
// Each tier server is modelled as an M/G/1 processor-sharing station (the
// simulator's CPU scheduler is PS), for which the mean response time
// R = S/(1−ρ) depends on the service demand S and the per-server
// utilisation ρ only — not on the service-time distribution. Fixing a
// response-time SLO therefore fixes a per-server target utilisation
// ρ* = 1 − S/R_slo, and the utilisation law makes the inversion trivial:
// the tier's total offered demand, measured in "busy servers", is
//
//   D = k · ū        (k active servers at mean utilisation ū)
//
// and D is invariant under k (the same work spread over more servers).
// The fleet size that puts every server at the target is
//
//   k* = ⌈ D / ρ* ⌉
//
// The controller smooths D with an EMA to ride out per-period noise and
// moves the tier at most one VM per period toward k* via the shared
// capacity-target actuation (booting suppression, slow scale-in streak).
#pragma once

#include "control/controller.h"

namespace dcm::control {

struct QueueingConfig {
  ScalingPolicy policy;
  /// Per-server target utilisation ρ* (0 < ρ* < 1). The default 0.6 keeps
  /// M/G/1-PS response time at 2.5× the bare service demand.
  double target_util = 0.6;
  /// EMA weight on the newest demand sample (0 < w ≤ 1; 1 = no smoothing).
  double demand_smoothing = 0.5;
};

class QueueingController final : public ControllerBase {
 public:
  QueueingController(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker,
                     QueueingConfig config);

  /// Smoothed demand estimate in busy-servers for a tier (tests/inspection).
  double demand_estimate(size_t tier_index) const { return demand_[tier_index]; }

 protected:
  void decide(const std::vector<TierObservation>& observations) override;

 private:
  QueueingConfig config_;
  std::vector<double> demand_;
  std::vector<bool> initialized_;
};

}  // namespace dcm::control
