#include "control/actuators.h"

#include "common/logging.h"
#include "common/strings.h"

namespace dcm::control {

void ControlLog::add(sim::SimTime time, std::string tier, std::string action,
                     std::string detail) {
  actions_.push_back(ControlAction{time, std::move(tier), std::move(action), std::move(detail)});
  if (observer_) observer_(actions_.back());
}

std::vector<ControlAction> ControlLog::filtered(const std::string& action) const {
  std::vector<ControlAction> out;
  for (const auto& a : actions_) {
    if (a.action == action) out.push_back(a);
  }
  return out;
}

VmAgent::VmAgent(sim::Engine& engine, ntier::NTierApp& app, ControlLog& log)
    : engine_(&engine), app_(&app), log_(&log) {}

bool VmAgent::scale_out(size_t tier_index) {
  ntier::Tier& tier = app_->tier(tier_index);
  if (!tier.scale_out()) return false;
  log_->add(engine_->now(), tier.name(), "scale_out",
            str_format("provisioned=%d", tier.provisioned_vm_count()));
  DCM_LOG_INFO("[%s] scale_out %s -> %d VMs", sim::format_time(engine_->now()).c_str(),
               tier.name().c_str(), tier.provisioned_vm_count());
  return true;
}

bool VmAgent::scale_in(size_t tier_index) {
  ntier::Tier& tier = app_->tier(tier_index);
  if (!tier.scale_in()) return false;
  log_->add(engine_->now(), tier.name(), "scale_in",
            str_format("provisioned=%d", tier.provisioned_vm_count()));
  DCM_LOG_INFO("[%s] scale_in %s -> %d VMs", sim::format_time(engine_->now()).c_str(),
               tier.name().c_str(), tier.provisioned_vm_count());
  return true;
}

AppAgent::AppAgent(sim::Engine& engine, ntier::NTierApp& app, ControlLog& log)
    : engine_(&engine), app_(&app), log_(&log) {}

void AppAgent::set_thread_pool_size(size_t tier_index, int per_server) {
  ntier::Tier& tier = app_->tier(tier_index);
  if (tier.current_thread_pool_size() == per_server) return;
  tier.set_thread_pool_size(per_server);
  log_->add(engine_->now(), tier.name(), "set_stp", str_format("stp=%d", per_server));
  DCM_LOG_INFO("[%s] set %s thread pool -> %d/server", sim::format_time(engine_->now()).c_str(),
               tier.name().c_str(), per_server);
}

void AppAgent::set_downstream_connections(size_t tier_index, int per_server) {
  ntier::Tier& tier = app_->tier(tier_index);
  if (tier.current_downstream_connections() == per_server) return;
  tier.set_downstream_connections(per_server);
  log_->add(engine_->now(), tier.name(), "set_conns", str_format("conns=%d", per_server));
  DCM_LOG_INFO("[%s] set %s downstream conns -> %d/server",
               sim::format_time(engine_->now()).c_str(), tier.name().c_str(), per_server);
}

}  // namespace dcm::control
