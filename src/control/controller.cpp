#include "control/controller.h"

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "ntier/monitor_agent.h"

namespace dcm::control {

ControllerBase::ControllerBase(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker,
                               ScalingPolicy policy, std::string name)
    : engine_(&engine),
      app_(&app),
      policy_(policy),
      name_(std::move(name)),
      vm_agent_(engine, app, log_),
      app_agent_(engine, app, log_),
      low_util_streak_(app.tier_count(), 0),
      previous_util_(app.tier_count(), 0.0),
      has_previous_util_(app.tier_count(), false),
      last_capacity_(app.tier_count(), -1),
      scale_out_gate_(app.tier_count(),
                      HysteresisGate(policy.hysteresis, TriggerDirection::kAbove)),
      scale_in_gate_(app.tier_count(),
                     HysteresisGate(policy.hysteresis, TriggerDirection::kBelow)) {
  DCM_CHECK(policy_.control_period > 0);
  // Normally the MonitorFleet creates the metrics topic first; create it
  // here too so construction order doesn't matter.
  if (broker.find_topic(ntier::kMetricsTopic) == nullptr) {
    bus::TopicConfig topic_config;
    topic_config.partitions = 4;
    topic_config.retention = sim::from_seconds(120.0);
    broker.create_topic(ntier::kMetricsTopic, topic_config);
  }
  consumer_ = std::make_unique<bus::Consumer>(broker, /*group=*/name_, ntier::kMetricsTopic);
  util_series_.reserve(app.tier_count());
  for (size_t i = 0; i < app.tier_count(); ++i) {
    util_series_.emplace_back(app.tier(i).name() + ".util", policy_.control_period);
  }
}

ControllerBase::~ControllerBase() { timer_.cancel(); }

void ControllerBase::start() {
  timer_ = engine_->schedule_periodic(policy_.control_period, [this] { control_tick(); });
}

void ControllerBase::stop() { timer_.cancel(); }

void ControllerBase::control_tick() {
  period_samples_.clear();
  // Drain everything published since the last tick.
  while (true) {
    auto batch = consumer_->poll(1024);
    if (batch.empty()) break;
    for (const auto& record : batch) {
      auto sample = ntier::MetricSample::parse(record.value);
      if (!sample) {
        DCM_LOG_WARN("controller %s: dropping malformed sample", name_.c_str());
        continue;
      }
      period_samples_.push_back(std::move(*sample));
    }
  }
  consumer_->commit();

  const auto observations = aggregate();
  for (const auto& obs : observations) {
    util_series_[static_cast<size_t>(obs.depth)].add(engine_->now() - policy_.control_period,
                                                     obs.mean_util);
  }
  decide(observations);
}

std::vector<TierObservation> ControllerBase::aggregate() {
  std::vector<TierObservation> out(app_->tier_count());
  std::vector<double> rt_weight(app_->tier_count(), 0.0);
  for (size_t i = 0; i < out.size(); ++i) {
    const ntier::Tier& tier = app_->tier(i);
    out[i].tier = tier.name();
    out[i].depth = static_cast<int>(i);
    out[i].active_vms = tier.active_vm_count();
    out[i].booting_vms = tier.booting_vm_count();
  }
  for (const auto& s : period_samples_) {
    if (s.vm_state != "ACTIVE") continue;
    if (s.depth < 0 || static_cast<size_t>(s.depth) >= out.size()) continue;
    TierObservation& obs = out[static_cast<size_t>(s.depth)];
    ++obs.samples;
    // `out` is value-initialized above, so these sums start from zero every
    // call; there is no cross-call accumulator to drift.
    obs.mean_util += s.cpu_util;          // dcm-lint: allow(no-unanchored-float-accumulate)
    obs.mean_concurrency += s.concurrency;  // dcm-lint: allow(no-unanchored-float-accumulate)
    obs.mean_throughput += s.throughput;  // dcm-lint: allow(no-unanchored-float-accumulate)
    // Weight response time by completions so idle seconds don't dilute it.
    obs.mean_response_time += s.avg_response_time * s.throughput;
    rt_weight[static_cast<size_t>(s.depth)] += s.throughput;
  }
  for (size_t i = 0; i < out.size(); ++i) {
    TierObservation& obs = out[i];
    if (obs.samples > 0) {
      obs.mean_util /= obs.samples;
      obs.mean_concurrency /= obs.samples;
      obs.mean_throughput /= obs.samples;
    }
    obs.mean_response_time = rt_weight[i] > 0.0 ? obs.mean_response_time / rt_weight[i] : 0.0;
  }
  return out;
}

bool ControllerBase::apply_hardware_rule(size_t tier_index, const TierObservation& obs) {
  if (tier_index == 0 && !policy_.scale_front_tier) return false;
  if (obs.samples == 0) {
    // A silent period breaks the sample chain. A trend computed across the
    // gap would read a multi-period-old utilisation as "last period's", so
    // drop the prior and behave reactively on the first post-gap period.
    has_previous_util_[tier_index] = false;
    return false;
  }

  // Predictive extension: judge scale-out on the utilisation projected one
  // period ahead from the two most recent observations. The prior is seeded
  // with the first observation, so period 0 is purely reactive.
  double out_signal = obs.mean_util;
  if (policy_.predictive && has_previous_util_[tier_index]) {
    const double projected = obs.mean_util + (obs.mean_util - previous_util_[tier_index]);
    out_signal = std::max(out_signal, projected);
  }
  previous_util_[tier_index] = obs.mean_util;
  has_previous_util_[tier_index] = true;

  // SLA extension: response-time violation also triggers a scale-out.
  const bool rt_violation = policy_.scale_out_response_time > 0.0 &&
                            obs.mean_response_time > policy_.scale_out_response_time;

  return apply_threshold_rule(tier_index, obs, out_signal, obs.mean_util, rt_violation);
}

bool ControllerBase::membership_churned(size_t tier_index, const TierObservation& obs) {
  const int capacity = obs.active_vms + obs.booting_vms;
  auto& last = last_capacity_[tier_index];
  const bool churned = last >= 0 && capacity != last;
  last = capacity;
  return churned;
}

bool ControllerBase::apply_threshold_rule(size_t tier_index, const TierObservation& obs,
                                          double out_signal, double in_signal, bool force_out) {
  if (tier_index == 0 && !policy_.scale_front_tier) return false;
  if (obs.samples == 0) return false;

  auto& streak = low_util_streak_[tier_index];
  // Capacity changed since the last sampled period (a launch, a crash, a
  // replacement): the below-threshold streak was gathered against a
  // different fleet, so restart the slow scale-in clock.
  if (membership_churned(tier_index, obs)) streak = 0;

  // Both gates see every sampled period so their state tracks the signal
  // even while the other side is acting. Width 0 degenerates to the
  // historical strict `>` / `<` comparisons.
  const bool out_hot = scale_out_gate_[tier_index].update(out_signal, policy_.scale_out_util);
  const bool in_hot = scale_in_gate_[tier_index].update(in_signal, policy_.scale_in_util);

  if (out_hot || force_out) {
    streak = 0;
    if (policy_.wait_for_booting && obs.booting_vms > 0) return false;
    return vm_agent_.scale_out(tier_index);
  }
  if (in_hot) {
    ++streak;
    if (streak >= policy_.scale_in_consecutive) {
      streak = 0;
      return vm_agent_.scale_in(tier_index);
    }
    return false;
  }
  streak = 0;
  return false;
}

bool ControllerBase::actuate_toward(size_t tier_index, const TierObservation& obs,
                                    int desired_active) {
  if (tier_index == 0 && !policy_.scale_front_tier) return false;
  if (obs.samples == 0) return false;

  auto& streak = low_util_streak_[tier_index];
  if (membership_churned(tier_index, obs)) streak = 0;

  // Booting VMs count toward provisioned capacity so a deficit already being
  // filled doesn't trigger a second launch.
  const int provisioned = obs.active_vms + obs.booting_vms;
  if (desired_active > provisioned) {
    streak = 0;
    if (policy_.wait_for_booting && obs.booting_vms > 0) return false;
    return vm_agent_.scale_out(tier_index);
  }
  if (desired_active < obs.active_vms && obs.booting_vms == 0) {
    // Surplus: same "slow turn off" discipline as the threshold rule — the
    // surplus must persist for scale_in_consecutive periods.
    ++streak;
    if (streak >= policy_.scale_in_consecutive) {
      streak = 0;
      return vm_agent_.scale_in(tier_index);
    }
    return false;
  }
  streak = 0;
  return false;
}

}  // namespace dcm::control
