// DCM — dynamic concurrency management (the paper's contribution).
//
// Two-level actuation: the same VM-level hardware rule as the baseline,
// plus soft-resource re-allocation from the concurrency-aware model:
//
//   * app-tier (Tomcat) worker thread pool per server ←  headroom · N_b(app)
//   * app-tier DB connection pool per server          ←  ⌈K_db · N_b(db) / K_app⌉
//
// so the *total* concurrency reaching the DB tier equals the model optimum
// regardless of how many servers either tier currently has. Re-allocation
// runs every control period and immediately after a VM enters service
// ("the VM-agent will be called first, followed by the APP-agent").
//
// Models are trained offline (the Table I pipeline) and passed in; with
// online_estimation enabled the controller also refits them continuously
// from monitoring samples.
#pragma once

#include "control/controller.h"
#include "control/online_estimator.h"
#include "model/bottleneck.h"
#include "model/concurrency_model.h"

namespace dcm::control {

struct DcmConfig {
  ScalingPolicy policy;
  /// Trained model for the app tier (e.g. Tomcat, Table I column 1).
  model::ConcurrencyModel app_tier_model;
  /// Trained model for the DB tier (e.g. MySQL, Table I column 2).
  model::ConcurrencyModel db_tier_model;
  /// The paper notes the deployed maxThreads should exceed the theoretical
  /// N_b because not every pooled thread is simultaneously active.
  double stp_headroom = 1.0;
  int min_stp = 2;
  int max_stp = 1000;
  int min_conns = 1;
  /// Refine N_b online from monitoring samples (extension; Sec. III-C's
  /// "determine these parameters via online monitoring").
  bool online_estimation = false;
  EstimatorConfig estimator;

  /// Graceful degradation (resilience mechanism). With watchdog_periods > 0,
  /// that many consecutive sample-less control periods freeze soft-resource
  /// actuation — the controller falls back to the hardware-only EC2 rule
  /// until fresh telemetry returns. With min_fit_r2 > 0, an online fit whose
  /// R² falls below it is rejected and likewise freezes soft actuation until
  /// an acceptable fit arrives. 0 disables each check.
  int watchdog_periods = 0;
  double min_fit_r2 = 0.0;

  /// Tier indexes of the concurrency-managed pair. Defaults fit the 3-tier
  /// web(0)/app(1)/db(2) layout; the 4-tier layout with a DB load-balancer
  /// tier uses app_tier=1, db_tier=3.
  size_t app_tier = 1;
  size_t db_tier = 2;
};

class DcmController final : public ControllerBase {
 public:
  DcmController(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker, DcmConfig config);

  /// Current per-server optima the APP-agent deploys.
  int app_tier_nb() const;
  int db_tier_nb() const;

  const model::ConcurrencyModel& app_tier_model() const { return config_.app_tier_model; }
  const model::ConcurrencyModel& db_tier_model() const { return config_.db_tier_model; }

  /// Operational-law ranking of the deployment's service-graph nodes at the
  /// current VM allocation: per-node capacity γ·K_m/(V_m·S0_m) with visit
  /// ratios path-multiplied over the DAG and K_m = the node's active VM
  /// count. The report's bottleneck_tier is the node index DCM considers
  /// the system's capacity limiter (lowest capacity). Only valid for apps
  /// built from a ServiceGraph; returns a report with bottleneck_tier = -1
  /// for legacy chain apps.
  model::BottleneckReport rank_graph_nodes() const;

  /// True while the watchdog has soft-resource actuation frozen.
  bool actuation_frozen() const { return frozen_; }
  /// Consecutive control periods without a single telemetry sample.
  int silent_periods() const { return silent_periods_; }

 protected:
  void decide(const std::vector<TierObservation>& observations) override;

 private:
  /// Memoized optimal_concurrency_int(): the argmax scan evaluates the model
  /// ~4k times, reallocation runs every control period plus on every VM
  /// activation, and the model only actually changes when an online refit
  /// lands. Keyed on every field the scan reads.
  struct NbCache {
    model::ConcurrencyModel model;
    int nb = 0;
    bool valid = false;
  };
  static int cached_nb(const model::ConcurrencyModel& m, NbCache& cache);

  void reallocate_soft_resources();
  void refine_models_online();
  void set_frozen(bool frozen, const char* reason);

  DcmConfig config_;
  OnlineModelEstimator app_estimator_;
  OnlineModelEstimator db_estimator_;
  mutable NbCache app_nb_cache_;
  mutable NbCache db_nb_cache_;
  int silent_periods_ = 0;
  bool app_fit_degraded_ = false;
  bool db_fit_degraded_ = false;
  bool frozen_ = false;
};

}  // namespace dcm::control
