// Predictive auto-scaler: Holt double-exponential smoothing on the per-tier
// utilisation signal (the trend-only special case of Holt-Winters — the
// simulated traces carry no seasonality at control-period resolution).
//
// Each control period updates a per-tier (level, trend) pair:
//
//   level_t = α·u_t + (1−α)·(level_{t−1} + trend_{t−1})
//   trend_t = β·(level_t − level_{t−1}) + (1−β)·trend_{t−1}
//   forecast = level_t + horizon · trend_t
//
// and feeds max(u_t, forecast) into the shared threshold rule, so a rising
// ramp triggers the scale-out `horizon` periods before the raw utilisation
// crosses the threshold — buying back the VM boot delay — while a live
// breach is never ignored even if the smoothed forecast lags. Scale-in uses
// the same smoothed signal: a transient dip below the lower threshold does
// not start the scale-in streak unless the forecast agrees.
//
// The state is seeded from the first observation (level = u_0, trend = 0),
// so the first period is purely reactive, and a telemetry gap discards the
// state: a forecast extrapolated across silence would treat a stale level
// as one period old.
#pragma once

#include "control/controller.h"

namespace dcm::control {

struct PredictiveConfig {
  ScalingPolicy policy;
  /// Smoothing weight on the newest observation (0 < α ≤ 1).
  double level_alpha = 0.5;
  /// Smoothing weight on the newest trend increment (0 ≤ β ≤ 1).
  double trend_beta = 0.3;
  /// Look-ahead in control periods; roughly ceil(boot_delay / period).
  int horizon_periods = 2;
};

class PredictiveController final : public ControllerBase {
 public:
  PredictiveController(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker,
                       PredictiveConfig config);

  /// Last forecast per tier (for tests/inspection); raw utilisation until
  /// the smoother has seen at least one sample.
  double forecast(size_t tier_index) const { return forecast_[tier_index]; }

 protected:
  void decide(const std::vector<TierObservation>& observations) override;

 private:
  PredictiveConfig config_;
  std::vector<double> level_;
  std::vector<double> trend_;
  std::vector<double> forecast_;
  std::vector<bool> initialized_;
};

}  // namespace dcm::control
