// The two actuators of the DCM architecture (paper Sec. IV).
//
// VmAgent — VM-level scaling: start/stop VMs through the tier (the
// hypervisor-API substitute), recording every action.
// AppAgent — fine-grained soft-resource re-allocation: live-resizes server
// thread pools and DB connection pools.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ntier/app.h"
#include "sim/engine.h"

namespace dcm::control {

struct ControlAction {
  sim::SimTime time = 0;
  std::string tier;
  std::string action;  // "scale_out" | "scale_in" | "set_stp" | "set_conns"
  std::string detail;
};

class ControlLog {
 public:
  void add(sim::SimTime time, std::string tier, std::string action, std::string detail);
  const std::vector<ControlAction>& actions() const { return actions_; }
  /// Actions of one kind (e.g. all "scale_out"s) for bench reporting.
  std::vector<ControlAction> filtered(const std::string& action) const;

  /// Live tap: invoked (after recording) for every action added. Every
  /// control-plane mutation — VM scaling, soft-resource resizes, watchdog
  /// freeze/resume — flows through add(), so one observer sees them all.
  /// Used by the tracer to annotate in-flight traces with actuation events.
  void set_observer(std::function<void(const ControlAction&)> observer) {
    observer_ = std::move(observer);
  }

 private:
  std::vector<ControlAction> actions_;
  std::function<void(const ControlAction&)> observer_;
};

class VmAgent {
 public:
  VmAgent(sim::Engine& engine, ntier::NTierApp& app, ControlLog& log);

  /// Returns false when the tier is already at its max (or min) size.
  bool scale_out(size_t tier_index);
  bool scale_in(size_t tier_index);

 private:
  sim::Engine* engine_;
  ntier::NTierApp* app_;
  ControlLog* log_;
};

class AppAgent {
 public:
  AppAgent(sim::Engine& engine, ntier::NTierApp& app, ControlLog& log);

  /// Sets the per-server worker thread pool of a tier (no-op if unchanged).
  void set_thread_pool_size(size_t tier_index, int per_server);
  /// Sets the per-server connection pool toward the downstream tier.
  void set_downstream_connections(size_t tier_index, int per_server);

 private:
  sim::Engine* engine_;
  ntier::NTierApp* app_;
  ControlLog* log_;
};

}  // namespace dcm::control
