#include "control/dcm_controller.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"

namespace dcm::control {

DcmController::DcmController(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker,
                             DcmConfig config)
    : ControllerBase(engine, app, broker, config.policy, "dcm"),
      config_(std::move(config)),
      app_estimator_(config_.estimator),
      db_estimator_(config_.estimator) {
  DCM_CHECK_MSG(config_.app_tier < app.tier_count() && config_.db_tier < app.tier_count() &&
                    config_.app_tier < config_.db_tier,
                "DcmController tier indexes out of range");
  DCM_CHECK(config_.app_tier_model.params.valid());
  DCM_CHECK(config_.db_tier_model.params.valid());
  DCM_CHECK(config_.stp_headroom >= 1.0);

  // APP-agent follows the VM-agent: re-tune as soon as a VM enters service
  // (unless the watchdog has soft actuation frozen).
  for (size_t depth : {config_.app_tier, config_.db_tier}) {
    app.tier(depth).add_vm_activated_callback([this](ntier::Vm&) {
      if (!frozen_) reallocate_soft_resources();
    });
  }
  // Deploy the model-optimal allocation for the initial configuration.
  reallocate_soft_resources();
}

int DcmController::cached_nb(const model::ConcurrencyModel& m, NbCache& cache) {
  const bool same = cache.valid && m.params.s0 == cache.model.params.s0 &&
                    m.params.alpha == cache.model.params.alpha &&
                    m.params.beta == cache.model.params.beta && m.gamma == cache.model.gamma &&
                    m.servers == cache.model.servers && m.visit_ratio == cache.model.visit_ratio;
  if (!same) {
    cache.model = m;
    cache.nb = m.optimal_concurrency_int();
    cache.valid = true;
  }
  return cache.nb;
}

int DcmController::app_tier_nb() const {
  const int nb = cached_nb(config_.app_tier_model, app_nb_cache_);
  const int with_headroom = static_cast<int>(std::lround(nb * config_.stp_headroom));
  return std::clamp(with_headroom, config_.min_stp, config_.max_stp);
}

int DcmController::db_tier_nb() const {
  return std::max(1, cached_nb(config_.db_tier_model, db_nb_cache_));
}

model::BottleneckReport DcmController::rank_graph_nodes() const {
  const ntier::ServiceGraph* graph = app().graph();
  if (graph == nullptr) return {};
  const std::vector<double>& visits = graph->visit_ratios();
  std::vector<model::TierDemand> demands;
  demands.reserve(graph->node_count());
  for (size_t i = 0; i < graph->node_count(); ++i) {
    model::TierDemand demand;
    demand.name = app().tier(i).name();
    demand.visit_ratio = visits[i];
    // Base (uncontended) service time: the operational-law capacity bound
    // uses S0; contention shifts where the knee is, not which node caps X.
    demand.service_time = graph->node(i).tier.server.cpu.params.s0;
    demand.servers = std::max(1, app().tier(i).active_vm_count());
    demands.push_back(demand);
  }
  return model::analyze_bottleneck(demands);
}

void DcmController::decide(const std::vector<TierObservation>& observations) {
  // Stale-telemetry watchdog: count consecutive periods where the monitoring
  // pipeline delivered nothing at all (bus drop window, silenced agents, …).
  if (config_.watchdog_periods > 0) {
    silent_periods_ = period_samples().empty() ? silent_periods_ + 1 : 0;
  }
  const bool telemetry_stale =
      config_.watchdog_periods > 0 && silent_periods_ >= config_.watchdog_periods;

  if (config_.online_estimation && !telemetry_stale) {
    for (const auto& s : period_samples()) {
      if (s.vm_state != "ACTIVE") continue;
      if (static_cast<size_t>(s.depth) == config_.app_tier) {
        app_estimator_.observe(s.concurrency, s.throughput);
      } else if (static_cast<size_t>(s.depth) == config_.db_tier) {
        db_estimator_.observe(s.concurrency, s.throughput);
      }
    }
    refine_models_online();
  }

  if (telemetry_stale) {
    set_frozen(true, "telemetry_stale");
  } else if (app_fit_degraded_ || db_fit_degraded_) {
    set_frozen(true, "fit_degraded");
  } else {
    set_frozen(false, "telemetry_fresh");
  }

  // The hardware-only EC2 rule keeps running while frozen — graceful
  // degradation means losing the concurrency refinement, not VM scaling.
  for (size_t i = 0; i < observations.size(); ++i) {
    apply_hardware_rule(i, observations[i]);
  }
  if (!frozen_) reallocate_soft_resources();
}

void DcmController::set_frozen(bool frozen, const char* reason) {
  if (frozen == frozen_) return;
  frozen_ = frozen;
  mutable_log().add(engine().now(), "*", frozen ? "watchdog_freeze" : "watchdog_resume",
                    reason);
  DCM_LOG_WARN("dcm: %s soft-resource actuation (%s)", frozen ? "froze" : "resumed", reason);
}

void DcmController::reallocate_soft_resources() {
  ntier::Tier& app_tier = app().tier(config_.app_tier);
  ntier::Tier& db_tier = app().tier(config_.db_tier);

  // Use ACTIVE counts: a booting DB VM is not yet sharing load, so sizing
  // for it early would overload the survivors; the activation callback
  // re-runs this the moment it joins.
  const int k_app = std::max(1, app_tier.active_vm_count());
  const int k_db = std::max(1, db_tier.active_vm_count());

  app_agent().set_thread_pool_size(config_.app_tier, app_tier_nb());

  const int total_db_concurrency = k_db * db_tier_nb();
  const int conns_per_app = std::max(
      config_.min_conns,
      static_cast<int>(std::ceil(static_cast<double>(total_db_concurrency) / k_app)));
  app_agent().set_downstream_connections(config_.app_tier, conns_per_app);
}

void DcmController::refine_models_online() {
  const ntier::Tier& app_tier = app().tier(config_.app_tier);
  const ntier::Tier& db_tier = app().tier(config_.db_tier);
  if (auto fitted = app_estimator_.fit(std::max(1, app_tier.active_vm_count()),
                                       config_.app_tier_model.visit_ratio)) {
    if (config_.min_fit_r2 > 0.0 && fitted->r_squared < config_.min_fit_r2) {
      // R² collapse: the data no longer looks like the model (e.g. a fault
      // is polluting the samples) — reject the fit and flag degradation.
      app_fit_degraded_ = true;
      DCM_LOG_WARN("dcm: rejected app-tier fit (R²=%.3f < %.3f)", fitted->r_squared,
                   config_.min_fit_r2);
    } else {
      app_fit_degraded_ = false;
      const double nb = fitted->optimal_concurrency();
      if (nb >= 2.0 && nb <= 500.0) {
        config_.app_tier_model.params = fitted->model.params;
        DCM_LOG_DEBUG("dcm: refined app-tier model online, N_b=%.1f (R²=%.3f)", nb,
                      fitted->r_squared);
      }
    }
  }
  if (auto fitted = db_estimator_.fit(std::max(1, db_tier.active_vm_count()),
                                      config_.db_tier_model.visit_ratio)) {
    if (config_.min_fit_r2 > 0.0 && fitted->r_squared < config_.min_fit_r2) {
      db_fit_degraded_ = true;
      DCM_LOG_WARN("dcm: rejected db-tier fit (R²=%.3f < %.3f)", fitted->r_squared,
                   config_.min_fit_r2);
    } else {
      db_fit_degraded_ = false;
      const double nb = fitted->optimal_concurrency();
      if (nb >= 2.0 && nb <= 500.0) {
        config_.db_tier_model.params = fitted->model.params;
        DCM_LOG_DEBUG("dcm: refined db-tier model online, N_b=%.1f (R²=%.3f)", nb,
                      fitted->r_squared);
      }
    }
  }
}

}  // namespace dcm::control
