#include "control/predictive_controller.h"

#include <algorithm>

#include "common/check.h"

namespace dcm::control {

PredictiveController::PredictiveController(sim::Engine& engine, ntier::NTierApp& app,
                                           bus::Broker& broker, PredictiveConfig config)
    : ControllerBase(engine, app, broker, config.policy, "predictive"),
      config_(config),
      level_(app.tier_count(), 0.0),
      trend_(app.tier_count(), 0.0),
      forecast_(app.tier_count(), 0.0),
      initialized_(app.tier_count(), false) {
  DCM_CHECK(config_.level_alpha > 0.0 && config_.level_alpha <= 1.0);
  DCM_CHECK(config_.trend_beta >= 0.0 && config_.trend_beta <= 1.0);
  DCM_CHECK(config_.horizon_periods >= 1);
}

void PredictiveController::decide(const std::vector<TierObservation>& observations) {
  for (size_t i = 0; i < observations.size(); ++i) {
    const TierObservation& obs = observations[i];
    if (obs.samples == 0) {
      // Telemetry gap: a forecast from a stale level would treat it as one
      // period old. Re-seed from the next real observation.
      initialized_[i] = false;
      continue;
    }
    if (!initialized_[i]) {
      level_[i] = obs.mean_util;
      trend_[i] = 0.0;
      initialized_[i] = true;
      forecast_[i] = obs.mean_util;  // period 0 is purely reactive
    } else {
      const double previous_level = level_[i];
      level_[i] = config_.level_alpha * obs.mean_util +
                  (1.0 - config_.level_alpha) * (previous_level + trend_[i]);
      trend_[i] = config_.trend_beta * (level_[i] - previous_level) +
                  (1.0 - config_.trend_beta) * trend_[i];
      forecast_[i] = level_[i] + static_cast<double>(config_.horizon_periods) * trend_[i];
    }
    // A live breach always counts; the forecast only moves the scale-out
    // trigger earlier. The same max() on the scale-in side means a transient
    // dip starts the streak only when the forecast is also below the lower
    // threshold.
    const double signal = std::max(obs.mean_util, forecast_[i]);
    apply_threshold_rule(i, obs, signal, signal);
  }
}

}  // namespace dcm::control
