#include "control/online_estimator.h"

#include <cmath>

namespace dcm::control {

OnlineModelEstimator::OnlineModelEstimator(EstimatorConfig config) : config_(config) {}

void OnlineModelEstimator::observe(double concurrency, double throughput) {
  if (concurrency < 0.5 || throughput < 0.0) return;  // idle seconds carry no signal
  const int bin = static_cast<int>(std::lround(concurrency));
  bins_[std::max(1, bin)].add(throughput);
}

size_t OnlineModelEstimator::bin_count() const {
  size_t n = 0;
  for (const auto& [conc, stat] : bins_) {
    if (stat.count() >= static_cast<uint64_t>(config_.min_samples_per_bin)) ++n;
  }
  return n;
}

bool OnlineModelEstimator::ready() const {
  if (bin_count() < static_cast<size_t>(config_.min_bins)) return false;
  int lo = 0, hi = 0;
  for (const auto& [conc, stat] : bins_) {
    if (stat.count() < static_cast<uint64_t>(config_.min_samples_per_bin)) continue;
    if (lo == 0) lo = conc;
    hi = conc;
  }
  return lo > 0 && static_cast<double>(hi) / static_cast<double>(lo) >= config_.min_spread;
}

std::optional<model::TrainedModel> OnlineModelEstimator::fit(int servers,
                                                             double visit_ratio) const {
  if (!ready()) return std::nullopt;
  std::vector<model::TrainingSample> samples;
  samples.reserve(bins_.size());
  for (const auto& [conc, stat] : bins_) {
    if (stat.count() < static_cast<uint64_t>(config_.min_samples_per_bin)) continue;
    samples.push_back({static_cast<double>(conc), stat.mean()});
  }
  const model::Trainer trainer(servers, visit_ratio);
  model::TrainedModel trained = trainer.fit_normalized(samples);
  if (trained.r_squared < config_.min_r_squared) return std::nullopt;
  return trained;
}

}  // namespace dcm::control
