#include "control/online_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dcm::control {

WindowedMeanBin::WindowedMeanBin(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void WindowedMeanBin::add(double x) {
  if (size_ < capacity_) {
    ring_.push_back(x);
    sum_ += x;
    ++size_;
    head_ = size_ % capacity_;
    return;
  }
  sum_ += x - ring_[head_];
  ring_[head_] = x;
  head_ = (head_ + 1) % capacity_;
  if (head_ == 0) {
    // Re-accumulate once per wrap so incremental float error cannot drift.
    sum_ = 0.0;
    for (const double v : ring_) sum_ += v;
  }
}

double WindowedMeanBin::mean() const {
  return size_ == 0 ? 0.0 : sum_ / static_cast<double>(size_);
}

OnlineModelEstimator::OnlineModelEstimator(EstimatorConfig config) : config_(config) {}

void OnlineModelEstimator::observe(double concurrency, double throughput) {
  if (concurrency < 0.5) return;   // idle seconds carry no signal
  if (throughput <= 0.0) return;   // stalled interval, not a throughput sample
  const int bin = static_cast<int>(std::lround(concurrency));
  bins_.try_emplace(std::max(1, bin), static_cast<size_t>(config_.window_per_bin))
      .first->second.add(throughput);
}

size_t OnlineModelEstimator::bin_count() const {
  size_t n = 0;
  for (const auto& [conc, stat] : bins_) {
    if (stat.count() >= static_cast<uint64_t>(config_.min_samples_per_bin)) ++n;
  }
  return n;
}

bool OnlineModelEstimator::ready() const {
  if (bin_count() < static_cast<size_t>(config_.min_bins)) return false;
  int lo = 0, hi = 0;
  for (const auto& [conc, stat] : bins_) {
    if (stat.count() < static_cast<uint64_t>(config_.min_samples_per_bin)) continue;
    if (lo == 0) lo = conc;
    hi = conc;
  }
  return lo > 0 && static_cast<double>(hi) / static_cast<double>(lo) >= config_.min_spread;
}

std::optional<model::TrainedModel> OnlineModelEstimator::fit(int servers,
                                                             double visit_ratio) const {
  if (!ready()) return std::nullopt;
  std::vector<model::TrainingSample> samples;
  samples.reserve(bins_.size());
  for (const auto& [conc, stat] : bins_) {
    if (stat.count() < static_cast<uint64_t>(config_.min_samples_per_bin)) continue;
    samples.push_back({static_cast<double>(conc), stat.mean()});
  }
  const model::Trainer trainer(servers, visit_ratio);
  model::TrainedModel trained = trainer.fit_normalized(samples);
  if (trained.r_squared < config_.min_r_squared) return std::nullopt;
  return trained;
}

}  // namespace dcm::control
