// Optimization controller base (paper Sec. IV).
//
// Every control period (15 s) the controller drains the monitoring topic
// from the bus, aggregates the per-second samples into one observation per
// tier, and lets the concrete policy decide. The shared hardware rule
// (threshold scaling with "quick start, slow turn off" hysteresis) lives
// here so EC2-AutoScale and DCM differ only in what DCM adds on top.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bus/broker.h"
#include "bus/consumer.h"
#include "control/actuators.h"
#include "control/hysteresis.h"
#include "control/scaling_policy.h"
#include "metrics/timeseries.h"
#include "ntier/app.h"
#include "ntier/metric_sample.h"
#include "sim/engine.h"

namespace dcm::control {

/// One control period's digest of a tier's ACTIVE servers.
struct TierObservation {
  std::string tier;
  int depth = 0;
  int samples = 0;        // per-second samples aggregated
  double mean_util = 0.0;
  double mean_concurrency = 0.0;   // per-server busy threads
  double mean_throughput = 0.0;    // per-server completions/s
  double mean_response_time = 0.0;
  int active_vms = 0;
  int booting_vms = 0;
};

class ControllerBase {
 public:
  ControllerBase(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker,
                 ScalingPolicy policy, std::string name);
  virtual ~ControllerBase();

  ControllerBase(const ControllerBase&) = delete;
  ControllerBase& operator=(const ControllerBase&) = delete;

  /// Arms the periodic control loop (first tick after one control period).
  void start();
  void stop();

  const ControlLog& log() const { return log_; }
  /// Live tap on every recorded control action (see ControlLog::set_observer).
  void set_action_observer(std::function<void(const ControlAction&)> observer) {
    log_.set_observer(std::move(observer));
  }
  const std::string& name() const { return name_; }
  /// The effective VM-level policy (read-only; registry tests inspect it).
  const ScalingPolicy& policy() const { return policy_; }
  /// Per-tier utilisation as seen by the controller, one point per tick —
  /// the Fig. 5(c-f) "CPU util" series.
  const std::vector<metrics::TimeSeries>& util_series() const { return util_series_; }

 protected:
  /// Concrete policy hook, called once per control period.
  virtual void decide(const std::vector<TierObservation>& observations) = 0;

  /// The shared VM-level rule. Applies scale-out/in for one tier according
  /// to the policy thresholds; returns true if an action was taken.
  bool apply_hardware_rule(size_t tier_index, const TierObservation& obs);

  /// The threshold rule with caller-supplied signals: zoo controllers feed
  /// forecasts or synthetic signals instead of the raw utilisation.
  /// `force_out` bypasses the out-gate (e.g. an SLA violation) but still
  /// honours the booting suppression. Returns true if an action was taken.
  bool apply_threshold_rule(size_t tier_index, const TierObservation& obs, double out_signal,
                            double in_signal, bool force_out = false);

  /// Capacity-target actuation for controllers that compute a desired
  /// active-VM count directly (queueing inversion, PI). Moves the tier at
  /// most one VM toward `desired_active` per period, with the same booting
  /// suppression and slow scale-in streak as the threshold rule. Returns
  /// true if an action was taken.
  bool actuate_toward(size_t tier_index, const TierObservation& obs, int desired_active);

  /// Raw samples drained this period (DCM's online estimator consumes them).
  const std::vector<ntier::MetricSample>& period_samples() const { return period_samples_; }

  sim::Engine& engine() { return *engine_; }
  ntier::NTierApp& app() { return *app_; }
  const ntier::NTierApp& app() const { return *app_; }
  VmAgent& vm_agent() { return vm_agent_; }
  AppAgent& app_agent() { return app_agent_; }
  /// Concrete policies may record their own actions (e.g. watchdog
  /// freeze/resume transitions) alongside the actuators'.
  ControlLog& mutable_log() { return log_; }

 private:
  void control_tick();
  std::vector<TierObservation> aggregate();
  /// Tracks the tier's provisioned VM count (active + booting) and reports
  /// whether it changed since the previous sampled period. Membership churn
  /// invalidates the slow scale-in streak: evidence gathered against the old
  /// capacity says nothing about the new one.
  bool membership_churned(size_t tier_index, const TierObservation& obs);

  sim::Engine* engine_;
  ntier::NTierApp* app_;
  ScalingPolicy policy_;
  std::string name_;
  ControlLog log_;
  VmAgent vm_agent_;
  AppAgent app_agent_;
  std::unique_ptr<bus::Consumer> consumer_;
  sim::EventHandle timer_;
  std::vector<ntier::MetricSample> period_samples_;
  std::vector<int> low_util_streak_;     // per tier, for slow scale-in
  std::vector<double> previous_util_;    // per tier, for predictive trend
  std::vector<bool> has_previous_util_;  // per tier
  std::vector<int> last_capacity_;       // per tier, provisioned VMs (-1 = unseen)
  std::vector<HysteresisGate> scale_out_gate_;  // per tier
  std::vector<HysteresisGate> scale_in_gate_;   // per tier
  std::vector<metrics::TimeSeries> util_series_;
};

}  // namespace dcm::control
