#include "control/pi_controller.h"

#include <algorithm>

#include "common/check.h"

namespace dcm::control {

PiController::PiController(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker,
                           PiConfig config)
    : ControllerBase(engine, app, broker, config.policy, "pi"),
      config_(config),
      integral_(app.tier_count(), 0.0) {
  DCM_CHECK(config_.target_util > 0.0 && config_.target_util < 1.0);
  DCM_CHECK(config_.kp >= 0.0);
  DCM_CHECK(config_.ki >= 0.0);
  DCM_CHECK(config_.deadband >= 0.0);
  DCM_CHECK(config_.integral_limit > 0.0);
}

void PiController::decide(const std::vector<TierObservation>& observations) {
  for (size_t i = 0; i < observations.size(); ++i) {
    const TierObservation& obs = observations[i];
    if (obs.samples == 0) continue;  // no evidence: hold the integral

    const double error = obs.mean_util - config_.target_util;
    const double proposed = std::clamp(integral_[i] + error, -config_.integral_limit,
                                       config_.integral_limit);
    const double delta = config_.kp * error + config_.ki * proposed;

    int desired = obs.active_vms;
    if (delta > config_.deadband) {
      desired = obs.active_vms + obs.booting_vms + 1;
    } else if (delta < -config_.deadband) {
      desired = obs.active_vms - 1;
    }

    const bool wanted_change = desired != obs.active_vms;
    const bool acted = actuate_toward(i, obs, desired);
    if (acted) {
      // Back-calculation-style reset: the fleet just changed, so the
      // accumulated error argues about a plant that no longer exists.
      integral_[i] = 0.0;
    } else if (wanted_change) {
      // Conditional integration: the actuator refused (tier limit, booting
      // suppression, scale-in streak still building). Freeze the integral so
      // it doesn't wind up against a saturated actuator.
    } else {
      integral_[i] = proposed;
    }
  }
}

}  // namespace dcm::control
