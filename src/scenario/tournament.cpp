#include "scenario/tournament.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "common/strings.h"
#include "common/table.h"
#include "control/controller_registry.h"
#include "scenario/registry.h"
#include "scenario/result_writer.h"

namespace dcm::scenario {
namespace {

// Mirrors result_writer.cpp: identifiers and INI values only.
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) { return str_format("%.17g", value); }

Scenario resolve_scenario(const std::string& name,
                          const std::vector<std::pair<std::string, std::string>>& overrides) {
  Scenario base = has_scenario(name) ? get_scenario(name) : Scenario::load(name);
  if (overrides.empty()) return base;
  Config config = base.to_config();
  for (const auto& [key, value] : overrides) {
    const size_t dot = key.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= key.size()) {
      throw std::runtime_error("tournament: override must be section.key=value, got: " + key);
    }
    config.set(key.substr(0, dot), key.substr(dot + 1), value);
  }
  return Scenario::from_config(config);
}

// Lexicographic scorecard order: quality, then cost, then stability, then
// name (the deterministic tie-break).
bool cell_beats(const TournamentCell& a, const TournamentCell& b) {
  if (a.slo_violation_seconds != b.slo_violation_seconds) {
    return a.slo_violation_seconds < b.slo_violation_seconds;
  }
  if (a.vm_hours < b.vm_hours) return true;
  if (b.vm_hours < a.vm_hours) return false;
  if (a.actuation_churn != b.actuation_churn) return a.actuation_churn < b.actuation_churn;
  return a.controller < b.controller;
}

}  // namespace

Tournament run_tournament(const TournamentOptions& options) {
  if (options.scenarios.empty()) {
    throw std::runtime_error("tournament: at least one scenario required");
  }
  Tournament tournament;
  tournament.scenarios = options.scenarios;
  tournament.controllers =
      options.controllers.empty() ? control::controller_names() : options.controllers;
  for (const auto& name : tournament.controllers) {
    if (!control::has_controller(name)) {
      throw std::invalid_argument("tournament: unknown controller: " + name);
    }
  }

  for (const auto& scenario_name : tournament.scenarios) {
    SweepPlan plan;
    plan.base = resolve_scenario(scenario_name, options.overrides);
    // Paired comparison: every controller must face the identical trace,
    // client randomness and fault schedule.
    plan.seed_policy = SeedPolicy::kFixed;
    plan.axes.push_back(SweepAxis{"controller", "kind", tournament.controllers});
    SweepRunner runner(plan, options.jobs);
    const std::vector<SweepRun> runs = runner.run();

    std::vector<TournamentCell> cells;
    cells.reserve(runs.size());
    for (const SweepRun& run : runs) {
      TournamentCell cell;
      cell.scenario = scenario_name;
      cell.controller = run.overrides.front().second;
      cell.slo_violation_seconds = run.result.sla_violation_seconds;
      cell.vm_hours = run.result.total_vm_seconds / 3600.0;
      cell.actuation_churn =
          run.result.action_count("scale_out") + run.result.action_count("scale_in");
      cell.soft_actions =
          run.result.action_count("set_stp") + run.result.action_count("set_conns");
      cell.mean_response_time = run.result.mean_response_time;
      cell.mean_throughput = run.result.mean_throughput;
      cell.result_digest = result_digest(run.result);
      cells.push_back(std::move(cell));
    }

    // Rank within the scenario without disturbing the axis order.
    std::vector<size_t> order(cells.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&cells](size_t a, size_t b) { return cell_beats(cells[a], cells[b]); });
    for (size_t place = 0; place < order.size(); ++place) {
      cells[order[place]].rank = static_cast<int>(place) + 1;
    }
    tournament.cells.insert(tournament.cells.end(), cells.begin(), cells.end());
  }

  // Overall standing: sum of per-scenario ranks, totals as tie-breaks.
  for (const auto& controller : tournament.controllers) {
    TournamentStanding standing;
    standing.controller = controller;
    for (const auto& cell : tournament.cells) {
      if (cell.controller != controller) continue;
      standing.rank_points += cell.rank;
      standing.total_slo_violation_seconds += cell.slo_violation_seconds;
      standing.total_vm_hours += cell.vm_hours;  // dcm-lint: allow(no-unanchored-float-accumulate)
      standing.total_actuation_churn += cell.actuation_churn;
    }
    tournament.standings.push_back(std::move(standing));
  }
  std::sort(tournament.standings.begin(), tournament.standings.end(),
            [](const TournamentStanding& a, const TournamentStanding& b) {
              if (a.rank_points != b.rank_points) return a.rank_points < b.rank_points;
              if (a.total_slo_violation_seconds != b.total_slo_violation_seconds) {
                return a.total_slo_violation_seconds < b.total_slo_violation_seconds;
              }
              if (a.total_vm_hours < b.total_vm_hours) return true;
              if (b.total_vm_hours < a.total_vm_hours) return false;
              if (a.total_actuation_churn != b.total_actuation_churn) {
                return a.total_actuation_churn < b.total_actuation_churn;
              }
              return a.controller < b.controller;
            });
  return tournament;
}

uint64_t scorecard_digest(const Tournament& tournament) {
  Fnv1a h;
  h.mix(std::string_view("dcm-tournament-v1"));
  h.mix(static_cast<uint64_t>(tournament.scenarios.size()));
  for (const auto& name : tournament.scenarios) h.mix(std::string_view(name));
  h.mix(static_cast<uint64_t>(tournament.controllers.size()));
  for (const auto& name : tournament.controllers) h.mix(std::string_view(name));
  for (const auto& cell : tournament.cells) {
    h.mix(std::string_view(cell.scenario));
    h.mix(std::string_view(cell.controller));
    h.mix(static_cast<int64_t>(cell.slo_violation_seconds));
    h.mix(cell.vm_hours);
    h.mix(static_cast<int64_t>(cell.actuation_churn));
    h.mix(static_cast<int64_t>(cell.soft_actions));
    h.mix(cell.result_digest);
    h.mix(static_cast<int64_t>(cell.rank));
  }
  for (const auto& standing : tournament.standings) {
    h.mix(std::string_view(standing.controller));
    h.mix(static_cast<int64_t>(standing.rank_points));
  }
  return h.value();
}

void write_tournament_json(std::ostream& out, const Tournament& tournament) {
  out << "{\n  \"schema\": \"dcm-tournament-v1\",\n  \"scenarios\": [";
  for (size_t i = 0; i < tournament.scenarios.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << json_escape(tournament.scenarios[i]) << "\"";
  }
  out << "],\n  \"controllers\": [";
  for (size_t i = 0; i < tournament.controllers.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << json_escape(tournament.controllers[i]) << "\"";
  }
  out << "],\n  \"cells\": [\n";
  for (size_t i = 0; i < tournament.cells.size(); ++i) {
    const TournamentCell& cell = tournament.cells[i];
    out << "    {\n"
        << "      \"scenario\": \"" << json_escape(cell.scenario) << "\",\n"
        << "      \"controller\": \"" << json_escape(cell.controller) << "\",\n"
        << "      \"slo_violation_seconds\": " << cell.slo_violation_seconds << ",\n"
        << "      \"vm_hours\": " << json_number(cell.vm_hours) << ",\n"
        << "      \"actuation_churn\": " << cell.actuation_churn << ",\n"
        << "      \"soft_actions\": " << cell.soft_actions << ",\n"
        << "      \"mean_response_time\": " << json_number(cell.mean_response_time) << ",\n"
        << "      \"mean_throughput\": " << json_number(cell.mean_throughput) << ",\n"
        << "      \"result_digest\": \"" << cell.result_digest << "\",\n"
        << "      \"rank\": " << cell.rank << "\n"
        << "    }" << (i + 1 < tournament.cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"standings\": [\n";
  for (size_t i = 0; i < tournament.standings.size(); ++i) {
    const TournamentStanding& s = tournament.standings[i];
    out << "    {\n"
        << "      \"controller\": \"" << json_escape(s.controller) << "\",\n"
        << "      \"rank_points\": " << s.rank_points << ",\n"
        << "      \"total_slo_violation_seconds\": " << s.total_slo_violation_seconds << ",\n"
        << "      \"total_vm_hours\": " << json_number(s.total_vm_hours) << ",\n"
        << "      \"total_actuation_churn\": " << s.total_actuation_churn << "\n"
        << "    }" << (i + 1 < tournament.standings.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"scorecard_digest\": \"" << scorecard_digest(tournament) << "\"\n}\n";
}

void write_tournament_csv(std::ostream& out, const Tournament& tournament) {
  out << "scenario,controller,slo_violation_seconds,vm_hours,actuation_churn,soft_actions,"
         "mean_response_time,mean_throughput,result_digest,rank\n";
  for (const auto& scenario : tournament.scenarios) {
    std::vector<const TournamentCell*> cells;
    for (const auto& cell : tournament.cells) {
      if (cell.scenario == scenario) cells.push_back(&cell);
    }
    std::sort(cells.begin(), cells.end(),
              [](const TournamentCell* a, const TournamentCell* b) { return a->rank < b->rank; });
    for (const TournamentCell* cell : cells) {
      out << cell->scenario << "," << cell->controller << "," << cell->slo_violation_seconds
          << "," << json_number(cell->vm_hours) << "," << cell->actuation_churn << ","
          << cell->soft_actions << "," << json_number(cell->mean_response_time) << ","
          << json_number(cell->mean_throughput) << "," << cell->result_digest << ","
          << cell->rank << "\n";
    }
  }
}

void print_tournament(const Tournament& tournament) {
  for (const auto& scenario : tournament.scenarios) {
    std::printf("scenario %s\n", scenario.c_str());
    TextTable table({"rank", "controller", "slo_viol_s", "vm_hours", "churn", "soft", "rt_ms",
                     "xput"});
    std::vector<const TournamentCell*> cells;
    for (const auto& cell : tournament.cells) {
      if (cell.scenario == scenario) cells.push_back(&cell);
    }
    std::sort(cells.begin(), cells.end(),
              [](const TournamentCell* a, const TournamentCell* b) { return a->rank < b->rank; });
    for (const TournamentCell* cell : cells) {
      table.add_row({std::to_string(cell->rank), cell->controller,
                     std::to_string(cell->slo_violation_seconds), format_number(cell->vm_hours),
                     std::to_string(cell->actuation_churn), std::to_string(cell->soft_actions),
                     format_number(cell->mean_response_time * 1000.0, 1),
                     format_number(cell->mean_throughput, 1)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("standings (rank points = sum of per-scenario ranks; lower is better)\n");
  TextTable standings({"place", "controller", "rank_pts", "slo_viol_s", "vm_hours", "churn"});
  for (size_t i = 0; i < tournament.standings.size(); ++i) {
    const TournamentStanding& s = tournament.standings[i];
    standings.add_row({std::to_string(i + 1), s.controller, std::to_string(s.rank_points),
                       std::to_string(s.total_slo_violation_seconds),
                       format_number(s.total_vm_hours), std::to_string(s.total_actuation_churn)});
  }
  standings.print();
}

}  // namespace dcm::scenario
