#include "scenario/registry.h"

#include <stdexcept>
#include <utility>

namespace dcm::scenario {
namespace {

// Sorted by name. Texts are the canonical user-facing INI form — only the
// keys that differ from the scenario defaults, with [scenario] metadata.
const std::vector<std::pair<std::string, std::string>>& table() {
  static const std::vector<std::pair<std::string, std::string>> kScenarios = {
      {"ablation-soft-only",
       "[scenario]\n"
       "name = ablation-soft-only\n"
       "summary = DCM clamped to one VM per tier: only soft-resource adaptation acts\n"
       "\n[soft]\napp_threads = 200\n"
       "\n[workload]\nkind = trace\ntrace = large-variation\npeak_users = 350\n"
       "\n[controller]\nkind = dcm\n"
       "\n[run]\nduration = 700\nwarmup = 30\nmax_vms = 1\n"},

      {"ablation-wrong-models",
       "[scenario]\n"
       "name = ablation-wrong-models\n"
       "summary = DCM driven by badly-fitted models (optima near the default pools)\n"
       "\n[soft]\napp_threads = 200\n"
       "\n[workload]\nkind = trace\ntrace = large-variation\npeak_users = 350\n"
       "\n[controller]\nkind = dcm\n"
       // N_b lands near 200 (Tomcat) / 160 (MySQL) instead of 20 / 36, so
       // DCM degenerates to hardware-only behaviour.
       "app_model = 2.84e-2, 1e-4, 7.075e-7\n"
       "db_model = 7.19e-3, 1e-4, 2.76953125e-7\n"
       "\n[run]\nduration = 700\nwarmup = 30\n"},

      {"chaos-resilience",
       "[scenario]\n"
       "name = chaos-resilience\n"
       "summary = DCM under a deterministic fault schedule with the resilience stack armed "
       "(sweep resilience.enabled for the ablation)\n"
       "\n[soft]\napp_threads = 200\n"
       "\n[workload]\nkind = trace\ntrace = large-variation\npeak_users = 350\n"
       "\n[controller]\nkind = dcm\nonline_estimation = true\n"
       // Canonical chaos schedule: roughly two crashes, two slowdowns and
       // one telemetry blackout per 300 s run, all derived from [run] seed.
       "\n[faults]\ncrash_mttf = 120\nslowdown_mttf = 150\n"
       "telemetry_loss_mttf = 250\ntelemetry_loss_duration = 45\n"
       "agent_silence_mttf = 200\n"
       "\n[resilience]\nenabled = true\nmin_fit_r2 = 0.5\n"
       "\n[run]\nduration = 300\nwarmup = 30\n"},

      {"diamond-cache",
       "[scenario]\n"
       "name = diamond-cache\n"
       "summary = diamond topology (app fans out to cache + db, joins before reply): "
       "DCM's node ranking must agree with the per-edge trace attribution\n"
       // With 3 app VMs the DB (V = 2) is the clear capacity limiter:
       // 1/(2·7.19e-3) ≈ 70 req/s vs 3/2.84e-2 ≈ 106 for the app nodes.
       "\n[hardware]\napp = 3\n"
       "\n[topology]\nkind = graph\n"
       "nodes = apache:web, tomcat:app, memcache:cache, mysql:db\n"
       "edges = apache->tomcat:1, tomcat->memcache:1, tomcat->mysql:q:managed\n"
       "\n[workload]\nkind = rubbos\nusers = 300\n"
       "\n[controller]\nkind = dcm\n"
       "\n[trace]\nenabled = true\nrate = 1\n"
       "\n[run]\nduration = 120\nwarmup = 30\n"},

      {"fanout-join",
       "[scenario]\n"
       "name = fanout-join\n"
       "summary = three-way fan-out with synchronous join (two cache branches + the managed "
       "DB pool) on a fixed allocation\n"
       "\n[topology]\nkind = graph\n"
       "nodes = apache:web, tomcat:app, memcache:cache, redis:cache, mysql:db\n"
       "edges = apache->tomcat:1, tomcat->memcache:1, tomcat->redis:2, "
       "tomcat->mysql:q:managed\n"
       "\n[workload]\nkind = rubbos\nusers = 150\n"
       "\n[run]\nduration = 90\nwarmup = 30\n"},

      {"fig2b",
       "[scenario]\n"
       "name = fig2b\n"
       "summary = scale-out without pool re-tuning (sweep workload.users and the deployment)\n"
       "\n[workload]\nkind = rubbos\nusers = 300\n"
       "\n[run]\nduration = 150\nwarmup = 50\nseed = 77\n"},

      {"fig4a",
       "[scenario]\n"
       "name = fig4a\n"
       "summary = model validation at 1/1/1 (sweep soft.app_threads around the optimum 20)\n"
       "\n[workload]\nkind = rubbos\nusers = 300\n"
       "\n[run]\nduration = 150\nwarmup = 50\nseed = 31\n"},

      {"fig4b",
       "[scenario]\n"
       "name = fig4b\n"
       "summary = model validation at 1/2/1 (sweep soft.db_connections around the optimum 18)\n"
       "\n[hardware]\napp = 2\n"
       "\n[workload]\nkind = rubbos\nusers = 300\n"
       "\n[run]\nduration = 150\nwarmup = 50\nseed = 31\n"},

      {"fig5",
       "[scenario]\n"
       "name = fig5\n"
       "summary = DCM under the Large-Variation bursty trace (paper Fig. 5 left panels)\n"
       "\n[soft]\napp_threads = 200\n"
       "\n[workload]\nkind = trace\ntrace = large-variation\npeak_users = 350\n"
       "\n[controller]\nkind = dcm\n"
       "\n[run]\nduration = 700\nwarmup = 30\n"},

      {"fig5-ec2",
       "[scenario]\n"
       "name = fig5-ec2\n"
       "summary = EC2-AutoScale baseline under the Large-Variation trace (Fig. 5 right panels)\n"
       "\n[soft]\napp_threads = 200\n"
       "\n[workload]\nkind = trace\ntrace = large-variation\npeak_users = 350\n"
       "\n[controller]\nkind = ec2\n"
       "\n[run]\nduration = 700\nwarmup = 30\n"},

      {"quickstart",
       "[scenario]\n"
       "name = quickstart\n"
       "summary = small fixed-allocation RUBBoS run, the fastest end-to-end smoke\n"
       "\n[workload]\nkind = rubbos\nusers = 100\n"
       "\n[run]\nduration = 60\nwarmup = 15\n"},

      {"table1-mysql",
       "[scenario]\n"
       "name = table1-mysql\n"
       "summary = MySQL training deployment (1/2/1 with wide-open pools, sweep workload.users)\n"
       "\n[hardware]\napp = 2\n"
       "\n[soft]\ndb_connections = 400\n"
       "\n[workload]\nkind = jmeter\nusers = 36\n"
       "\n[run]\nduration = 90\nwarmup = 30\n"},

      {"table1-tomcat",
       "[scenario]\n"
       "name = table1-tomcat\n"
       "summary = Tomcat training deployment (1/1/1 with wide-open pools, sweep workload.users)\n"
       "\n[soft]\ndb_connections = 400\n"
       "\n[workload]\nkind = jmeter\nusers = 20\n"
       "\n[run]\nduration = 90\nwarmup = 30\n"},

      {"trace-attribution",
       "[scenario]\n"
       "name = trace-attribution\n"
       "summary = saturated app tier under full request tracing: the latency waterfall "
       "should pin the p99 on app-tier pool-queue wait\n"
       // The undersized app thread pool is the bottleneck fig4a sweeps
       // around; at 300 users it queues heavily while web and db stay lean.
       "\n[soft]\napp_threads = 20\n"
       "\n[workload]\nkind = rubbos\nusers = 300\n"
       "\n[trace]\nenabled = true\nrate = 1\n"
       "\n[run]\nduration = 120\nwarmup = 30\nseed = 7\n"},
  };
  return kScenarios;
}

}  // namespace

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(table().size());
  for (const auto& [name, text] : table()) names.push_back(name);
  return names;
}

bool has_scenario(const std::string& name) {
  for (const auto& [known, text] : table()) {
    if (known == name) return true;
  }
  return false;
}

const std::string& scenario_text(const std::string& name) {
  for (const auto& [known, text] : table()) {
    if (known == name) return text;
  }
  std::string known_names;
  for (const auto& [known, text] : table()) {
    known_names += known_names.empty() ? known : ", " + known;
  }
  throw std::runtime_error("unknown scenario '" + name + "' (known: " + known_names + ")");
}

Scenario get_scenario(const std::string& name) {
  return Scenario::parse(scenario_text(name));
}

std::optional<uint64_t> expected_result_digest(const std::string& name) {
  // result_digest of one canonical, override-free run per scenario. These
  // are bit-for-bit reference values: they were captured before the
  // slab/arena request-path refactor and must never change as a side effect
  // of a performance change. Re-capture ONLY when a scenario's definition
  // or the simulation model itself intentionally changes, and say so in the
  // commit message.
  static const std::vector<std::pair<std::string, uint64_t>> kDigests = {
      {"ablation-soft-only", 5015007590498637810ull},
      {"ablation-wrong-models", 3915615181683623565ull},
      {"chaos-resilience", 11487354307476855148ull},
      {"diamond-cache", 3232967541302041960ull},
      {"fanout-join", 4785642922260310638ull},
      {"fig2b", 13818073293857242208ull},
      {"fig4a", 1906107478622041724ull},
      {"fig4b", 14887783658272758290ull},
      {"fig5", 2825516737655928980ull},
      {"fig5-ec2", 3725650455189126203ull},
      {"quickstart", 8007654335316031933ull},
      {"table1-mysql", 9121944041707887455ull},
      {"table1-tomcat", 12912515698735263347ull},
      {"trace-attribution", 11860974645080426256ull},
  };
  for (const auto& [known, digest] : kDigests) {
    if (known == name) return digest;
  }
  return std::nullopt;
}

}  // namespace dcm::scenario
