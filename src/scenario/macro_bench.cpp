#include "scenario/macro_bench.h"

#include <chrono>
#include <cstdio>
#include <ostream>

#include "common/table.h"
#include "core/experiment.h"
#include "scenario/registry.h"
#include "scenario/result_writer.h"

namespace dcm::scenario {

const std::vector<std::string>& default_macro_suite() {
  static const std::vector<std::string> kSuite = {
      "quickstart", "fig5", "fig5-ec2", "chaos-resilience", "trace-attribution",
  };
  return kSuite;
}

std::vector<MacroBenchRow> run_macro_suite(const MacroBenchOptions& options) {
  const std::vector<std::string>& names =
      options.scenarios.empty() ? default_macro_suite() : options.scenarios;
  const int reps = options.repetitions >= 1 ? options.repetitions : 1;

  std::vector<MacroBenchRow> rows;
  rows.reserve(names.size());
  for (const auto& name : names) {
    const core::ExperimentConfig config = get_scenario(name).experiment();

    MacroBenchRow row;
    row.scenario = name;
    row.repetitions = reps;
    row.sim_seconds = config.duration_seconds;
    for (int rep = 0; rep < reps; ++rep) {
      // The macro benchmark's whole job is measuring wall time around a
      // deterministic run — the one legitimate wall-clock consumer here.
      const auto start = std::chrono::steady_clock::now();
      const core::ExperimentResult result = core::run_experiment(config);
      const auto stop = std::chrono::steady_clock::now();
      const double wall = std::chrono::duration<double>(stop - start).count();
      if (rep == 0 || wall < row.best_wall_seconds) row.best_wall_seconds = wall;
      // The run is deterministic: events and digest are rep-invariant, so
      // the first rep's values stand for all of them.
      if (rep == 0) {
        row.events = result.events_dispatched;
        row.digest = result_digest(result);
      }
    }
    if (row.best_wall_seconds > 0.0) {
      row.events_per_second = static_cast<double>(row.events) / row.best_wall_seconds;
      row.sim_seconds_per_wall_second = row.sim_seconds / row.best_wall_seconds;
    }
    if (options.verify_digests) {
      if (const auto expected = expected_result_digest(name)) {
        row.expected_digest = *expected;
        row.digest_ok = row.digest == *expected;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

bool all_digests_ok(const std::vector<MacroBenchRow>& rows) {
  for (const auto& row : rows) {
    if (!row.digest_ok) return false;
  }
  return true;
}

void write_macro_json(std::ostream& out, const std::vector<MacroBenchRow>& rows) {
  out << "{\n"
      << "  \"schema\": \"dcm-bench-v1\",\n"
      << "  \"suite\": \"macro\",\n"
      << "  \"benchmarks\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const MacroBenchRow& r = rows[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << r.scenario << "\""
        << ", \"repetitions\": " << r.repetitions
        << ", \"wall_seconds\": " << r.best_wall_seconds
        << ", \"events\": " << r.events
        << ", \"events_per_second\": " << static_cast<uint64_t>(r.events_per_second)
        << ", \"sim_seconds\": " << r.sim_seconds
        << ", \"sim_seconds_per_wall_second\": " << r.sim_seconds_per_wall_second
        << ", \"digest\": \"" << r.digest << "\""
        << ", \"digest_ok\": " << (r.digest_ok ? "true" : "false") << "}";
  }
  out << "\n  ]\n}\n";
}

void print_macro_table(const std::vector<MacroBenchRow>& rows) {
  TextTable table({"scenario", "events", "wall s", "events/s", "sim-s/wall-s", "digest"});
  for (const auto& r : rows) {
    char wall[32], eps[32], ratio[32];
    std::snprintf(wall, sizeof(wall), "%.3f", r.best_wall_seconds);
    std::snprintf(eps, sizeof(eps), "%.0f", r.events_per_second);
    std::snprintf(ratio, sizeof(ratio), "%.0f", r.sim_seconds_per_wall_second);
    table.add_row({r.scenario, std::to_string(r.events), wall, eps, ratio,
                   r.expected_digest == 0      ? "unpinned"
                   : r.digest_ok               ? "ok"
                                               : "MISMATCH"});
  }
  table.print();
}

}  // namespace dcm::scenario
