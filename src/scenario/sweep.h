// Parameter-grid sweeps over a base Scenario, executed on a worker pool.
//
// A `SweepPlan` is a base scenario plus axes ("section.key = v1,v2,...");
// `expand_grid` takes their cartesian product (last axis fastest) into an
// index-ordered run list, and `SweepRunner` executes the runs on N worker
// threads — one independent `sim::Engine` per run, nothing shared.
//
// Determinism contract: the merged results are bit-identical regardless of
// thread count or completion order. Three properties make that hold:
//   1. run plans are fully determined before any worker starts (grid
//      expansion is pure; per-run seeds derive from the base scenario's
//      root seed via `derive_seed(root, run_index)`),
//   2. each run owns its entire engine/app/workload stack (the library has
//      no mutable globals besides the log sink, which runs don't write),
//   3. results land in a preallocated slot keyed by run index, so the merge
//      order is the plan order, not the completion order.
// `tests/scenario/sweep_runner_test.cpp` digests this contract and CI
// compares --jobs 1 vs --jobs N digests on every push.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "scenario/scenario.h"

namespace dcm::scenario {

/// One swept dimension: every value a [section] key takes.
struct SweepAxis {
  std::string section;
  std::string key;
  std::vector<std::string> values;

  bool operator==(const SweepAxis&) const = default;
};

/// Parses "section.key=v1,v2,..." (the CLI's --axis syntax). Throws
/// std::runtime_error on a missing dot, missing '=', or an empty value list.
SweepAxis parse_axis(const std::string& spec);

/// How run seeds relate to the base scenario's root seed.
enum class SeedPolicy {
  /// seed_i = derive_seed(base.seed, i): statistically independent runs —
  /// the default for replications and load sweeps.
  kDerivePerRun,
  /// Every run keeps the base root seed: paired comparisons, where e.g.
  /// controller.kind = dcm,ec2 must face the identical synthesized trace
  /// and identical client randomness.
  kFixed,
};

struct SweepPlan {
  Scenario base;
  std::vector<SweepAxis> axes;
  SeedPolicy seed_policy = SeedPolicy::kDerivePerRun;
};

/// A fully-resolved run: the strict-validated scenario plus the overrides
/// that produced it (in axis order) and its position in the grid.
struct PlannedRun {
  size_t index = 0;
  Scenario scenario;
  std::vector<std::pair<std::string, std::string>> overrides;  // "section.key" → value
};

/// Cartesian expansion, last axis fastest (so axes read like nested loops).
/// No axes ⇒ exactly the base as run 0. An axis with zero values is an
/// error, not an empty grid. Overriding a kind key re-scopes the strict key
/// check: base keys that stop applying under the new kind are dropped, but
/// an override naming an inapplicable key still throws.
std::vector<PlannedRun> expand_grid(const SweepPlan& plan);

struct SweepRun {
  size_t index = 0;
  Scenario scenario;
  std::vector<std::pair<std::string, std::string>> overrides;
  core::ExperimentResult result;
};

class SweepRunner {
 public:
  /// jobs: worker threads; <= 0 means std::thread::hardware_concurrency().
  explicit SweepRunner(SweepPlan plan, int jobs = 1);

  /// Executes every planned run and returns them in run-index order. If any
  /// run threw, rethrows the lowest-index exception after all workers have
  /// drained (no partial results escape).
  std::vector<SweepRun> run();

  const std::vector<PlannedRun>& planned() const { return planned_; }
  int jobs() const { return jobs_; }

 private:
  std::vector<PlannedRun> planned_;
  int jobs_;
};

}  // namespace dcm::scenario
