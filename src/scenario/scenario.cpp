#include "scenario/scenario.h"

#include <charconv>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/strings.h"

namespace dcm::scenario {
namespace {

// Shortest text form that parses back to the exact same double — the
// canonical number format for scenario emission ("15", "0.8", "2.84e-02").
std::string format_double(double value) {
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

std::string format_int(int64_t value) { return std::to_string(value); }

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("scenario: " + message);
}

// Validates an "s0,alpha,beta" model-override triple and returns its
// canonical spelling, so stored scenarios are normalization fixed points.
std::string normalize_model_triple(const std::string& key, const std::string& value) {
  std::vector<double> parts;
  for (const auto& field : split(value, ',')) {
    const auto parsed = parse_double(std::string(trim(field)));
    if (!parsed) fail("[controller] " + key + " must be 's0,alpha,beta', got: " + value);
    parts.push_back(*parsed);
  }
  if (parts.size() != 3) {
    fail("[controller] " + key + " must be 's0,alpha,beta', got: " + value);
  }
  return format_double(parts[0]) + "," + format_double(parts[1]) + "," +
         format_double(parts[2]);
}

WorkloadDecl::Kind parse_workload_kind(const std::string& kind) {
  if (kind == "jmeter") return WorkloadDecl::Kind::kJmeter;
  if (kind == "rubbos") return WorkloadDecl::Kind::kRubbos;
  if (kind == "trace") return WorkloadDecl::Kind::kTrace;
  fail("unknown workload kind '" + kind + "' (expected jmeter|rubbos|trace)");
}

ControllerDecl::Kind parse_controller_kind(const std::string& kind) {
  if (kind == "none") return ControllerDecl::Kind::kNone;
  if (kind == "ec2") return ControllerDecl::Kind::kEc2;
  if (kind == "dcm") return ControllerDecl::Kind::kDcm;
  if (kind == "predictive") return ControllerDecl::Kind::kPredictive;
  if (kind == "queueing") return ControllerDecl::Kind::kQueueing;
  if (kind == "pi") return ControllerDecl::Kind::kPi;
  fail("unknown controller kind '" + kind +
       "' (expected none|ec2|dcm|predictive|queueing|pi)");
}

const char* workload_kind_name(WorkloadDecl::Kind kind) {
  switch (kind) {
    case WorkloadDecl::Kind::kJmeter:
      return "jmeter";
    case WorkloadDecl::Kind::kRubbos:
      return "rubbos";
    case WorkloadDecl::Kind::kTrace:
      return "trace";
  }
  fail("corrupt workload kind");
}

const char* controller_kind_name(ControllerDecl::Kind kind) {
  switch (kind) {
    case ControllerDecl::Kind::kNone:
      return "none";
    case ControllerDecl::Kind::kEc2:
      return "ec2";
    case ControllerDecl::Kind::kDcm:
      return "dcm";
    case ControllerDecl::Kind::kPredictive:
      return "predictive";
    case ControllerDecl::Kind::kQueueing:
      return "queueing";
    case ControllerDecl::Kind::kPi:
      return "pi";
  }
  fail("corrupt controller kind");
}

// The full vocabulary a scenario may use, conditioned on the declared
// kinds — anything outside this set is a spelling mistake, not a default.
std::map<std::string, std::set<std::string>> allowed_keys(WorkloadDecl::Kind workload,
                                                          ControllerDecl::Kind controller,
                                                          core::TopologySpec::Kind topology,
                                                          bool resilience_enabled,
                                                          bool trace_enabled) {
  std::map<std::string, std::set<std::string>> allowed;
  allowed["scenario"] = {"name", "summary"};
  allowed["hardware"] = {"web", "app", "db"};
  allowed["soft"] = {"web_threads", "app_threads", "db_connections"};
  allowed["run"] = {"duration", "warmup", "max_vms", "seed"};

  std::set<std::string>& topology_keys = allowed["topology"];
  topology_keys.insert("kind");
  if (topology == core::TopologySpec::Kind::kGraph) {
    topology_keys.insert({"nodes", "edges"});
  }
  allowed["faults"] = {"crash_mttf",          "slowdown_mttf",
                       "slowdown_factor",     "slowdown_duration",
                       "telemetry_loss_mttf", "telemetry_loss_duration",
                       "agent_silence_mttf",  "agent_silence_duration"};

  std::set<std::string>& resilience_keys = allowed["resilience"];
  resilience_keys.insert("enabled");
  if (resilience_enabled) {
    resilience_keys.insert({"client_timeout", "client_retries", "client_backoff",
                            "subrequest_timeout", "subrequest_retries", "health_period",
                            "health_failure_threshold", "replace_failed"});
    if (controller == ControllerDecl::Kind::kDcm) {
      resilience_keys.insert({"watchdog_periods", "min_fit_r2"});
    }
  }

  std::set<std::string>& trace_keys = allowed["trace"];
  trace_keys.insert("enabled");
  if (trace_enabled) trace_keys.insert("rate");

  std::set<std::string>& workload_keys = allowed["workload"];
  workload_keys.insert("kind");
  switch (workload) {
    case WorkloadDecl::Kind::kJmeter:
      workload_keys.insert("users");
      break;
    case WorkloadDecl::Kind::kRubbos:
      workload_keys.insert("users");
      workload_keys.insert("think_seconds");
      break;
    case WorkloadDecl::Kind::kTrace:
      workload_keys.insert("think_seconds");
      workload_keys.insert("trace");
      workload_keys.insert("peak_users");
      break;
  }

  std::set<std::string>& controller_keys = allowed["controller"];
  controller_keys.insert("kind");
  if (controller != ControllerDecl::Kind::kNone) {
    controller_keys.insert({"control_period", "scale_out_util", "scale_in_util",
                            "scale_in_consecutive", "hysteresis"});
  }
  // The bool predictive trigger and the SLA trigger are ec2/dcm hardware-rule
  // extensions; the zoo kinds have their own trigger shapes.
  if (controller == ControllerDecl::Kind::kEc2 || controller == ControllerDecl::Kind::kDcm) {
    controller_keys.insert({"predictive", "sla_rt"});
  }
  if (controller == ControllerDecl::Kind::kDcm) {
    controller_keys.insert({"headroom", "online_estimation", "app_model", "db_model"});
  }
  if (controller == ControllerDecl::Kind::kPredictive) {
    controller_keys.insert({"alpha", "beta", "horizon"});
  }
  if (controller == ControllerDecl::Kind::kQueueing ||
      controller == ControllerDecl::Kind::kPi) {
    controller_keys.insert("target_util");
  }
  if (controller == ControllerDecl::Kind::kPi) {
    controller_keys.insert({"kp", "ki", "deadband"});
  }
  return allowed;
}

void reject_unknown_keys(const Config& config, WorkloadDecl::Kind workload,
                         ControllerDecl::Kind controller, core::TopologySpec::Kind topology,
                         bool resilience_enabled, bool trace_enabled) {
  const auto allowed =
      allowed_keys(workload, controller, topology, resilience_enabled, trace_enabled);
  for (const auto& [section, keys] : config.sections()) {
    const auto entry = allowed.find(section);
    if (entry == allowed.end()) {
      fail("unknown section [" + section + "]");
    }
    for (const auto& [key, value] : keys) {
      if (entry->second.count(key) == 0) {
        fail("unknown key '" + key + "' in [" + section + "] (workload kind " +
             workload_kind_name(workload) + ", controller kind " +
             controller_kind_name(controller) + ")");
      }
    }
  }
}

}  // namespace

bool scenario_key_applies(const Config& config, const std::string& section,
                          const std::string& key) {
  const auto allowed =
      allowed_keys(parse_workload_kind(config.get_string("workload", "kind", "rubbos")),
                   parse_controller_kind(config.get_string("controller", "kind", "none")),
                   core::topology_spec_from_config(config).kind,
                   config.get_bool("resilience", "enabled", false),
                   config.get_bool("trace", "enabled", false));
  const auto entry = allowed.find(section);
  return entry != allowed.end() && entry->second.count(key) > 0;
}

Scenario Scenario::from_config(const Config& config) {
  Scenario scenario;
  scenario.workload.kind =
      parse_workload_kind(config.get_string("workload", "kind", "rubbos"));
  scenario.controller.kind =
      parse_controller_kind(config.get_string("controller", "kind", "none"));
  scenario.resilience.enabled = config.get_bool("resilience", "enabled", false);
  scenario.trace.enabled = config.get_bool("trace", "enabled", false);
  scenario.topology = core::topology_spec_from_config(config);
  reject_unknown_keys(config, scenario.workload.kind, scenario.controller.kind,
                      scenario.topology.kind, scenario.resilience.enabled,
                      scenario.trace.enabled);

  scenario.name = config.get_string("scenario", "name", "unnamed");
  scenario.summary = config.get_string("scenario", "summary", "");

  scenario.hardware.web = static_cast<int>(config.get_int("hardware", "web", 1));
  scenario.hardware.app = static_cast<int>(config.get_int("hardware", "app", 1));
  scenario.hardware.db = static_cast<int>(config.get_int("hardware", "db", 1));

  scenario.soft.web_threads = static_cast<int>(config.get_int("soft", "web_threads", 1000));
  scenario.soft.app_threads = static_cast<int>(config.get_int("soft", "app_threads", 100));
  scenario.soft.db_connections =
      static_cast<int>(config.get_int("soft", "db_connections", 80));

  scenario.workload.users = static_cast<int>(config.get_int("workload", "users", 100));
  scenario.workload.think_seconds = config.get_double("workload", "think_seconds", 3.0);
  scenario.workload.trace = config.get_string("workload", "trace", "large-variation");
  scenario.workload.peak_users =
      static_cast<int>(config.get_int("workload", "peak_users", 350));

  ControllerDecl& controller = scenario.controller;
  controller.control_period_seconds = config.get_double("controller", "control_period", 15.0);
  controller.scale_out_util = config.get_double("controller", "scale_out_util", 0.80);
  controller.scale_in_util = config.get_double("controller", "scale_in_util", 0.40);
  controller.scale_in_consecutive =
      static_cast<int>(config.get_int("controller", "scale_in_consecutive", 3));
  controller.hysteresis = config.get_double("controller", "hysteresis", 0.0);
  if (controller.hysteresis < 0.0) fail("[controller] hysteresis must be >= 0");
  controller.predictive = config.get_bool("controller", "predictive", false);
  controller.sla_rt = config.get_double("controller", "sla_rt", 0.0);
  controller.headroom = config.get_double("controller", "headroom", 1.0);
  controller.online_estimation = config.get_bool("controller", "online_estimation", false);
  if (config.has("controller", "app_model")) {
    controller.app_model =
        normalize_model_triple("app_model", config.get_string("controller", "app_model"));
  }
  if (config.has("controller", "db_model")) {
    controller.db_model =
        normalize_model_triple("db_model", config.get_string("controller", "db_model"));
  }
  controller.alpha = config.get_double("controller", "alpha", 0.5);
  controller.beta = config.get_double("controller", "beta", 0.3);
  controller.horizon = static_cast<int>(config.get_int("controller", "horizon", 2));
  if (controller.kind == ControllerDecl::Kind::kPredictive) {
    if (controller.alpha <= 0.0 || controller.alpha > 1.0) {
      fail("[controller] alpha must be in (0, 1]");
    }
    if (controller.beta < 0.0 || controller.beta > 1.0) {
      fail("[controller] beta must be in [0, 1]");
    }
    if (controller.horizon < 1) fail("[controller] horizon must be >= 1");
  }
  controller.target_util = config.get_double("controller", "target_util", 0.6);
  if ((controller.kind == ControllerDecl::Kind::kQueueing ||
       controller.kind == ControllerDecl::Kind::kPi) &&
      (controller.target_util <= 0.0 || controller.target_util >= 1.0)) {
    fail("[controller] target_util must be in (0, 1)");
  }
  controller.kp = config.get_double("controller", "kp", 2.0);
  controller.ki = config.get_double("controller", "ki", 0.5);
  controller.deadband = config.get_double("controller", "deadband", 0.5);
  if (controller.kind == ControllerDecl::Kind::kPi) {
    if (controller.kp < 0.0) fail("[controller] kp must be >= 0");
    if (controller.ki < 0.0) fail("[controller] ki must be >= 0");
    if (controller.deadband < 0.0) fail("[controller] deadband must be >= 0");
  }

  FaultDecl& faults = scenario.faults;
  faults.crash_mttf = config.get_double("faults", "crash_mttf", 0.0);
  faults.slowdown_mttf = config.get_double("faults", "slowdown_mttf", 0.0);
  faults.slowdown_factor = config.get_double("faults", "slowdown_factor", 0.25);
  faults.slowdown_duration = config.get_double("faults", "slowdown_duration", 30.0);
  faults.telemetry_loss_mttf = config.get_double("faults", "telemetry_loss_mttf", 0.0);
  faults.telemetry_loss_duration =
      config.get_double("faults", "telemetry_loss_duration", 30.0);
  faults.agent_silence_mttf = config.get_double("faults", "agent_silence_mttf", 0.0);
  faults.agent_silence_duration =
      config.get_double("faults", "agent_silence_duration", 30.0);

  if (scenario.resilience.enabled) {
    ResilienceDecl& res = scenario.resilience;
    res.client_timeout = config.get_double("resilience", "client_timeout", 2.0);
    res.client_retries = static_cast<int>(config.get_int("resilience", "client_retries", 2));
    res.client_backoff = config.get_double("resilience", "client_backoff", 0.25);
    res.subrequest_timeout = config.get_double("resilience", "subrequest_timeout", 1.0);
    res.subrequest_retries =
        static_cast<int>(config.get_int("resilience", "subrequest_retries", 1));
    res.health_period = config.get_double("resilience", "health_period", 5.0);
    res.health_failure_threshold =
        static_cast<int>(config.get_int("resilience", "health_failure_threshold", 3));
    res.replace_failed = config.get_bool("resilience", "replace_failed", true);
    if (scenario.controller.kind == ControllerDecl::Kind::kDcm) {
      res.watchdog_periods =
          static_cast<int>(config.get_int("resilience", "watchdog_periods", 2));
      res.min_fit_r2 = config.get_double("resilience", "min_fit_r2", 0.0);
    }
  }

  if (scenario.trace.enabled) {
    scenario.trace.rate = config.get_double("trace", "rate", 1.0);
    if (scenario.trace.rate < 0.0 || scenario.trace.rate > 1.0) {
      fail("[trace] rate must be in [0, 1]");
    }
  }

  scenario.duration_seconds = config.get_double("run", "duration", 300.0);
  scenario.warmup_seconds = config.get_double("run", "warmup", 30.0);
  scenario.max_vms = static_cast<int>(config.get_int("run", "max_vms", 8));
  scenario.seed = static_cast<uint64_t>(config.get_int("run", "seed", 1));

  if (scenario.topology.kind == core::TopologySpec::Kind::kGraph) {
    // Eager validation: building the ServiceGraph rejects duplicate names,
    // unknown roles/endpoints, cycles, unreachable nodes and oversized
    // fan-outs here, at parse time.
    core::build_service_graph(scenario.topology, scenario.hardware, scenario.soft,
                              scenario.max_vms);
  }
  return scenario;
}

Scenario Scenario::parse(const std::string& text) {
  return from_config(Config::parse(text));
}

Scenario Scenario::load(const std::string& path) {
  return from_config(Config::load(path));
}

Config Scenario::to_config() const {
  Config config;
  config.set("scenario", "name", name);
  if (!summary.empty()) config.set("scenario", "summary", summary);

  config.set("hardware", "web", format_int(hardware.web));
  config.set("hardware", "app", format_int(hardware.app));
  config.set("hardware", "db", format_int(hardware.db));

  config.set("soft", "web_threads", format_int(soft.web_threads));
  config.set("soft", "app_threads", format_int(soft.app_threads));
  config.set("soft", "db_connections", format_int(soft.db_connections));

  // chain3 is canonical as an absent [topology] section.
  if (topology.kind != core::TopologySpec::Kind::kChain3) {
    config.set("topology", "kind", core::topology_kind_name(topology.kind));
    if (topology.kind == core::TopologySpec::Kind::kGraph) {
      config.set("topology", "nodes", core::topology_nodes_to_string(topology));
      config.set("topology", "edges", core::topology_edges_to_string(topology));
    }
  }

  config.set("workload", "kind", workload_kind_name(workload.kind));
  switch (workload.kind) {
    case WorkloadDecl::Kind::kJmeter:
      config.set("workload", "users", format_int(workload.users));
      break;
    case WorkloadDecl::Kind::kRubbos:
      config.set("workload", "users", format_int(workload.users));
      config.set("workload", "think_seconds", format_double(workload.think_seconds));
      break;
    case WorkloadDecl::Kind::kTrace:
      config.set("workload", "trace", workload.trace);
      config.set("workload", "peak_users", format_int(workload.peak_users));
      config.set("workload", "think_seconds", format_double(workload.think_seconds));
      break;
  }

  config.set("controller", "kind", controller_kind_name(controller.kind));
  if (controller.kind != ControllerDecl::Kind::kNone) {
    config.set("controller", "control_period", format_double(controller.control_period_seconds));
    config.set("controller", "scale_out_util", format_double(controller.scale_out_util));
    config.set("controller", "scale_in_util", format_double(controller.scale_in_util));
    config.set("controller", "scale_in_consecutive",
               format_int(controller.scale_in_consecutive));
    config.set("controller", "hysteresis", format_double(controller.hysteresis));
  }
  if (controller.kind == ControllerDecl::Kind::kEc2 ||
      controller.kind == ControllerDecl::Kind::kDcm) {
    config.set("controller", "predictive", controller.predictive ? "true" : "false");
    config.set("controller", "sla_rt", format_double(controller.sla_rt));
  }
  if (controller.kind == ControllerDecl::Kind::kPredictive) {
    config.set("controller", "alpha", format_double(controller.alpha));
    config.set("controller", "beta", format_double(controller.beta));
    config.set("controller", "horizon", format_int(controller.horizon));
  }
  if (controller.kind == ControllerDecl::Kind::kQueueing ||
      controller.kind == ControllerDecl::Kind::kPi) {
    config.set("controller", "target_util", format_double(controller.target_util));
  }
  if (controller.kind == ControllerDecl::Kind::kPi) {
    config.set("controller", "kp", format_double(controller.kp));
    config.set("controller", "ki", format_double(controller.ki));
    config.set("controller", "deadband", format_double(controller.deadband));
  }
  if (controller.kind == ControllerDecl::Kind::kDcm) {
    config.set("controller", "headroom", format_double(controller.headroom));
    config.set("controller", "online_estimation",
               controller.online_estimation ? "true" : "false");
    if (!controller.app_model.empty()) {
      config.set("controller", "app_model", controller.app_model);
    }
    if (!controller.db_model.empty()) {
      config.set("controller", "db_model", controller.db_model);
    }
  }

  config.set("faults", "crash_mttf", format_double(faults.crash_mttf));
  config.set("faults", "slowdown_mttf", format_double(faults.slowdown_mttf));
  config.set("faults", "slowdown_factor", format_double(faults.slowdown_factor));
  config.set("faults", "slowdown_duration", format_double(faults.slowdown_duration));
  config.set("faults", "telemetry_loss_mttf", format_double(faults.telemetry_loss_mttf));
  config.set("faults", "telemetry_loss_duration",
             format_double(faults.telemetry_loss_duration));
  config.set("faults", "agent_silence_mttf", format_double(faults.agent_silence_mttf));
  config.set("faults", "agent_silence_duration",
             format_double(faults.agent_silence_duration));

  config.set("resilience", "enabled", resilience.enabled ? "true" : "false");
  if (resilience.enabled) {
    config.set("resilience", "client_timeout", format_double(resilience.client_timeout));
    config.set("resilience", "client_retries", format_int(resilience.client_retries));
    config.set("resilience", "client_backoff", format_double(resilience.client_backoff));
    config.set("resilience", "subrequest_timeout",
               format_double(resilience.subrequest_timeout));
    config.set("resilience", "subrequest_retries", format_int(resilience.subrequest_retries));
    config.set("resilience", "health_period", format_double(resilience.health_period));
    config.set("resilience", "health_failure_threshold",
               format_int(resilience.health_failure_threshold));
    config.set("resilience", "replace_failed", resilience.replace_failed ? "true" : "false");
    if (controller.kind == ControllerDecl::Kind::kDcm) {
      config.set("resilience", "watchdog_periods", format_int(resilience.watchdog_periods));
      config.set("resilience", "min_fit_r2", format_double(resilience.min_fit_r2));
    }
  }

  if (trace.enabled) {
    config.set("trace", "enabled", "true");
    config.set("trace", "rate", format_double(trace.rate));
  }

  config.set("run", "duration", format_double(duration_seconds));
  config.set("run", "warmup", format_double(warmup_seconds));
  config.set("run", "max_vms", format_int(max_vms));
  config.set("run", "seed", format_int(static_cast<int64_t>(seed)));
  return config;
}

std::string Scenario::to_text() const { return to_config().to_text(); }

core::ExperimentConfig Scenario::experiment() const {
  return core::experiment_from_config(to_config());
}

}  // namespace dcm::scenario
