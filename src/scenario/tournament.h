// Controller tournament: race the whole auto-scaler zoo across a set of
// scenarios (including fault plans) and rank the field.
//
// Each scenario becomes one deterministic `SweepRunner` sweep with
// `controller.kind` as the only axis and `SeedPolicy::kFixed`, so every
// controller faces the *identical* synthesized trace, client randomness and
// fault schedule — a paired comparison, not a statistical one. Cells are
// scored on what the paper actually argues about:
//
//   * SLO-violation seconds — post-warmup seconds whose mean response time
//     exceeded the SLA bound (quality),
//   * VM-hours — provisioned VM time across the scalable tiers (cost),
//   * actuation churn — VM-level scale_out + scale_in actions (stability).
//
// Ranking is lexicographic on exactly that triple (violations, then cost,
// then churn; controller name as the final deterministic tie-break) within
// each scenario; the overall standing orders controllers by the sum of
// their per-scenario ranks. The whole scorecard folds into one FNV-1a
// digest, which CI compares across `--jobs` counts — the tournament
// inherits the sweep determinism contract wholesale.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "scenario/sweep.h"

namespace dcm::scenario {

struct TournamentOptions {
  /// Registry names or INI paths. The default trio covers a steady load, the
  /// paper's Fig. 5 trace, and a fault plan with resilience armed.
  std::vector<std::string> scenarios = {"quickstart", "fig5", "chaos-resilience"};
  /// Controller-registry names; empty = every registered controller.
  std::vector<std::string> controllers;
  /// "section.key" → value overrides applied to every base scenario (the
  /// CLI's --set), e.g. shortening run.duration for smoke tests.
  std::vector<std::pair<std::string, std::string>> overrides;
  /// Worker threads per scenario sweep; <= 0 = hardware concurrency.
  int jobs = 1;
};

struct TournamentCell {
  std::string scenario;
  std::string controller;
  int slo_violation_seconds = 0;
  double vm_hours = 0.0;
  int actuation_churn = 0;  // VM-level scale_out + scale_in actions
  int soft_actions = 0;     // set_stp + set_conns (DCM's soft-resource churn)
  double mean_response_time = 0.0;
  double mean_throughput = 0.0;
  uint64_t result_digest = 0;
  int rank = 0;  // 1 = best within its scenario
};

struct TournamentStanding {
  std::string controller;
  int rank_points = 0;  // sum of per-scenario ranks; lower is better
  int total_slo_violation_seconds = 0;
  double total_vm_hours = 0.0;
  int total_actuation_churn = 0;
};

struct Tournament {
  std::vector<std::string> scenarios;    // in play order
  std::vector<std::string> controllers;  // in axis order
  /// Scenario-major, controller-minor (the sweep's run order); `rank` holds
  /// each cell's place within its scenario.
  std::vector<TournamentCell> cells;
  /// Overall standing, best first.
  std::vector<TournamentStanding> standings;
};

/// Runs the tournament. Throws std::runtime_error on an unknown scenario,
/// std::invalid_argument on an unknown controller name.
Tournament run_tournament(const TournamentOptions& options);

/// FNV-1a over the whole scorecard (names, every cell's scores and result
/// digest, the final standing). Bit-identical for any --jobs.
uint64_t scorecard_digest(const Tournament& tournament);

/// dcm-tournament-v1 JSON: schema marker, scenario/controller lists, cells,
/// standings and the scorecard digest.
void write_tournament_json(std::ostream& out, const Tournament& tournament);

/// Flat cells CSV (scenario, controller, scores, digest, rank), scenario-
/// major in rank order.
void write_tournament_csv(std::ostream& out, const Tournament& tournament);

/// Console scorecard: one ranked table per scenario plus the standings.
void print_tournament(const Tournament& tournament);

}  // namespace dcm::scenario
