#include "scenario/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "common/rng.h"
#include "common/strings.h"

namespace dcm::scenario {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("sweep: " + message);
}

bool is_seed_override(const std::vector<std::pair<std::string, std::string>>& overrides) {
  for (const auto& [path, value] : overrides) {
    if (path == "run.seed") return true;
  }
  return false;
}

// Applies one grid point on top of the base emission and re-validates
// strictly. A kind override (workload.kind / controller.kind) changes which
// keys are legal, so base-emitted keys that stop applying are dropped — but
// a key an *override* names is always kept, so a typo'd override still hits
// the strict check in from_config instead of being silently pruned.
Scenario scenario_for_point(const Scenario& base,
                            const std::vector<std::pair<std::string, std::string>>& overrides) {
  Config config = base.to_config();
  for (const auto& [path, value] : overrides) {
    const size_t dot = path.find('.');
    config.set(path.substr(0, dot), path.substr(dot + 1), value);
  }

  Config rebuilt;
  for (const auto& [section, keys] : config.sections()) {
    for (const auto& [key, value] : keys) {
      const bool from_override = [&] {
        for (const auto& [path, v] : overrides) {
          if (path == section + "." + key) return true;
        }
        return false;
      }();
      if (from_override || scenario_key_applies(config, section, key)) {
        rebuilt.set(section, key, value);
      }
    }
  }
  return Scenario::from_config(rebuilt);
}

}  // namespace

SweepAxis parse_axis(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos) fail("axis '" + spec + "' needs section.key=v1,v2,...");
  const std::string path = std::string(trim(spec.substr(0, eq)));
  const size_t dot = path.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == path.size()) {
    fail("axis '" + spec + "' needs a section.key target");
  }
  SweepAxis axis;
  axis.section = path.substr(0, dot);
  axis.key = path.substr(dot + 1);
  for (const auto& field : split(spec.substr(eq + 1), ',')) {
    const std::string value = std::string(trim(field));
    if (value.empty()) fail("axis '" + spec + "' has an empty value");
    axis.values.push_back(value);
  }
  if (axis.values.empty()) fail("axis '" + spec + "' has no values");
  return axis;
}

std::vector<PlannedRun> expand_grid(const SweepPlan& plan) {
  size_t total = 1;
  for (const auto& axis : plan.axes) {
    if (axis.section.empty() || axis.key.empty()) fail("axis with empty section.key");
    if (axis.values.empty()) {
      fail("axis " + axis.section + "." + axis.key + " has no values");
    }
    total *= axis.values.size();
  }

  std::vector<PlannedRun> runs;
  runs.reserve(total);
  for (size_t index = 0; index < total; ++index) {
    PlannedRun run;
    run.index = index;
    // Mixed-radix decode, last axis fastest: index = ((i0*n1)+i1)*n2+...
    size_t remainder = index;
    for (size_t a = plan.axes.size(); a-- > 0;) {
      const SweepAxis& axis = plan.axes[a];
      const size_t pick = remainder % axis.values.size();
      remainder /= axis.values.size();
      run.overrides.emplace_back(axis.section + "." + axis.key, axis.values[pick]);
    }
    // Decoding walked axes back-to-front; present overrides in axis order.
    std::reverse(run.overrides.begin(), run.overrides.end());

    run.scenario = scenario_for_point(plan.base, run.overrides);
    if (plan.seed_policy == SeedPolicy::kDerivePerRun && !is_seed_override(run.overrides)) {
      run.scenario.seed = derive_seed(plan.base.seed, static_cast<uint64_t>(index));
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

SweepRunner::SweepRunner(SweepPlan plan, int jobs) : planned_(expand_grid(plan)), jobs_(jobs) {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

std::vector<SweepRun> SweepRunner::run() {
  const size_t total = planned_.size();
  std::vector<SweepRun> results(total);
  std::vector<std::exception_ptr> errors(total);

  const auto execute = [&](size_t index) {
    const PlannedRun& planned = planned_[index];
    SweepRun& out = results[index];
    out.index = planned.index;
    out.scenario = planned.scenario;
    out.overrides = planned.overrides;
    try {
      out.result = core::run_experiment(planned.scenario.experiment());
    } catch (...) {
      errors[index] = std::current_exception();
    }
  };

  const size_t workers =
      std::min(static_cast<size_t>(jobs_), total == 0 ? size_t{1} : total);
  if (workers <= 1) {
    for (size_t i = 0; i < total; ++i) execute(i);
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
          execute(i);
        }
      });
    }
    for (auto& thread : pool) thread.join();
  }

  for (size_t i = 0; i < total; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  return results;
}

}  // namespace dcm::scenario
