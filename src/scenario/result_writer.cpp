#include "scenario/result_writer.h"

#include <bit>
#include <cstdio>
#include <ostream>

#include "common/csv.h"
#include "common/strings.h"
#include "common/table.h"
#include "sim/time.h"

namespace dcm::scenario {
namespace {

double bucket_mean(const std::vector<metrics::BucketStat>& buckets, size_t i) {
  return i < buckets.size() ? buckets[i].stat.mean() : 0.0;
}

double bucket_sum(const std::vector<metrics::BucketStat>& buckets, size_t i) {
  return i < buckets.size() ? buckets[i].stat.sum() : 0.0;
}

// Minimal JSON string escaping: the fields we emit are identifiers, INI
// values and human summaries — control characters, quotes and backslashes
// are all that can occur.
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  // %.17g round-trips IEEE doubles; summaries are data, not display.
  return str_format("%.17g", value);
}

void print_actions(const core::ExperimentResult& result) {
  for (const auto& action : result.actions) {
    std::printf("  %8.1fs  %-7s %-10s %s\n", sim::to_seconds(action.time),
                action.tier.c_str(), action.action.c_str(), action.detail.c_str());
  }
}

// Span tiers map onto the run's tier names; kClientTier is the client side.
std::string trace_tier_name(const core::ExperimentResult& result, int tier) {
  if (tier < 0) return "client";
  if (static_cast<size_t>(tier) < result.tiers.size()) return result.tiers[tier].name;
  return "tier" + std::to_string(tier);
}

}  // namespace

void Fnv1a::mix_bytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash_ ^= bytes[i];
    hash_ *= 1099511628211ull;
  }
}

void Fnv1a::mix(double v) { mix(std::bit_cast<uint64_t>(v)); }

void mix_series(Fnv1a& h, const metrics::TimeSeries& series) {
  h.mix(static_cast<uint64_t>(series.buckets().size()));
  for (const auto& bucket : series.buckets()) {
    h.mix(bucket.start);
    h.mix(bucket.stat.count());
    h.mix(bucket.stat.mean());
    h.mix(bucket.stat.min());
    h.mix(bucket.stat.max());
  }
}

uint64_t result_digest(const core::ExperimentResult& result) {
  Fnv1a h;
  h.mix(result.completed);
  h.mix(result.errors);
  h.mix(result.timeouts);
  h.mix(result.retries);
  h.mix(result.goodput);
  h.mix(result.error_rate);
  mix_series(h, result.client.response_time_series());
  mix_series(h, result.client.throughput_series());
  mix_series(h, result.client.error_series());
  mix_series(h, result.client.goodput_series());
  for (const auto& tier : result.tiers) {
    h.mix(tier.name);
    mix_series(h, tier.provisioned_vms);
    mix_series(h, tier.cpu_util);
    mix_series(h, tier.concurrency);
  }
  h.mix(static_cast<uint64_t>(result.actions.size()));
  for (const auto& action : result.actions) {
    h.mix(action.time);
    h.mix(action.tier);
    h.mix(action.action);
    h.mix(action.detail);
  }
  h.mix(static_cast<uint64_t>(result.fault_log.size()));
  for (const auto& entry : result.fault_log) {
    h.mix(entry.at);
    h.mix(entry.kind);
    h.mix(entry.target);
    h.mix(entry.detail);
  }
  return h.value();
}

uint64_t trace_digest(const trace::TraceReport& report) {
  Fnv1a h;
  h.mix(static_cast<uint64_t>(report.spec.enabled ? 1 : 0));
  h.mix(report.spec.rate);
  h.mix(report.sampled);
  h.mix(report.finalized);
  h.mix(report.completed);
  h.mix(static_cast<uint64_t>(report.traces.size()));
  for (const auto& context : report.traces) {
    h.mix(context->request_id);
    h.mix(static_cast<int64_t>(context->servlet));
    h.mix(context->started);
    h.mix(context->finished);
    h.mix(static_cast<uint64_t>(context->ok ? 1 : 0));
    h.mix(static_cast<int64_t>(context->attempts));
    h.mix(static_cast<uint64_t>(context->spans.size()));
    for (const auto& span : context->spans) {
      h.mix(static_cast<uint64_t>(span.kind));
      h.mix(static_cast<int64_t>(span.tier));
      h.mix(static_cast<int64_t>(span.edge));
      h.mix(span.start);
      h.mix(span.end);
      h.mix(span.value);
    }
  }
  h.mix(static_cast<uint64_t>(report.annotations.size()));
  for (const auto& annotation : report.annotations) {
    h.mix(annotation.at);
    h.mix(annotation.kind);
    h.mix(annotation.detail);
  }
  h.mix(static_cast<uint64_t>(report.attribution.size()));
  for (const auto& row : report.attribution) {
    h.mix(static_cast<int64_t>(row.tier));
    h.mix(static_cast<uint64_t>(row.cause));
    h.mix(row.traces);
    h.mix(row.total_seconds);
    h.mix(row.mean_seconds);
    h.mix(row.p50_share);
    h.mix(row.p95_share);
    h.mix(row.p99_share);
  }
  h.mix(static_cast<uint64_t>(report.edge_attribution.size()));
  for (const auto& row : report.edge_attribution) {
    h.mix(static_cast<int64_t>(row.tier));
    h.mix(static_cast<int64_t>(row.edge));
    h.mix(row.traces);
    h.mix(row.total_seconds);
    h.mix(row.mean_seconds);
    h.mix(row.p50_share);
    h.mix(row.p95_share);
    h.mix(row.p99_share);
  }
  return h.value();
}

uint64_t sweep_digest(const std::vector<SweepRun>& runs) {
  Fnv1a h;
  h.mix(static_cast<uint64_t>(runs.size()));
  for (const auto& run : runs) {
    h.mix(static_cast<uint64_t>(run.index));
    h.mix(run.scenario.seed);
    h.mix(result_digest(run.result));
  }
  return h.value();
}

void write_result_json(std::ostream& out, const std::string& name,
                       const std::vector<SweepRun>& runs) {
  out << "{\n"
      << "  \"schema\": \"dcm-result-v1\",\n"
      << "  \"name\": \"" << json_escape(name) << "\",\n"
      << "  \"digest\": \"" << sweep_digest(runs) << "\",\n"
      << "  \"runs\": [";
  for (size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& run = runs[i];
    const core::ExperimentResult& r = run.result;
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n"
        << "      \"index\": " << run.index << ",\n"
        << "      \"scenario\": \"" << json_escape(run.scenario.name) << "\",\n"
        << "      \"seed\": " << run.scenario.seed << ",\n"
        << "      \"digest\": \"" << result_digest(r) << "\",\n"
        << "      \"overrides\": {";
    for (size_t o = 0; o < run.overrides.size(); ++o) {
      out << (o == 0 ? "" : ", ") << "\"" << json_escape(run.overrides[o].first)
          << "\": \"" << json_escape(run.overrides[o].second) << "\"";
    }
    out << "},\n"
        << "      \"summary\": {\n"
        << "        \"mean_throughput\": " << json_number(r.mean_throughput) << ",\n"
        << "        \"mean_response_time\": " << json_number(r.mean_response_time) << ",\n"
        << "        \"p95_response_time\": " << json_number(r.p95_response_time) << ",\n"
        << "        \"max_response_time\": " << json_number(r.max_response_time) << ",\n"
        << "        \"completed\": " << r.completed << ",\n"
        << "        \"errors\": " << r.errors << ",\n"
        << "        \"timeouts\": " << r.timeouts << ",\n"
        << "        \"retries\": " << r.retries << ",\n"
        << "        \"goodput\": " << json_number(r.goodput) << ",\n"
        << "        \"error_rate\": " << json_number(r.error_rate) << ",\n"
        << "        \"sla_violation_fraction\": " << json_number(r.sla_violation_fraction)
        << ",\n"
        << "        \"total_vm_seconds\": " << json_number(r.total_vm_seconds) << ",\n"
        << "        \"requests_per_vm_second\": " << json_number(r.requests_per_vm_second)
        << ",\n"
        << "        \"scale_outs\": " << r.action_count("scale_out") << ",\n"
        << "        \"scale_ins\": " << r.action_count("scale_in") << ",\n"
        << "        \"soft_actions\": "
        << r.action_count("set_stp") + r.action_count("set_conns") << "\n"
        << "      },\n"
        << "      \"faults\": [";
    for (size_t f = 0; f < r.fault_log.size(); ++f) {
      const auto& entry = r.fault_log[f];
      out << (f == 0 ? "\n" : ",\n")
          << "        {\"t\": " << json_number(sim::to_seconds(entry.at))
          << ", \"kind\": \"" << json_escape(entry.kind) << "\", \"target\": \""
          << json_escape(entry.target) << "\", \"detail\": \"" << json_escape(entry.detail)
          << "\"}";
    }
    out << (r.fault_log.empty() ? "]" : "\n      ]");
    if (r.trace_report != nullptr) {
      const trace::TraceReport& tr = *r.trace_report;
      out << ",\n      \"trace\": {\n"
          << "        \"rate\": " << json_number(tr.spec.rate) << ",\n"
          << "        \"sampled\": " << tr.sampled << ",\n"
          << "        \"finalized\": " << tr.finalized << ",\n"
          << "        \"completed\": " << tr.completed << ",\n"
          << "        \"digest\": \"" << trace_digest(tr) << "\",\n"
          << "        \"attribution\": [";
      for (size_t a = 0; a < tr.attribution.size(); ++a) {
        const auto& arow = tr.attribution[a];
        out << (a == 0 ? "\n" : ",\n")
            << "          {\"tier\": \"" << json_escape(trace_tier_name(r, arow.tier))
            << "\", \"cause\": \"" << trace::span_kind_name(arow.cause)
            << "\", \"traces\": " << arow.traces
            << ", \"total_seconds\": " << json_number(arow.total_seconds)
            << ", \"mean_seconds\": " << json_number(arow.mean_seconds)
            << ", \"p50_share\": " << json_number(arow.p50_share)
            << ", \"p95_share\": " << json_number(arow.p95_share)
            << ", \"p99_share\": " << json_number(arow.p99_share) << "}";
      }
      out << (tr.attribution.empty() ? "]" : "\n        ]") << ",\n"
          << "        \"edge_attribution\": [";
      for (size_t a = 0; a < tr.edge_attribution.size(); ++a) {
        const auto& erow = tr.edge_attribution[a];
        out << (a == 0 ? "\n" : ",\n")
            << "          {\"tier\": \"" << json_escape(trace_tier_name(r, erow.tier))
            << "\", \"edge\": " << erow.edge
            << ", \"traces\": " << erow.traces
            << ", \"total_seconds\": " << json_number(erow.total_seconds)
            << ", \"mean_seconds\": " << json_number(erow.mean_seconds)
            << ", \"p50_share\": " << json_number(erow.p50_share)
            << ", \"p95_share\": " << json_number(erow.p95_share)
            << ", \"p99_share\": " << json_number(erow.p99_share) << "}";
      }
      out << (tr.edge_attribution.empty() ? "]\n" : "\n        ]\n") << "      }";
    }
    out << "\n    }";
  }
  out << "\n  ]\n}\n";
}

void write_timeline_csv(std::ostream& out, const core::ExperimentResult& result,
                        const workload::Trace* trace) {
  CsvWriter writer(out);
  std::vector<std::string> header = {"t_s"};
  if (trace != nullptr) header.push_back("users");
  header.push_back("rt_ms");
  header.push_back("throughput");
  header.push_back("errors");
  header.push_back("goodput");
  for (const auto& tier : result.tiers) {
    header.push_back(tier.name + "_vms");
    header.push_back(tier.name + "_util");
    header.push_back(tier.name + "_concurrency");
  }
  writer.write_header(header);

  const auto& rt = result.client.response_time_series().buckets();
  const auto& tp = result.client.throughput_series().buckets();
  size_t seconds = std::max(rt.size(), tp.size());
  for (const auto& tier : result.tiers) {
    seconds = std::max(seconds, tier.provisioned_vms.buckets().size());
  }
  for (size_t t = 0; t < seconds; ++t) {
    std::vector<double> row = {static_cast<double>(t)};
    if (trace != nullptr) {
      row.push_back(static_cast<double>(
          trace->users_at(sim::from_seconds(static_cast<double>(t)))));
    }
    row.push_back(bucket_mean(rt, t) * 1e3);
    row.push_back(bucket_sum(tp, t));
    row.push_back(bucket_sum(result.client.error_series().buckets(), t));
    row.push_back(bucket_sum(result.client.goodput_series().buckets(), t));
    for (const auto& tier : result.tiers) {
      row.push_back(bucket_mean(tier.provisioned_vms.buckets(), t));
      row.push_back(bucket_mean(tier.cpu_util.buckets(), t));
      row.push_back(bucket_mean(tier.concurrency.buckets(), t));
    }
    writer.write_row(row);
  }
}

void write_spans_csv(std::ostream& out, const core::ExperimentResult& result) {
  if (result.trace_report == nullptr) return;
  CsvWriter writer(out);
  writer.write_header({"request_id", "servlet", "ok", "attempts", "span", "kind", "tier",
                       "edge", "start_s", "end_s", "duration_s", "value"});
  for (const auto& context : result.trace_report->traces) {
    for (size_t s = 0; s < context->spans.size(); ++s) {
      const trace::Span& span = context->spans[s];
      writer.write_row(std::vector<std::string>{
          std::to_string(context->request_id), std::to_string(context->servlet),
          context->ok ? "1" : "0", std::to_string(context->attempts), std::to_string(s),
          trace::span_kind_name(span.kind), trace_tier_name(result, span.tier),
          span.edge == trace::kNoEdge ? "" : std::to_string(span.edge),
          str_format("%.9f", sim::to_seconds(span.start)),
          str_format("%.9f", sim::to_seconds(span.end)),
          str_format("%.9f", sim::to_seconds(span.end - span.start)),
          str_format("%.9g", span.value)});
    }
  }
}

void print_trace_summary(const core::ExperimentResult& result) {
  if (result.trace_report == nullptr) return;
  const trace::TraceReport& report = *result.trace_report;
  std::printf("trace                 : rate %.3g, sampled %llu, finalized %llu, ok %llu\n",
              report.spec.rate, static_cast<unsigned long long>(report.sampled),
              static_cast<unsigned long long>(report.finalized),
              static_cast<unsigned long long>(report.completed));
  if (report.attribution.empty()) return;
  std::printf("latency attribution (share of end-to-end latency per cause):\n");
  TextTable table({"tier", "cause", "traces", "total_s", "mean_ms", "p50", "p95", "p99"});
  for (const auto& row : report.attribution) {
    table.add_row(std::vector<std::string>{
        trace_tier_name(result, row.tier), trace::span_kind_name(row.cause),
        std::to_string(row.traces), format_number(row.total_seconds, 1),
        format_number(row.mean_seconds * 1e3, 2), format_number(row.p50_share * 100.0, 1) + "%",
        format_number(row.p95_share * 100.0, 1) + "%",
        format_number(row.p99_share * 100.0, 1) + "%"});
  }
  table.print();
  if (!report.edge_attribution.empty()) {
    std::printf("edge attribution (downstream subtree share per service-graph edge):\n");
    TextTable edge_table({"tier", "edge", "traces", "total_s", "mean_ms", "p50", "p95", "p99"});
    for (const auto& row : report.edge_attribution) {
      edge_table.add_row(std::vector<std::string>{
          trace_tier_name(result, row.tier), std::to_string(row.edge),
          std::to_string(row.traces), format_number(row.total_seconds, 1),
          format_number(row.mean_seconds * 1e3, 2),
          format_number(row.p50_share * 100.0, 1) + "%",
          format_number(row.p95_share * 100.0, 1) + "%",
          format_number(row.p99_share * 100.0, 1) + "%"});
    }
    edge_table.print();
  }
  if (!report.annotations.empty()) {
    std::printf("trace annotations     : %zu control/fault events overlap the run\n",
                report.annotations.size());
  }
}

void print_summary(const core::ExperimentResult& result) {
  std::printf("throughput            : %.1f req/s\n", result.mean_throughput);
  std::printf("response time         : mean %.0f ms, p95 %.0f ms, max %.0f ms\n",
              result.mean_response_time * 1e3, result.p95_response_time * 1e3,
              result.max_response_time * 1e3);
  std::printf("completed / errors    : %llu / %llu\n",
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.errors));
  if (result.timeouts > 0 || result.retries > 0 || result.errors > 0 ||
      !result.fault_log.empty()) {
    std::printf("goodput / error rate  : %.1f req/s / %.2f%%\n", result.goodput,
                result.error_rate * 100.0);
    std::printf("timeouts / retries    : %llu / %llu\n",
                static_cast<unsigned long long>(result.timeouts),
                static_cast<unsigned long long>(result.retries));
  }
  std::printf("SLA violation (>1 s)  : %.1f%% of seconds\n",
              result.sla_violation_fraction * 100.0);
  std::printf("VM-seconds            : %.0f (%.2f req per VM-second)\n",
              result.total_vm_seconds, result.requests_per_vm_second);
  std::printf("control actions       : %zu\n", result.actions.size());
  print_actions(result);
  if (!result.fault_log.empty()) {
    std::printf("fault log             : %zu entries\n", result.fault_log.size());
    for (const auto& entry : result.fault_log) {
      std::printf("  %8.1fs  %-14s %-10s %s\n", sim::to_seconds(entry.at),
                  entry.kind.c_str(), entry.target.c_str(), entry.detail.c_str());
    }
  }
}

double series_window_mean(const metrics::TimeSeries& series, size_t from, size_t width,
                          bool rate) {
  const auto& buckets = series.buckets();
  double sum = 0.0;
  size_t n = 0;
  for (size_t s = from; s < from + width; ++s) {
    sum += rate ? bucket_sum(buckets, s) : bucket_mean(buckets, s);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

void print_windowed_timeline(const std::string& label, const core::ExperimentResult& result,
                             const workload::Trace* trace, size_t duration_seconds,
                             size_t window_seconds) {
  std::printf("--- %s: %zu s-window series (panels a/c/e style) ---\n", label.c_str(),
              window_seconds);
  std::vector<std::string> header = {"t_s"};
  if (trace != nullptr) header.push_back("users");
  header.insert(header.end(), {"rt_ms", "x_req_s"});
  // Tier 0 (web) is never the scaling story; the panels track app + db.
  for (size_t tier = 1; tier < result.tiers.size(); ++tier) {
    header.push_back(result.tiers[tier].name + "_vms");
    header.push_back(result.tiers[tier].name + "_util");
  }
  TextTable table(std::move(header));
  for (size_t t = 0; t + window_seconds <= duration_seconds; t += window_seconds) {
    std::vector<double> row = {static_cast<double>(t)};
    if (trace != nullptr) {
      row.push_back(static_cast<double>(
          trace->users_at(sim::from_seconds(static_cast<double>(t)))));
    }
    row.push_back(series_window_mean(result.client.response_time_series(), t,
                                     window_seconds) *
                  1000.0);
    row.push_back(series_window_mean(result.client.throughput_series(), t, window_seconds,
                                     /*rate=*/true));
    for (size_t tier = 1; tier < result.tiers.size(); ++tier) {
      row.push_back(series_window_mean(result.tiers[tier].provisioned_vms, t, window_seconds));
      row.push_back(series_window_mean(result.tiers[tier].cpu_util, t, window_seconds));
    }
    table.add_row(row, 2);
  }
  table.print();

  std::printf("\n--- %s: scaling & soft-resource activity ---\n", label.c_str());
  print_actions(result);
  std::puts("");
}

void print_comparison(const std::vector<std::string>& labels,
                      const std::vector<const core::ExperimentResult*>& results) {
  std::vector<std::string> header = {"metric"};
  header.insert(header.end(), labels.begin(), labels.end());
  TextTable table(std::move(header));

  const auto row = [&](const std::string& metric, auto&& value) {
    std::vector<std::string> cells = {metric};
    for (const auto* r : results) cells.push_back(value(*r));
    table.add_row(std::move(cells));
  };
  row("mean response time (ms)",
      [](const auto& r) { return format_number(r.mean_response_time * 1e3, 1); });
  row("p95 response time (ms)",
      [](const auto& r) { return format_number(r.p95_response_time * 1e3, 1); });
  row("max response time (ms)",
      [](const auto& r) { return format_number(r.max_response_time * 1e3, 1); });
  row("mean throughput (req/s)",
      [](const auto& r) { return format_number(r.mean_throughput, 1); });
  row("completed requests", [](const auto& r) { return std::to_string(r.completed); });
  row("goodput (req/s, rt<=1s)",
      [](const auto& r) { return format_number(r.goodput, 1); });
  row("error rate", [](const auto& r) {
    return format_number(r.error_rate * 100.0, 2) + "%";
  });
  row("timeouts", [](const auto& r) { return std::to_string(r.timeouts); });
  row("retries", [](const auto& r) { return std::to_string(r.retries); });
  row("scale-out events",
      [](const auto& r) { return std::to_string(r.action_count("scale_out")); });
  row("scale-in events",
      [](const auto& r) { return std::to_string(r.action_count("scale_in")); });
  row("SLA violation (rt>1s)", [](const auto& r) {
    return format_number(r.sla_violation_fraction * 100.0, 1) + "%";
  });
  row("VM-seconds (scalable tiers)",
      [](const auto& r) { return format_number(r.total_vm_seconds, 0); });
  row("requests per VM-second",
      [](const auto& r) { return format_number(r.requests_per_vm_second, 2); });
  row("soft-resource actions", [](const auto& r) {
    return std::to_string(r.action_count("set_stp") + r.action_count("set_conns"));
  });
  table.print();
}

}  // namespace dcm::scenario
