// Declarative, serializable experiment scenarios.
//
// A `Scenario` is the text-form twin of `core::ExperimentConfig`: hardware,
// soft allocation, workload, controller, run window and the single root
// seed, plus a name and a one-line summary. It round-trips losslessly
// through the INI dialect (`parse` → `to_text` → `parse` is identity, and
// `to_text` is a canonical fixed point), and translation to a runnable
// `ExperimentConfig` goes through the existing `core::config_loader` so the
// CLI, the registry, and hand-written INI files all take exactly one path
// into the simulator.
//
// Unlike the raw config loader, `from_config` is strict: unknown sections
// or keys (and keys that don't apply to the declared workload/controller
// kind) are errors, so a typo like `contorller` cannot silently fall back
// to defaults.
#pragma once

#include <cstdint>
#include <string>

#include "common/config.h"
#include "core/config_loader.h"
#include "core/experiment.h"
#include "core/topologies.h"

namespace dcm::scenario {

/// Declarative workload: trace workloads are referenced by taxonomy pattern
/// name or CSV path (never by inline user vectors), which is what keeps the
/// spec serializable.
struct WorkloadDecl {
  enum class Kind { kJmeter, kRubbos, kTrace };
  Kind kind = Kind::kRubbos;
  int users = 100;                // kJmeter / kRubbos
  double think_seconds = 3.0;     // kRubbos / kTrace
  std::string trace = "large-variation";  // kTrace: taxonomy name or CSV path
  int peak_users = 350;           // kTrace, taxonomy patterns only

  bool operator==(const WorkloadDecl&) const = default;
};

/// Declarative controller. The kind names mirror the control-layer registry
/// (`control::controller_names()`): ec2 and dcm are the paper's pair, and
/// predictive / queueing / pi are the zoo additions. The DCM kind may
/// override the reference Eq. 5 parameters with explicit "s0,alpha,beta"
/// triples (the wrong-models ablation, or a user-fitted system).
struct ControllerDecl {
  enum class Kind { kNone, kEc2, kDcm, kPredictive, kQueueing, kPi };
  Kind kind = Kind::kNone;
  double control_period_seconds = 15.0;
  double scale_out_util = 0.80;
  double scale_in_util = 0.40;
  int scale_in_consecutive = 3;
  /// Schmitt-trigger band half-width on both thresholds (0 = historical
  /// strict comparisons; any non-none kind).
  double hysteresis = 0.0;
  // kEc2 / kDcm only (the zoo kinds have their own trigger shapes):
  bool predictive = false;
  double sla_rt = 0.0;
  // kDcm only:
  double headroom = 1.0;
  bool online_estimation = false;
  std::string app_model;  // "" = reference model
  std::string db_model;   // "" = reference model
  // kPredictive only (Holt smoothing):
  double alpha = 0.5;
  double beta = 0.3;
  int horizon = 2;
  // kQueueing / kPi: per-server utilisation target ρ*.
  double target_util = 0.6;
  // kPi only:
  double kp = 2.0;
  double ki = 0.5;
  double deadband = 0.5;

  bool operator==(const ControllerDecl&) const = default;
};

/// Declarative fault schedule rates ([faults] section). All-zero MTTFs (the
/// default) mean a healthy run; the concrete event schedule derives from
/// the run's root seed, so it is never spelled out in the scenario.
struct FaultDecl {
  double crash_mttf = 0.0;
  double slowdown_mttf = 0.0;
  double slowdown_factor = 0.25;
  double slowdown_duration = 30.0;
  double telemetry_loss_mttf = 0.0;
  double telemetry_loss_duration = 30.0;
  double agent_silence_mttf = 0.0;
  double agent_silence_duration = 30.0;

  bool operator==(const FaultDecl&) const = default;
};

/// Declarative resilience switchboard ([resilience] section). Detail keys
/// are only part of the vocabulary when enabled=true; the watchdog keys
/// additionally require the dcm controller.
struct ResilienceDecl {
  bool enabled = false;
  double client_timeout = 2.0;
  int client_retries = 2;
  double client_backoff = 0.25;
  double subrequest_timeout = 1.0;
  int subrequest_retries = 1;
  double health_period = 5.0;
  int health_failure_threshold = 3;
  bool replace_failed = true;
  // kDcm only:
  int watchdog_periods = 2;
  double min_fit_r2 = 0.0;

  bool operator==(const ResilienceDecl&) const = default;
};

/// Declarative tracing knobs ([trace] section). `rate` is only part of the
/// vocabulary when enabled=true; a disabled declaration is emitted as
/// nothing at all (the section's absence is its canonical "off" spelling).
struct TraceDecl {
  bool enabled = false;
  double rate = 1.0;

  bool operator==(const TraceDecl&) const = default;
};

struct Scenario {
  std::string name = "unnamed";
  std::string summary;
  core::HardwareConfig hardware;
  core::SoftAllocation soft;
  /// Deployment shape ([topology] section). The default 3-tier chain is
  /// canonical as an *absent* section; chain4 emits only its kind; graph
  /// kinds spell out nodes ("name:role, ...") and edges
  /// ("from->to:calls[:managed], ..." with integer calls or `q` = the
  /// sampled servlet's query count). Parsed graphs are validated eagerly:
  /// from_config builds the ServiceGraph once, so cyclic or malformed
  /// topologies fail at parse time, not at run time.
  core::TopologySpec topology;
  WorkloadDecl workload;
  ControllerDecl controller;
  FaultDecl faults;
  ResilienceDecl resilience;
  TraceDecl trace;
  double duration_seconds = 300.0;
  double warmup_seconds = 30.0;
  int max_vms = 8;
  /// Root seed; every stochastic stream of the run derives from it (see
  /// core::SeedStream and DESIGN.md "Seed derivation & deterministic sweeps").
  uint64_t seed = 1;

  bool operator==(const Scenario&) const = default;

  /// Strict translation from a parsed Config; throws std::runtime_error on
  /// unknown sections/keys, unknown kinds, or malformed values.
  static Scenario from_config(const Config& config);
  /// Parse INI text / load an INI file, then from_config.
  static Scenario parse(const std::string& text);
  static Scenario load(const std::string& path);

  /// Canonical Config emission: every field explicit, only keys that apply
  /// to the declared kinds. `from_config(to_config())` is identity.
  Config to_config() const;
  /// `to_config().to_text()` — the canonical INI form.
  std::string to_text() const;

  /// Runnable translation, routed through core::experiment_from_config so
  /// scenarios and raw INI files share one code path into the simulator.
  core::ExperimentConfig experiment() const;
};

/// True if `Scenario::from_config` would accept [section] key under the
/// workload/controller kinds declared in `config`. Sweep expansion uses
/// this to drop base-emitted keys that stop applying after a kind override
/// (throws if `config` declares an unknown kind).
bool scenario_key_applies(const Config& config, const std::string& section,
                          const std::string& key);

}  // namespace dcm::scenario
