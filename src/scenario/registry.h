// Named canonical scenarios — one per paper figure / table / ablation.
//
// Every bench and example used to hard-code its deployment inline; the
// registry is now the single source of those configurations, stored as the
// same INI text a user would write by hand (so `dcm_run show <name>` prints
// exactly what `dcm_run run <name>` executes, and benches are thin clients
// that tweak one or two fields per point).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace dcm::scenario {

/// All registered names, sorted.
std::vector<std::string> scenario_names();

bool has_scenario(const std::string& name);

/// Expected `result_digest` of one canonical run of the named scenario
/// (`run_experiment(get_scenario(name).experiment())`, no overrides). The
/// macro benchmark and the digest regression tests verify against these, so
/// a hot-path "optimisation" that changes any reproduced number fails
/// loudly. nullopt for scenarios without a pinned digest.
std::optional<uint64_t> expected_result_digest(const std::string& name);

/// The registered INI text, verbatim. Throws std::runtime_error on an
/// unknown name (with the known names listed).
const std::string& scenario_text(const std::string& name);

/// Parsed scenario. Throws std::runtime_error on an unknown name.
Scenario get_scenario(const std::string& name);

}  // namespace dcm::scenario
