// One writer for every experiment result — the `dcm-result-v1` JSON/CSV
// schema plus the console summary/timeline/comparison printers that used to
// be copy-pasted across fig5, dcm_runner and bursty_autoscaling.
//
// Also home of the result digest: FNV-1a over the raw bit patterns of the
// completed-request trace (per-second response-time/throughput buckets,
// every per-tier timeline, the controller action log). It is intentionally
// exact — no tolerances — because determinism is a bit-for-bit property.
// The same digest guards single runs (DeterminismDigestTest), sweeps
// (--jobs 1 vs --jobs N must match), and Debug-vs-Release builds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "metrics/timeseries.h"
#include "scenario/sweep.h"
#include "workload/trace.h"

namespace dcm::scenario {

/// FNV-1a 64-bit, mixing raw bit patterns (doubles via bit_cast, never
/// through text formatting — formatting would hide low-bit divergence).
class Fnv1a {
 public:
  void mix_bytes(const void* data, size_t size);
  void mix(uint64_t v) { mix_bytes(&v, sizeof(v)); }
  void mix(int64_t v) { mix(static_cast<uint64_t>(v)); }
  void mix(double v);
  void mix(std::string_view s) { mix_bytes(s.data(), s.size()); }

  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

/// Mixes a bucketed series: size, then per bucket start/count/mean/min/max.
void mix_series(Fnv1a& h, const metrics::TimeSeries& series);

/// Digest of one experiment's full observable trace.
uint64_t result_digest(const core::ExperimentResult& result);

/// Digest of a whole sweep: per-run (index, seed, result digest) in run
/// order. Identical across thread counts by the SweepRunner contract.
uint64_t sweep_digest(const std::vector<SweepRun>& runs);

/// Digest of one run's trace report: every sampled span stream, the
/// annotation log and the folded attribution table, bit-for-bit. Kept
/// separate from result_digest on purpose — tracing must never perturb the
/// core result digest, and this digest is what pins the tracing itself.
uint64_t trace_digest(const trace::TraceReport& report);

/// dcm-result-v1 JSON: schema marker, sweep name, one entry per run with
/// index/scenario/seed/overrides/digest and the post-warmup summary stats.
void write_result_json(std::ostream& out, const std::string& name,
                       const std::vector<SweepRun>& runs);

/// Unified per-second timeline CSV (t_s, [users], rt_ms, throughput, then
/// per-tier vms/util/concurrency). Pass the driving trace to get the users
/// column; pass nullptr to omit it.
void write_timeline_csv(std::ostream& out, const core::ExperimentResult& result,
                        const workload::Trace* trace = nullptr);

/// Per-span CSV of one traced run (request_id, servlet, ok, attempts, span
/// index, kind, tier name, start/end/duration seconds, kind-specific
/// value). No-op when the result carries no trace report.
void write_spans_csv(std::ostream& out, const core::ExperimentResult& result);

/// dcm_runner-style console summary of one run (plus its action log).
void print_summary(const core::ExperimentResult& result);

/// Console waterfall of a traced run: sampling counters plus the per-tier,
/// per-cause latency-attribution table. No-op without a trace report.
void print_trace_summary(const core::ExperimentResult& result);

/// fig5-style windowed series table (panels a/c/e): means over
/// `window_seconds`-wide windows of rt/throughput and the app/db tier
/// VM-count + utilisation timelines, with the trace's offered users.
void print_windowed_timeline(const std::string& label, const core::ExperimentResult& result,
                             const workload::Trace* trace, size_t duration_seconds,
                             size_t window_seconds = 10);

/// fig5/bursty-style side-by-side summary: one column per labelled result.
void print_comparison(const std::vector<std::string>& labels,
                      const std::vector<const core::ExperimentResult*>& results);

/// Mean of a series over per-second buckets [from, from+width); rate=true
/// sums each bucket instead (throughput series).
double series_window_mean(const metrics::TimeSeries& series, size_t from, size_t width,
                          bool rate = false);

}  // namespace dcm::scenario
