// Macro benchmark — end-to-end simulator throughput over registered
// scenarios.
//
// BENCH_micro.json tracks two engine primitives; this suite tracks how fast
// the simulator actually simulates: engine events per wall-second and
// simulated seconds per wall-second, measured around `run_experiment` for a
// fixed set of registry scenarios. Every run's result digest is checked
// against the registry's pinned reference value, so a "faster" run that
// changes any reproduced number fails loudly instead of silently shipping a
// wrong optimisation.
//
// Consumed by `tools/dcm_run bench` and `bench/macro_benchmarks`, both of
// which emit the committed BENCH_macro.json schema (`dcm-bench-v1` suite
// "macro").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dcm::scenario {

struct MacroBenchOptions {
  /// Scenarios to run; empty = default_macro_suite().
  std::vector<std::string> scenarios;
  /// Repetitions per scenario; the reported wall time is the fastest rep
  /// (the standard best-of discipline — slower reps are scheduler noise).
  int repetitions = 3;
  /// Verify each run's result digest against the registry reference.
  bool verify_digests = true;
};

struct MacroBenchRow {
  std::string scenario;
  int repetitions = 0;
  double best_wall_seconds = 0.0;
  /// Engine events dispatched by one run (identical across reps — the
  /// simulation is deterministic; only the wall clock varies).
  uint64_t events = 0;
  double events_per_second = 0.0;
  /// Configured simulated duration and the time-compression ratio
  /// (simulated seconds per wall second) — the ROADMAP's 10x metric.
  double sim_seconds = 0.0;
  double sim_seconds_per_wall_second = 0.0;
  uint64_t digest = 0;
  /// Registry reference (0 = scenario has no pinned digest).
  uint64_t expected_digest = 0;
  bool digest_ok = true;
};

/// The committed trajectory suite: quickstart, fig5, fig5-ec2,
/// chaos-resilience, trace-attribution.
const std::vector<std::string>& default_macro_suite();

/// Runs the suite; throws std::runtime_error on unknown scenario names.
std::vector<MacroBenchRow> run_macro_suite(const MacroBenchOptions& options);

bool all_digests_ok(const std::vector<MacroBenchRow>& rows);

/// dcm-bench-v1 JSON (suite "macro"): one row per scenario with
/// events/sec, sim-seconds/wall-second and the digest verdict.
void write_macro_json(std::ostream& out, const std::vector<MacroBenchRow>& rows);

/// Console table for interactive runs.
void print_macro_table(const std::vector<MacroBenchRow>& rows);

}  // namespace dcm::scenario
