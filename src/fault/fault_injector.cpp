#include "fault/fault_injector.h"

#include "common/check.h"
#include "common/logging.h"
#include "common/strings.h"

namespace dcm::fault {

FaultInjector::FaultInjector(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker,
                             ntier::MonitorFleet* fleet, FaultPlan plan)
    : engine_(&engine), app_(&app), broker_(&broker), fleet_(fleet), plan_(std::move(plan)) {
  DCM_CHECK_MSG(app_->tier_count() >= 2, "fault injection needs a scalable tier");
  arm();
}

void FaultInjector::arm() {
  armed_.reserve(plan_.events.size());
  for (const FaultEvent& event : plan_.events) {
    armed_.push_back(engine_->schedule_at(event.at, [this, event] { inject(event); }));
  }
}

ntier::Tier* FaultInjector::next_target_tier() {
  // Rotate over the scalable tiers (the front tier is spared — killing the
  // single entry point ends the experiment rather than testing resilience).
  const size_t scalable = app_->tier_count() - 1;
  const size_t depth = 1 + (rotation_++ % scalable);
  return &app_->tier(depth);
}

void FaultInjector::record(const char* kind, const std::string& target,
                           const std::string& detail) {
  log_.push_back(FaultLogEntry{engine_->now(), kind, target, detail});
}

void FaultInjector::inject(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kVmCrash: {
      ntier::Tier* tier = next_target_tier();
      ntier::Vm* vm = tier->oldest_active_vm();
      if (vm == nullptr) {
        record("skipped", "", str_format("%s: no active VM in %s",
                                         fault_kind_name(event.kind), tier->name().c_str()));
        return;
      }
      tier->inject_crash(vm->id());
      ++injected_;
      record(fault_kind_name(event.kind), vm->id(), tier->name());
      return;
    }
    case FaultKind::kVmSlowdown: {
      ntier::Tier* tier = next_target_tier();
      ntier::Vm* vm = tier->oldest_active_vm();
      if (vm == nullptr) {
        record("skipped", "", str_format("%s: no active VM in %s",
                                         fault_kind_name(event.kind), tier->name().c_str()));
        return;
      }
      vm->server().set_cpu_capacity_factor(event.severity);
      ++injected_;
      record(fault_kind_name(event.kind), vm->id(),
             str_format("factor=%.3f for %.0fs", event.severity,
                        sim::to_seconds(event.duration)));
      // Recover after the window. The Vm outlives the run (tiers never
      // erase), so capturing the pointer is safe; restoring a crashed VM's
      // factor is harmless.
      armed_.push_back(engine_->schedule_after(event.duration, [this, vm] {
        vm->server().set_cpu_capacity_factor(1.0);
        record("vm_recover", vm->id(), "capacity restored");
      }));
      return;
    }
    case FaultKind::kTelemetryLoss: {
      bus::Topic* topic = broker_->find_topic(ntier::kMetricsTopic);
      if (topic == nullptr) {
        record("skipped", "", "telemetry_loss: metrics topic absent");
        return;
      }
      topic->set_drop_until(engine_->now() + event.duration);
      ++injected_;
      record(fault_kind_name(event.kind), ntier::kMetricsTopic,
             str_format("drop for %.0fs", sim::to_seconds(event.duration)));
      return;
    }
    case FaultKind::kAgentSilence: {
      if (fleet_ == nullptr) {
        record("skipped", "", "agent_silence: no monitor fleet");
        return;
      }
      ntier::Tier* tier = next_target_tier();
      ntier::Vm* vm = tier->oldest_active_vm();
      if (vm == nullptr || !fleet_->silence_vm(vm->id(), engine_->now() + event.duration)) {
        record("skipped", "", str_format("%s: no monitored VM in %s",
                                         fault_kind_name(event.kind), tier->name().c_str()));
        return;
      }
      ++injected_;
      record(fault_kind_name(event.kind), vm->id(),
             str_format("silent for %.0fs", sim::to_seconds(event.duration)));
      return;
    }
  }
}

}  // namespace dcm::fault
