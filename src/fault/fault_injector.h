// FaultInjector — arms a FaultPlan against a live deployment.
//
// Targets are resolved at injection time (the fleet changes as VMs fail and
// replacements boot) by a deterministic rotation over the scalable tiers
// (depth >= 1), always hitting the oldest ACTIVE VM of the chosen tier.
// Every action — including a skipped injection with no eligible target — is
// recorded in an in-order log for the dcm-result-v1 per-fault action trail.
#pragma once

#include <string>
#include <vector>

#include "bus/broker.h"
#include "fault/fault_plan.h"
#include "ntier/app.h"
#include "ntier/monitor_agent.h"
#include "sim/engine.h"

namespace dcm::fault {

struct FaultLogEntry {
  sim::SimTime at = 0;
  std::string kind;    // fault_kind_name(), or "vm_recover" / "skipped"
  std::string target;  // VM id / topic name / "" when skipped
  std::string detail;
};

class FaultInjector {
 public:
  /// `fleet` may be nullptr (agent-silence events are then skipped). All
  /// referenced objects must outlive the injector.
  FaultInjector(sim::Engine& engine, ntier::NTierApp& app, bus::Broker& broker,
                ntier::MonitorFleet* fleet, FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  const std::vector<FaultLogEntry>& log() const { return log_; }
  /// Events that actually hit a target (skips excluded).
  int injected_count() const { return injected_; }

 private:
  void arm();
  void inject(const FaultEvent& event);
  /// Next target tier by rotation over depths 1..tier_count-1.
  ntier::Tier* next_target_tier();
  void record(const char* kind, const std::string& target, const std::string& detail);

  sim::Engine* engine_;
  ntier::NTierApp* app_;
  bus::Broker* broker_;
  ntier::MonitorFleet* fleet_;
  FaultPlan plan_;
  std::vector<FaultLogEntry> log_;
  std::vector<sim::EventHandle> armed_;
  size_t rotation_ = 0;
  int injected_ = 0;
};

}  // namespace dcm::fault
