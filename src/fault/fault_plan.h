// Declarative, deterministic fault schedules.
//
// A FaultSpec describes *rates* (one MTTF knob per fault family, 0 = that
// family off); FaultPlan::synthesize turns it into a concrete, time-sorted
// schedule of events using per-family Rng streams derived from a single
// fault seed. Same (spec, seed, horizon) → bit-identical plan, so chaos
// runs replay exactly and sweeps can vary one MTTF axis at a time.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace dcm::fault {

enum class FaultKind {
  kVmCrash,       // silent VM crash (stays in the balancer until detected)
  kVmSlowdown,    // CPU-capacity multiplier for a window
  kTelemetryLoss, // monitoring-topic drop window (bus loses records)
  kAgentSilence,  // one monitor agent stops publishing for a window
};

const char* fault_kind_name(FaultKind kind);

/// Fault-family rates. An MTTF of 0 disables that family. Inter-event gaps
/// are exponential with the family's MTTF as mean.
struct FaultSpec {
  double crash_mttf_seconds = 0.0;
  double slowdown_mttf_seconds = 0.0;
  double slowdown_factor = 0.25;  // capacity multiplier while degraded
  double slowdown_duration_seconds = 30.0;
  double telemetry_loss_mttf_seconds = 0.0;
  double telemetry_loss_duration_seconds = 30.0;
  double agent_silence_mttf_seconds = 0.0;
  double agent_silence_duration_seconds = 30.0;

  bool any_enabled() const {
    return crash_mttf_seconds > 0.0 || slowdown_mttf_seconds > 0.0 ||
           telemetry_loss_mttf_seconds > 0.0 || agent_silence_mttf_seconds > 0.0;
  }
};

/// One scheduled injection. `duration` and `severity` are meaningful only
/// for windowed kinds (slowdown / telemetry loss / agent silence).
struct FaultEvent {
  FaultKind kind = FaultKind::kVmCrash;
  sim::SimTime at = 0;
  sim::SimTime duration = 0;
  double severity = 1.0;  // slowdown capacity factor
};

/// Per-family stream ids under the fault seed (keep stable — DESIGN.md
/// "Seed derivation").
enum class FaultStream : uint64_t {
  kCrash = 0,
  kSlowdown = 1,
  kTelemetryLoss = 2,
  kAgentSilence = 3,
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by time (family order on ties)

  /// Samples a concrete schedule over [0, horizon_seconds) from the spec.
  static FaultPlan synthesize(const FaultSpec& spec, uint64_t fault_seed,
                              double horizon_seconds);
};

}  // namespace dcm::fault
