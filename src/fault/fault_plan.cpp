#include "fault/fault_plan.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace dcm::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kVmCrash:
      return "vm_crash";
    case FaultKind::kVmSlowdown:
      return "vm_slowdown";
    case FaultKind::kTelemetryLoss:
      return "telemetry_loss";
    case FaultKind::kAgentSilence:
      return "agent_silence";
  }
  return "?";
}

namespace {

void synthesize_family(std::vector<FaultEvent>& out, FaultKind kind, uint64_t fault_seed,
                       FaultStream stream, double mttf_seconds, double duration_seconds,
                       double severity, double horizon_seconds) {
  if (mttf_seconds <= 0.0) return;
  Rng rng(derive_seed(fault_seed, static_cast<uint64_t>(stream)));
  double t = 0.0;
  while (true) {
    t += rng.exponential(mttf_seconds);
    if (t >= horizon_seconds) break;
    FaultEvent event;
    event.kind = kind;
    event.at = sim::from_seconds(t);
    event.duration = sim::from_seconds(duration_seconds);
    event.severity = severity;
    out.push_back(event);
  }
}

}  // namespace

FaultPlan FaultPlan::synthesize(const FaultSpec& spec, uint64_t fault_seed,
                                double horizon_seconds) {
  DCM_CHECK(horizon_seconds >= 0.0);
  DCM_CHECK_MSG(spec.slowdown_factor > 0.0 && spec.slowdown_factor <= 1.0,
                "slowdown factor must be in (0, 1]");
  FaultPlan plan;
  synthesize_family(plan.events, FaultKind::kVmCrash, fault_seed, FaultStream::kCrash,
                    spec.crash_mttf_seconds, /*duration=*/0.0, /*severity=*/1.0,
                    horizon_seconds);
  synthesize_family(plan.events, FaultKind::kVmSlowdown, fault_seed, FaultStream::kSlowdown,
                    spec.slowdown_mttf_seconds, spec.slowdown_duration_seconds,
                    spec.slowdown_factor, horizon_seconds);
  synthesize_family(plan.events, FaultKind::kTelemetryLoss, fault_seed,
                    FaultStream::kTelemetryLoss, spec.telemetry_loss_mttf_seconds,
                    spec.telemetry_loss_duration_seconds, /*severity=*/1.0, horizon_seconds);
  synthesize_family(plan.events, FaultKind::kAgentSilence, fault_seed,
                    FaultStream::kAgentSilence, spec.agent_silence_mttf_seconds,
                    spec.agent_silence_duration_seconds, /*severity=*/1.0, horizon_seconds);
  // Families are generated in enum order; stable sort keeps that order on
  // time ties, so the plan is fully deterministic.
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

}  // namespace dcm::fault
