// Request-flow records.
//
// One RequestContext describes a whole HTTP request's journey through the
// tiers: how much CPU demand it puts on each tier and how many sub-requests
// each tier issues downstream (the paper's visit ratios — e.g. one HTTP
// request → 1 AJP call to Tomcat → 2 queries to MySQL).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.h"
#include "trace/trace.h"

namespace dcm::ntier {

struct RequestContext {
  uint64_t id = 0;
  int servlet = -1;            // index into the servlet catalog (-1 = generic)
  sim::SimTime created = 0;

  /// demand_scale[d] multiplies tier d's base CPU demand for this request.
  std::vector<double> demand_scale;
  /// downstream_calls[d] = number of sub-requests tier d sends to tier d+1.
  std::vector<int> downstream_calls;

  /// Null unless this request was head-sampled by the run's Tracer. Every
  /// instrumentation hook is gated on this pointer — the untraced hot path
  /// pays exactly one branch.
  std::shared_ptr<trace::TraceContext> trace;
};

using RequestPtr = std::shared_ptr<RequestContext>;

/// Completion callback: ok=false means the request was rejected (accept
/// queue overflow) somewhere along the chain.
using DoneFn = std::function<void(bool ok)>;

}  // namespace dcm::ntier
