// Request-flow records.
//
// One RequestContext describes a whole HTTP request's journey through the
// tiers: how much CPU demand it puts on each tier and how many sub-requests
// each tier issues downstream (the paper's visit ratios — e.g. one HTTP
// request → 1 AJP call to Tomcat → 2 queries to MySQL).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/inline_vec.h"
#include "sim/arena.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace dcm::ntier {

/// Compile-time bounds for the inline per-request arrays below, sized for
/// service-graph topologies rather than the old linear chain. A graph may
/// hold kMaxGraphNodes tiers and kMaxGraphEdges typed call edges; any single
/// node may fan out to at most kMaxFanOut downstream edges. The deepest
/// registered topology is a 10-node chain regression case; 12/16 leave
/// headroom without bloating the per-request footprint.
inline constexpr size_t kMaxGraphNodes = 12;
inline constexpr size_t kMaxGraphEdges = 16;
inline constexpr size_t kMaxFanOut = 6;
static_assert(kMaxFanOut <= kMaxGraphEdges);

/// Back-compat alias: chains index both arrays by tier depth, and depth is
/// bounded by the node count.
inline constexpr size_t kMaxTiers = kMaxGraphNodes;

struct RequestContext {
  uint64_t id = 0;
  int servlet = -1;            // index into the servlet catalog (-1 = generic)
  sim::SimTime created = 0;

  /// demand_scale[n] multiplies node n's base CPU demand for this request.
  /// Inline (no heap) — a request is one flat allocation.
  InlineVec<double, kMaxGraphNodes> demand_scale;
  /// downstream_calls[e] = number of sub-requests issued along graph edge e.
  /// Chains declare their edges in depth order, so for them edge id == the
  /// issuing tier's depth and this keeps its historical meaning.
  InlineVec<int, kMaxGraphEdges> downstream_calls;

  /// Null unless this request was head-sampled by the run's Tracer. Every
  /// instrumentation hook is gated on this pointer — the untraced hot path
  /// pays exactly one branch.
  std::shared_ptr<trace::TraceContext> trace;
};

using RequestPtr = std::shared_ptr<RequestContext>;

/// Allocates a RequestContext (object + shared_ptr control block fused) from
/// `arena` when one is supplied, else from the global heap. Ownership and
/// lifetime semantics are exactly std::shared_ptr either way; the arena
/// variant recycles freed blocks so steady state never touches the global
/// allocator. The arena must outlive every RequestPtr it backs — use the
/// owning engine's arena (destroyed after the event queue).
inline RequestPtr make_request_context(sim::Arena* arena) {
  if (arena == nullptr) return std::make_shared<RequestContext>();
  return std::allocate_shared<RequestContext>(sim::ArenaAllocator<RequestContext>(arena));
}

/// Completion callback: ok=false means the request was rejected (accept
/// queue overflow) somewhere along the chain.
using DoneFn = std::function<void(bool ok)>;

}  // namespace dcm::ntier
