// Request-flow records.
//
// One RequestContext describes a whole HTTP request's journey through the
// tiers: how much CPU demand it puts on each tier and how many sub-requests
// each tier issues downstream (the paper's visit ratios — e.g. one HTTP
// request → 1 AJP call to Tomcat → 2 queries to MySQL).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/inline_vec.h"
#include "sim/arena.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace dcm::ntier {

/// Upper bound on tier-chain depth for the inline per-tier arrays below.
/// The deepest registered topology is 4 tiers; 8 leaves headroom.
inline constexpr size_t kMaxTiers = 8;

struct RequestContext {
  uint64_t id = 0;
  int servlet = -1;            // index into the servlet catalog (-1 = generic)
  sim::SimTime created = 0;

  /// demand_scale[d] multiplies tier d's base CPU demand for this request.
  /// Inline (no heap) — a request is one flat allocation.
  InlineVec<double, kMaxTiers> demand_scale;
  /// downstream_calls[d] = number of sub-requests tier d sends to tier d+1.
  InlineVec<int, kMaxTiers> downstream_calls;

  /// Null unless this request was head-sampled by the run's Tracer. Every
  /// instrumentation hook is gated on this pointer — the untraced hot path
  /// pays exactly one branch.
  std::shared_ptr<trace::TraceContext> trace;
};

using RequestPtr = std::shared_ptr<RequestContext>;

/// Allocates a RequestContext (object + shared_ptr control block fused) from
/// `arena` when one is supplied, else from the global heap. Ownership and
/// lifetime semantics are exactly std::shared_ptr either way; the arena
/// variant recycles freed blocks so steady state never touches the global
/// allocator. The arena must outlive every RequestPtr it backs — use the
/// owning engine's arena (destroyed after the event queue).
inline RequestPtr make_request_context(sim::Arena* arena) {
  if (arena == nullptr) return std::make_shared<RequestContext>();
  return std::allocate_shared<RequestContext>(sim::ArenaAllocator<RequestContext>(arena));
}

/// Completion callback: ok=false means the request was rejected (accept
/// queue overflow) somewhere along the chain.
using DoneFn = std::function<void(bool ok)>;

}  // namespace dcm::ntier
