// Tier-front load balancer (the HAProxy substitute).
//
// Balances visits across the tier's ACTIVE servers. Round-robin matches
// HAProxy's default; least-connections is provided for the ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcm::ntier {

class Server;

enum class LbPolicy { kRoundRobin, kLeastConnections };

class LoadBalancer {
 public:
  explicit LoadBalancer(LbPolicy policy) : policy_(policy) {}

  void add(Server* server);
  void remove(Server* server);

  /// Picks a backend, or nullptr when no member is registered.
  Server* pick();

  size_t member_count() const { return members_.size(); }
  const std::vector<Server*>& members() const { return members_; }
  LbPolicy policy() const { return policy_; }

 private:
  LbPolicy policy_;
  std::vector<Server*> members_;
  size_t next_ = 0;
};

}  // namespace dcm::ntier
