// Tier-front load balancer (the HAProxy substitute).
//
// Balances visits across the tier's ACTIVE servers. Round-robin matches
// HAProxy's default; least-connections is provided for the ablation bench.
//
// Passive health checking (resilience mechanism): when a failure threshold
// is set, the balancer counts consecutive failed visits per member and stops
// routing to members at or past the threshold. A success resets the streak —
// a member marked down comes back as soon as something (e.g. an active
// health probe or a retried request) succeeds against it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcm::ntier {

class Server;

enum class LbPolicy { kRoundRobin, kLeastConnections };

class LoadBalancer {
 public:
  explicit LoadBalancer(LbPolicy policy) : policy_(policy) {}

  void add(Server* server);
  void remove(Server* server);
  bool contains(const Server* server) const;

  /// Picks a backend, or nullptr when no member is registered (or every
  /// member is marked down by passive health checks).
  Server* pick();

  /// Enables passive health checks: a member with `failure_threshold`
  /// consecutive failed visits is skipped by pick() until a success resets
  /// it. 0 disables (the default — legacy behaviour, zero bookkeeping).
  void set_health_policy(int failure_threshold);
  int failure_threshold() const { return failure_threshold_; }

  /// Reports a visit outcome for passive health tracking. No-op when health
  /// checks are disabled or the server has since been removed.
  void report_result(const Server* server, bool ok);

  /// Consecutive-failure streak for a member (0 if unknown/healthy).
  int consecutive_failures(const Server* server) const;
  bool is_down(const Server* server) const;

  size_t member_count() const { return members_.size(); }
  const std::vector<Server*>& members() const { return members_; }
  LbPolicy policy() const { return policy_; }

 private:
  LbPolicy policy_;
  std::vector<Server*> members_;
  // Parallel to members_: consecutive failed visits per member.
  std::vector<int> failures_;
  size_t next_ = 0;
  int failure_threshold_ = 0;  // 0 = passive health checks off
};

}  // namespace dcm::ntier
