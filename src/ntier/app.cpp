#include "ntier/app.h"

#include "common/check.h"

namespace dcm::ntier {

NTierApp::NTierApp(sim::Engine& engine, AppConfig config) : engine_(&engine), rng_(config.seed) {
  DCM_CHECK_MSG(!config.tiers.empty(), "app needs at least one tier");
  tiers_.reserve(config.tiers.size());
  for (size_t depth = 0; depth < config.tiers.size(); ++depth) {
    tiers_.push_back(std::make_unique<Tier>(engine, config.tiers[depth],
                                            static_cast<int>(depth), rng_));
  }
  for (size_t depth = 0; depth + 1 < tiers_.size(); ++depth) {
    tiers_[depth]->set_downstream(tiers_[depth + 1].get());
  }
}

void NTierApp::submit(const RequestPtr& request, DoneFn done) {
  tiers_.front()->dispatch(request, std::move(done));
}

Tier& NTierApp::tier(size_t index) {
  DCM_CHECK(index < tiers_.size());
  return *tiers_[index];
}

const Tier& NTierApp::tier(size_t index) const {
  DCM_CHECK(index < tiers_.size());
  return *tiers_[index];
}

Tier* NTierApp::find_tier(const std::string& name) {
  for (auto& t : tiers_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

}  // namespace dcm::ntier
