#include "ntier/app.h"

#include "common/check.h"

namespace dcm::ntier {

NTierApp::NTierApp(sim::Engine& engine, AppConfig config) : engine_(&engine), rng_(config.seed) {
  DCM_CHECK_MSG(!config.tiers.empty(), "app needs at least one tier");
  tiers_.reserve(config.tiers.size());
  for (size_t depth = 0; depth < config.tiers.size(); ++depth) {
    tiers_.push_back(std::make_unique<Tier>(engine, config.tiers[depth],
                                            static_cast<int>(depth), rng_));
  }
  for (size_t depth = 0; depth + 1 < tiers_.size(); ++depth) {
    tiers_[depth]->set_downstream(tiers_[depth + 1].get());
  }
}

NTierApp::NTierApp(sim::Engine& engine, ServiceGraph graph, uint64_t seed)
    : engine_(&engine), rng_(seed) {
  graph_ = std::make_unique<ServiceGraph>(std::move(graph));
  // Same construction order as the chain constructor: every node forks rng_
  // exactly once, in node-id order, before any wiring happens.
  tiers_.reserve(graph_->node_count());
  for (size_t node = 0; node < graph_->node_count(); ++node) {
    tiers_.push_back(std::make_unique<Tier>(engine, graph_->node(node).tier,
                                            static_cast<int>(node), rng_));
  }
  for (size_t node = 0; node < graph_->node_count(); ++node) {
    const std::vector<int>& out = graph_->out_edges(node);
    if (out.empty()) continue;  // leaf
    if (out.size() == 1) {
      const ServiceEdge& e = graph_->edge(static_cast<size_t>(out[0]));
      tiers_[node]->set_downstream_edge(tiers_[static_cast<size_t>(e.to)].get(), out[0]);
      continue;
    }
    std::vector<ServerFanoutEdge> specs;
    specs.reserve(out.size());
    for (int edge_id : out) {
      const ServiceEdge& e = graph_->edge(static_cast<size_t>(edge_id));
      specs.push_back(ServerFanoutEdge{tiers_[static_cast<size_t>(e.to)].get(), edge_id,
                                       e.pool_capacity, e.managed});
    }
    tiers_[node]->set_fanout_edges(specs);
  }
}

void NTierApp::submit(const RequestPtr& request, DoneFn done) {
  tiers_.front()->dispatch(request, std::move(done));
}

Tier& NTierApp::tier(size_t index) {
  DCM_CHECK(index < tiers_.size());
  return *tiers_[index];
}

const Tier& NTierApp::tier(size_t index) const {
  DCM_CHECK(index < tiers_.size());
  return *tiers_[index];
}

Tier* NTierApp::find_tier(const std::string& name) {
  for (auto& t : tiers_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

}  // namespace dcm::ntier
