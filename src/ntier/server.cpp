#include "ntier/server.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "ntier/tier.h"

namespace dcm::ntier {

Server::Server(sim::Engine& engine, ServerConfig config, int depth, Rng rng)
    : engine_(&engine),
      config_(std::move(config)),
      depth_(depth),
      rng_(rng),
      workers_(engine, config_.name, ".workers", config_.max_threads),
      cpu_(engine, config_.cpu),
      primary_edge_id_(depth) {
  DCM_CHECK(depth_ >= 0);
  DCM_CHECK(config_.pre_fraction >= 0.0 && config_.pre_fraction <= 1.0);
  if (config_.demand_cv > 0.0) {
    // Hoisted lognormal_mean_cv(1.0, cv) constants: same formulas, computed
    // once — per-visit draws keep only the Box–Muller normal and the exp.
    const double sigma2 = std::log(1.0 + config_.demand_cv * config_.demand_cv);
    demand_ln_mu_ = -0.5 * sigma2;  // log(mean)=log(1)=0 exactly
    demand_ln_sigma_ = std::sqrt(sigma2);
  }
  if (config_.downstream_connections > 0) {
    conns_ = std::make_unique<SlotPool>(engine, config_.name, ".conns",
                                        config_.downstream_connections);
  }
}

void Server::set_fanout_edges(const std::vector<ServerFanoutEdge>& edges) {
  DCM_CHECK_MSG(downstream_ == nullptr, "fan-out is mutually exclusive with set_downstream");
  DCM_CHECK_MSG(fanout_.empty(), "fan-out edges already installed");
  DCM_CHECK_MSG(edges.size() >= 2 && edges.size() <= kMaxFanOut,
                "fan-out needs 2..kMaxFanOut edges");
  fanout_.reserve(edges.size());
  for (const auto& spec : edges) {
    DCM_CHECK(spec.target != nullptr);
    DCM_CHECK(spec.edge_id >= 0);
    FanoutEdge e;
    e.target = spec.target;
    e.edge_id = spec.edge_id;
    if (spec.pool_capacity > 0) {
      e.pool = std::make_unique<SlotPool>(
          *engine_, config_.name + ".edge" + std::to_string(spec.edge_id),
          spec.pool_capacity);
    }
    if (spec.managed) {
      DCM_CHECK_MSG(e.pool != nullptr, "managed fan-out edge needs a connection pool");
      DCM_CHECK_MSG(managed_pool_ == nullptr, "at most one managed fan-out edge");
      managed_pool_ = e.pool.get();
    }
    fanout_.push_back(std::move(e));
  }
}

// --- slab plumbing ---------------------------------------------------------

Server::VisitHandle Server::alloc_visit() {
  uint32_t idx;
  if (visit_free_head_ != kNilIndex) {
    idx = visit_free_head_;
    visit_free_head_ = visit_slab_[idx].next_free;
  } else {
    idx = static_cast<uint32_t>(visit_slab_.size());
    visit_slab_.emplace_back();
  }
  VisitSlot& slot = visit_slab_[idx];
  slot.live = true;
  return {idx, slot.gen};
}

void Server::free_visit(VisitHandle h) {
  VisitSlot& slot = visit_slab_[h.index];
  slot.live = false;
  ++slot.gen;  // every outstanding handle to this slot is now stale
  slot.state.request.reset();
  slot.state.done = nullptr;
  slot.next_free = visit_free_head_;
  visit_free_head_ = h.index;
}

Server::VisitState* Server::visit(VisitHandle h) {
  VisitSlot& slot = visit_slab_[h.index];
  return (slot.live && slot.gen == h.gen) ? &slot.state : nullptr;
}

Server::AttemptHandle Server::alloc_attempt() {
  uint32_t idx;
  if (attempt_free_head_ != kNilIndex) {
    idx = attempt_free_head_;
    attempt_free_head_ = attempt_slab_[idx].next_free;
  } else {
    idx = static_cast<uint32_t>(attempt_slab_.size());
    attempt_slab_.emplace_back();
  }
  AttemptSlot& slot = attempt_slab_[idx];
  slot.live = true;
  return {idx, slot.gen};
}

void Server::free_attempt(AttemptHandle h) {
  AttemptSlot& slot = attempt_slab_[h.index];
  slot.live = false;
  ++slot.gen;
  slot.next_free = attempt_free_head_;
  attempt_free_head_ = h.index;
}

Server::AttemptState* Server::attempt(AttemptHandle h) {
  AttemptSlot& slot = attempt_slab_[h.index];
  return (slot.live && slot.gen == h.gen) ? &slot.state : nullptr;
}

// --- request path ----------------------------------------------------------

void Server::sync_thread_count() { cpu_.set_thread_count(workers_.in_use()); }

void Server::process(const RequestPtr& request, DoneFn done) {
  DCM_CHECK(request != nullptr);
  if (!online_ || workers_.queue_length() >= config_.max_queue) {
    ++rejected_;
    done(false);
    return;
  }
  const VisitHandle h = alloc_visit();
  VisitState& v = visit_slab_[h.index].state;
  v.visit_id = next_visit_id_++;
  v.request = request;
  v.done = std::move(done);
  v.arrived = engine_->now();
  v.demand = 0.0;
  v.calls = 0;
  v.call_index = 0;
  v.conn_held = false;
  v.holds_worker = false;
  v.branches.clear();
  v.branches_pending = 0;
  v.branch_failed = false;
  workers_.acquire([this, h] { on_worker_granted(h); });
}

void Server::on_worker_granted(VisitHandle h) {
  VisitState* v = visit(h);
  if (v == nullptr) return;  // crashed while queued
  if (trace::TraceContext* tr = v->request->trace.get()) {
    tr->add_span(trace::SpanKind::kPoolWait, depth_, v->arrived, engine_->now());
  }
  v->holds_worker = true;
  // start_visit reports the new busy-worker count fused with its CPU submit
  // (one advance/refresh/reschedule instead of two — same end state).
  start_visit(h);
}

void Server::begin_cpu_span(VisitState& visit, double work) {
  if (visit.request->trace == nullptr) return;
  visit.cpu_submitted = engine_->now();
  visit.cpu_work = work;
}

void Server::end_cpu_span(VisitState& visit) {
  trace::TraceContext* tr = visit.request->trace.get();
  if (tr == nullptr) return;
  const sim::SimTime now = engine_->now();
  const sim::SimTime nominal_end =
      std::min(now, visit.cpu_submitted + sim::from_seconds(visit.cpu_work));
  tr->add_span(trace::SpanKind::kService, depth_, visit.cpu_submitted, nominal_end,
               visit.cpu_work);
  // Anything past the nominal demand is run-queue wait / multithreading
  // inflation — the S*(N) − S0 share of the visit.
  if (now > nominal_end) tr->add_span(trace::SpanKind::kCpuWait, depth_, nominal_end, now);
}

void Server::start_visit(VisitHandle h) {
  VisitState* v = visit(h);
  const auto& req = *v->request;
  const double scale =
      req.demand_scale.size() > static_cast<size_t>(depth_)
          ? req.demand_scale[static_cast<size_t>(depth_)]
          : 1.0;
  const double variability =
      config_.demand_cv > 0.0 ? rng_.lognormal(demand_ln_mu_, demand_ln_sigma_) : 1.0;
  v->demand = config_.cpu.params.s0 * scale * variability;

  const int busy_workers = workers_.in_use();
  if (!fanout_.empty()) {
    // Fan-out node: read each out-edge's calls from the request's per-edge
    // plan. All-zero degenerates to the CPU-only shape.
    int total_calls = 0;
    for (const auto& e : fanout_) {
      const int calls =
          req.downstream_calls.size() > static_cast<size_t>(e.edge_id)
              ? req.downstream_calls[static_cast<size_t>(e.edge_id)]
              : 0;
      v->branches.push_back(BranchScratch{calls, 0, false, 0, 0});
      total_calls += calls;
    }
    if (total_calls == 0) {
      begin_cpu_span(*v, v->demand);
      cpu_.submit_with_thread_count(busy_workers, v->demand,
                                    [this, h] { on_cpu_done_finish(h); });
      return;
    }
    const double pre = v->demand * config_.pre_fraction;
    begin_cpu_span(*v, pre);
    cpu_.submit_with_thread_count(busy_workers, pre, [this, h] { on_cpu_done_fanout(h); });
    return;
  }

  // Single-edge node. The edge id defaults to the tier depth, so a chain
  // reads exactly the index the legacy per-tier hop list populated.
  v->calls = (downstream_ != nullptr &&
              req.downstream_calls.size() > static_cast<size_t>(primary_edge_id_))
                 ? req.downstream_calls[static_cast<size_t>(primary_edge_id_)]
                 : 0;
  if (v->calls == 0) {
    begin_cpu_span(*v, v->demand);
    cpu_.submit_with_thread_count(busy_workers, v->demand, [this, h] { on_cpu_done_finish(h); });
    return;
  }
  const double pre = v->demand * config_.pre_fraction;
  begin_cpu_span(*v, pre);
  cpu_.submit_with_thread_count(busy_workers, pre, [this, h] { on_cpu_done_downstream(h); });
}

void Server::on_cpu_done_finish(VisitHandle h) {
  VisitState* v = visit(h);
  if (v == nullptr) return;  // crash dropped this visit (and its CPU job)
  end_cpu_span(*v);
  finish_visit(h, true);
}

void Server::on_cpu_done_downstream(VisitHandle h) {
  VisitState* v = visit(h);
  if (v == nullptr) return;
  end_cpu_span(*v);
  v->call_index = 0;
  issue_downstream(h);
}

void Server::issue_downstream(VisitHandle h) {
  VisitState* v = visit(h);
  if (v->call_index >= v->calls) {
    const double post = v->demand * (1.0 - config_.pre_fraction);
    begin_cpu_span(*v, post);
    cpu_.submit(post, [this, h] { on_cpu_done_finish(h); });
    return;
  }
  if (v->request->trace != nullptr) v->conn_requested = engine_->now();
  if (retry_.enabled()) {
    if (conns_) {
      conns_->acquire([this, h] { on_conn_granted_retry(h); });
    } else {
      dispatch_downstream(h, /*attempt=*/0, /*conn_held=*/false);
    }
    return;
  }
  // Legacy single-attempt path — event-for-event the pre-resilience
  // behaviour for the default configuration.
  if (conns_) {
    conns_->acquire([this, h] { on_conn_granted_legacy(h); });
  } else {
    forward_legacy(h, /*conn_held=*/false);
  }
}

// --- fan-out branches -------------------------------------------------------
//
// Branch continuations capture [this, h, branch] (20 bytes) and therefore
// heap-allocate through std::function; only fan-out topologies pay this.
// Branches are single-attempt — the retry policy applies to single-edge
// servers only (see set_fanout_edges).

void Server::on_cpu_done_fanout(VisitHandle h) {
  VisitState* v = visit(h);
  if (v == nullptr) return;
  end_cpu_span(*v);
  int pending = 0;
  for (const auto& b : v->branches) {
    if (b.calls > 0) ++pending;
  }
  v->branches_pending = pending;
  // Count first, then issue: a branch that settles synchronously (downstream
  // rejects) decrements the full count and can never fire the join before
  // the remaining branches have been issued.
  const size_t branch_count = fanout_.size();
  for (size_t i = 0; i < branch_count; ++i) {
    VisitState* vv = visit(h);
    if (vv == nullptr) return;
    if (vv->branches[i].calls > 0) start_branch_call(h, static_cast<int>(i));
  }
}

void Server::start_branch_call(VisitHandle h, int branch) {
  VisitState* v = visit(h);
  if (v == nullptr) return;
  BranchScratch& b = v->branches[static_cast<size_t>(branch)];
  FanoutEdge& e = fanout_[static_cast<size_t>(branch)];
  if (v->request->trace != nullptr) b.conn_requested = engine_->now();
  if (e.pool) {
    e.pool->acquire([this, h, branch] { on_branch_conn(h, branch); });
  } else {
    forward_branch(h, branch, /*conn_held=*/false);
  }
}

void Server::on_branch_conn(VisitHandle h, int branch) {
  VisitState* v = visit(h);
  if (v == nullptr) return;  // crashed while queued on the edge pool
  const BranchScratch& b = v->branches[static_cast<size_t>(branch)];
  if (trace::TraceContext* tr = v->request->trace.get()) {
    tr->add_edge_span(trace::SpanKind::kConnWait, depth_,
                      fanout_[static_cast<size_t>(branch)].edge_id, b.conn_requested,
                      engine_->now());
  }
  forward_branch(h, branch, /*conn_held=*/true);
}

void Server::forward_branch(VisitHandle h, int branch, bool conn_held) {
  VisitState* v = visit(h);
  BranchScratch& b = v->branches[static_cast<size_t>(branch)];
  b.conn_held = conn_held;
  if (v->request->trace != nullptr) b.started = engine_->now();
  fanout_[static_cast<size_t>(branch)].target->dispatch(
      v->request, [this, h, branch](bool ok) { on_branch_response(h, branch, ok); });
}

void Server::on_branch_response(VisitHandle h, int branch, bool ok) {
  VisitState* v = visit(h);
  if (v == nullptr) return;  // crashed while the branch call was in flight
  FanoutEdge& e = fanout_[static_cast<size_t>(branch)];
  BranchScratch* b = &v->branches[static_cast<size_t>(branch)];
  if (trace::TraceContext* tr = v->request->trace.get()) {
    tr->add_edge_span(trace::SpanKind::kDownstream, depth_, e.edge_id, b->started,
                      engine_->now());
  }
  if (b->conn_held) {
    b->conn_held = false;
    e.pool->release();
    // release cannot free this slot, but it can admit other branch traffic
    // on this server — refetch for safety.
    v = visit(h);
    b = &v->branches[static_cast<size_t>(branch)];
  }
  if (!ok) {
    settle_branch(h, /*ok=*/false);
    return;
  }
  b->index += 1;
  if (b->index < b->calls) {
    start_branch_call(h, branch);
    return;
  }
  settle_branch(h, /*ok=*/true);
}

void Server::settle_branch(VisitHandle h, bool ok) {
  VisitState* v = visit(h);
  if (v == nullptr) return;
  if (!ok) v->branch_failed = true;
  if (--v->branches_pending > 0) return;
  // Join: every branch settled. Fail-fast semantics resolved here so a
  // failed branch still waits for its siblings (their workers/pools drain
  // normally) before the visit fails.
  if (v->branch_failed) {
    finish_visit(h, false);
    return;
  }
  const double post = v->demand * (1.0 - config_.pre_fraction);
  begin_cpu_span(*v, post);
  cpu_.submit(post, [this, h] { on_cpu_done_finish(h); });
}

void Server::on_conn_granted_legacy(VisitHandle h) {
  VisitState* v = visit(h);
  if (v == nullptr) return;  // crashed while waiting for a connection
  if (trace::TraceContext* tr = v->request->trace.get()) {
    tr->add_edge_span(trace::SpanKind::kConnWait, depth_, primary_edge_id_,
                      v->conn_requested, engine_->now());
  }
  forward_legacy(h, /*conn_held=*/true);
}

void Server::forward_legacy(VisitHandle h, bool conn_held) {
  VisitState* v = visit(h);
  v->conn_held = conn_held;
  if (v->request->trace != nullptr) v->downstream_started = engine_->now();
  downstream_->dispatch(v->request, [this, h](bool ok) { on_legacy_response(h, ok); });
}

void Server::on_legacy_response(VisitHandle h, bool ok) {
  // The downstream response may arrive after this server crashed; the visit
  // (and its pool slots) are already gone — drop it.
  VisitState* v = visit(h);
  if (v == nullptr) return;
  if (trace::TraceContext* tr = v->request->trace.get()) {
    tr->add_edge_span(trace::SpanKind::kDownstream, depth_, primary_edge_id_,
                      v->downstream_started, engine_->now());
  }
  if (v->conn_held) conns_->release();
  if (!ok) {
    finish_visit(h, false);
    return;
  }
  // release() cannot touch this slot (only this visit's own continuations
  // finish it), but it can admit other traffic — refetch for safety.
  v = visit(h);
  v->call_index += 1;
  issue_downstream(h);
}

void Server::on_conn_granted_retry(VisitHandle h) {
  VisitState* v = visit(h);
  if (v == nullptr) return;
  if (trace::TraceContext* tr = v->request->trace.get()) {
    tr->add_edge_span(trace::SpanKind::kConnWait, depth_, primary_edge_id_,
                      v->conn_requested, engine_->now());
  }
  dispatch_downstream(h, /*attempt=*/0, /*conn_held=*/true);
}

void Server::dispatch_downstream(VisitHandle h, int attempt_no, bool conn_held) {
  VisitState* v = visit(h);
  const AttemptHandle ah = alloc_attempt();
  AttemptState& a = attempt_slab_[ah.index].state;
  a.visit = h;
  a.attempt = attempt_no;
  a.conn_held = conn_held;
  a.timeout = sim::EventHandle();
  if (v->request->trace != nullptr) v->downstream_started = engine_->now();
  downstream_->dispatch(v->request, [this, ah](bool ok) { on_attempt_response(ah, ok); });
  // The dispatch can settle synchronously (downstream rejects) and even grow
  // the attempt slab via re-entry — refetch before arming the deadline.
  AttemptState* armed = attempt(ah);
  if (retry_.timeout_seconds > 0.0 && armed != nullptr) {
    armed->timeout = engine_->schedule_after(sim::from_seconds(retry_.timeout_seconds),
                                             [this, ah] { on_attempt_timeout(ah); });
  }
}

void Server::on_attempt_response(AttemptHandle ah, bool ok) {
  AttemptState* a = attempt(ah);
  if (a == nullptr) return;  // deadline already expired; drop late response
  const VisitHandle h = a->visit;
  const int attempt_no = a->attempt;
  const bool conn_held = a->conn_held;
  a->timeout.cancel();
  free_attempt(ah);
  VisitState* v = visit(h);
  if (v == nullptr) return;  // server crashed while the call was in flight
  if (trace::TraceContext* tr = v->request->trace.get()) {
    tr->add_edge_span(trace::SpanKind::kDownstream, depth_, primary_edge_id_,
                      v->downstream_started, engine_->now());
  }
  on_subrequest_result(h, attempt_no, conn_held, ok);
}

void Server::on_attempt_timeout(AttemptHandle ah) {
  AttemptState* a = attempt(ah);
  if (a == nullptr) return;  // response won the race
  const VisitHandle h = a->visit;
  const int attempt_no = a->attempt;
  const bool conn_held = a->conn_held;
  free_attempt(ah);  // the late response will find a stale handle
  VisitState* v = visit(h);
  if (v == nullptr) return;
  ++subrequest_timeouts_;
  if (trace::TraceContext* tr = v->request->trace.get()) {
    tr->add_edge_span(trace::SpanKind::kTimeoutWait, depth_, primary_edge_id_,
                      v->downstream_started, engine_->now());
  }
  on_subrequest_result(h, attempt_no, conn_held, false);
}

void Server::on_subrequest_result(VisitHandle h, int attempt, bool conn_held, bool ok) {
  if (ok) {
    if (conn_held) conns_->release();
    VisitState* v = visit(h);  // release cannot free this slot; see above
    v->call_index += 1;
    issue_downstream(h);
    return;
  }
  if (attempt < retry_.max_retries) {
    ++subrequest_retries_;
    // Exponential backoff with deterministic jitter; the connection stays
    // held across attempts (a blocked app thread keeps its pool slot).
    const double base =
        retry_.backoff_base_seconds * std::pow(retry_.backoff_multiplier, attempt);
    const double jitter =
        retry_.jitter_fraction > 0.0
            ? 1.0 + retry_.jitter_fraction * (2.0 * rng_.next_double() - 1.0)
            : 1.0;
    const double delay = std::max(0.0, base * jitter);
    if (trace::TraceContext* tr = visit(h)->request->trace.get()) {
      tr->add_span(trace::SpanKind::kBackoff, depth_, engine_->now(),
                   engine_->now() + sim::from_seconds(delay));
    }
    engine_->schedule_after(sim::from_seconds(delay), [this, h, attempt, conn_held] {
      if (visit(h) == nullptr) return;
      dispatch_downstream(h, attempt + 1, conn_held);
    });
    return;
  }
  if (conn_held) conns_->release();
  finish_visit(h, false);
}

void Server::finish_visit(VisitHandle h, bool ok) {
  VisitState* v = visit(h);
  if (v == nullptr) return;
  if (ok) {
    ++completed_;
    response_time_sum_ += sim::to_seconds(engine_->now() - v->arrived);
  } else {
    ++rejected_;
  }
  DoneFn done = std::move(v->done);
  const bool held_worker = v->holds_worker;
  // Free before releasing the worker: the release can synchronously admit a
  // queued visit, which may reuse this very slot. The bumped generation is
  // what marks any continuation still holding `h` as stale.
  free_visit(h);
  if (held_worker) {
    workers_.release();
    sync_thread_count();
  }
  done(ok);
  if (workers_.in_use() == 0 && idle_callback_) {
    // Copy first: the callback may reset idle_callback_ (a draining VM
    // does), which must not destroy the std::function mid-execution.
    auto cb = idle_callback_;
    cb();
  }
}

void Server::crash() {
  ++epoch_;
  cpu_.abort_all();
  workers_.reset();
  if (conns_) conns_->reset();
  for (auto& e : fanout_) {
    if (e.pool) e.pool->reset();
  }
  cpu_.set_thread_count(0);

  // Fail every visit that was in flight or queued, in visit-id order (the
  // deterministic order the old id-keyed map iterated in). Freeing the slot
  // first makes every pre-crash continuation stale; firing done(false) here
  // is the only signal that runs.
  crash_scratch_.clear();
  for (uint32_t i = 0; i < visit_slab_.size(); ++i) {
    if (visit_slab_[i].live) {
      crash_scratch_.emplace_back(visit_slab_[i].state.visit_id, i);
    }
  }
  std::sort(crash_scratch_.begin(), crash_scratch_.end());
  for (const auto& [id, idx] : crash_scratch_) {
    VisitSlot& slot = visit_slab_[idx];
    if (!slot.live || slot.state.visit_id != id) continue;  // slot was reused
    ++rejected_;
    DoneFn done = std::move(slot.state.done);
    free_visit({idx, slot.gen});
    if (done) done(false);
  }
  if (idle_callback_) {
    auto cb = idle_callback_;
    cb();
  }
}

void Server::set_thread_pool_size(int size) {
  workers_.resize(size);
  sync_thread_count();
}

void Server::set_downstream_connections(int size) {
  if (managed_pool_ != nullptr) {
    managed_pool_->resize(size);
    return;
  }
  DCM_CHECK_MSG(conns_ != nullptr, "server has no downstream connection pool");
  conns_->resize(size);
}

void Server::set_cpu_capacity_factor(double factor) {
  cpu_.set_capacity_factor(factor);
}

}  // namespace dcm::ntier
