#include "ntier/server.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "ntier/tier.h"

namespace dcm::ntier {

struct Server::VisitState {
  uint64_t visit_id = 0;
  uint64_t epoch = 0;  // crash generation this visit belongs to
  RequestPtr request;
  DoneFn done;
  sim::SimTime arrived = 0;
  double demand = 0.0;  // sampled total CPU demand for this visit
  int calls = 0;        // downstream sub-requests still to issue
  bool finished = false;
  bool holds_worker = false;

  // Tracing scratch (written only when request->trace is non-null; the
  // visit's phases are strictly sequential, so one slot per kind suffices).
  sim::SimTime cpu_submitted = 0;
  double cpu_work = 0.0;
  sim::SimTime conn_requested = 0;
  sim::SimTime downstream_started = 0;
};

// Per-attempt settlement record for a retried sub-request. Exactly one of
// {downstream response, deadline expiry} may settle the attempt; whichever
// loses the race finds `settled` set and becomes a no-op, so a visit can
// never complete (or release a connection) twice.
struct Server::SubAttempt {
  bool settled = false;
  sim::EventHandle timeout;
};

Server::Server(sim::Engine& engine, ServerConfig config, int depth, Rng rng)
    : engine_(&engine),
      config_(std::move(config)),
      depth_(depth),
      rng_(rng),
      workers_(engine, config_.name + ".workers", config_.max_threads),
      cpu_(engine, config_.cpu) {
  DCM_CHECK(depth_ >= 0);
  DCM_CHECK(config_.pre_fraction >= 0.0 && config_.pre_fraction <= 1.0);
  if (config_.downstream_connections > 0) {
    conns_ = std::make_unique<SlotPool>(engine, config_.name + ".conns",
                                        config_.downstream_connections);
  }
}

void Server::sync_thread_count() { cpu_.set_thread_count(workers_.in_use()); }

bool Server::visit_is_stale(const std::shared_ptr<VisitState>& visit) const {
  return visit->finished || visit->epoch != epoch_;
}

void Server::process(const RequestPtr& request, DoneFn done) {
  DCM_CHECK(request != nullptr);
  if (!online_ || workers_.queue_length() >= config_.max_queue) {
    ++rejected_;
    done(false);
    return;
  }
  auto visit = std::make_shared<VisitState>();
  visit->visit_id = next_visit_id_++;
  visit->epoch = epoch_;
  visit->request = request;
  visit->done = std::move(done);
  visit->arrived = engine_->now();
  active_visits_.emplace(visit->visit_id, visit);
  workers_.acquire([this, visit] {
    if (visit_is_stale(visit)) return;
    if (trace::TraceContext* tr = visit->request->trace.get()) {
      tr->add_span(trace::SpanKind::kPoolWait, depth_, visit->arrived, engine_->now());
    }
    visit->holds_worker = true;
    sync_thread_count();
    start_visit(visit);
  });
}

void Server::begin_cpu_span(const std::shared_ptr<VisitState>& visit, double work) {
  if (visit->request->trace == nullptr) return;
  visit->cpu_submitted = engine_->now();
  visit->cpu_work = work;
}

void Server::end_cpu_span(const std::shared_ptr<VisitState>& visit) {
  trace::TraceContext* tr = visit->request->trace.get();
  if (tr == nullptr) return;
  const sim::SimTime now = engine_->now();
  const sim::SimTime nominal_end =
      std::min(now, visit->cpu_submitted + sim::from_seconds(visit->cpu_work));
  tr->add_span(trace::SpanKind::kService, depth_, visit->cpu_submitted, nominal_end,
               visit->cpu_work);
  // Anything past the nominal demand is run-queue wait / multithreading
  // inflation — the S*(N) − S0 share of the visit.
  if (now > nominal_end) tr->add_span(trace::SpanKind::kCpuWait, depth_, nominal_end, now);
}

void Server::start_visit(const std::shared_ptr<VisitState>& visit) {
  const auto& req = *visit->request;
  const double scale =
      req.demand_scale.size() > static_cast<size_t>(depth_)
          ? req.demand_scale[static_cast<size_t>(depth_)]
          : 1.0;
  const double variability =
      config_.demand_cv > 0.0 ? rng_.lognormal_mean_cv(1.0, config_.demand_cv) : 1.0;
  visit->demand = config_.cpu.params.s0 * scale * variability;
  visit->calls = (downstream_ != nullptr &&
                  req.downstream_calls.size() > static_cast<size_t>(depth_))
                     ? req.downstream_calls[static_cast<size_t>(depth_)]
                     : 0;

  if (visit->calls == 0) {
    begin_cpu_span(visit, visit->demand);
    cpu_.submit(visit->demand, [this, visit] {
      end_cpu_span(visit);
      finish_visit(visit, true);
    });
    return;
  }
  const double pre = visit->demand * config_.pre_fraction;
  begin_cpu_span(visit, pre);
  cpu_.submit(pre, [this, visit] {
    end_cpu_span(visit);
    issue_downstream(visit, 0);
  });
}

void Server::issue_downstream(const std::shared_ptr<VisitState>& visit, int call_index) {
  if (visit_is_stale(visit)) return;
  if (call_index >= visit->calls) {
    const double post = visit->demand * (1.0 - config_.pre_fraction);
    begin_cpu_span(visit, post);
    cpu_.submit(post, [this, visit] {
      end_cpu_span(visit);
      finish_visit(visit, true);
    });
    return;
  }
  if (visit->request->trace != nullptr) visit->conn_requested = engine_->now();
  if (retry_.enabled()) {
    if (conns_) {
      conns_->acquire([this, visit, call_index] {
        if (visit_is_stale(visit)) return;
        if (trace::TraceContext* tr = visit->request->trace.get()) {
          tr->add_span(trace::SpanKind::kConnWait, depth_, visit->conn_requested,
                       engine_->now());
        }
        dispatch_downstream(visit, call_index, /*attempt=*/0, /*conn_held=*/true);
      });
    } else {
      dispatch_downstream(visit, call_index, /*attempt=*/0, /*conn_held=*/false);
    }
    return;
  }
  // Legacy single-attempt path — kept allocation-identical to the
  // pre-resilience behaviour for the default configuration.
  const auto forward = [this, visit, call_index](bool conn_held) {
    if (visit->request->trace != nullptr) visit->downstream_started = engine_->now();
    downstream_->dispatch(visit->request, [this, visit, call_index, conn_held](bool ok) {
      // The downstream response may arrive after this server crashed; the
      // visit (and its pool slots) are already gone — drop it.
      if (visit_is_stale(visit)) return;
      if (trace::TraceContext* tr = visit->request->trace.get()) {
        tr->add_span(trace::SpanKind::kDownstream, depth_, visit->downstream_started,
                     engine_->now());
      }
      if (conn_held) conns_->release();
      if (!ok) {
        finish_visit(visit, false);
        return;
      }
      issue_downstream(visit, call_index + 1);
    });
  };
  if (conns_) {
    conns_->acquire([this, visit, forward] {
      if (visit_is_stale(visit)) return;
      if (trace::TraceContext* tr = visit->request->trace.get()) {
        tr->add_span(trace::SpanKind::kConnWait, depth_, visit->conn_requested,
                     engine_->now());
      }
      forward(true);
    });
  } else {
    forward(false);
  }
}

void Server::dispatch_downstream(const std::shared_ptr<VisitState>& visit, int call_index,
                                 int attempt, bool conn_held) {
  auto state = std::make_shared<SubAttempt>();
  if (visit->request->trace != nullptr) visit->downstream_started = engine_->now();
  downstream_->dispatch(visit->request,
                        [this, visit, call_index, attempt, conn_held, state](bool ok) {
                          if (state->settled) return;  // deadline already expired
                          state->settled = true;
                          state->timeout.cancel();
                          if (visit_is_stale(visit)) return;
                          if (trace::TraceContext* tr = visit->request->trace.get()) {
                            tr->add_span(trace::SpanKind::kDownstream, depth_,
                                         visit->downstream_started, engine_->now());
                          }
                          on_subrequest_result(visit, call_index, attempt, conn_held, ok);
                        });
  if (retry_.timeout_seconds > 0.0 && !state->settled) {
    state->timeout = engine_->schedule_after(
        sim::from_seconds(retry_.timeout_seconds),
        [this, visit, call_index, attempt, conn_held, state] {
          if (state->settled) return;
          state->settled = true;  // the late response will be dropped
          if (visit_is_stale(visit)) return;
          ++subrequest_timeouts_;
          if (trace::TraceContext* tr = visit->request->trace.get()) {
            tr->add_span(trace::SpanKind::kTimeoutWait, depth_,
                         visit->downstream_started, engine_->now());
          }
          on_subrequest_result(visit, call_index, attempt, conn_held, false);
        });
  }
}

void Server::on_subrequest_result(const std::shared_ptr<VisitState>& visit, int call_index,
                                  int attempt, bool conn_held, bool ok) {
  if (ok) {
    if (conn_held) conns_->release();
    issue_downstream(visit, call_index + 1);
    return;
  }
  if (attempt < retry_.max_retries) {
    ++subrequest_retries_;
    // Exponential backoff with deterministic jitter; the connection stays
    // held across attempts (a blocked app thread keeps its pool slot).
    const double base =
        retry_.backoff_base_seconds * std::pow(retry_.backoff_multiplier, attempt);
    const double jitter =
        retry_.jitter_fraction > 0.0
            ? 1.0 + retry_.jitter_fraction * (2.0 * rng_.next_double() - 1.0)
            : 1.0;
    const double delay = std::max(0.0, base * jitter);
    if (trace::TraceContext* tr = visit->request->trace.get()) {
      tr->add_span(trace::SpanKind::kBackoff, depth_, engine_->now(),
                   engine_->now() + sim::from_seconds(delay));
    }
    engine_->schedule_after(sim::from_seconds(delay),
                            [this, visit, call_index, attempt, conn_held] {
                              if (visit_is_stale(visit)) return;
                              dispatch_downstream(visit, call_index, attempt + 1, conn_held);
                            });
    return;
  }
  if (conn_held) conns_->release();
  finish_visit(visit, false);
}

void Server::finish_visit(const std::shared_ptr<VisitState>& visit, bool ok) {
  if (visit_is_stale(visit)) return;
  visit->finished = true;
  active_visits_.erase(visit->visit_id);
  if (ok) {
    ++completed_;
    response_time_sum_ += sim::to_seconds(engine_->now() - visit->arrived);
  } else {
    ++rejected_;
  }
  DoneFn done = std::move(visit->done);
  if (visit->holds_worker) {
    visit->holds_worker = false;
    workers_.release();
    sync_thread_count();
  }
  done(ok);
  if (workers_.in_use() == 0 && idle_callback_) {
    // Copy first: the callback may reset idle_callback_ (a draining VM
    // does), which must not destroy the std::function mid-execution.
    auto cb = idle_callback_;
    cb();
  }
}

void Server::crash() {
  ++epoch_;
  cpu_.abort_all();
  workers_.reset();
  if (conns_) conns_->reset();
  cpu_.set_thread_count(0);

  // Fail every visit that was in flight or queued. Their continuations are
  // epoch-guarded, so firing done(false) here is the only signal that runs.
  auto failed = std::move(active_visits_);
  active_visits_.clear();
  for (auto& [id, visit] : failed) {
    if (visit->finished) continue;
    visit->finished = true;
    ++rejected_;
    DoneFn done = std::move(visit->done);
    if (done) done(false);
  }
  if (idle_callback_) {
    auto cb = idle_callback_;
    cb();
  }
}

void Server::set_thread_pool_size(int size) {
  workers_.resize(size);
  sync_thread_count();
}

void Server::set_downstream_connections(int size) {
  DCM_CHECK_MSG(conns_ != nullptr, "server has no downstream connection pool");
  conns_->resize(size);
}

void Server::set_cpu_capacity_factor(double factor) {
  cpu_.set_capacity_factor(factor);
}

}  // namespace dcm::ntier
