// Declarative service-graph topology.
//
// The paper's n-tier system is a linear chain (web → app → db), but the
// deployment shapes we want to study are DAGs: an app tier that fans out to
// a cache and a database and joins both replies, a load-balancer hop spliced
// between tiers, parallel leaf services. A ServiceGraph makes the topology
// explicit: nodes are tiers (a scalable VM group), edges are typed
// synchronous calls carrying a calls-per-visit multiplier, an optional
// caller-side connection pool, and at most one DCM-managed pool (the "db
// connections" soft resource the controller actuates).
//
// Invariants (validated at construction, std::runtime_error on violation):
//   - node 0 is the unique root (no in-edges); every other node is reachable
//     via at least one in-edge;
//   - the edge set is acyclic (visit ratios diverge on cycles) — checked by
//     model::propagate_visit_ratios, which also yields the path-multiplied
//     per-node visit ratios V_m;
//   - per-node fan-out ≤ kMaxFanOut, node/edge counts within the inline
//     request-array bounds (request.h);
//   - at most one managed edge, and a managed edge must carry a pool.
//
// Join semantics are synchronous and fail-fast: a node with several out-edges
// issues each edge's calls sequentially per edge, edges concurrently, and
// resumes its post-processing CPU phase only after every edge settles; any
// sub-request failure fails the whole visit once outstanding branches drain.
//
// A chain declared in depth order (edge i = depth i → depth i+1) is the
// degenerate case and reproduces the legacy wiring bit-for-bit: edge id
// equals the issuing tier's depth, so per-edge request plans coincide with
// the historical per-tier hop lists.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ntier/request.h"
#include "ntier/tier.h"

namespace dcm::ntier {

/// Role a node plays in the deployment. Drives workload demand-scale
/// assignment (web/app/db map to the servlet catalog's per-tier scales) and
/// the controller's choice of managed tiers.
enum class NodeRole { kWeb, kApp, kDb, kLb, kCache };

const char* node_role_name(NodeRole role);
/// Parses "web" | "app" | "db" | "lb" | "cache". Returns false on anything
/// else.
bool parse_node_role(const std::string& text, NodeRole* out);

struct ServiceNode {
  TierConfig tier;
  NodeRole role = NodeRole::kApp;
};

/// One typed synchronous call edge. Every visit of `from` issues its calls
/// to `to` sequentially (matching the chain's one-at-a-time sub-request
/// discipline).
struct ServiceEdge {
  int from = 0;
  int to = 0;
  /// Calls per visit when servlet_calls is false.
  int fixed_calls = 1;
  /// True: calls per visit come from the sampled servlet's db_queries (the
  /// paper's per-request query count q).
  bool servlet_calls = false;
  /// Mean calls per visit for static visit-ratio propagation. Only consulted
  /// when servlet_calls is true (fixed edges use fixed_calls); builders set
  /// it to the catalog's mean query count.
  double mean_calls = 1.0;
  /// >0: the caller holds one slot from a per-server pool of this capacity
  /// across each sub-request (connection-pool semantics). 0 = no pool.
  int pool_capacity = 0;
  /// DCM-managed pool: the controller resizes it via the tier's
  /// set_downstream_connections path. Implies pool_capacity > 0.
  bool managed = false;
};

class ServiceGraph {
 public:
  /// Validates the invariants above; throws std::runtime_error with a
  /// descriptive message on violation (including cycles, reported by node
  /// id via model::propagate_visit_ratios).
  ServiceGraph(std::vector<ServiceNode> nodes, std::vector<ServiceEdge> edges);

  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }
  const ServiceNode& node(size_t i) const { return nodes_[i]; }
  const ServiceEdge& edge(size_t i) const { return edges_[i]; }
  const std::vector<ServiceNode>& nodes() const { return nodes_; }
  const std::vector<ServiceEdge>& edges() const { return edges_; }

  /// Edge ids leaving `node`, in declaration order (= the order branches are
  /// issued).
  const std::vector<int>& out_edges(size_t node) const { return out_edges_[node]; }

  /// Path-multiplied static visit ratios, V_0 = 1 at the root.
  const std::vector<double>& visit_ratios() const { return visit_ratios_; }

  /// True when the graph is a linear chain declared in depth order
  /// (edge i connects node i → node i+1) — the degenerate case equivalent
  /// to the legacy tier-chain wiring.
  bool is_chain() const;

  /// Lowest-id node with the given role, or -1.
  int first_node_with_role(NodeRole role) const;
  /// Id of the unique managed edge, or -1 when none is declared.
  int managed_edge() const { return managed_edge_; }

 private:
  std::vector<ServiceNode> nodes_;
  std::vector<ServiceEdge> edges_;
  std::vector<std::vector<int>> out_edges_;
  std::vector<double> visit_ratios_;
  int managed_edge_ = -1;
};

}  // namespace dcm::ntier
