#include "ntier/metric_sample.h"

#include <map>

#include "common/strings.h"

namespace dcm::ntier {

std::string MetricSample::serialize() const {
  return str_format(
      "t=%lld;srv=%s;tier=%s;d=%d;st=%s;x=%.6f;rt=%.6f;n=%.4f;u=%.4f;stp=%d;cp=%d;q=%d",
      static_cast<long long>(time), server_id.c_str(), tier.c_str(), depth, vm_state.c_str(),
      throughput, avg_response_time, concurrency, cpu_util, thread_pool_size, conn_pool_size,
      queue_length);
}

std::optional<MetricSample> MetricSample::parse(const std::string& payload) {
  std::map<std::string, std::string> fields;
  for (const auto& part : split(payload, ';')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos) return std::nullopt;
    fields[part.substr(0, eq)] = part.substr(eq + 1);
  }
  const auto get = [&fields](const char* key) -> std::optional<std::string> {
    const auto it = fields.find(key);
    if (it == fields.end()) return std::nullopt;
    return it->second;
  };

  MetricSample s;
  const auto t = get("t");
  const auto srv = get("srv");
  const auto tier = get("tier");
  const auto d = get("d");
  const auto st = get("st");
  const auto x = get("x");
  const auto rt = get("rt");
  const auto n = get("n");
  const auto u = get("u");
  const auto stp = get("stp");
  const auto cp = get("cp");
  const auto q = get("q");
  if (!t || !srv || !tier || !d || !st || !x || !rt || !n || !u || !stp || !cp || !q) {
    return std::nullopt;
  }
  const auto ti = parse_int(*t);
  const auto di = parse_int(*d);
  const auto xv = parse_double(*x);
  const auto rtv = parse_double(*rt);
  const auto nv = parse_double(*n);
  const auto uv = parse_double(*u);
  const auto stpv = parse_int(*stp);
  const auto cpv = parse_int(*cp);
  const auto qv = parse_int(*q);
  if (!ti || !di || !xv || !rtv || !nv || !uv || !stpv || !cpv || !qv) return std::nullopt;

  s.time = *ti;
  s.server_id = *srv;
  s.tier = *tier;
  s.depth = static_cast<int>(*di);
  s.vm_state = *st;
  s.throughput = *xv;
  s.avg_response_time = *rtv;
  s.concurrency = *nv;
  s.cpu_util = *uv;
  s.thread_pool_size = static_cast<int>(*stpv);
  s.conn_pool_size = static_cast<int>(*cpv);
  s.queue_length = static_cast<int>(*qv);
  return s;
}

}  // namespace dcm::ntier
