#include "ntier/metric_sample.h"

#include <string_view>

#include "common/strings.h"

namespace dcm::ntier {

std::string MetricSample::serialize() const {
  return str_format(
      "t=%lld;srv=%s;tier=%s;d=%d;st=%s;x=%.6f;rt=%.6f;n=%.4f;u=%.4f;stp=%d;cp=%d;q=%d",
      static_cast<long long>(time), server_id.c_str(), tier.c_str(), depth, vm_state.c_str(),
      throughput, avg_response_time, concurrency, cpu_util, thread_pool_size, conn_pool_size,
      queue_length);
}

std::optional<MetricSample> MetricSample::parse(const std::string& payload) {
  // Scanned in place with string_views: this runs once per monitor sample on
  // the telemetry path, and the map<string, string> version it replaces
  // allocated ~25 times per call (split vector, substr keys/values, map
  // nodes). Semantics are unchanged: parts are ';'-separated, every part
  // needs an '=', unknown keys are ignored, the last occurrence of a
  // repeated key wins, and all twelve known keys are required.
  std::string_view t, srv, tier, d, st, x, rt, n, u, stp, cp, q;
  std::string_view rest = payload;
  for (;;) {
    const size_t semi = rest.find(';');
    const std::string_view part = rest.substr(0, semi);
    const size_t eq = part.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = part.substr(0, eq);
    // A value can legitimately be empty; "seen" is tracked via data() being
    // non-null (these views always point into `payload` once assigned).
    const std::string_view value = part.substr(eq + 1);
    if (key == "t") {
      t = value;
    } else if (key == "srv") {
      srv = value;
    } else if (key == "tier") {
      tier = value;
    } else if (key == "d") {
      d = value;
    } else if (key == "st") {
      st = value;
    } else if (key == "x") {
      x = value;
    } else if (key == "rt") {
      rt = value;
    } else if (key == "n") {
      n = value;
    } else if (key == "u") {
      u = value;
    } else if (key == "stp") {
      stp = value;
    } else if (key == "cp") {
      cp = value;
    } else if (key == "q") {
      q = value;
    }
    if (semi == std::string_view::npos) break;
    rest.remove_prefix(semi + 1);
  }
  if (t.data() == nullptr || srv.data() == nullptr || tier.data() == nullptr ||
      d.data() == nullptr || st.data() == nullptr || x.data() == nullptr ||
      rt.data() == nullptr || n.data() == nullptr || u.data() == nullptr ||
      stp.data() == nullptr || cp.data() == nullptr || q.data() == nullptr) {
    return std::nullopt;
  }

  const auto ti = parse_int(t);
  const auto di = parse_int(d);
  const auto xv = parse_double(x);
  const auto rtv = parse_double(rt);
  const auto nv = parse_double(n);
  const auto uv = parse_double(u);
  const auto stpv = parse_int(stp);
  const auto cpv = parse_int(cp);
  const auto qv = parse_int(q);
  if (!ti || !di || !xv || !rtv || !nv || !uv || !stpv || !cpv || !qv) return std::nullopt;

  MetricSample s;
  s.time = *ti;
  s.server_id.assign(srv);
  s.tier.assign(tier);
  s.depth = static_cast<int>(*di);
  s.vm_state.assign(st);
  s.throughput = *xv;
  s.avg_response_time = *rtv;
  s.concurrency = *nv;
  s.cpu_util = *uv;
  s.thread_pool_size = static_cast<int>(*stpv);
  s.conn_pool_size = static_cast<int>(*cpv);
  s.queue_length = static_cast<int>(*qv);
  return s;
}

}  // namespace dcm::ntier
