#include "ntier/monitor_agent.h"

#include "common/check.h"

namespace dcm::ntier {

MonitorAgent::MonitorAgent(sim::Engine& engine, Vm& vm, const std::string& tier_name, int depth,
                           bus::Producer& producer, sim::SimTime period)
    : engine_(&engine),
      vm_(&vm),
      tier_name_(tier_name),
      depth_(depth),
      producer_(&producer),
      period_(period) {
  DCM_CHECK(period_ > 0);
  last_time_ = engine_->now();
  timer_ = engine_->schedule_periodic(period_, [this] { tick(); });
}

MonitorAgent::~MonitorAgent() { timer_.cancel(); }

MetricSample MonitorAgent::collect() {
  const Server& server = vm_->server();
  const sim::SimTime now = engine_->now();
  const double window = sim::to_seconds(now - last_time_);

  MetricSample s;
  s.time = now;
  s.server_id = vm_->id();
  s.tier = tier_name_;
  s.depth = depth_;
  s.vm_state = vm_state_name(vm_->state());
  s.thread_pool_size = server.thread_pool_size();
  s.conn_pool_size = server.downstream_connection_limit();
  s.queue_length = server.queue_length();

  const uint64_t completed = server.completed();
  const double rt_sum = server.response_time_sum();
  const double conc_integral = server.concurrency_integral();
  const double util_integral = server.cpu_util_integral();

  if (window > 0.0) {
    const uint64_t delta_completed = completed - last_completed_;
    s.throughput = static_cast<double>(delta_completed) / window;
    s.avg_response_time =
        delta_completed > 0
            ? (rt_sum - last_rt_sum_) / static_cast<double>(delta_completed)
            : 0.0;
    s.concurrency = (conc_integral - last_concurrency_integral_) / window;
    s.cpu_util = (util_integral - last_util_integral_) / window;
  }

  last_time_ = now;
  last_completed_ = completed;
  last_rt_sum_ = rt_sum;
  last_concurrency_integral_ = conc_integral;
  last_util_integral_ = util_integral;
  return s;
}

const std::string& MonitorAgent::vm_id() const { return vm_->id(); }

bool MonitorAgent::silenced() const { return engine_->now() < silenced_until_; }

void MonitorAgent::tick() {
  if (vm_->state() == VmState::kStopped || vm_->state() == VmState::kFailed) {
    return;  // dead VMs report nothing (their agent died with them)
  }
  if (silenced()) return;  // fault-injected agent silence
  MetricSample sample = collect();
  producer_->send(kMetricsTopic, sample.server_id, sample.serialize(), sample.time);
}

MonitorFleet::MonitorFleet(sim::Engine& engine, NTierApp& app, bus::Broker& broker,
                           sim::SimTime period, sim::SimTime retention)
    : engine_(&engine), producer_(broker), period_(period) {
  if (broker.find_topic(kMetricsTopic) == nullptr) {
    bus::TopicConfig config;
    config.partitions = 4;
    config.retention = retention;
    broker.create_topic(kMetricsTopic, config);
  }
  // Periodically expire old metric records, like Kafka's log cleaner.
  retention_timer_ = engine.schedule_periodic(
      sim::from_seconds(10.0), [&broker, &engine] { broker.enforce_retention(engine.now()); });

  for (size_t depth = 0; depth < app.tier_count(); ++depth) {
    Tier& tier = app.tier(depth);
    for (const auto& vm : tier.vms()) attach(*vm, tier.name(), static_cast<int>(depth));
    tier.add_vm_activated_callback([this, &tier, depth](Vm& vm) {
      attach(vm, tier.name(), static_cast<int>(depth));
    });
  }
}

bool MonitorFleet::silence_vm(const std::string& vm_id, sim::SimTime until) {
  for (auto& agent : agents_) {
    if (agent->vm_id() == vm_id) {
      agent->silence_until(until);
      return true;
    }
  }
  return false;
}

void MonitorFleet::attach(Vm& vm, const std::string& tier_name, int depth) {
  agents_.push_back(
      std::make_unique<MonitorAgent>(*engine_, vm, tier_name, depth, producer_, period_));
}

}  // namespace dcm::ntier
