// The per-second monitoring sample shipped from agents to the controller.
//
// Serialised to a compact key=value text payload for the bus (agents and
// the controller are different components; the bus carries bytes, exactly
// as Kafka does in the paper's deployment).
#pragma once

#include <optional>
#include <string>

#include "sim/time.h"

namespace dcm::ntier {

struct MetricSample {
  sim::SimTime time = 0;
  std::string server_id;           // VM id
  std::string tier;                // tier name
  int depth = 0;                   // tier index
  std::string vm_state;            // BOOTING/ACTIVE/DRAINING/STOPPED
  double throughput = 0.0;         // completions/s over the sample window
  double avg_response_time = 0.0;  // seconds (0 when nothing completed)
  double concurrency = 0.0;        // time-weighted busy worker threads
  double cpu_util = 0.0;           // [0, 1]
  int thread_pool_size = 0;
  int conn_pool_size = 0;          // 0 for leaf servers
  int queue_length = 0;

  std::string serialize() const;
  /// Strict parse; nullopt on any malformed or missing field.
  static std::optional<MetricSample> parse(const std::string& payload);
};

}  // namespace dcm::ntier
