#include "ntier/service_graph.h"

#include <stdexcept>
#include <utility>

#include "model/visit_ratio.h"

namespace dcm::ntier {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("ServiceGraph: " + message);
}

}  // namespace

const char* node_role_name(NodeRole role) {
  switch (role) {
    case NodeRole::kWeb: return "web";
    case NodeRole::kApp: return "app";
    case NodeRole::kDb: return "db";
    case NodeRole::kLb: return "lb";
    case NodeRole::kCache: return "cache";
  }
  return "?";
}

bool parse_node_role(const std::string& text, NodeRole* out) {
  if (text == "web") *out = NodeRole::kWeb;
  else if (text == "app") *out = NodeRole::kApp;
  else if (text == "db") *out = NodeRole::kDb;
  else if (text == "lb") *out = NodeRole::kLb;
  else if (text == "cache") *out = NodeRole::kCache;
  else return false;
  return true;
}

ServiceGraph::ServiceGraph(std::vector<ServiceNode> nodes, std::vector<ServiceEdge> edges)
    : nodes_(std::move(nodes)), edges_(std::move(edges)) {
  if (nodes_.empty()) fail("graph needs at least one node");
  if (nodes_.size() > kMaxGraphNodes) {
    fail("too many nodes (" + std::to_string(nodes_.size()) + " > " +
         std::to_string(kMaxGraphNodes) + ")");
  }
  if (edges_.size() > kMaxGraphEdges) {
    fail("too many edges (" + std::to_string(edges_.size()) + " > " +
         std::to_string(kMaxGraphEdges) + ")");
  }

  const int n = static_cast<int>(nodes_.size());
  out_edges_.assign(nodes_.size(), {});
  std::vector<int> in_degree(nodes_.size(), 0);
  std::vector<model::VisitEdge> visit_edges;
  visit_edges.reserve(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) {
    const ServiceEdge& e = edges_[i];
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) {
      fail("edge " + std::to_string(i) + " references a node outside [0, " +
           std::to_string(n) + ")");
    }
    if (e.from == e.to) fail("edge " + std::to_string(i) + " is a self-loop");
    if (e.fixed_calls < 0) fail("edge " + std::to_string(i) + " has negative calls");
    if (e.mean_calls < 0.0) fail("edge " + std::to_string(i) + " has negative mean calls");
    if (e.pool_capacity < 0) fail("edge " + std::to_string(i) + " has negative pool capacity");
    if (e.managed) {
      if (e.pool_capacity <= 0) {
        fail("edge " + std::to_string(i) + " is managed but carries no connection pool");
      }
      if (managed_edge_ >= 0) {
        fail("at most one managed edge is supported (edges " +
             std::to_string(managed_edge_) + " and " + std::to_string(i) + ")");
      }
      managed_edge_ = static_cast<int>(i);
    }
    out_edges_[static_cast<size_t>(e.from)].push_back(static_cast<int>(i));
    ++in_degree[static_cast<size_t>(e.to)];
    visit_edges.push_back({e.from, e.to,
                           e.servlet_calls ? e.mean_calls
                                           : static_cast<double>(e.fixed_calls)});
  }

  if (in_degree[0] != 0) fail("node 0 must be the root (it has an in-edge)");
  for (int i = 1; i < n; ++i) {
    if (in_degree[static_cast<size_t>(i)] == 0) {
      fail("node " + std::to_string(i) + " (" + nodes_[static_cast<size_t>(i)].tier.name +
           ") is unreachable from the root");
    }
  }
  for (int i = 0; i < n; ++i) {
    if (out_edges_[static_cast<size_t>(i)].size() > kMaxFanOut) {
      fail("node " + std::to_string(i) + " fans out to " +
           std::to_string(out_edges_[static_cast<size_t>(i)].size()) + " edges (max " +
           std::to_string(kMaxFanOut) + ")");
    }
  }

  // Throws with the cyclic node set on a cycle; also yields the static V_m.
  visit_ratios_ = model::propagate_visit_ratios(nodes_.size(), visit_edges);
}

bool ServiceGraph::is_chain() const {
  if (edges_.size() + 1 != nodes_.size()) return false;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].from != static_cast<int>(i) || edges_[i].to != static_cast<int>(i) + 1) {
      return false;
    }
  }
  return true;
}

int ServiceGraph::first_node_with_role(NodeRole role) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].role == role) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace dcm::ntier
