// Per-server configuration.
#pragma once

#include <string>

#include "ntier/cpu_scheduler.h"

namespace dcm::ntier {

struct ServerConfig {
  std::string name = "server";

  /// CPU model: cpu.params.s0 is the *reference* per-visit demand (seconds);
  /// individual visits scale it by the request's demand_scale and the
  /// sampled variability below.
  CpuModelConfig cpu;

  /// Worker thread pool size — Apache workers / Tomcat maxThreads / MySQL
  /// max_connections. This is the soft resource the APP-agent resizes.
  int max_threads = 100;

  /// Accept-queue bound in front of the worker pool; arrivals beyond it are
  /// rejected (done(false)). Large by default: the paper's experiments never
  /// drop, they queue.
  int max_queue = 1'000'000;

  /// Connection pool size toward the downstream tier (Tomcat's DBConnP).
  /// Ignored for leaf servers.
  int downstream_connections = 80;

  /// Fraction of a visit's CPU demand executed before downstream calls; the
  /// remainder runs after the last call completes.
  double pre_fraction = 0.5;

  /// Coefficient of variation for per-visit demand (lognormal multiplier);
  /// 0 = deterministic demands.
  double demand_cv = 0.0;
};

}  // namespace dcm::ntier
