// VM lifecycle wrapper around a Server.
//
// Mirrors the paper's scaling mechanics: a newly launched VM spends a
// preparation period (15 s in the paper) before entering service; a removed
// VM first drains in-flight requests (deregistered from the load balancer),
// then stops.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "ntier/server.h"
#include "sim/engine.h"

namespace dcm::ntier {

enum class VmState { kBooting, kActive, kDraining, kStopped, kFailed };

const char* vm_state_name(VmState state);

class Vm {
 public:
  /// `on_active` fires when the preparation period elapses (synchronously if
  /// boot_delay == 0).
  Vm(sim::Engine& engine, std::string id, std::unique_ptr<Server> server,
     sim::SimTime boot_delay, std::function<void(Vm&)> on_active);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  /// Stops accepting work and fires `on_stopped` once in-flight requests
  /// drain (immediately if already idle). Only valid when ACTIVE.
  void begin_drain(std::function<void(Vm&)> on_stopped);

  /// Failure injection: abrupt crash of the VM. All in-flight requests fail
  /// immediately (Server::crash()). Valid in any live state; a booting VM
  /// simply never comes up.
  void fail();

  const std::string& id() const { return id_; }
  VmState state() const { return state_; }
  Server& server() { return *server_; }
  const Server& server() const { return *server_; }
  sim::SimTime launched_at() const { return launched_at_; }

 private:
  sim::Engine* engine_;
  std::string id_;
  std::unique_ptr<Server> server_;
  VmState state_ = VmState::kBooting;
  sim::SimTime launched_at_ = 0;
  sim::EventHandle boot_event_;
};

}  // namespace dcm::ntier
