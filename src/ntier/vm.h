// VM lifecycle wrapper around a Server.
//
// Mirrors the paper's scaling mechanics: a newly launched VM spends a
// preparation period (15 s in the paper) before entering service; a removed
// VM first drains in-flight requests (deregistered from the load balancer),
// then stops.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "ntier/server.h"
#include "sim/engine.h"

namespace dcm::ntier {

enum class VmState { kBooting, kActive, kDraining, kStopped, kFailed };

const char* vm_state_name(VmState state);

class Vm {
 public:
  /// Drain-completion signal: `failed` is false for a clean drain (VM is
  /// STOPPED) and true when the VM crashed mid-drain (VM is FAILED) — the
  /// callback fires exactly once either way, so scale-in bookkeeping never
  /// leaks a pending drain.
  using DrainCallback = std::function<void(Vm&, bool failed)>;

  /// `on_active` fires when the preparation period elapses (synchronously if
  /// boot_delay == 0).
  Vm(sim::Engine& engine, std::string id, std::unique_ptr<Server> server,
     sim::SimTime boot_delay, std::function<void(Vm&)> on_active);

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  /// Stops accepting work and fires `on_stopped` once in-flight requests
  /// drain (immediately if already idle). Only valid when ACTIVE.
  void begin_drain(DrainCallback on_stopped);

  /// Failure injection: abrupt crash of the VM. All in-flight requests fail
  /// immediately (Server::crash()), the server goes offline (new work is
  /// refused until someone brings it back), and a pending drain callback is
  /// notified with failed=true. Valid in any live state; a booting VM
  /// simply never comes up.
  void fail();

  const std::string& id() const { return id_; }
  VmState state() const { return state_; }
  Server& server() { return *server_; }
  const Server& server() const { return *server_; }
  sim::SimTime launched_at() const { return launched_at_; }

 private:
  void finish_drain(bool failed);

  sim::Engine* engine_;
  std::string id_;
  std::unique_ptr<Server> server_;
  VmState state_ = VmState::kBooting;
  sim::SimTime launched_at_ = 0;
  sim::EventHandle boot_event_;
  DrainCallback drain_callback_;
};

}  // namespace dcm::ntier
