// Fine-grained resource monitor (paper Sec. IV).
//
// One MonitorAgent runs inside each VM, snapshots the server's counters
// every second, and produces a MetricSample record to the bus. The
// MonitorFleet attaches an agent to every VM of an app — including VMs
// launched later by scale-out.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bus/producer.h"
#include "ntier/app.h"
#include "ntier/metric_sample.h"
#include "ntier/vm.h"
#include "sim/engine.h"

namespace dcm::ntier {

inline constexpr const char* kMetricsTopic = "dcm.metrics";

class MonitorAgent {
 public:
  MonitorAgent(sim::Engine& engine, Vm& vm, const std::string& tier_name, int depth,
               bus::Producer& producer, sim::SimTime period = sim::kNanosPerSecond);
  ~MonitorAgent();

  MonitorAgent(const MonitorAgent&) = delete;
  MonitorAgent& operator=(const MonitorAgent&) = delete;

  /// Builds the sample for the window since the previous tick (also used
  /// directly by tests).
  MetricSample collect();

  const std::string& vm_id() const;

  /// Fault injection: the agent stops producing samples until `until`
  /// (exclusive). Windowed deltas still accumulate, so the first sample
  /// after the silence covers the whole gap.
  void silence_until(sim::SimTime until) { silenced_until_ = until; }
  bool silenced() const;

 private:
  void tick();

  sim::Engine* engine_;
  Vm* vm_;
  std::string tier_name_;
  int depth_;
  bus::Producer* producer_;
  sim::SimTime period_;
  sim::EventHandle timer_;
  sim::SimTime silenced_until_ = 0;

  // Previous-tick snapshot for windowed deltas.
  sim::SimTime last_time_ = 0;
  uint64_t last_completed_ = 0;
  double last_rt_sum_ = 0.0;
  double last_concurrency_integral_ = 0.0;
  double last_util_integral_ = 0.0;
};

/// Creates the metrics topic (if needed) and keeps every VM of the app
/// covered by an agent.
class MonitorFleet {
 public:
  MonitorFleet(sim::Engine& engine, NTierApp& app, bus::Broker& broker,
               sim::SimTime period = sim::kNanosPerSecond,
               sim::SimTime retention = sim::from_seconds(120.0));

  MonitorFleet(const MonitorFleet&) = delete;
  MonitorFleet& operator=(const MonitorFleet&) = delete;

  size_t agent_count() const { return agents_.size(); }
  bus::Producer& producer() { return producer_; }

  /// Fault injection: silences the agent monitoring `vm_id` until `until`.
  /// Returns false when no live agent matches.
  bool silence_vm(const std::string& vm_id, sim::SimTime until);

 private:
  void attach(Vm& vm, const std::string& tier_name, int depth);

  sim::Engine* engine_;
  bus::Producer producer_;
  sim::SimTime period_;
  std::vector<std::unique_ptr<MonitorAgent>> agents_;
  sim::EventHandle retention_timer_;
};

}  // namespace dcm::ntier
