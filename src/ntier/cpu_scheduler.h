// State-dependent processor-sharing CPU model.
//
// This is where the paper's multi-threading service-time model (Sec. III-B)
// becomes the simulator's ground truth. With N busy worker threads on the
// server (including threads blocked on downstream calls — they still incur
// context/coherency overhead), the inflated per-request service time is
//
//   S*(N) = S0 + α(N−1) + βN(N−1) + θ·max(0, N−T)²
//
// The first three terms are the paper's Eq. 5; the θ term is a "thrash"
// extension modelling the sharp collapse a real MySQL exhibits past a memory
// /lock-contention threshold T (the paper's Fig. 2a shows this cliff; the
// quadratic alone is too gentle). The aggregate CPU capacity is then
//
//   cap(N) = N·S0 / S*(N)   [work-seconds per second]
//
// shared equally among the n_c jobs currently executing CPU work, with each
// job's progress clamped at 1 work-sec/sec (a single thread cannot run
// faster than real time). For a leaf tier where every thread is CPU-active,
// the completion rate at concurrency N is exactly N/S*(N) — Eq. 7.
//
// Implementation: virtual-time processor sharing. All active jobs progress
// at the same rate, so each job finishes when the shared virtual-work clock
// V reaches (V at entry + its work); a min-heap keyed on that finish value
// yields O(log n) per event.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "model/concurrency_model.h"
#include "sim/engine.h"

namespace dcm::ntier {

struct CpuModelConfig {
  model::ServiceTimeParams params;  // S0 (reference demand), α, β
  double thrash_threshold = 1e18;   // T — concurrency where thrashing starts
  double thrash_factor = 0.0;       // θ — quadratic thrash coefficient

  /// S*(n) including the thrash extension.
  double inflated_service_time(double n) const;
  /// cap(n) in work-seconds/second.
  double capacity(double n) const;
  /// n / S*(n) — requests/second a leaf server sustains at concurrency n.
  double throughput_at(double n) const;
};

class CpuScheduler {
 public:
  CpuScheduler(sim::Engine& engine, CpuModelConfig config);

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  /// Submits `work` seconds of single-threaded CPU work; `done` fires when
  /// it completes under processor sharing. The callback type is the engine's
  /// SBO EventFn: small captures ride through the slab as plain byte copies
  /// instead of indirect std::function manager calls — this path runs once
  /// per CPU span, the hottest callback churn in the simulator.
  void submit(double work, sim::EventFn done);

  /// Fused set_thread_count(n) + submit(work, done) for the worker-grant
  /// path, where the two always happen back to back at the same instant.
  /// Bit-identical end state and completion timing; the intermediate
  /// reschedule (whose event the submit would immediately cancel) and the
  /// duplicate rate refresh are elided.
  void submit_with_thread_count(int n, double work, sim::EventFn done);

  /// The owning server reports its busy worker-thread count (capacity input).
  void set_thread_count(int n);

  /// Drops every in-progress job without running its completion callback —
  /// the CPU side of a server crash. Accounting up to now is preserved.
  void abort_all();

  /// Fault injection: scales total capacity and the per-thread speed clamp.
  /// 1.0 (the default) is bit-identical to the unscaled model; 0.25 models a
  /// VM degraded to a quarter of its speed. Must be > 0.
  void set_capacity_factor(double factor);
  double capacity_factor() const { return capacity_factor_; }

  int active_jobs() const { return static_cast<int>(live_jobs_); }
  int thread_count() const { return thread_count_; }

  /// ∫ utilisation dt (seconds); utilisation is 1.0 when the CPU is the
  /// limiting factor and n_active/cap(N) when jobs are self-limited.
  double util_integral() const;
  /// Total work-seconds completed.
  double work_done() const {
    advance();
    return work_done_;
  }
  uint64_t jobs_completed() const { return jobs_completed_; }

  const CpuModelConfig& config() const { return config_; }

 private:
  /// 32-byte POD heap entry: the completion callback lives in done_slab_
  /// (indexed by done_slot), so priority-queue sifts copy plain bytes
  /// instead of moving a std::function per level.
  struct Job {
    double finish_virtual;
    uint64_t seq;
    double work;  // nominal work-seconds (exact completed-work accounting)
    uint32_t done_slot;
  };
  struct LaterFinish {
    bool operator()(const Job& a, const Job& b) const {
      if (a.finish_virtual != b.finish_virtual) return a.finish_virtual > b.finish_virtual;
      return a.seq > b.seq;
    }
  };

  /// Folds elapsed wall time into the virtual clock and the util integral.
  void advance() const;
  /// Recomputes the cached per-job rate / utilisation. Both depend only on
  /// (live_jobs_, thread_count_, capacity_factor_), so they are refreshed
  /// once per state change instead of on every advance() — bit-identical
  /// values, computed once per dispatch step instead of per query.
  void refresh_rates();
  /// FP-drift fix: once the virtual clock has grown past a threshold, the
  /// accumulated `rate · dt` increments carry visible rounding error. When
  /// the CPU idles no job is in flight, so the true total work equals the
  /// exact sum of completed work and the virtual clock's absolute value is
  /// meaningless (only differences matter) — re-anchor both. The threshold
  /// sits far above what any registered scenario reaches, so committed
  /// digests are untouched; million-event soak runs get the correction.
  void maybe_reanchor();
  void reschedule();
  void on_completion_event();
  uint32_t alloc_done_slot(sim::EventFn done);

  static constexpr double kReanchorVirtualClock = 4096.0;

  sim::Engine* engine_;
  CpuModelConfig config_;

  std::priority_queue<Job, std::vector<Job>, LaterFinish> jobs_;
  /// Completion callbacks for in-flight jobs, parallel to jobs_ via
  /// Job::done_slot; freed slots are recycled through done_free_.
  std::vector<sim::EventFn> done_slab_;
  std::vector<uint32_t> done_free_;
  uint64_t live_jobs_ = 0;
  uint64_t next_seq_ = 0;
  int thread_count_ = 0;
  double capacity_factor_ = 1.0;

  mutable double virtual_clock_ = 0.0;
  mutable double util_integral_ = 0.0;
  mutable sim::SimTime last_advance_ = 0;

  // Cached refresh_rates() outputs (see above).
  double cached_rate_ = 0.0;
  double cached_util_ = 0.0;
  // Two-entry memo of config_.capacity(n) keyed by effective concurrency n
  // (-1 never matches a real key: n >= 1 in refresh_rates). cap(n) is a pure
  // function of n, so hits are bit-identical to recomputation.
  double cap_memo_key_[2] = {-1.0, -1.0};
  double cap_memo_val_[2] = {0.0, 0.0};

  sim::EventHandle pending_completion_;
  /// Absolute fire time of pending_completion_ while pending_live_. Lets
  /// reschedule() keep the already-scheduled event when the recomputed fire
  /// instant is identical (common under worker-churn: set_thread_count fires
  /// on every acquire/release but n = max(threads, jobs) is often pinned by
  /// the job count) — skipping a cancel + heap push pair per no-op call.
  sim::SimTime pending_fire_at_ = 0;
  bool pending_live_ = false;
  /// True while on_completion_event() runs the popped jobs' callbacks; state
  /// mutations they trigger (submit, thread-count changes) skip their own
  /// reschedule — on_completion_event issues one against the settled state.
  bool in_callbacks_ = false;
  mutable double work_done_ = 0.0;
  /// Exact sum of completed jobs' nominal work — the drift-free reference
  /// maybe_reanchor() restores work_done_ to. abort_all() re-baselines it
  /// (dropped jobs leave partial progress that has no exact expression).
  double completed_work_exact_ = 0.0;
  uint64_t jobs_completed_ = 0;
  /// Completion-callback scratch, reused across events so a steady-state
  /// dispatch step allocates nothing.
  std::vector<sim::EventFn> done_scratch_;
};

}  // namespace dcm::ntier
