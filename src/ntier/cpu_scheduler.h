// State-dependent processor-sharing CPU model.
//
// This is where the paper's multi-threading service-time model (Sec. III-B)
// becomes the simulator's ground truth. With N busy worker threads on the
// server (including threads blocked on downstream calls — they still incur
// context/coherency overhead), the inflated per-request service time is
//
//   S*(N) = S0 + α(N−1) + βN(N−1) + θ·max(0, N−T)²
//
// The first three terms are the paper's Eq. 5; the θ term is a "thrash"
// extension modelling the sharp collapse a real MySQL exhibits past a memory
// /lock-contention threshold T (the paper's Fig. 2a shows this cliff; the
// quadratic alone is too gentle). The aggregate CPU capacity is then
//
//   cap(N) = N·S0 / S*(N)   [work-seconds per second]
//
// shared equally among the n_c jobs currently executing CPU work, with each
// job's progress clamped at 1 work-sec/sec (a single thread cannot run
// faster than real time). For a leaf tier where every thread is CPU-active,
// the completion rate at concurrency N is exactly N/S*(N) — Eq. 7.
//
// Implementation: virtual-time processor sharing. All active jobs progress
// at the same rate, so each job finishes when the shared virtual-work clock
// V reaches (V at entry + its work); a min-heap keyed on that finish value
// yields O(log n) per event.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "model/concurrency_model.h"
#include "sim/engine.h"

namespace dcm::ntier {

struct CpuModelConfig {
  model::ServiceTimeParams params;  // S0 (reference demand), α, β
  double thrash_threshold = 1e18;   // T — concurrency where thrashing starts
  double thrash_factor = 0.0;       // θ — quadratic thrash coefficient

  /// S*(n) including the thrash extension.
  double inflated_service_time(double n) const;
  /// cap(n) in work-seconds/second.
  double capacity(double n) const;
  /// n / S*(n) — requests/second a leaf server sustains at concurrency n.
  double throughput_at(double n) const;
};

class CpuScheduler {
 public:
  CpuScheduler(sim::Engine& engine, CpuModelConfig config);

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  /// Submits `work` seconds of single-threaded CPU work; `done` fires when
  /// it completes under processor sharing.
  void submit(double work, std::function<void()> done);

  /// The owning server reports its busy worker-thread count (capacity input).
  void set_thread_count(int n);

  /// Drops every in-progress job without running its completion callback —
  /// the CPU side of a server crash. Accounting up to now is preserved.
  void abort_all();

  /// Fault injection: scales total capacity and the per-thread speed clamp.
  /// 1.0 (the default) is bit-identical to the unscaled model; 0.25 models a
  /// VM degraded to a quarter of its speed. Must be > 0.
  void set_capacity_factor(double factor);
  double capacity_factor() const { return capacity_factor_; }

  int active_jobs() const { return static_cast<int>(live_jobs_); }
  int thread_count() const { return thread_count_; }

  /// ∫ utilisation dt (seconds); utilisation is 1.0 when the CPU is the
  /// limiting factor and n_active/cap(N) when jobs are self-limited.
  double util_integral() const;
  /// Total work-seconds completed.
  double work_done() const {
    advance();
    return work_done_;
  }
  uint64_t jobs_completed() const { return jobs_completed_; }

  const CpuModelConfig& config() const { return config_; }

 private:
  struct Job {
    double finish_virtual;
    uint64_t seq;
    std::function<void()> done;
  };
  struct LaterFinish {
    bool operator()(const Job& a, const Job& b) const {
      if (a.finish_virtual != b.finish_virtual) return a.finish_virtual > b.finish_virtual;
      return a.seq > b.seq;
    }
  };

  /// Folds elapsed wall time into the virtual clock and the util integral.
  void advance() const;
  double per_job_rate() const;  // work-sec/sec each active job receives
  double instantaneous_util() const;
  void reschedule();
  void on_completion_event();

  sim::Engine* engine_;
  CpuModelConfig config_;

  std::priority_queue<Job, std::vector<Job>, LaterFinish> jobs_;
  uint64_t live_jobs_ = 0;
  uint64_t next_seq_ = 0;
  int thread_count_ = 0;
  double capacity_factor_ = 1.0;

  mutable double virtual_clock_ = 0.0;
  mutable double util_integral_ = 0.0;
  mutable sim::SimTime last_advance_ = 0;

  sim::EventHandle pending_completion_;
  mutable double work_done_ = 0.0;
  uint64_t jobs_completed_ = 0;
};

}  // namespace dcm::ntier
