// Concurrency-limiting slot pool — the "soft resource" of the paper.
//
// One class models both kinds of pools DCM actuates: a server thread pool
// (Tomcat maxThreads, Apache workers) and a DB connection pool (Tomcat's
// DBConnP toward MySQL). A holder acquires a slot (waiting FIFO if none is
// free), does its work, and releases. resize() takes effect immediately when
// growing; shrinking is lazy — excess holders finish naturally and the pool
// re-admits only below the new capacity (this is exactly how the paper's
// APP-agent adjusts pools "on the fly without interrupting the runtime").
//
// Hot path: the uncontended acquire/release pair is a single predictable
// branch each; waiters live in a power-of-two ring buffer that reallocates
// only when the high-water mark grows, so steady-state queueing churns no
// heap memory (std::deque allocates/frees node blocks as it drains).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/welford.h"
#include "sim/engine.h"

namespace dcm::ntier {

class SlotPool {
 public:
  /// The engine reference is used only for wait-time accounting.
  SlotPool(sim::Engine& engine, std::string name, int capacity);

  /// Lazy-named variant: the pool's name is `base + suffix`, composed only
  /// if somebody asks for it. `base` must outlive the pool (Server passes
  /// its own config_.name) — this keeps string concatenation out of server
  /// construction, which sits on the VM-churn actuation path.
  SlotPool(sim::Engine& engine, const std::string& base, const char* suffix, int capacity);

  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  /// Requests a slot. If one is free the grant callback runs synchronously
  /// (before acquire returns); otherwise the request joins a FIFO queue.
  /// Grants are SBO EventFn callables — small captures queue and dispatch
  /// without std::function manager indirection (once per tier visit).
  void acquire(sim::EventFn grant);

  /// Returns a slot; dispatches the next waiter if capacity allows.
  void release();

  /// Live re-allocation (the APP-agent's lever). Growth admits waiters at
  /// once; shrink never evicts current holders.
  void resize(int capacity);

  /// Crash support: forcibly frees every slot and drops all waiters
  /// *without running their grant callbacks*. Occupancy accounting up to
  /// now is preserved. Callers are responsible for failing the work that
  /// held/awaited the slots.
  void reset();

  const std::string& name() const;
  int capacity() const { return capacity_; }
  int in_use() const { return in_use_; }
  int queue_length() const { return static_cast<int>(waiter_count_); }

  /// ∫ in_use dt in seconds — lets a sampler compute the time-weighted mean
  /// concurrency over any window by differencing.
  double in_use_integral() const;
  uint64_t total_acquired() const { return total_acquired_; }
  /// Wait-time stats across all grants so far (seconds).
  const metrics::Welford& wait_stats() const { return wait_stats_; }

 private:
  struct Waiter {
    sim::EventFn grant;
    sim::SimTime enqueued = 0;
  };

  void enqueue_waiter(sim::EventFn grant);
  void grant_from_queue();
  void accumulate_integral() const;

  sim::Engine* engine_;
  mutable std::string name_;          // eager name, or lazily composed cache
  const std::string* name_base_ = nullptr;  // lazy mode only; owner-stable
  const char* name_suffix_ = "";
  int capacity_;
  int in_use_ = 0;

  // FIFO ring: live waiters occupy [head, head+count) mod size; size is a
  // power of two and only ever grows.
  std::vector<Waiter> waiters_;
  size_t waiter_head_ = 0;
  size_t waiter_count_ = 0;

  uint64_t total_acquired_ = 0;
  metrics::Welford wait_stats_;

  mutable double in_use_integral_ = 0.0;
  mutable sim::SimTime integral_updated_ = 0;
};

}  // namespace dcm::ntier
