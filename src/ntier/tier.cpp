#include "ntier/tier.h"

#include <cstdio>

#include "common/check.h"
#include "common/logging.h"

namespace dcm::ntier {

Tier::Tier(sim::Engine& engine, TierConfig config, int depth, Rng& rng)
    : engine_(&engine),
      config_(std::move(config)),
      depth_(depth),
      rng_(rng.fork()),
      balancer_(config_.lb_policy),
      primary_edge_id_(depth),
      current_stp_(config_.server.max_threads),
      current_conns_(config_.server.downstream_connections) {
  DCM_CHECK(config_.initial_vms >= 1);
  DCM_CHECK(config_.min_vms >= 1);
  DCM_CHECK(config_.max_vms >= config_.initial_vms);
  DCM_CHECK(config_.min_vms <= config_.initial_vms);
  for (int i = 0; i < config_.initial_vms; ++i) launch_vm(/*boot_delay=*/0);
}

void Tier::set_downstream(Tier* tier) { set_downstream_edge(tier, depth_); }

void Tier::set_downstream_edge(Tier* tier, int edge_id) {
  DCM_CHECK_MSG(fanout_specs_.empty(), "tier already has fan-out edges");
  downstream_ = tier;
  primary_edge_id_ = edge_id;
  for (auto& vm : vms_) {
    vm->server().set_downstream(tier);
    vm->server().set_primary_edge_id(edge_id);
  }
}

void Tier::set_fanout_edges(const std::vector<ServerFanoutEdge>& edges) {
  DCM_CHECK_MSG(downstream_ == nullptr, "tier already has a single downstream edge");
  DCM_CHECK_MSG(fanout_specs_.empty(), "fan-out edges already set");
  fanout_specs_ = edges;
  // The managed edge's pool is the tier's downstream-connection allocation
  // from here on (the APP-agent resizes it via set_downstream_connections).
  for (const auto& e : fanout_specs_) {
    if (e.managed) current_conns_ = e.pool_capacity;
  }
  for (auto& vm : vms_) vm->server().set_fanout_edges(fanout_specs_);
}

Vm& Tier::launch_vm(sim::SimTime boot_delay) {
  // Compose both names in one stack buffer: VM churn under chaos schedules
  // runs through here, and str_format's format/copy round-trips would put
  // heap traffic on the actuation path. The stored std::string copies below
  // are the only (owned, unavoidable) allocations.
  char name_buf[160];
  ServerConfig server_config = config_.server;
  std::snprintf(name_buf, sizeof(name_buf), "%s-%d", config_.name.c_str(), next_vm_index_);
  server_config.name.assign(name_buf);
  // Later-launched VMs inherit the tier's current soft-resource allocation,
  // not the template's.
  server_config.max_threads = current_stp_;
  if (server_config.downstream_connections > 0) {
    server_config.downstream_connections = current_conns_;
  }
  auto server = std::make_unique<Server>(*engine_, std::move(server_config), depth_, rng_.fork());
  server->set_downstream(downstream_);
  server->set_primary_edge_id(primary_edge_id_);
  if (!fanout_specs_.empty()) {
    // Fresh VMs inherit the tier's edges with the managed pool at the
    // current allocation, mirroring the thread/connection inheritance above.
    std::vector<ServerFanoutEdge> specs = fanout_specs_;
    for (auto& e : specs) {
      if (e.managed) e.pool_capacity = current_conns_;
    }
    server->set_fanout_edges(specs);
  }
  server->set_subrequest_retry(retry_policy_);
  std::snprintf(name_buf, sizeof(name_buf), "%s-vm%d", config_.name.c_str(),
                next_vm_index_);
  auto vm = std::make_unique<Vm>(*engine_, std::string(name_buf), std::move(server),
                                 boot_delay, [this](Vm& v) { on_vm_active(v); });
  ++next_vm_index_;
  vms_.push_back(std::move(vm));
  return *vms_.back();
}

void Tier::on_vm_active(Vm& vm) {
  // Re-apply the allocation in case the APP-agent changed it while booting.
  vm.server().set_thread_pool_size(current_stp_);
  if (vm.server().connection_pool() != nullptr) {
    vm.server().set_downstream_connections(current_conns_);
  }
  balancer_.add(&vm.server());
  DCM_LOG_DEBUG("tier %s: %s entered service (%zu members)", config_.name.c_str(),
                vm.id().c_str(), balancer_.member_count());
  for (const auto& cb : vm_activated_) cb(vm);
}

void Tier::add_vm_activated_callback(std::function<void(Vm&)> cb) {
  vm_activated_.push_back(std::move(cb));
}

void Tier::dispatch(const RequestPtr& request, DoneFn done) {
  Server* server = balancer_.pick();
  if (server == nullptr) {
    done(false);
    return;
  }
  if (trace::TraceContext* tr = request->trace.get()) {
    // Zero-width marker: the pick itself is instantaneous in sim time;
    // `value` records the member count the balancer chose from.
    tr->add_span(trace::SpanKind::kLbPick, depth_, engine_->now(), engine_->now(),
                 static_cast<double>(balancer_.member_count()));
  }
  if (health_enabled_) {
    // Feed the outcome back into the balancer's passive failure tracking.
    server->process(request, [this, server, done = std::move(done)](bool ok) {
      balancer_.report_result(server, ok);
      done(ok);
    });
    return;
  }
  server->process(request, std::move(done));
}

bool Tier::scale_out() {
  if (provisioned_vm_count() >= config_.max_vms) return false;
  launch_vm(config_.vm_boot_time);
  DCM_LOG_DEBUG("tier %s: scale-out at %s", config_.name.c_str(),
                sim::format_time(engine_->now()).c_str());
  return true;
}

bool Tier::scale_in() {
  if (active_vm_count() <= config_.min_vms) return false;
  // Drain the most recently activated VM — keep the tier's seed members.
  Vm* victim = nullptr;
  for (auto& vm : vms_) {
    if (vm->state() != VmState::kActive) continue;
    if (victim == nullptr || vm->launched_at() >= victim->launched_at()) victim = vm.get();
  }
  if (victim == nullptr) return false;
  balancer_.remove(&victim->server());
  victim->begin_drain([this](Vm& v, bool failed) {
    DCM_LOG_DEBUG("tier %s: %s %s", config_.name.c_str(), v.id().c_str(),
                  failed ? "failed mid-drain" : "stopped");
  });
  DCM_LOG_DEBUG("tier %s: scale-in (draining %s)", config_.name.c_str(), victim->id().c_str());
  return true;
}

bool Tier::fail_vm(const std::string& vm_id) {
  for (auto& vm : vms_) {
    if (vm->id() != vm_id) continue;
    if (vm->state() == VmState::kStopped || vm->state() == VmState::kFailed) return false;
    if (vm->state() == VmState::kActive) balancer_.remove(&vm->server());
    vm->fail();
    DCM_LOG_WARN("tier %s: %s FAILED at %s", config_.name.c_str(), vm->id().c_str(),
                 sim::format_time(engine_->now()).c_str());
    return true;
  }
  return false;
}

bool Tier::fail_one() {
  for (auto& vm : vms_) {
    if (vm->state() == VmState::kActive) return fail_vm(vm->id());
  }
  return false;
}

bool Tier::inject_crash(const std::string& vm_id) {
  for (auto& vm : vms_) {
    if (vm->id() != vm_id) continue;
    if (vm->state() == VmState::kStopped || vm->state() == VmState::kFailed) return false;
    // Deliberately NOT removed from the balancer: nobody has noticed the
    // crash yet. The offline server fast-fails routed requests until the
    // health sweep ejects it.
    vm->fail();
    DCM_LOG_WARN("tier %s: %s crashed silently at %s", config_.name.c_str(), vm->id().c_str(),
                 sim::format_time(engine_->now()).c_str());
    return true;
  }
  return false;
}

Vm* Tier::oldest_active_vm() {
  for (auto& vm : vms_) {
    if (vm->state() == VmState::kActive) return vm.get();
  }
  return nullptr;
}

void Tier::record_event(const char* kind, const std::string& detail) {
  events_.push(TierEvent{engine_->now(), kind, detail});
}

void Tier::enable_health_checks(const HealthCheckConfig& config) {
  DCM_CHECK_MSG(!health_enabled_, "health checks already enabled");
  DCM_CHECK(config.period_seconds > 0.0);
  DCM_CHECK(config.failure_threshold >= 1);
  health_enabled_ = true;
  health_ = config;
  balancer_.set_health_policy(config.failure_threshold);
  health_event_ = engine_->schedule_periodic(sim::from_seconds(health_.period_seconds),
                                             [this] { health_sweep(); });
}

void Tier::health_sweep() {
  // Active probe: a FAILED VM still registered with the balancer is
  // detected here, ejected, and (optionally) replaced. Iteration over vms_
  // is launch-ordered, so ejections are deterministic. Indexed loop over the
  // pre-sweep size: launch_vm appends to vms_ mid-iteration (the appended
  // replacements are BOOTING and never need sweeping here).
  const size_t existing = vms_.size();
  for (size_t i = 0; i < existing; ++i) {
    Vm& vm = *vms_[i];
    if (vm.state() != VmState::kFailed) continue;
    if (!balancer_.contains(&vm.server())) continue;
    balancer_.remove(&vm.server());
    record_event("lb_eject", vm.id());
    DCM_LOG_WARN("tier %s: health check ejected %s at %s", config_.name.c_str(),
                 vm.id().c_str(), sim::format_time(engine_->now()).c_str());
    if (health_.replace_failed && provisioned_vm_count() < config_.max_vms) {
      Vm& fresh = launch_vm(config_.vm_boot_time);
      record_event("replace_launch", fresh.id());
      DCM_LOG_INFO("tier %s: launched replacement %s", config_.name.c_str(),
                   fresh.id().c_str());
    }
  }
}

int Tier::failed_vm_count() const {
  int n = 0;
  for (const auto& vm : vms_) n += vm->state() == VmState::kFailed ? 1 : 0;
  return n;
}

int Tier::active_vm_count() const {
  int n = 0;
  for (const auto& vm : vms_) n += vm->state() == VmState::kActive ? 1 : 0;
  return n;
}

int Tier::booting_vm_count() const {
  int n = 0;
  for (const auto& vm : vms_) n += vm->state() == VmState::kBooting ? 1 : 0;
  return n;
}

int Tier::draining_vm_count() const {
  int n = 0;
  for (const auto& vm : vms_) n += vm->state() == VmState::kDraining ? 1 : 0;
  return n;
}

void Tier::set_thread_pool_size(int per_server) {
  DCM_CHECK(per_server >= 1);
  current_stp_ = per_server;
  for (auto& vm : vms_) {
    if (vm->state() == VmState::kActive || vm->state() == VmState::kBooting) {
      vm->server().set_thread_pool_size(per_server);
    }
  }
}

void Tier::set_downstream_connections(int per_server) {
  DCM_CHECK(per_server >= 1);
  current_conns_ = per_server;
  for (auto& vm : vms_) {
    if (vm->server().connection_pool() == nullptr) continue;
    if (vm->state() == VmState::kActive || vm->state() == VmState::kBooting) {
      vm->server().set_downstream_connections(per_server);
    }
  }
}

void Tier::set_subrequest_retry(const SubRequestRetryPolicy& policy) {
  retry_policy_ = policy;
  for (auto& vm : vms_) {
    if (vm->state() == VmState::kStopped || vm->state() == VmState::kFailed) continue;
    vm->server().set_subrequest_retry(policy);
  }
}

uint64_t Tier::completed() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) total += vm->server().completed();
  return total;
}

uint64_t Tier::rejected() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) total += vm->server().rejected();
  return total;
}

int Tier::total_in_flight() const {
  int total = 0;
  for (const auto& vm : vms_) total += vm->server().in_flight();
  return total;
}

uint64_t Tier::subrequest_timeouts() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) total += vm->server().subrequest_timeouts();
  return total;
}

uint64_t Tier::subrequest_retries() const {
  uint64_t total = 0;
  for (const auto& vm : vms_) total += vm->server().subrequest_retries();
  return total;
}

}  // namespace dcm::ntier
