// One component server (Apache / Tomcat / MySQL instance).
//
// A visit holds a worker-pool slot for its entire lifetime (CPU phases plus
// downstream waits — a blocked Tomcat thread still occupies maxThreads and
// still contributes multithreading overhead, which is why over-sized pools
// hurt). Downstream sub-requests go through this server's connection pool
// and the downstream tier's load balancer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/rng.h"
#include "metrics/welford.h"
#include "ntier/request.h"
#include "ntier/server_config.h"
#include "ntier/slot_pool.h"
#include "sim/engine.h"

namespace dcm::ntier {

class Tier;  // downstream dispatch target

class Server {
 public:
  Server(sim::Engine& engine, ServerConfig config, int depth, Rng rng);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Wires the tier this server sends sub-requests to (nullptr = leaf).
  void set_downstream(Tier* tier) { downstream_ = tier; }

  /// Processes one visit; `done(ok)` fires at visit completion (ok=false if
  /// rejected here or anywhere downstream — a failed sub-request fails the
  /// whole visit).
  void process(const RequestPtr& request, DoneFn done);

  // --- soft-resource actuation (APP-agent) ---
  void set_thread_pool_size(int size);
  void set_downstream_connections(int size);

  /// Failure injection: abrupt crash. Every in-flight and queued visit
  /// fails (done(false) fires for each), pools are force-freed, and CPU
  /// work is dropped. Responses from downstream calls that were pending at
  /// crash time are ignored when they arrive. The server object remains
  /// usable (a restarted process) — callers decide whether to re-register
  /// it with a balancer.
  void crash();
  bool crashed_since_start() const { return epoch_ > 0; }

  // --- observability ---
  const std::string& name() const { return config_.name; }
  int depth() const { return depth_; }
  int in_flight() const { return workers_.in_use(); }
  int queue_length() const { return workers_.queue_length(); }
  int thread_pool_size() const { return workers_.capacity(); }
  int downstream_connection_limit() const { return conns_ ? conns_->capacity() : 0; }
  int downstream_connections_in_use() const { return conns_ ? conns_->in_use() : 0; }

  uint64_t completed() const { return completed_; }
  uint64_t rejected() const { return rejected_; }
  /// Sum of visit response times (seconds) — arrival to completion.
  double response_time_sum() const { return response_time_sum_; }
  /// ∫ busy-workers dt — time-weighted concurrency.
  double concurrency_integral() const { return workers_.in_use_integral(); }
  /// ∫ CPU-utilisation dt.
  double cpu_util_integral() const { return cpu_.util_integral(); }

  const SlotPool& worker_pool() const { return workers_; }
  const SlotPool* connection_pool() const { return conns_.get(); }
  const CpuScheduler& cpu() const { return cpu_; }

  /// Invoked whenever in_flight returns to zero (used by draining VMs).
  void set_idle_callback(std::function<void()> cb) { idle_callback_ = std::move(cb); }

 private:
  struct VisitState;

  void start_visit(const std::shared_ptr<VisitState>& visit);
  void issue_downstream(const std::shared_ptr<VisitState>& visit, int call_index);
  void finish_visit(const std::shared_ptr<VisitState>& visit, bool ok);
  void sync_thread_count();
  bool visit_is_stale(const std::shared_ptr<VisitState>& visit) const;

  sim::Engine* engine_;
  ServerConfig config_;
  int depth_;
  Rng rng_;

  SlotPool workers_;
  std::unique_ptr<SlotPool> conns_;  // created when downstream_connections>0
  CpuScheduler cpu_;
  Tier* downstream_ = nullptr;

  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  double response_time_sum_ = 0.0;
  std::function<void()> idle_callback_;

  // Crash bookkeeping: visits belong to an epoch; crash() bumps the epoch
  // so continuations created before the crash become no-ops.
  uint64_t epoch_ = 0;
  uint64_t next_visit_id_ = 0;
  std::map<uint64_t, std::shared_ptr<VisitState>> active_visits_;
};

}  // namespace dcm::ntier
