// One component server (Apache / Tomcat / MySQL instance).
//
// A visit holds a worker-pool slot for its entire lifetime (CPU phases plus
// downstream waits — a blocked Tomcat thread still occupies maxThreads and
// still contributes multithreading overhead, which is why over-sized pools
// hurt). Downstream sub-requests go through this server's connection pool
// and the downstream tier's load balancer.
//
// Hot-path storage: visits and retry attempts live in generation-counted
// slabs owned by the server, not in per-visit shared_ptrs. Continuations
// capture [this, handle] — 16 bytes, inside std::function's inline buffer —
// so the steady-state request path performs no heap allocation. A freed slot
// bumps its generation, which makes every outstanding handle stale; that
// replaces both the old `finished` flag and the crash-epoch guard (crash()
// frees all live slots, instantly invalidating pre-crash continuations).
//
// Topology: a server either has one downstream edge (set_downstream — the
// chain case, routed through the legacy/retry paths untouched) or fans out
// over ≥2 service-graph edges (set_fanout_edges). Fan-out branches run
// concurrently, each branch's calls sequentially, and the visit's post-CPU
// phase starts only after every branch settles (synchronous join); any
// branch failure fails the visit once the others drain. Branch continuations
// capture [this, handle, branch] — 20 bytes, past std::function's inline
// buffer — so only fan-out topologies pay a per-continuation allocation; the
// chain hot path stays allocation-free.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/inline_vec.h"
#include "common/rng.h"
#include "metrics/welford.h"
#include "ntier/request.h"
#include "ntier/server_config.h"
#include "ntier/slot_pool.h"
#include "sim/engine.h"

namespace dcm::ntier {

class Tier;  // downstream dispatch target

/// One out-edge of a fan-out server (see Server::set_fanout_edges).
struct ServerFanoutEdge {
  Tier* target = nullptr;
  int edge_id = 0;        // service-graph edge id (indexes downstream_calls)
  int pool_capacity = 0;  // >0: per-server caller-side connection pool
  bool managed = false;   // pool resized by set_downstream_connections
};

/// Deadline + bounded retry applied to each inter-tier sub-request. All
/// fields are per-attempt; backoff between attempt k and k+1 is
/// backoff_base · multiplier^k, jittered ±jitter_fraction from the server's
/// own deterministic Rng stream. Disabled by default (exactly the legacy
/// single-attempt behaviour, with no extra allocations on the hot path).
struct SubRequestRetryPolicy {
  double timeout_seconds = 0.0;  // 0 = no deadline
  int max_retries = 0;
  double backoff_base_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.2;

  bool enabled() const { return timeout_seconds > 0.0 || max_retries > 0; }
};

class Server {
 public:
  Server(sim::Engine& engine, ServerConfig config, int depth, Rng rng);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Wires the tier this server sends sub-requests to (nullptr = leaf).
  void set_downstream(Tier* tier) { downstream_ = tier; }

  /// Service-graph edge id of the single downstream edge; indexes the
  /// request's downstream_calls plan and stamps kConnWait/kDownstream spans.
  /// Defaults to the tier depth, which is exactly the legacy chain indexing.
  void set_primary_edge_id(int edge_id) { primary_edge_id_ = edge_id; }

  /// Wires ≥2 concurrent out-edges (fan-out/join topology node). Mutually
  /// exclusive with set_downstream. Edges with pool_capacity > 0 get a
  /// per-server connection pool; the managed edge's pool (at most one) is
  /// what connection_pool()/set_downstream_connections operate on. Branches
  /// are single-attempt: the sub-request retry policy applies only to
  /// single-edge servers.
  void set_fanout_edges(const std::vector<ServerFanoutEdge>& edges);

  /// Processes one visit; `done(ok)` fires at visit completion (ok=false if
  /// rejected here or anywhere downstream — a failed sub-request fails the
  /// whole visit).
  void process(const RequestPtr& request, DoneFn done);

  // --- soft-resource actuation (APP-agent) ---
  void set_thread_pool_size(int size);
  void set_downstream_connections(int size);

  /// Deadline/retry discipline for inter-tier sub-requests (resilience
  /// mechanism; the tier propagates one policy to all its servers).
  void set_subrequest_retry(SubRequestRetryPolicy policy) { retry_ = policy; }
  const SubRequestRetryPolicy& subrequest_retry() const { return retry_; }
  uint64_t subrequest_timeouts() const { return subrequest_timeouts_; }
  uint64_t subrequest_retries() const { return subrequest_retries_; }

  /// Failure injection: abrupt crash. Every in-flight and queued visit
  /// fails (done(false) fires for each), pools are force-freed, and CPU
  /// work is dropped. Responses from downstream calls that were pending at
  /// crash time are ignored when they arrive. The server object remains
  /// usable (a restarted process) — callers decide whether to re-register
  /// it with a balancer.
  void crash();
  bool crashed_since_start() const { return epoch_ > 0; }

  /// Dead-process switch: an offline server refuses every visit immediately
  /// (done(false), counted as rejected). `Vm::fail()` flips this so a
  /// silently-crashed VM left in a balancer fails requests fast instead of
  /// serving them — health checks and retries are what recover from it.
  void set_online(bool online) { online_ = online; }
  bool online() const { return online_; }

  // --- observability ---
  const std::string& name() const { return config_.name; }
  int depth() const { return depth_; }
  int in_flight() const { return workers_.in_use(); }
  int queue_length() const { return workers_.queue_length(); }
  int thread_pool_size() const { return workers_.capacity(); }
  int downstream_connection_limit() const {
    const SlotPool* p = connection_pool();
    return p ? p->capacity() : 0;
  }
  int downstream_connections_in_use() const {
    const SlotPool* p = connection_pool();
    return p ? p->in_use() : 0;
  }

  uint64_t completed() const { return completed_; }
  uint64_t rejected() const { return rejected_; }
  /// Sum of visit response times (seconds) — arrival to completion.
  double response_time_sum() const { return response_time_sum_; }
  /// ∫ busy-workers dt — time-weighted concurrency.
  double concurrency_integral() const { return workers_.in_use_integral(); }
  /// ∫ CPU-utilisation dt.
  double cpu_util_integral() const { return cpu_.util_integral(); }

  const SlotPool& worker_pool() const { return workers_; }
  /// The pool set_downstream_connections resizes: the managed fan-out edge's
  /// pool when one exists, else the single-edge connection pool.
  const SlotPool* connection_pool() const {
    return managed_pool_ != nullptr ? managed_pool_ : conns_.get();
  }
  const CpuScheduler& cpu() const { return cpu_; }

  /// Fault injection: scales this server's CPU capacity (1.0 = healthy,
  /// 0.25 = a VM degraded to a quarter of its speed).
  void set_cpu_capacity_factor(double factor);

  /// Invoked whenever in_flight returns to zero (used by draining VMs).
  void set_idle_callback(std::function<void()> cb) { idle_callback_ = std::move(cb); }

 private:
  static constexpr uint32_t kNilIndex = 0xffffffffu;

  /// 8-byte ticket into a slab. A handle is stale (lookup returns nullptr)
  /// once its slot was freed — the generation no longer matches.
  struct VisitHandle {
    uint32_t index = 0;
    uint32_t gen = 0;
  };
  struct AttemptHandle {
    uint32_t index = 0;
    uint32_t gen = 0;
  };

  /// Per-branch progress of a fan-out visit. Branch calls are sequential
  /// within the branch, branches concurrent with each other, so each needs
  /// its own call cursor, pool state, and tracing scratch.
  struct BranchScratch {
    int calls = 0;
    int index = 0;
    bool conn_held = false;
    sim::SimTime conn_requested = 0;
    sim::SimTime started = 0;
  };

  struct VisitState {
    uint64_t visit_id = 0;
    RequestPtr request;
    DoneFn done;
    sim::SimTime arrived = 0;
    double demand = 0.0;  // sampled total CPU demand for this visit
    int calls = 0;        // downstream sub-requests this visit issues
    int call_index = 0;   // current sub-request (they are strictly sequential)
    bool conn_held = false;  // legacy path: connection held for current call
    bool holds_worker = false;

    // Fan-out join state (untouched on single-edge servers).
    InlineVec<BranchScratch, kMaxFanOut> branches;
    int branches_pending = 0;
    bool branch_failed = false;

    // Tracing scratch (written only when request->trace is non-null; the
    // visit's phases are strictly sequential, so one slot per kind suffices).
    sim::SimTime cpu_submitted = 0;
    double cpu_work = 0.0;
    sim::SimTime conn_requested = 0;
    sim::SimTime downstream_started = 0;
  };

  /// Per-attempt settlement record for a retried sub-request. Exactly one of
  /// {downstream response, deadline expiry} settles the attempt by freeing
  /// its slot; whichever loses the race finds a stale handle and becomes a
  /// no-op, so a visit can never complete (or release a connection) twice.
  struct AttemptState {
    VisitHandle visit;
    int attempt = 0;
    bool conn_held = false;
    sim::EventHandle timeout;
  };

  struct VisitSlot {
    VisitState state;
    uint32_t gen = 0;
    uint32_t next_free = kNilIndex;
    bool live = false;
  };
  struct AttemptSlot {
    AttemptState state;
    uint32_t gen = 0;
    uint32_t next_free = kNilIndex;
    bool live = false;
  };

  VisitHandle alloc_visit();
  void free_visit(VisitHandle h);
  /// nullptr if `h` is stale. The pointer is invalidated by alloc_visit
  /// (slab growth) — refetch after any call that can admit a new visit.
  VisitState* visit(VisitHandle h);
  AttemptHandle alloc_attempt();
  void free_attempt(AttemptHandle h);
  AttemptState* attempt(AttemptHandle h);

  void on_worker_granted(VisitHandle h);
  void start_visit(VisitHandle h);
  void on_cpu_done_finish(VisitHandle h);      // CPU-only / post phase done
  void on_cpu_done_downstream(VisitHandle h);  // pre phase done
  void issue_downstream(VisitHandle h);
  void on_cpu_done_fanout(VisitHandle h);      // pre phase done, fan-out node
  void start_branch_call(VisitHandle h, int branch);
  void on_branch_conn(VisitHandle h, int branch);
  void forward_branch(VisitHandle h, int branch, bool conn_held);
  void on_branch_response(VisitHandle h, int branch, bool ok);
  void settle_branch(VisitHandle h, bool ok);
  void on_conn_granted_legacy(VisitHandle h);
  void forward_legacy(VisitHandle h, bool conn_held);
  void on_legacy_response(VisitHandle h, bool ok);
  void on_conn_granted_retry(VisitHandle h);
  void dispatch_downstream(VisitHandle h, int attempt, bool conn_held);
  void on_attempt_response(AttemptHandle ah, bool ok);
  void on_attempt_timeout(AttemptHandle ah);
  void on_subrequest_result(VisitHandle h, int attempt, bool conn_held, bool ok);
  void finish_visit(VisitHandle h, bool ok);
  void begin_cpu_span(VisitState& visit, double work);
  void end_cpu_span(VisitState& visit);
  void sync_thread_count();

  sim::Engine* engine_;
  ServerConfig config_;
  int depth_;
  Rng rng_;
  // Precomputed lognormal(1.0, demand_cv) parameters (see constructor).
  double demand_ln_mu_ = 0.0;
  double demand_ln_sigma_ = 0.0;

  SlotPool workers_;
  std::unique_ptr<SlotPool> conns_;  // created when downstream_connections>0
  CpuScheduler cpu_;
  Tier* downstream_ = nullptr;
  int primary_edge_id_;  // single-edge id; defaults to depth (chain indexing)
  /// Installed fan-out edge with its optional per-server pool.
  struct FanoutEdge {
    Tier* target = nullptr;
    int edge_id = 0;
    std::unique_ptr<SlotPool> pool;
  };
  std::vector<FanoutEdge> fanout_;
  SlotPool* managed_pool_ = nullptr;  // the managed fan-out edge's pool
  SubRequestRetryPolicy retry_;

  uint64_t completed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t subrequest_timeouts_ = 0;
  uint64_t subrequest_retries_ = 0;
  double response_time_sum_ = 0.0;
  bool online_ = true;
  std::function<void()> idle_callback_;

  uint64_t epoch_ = 0;  // crash count (crashed_since_start)
  uint64_t next_visit_id_ = 0;

  std::vector<VisitSlot> visit_slab_;
  uint32_t visit_free_head_ = kNilIndex;
  std::vector<AttemptSlot> attempt_slab_;
  uint32_t attempt_free_head_ = kNilIndex;
  std::vector<std::pair<uint64_t, uint32_t>> crash_scratch_;  // (visit_id, slot)
};

}  // namespace dcm::ntier
