// NTierApp — the deployed application: a chain of tiers (e.g. Apache web →
// Tomcat app → MySQL DB), wired front to back.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "ntier/request.h"
#include "ntier/tier.h"
#include "sim/engine.h"

namespace dcm::ntier {

struct AppConfig {
  std::vector<TierConfig> tiers;  // index 0 = front (client-facing) tier
  uint64_t seed = 1;
};

class NTierApp {
 public:
  NTierApp(sim::Engine& engine, AppConfig config);

  NTierApp(const NTierApp&) = delete;
  NTierApp& operator=(const NTierApp&) = delete;

  /// Injects one HTTP request at the front tier.
  void submit(const RequestPtr& request, DoneFn done);

  size_t tier_count() const { return tiers_.size(); }
  Tier& tier(size_t index);
  const Tier& tier(size_t index) const;
  /// Finds a tier by name; nullptr if absent.
  Tier* find_tier(const std::string& name);

  sim::Engine& engine() { return *engine_; }
  Rng& rng() { return rng_; }
  uint64_t next_request_id() { return next_request_id_++; }

 private:
  sim::Engine* engine_;
  Rng rng_;
  std::vector<std::unique_ptr<Tier>> tiers_;
  uint64_t next_request_id_ = 1;
};

}  // namespace dcm::ntier
