// NTierApp — the deployed application. Either a chain of tiers (e.g. Apache
// web → Tomcat app → MySQL DB) wired front to back, or an arbitrary
// service-graph DAG whose node 0 is the client-facing root; a chain declared
// in depth order builds identically through either constructor.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "ntier/request.h"
#include "ntier/service_graph.h"
#include "ntier/tier.h"
#include "sim/engine.h"

namespace dcm::ntier {

struct AppConfig {
  std::vector<TierConfig> tiers;  // index 0 = front (client-facing) tier
  uint64_t seed = 1;
};

class NTierApp {
 public:
  NTierApp(sim::Engine& engine, AppConfig config);

  /// Graph deployment: one Tier per graph node (node id = tier depth, node 0
  /// client-facing), edges wired per the graph's out-edge lists. Tier
  /// construction — and therefore Rng fork order — matches the chain
  /// constructor node-for-node, so a chain graph reproduces the chain app's
  /// random streams exactly.
  NTierApp(sim::Engine& engine, ServiceGraph graph, uint64_t seed);

  NTierApp(const NTierApp&) = delete;
  NTierApp& operator=(const NTierApp&) = delete;

  /// Injects one HTTP request at the front tier.
  void submit(const RequestPtr& request, DoneFn done);

  size_t tier_count() const { return tiers_.size(); }
  Tier& tier(size_t index);
  const Tier& tier(size_t index) const;
  /// Finds a tier by name; nullptr if absent.
  Tier* find_tier(const std::string& name);

  sim::Engine& engine() { return *engine_; }
  Rng& rng() { return rng_; }
  uint64_t next_request_id() { return next_request_id_++; }

  /// The deployment's service graph; nullptr for chain-constructed apps.
  const ServiceGraph* graph() const { return graph_.get(); }

 private:
  sim::Engine* engine_;
  Rng rng_;
  std::vector<std::unique_ptr<Tier>> tiers_;
  std::unique_ptr<ServiceGraph> graph_;
  uint64_t next_request_id_ = 1;
};

}  // namespace dcm::ntier
