#include "ntier/cpu_scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace dcm::ntier {

double CpuModelConfig::inflated_service_time(double n) const {
  double s = model::inflated_service_time(params, n);
  if (thrash_factor > 0.0 && n > thrash_threshold) {
    const double over = n - thrash_threshold;
    s += thrash_factor * over * over;
  }
  return s;
}

double CpuModelConfig::capacity(double n) const {
  if (n < 1.0) n = 1.0;
  return n * params.s0 / inflated_service_time(n);
}

double CpuModelConfig::throughput_at(double n) const {
  if (n < 1.0) n = 1.0;
  return n / inflated_service_time(n);
}

CpuScheduler::CpuScheduler(sim::Engine& engine, CpuModelConfig config)
    : engine_(&engine), config_(config) {
  DCM_CHECK(config_.params.valid());
  last_advance_ = engine_->now();
}

void CpuScheduler::refresh_rates() {
  if (live_jobs_ == 0) {
    cached_rate_ = 0.0;
    cached_util_ = 0.0;
    return;
  }
  const double n = std::max<double>(thread_count_, static_cast<double>(live_jobs_));
  // Two-entry memo for cap(n): a dispatch step alternates between adjacent
  // effective concurrencies (a submit raises n, the matching completion
  // lowers it back), so both hot keys stay resident. Same n in, same cap
  // out — bit-identical to recomputing the polynomial.
  double cap;
  if (n == cap_memo_key_[0]) {
    cap = cap_memo_val_[0];
  } else if (n == cap_memo_key_[1]) {
    cap = cap_memo_val_[1];
  } else {
    cap = config_.capacity(n);
    cap_memo_key_[1] = cap_memo_key_[0];
    cap_memo_val_[1] = cap_memo_val_[0];
    cap_memo_key_[0] = n;
    cap_memo_val_[0] = cap;
  }
  // capacity_factor_ scales both total capacity and the single-thread speed
  // clamp; at exactly 1.0 this multiplies by the IEEE identity.
  cached_rate_ = capacity_factor_ * std::min(1.0, cap / static_cast<double>(live_jobs_));
  cached_util_ =
      std::min(1.0, static_cast<double>(live_jobs_) / (capacity_factor_ * cap));
}

void CpuScheduler::advance() const {
  const sim::SimTime now = engine_->now();
  if (now == last_advance_) return;
  const double dt = sim::to_seconds(now - last_advance_);
  virtual_clock_ += cached_rate_ * dt;
  util_integral_ += cached_util_ * dt;
  work_done_ += cached_rate_ * static_cast<double>(live_jobs_) * dt;
  last_advance_ = now;
}

void CpuScheduler::maybe_reanchor() {
  // Callers guarantee live_jobs_ == 0 (the queue is empty, so no pending
  // finish-virtual marks are orphaned by resetting the clock).
  if (virtual_clock_ < kReanchorVirtualClock) return;
  virtual_clock_ = 0.0;
  work_done_ = completed_work_exact_;
}

double CpuScheduler::util_integral() const {
  advance();
  return util_integral_;
}

void CpuScheduler::reschedule() {
  if (live_jobs_ == 0) {
    pending_completion_.cancel();
    pending_live_ = false;
    return;
  }
  const double rate = cached_rate_;
  DCM_CHECK(rate > 0.0);
  const double remaining = jobs_.top().finish_virtual - virtual_clock_;
  const double dt_seconds = std::max(0.0, remaining / rate);
  // Ceil to a whole nanosecond so the virtual clock is guaranteed to have
  // crossed the finish mark when the event fires. Open-coded as truncate +
  // bump: for non-negative values below 2^53 (any representable delay) this
  // is bit-identical to std::ceil but avoids a libm call on baseline x86-64,
  // which lacks a ceiling instruction — this runs once per reschedule.
  const double scaled = dt_seconds * static_cast<double>(sim::kNanosPerSecond);
  auto delay = static_cast<sim::SimTime>(scaled);
  if (static_cast<double>(delay) < scaled) ++delay;
  const sim::SimTime fire_at = engine_->now() + delay;
  // Same fire instant as the event already in the queue: keep it. The timing
  // is identical by construction (compared in whole nanoseconds); only the
  // cancel + re-push heap round-trip is skipped.
  if (pending_live_ && fire_at == pending_fire_at_) return;
  pending_completion_.cancel();
  pending_completion_ = engine_->schedule_after(delay, [this] { on_completion_event(); });
  pending_fire_at_ = fire_at;
  pending_live_ = true;
}

void CpuScheduler::on_completion_event() {
  pending_live_ = false;  // this event just consumed itself
  advance();
  constexpr double kEps = 1e-12;
  const double due = virtual_clock_ + kEps;  // fixed while jobs pop (dt = 0)
  if (jobs_.empty() || jobs_.top().finish_virtual > due) {
    // Spurious wake (the due job was aborted between scheduling and firing).
    refresh_rates();
    reschedule();
    return;
  }
  // Pop the first due job inline: almost every completion event retires
  // exactly one job, and that case needs no callback staging vector at all.
  const Job first = jobs_.top();
  completed_work_exact_ += first.work;
  sim::EventFn first_fn = std::move(done_slab_[first.done_slot]);
  done_free_.push_back(first.done_slot);
  jobs_.pop();
  --live_jobs_;
  ++jobs_completed_;
  if (jobs_.empty() || jobs_.top().finish_virtual > due) {
    if (live_jobs_ == 0) maybe_reanchor();
    in_callbacks_ = true;
    first_fn();
    in_callbacks_ = false;
    refresh_rates();
    reschedule();
    return;
  }
  // Batch path: several jobs share this finish instant. Move the scratch out
  // while callbacks run (they may re-enter submit(), which must not touch a
  // vector we are iterating), and move it back after so its capacity is
  // reused — zero steady-state allocation.
  std::vector<sim::EventFn> done_fns = std::move(done_scratch_);
  done_fns.clear();
  done_fns.push_back(std::move(first_fn));
  while (!jobs_.empty() && jobs_.top().finish_virtual <= due) {
    const Job& top = jobs_.top();
    completed_work_exact_ += top.work;
    done_fns.push_back(std::move(done_slab_[top.done_slot]));
    done_free_.push_back(top.done_slot);
    jobs_.pop();
    --live_jobs_;
    ++jobs_completed_;
  }
  if (live_jobs_ == 0) maybe_reanchor();
  // Defer both the rate refresh and the next completion's scheduling until
  // the callbacks have run: on a busy server a completion releases a worker
  // whose grant immediately submits the next job, which would cancel and
  // replace anything scheduled here. All of that happens at this same sim
  // instant, so advance() is a no-op throughout (dt = 0) and never reads the
  // cached rates — only the values settled below, before time moves again,
  // are observable. in_callbacks_ makes the callbacks' own mutations skip
  // their refresh + reschedule; the single pair below sees the final state.
  in_callbacks_ = true;
  for (auto& fn : done_fns) fn();
  in_callbacks_ = false;
  refresh_rates();
  reschedule();
  done_fns.clear();
  done_scratch_ = std::move(done_fns);
}

uint32_t CpuScheduler::alloc_done_slot(sim::EventFn done) {
  if (!done_free_.empty()) {
    const uint32_t slot = done_free_.back();
    done_free_.pop_back();
    done_slab_[slot] = std::move(done);
    return slot;
  }
  done_slab_.push_back(std::move(done));
  return static_cast<uint32_t>(done_slab_.size() - 1);
}

void CpuScheduler::submit(double work, sim::EventFn done) {
  DCM_CHECK(work >= 0.0);
  advance();
  jobs_.push(Job{virtual_clock_ + work, next_seq_++, work, alloc_done_slot(std::move(done))});
  ++live_jobs_;
  if (!in_callbacks_) {
    refresh_rates();
    reschedule();
  }
}

void CpuScheduler::submit_with_thread_count(int n, double work, sim::EventFn done) {
  DCM_CHECK(work >= 0.0);
  DCM_CHECK(n >= 0);
  advance();
  thread_count_ = n;
  jobs_.push(Job{virtual_clock_ + work, next_seq_++, work, alloc_done_slot(std::move(done))});
  ++live_jobs_;
  if (!in_callbacks_) {
    refresh_rates();
    reschedule();
  }
}

void CpuScheduler::abort_all() {
  advance();
  while (!jobs_.empty()) {
    const uint32_t slot = jobs_.top().done_slot;
    done_slab_[slot].reset();  // drop the callback and its captures now
    done_free_.push_back(slot);
    jobs_.pop();
  }
  live_jobs_ = 0;
  // Dropped jobs leave partial progress inside work_done_ that has no exact
  // expression — adopt the integral as the new drift-free baseline.
  completed_work_exact_ = work_done_;
  maybe_reanchor();
  refresh_rates();
  pending_completion_.cancel();
  pending_live_ = false;
}

void CpuScheduler::set_capacity_factor(double factor) {
  DCM_CHECK_MSG(factor > 0.0, "capacity factor must be positive");
  if (factor == capacity_factor_) return;
  advance();  // fold elapsed time at the old rate before the change
  capacity_factor_ = factor;
  if (in_callbacks_) return;  // on_completion_event refreshes + reschedules
  refresh_rates();
  if (live_jobs_ > 0) reschedule();
}

void CpuScheduler::set_thread_count(int n) {
  DCM_CHECK(n >= 0);
  if (n == thread_count_) return;
  // Worker churn fast path: when both the old and the new count sit at or
  // below the live-job count, the effective concurrency max(threads, jobs)
  // stays pinned by the jobs — rate, utilisation, and the pending completion
  // are all bit-identical, so only the count needs recording. This is the
  // common case on a saturated server, where every worker acquire/release
  // reports a new count.
  if (live_jobs_ > 0 && static_cast<uint64_t>(n) <= live_jobs_ &&
      static_cast<uint64_t>(thread_count_) <= live_jobs_) {
    thread_count_ = n;
    return;
  }
  advance();
  thread_count_ = n;
  if (in_callbacks_) return;  // on_completion_event refreshes + reschedules
  refresh_rates();
  if (live_jobs_ > 0) reschedule();
}

}  // namespace dcm::ntier
