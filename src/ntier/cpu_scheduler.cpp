#include "ntier/cpu_scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dcm::ntier {

double CpuModelConfig::inflated_service_time(double n) const {
  double s = model::inflated_service_time(params, n);
  if (thrash_factor > 0.0 && n > thrash_threshold) {
    const double over = n - thrash_threshold;
    s += thrash_factor * over * over;
  }
  return s;
}

double CpuModelConfig::capacity(double n) const {
  if (n < 1.0) n = 1.0;
  return n * params.s0 / inflated_service_time(n);
}

double CpuModelConfig::throughput_at(double n) const {
  if (n < 1.0) n = 1.0;
  return n / inflated_service_time(n);
}

CpuScheduler::CpuScheduler(sim::Engine& engine, CpuModelConfig config)
    : engine_(&engine), config_(config) {
  DCM_CHECK(config_.params.valid());
  last_advance_ = engine_->now();
}

double CpuScheduler::per_job_rate() const {
  if (live_jobs_ == 0) return 0.0;
  const double n = std::max<double>(thread_count_, static_cast<double>(live_jobs_));
  const double cap = config_.capacity(n);
  // capacity_factor_ scales both total capacity and the single-thread speed
  // clamp; at exactly 1.0 this multiplies by the IEEE identity.
  return capacity_factor_ * std::min(1.0, cap / static_cast<double>(live_jobs_));
}

double CpuScheduler::instantaneous_util() const {
  if (live_jobs_ == 0) return 0.0;
  const double n = std::max<double>(thread_count_, static_cast<double>(live_jobs_));
  const double cap = capacity_factor_ * config_.capacity(n);
  return std::min(1.0, static_cast<double>(live_jobs_) / cap);
}

void CpuScheduler::advance() const {
  const sim::SimTime now = engine_->now();
  if (now == last_advance_) return;
  const double dt = sim::to_seconds(now - last_advance_);
  const double rate = per_job_rate();
  virtual_clock_ += rate * dt;
  util_integral_ += instantaneous_util() * dt;
  work_done_ += rate * static_cast<double>(live_jobs_) * dt;
  last_advance_ = now;
}

double CpuScheduler::util_integral() const {
  advance();
  return util_integral_;
}

void CpuScheduler::reschedule() {
  pending_completion_.cancel();
  if (live_jobs_ == 0) return;
  const double rate = per_job_rate();
  DCM_CHECK(rate > 0.0);
  const double remaining = jobs_.top().finish_virtual - virtual_clock_;
  const double dt_seconds = std::max(0.0, remaining / rate);
  // Ceil to a whole nanosecond so the virtual clock is guaranteed to have
  // crossed the finish mark when the event fires.
  const auto delay = static_cast<sim::SimTime>(
      std::ceil(dt_seconds * static_cast<double>(sim::kNanosPerSecond)));
  pending_completion_ = engine_->schedule_after(delay, [this] { on_completion_event(); });
}

void CpuScheduler::on_completion_event() {
  advance();
  constexpr double kEps = 1e-12;
  std::vector<std::function<void()>> done_fns;
  while (!jobs_.empty() && jobs_.top().finish_virtual <= virtual_clock_ + kEps) {
    done_fns.push_back(std::move(const_cast<Job&>(jobs_.top()).done));
    jobs_.pop();
    --live_jobs_;
    ++jobs_completed_;
  }
  reschedule();
  // Run completions after internal state settles — they may re-enter via
  // submit() or set_thread_count().
  for (auto& fn : done_fns) fn();
}

void CpuScheduler::submit(double work, std::function<void()> done) {
  DCM_CHECK(work >= 0.0);
  advance();
  jobs_.push(Job{virtual_clock_ + work, next_seq_++, std::move(done)});
  ++live_jobs_;
  reschedule();
}

void CpuScheduler::abort_all() {
  advance();
  while (!jobs_.empty()) jobs_.pop();
  live_jobs_ = 0;
  pending_completion_.cancel();
}

void CpuScheduler::set_capacity_factor(double factor) {
  DCM_CHECK_MSG(factor > 0.0, "capacity factor must be positive");
  if (factor == capacity_factor_) return;
  advance();  // fold elapsed time at the old rate before the change
  capacity_factor_ = factor;
  if (live_jobs_ > 0) reschedule();
}

void CpuScheduler::set_thread_count(int n) {
  DCM_CHECK(n >= 0);
  if (n == thread_count_) return;
  advance();
  thread_count_ = n;
  if (live_jobs_ > 0) reschedule();
}

}  // namespace dcm::ntier
