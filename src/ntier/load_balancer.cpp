#include "ntier/load_balancer.h"

#include <algorithm>

#include "common/check.h"
#include "ntier/server.h"

namespace dcm::ntier {

void LoadBalancer::add(Server* server) {
  DCM_CHECK(server != nullptr);
  DCM_CHECK_MSG(std::find(members_.begin(), members_.end(), server) == members_.end(),
                "server already registered");
  members_.push_back(server);
  failures_.push_back(0);
}

void LoadBalancer::remove(Server* server) {
  const auto it = std::find(members_.begin(), members_.end(), server);
  DCM_CHECK_MSG(it != members_.end(), "removing unregistered server");
  const auto idx = static_cast<size_t>(it - members_.begin());
  members_.erase(it);
  failures_.erase(failures_.begin() + static_cast<std::ptrdiff_t>(idx));
  if (next_ > idx) --next_;
  if (!members_.empty()) next_ %= members_.size();
}

bool LoadBalancer::contains(const Server* server) const {
  return std::find(members_.begin(), members_.end(), server) != members_.end();
}

void LoadBalancer::set_health_policy(int failure_threshold) {
  DCM_CHECK(failure_threshold >= 0);
  failure_threshold_ = failure_threshold;
  if (failure_threshold_ == 0) std::fill(failures_.begin(), failures_.end(), 0);
}

void LoadBalancer::report_result(const Server* server, bool ok) {
  if (failure_threshold_ == 0) return;
  const auto it = std::find(members_.begin(), members_.end(), server);
  if (it == members_.end()) return;  // already ejected — nothing to track
  const auto idx = static_cast<size_t>(it - members_.begin());
  failures_[idx] = ok ? 0 : failures_[idx] + 1;
}

int LoadBalancer::consecutive_failures(const Server* server) const {
  const auto it = std::find(members_.begin(), members_.end(), server);
  if (it == members_.end()) return 0;
  return failures_[static_cast<size_t>(it - members_.begin())];
}

bool LoadBalancer::is_down(const Server* server) const {
  if (failure_threshold_ == 0) return false;
  return consecutive_failures(server) >= failure_threshold_;
}

Server* LoadBalancer::pick() {
  if (members_.empty()) return nullptr;
  const bool health = failure_threshold_ > 0;
  switch (policy_) {
    case LbPolicy::kRoundRobin: {
      if (!health) {
        Server* chosen = members_[next_];
        if (++next_ >= members_.size()) next_ = 0;  // avoids a hot-path division
        return chosen;
      }
      // Scan at most one full rotation for a member not marked down.
      for (size_t tried = 0; tried < members_.size(); ++tried) {
        const size_t idx = next_;
        if (++next_ >= members_.size()) next_ = 0;
        if (failures_[idx] < failure_threshold_) return members_[idx];
      }
      return nullptr;  // every member is down
    }
    case LbPolicy::kLeastConnections: {
      Server* best = nullptr;
      for (size_t i = 0; i < members_.size(); ++i) {
        if (health && failures_[i] >= failure_threshold_) continue;
        if (best == nullptr || members_[i]->in_flight() < best->in_flight()) {
          best = members_[i];
        }
      }
      return best;
    }
  }
  return nullptr;
}

}  // namespace dcm::ntier
