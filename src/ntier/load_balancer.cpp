#include "ntier/load_balancer.h"

#include <algorithm>

#include "common/check.h"
#include "ntier/server.h"

namespace dcm::ntier {

void LoadBalancer::add(Server* server) {
  DCM_CHECK(server != nullptr);
  DCM_CHECK_MSG(std::find(members_.begin(), members_.end(), server) == members_.end(),
                "server already registered");
  members_.push_back(server);
}

void LoadBalancer::remove(Server* server) {
  const auto it = std::find(members_.begin(), members_.end(), server);
  DCM_CHECK_MSG(it != members_.end(), "removing unregistered server");
  const auto idx = static_cast<size_t>(it - members_.begin());
  members_.erase(it);
  if (next_ > idx) --next_;
  if (!members_.empty()) next_ %= members_.size();
}

Server* LoadBalancer::pick() {
  if (members_.empty()) return nullptr;
  switch (policy_) {
    case LbPolicy::kRoundRobin: {
      Server* chosen = members_[next_];
      next_ = (next_ + 1) % members_.size();
      return chosen;
    }
    case LbPolicy::kLeastConnections: {
      Server* best = members_.front();
      for (Server* s : members_) {
        if (s->in_flight() < best->in_flight()) best = s;
      }
      return best;
    }
  }
  return nullptr;
}

}  // namespace dcm::ntier
