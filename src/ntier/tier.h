// A tier: a scalable group of identical servers behind a load balancer.
//
// Owns the VM lifecycle (scale_out boots a VM that joins the balancer after
// the preparation period; scale_in drains the most recent ACTIVE VM) and
// fans soft-resource re-allocations out to every server, remembering the
// current allocation so later-booting VMs inherit it.
//
// Resilience (opt-in, off by default): enable_health_checks() starts a
// periodic probe sweep that ejects FAILED VMs from the balancer and launches
// replacements, and arms the balancer's passive consecutive-failure
// tracking; set_subrequest_retry() gives every server a deadline/retry
// discipline on its downstream calls. Recovery actions are recorded in an
// in-order TierEvent log for the per-fault action trail.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "ntier/load_balancer.h"
#include "ntier/request.h"
#include "ntier/server_config.h"
#include "ntier/vm.h"
#include "sim/engine.h"

namespace dcm::ntier {

struct TierConfig {
  std::string name = "tier";
  ServerConfig server;                 // template for every VM in the tier
  int initial_vms = 1;
  int min_vms = 1;
  int max_vms = 8;
  sim::SimTime vm_boot_time = sim::from_seconds(15.0);  // the paper's 15 s
  LbPolicy lb_policy = LbPolicy::kRoundRobin;
};

/// Health-check sweep configuration (resilience mechanism).
struct HealthCheckConfig {
  double period_seconds = 5.0;  // probe sweep interval
  int failure_threshold = 3;    // consecutive failures before pick() skips
  bool replace_failed = true;   // launch a replacement for each ejected VM
};

/// One recovery action taken by the tier (for the chaos action log).
struct TierEvent {
  sim::SimTime at = 0;
  std::string kind;    // "lb_eject" | "replace_launch"
  std::string detail;  // e.g. the VM id involved
};

/// Bounded recovery-action log. The old unbounded vector grew for the whole
/// run, which made an endless chaos soak an unbounded memory leak; the ring
/// keeps the most recent kCapacity events and counts what it sheds. Every
/// registered scenario produces far fewer than kCapacity events, so below
/// the cap the observable sequence (size, order, contents) is identical to
/// the vector it replaced — result digests are unchanged.
class TierEventLog {
 public:
  static constexpr size_t kCapacity = 1024;

  void push(TierEvent event) {
    if (ring_.size() < kCapacity) {
      ring_.push_back(std::move(event));
      return;
    }
    ring_[head_] = std::move(event);  // overwrite the oldest
    head_ = (head_ + 1) % kCapacity;
    ++dropped_;
  }

  /// Events currently retained, oldest first.
  size_t size() const { return ring_.size(); }
  /// Oldest events shed to stay within kCapacity.
  uint64_t dropped() const { return dropped_; }
  const TierEvent& operator[](size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  class const_iterator {
   public:
    const_iterator(const TierEventLog* log, size_t i) : log_(log), i_(i) {}
    const TierEvent& operator*() const { return (*log_)[i_]; }
    const TierEvent* operator->() const { return &(*log_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& other) const { return i_ != other.i_; }
    bool operator==(const const_iterator& other) const { return i_ == other.i_; }

   private:
    const TierEventLog* log_;
    size_t i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, ring_.size()}; }

 private:
  std::vector<TierEvent> ring_;  // grows once to kCapacity, then wraps
  size_t head_ = 0;              // index of the oldest retained event
  uint64_t dropped_ = 0;
};

class Tier {
 public:
  /// Initial VMs come up ACTIVE immediately (the experiment starts with a
  /// running system). `rng` seeds per-server demand-variability streams.
  Tier(sim::Engine& engine, TierConfig config, int depth, Rng& rng);

  Tier(const Tier&) = delete;
  Tier& operator=(const Tier&) = delete;

  void set_downstream(Tier* tier);
  Tier* downstream() const { return downstream_; }

  /// Wires the tier's single out-edge with its service-graph edge id (the
  /// index into each request's downstream_calls plan). set_downstream(t) is
  /// shorthand for set_downstream_edge(t, depth) — the chain convention.
  void set_downstream_edge(Tier* tier, int edge_id);

  /// Wires ≥2 concurrent out-edges (fan-out node). Applied to every live
  /// server; VMs launched later inherit the edges, with the managed edge's
  /// pool sized to the tier's current connection allocation. Mutually
  /// exclusive with set_downstream.
  void set_fanout_edges(const std::vector<ServerFanoutEdge>& edges);

  /// Routes one visit through the load balancer. done(false) if no server
  /// is in service.
  void dispatch(const RequestPtr& request, DoneFn done);

  /// Launches a VM (BOOTING → ACTIVE after vm_boot_time). Returns false at
  /// max_vms (counting booting VMs).
  bool scale_out();
  /// Drains the most recently activated VM. Returns false at min_vms.
  bool scale_in();

  /// Failure injection: crashes the VM with the given id (must be ACTIVE,
  /// BOOTING, or DRAINING). Active VMs are pulled from the balancer first
  /// so no new work routes to the corpse. Returns false if no such VM.
  bool fail_vm(const std::string& vm_id);
  /// Crashes the oldest ACTIVE VM (convenience for chaos tests).
  bool fail_one();
  /// Silent crash: like fail_vm but the balancer keeps routing to the dead
  /// server (requests fail fast) until health checks detect and eject it —
  /// the realistic failure mode the resilience stack must recover from.
  bool inject_crash(const std::string& vm_id);
  int failed_vm_count() const;

  /// Oldest ACTIVE VM, or nullptr (deterministic fault-injection target).
  Vm* oldest_active_vm();

  /// Starts the periodic health sweep: FAILED VMs still in the balancer are
  /// ejected (and optionally replaced by a fresh BOOTING VM), and the
  /// balancer's passive consecutive-failure skipping is armed. Call once.
  void enable_health_checks(const HealthCheckConfig& config);
  bool health_checks_enabled() const { return health_enabled_; }

  /// Recovery actions taken so far, in simulation order (bounded; see
  /// TierEventLog).
  const TierEventLog& events() const { return events_; }

  // --- state ---
  const std::string& name() const { return config_.name; }
  int depth() const { return depth_; }
  int active_vm_count() const;
  int booting_vm_count() const;
  int draining_vm_count() const;
  /// Active + booting — the "provisioned" count the paper's Fig. 5 plots.
  int provisioned_vm_count() const { return active_vm_count() + booting_vm_count(); }
  const TierConfig& config() const { return config_; }

  /// All VMs ever launched (including stopped ones, for bookkeeping).
  const std::vector<std::unique_ptr<Vm>>& vms() const { return vms_; }

  const LoadBalancer& balancer() const { return balancer_; }

  /// Registers an observer invoked whenever a VM enters service. Initial
  /// VMs activate during construction, before any observer can register —
  /// callers iterate vms() for those and use this for later additions.
  /// Multiple observers are supported (monitoring and control both listen).
  void add_vm_activated_callback(std::function<void(Vm&)> cb);

  // --- soft-resource actuation (APP-agent) ---
  void set_thread_pool_size(int per_server);
  void set_downstream_connections(int per_server);
  int current_thread_pool_size() const { return current_stp_; }
  int current_downstream_connections() const { return current_conns_; }

  /// Applies a sub-request deadline/retry policy to every live server; VMs
  /// launched later inherit it.
  void set_subrequest_retry(const SubRequestRetryPolicy& policy);

  // --- aggregates ---
  uint64_t completed() const;
  uint64_t rejected() const;
  int total_in_flight() const;
  uint64_t subrequest_timeouts() const;
  uint64_t subrequest_retries() const;

 private:
  Vm& launch_vm(sim::SimTime boot_delay);
  void on_vm_active(Vm& vm);
  void health_sweep();
  void record_event(const char* kind, const std::string& detail);

  sim::Engine* engine_;
  TierConfig config_;
  int depth_;
  Rng rng_;
  LoadBalancer balancer_;
  Tier* downstream_ = nullptr;
  int primary_edge_id_;  // single out-edge id; defaults to depth (chain)
  std::vector<ServerFanoutEdge> fanout_specs_;  // fan-out template for VMs
  std::vector<std::unique_ptr<Vm>> vms_;
  int next_vm_index_ = 0;
  int current_stp_;
  int current_conns_;
  SubRequestRetryPolicy retry_policy_;
  std::vector<std::function<void(Vm&)>> vm_activated_;

  bool health_enabled_ = false;
  HealthCheckConfig health_;
  sim::EventHandle health_event_;
  TierEventLog events_;
};

}  // namespace dcm::ntier
