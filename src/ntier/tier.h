// A tier: a scalable group of identical servers behind a load balancer.
//
// Owns the VM lifecycle (scale_out boots a VM that joins the balancer after
// the preparation period; scale_in drains the most recent ACTIVE VM) and
// fans soft-resource re-allocations out to every server, remembering the
// current allocation so later-booting VMs inherit it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ntier/load_balancer.h"
#include "ntier/request.h"
#include "ntier/server_config.h"
#include "ntier/vm.h"
#include "sim/engine.h"

namespace dcm::ntier {

struct TierConfig {
  std::string name = "tier";
  ServerConfig server;                 // template for every VM in the tier
  int initial_vms = 1;
  int min_vms = 1;
  int max_vms = 8;
  sim::SimTime vm_boot_time = sim::from_seconds(15.0);  // the paper's 15 s
  LbPolicy lb_policy = LbPolicy::kRoundRobin;
};

class Tier {
 public:
  /// Initial VMs come up ACTIVE immediately (the experiment starts with a
  /// running system). `rng` seeds per-server demand-variability streams.
  Tier(sim::Engine& engine, TierConfig config, int depth, Rng& rng);

  Tier(const Tier&) = delete;
  Tier& operator=(const Tier&) = delete;

  void set_downstream(Tier* tier);
  Tier* downstream() const { return downstream_; }

  /// Routes one visit through the load balancer. done(false) if no server
  /// is in service.
  void dispatch(const RequestPtr& request, DoneFn done);

  /// Launches a VM (BOOTING → ACTIVE after vm_boot_time). Returns false at
  /// max_vms (counting booting VMs).
  bool scale_out();
  /// Drains the most recently activated VM. Returns false at min_vms.
  bool scale_in();

  /// Failure injection: crashes the VM with the given id (must be ACTIVE,
  /// BOOTING, or DRAINING). Active VMs are pulled from the balancer first
  /// so no new work routes to the corpse. Returns false if no such VM.
  bool fail_vm(const std::string& vm_id);
  /// Crashes the oldest ACTIVE VM (convenience for chaos tests).
  bool fail_one();
  int failed_vm_count() const;

  // --- state ---
  const std::string& name() const { return config_.name; }
  int depth() const { return depth_; }
  int active_vm_count() const;
  int booting_vm_count() const;
  int draining_vm_count() const;
  /// Active + booting — the "provisioned" count the paper's Fig. 5 plots.
  int provisioned_vm_count() const { return active_vm_count() + booting_vm_count(); }
  const TierConfig& config() const { return config_; }

  /// All VMs ever launched (including stopped ones, for bookkeeping).
  const std::vector<std::unique_ptr<Vm>>& vms() const { return vms_; }

  /// Registers an observer invoked whenever a VM enters service. Initial
  /// VMs activate during construction, before any observer can register —
  /// callers iterate vms() for those and use this for later additions.
  /// Multiple observers are supported (monitoring and control both listen).
  void add_vm_activated_callback(std::function<void(Vm&)> cb);

  // --- soft-resource actuation (APP-agent) ---
  void set_thread_pool_size(int per_server);
  void set_downstream_connections(int per_server);
  int current_thread_pool_size() const { return current_stp_; }
  int current_downstream_connections() const { return current_conns_; }

  // --- aggregates ---
  uint64_t completed() const;
  uint64_t rejected() const;
  int total_in_flight() const;

 private:
  Vm& launch_vm(sim::SimTime boot_delay);
  void on_vm_active(Vm& vm);

  sim::Engine* engine_;
  TierConfig config_;
  int depth_;
  Rng rng_;
  LoadBalancer balancer_;
  Tier* downstream_ = nullptr;
  std::vector<std::unique_ptr<Vm>> vms_;
  int next_vm_index_ = 0;
  int current_stp_;
  int current_conns_;
  std::vector<std::function<void(Vm&)>> vm_activated_;
};

}  // namespace dcm::ntier
