#include "ntier/vm.h"

#include "common/check.h"

namespace dcm::ntier {

const char* vm_state_name(VmState state) {
  switch (state) {
    case VmState::kBooting:
      return "BOOTING";
    case VmState::kActive:
      return "ACTIVE";
    case VmState::kDraining:
      return "DRAINING";
    case VmState::kStopped:
      return "STOPPED";
    case VmState::kFailed:
      return "FAILED";
  }
  return "?";
}

Vm::Vm(sim::Engine& engine, std::string id, std::unique_ptr<Server> server,
       sim::SimTime boot_delay, std::function<void(Vm&)> on_active)
    : engine_(&engine), id_(std::move(id)), server_(std::move(server)) {
  DCM_CHECK(server_ != nullptr);
  DCM_CHECK(boot_delay >= 0);
  launched_at_ = engine_->now();
  auto activate = [this, cb = std::move(on_active)]() mutable {
    state_ = VmState::kActive;
    if (cb) cb(*this);
  };
  if (boot_delay == 0) {
    activate();
  } else {
    boot_event_ = engine_->schedule_after(boot_delay, activate);
  }
}

void Vm::fail() {
  DCM_CHECK_MSG(state_ != VmState::kStopped && state_ != VmState::kFailed,
                "failing a dead VM");
  boot_event_.cancel();  // a booting VM never activates
  server_->set_idle_callback(nullptr);
  const bool was_draining = state_ == VmState::kDraining;
  state_ = VmState::kFailed;
  server_->set_online(false);
  server_->crash();
  // A crash mid-drain must still complete the drain handshake — with a
  // failed=true signal — or the scale-in bookkeeping waits forever.
  if (was_draining) finish_drain(/*failed=*/true);
}

void Vm::begin_drain(DrainCallback on_stopped) {
  DCM_CHECK_MSG(state_ == VmState::kActive, "can only drain an active VM");
  state_ = VmState::kDraining;
  drain_callback_ = std::move(on_stopped);
  if (server_->in_flight() == 0) {
    finish_drain(/*failed=*/false);
  } else {
    server_->set_idle_callback([this] { finish_drain(/*failed=*/false); });
  }
}

void Vm::finish_drain(bool failed) {
  server_->set_idle_callback(nullptr);
  if (!failed) state_ = VmState::kStopped;
  // Move out first: the callback may start another drain elsewhere.
  DrainCallback cb = std::move(drain_callback_);
  drain_callback_ = nullptr;
  if (cb) cb(*this, failed);
}

}  // namespace dcm::ntier
