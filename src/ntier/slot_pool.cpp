#include "ntier/slot_pool.h"

#include "common/check.h"

namespace dcm::ntier {

SlotPool::SlotPool(sim::Engine& engine, std::string name, int capacity)
    : engine_(&engine), name_(std::move(name)), capacity_(capacity) {
  DCM_CHECK_MSG(capacity >= 1, "pool needs at least one slot");
  integral_updated_ = engine_->now();
}

void SlotPool::accumulate_integral() const {
  const sim::SimTime now = engine_->now();
  in_use_integral_ += static_cast<double>(in_use_) * sim::to_seconds(now - integral_updated_);
  integral_updated_ = now;
}

double SlotPool::in_use_integral() const {
  // Fold in the span since the last state change so reads are current.
  accumulate_integral();
  return in_use_integral_;
}

void SlotPool::grant_now(std::function<void()> grant, sim::SimTime enqueued) {
  accumulate_integral();
  ++in_use_;
  ++total_acquired_;
  wait_stats_.add(sim::to_seconds(engine_->now() - enqueued));
  grant();
}

void SlotPool::acquire(std::function<void()> grant) {
  if (in_use_ < capacity_) {
    grant_now(std::move(grant), engine_->now());
  } else {
    waiters_.push_back(Waiter{std::move(grant), engine_->now()});
  }
}

void SlotPool::release() {
  DCM_CHECK_MSG(in_use_ > 0, "release without acquire");
  accumulate_integral();
  --in_use_;
  if (!waiters_.empty() && in_use_ < capacity_) {
    Waiter next = std::move(waiters_.front());
    waiters_.pop_front();
    grant_now(std::move(next.grant), next.enqueued);
  }
}

void SlotPool::reset() {
  accumulate_integral();
  in_use_ = 0;
  waiters_.clear();
}

void SlotPool::resize(int capacity) {
  DCM_CHECK_MSG(capacity >= 1, "pool needs at least one slot");
  capacity_ = capacity;
  while (!waiters_.empty() && in_use_ < capacity_) {
    Waiter next = std::move(waiters_.front());
    waiters_.pop_front();
    grant_now(std::move(next.grant), next.enqueued);
  }
}

}  // namespace dcm::ntier
