#include "ntier/slot_pool.h"

#include <cstring>
#include <utility>

#include "common/check.h"

namespace dcm::ntier {

SlotPool::SlotPool(sim::Engine& engine, std::string name, int capacity)
    : engine_(&engine), name_(std::move(name)), capacity_(capacity) {
  DCM_CHECK_MSG(capacity >= 1, "pool needs at least one slot");
  integral_updated_ = engine_->now();
}

SlotPool::SlotPool(sim::Engine& engine, const std::string& base, const char* suffix,
                   int capacity)
    : engine_(&engine), name_base_(&base), name_suffix_(suffix), capacity_(capacity) {
  DCM_CHECK_MSG(capacity >= 1, "pool needs at least one slot");
  integral_updated_ = engine_->now();
}

const std::string& SlotPool::name() const {
  if (name_.empty() && name_base_ != nullptr) {
    name_.reserve(name_base_->size() + std::strlen(name_suffix_));
    name_ = *name_base_;
    name_ += name_suffix_;
  }
  return name_;
}

void SlotPool::accumulate_integral() const {
  const sim::SimTime now = engine_->now();
  in_use_integral_ += static_cast<double>(in_use_) * sim::to_seconds(now - integral_updated_);
  integral_updated_ = now;
}

double SlotPool::in_use_integral() const {
  // Fold in the span since the last state change so reads are current.
  accumulate_integral();
  return in_use_integral_;
}

void SlotPool::acquire(sim::EventFn grant) {
  if (in_use_ < capacity_) [[likely]] {
    // Uncontended admission: one predicted branch, then straight-line
    // bookkeeping. wait_stats_ still sees an exact 0.0 sample so the
    // aggregate statistics are bit-identical to the queued path's formula.
    accumulate_integral();
    ++in_use_;
    ++total_acquired_;
    wait_stats_.add(0.0);
    grant();
    return;
  }
  enqueue_waiter(std::move(grant));
}

void SlotPool::enqueue_waiter(sim::EventFn grant) {
  if (waiter_count_ == waiters_.size()) {
    // Grow to the next power of two, linearizing live waiters at the front.
    std::vector<Waiter> grown(waiters_.empty() ? 8 : waiters_.size() * 2);
    for (size_t i = 0; i < waiter_count_; ++i) {
      grown[i] = std::move(waiters_[(waiter_head_ + i) & (waiters_.size() - 1)]);
    }
    waiters_ = std::move(grown);
    waiter_head_ = 0;
  }
  Waiter& slot = waiters_[(waiter_head_ + waiter_count_) & (waiters_.size() - 1)];
  slot.grant = std::move(grant);
  slot.enqueued = engine_->now();
  ++waiter_count_;
}

void SlotPool::release() {
  DCM_CHECK_MSG(in_use_ > 0, "release without acquire");
  accumulate_integral();
  --in_use_;
  if (waiter_count_ == 0 || in_use_ >= capacity_) [[likely]] return;
  grant_from_queue();
}

void SlotPool::grant_from_queue() {
  Waiter& head = waiters_[waiter_head_];
  sim::EventFn grant = std::move(head.grant);
  const sim::SimTime enqueued = head.enqueued;
  waiter_head_ = (waiter_head_ + 1) & (waiters_.size() - 1);
  --waiter_count_;
  accumulate_integral();
  ++in_use_;
  ++total_acquired_;
  wait_stats_.add(sim::to_seconds(engine_->now() - enqueued));
  grant();
}

void SlotPool::reset() {
  accumulate_integral();
  in_use_ = 0;
  for (size_t i = 0; i < waiter_count_; ++i) {
    waiters_[(waiter_head_ + i) & (waiters_.size() - 1)].grant.reset();
  }
  waiter_head_ = 0;
  waiter_count_ = 0;
}

void SlotPool::resize(int capacity) {
  DCM_CHECK_MSG(capacity >= 1, "pool needs at least one slot");
  capacity_ = capacity;
  while (waiter_count_ > 0 && in_use_ < capacity_) {
    grant_from_queue();
  }
}

}  // namespace dcm::ntier
