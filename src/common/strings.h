// Small string utilities used by CSV parsing and config handling.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dcm {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Parse helpers returning nullopt on any malformed input (including
/// trailing junk).
std::optional<double> parse_double(std::string_view text);
std::optional<int64_t> parse_int(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style std::string formatting.
std::string str_format(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

}  // namespace dcm
