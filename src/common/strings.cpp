#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dcm {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::optional<double> parse_double(std::string_view text) {
  const std::string_view t = trim(text);
  if (t.empty()) return std::nullopt;
  std::string buf(t);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::optional<int64_t> parse_int(std::string_view text) {
  const std::string_view t = trim(text);
  if (t.empty()) return std::nullopt;
  std::string buf(t);
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(value);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, copy);
  }
  va_end(copy);
  return out;
}

}  // namespace dcm
