// Aligned console tables for benchmark output.
//
// Every bench binary prints the paper's tables/figure series as plain-text
// tables; this gives them one consistent, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace dcm {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with the given precision.
  void add_row(const std::vector<double>& row, int precision = 3);

  /// Renders with column alignment and a header rule.
  std::string to_string() const;
  /// Renders to stdout.
  void print() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double trimmed of trailing zeros ("12.5", "3", "0.04").
std::string format_number(double value, int max_precision = 4);

}  // namespace dcm
