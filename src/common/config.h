// Minimal INI-style configuration files.
//
// Sections in brackets, key = value pairs, '#' or ';' comments. Used by the
// dcm_sim CLI so whole experiments are runnable without recompiling.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace dcm {

class Config {
 public:
  Config() = default;

  /// Parses from text; throws std::runtime_error with a line number on
  /// malformed input.
  static Config parse(const std::string& content);
  /// Loads and parses a file; throws std::runtime_error on I/O failure.
  static Config load(const std::string& path);

  bool has(const std::string& section, const std::string& key) const;

  /// Typed getters; return the default when the key is absent, and throw
  /// std::runtime_error when present but malformed.
  std::string get_string(const std::string& section, const std::string& key,
                         const std::string& fallback = "") const;
  int64_t get_int(const std::string& section, const std::string& key, int64_t fallback) const;
  double get_double(const std::string& section, const std::string& key, double fallback) const;
  /// Accepts true/false/yes/no/on/off/1/0 (case-insensitive).
  bool get_bool(const std::string& section, const std::string& key, bool fallback) const;

  void set(const std::string& section, const std::string& key, const std::string& value);

  /// Emits the canonical text form: sections and keys in sorted order, one
  /// `key = value` per line, a blank line between sections. The output
  /// round-trips: `parse(to_text())` reproduces this Config exactly, and
  /// `parse(x).to_text()` is a fixed point (parse → emit → parse is
  /// identity). Scenario serialization builds on this.
  std::string to_text() const;

  bool operator==(const Config& other) const { return sections_ == other.sections_; }

  const std::map<std::string, std::map<std::string, std::string>>& sections() const {
    return sections_;
  }

 private:
  std::optional<std::string> raw(const std::string& section, const std::string& key) const;

  std::map<std::string, std::map<std::string, std::string>> sections_;
};

}  // namespace dcm
