#include "common/logging.h"

#include <cstdio>
#include <vector>

namespace dcm {
namespace {

LogLevel g_level = LogLevel::kInfo;
std::function<void(LogLevel, const std::string&)> g_sink;

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level) return;

  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);

  std::string body;
  if (needed > 0) {
    body.resize(static_cast<size_t>(needed));
    std::vsnprintf(body.data(), body.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);

  if (g_sink) {
    g_sink(level, body);
  } else {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), body.c_str());
  }
}

}  // namespace dcm
