// CSV reading/writing for workload traces and benchmark output.
//
// The dialect is deliberately minimal (no quoting/escaping) because every
// file we produce or consume is numeric columns plus simple identifiers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dcm {

class CsvWriter {
 public:
  /// Writes to an owned file. Throws std::runtime_error if it cannot open.
  explicit CsvWriter(const std::string& path);
  /// Writes to a caller-owned stream (e.g. std::ostringstream in tests).
  explicit CsvWriter(std::ostream& out);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_header(const std::vector<std::string>& columns);
  void write_row(const std::vector<std::string>& fields);
  void write_row(const std::vector<double>& fields);

 private:
  std::ostream* out_;
  bool owned_;
};

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column, or -1.
  int column(const std::string& name) const;
};

/// Parses a whole CSV file; `has_header` controls whether the first
/// non-comment line becomes `header`. Lines starting with '#' are skipped.
/// Throws std::runtime_error on I/O failure.
CsvTable read_csv(const std::string& path, bool has_header = true);

/// Same, from an in-memory string (used by tests).
CsvTable parse_csv(const std::string& content, bool has_header = true);

}  // namespace dcm
