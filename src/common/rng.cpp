#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace dcm {

uint64_t splitmix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t derive_seed(uint64_t root, uint64_t stream) {
  // First round decorrelates the (often small, sequential) root; the second
  // folds the stream id in through the same bijective finalizer.
  uint64_t state = root;
  const uint64_t mixed_root = splitmix64(state);
  state = mixed_root ^ stream;
  return splitmix64(state);
}

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits → uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  DCM_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::uniform(double lo, double hi) {
  DCM_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  DCM_CHECK(mean > 0.0);
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  DCM_CHECK(mean > 0.0);
  DCM_CHECK(cv > 0.0);
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::bernoulli(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace dcm
