// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator draws from its own Rng stream
// seeded from an experiment-level master seed, so whole experiments replay
// bit-identically regardless of event interleaving. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64.
#pragma once

#include <cstdint>

namespace dcm {

/// SplitMix64 step — used to expand a single seed into generator state and
/// to derive independent child seeds.
uint64_t splitmix64(uint64_t& state);

/// Derives an independent child seed from a root seed and a stream id, via
/// two SplitMix64 finalizations. This is the repo-wide seed policy: every
/// component (topology, workload, trace synthesis, sweep run #i, ...) gets
/// `derive_seed(root, <its stream id>)` so one root seed reproduces an
/// entire experiment — or an entire sweep — bit-identically, and no two
/// streams ever alias. Pure function: same (root, stream) → same seed.
uint64_t derive_seed(uint64_t root, uint64_t stream);

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit draw.
  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t uniform_int(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box–Muller (cached second value).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Lognormal parameterised by the *resulting* mean and coefficient of
  /// variation (cv = stddev/mean), both > 0. Handy for service times.
  double lognormal_mean_cv(double mean, double cv);

  /// Lognormal with the underlying normal's (mu, sigma) given directly.
  /// Bit-identical to lognormal_mean_cv when (mu, sigma) were derived with
  /// its formulas — callers with fixed parameters hoist the two logs and the
  /// sqrt out of their per-draw path.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Derive an independent child stream (stable for a given parent state
  /// sequence position).
  Rng fork();

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dcm
