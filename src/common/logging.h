// Minimal leveled logger.
//
// The simulator is single-threaded by design (a discrete-event engine), so
// the logger favours simplicity over lock-free cleverness: a global level,
// an optional sink redirect (used by tests to capture output), and printf
// style formatting.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace dcm {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Returns the human-readable tag for a level ("INFO", "WARN", ...).
const char* log_level_name(LogLevel level);

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirect log lines to a sink (e.g. a test capture). Pass nullptr to
/// restore stderr output. The sink receives fully formatted lines without a
/// trailing newline.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);

/// Core logging call; prefer the DCM_LOG_* macros below.
void log_message(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

}  // namespace dcm

#define DCM_LOG_TRACE(...) ::dcm::log_message(::dcm::LogLevel::kTrace, __VA_ARGS__)
#define DCM_LOG_DEBUG(...) ::dcm::log_message(::dcm::LogLevel::kDebug, __VA_ARGS__)
#define DCM_LOG_INFO(...) ::dcm::log_message(::dcm::LogLevel::kInfo, __VA_ARGS__)
#define DCM_LOG_WARN(...) ::dcm::log_message(::dcm::LogLevel::kWarn, __VA_ARGS__)
#define DCM_LOG_ERROR(...) ::dcm::log_message(::dcm::LogLevel::kError, __VA_ARGS__)
