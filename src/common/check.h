// Lightweight invariant-checking macros.
//
// DCM_CHECK is always on (simulation correctness depends on these holding;
// the cost is negligible next to event-queue work). DCM_DCHECK compiles out
// in NDEBUG builds and is meant for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dcm::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "DCM_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace dcm::detail

#define DCM_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::dcm::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define DCM_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) ::dcm::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define DCM_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define DCM_DCHECK(expr) DCM_CHECK(expr)
#endif
