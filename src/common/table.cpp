#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/strings.h"

namespace dcm {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  DCM_CHECK_MSG(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double v : row) fields.push_back(format_number(v, precision));
  add_row(std::move(fields));
}

std::string TextTable::to_string() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c];
      for (size_t pad = row[c].size(); pad < width[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format_number(double value, int max_precision) {
  std::string s = str_format("%.*f", max_precision, value);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace dcm
