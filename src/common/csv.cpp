#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "common/strings.h"

namespace dcm {

CsvWriter::CsvWriter(const std::string& path) : owned_(true) {
  auto* file = new std::ofstream(path);
  if (!file->is_open()) {
    delete file;
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  out_ = file;
}

CsvWriter::CsvWriter(std::ostream& out) : out_(&out), owned_(false) {}

CsvWriter::~CsvWriter() {
  if (owned_) delete out_;
}

void CsvWriter::write_header(const std::vector<std::string>& columns) { write_row(columns); }

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << fields[i];
  }
  *out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << fields[i];
  }
  *out_ << '\n';
}

int CsvTable::column(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {

CsvTable parse_stream(std::istream& in, bool has_header) {
  CsvTable table;
  std::string line;
  bool saw_header = !has_header;
  while (std::getline(in, line)) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields = split(trimmed, ',');
    for (auto& f : fields) f = std::string(trim(f));
    if (!saw_header) {
      table.header = std::move(fields);
      saw_header = true;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  return table;
}

}  // namespace

CsvTable read_csv(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in.is_open()) throw std::runtime_error("read_csv: cannot open " + path);
  return parse_stream(in, has_header);
}

CsvTable parse_csv(const std::string& content, bool has_header) {
  std::istringstream in(content);
  return parse_stream(in, has_header);
}

}  // namespace dcm
