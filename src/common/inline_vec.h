// Fixed-capacity inline vector for small per-request arrays.
//
// RequestContext carries a handful of per-tier doubles/ints; storing them in
// std::vector costs two heap allocations per request on the hottest path in
// the simulator. InlineVec keeps up to N elements in the object itself with
// the same read API (size()/operator[]/iteration/initializer-list init), so
// existing call sites compile unchanged and requests become one flat block.
//
// Only what the request path needs is implemented: trivially-copyable
// element types, no erase/insert, capacity overflow is a DCM_CHECK failure.
// Capacities are derived from the service-graph bounds in ntier/request.h
// (kMaxGraphNodes / kMaxGraphEdges / kMaxFanOut), not from the old linear
// chain depth, so deep chains and wide fan-outs both fit by construction.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <type_traits>

#include "common/check.h"

namespace dcm {

template <typename T, size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for small POD payloads");

 public:
  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) { assign(init); }
  InlineVec& operator=(std::initializer_list<T> init) {
    assign(init);
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  static constexpr size_t capacity() { return N; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void push_back(const T& value) {
    DCM_CHECK_MSG(size_ < N, "InlineVec overflow");
    data_[size_++] = value;
  }
  void clear() { size_ = 0; }

 private:
  void assign(std::initializer_list<T> init) {
    DCM_CHECK_MSG(init.size() <= N, "InlineVec overflow");
    size_ = init.size();
    size_t i = 0;
    for (const T& value : init) data_[i++] = value;
  }

  T data_[N] = {};
  size_t size_ = 0;
};

}  // namespace dcm
