#include "common/config.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/strings.h"

namespace dcm {

Config Config::parse(const std::string& content) {
  Config config;
  std::istringstream in(content);
  std::string line;
  std::string section;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments ('#' or ';' to end of line).
    const size_t hash = line.find_first_of("#;");
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;

    if (trimmed.front() == '[') {
      if (trimmed.back() != ']' || trimmed.size() < 3) {
        throw std::runtime_error("config: malformed section at line " +
                                 std::to_string(line_number));
      }
      section = std::string(trim(trimmed.substr(1, trimmed.size() - 2)));
      continue;
    }
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("config: expected key=value at line " +
                               std::to_string(line_number));
    }
    const std::string key(trim(trimmed.substr(0, eq)));
    const std::string value(trim(trimmed.substr(eq + 1)));
    if (key.empty()) {
      throw std::runtime_error("config: empty key at line " + std::to_string(line_number));
    }
    config.sections_[section][key] = value;
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) throw std::runtime_error("config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::optional<std::string> Config::raw(const std::string& section, const std::string& key) const {
  const auto sit = sections_.find(section);
  if (sit == sections_.end()) return std::nullopt;
  const auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return std::nullopt;
  return kit->second;
}

bool Config::has(const std::string& section, const std::string& key) const {
  return raw(section, key).has_value();
}

std::string Config::get_string(const std::string& section, const std::string& key,
                               const std::string& fallback) const {
  return raw(section, key).value_or(fallback);
}

int64_t Config::get_int(const std::string& section, const std::string& key,
                        int64_t fallback) const {
  const auto value = raw(section, key);
  if (!value) return fallback;
  const auto parsed = parse_int(*value);
  if (!parsed) {
    throw std::runtime_error("config: [" + section + "] " + key + " is not an integer: " +
                             *value);
  }
  return *parsed;
}

double Config::get_double(const std::string& section, const std::string& key,
                          double fallback) const {
  const auto value = raw(section, key);
  if (!value) return fallback;
  const auto parsed = parse_double(*value);
  if (!parsed) {
    throw std::runtime_error("config: [" + section + "] " + key + " is not a number: " + *value);
  }
  return *parsed;
}

bool Config::get_bool(const std::string& section, const std::string& key, bool fallback) const {
  const auto value = raw(section, key);
  if (!value) return fallback;
  std::string lowered = *value;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lowered == "true" || lowered == "yes" || lowered == "on" || lowered == "1") return true;
  if (lowered == "false" || lowered == "no" || lowered == "off" || lowered == "0") return false;
  throw std::runtime_error("config: [" + section + "] " + key + " is not a boolean: " + *value);
}

void Config::set(const std::string& section, const std::string& key, const std::string& value) {
  sections_[section][key] = value;
}

std::string Config::to_text() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [section, keys] : sections_) {
    if (!first) out << "\n";
    first = false;
    if (!section.empty()) out << "[" << section << "]\n";
    for (const auto& [key, value] : keys) {
      out << key << " = " << value << "\n";
    }
  }
  return out.str();
}

}  // namespace dcm
