#include "workload/trace_taxonomy.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace dcm::workload {
namespace {

constexpr int kSeconds = 700;

/// Builds a trace from a normalised shape function f(t) ∈ (0, 1], scaled so
/// max(f)·peak = peak_users, with 4% multiplicative noise.
template <typename ShapeFn>
Trace from_shape(ShapeFn&& shape, int peak_users, uint64_t seed) {
  double peak_shape = 0.0;
  for (int t = 0; t < kSeconds; ++t) peak_shape = std::max(peak_shape, shape(t));
  DCM_CHECK(peak_shape > 0.0);

  Rng rng(seed);
  std::vector<int> users(kSeconds);
  for (int t = 0; t < kSeconds; ++t) {
    const double base = shape(t) / peak_shape * peak_users;
    const double noisy = base * (1.0 + 0.04 * rng.normal());
    users[static_cast<size_t>(t)] = std::max(1, static_cast<int>(std::lround(noisy)));
  }
  return Trace(std::move(users));
}

}  // namespace

const char* trace_pattern_name(TracePattern pattern) {
  switch (pattern) {
    case TracePattern::kSlowlyVarying:
      return "slowly-varying";
    case TracePattern::kQuicklyVarying:
      return "quickly-varying";
    case TracePattern::kBigSpike:
      return "big-spike";
    case TracePattern::kDualPhase:
      return "dual-phase";
    case TracePattern::kLargeVariation:
      return "large-variation";
    case TracePattern::kSteepTriPhase:
      return "steep-tri-phase";
  }
  return "?";
}

std::vector<TracePattern> all_trace_patterns() {
  return {TracePattern::kSlowlyVarying, TracePattern::kQuicklyVarying,
          TracePattern::kBigSpike,      TracePattern::kDualPhase,
          TracePattern::kLargeVariation, TracePattern::kSteepTriPhase};
}

Trace make_trace(TracePattern pattern, int peak_users, uint64_t seed) {
  DCM_CHECK(peak_users >= 1);
  switch (pattern) {
    case TracePattern::kSlowlyVarying:
      // One slow swell over the whole window.
      return from_shape(
          [](int t) {
            return 0.45 + 0.55 * std::sin(M_PI * t / static_cast<double>(kSeconds));
          },
          peak_users, seed);

    case TracePattern::kQuicklyVarying:
      // 80 s oscillation around a mid level.
      return from_shape(
          [](int t) { return 0.6 + 0.4 * std::sin(2.0 * M_PI * t / 80.0); }, peak_users,
          seed);

    case TracePattern::kBigSpike: {
      // Calm 35% baseline, one violent spike at 300-360 s.
      return from_shape(
          [](int t) {
            double level = 0.35;
            if (t >= 300 && t < 312) level = 0.35 + 0.65 * (t - 300) / 12.0;  // sharp rise
            else if (t >= 312 && t < 348) level = 1.0;
            else if (t >= 348 && t < 372) level = 1.0 - 0.65 * (t - 348) / 24.0;
            return level;
          },
          peak_users, seed);
    }

    case TracePattern::kDualPhase:
      // Low plateau, 60 s transition, high plateau (a diurnal shoulder).
      return from_shape(
          [](int t) {
            if (t < 280) return 0.40;
            if (t < 340) return 0.40 + 0.60 * (t - 280) / 60.0;
            return 1.0;
          },
          peak_users, seed);

    case TracePattern::kLargeVariation:
      return Trace::large_variation(seed, static_cast<double>(peak_users) / 350.0);

    case TracePattern::kSteepTriPhase:
      // Three ramps, each steeper than the last, with resets between.
      return from_shape(
          [](int t) {
            if (t < 200) return 0.30 + 0.25 * t / 200.0;          // gentle
            if (t < 230) return 0.35;                             // reset
            if (t < 400) return 0.35 + 0.40 * (t - 230) / 170.0;  // medium
            if (t < 430) return 0.40;                             // reset
            if (t < 560) return 0.40 + 0.60 * (t - 430) / 130.0;  // steep
            return 0.55;
          },
          peak_users, seed);
  }
  DCM_CHECK_MSG(false, "unknown trace pattern");
  return Trace();
}

}  // namespace dcm::workload
