#include "workload/trace_player.h"

#include "common/check.h"

namespace dcm::workload {

TracePlayer::TracePlayer(sim::Engine& engine, ClosedLoopGenerator& generator, const Trace& trace)
    : engine_(&engine), generator_(&generator), trace_(&trace) {
  DCM_CHECK(trace.step_count() > 0);
}

void TracePlayer::start() {
  if (running_) return;
  running_ = true;
  start_time_ = engine_->now();
  generator_->set_user_count(trace_->users_at(0));
  generator_->start();
  timer_ = engine_->schedule_periodic(trace_->step(), [this] { apply(engine_->now()); });
}

void TracePlayer::apply(sim::SimTime now) {
  if (!running_) return;
  generator_->set_user_count(trace_->users_at(now - start_time_));
}

void TracePlayer::stop() {
  running_ = false;
  timer_.cancel();
  generator_->stop();
}

}  // namespace dcm::workload
