// Client-side measurement: what the paper's workload generators report.
//
// Records every completed request's end-to-end response time into per-second
// series (the Fig. 5 plots), an overall histogram (percentiles) and running
// aggregates. Failure accounting distinguishes errors (requests that
// ultimately failed), timeouts (per-attempt deadline expirations) and
// retries (re-issued attempts); goodput counts only completions that beat
// the goodput latency bound (default 1 s — the paper's SLA threshold).
#pragma once

#include <cstdint>
#include <map>

#include "metrics/histogram.h"
#include "metrics/timeseries.h"
#include "metrics/welford.h"
#include "sim/time.h"

namespace dcm::workload {

class ClientStats {
 public:
  ClientStats();

  /// Completions at or under this latency count toward goodput. Set before
  /// recording (it classifies at record time, not retroactively).
  void set_goodput_bound(double seconds);
  double goodput_bound() const { return goodput_bound_seconds_; }

  /// `servlet` < 0 means "untyped" (no per-servlet attribution).
  void record_completion(sim::SimTime now, double response_time_seconds, int servlet = -1);
  void record_error(sim::SimTime now);
  /// A per-attempt deadline expired (the request may still be retried —
  /// record_error fires only on the final failure).
  void record_timeout(sim::SimTime now);
  /// An attempt was re-issued after a failure or timeout.
  void record_retry();

  uint64_t completed() const { return completed_; }
  uint64_t errors() const { return errors_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t retries() const { return retries_; }
  /// Completions within the goodput bound.
  uint64_t good() const { return good_; }

  /// Per-second mean response time (seconds).
  const metrics::TimeSeries& response_time_series() const { return rt_series_; }
  /// Per-second completions; read with rate_series().
  const metrics::TimeSeries& throughput_series() const { return tp_series_; }
  /// Per-second final failures.
  const metrics::TimeSeries& error_series() const { return error_series_; }
  /// Per-second completions within the goodput bound.
  const metrics::TimeSeries& goodput_series() const { return goodput_series_; }

  const metrics::Welford& response_time_stats() const { return rt_stats_; }
  const metrics::Histogram& response_time_histogram() const { return rt_histogram_; }

  /// Mean throughput (req/s) between two instants, from completion counts.
  double mean_throughput(sim::SimTime from, sim::SimTime to) const;
  /// Mean goodput (bound-beating req/s) between two instants.
  double mean_goodput(sim::SimTime from, sim::SimTime to) const;
  /// errors / (errors + completions) in the window; 0 when idle.
  double error_rate(sim::SimTime from, sim::SimTime to) const;

  /// Per-servlet response-time breakdown (RUBBoS reports per-interaction
  /// statistics); keyed by servlet index, untyped requests excluded.
  const std::map<int, metrics::Welford>& per_servlet_response_times() const {
    return per_servlet_rt_;
  }

 private:
  static double series_count(const metrics::TimeSeries& series, sim::SimTime from,
                             sim::SimTime to);

  uint64_t completed_ = 0;
  uint64_t errors_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t retries_ = 0;
  uint64_t good_ = 0;
  double goodput_bound_seconds_ = 1.0;
  metrics::TimeSeries rt_series_;
  metrics::TimeSeries tp_series_;
  metrics::TimeSeries error_series_;
  metrics::TimeSeries goodput_series_;
  metrics::Welford rt_stats_;
  metrics::Histogram rt_histogram_;
  std::map<int, metrics::Welford> per_servlet_rt_;
};

}  // namespace dcm::workload
