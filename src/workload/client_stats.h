// Client-side measurement: what the paper's workload generators report.
//
// Records every completed request's end-to-end response time into per-second
// series (the Fig. 5 plots), an overall histogram (percentiles) and running
// aggregates.
#pragma once

#include <cstdint>
#include <map>

#include "metrics/histogram.h"
#include "metrics/timeseries.h"
#include "metrics/welford.h"
#include "sim/time.h"

namespace dcm::workload {

class ClientStats {
 public:
  ClientStats();

  /// `servlet` < 0 means "untyped" (no per-servlet attribution).
  void record_completion(sim::SimTime now, double response_time_seconds, int servlet = -1);
  void record_error(sim::SimTime now);

  uint64_t completed() const { return completed_; }
  uint64_t errors() const { return errors_; }

  /// Per-second mean response time (seconds).
  const metrics::TimeSeries& response_time_series() const { return rt_series_; }
  /// Per-second completions; read with rate_series().
  const metrics::TimeSeries& throughput_series() const { return tp_series_; }

  const metrics::Welford& response_time_stats() const { return rt_stats_; }
  const metrics::Histogram& response_time_histogram() const { return rt_histogram_; }

  /// Mean throughput (req/s) between two instants, from completion counts.
  double mean_throughput(sim::SimTime from, sim::SimTime to) const;

  /// Per-servlet response-time breakdown (RUBBoS reports per-interaction
  /// statistics); keyed by servlet index, untyped requests excluded.
  const std::map<int, metrics::Welford>& per_servlet_response_times() const {
    return per_servlet_rt_;
  }

 private:
  uint64_t completed_ = 0;
  uint64_t errors_ = 0;
  metrics::TimeSeries rt_series_;
  metrics::TimeSeries tp_series_;
  metrics::Welford rt_stats_;
  metrics::Histogram rt_histogram_;
  std::map<int, metrics::Welford> per_servlet_rt_;
};

}  // namespace dcm::workload
