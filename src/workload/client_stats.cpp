#include "workload/client_stats.h"

#include "common/check.h"

namespace dcm::workload {

ClientStats::ClientStats()
    : rt_series_("response_time", sim::kNanosPerSecond),
      tp_series_("throughput", sim::kNanosPerSecond),
      error_series_("errors", sim::kNanosPerSecond),
      goodput_series_("goodput", sim::kNanosPerSecond),
      rt_histogram_(metrics::Histogram::logarithmic(1e-4, 100.0)) {}

void ClientStats::set_goodput_bound(double seconds) {
  DCM_CHECK(seconds > 0.0);
  goodput_bound_seconds_ = seconds;
}

void ClientStats::record_completion(sim::SimTime now, double response_time_seconds,
                                    int servlet) {
  ++completed_;
  rt_series_.add(now, response_time_seconds);
  tp_series_.add(now, 1.0);
  const bool within_bound = response_time_seconds <= goodput_bound_seconds_;
  if (within_bound) ++good_;
  goodput_series_.add(now, within_bound ? 1.0 : 0.0);
  rt_stats_.add(response_time_seconds);
  rt_histogram_.add(response_time_seconds);
  if (servlet >= 0) per_servlet_rt_[servlet].add(response_time_seconds);
}

void ClientStats::record_error(sim::SimTime now) {
  ++errors_;
  tp_series_.add(now, 0.0);  // marks the bucket without counting a completion
  error_series_.add(now, 1.0);
  goodput_series_.add(now, 0.0);
}

void ClientStats::record_timeout(sim::SimTime now) {
  ++timeouts_;
  (void)now;  // attempt-level; the final outcome lands in another series
}

void ClientStats::record_retry() { ++retries_; }

double ClientStats::series_count(const metrics::TimeSeries& series, sim::SimTime from,
                                 sim::SimTime to) {
  double count = 0.0;
  for (const auto& b : series.buckets()) {
    if (b.start >= from && b.start < to) count += b.stat.sum();
  }
  return count;
}

double ClientStats::mean_throughput(sim::SimTime from, sim::SimTime to) const {
  DCM_CHECK(to > from);
  return series_count(tp_series_, from, to) / sim::to_seconds(to - from);
}

double ClientStats::mean_goodput(sim::SimTime from, sim::SimTime to) const {
  DCM_CHECK(to > from);
  return series_count(goodput_series_, from, to) / sim::to_seconds(to - from);
}

double ClientStats::error_rate(sim::SimTime from, sim::SimTime to) const {
  DCM_CHECK(to > from);
  const double errors = series_count(error_series_, from, to);
  const double completions = series_count(tp_series_, from, to);
  const double total = errors + completions;
  return total > 0.0 ? errors / total : 0.0;
}

}  // namespace dcm::workload
