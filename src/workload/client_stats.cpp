#include "workload/client_stats.h"

#include "common/check.h"

namespace dcm::workload {

ClientStats::ClientStats()
    : rt_series_("response_time", sim::kNanosPerSecond),
      tp_series_("throughput", sim::kNanosPerSecond),
      rt_histogram_(metrics::Histogram::logarithmic(1e-4, 100.0)) {}

void ClientStats::record_completion(sim::SimTime now, double response_time_seconds,
                                    int servlet) {
  ++completed_;
  rt_series_.add(now, response_time_seconds);
  tp_series_.add(now, 1.0);
  rt_stats_.add(response_time_seconds);
  rt_histogram_.add(response_time_seconds);
  if (servlet >= 0) per_servlet_rt_[servlet].add(response_time_seconds);
}

void ClientStats::record_error(sim::SimTime now) {
  ++errors_;
  tp_series_.add(now, 0.0);  // marks the bucket without counting a completion
}

double ClientStats::mean_throughput(sim::SimTime from, sim::SimTime to) const {
  DCM_CHECK(to > from);
  double count = 0.0;
  for (const auto& b : tp_series_.buckets()) {
    if (b.start >= from && b.start < to) count += b.stat.sum();
  }
  return count / sim::to_seconds(to - from);
}

}  // namespace dcm::workload
