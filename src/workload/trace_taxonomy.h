// The AutoScale trace taxonomy.
//
// The paper's "Large Variation" trace comes from Gandhi et al. (AutoScale,
// TOCS 2012), which categorises production traces into named variability
// patterns. Reproducing the whole taxonomy lets the benches evaluate DCM
// against every pattern, not just the one the paper picked. Each
// synthesizer produces a ~700 s, 1 Hz trace with reproducible noise.
#pragma once

#include <string>
#include <vector>

#include "workload/trace.h"

namespace dcm::workload {

enum class TracePattern {
  kSlowlyVarying,   // gentle multi-minute swell
  kQuicklyVarying,  // high-frequency oscillation
  kBigSpike,        // calm baseline with one violent spike
  kDualPhase,       // low plateau then high plateau (diurnal shift)
  kLargeVariation,  // the paper's Fig. 5 trace
  kSteepTriPhase,   // three successively steeper ramps
};

const char* trace_pattern_name(TracePattern pattern);

/// All six patterns, in declaration order.
std::vector<TracePattern> all_trace_patterns();

/// Synthesizes a pattern at ~`peak_users` peak (each pattern's internal
/// shape is normalised so its maximum hits peak_users).
Trace make_trace(TracePattern pattern, int peak_users = 350, uint64_t seed = 7);

}  // namespace dcm::workload
