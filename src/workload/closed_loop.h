// Closed-loop workload generators.
//
// Both of the paper's generators are closed loops over emulated users:
//   * JMeter training mode — zero think time, so the number of users *is*
//     the request-processing concurrency offered to the system (Sec. V-A).
//   * RUBBoS client mode — ~3 s mean think time between consecutive
//     requests of the same user (Sec. II-A).
// make_jmeter()/make_rubbos_clients() build the two against a servlet
// catalog; a custom RequestFactory supports non-standard targets (e.g.
// stressing a MySQL-only deployment with raw queries, Fig. 2a). The user
// count can be changed at runtime (set_user_count), which is what the trace
// player uses to emulate the revised RUBBoS client.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "ntier/app.h"
#include "sim/distributions.h"
#include "workload/client_stats.h"
#include "workload/servlet.h"

namespace dcm::trace {
class Tracer;
}

namespace dcm::workload {

/// Builds the next request a user issues. `arena` is the owning engine's
/// run-scoped arena (never null from the generators); factories should pass
/// it to make_request_context so per-request storage recycles instead of
/// hitting the global heap.
using RequestFactory = std::function<ntier::RequestPtr(sim::Arena* arena, uint64_t id,
                                                       Rng& rng, sim::SimTime now)>;

/// Factory drawing servlets from a catalog (the standard 3-tier workload).
/// The catalog must outlive the returned factory.
RequestFactory catalog_factory(const ServletCatalog& catalog);

/// Factory deriving each request's plan from a service graph: one weighted
/// servlet draw (exactly the catalog factory's single rng consumption), then
/// per-node demand scales assigned by node role (web/app/db map to the
/// servlet's per-tier scales, lb/cache nodes are 1.0) and per-edge call
/// counts from the edge spec (fixed, or the sampled servlet's query count
/// for servlet-calls edges). On a depth-ordered chain graph this emits the
/// same plan as catalog_factory. The catalog must outlive the factory; the
/// graph is copied into it.
RequestFactory graph_request_factory(const ServletCatalog& catalog,
                                     const ntier::ServiceGraph& graph);

/// Client-side deadline + bounded retry (resilience mechanism). Disabled by
/// default — the generator then behaves exactly as before, with no extra
/// events or rng draws. Backoff before re-issue k→k+1 is
/// backoff_base · multiplier^k, jittered ±jitter_fraction from the
/// generator's own deterministic rng stream. Response time is measured from
/// the first issue to the final success (what the user experienced).
struct RetryPolicy {
  double timeout_seconds = 0.0;  // 0 = no deadline
  int max_retries = 0;
  double backoff_base_seconds = 0.5;
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.2;

  bool enabled() const { return timeout_seconds > 0.0 || max_retries > 0; }
};

struct ClosedLoopConfig {
  int users = 1;
  /// Think time between a user's consecutive requests; nullptr = zero.
  std::unique_ptr<sim::Distribution> think_time;
  /// New users start staggered uniformly over this span (avoids an
  /// artificial synchronised burst when ramping).
  sim::SimTime start_stagger = sim::kNanosPerSecond;
  uint64_t seed = 42;
};

class ClosedLoopGenerator {
 public:
  ClosedLoopGenerator(sim::Engine& engine, ntier::NTierApp& app, RequestFactory factory,
                      ClosedLoopConfig config);

  ClosedLoopGenerator(const ClosedLoopGenerator&) = delete;
  ClosedLoopGenerator& operator=(const ClosedLoopGenerator&) = delete;

  /// Begins issuing requests. Idempotent.
  void start();
  /// Parks all users after their in-flight request completes.
  void stop();

  /// Ramp the emulated user population up or down at runtime.
  void set_user_count(int users);
  int user_count() const { return target_users_; }
  int live_users() const { return live_users_; }

  /// Deadline/retry discipline applied to every request. Set before start().
  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Head-samples new requests through `tracer` (nullptr = tracing off, the
  /// default — the generator then issues byte-for-byte the same event
  /// sequence as before). Set before start().
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  ClientStats& stats() { return stats_; }
  const ClientStats& stats() const { return stats_; }

 private:
  void spawn_user(int user_index, sim::SimTime initial_delay);
  /// `prior_think` is the think-time (seconds) the user just finished, so a
  /// newly sampled trace can record it as a leading kThink span; < 0 means
  /// "first request, no preceding think".
  void user_cycle(int user_index, double prior_think = -1.0);
  void issue_attempt(int user_index, const ntier::RequestPtr& request, int servlet,
                     sim::SimTime first_issued, int attempt);
  void on_attempt_failed(int user_index, const ntier::RequestPtr& request, int servlet,
                         sim::SimTime first_issued, int attempt);
  void finish_cycle(int user_index);

  /// Per-user in-flight state for the legacy (no-retry) path. Keeping it
  /// here instead of in the completion lambda shrinks that lambda to
  /// [this, user_index] — 16 bytes, inside std::function's inline buffer —
  /// so issuing a request performs no heap allocation. Indexed by user id;
  /// a user has at most one request in flight, and ids are never reused by
  /// concurrent cycles.
  struct UserSlot {
    sim::SimTime issued = 0;
    int servlet = -1;
    trace::TraceContext* trace = nullptr;
  };
  UserSlot& user_slot(int user_index);

  sim::Engine* engine_;
  ntier::NTierApp* app_;
  RequestFactory factory_;
  std::unique_ptr<sim::Distribution> think_time_;
  sim::SimTime start_stagger_;
  Rng rng_;
  RetryPolicy retry_;
  trace::Tracer* tracer_ = nullptr;

  bool running_ = false;
  int target_users_ = 0;
  int live_users_ = 0;  // users currently looping (in-flight or thinking)
  int next_user_id_ = 0;
  std::vector<UserSlot> users_;
  ClientStats stats_;
};

/// Zero-think-time generator: `users` == offered concurrency.
std::unique_ptr<ClosedLoopGenerator> make_jmeter(sim::Engine& engine, ntier::NTierApp& app,
                                                 const ServletCatalog& catalog, int users,
                                                 uint64_t seed = 42);

/// Zero-think-time generator over a custom request factory (e.g. the
/// graph_request_factory of a non-chain topology).
std::unique_ptr<ClosedLoopGenerator> make_jmeter(sim::Engine& engine, ntier::NTierApp& app,
                                                 RequestFactory factory, int users,
                                                 uint64_t seed = 42);

/// Realistic RUBBoS clients with exponential think time (default mean 3 s).
std::unique_ptr<ClosedLoopGenerator> make_rubbos_clients(sim::Engine& engine,
                                                         ntier::NTierApp& app,
                                                         const ServletCatalog& catalog, int users,
                                                         double mean_think_seconds = 3.0,
                                                         uint64_t seed = 42);

/// RUBBoS clients over a custom request factory.
std::unique_ptr<ClosedLoopGenerator> make_rubbos_clients(sim::Engine& engine,
                                                         ntier::NTierApp& app,
                                                         RequestFactory factory, int users,
                                                         double mean_think_seconds = 3.0,
                                                         uint64_t seed = 42);

}  // namespace dcm::workload
