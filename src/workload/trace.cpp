#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/csv.h"
#include "common/strings.h"
#include "common/table.h"

namespace dcm::workload {

Trace::Trace(std::vector<int> users_per_step, sim::SimTime step)
    : users_(std::move(users_per_step)), step_(step) {
  DCM_CHECK(step_ > 0);
  for (int u : users_) DCM_CHECK(u >= 0);
}

int Trace::users_at(sim::SimTime t) const {
  if (users_.empty()) return 0;
  if (t < 0) return users_.front();
  const auto idx = static_cast<size_t>(t / step_);
  return users_[std::min(idx, users_.size() - 1)];
}

int Trace::max_users() const {
  return users_.empty() ? 0 : *std::max_element(users_.begin(), users_.end());
}

double Trace::mean_users() const {
  if (users_.empty()) return 0.0;
  return std::accumulate(users_.begin(), users_.end(), 0.0) / static_cast<double>(users_.size());
}

Trace Trace::scaled(double factor) const {
  DCM_CHECK(factor > 0.0);
  std::vector<int> scaled_users;
  scaled_users.reserve(users_.size());
  for (int u : users_) {
    scaled_users.push_back(static_cast<int>(std::lround(u * factor)));
  }
  return Trace(std::move(scaled_users), step_);
}

void Trace::save_csv(const std::string& path) const {
  CsvWriter writer(path);
  writer.write_header({"time_s", "users"});
  for (size_t i = 0; i < users_.size(); ++i) {
    writer.write_row({format_number(sim::to_seconds(static_cast<sim::SimTime>(i) * step_)),
                      std::to_string(users_[i])});
  }
}

Trace Trace::load_csv(const std::string& path) {
  const CsvTable table = read_csv(path);
  const int users_col = table.column("users");
  DCM_CHECK_MSG(users_col >= 0, "trace CSV needs a 'users' column");
  std::vector<int> users;
  users.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    const auto value = parse_int(row[static_cast<size_t>(users_col)]);
    DCM_CHECK_MSG(value.has_value(), "malformed user count in trace CSV");
    users.push_back(static_cast<int>(*value));
  }
  return Trace(std::move(users));
}

Trace Trace::large_variation(uint64_t seed, double scale) {
  DCM_CHECK(scale > 0.0);
  // Piecewise-linear skeleton: (second, users). Bursts at ~50–90, ~220–260
  // and ~520–560 with a deep trough at 420–520.
  const std::vector<std::pair<int, int>> knots = {
      {0, 80},    {40, 100},  {50, 160},  {62, 300},  {90, 290},  {110, 170}, {130, 140},
      {200, 175}, {220, 240}, {232, 350}, {258, 330}, {280, 210}, {320, 150}, {380, 135},
      {420, 90},  {440, 65},  {520, 60},  {528, 170}, {538, 300}, {560, 285}, {590, 190},
      {620, 130}, {700, 100},
  };
  Rng rng(seed);
  std::vector<int> users;
  users.reserve(static_cast<size_t>(knots.back().first) + 1);
  for (size_t k = 0; k + 1 < knots.size(); ++k) {
    const auto [t0, u0] = knots[k];
    const auto [t1, u1] = knots[k + 1];
    for (int t = t0; t < t1; ++t) {
      const double frac = static_cast<double>(t - t0) / static_cast<double>(t1 - t0);
      const double base = u0 + frac * (u1 - u0);
      const double noisy = base * (1.0 + 0.05 * rng.normal());
      users.push_back(std::max(1, static_cast<int>(std::lround(noisy * scale))));
    }
  }
  users.push_back(std::max(1, static_cast<int>(std::lround(knots.back().second * scale))));
  return Trace(std::move(users));
}

Trace Trace::flat(int users, int seconds) {
  DCM_CHECK(users >= 0 && seconds >= 1);
  return Trace(std::vector<int>(static_cast<size_t>(seconds), users));
}

Trace Trace::square(int lo, int hi, int period_seconds, int seconds) {
  DCM_CHECK(period_seconds >= 2 && seconds >= 1);
  std::vector<int> users(static_cast<size_t>(seconds));
  for (int t = 0; t < seconds; ++t) {
    users[static_cast<size_t>(t)] = (t % period_seconds) < period_seconds / 2 ? lo : hi;
  }
  return Trace(std::move(users));
}

Trace Trace::sine(int lo, int hi, int period_seconds, int seconds) {
  DCM_CHECK(period_seconds >= 1 && seconds >= 1);
  std::vector<int> users(static_cast<size_t>(seconds));
  const double mid = 0.5 * (lo + hi);
  const double amp = 0.5 * (hi - lo);
  for (int t = 0; t < seconds; ++t) {
    const double phase = 2.0 * M_PI * static_cast<double>(t) / period_seconds;
    users[static_cast<size_t>(t)] = static_cast<int>(std::lround(mid + amp * std::sin(phase)));
  }
  return Trace(std::move(users));
}

}  // namespace dcm::workload
