#include "workload/open_loop.h"

#include "common/check.h"

namespace dcm::workload {

OpenLoopGenerator::OpenLoopGenerator(sim::Engine& engine, ntier::NTierApp& app,
                                     RequestFactory factory, double arrival_rate, uint64_t seed)
    : engine_(&engine), app_(&app), factory_(std::move(factory)), rate_(arrival_rate),
      rng_(seed) {
  DCM_CHECK(rate_ >= 0.0);
  DCM_CHECK(factory_ != nullptr);
}

void OpenLoopGenerator::start() {
  if (running_) return;
  running_ = true;
  arm_next_arrival();
}

void OpenLoopGenerator::stop() {
  running_ = false;
  next_arrival_.cancel();
}

void OpenLoopGenerator::set_arrival_rate(double rate) {
  DCM_CHECK(rate >= 0.0);
  rate_ = rate;
  if (running_) {
    // Re-draw the next gap under the new rate (memorylessness makes this
    // statistically clean).
    next_arrival_.cancel();
    arm_next_arrival();
  }
}

void OpenLoopGenerator::arm_next_arrival() {
  if (!running_ || rate_ <= 0.0) return;
  const double gap = rng_.exponential(1.0 / rate_);
  next_arrival_ = engine_->schedule_after(sim::from_seconds(gap), [this] { on_arrival(); });
}

void OpenLoopGenerator::on_arrival() {
  if (!running_) return;
  const sim::SimTime issued = engine_->now();
  auto request = factory_(&engine_->arena(), app_->next_request_id(), rng_, issued);
  const int servlet = request->servlet;
  ++outstanding_;
  app_->submit(request, [this, issued, servlet](bool ok) {
    --outstanding_;
    const sim::SimTime now = engine_->now();
    if (ok) {
      stats_.record_completion(now, sim::to_seconds(now - issued), servlet);
    } else {
      stats_.record_error(now);
    }
  });
  arm_next_arrival();
}

}  // namespace dcm::workload
