// Open-loop (Poisson-arrival) workload generator.
//
// The paper's generators are all closed loops (a fixed user population);
// open-loop arrivals complement them: arrival rate is independent of system
// state, so overload manifests as unbounded queueing instead of self-
// throttling — the harsher regime autoscalers face with internet traffic.
#pragma once

#include <memory>

#include "ntier/app.h"
#include "sim/engine.h"
#include "workload/client_stats.h"
#include "workload/closed_loop.h"  // RequestFactory
#include "workload/servlet.h"

namespace dcm::workload {

class OpenLoopGenerator {
 public:
  OpenLoopGenerator(sim::Engine& engine, ntier::NTierApp& app, RequestFactory factory,
                    double arrival_rate, uint64_t seed = 42);

  OpenLoopGenerator(const OpenLoopGenerator&) = delete;
  OpenLoopGenerator& operator=(const OpenLoopGenerator&) = delete;

  void start();
  void stop();

  /// Re-targets the Poisson arrival rate (requests/second) at runtime.
  void set_arrival_rate(double rate);
  double arrival_rate() const { return rate_; }

  /// Requests issued but not yet completed.
  int outstanding() const { return outstanding_; }

  ClientStats& stats() { return stats_; }
  const ClientStats& stats() const { return stats_; }

 private:
  void arm_next_arrival();
  void on_arrival();

  sim::Engine* engine_;
  ntier::NTierApp* app_;
  RequestFactory factory_;
  double rate_;
  Rng rng_;
  bool running_ = false;
  int outstanding_ = 0;
  sim::EventHandle next_arrival_;
  ClientStats stats_;
};

}  // namespace dcm::workload
