#include "workload/servlet.h"

#include <cmath>

#include "common/check.h"

namespace dcm::workload {

ServletCatalog::ServletCatalog(std::vector<Servlet> servlets) : servlets_(std::move(servlets)) {
  DCM_CHECK_MSG(!servlets_.empty(), "catalog needs servlets");
  cumulative_.reserve(servlets_.size());
  for (const auto& s : servlets_) {
    DCM_CHECK(s.weight >= 0.0);
    DCM_CHECK(s.db_queries >= 0);
    // Construction-time sum over a fixed-order vector; never updated again.
    total_weight_ += s.weight;  // dcm-lint: allow(no-unanchored-float-accumulate)
    cumulative_.push_back(total_weight_);
  }
  DCM_CHECK_MSG(total_weight_ > 0.0, "mix has no weighted servlet");
}

ServletCatalog ServletCatalog::browse_only_mix(double mean_db_queries) {
  DCM_CHECK(mean_db_queries > 0.0);
  // The 24 RUBBoS interactions. Weights follow the browse-only transition
  // mix (read-only pages only); relative demand scales reflect page
  // complexity (story pages join comments; searches scan; category listings
  // are cheap). Write interactions are present with weight 0 so per-servlet
  // accounting paths cover the whole catalog.
  std::vector<Servlet> s{
      // name                     weight  web    app    db    queries
      {"StoriesOfTheDay",         0.220,  1.00,  0.90,  0.80, 2},
      {"OlderStories",            0.080,  1.00,  0.95,  0.90, 2},
      {"BrowseCategories",        0.100,  0.80,  0.60,  0.50, 1},
      {"BrowseStoriesByCategory", 0.120,  0.90,  0.85,  0.80, 2},
      {"ViewStory",               0.250,  1.10,  1.20,  1.20, 2},
      {"ViewComment",             0.120,  1.00,  1.10,  1.10, 3},
      {"SearchInStories",         0.060,  1.20,  1.40,  1.80, 2},
      {"SearchInComments",        0.030,  1.20,  1.50,  2.00, 3},
      {"SearchInUsers",           0.020,  1.00,  1.10,  1.30, 1},
      // Write path — weight 0 in the browse-only mix.
      {"AboutMe",                 0.0,    1.00,  1.20,  1.20, 3},
      {"SubmitStory",             0.0,    1.00,  1.10,  1.00, 1},
      {"StoreStory",              0.0,    1.00,  1.30,  1.50, 2},
      {"ReviewStories",           0.0,    1.00,  1.20,  1.40, 2},
      {"AcceptStory",             0.0,    1.00,  1.10,  1.20, 2},
      {"RejectStory",             0.0,    1.00,  1.00,  1.00, 1},
      {"ModerateComment",         0.0,    1.00,  1.10,  1.10, 2},
      {"StoreModeratorLog",       0.0,    1.00,  1.00,  1.20, 1},
      {"PostComment",             0.0,    1.00,  1.20,  1.10, 2},
      {"StoreComment",            0.0,    1.00,  1.30,  1.40, 2},
      {"RegisterUser",            0.0,    0.90,  1.00,  1.00, 1},
      {"StoreRegisterUser",       0.0,    0.90,  1.10,  1.20, 2},
      {"Author",                  0.0,    1.00,  1.00,  1.00, 1},
      {"BrowseRegions",           0.0,    0.80,  0.60,  0.50, 1},
      {"ViewUserInfo",            0.0,    1.00,  1.00,  1.10, 2},
  };

  // Normalise the weighted means so the tier configs' S0 values are the
  // true mean demands and the mean query count hits the requested V_db.
  double w = 0.0, web = 0.0, app = 0.0, db_q = 0.0, db_work = 0.0;
  for (const auto& e : s) {
    w += e.weight;
    web += e.weight * e.web_scale;
    app += e.weight * e.app_scale;
    db_q += e.weight * e.db_queries;
    db_work += e.weight * e.db_scale * e.db_queries;
  }
  const double web_mean = web / w;
  const double app_mean = app / w;
  const double q_mean = db_q / w;
  const double db_scale_mean = db_work / db_q;  // per-query mean scale
  const double q_adjust = mean_db_queries / q_mean;

  for (auto& e : s) {
    e.web_scale /= web_mean;
    e.app_scale /= app_mean;
    e.db_scale /= db_scale_mean;
    e.db_queries = std::max(
        0, static_cast<int>(std::lround(static_cast<double>(e.db_queries) * q_adjust)));
  }
  return ServletCatalog(std::move(s));
}

size_t ServletCatalog::sample(Rng& rng) const {
  const double draw = rng.uniform(0.0, total_weight_);
  for (size_t i = 0; i < cumulative_.size(); ++i) {
    if (draw < cumulative_[i]) return i;
  }
  return cumulative_.size() - 1;
}

ntier::RequestPtr ServletCatalog::make_request(uint64_t id, size_t servlet_index,
                                               sim::SimTime now, sim::Arena* arena) const {
  DCM_CHECK(servlet_index < servlets_.size());
  const Servlet& s = servlets_[servlet_index];
  auto req = ntier::make_request_context(arena);
  req->id = id;
  req->servlet = static_cast<int>(servlet_index);
  req->created = now;
  req->demand_scale = {s.web_scale, s.app_scale, s.db_scale};
  // Tier 0 (web) makes one call to the app tier; the app tier issues the
  // servlet's queries; the DB tier is a leaf.
  req->downstream_calls = {1, s.db_queries, 0};
  return req;
}

double ServletCatalog::mean_db_queries() const {
  double q = 0.0;
  for (const auto& s : servlets_) q += s.weight * s.db_queries;
  return q / total_weight_;
}

double ServletCatalog::mean_scale(int tier) const {
  DCM_CHECK(tier >= 0 && tier <= 2);
  double total = 0.0;
  for (const auto& s : servlets_) {
    const double scale = tier == 0 ? s.web_scale : tier == 1 ? s.app_scale : s.db_scale;
    total += s.weight * scale;
  }
  return total / total_weight_;
}

}  // namespace dcm::workload
