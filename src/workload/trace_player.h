// Trace player — the "revised RUBBoS client emulator" (paper Sec. II-A):
// drives a ClosedLoopGenerator's user population along a workload trace.
#pragma once

#include "sim/engine.h"
#include "workload/closed_loop.h"
#include "workload/trace.h"

namespace dcm::workload {

class TracePlayer {
 public:
  /// Takes a reference to the generator and the trace; both must outlive
  /// the player.
  TracePlayer(sim::Engine& engine, ClosedLoopGenerator& generator, const Trace& trace);

  TracePlayer(const TracePlayer&) = delete;
  TracePlayer& operator=(const TracePlayer&) = delete;

  /// Starts the generator at the trace's first level and re-targets the
  /// user population every trace step. After the trace ends the last level
  /// holds until stop().
  void start();
  void stop();

  bool finished(sim::SimTime now) const { return now >= start_time_ + trace_->duration(); }

 private:
  void apply(sim::SimTime now);

  sim::Engine* engine_;
  ClosedLoopGenerator* generator_;
  const Trace* trace_;
  sim::SimTime start_time_ = 0;
  sim::EventHandle timer_;
  bool running_ = false;
};

}  // namespace dcm::workload
