#include "workload/closed_loop.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "trace/tracer.h"

namespace dcm::workload {

RequestFactory catalog_factory(const ServletCatalog& catalog) {
  return [&catalog](sim::Arena* arena, uint64_t id, Rng& rng, sim::SimTime now) {
    return catalog.make_request(id, catalog.sample(rng), now, arena);
  };
}

RequestFactory graph_request_factory(const ServletCatalog& catalog,
                                     const ntier::ServiceGraph& graph) {
  struct EdgePlan {
    int fixed_calls = 0;
    bool servlet_calls = false;
  };
  std::vector<ntier::NodeRole> roles;
  roles.reserve(graph.node_count());
  for (size_t i = 0; i < graph.node_count(); ++i) roles.push_back(graph.node(i).role);
  std::vector<EdgePlan> edges;
  edges.reserve(graph.edge_count());
  for (size_t i = 0; i < graph.edge_count(); ++i) {
    edges.push_back({graph.edge(i).fixed_calls, graph.edge(i).servlet_calls});
  }
  return [&catalog, roles = std::move(roles), edges = std::move(edges)](
             sim::Arena* arena, uint64_t id, Rng& rng, sim::SimTime now) {
    // One weighted draw — the same single rng consumption as catalog_factory,
    // so swapping factories never shifts any random stream.
    const size_t servlet_index = catalog.sample(rng);
    const Servlet& s = catalog.servlet(servlet_index);
    auto req = ntier::make_request_context(arena);
    req->id = id;
    req->servlet = static_cast<int>(servlet_index);
    req->created = now;
    for (const ntier::NodeRole role : roles) {
      double scale = 1.0;
      switch (role) {
        case ntier::NodeRole::kWeb: scale = s.web_scale; break;
        case ntier::NodeRole::kApp: scale = s.app_scale; break;
        case ntier::NodeRole::kDb: scale = s.db_scale; break;
        case ntier::NodeRole::kLb:
        case ntier::NodeRole::kCache: scale = 1.0; break;
      }
      req->demand_scale.push_back(scale);
    }
    for (const EdgePlan& e : edges) {
      req->downstream_calls.push_back(e.servlet_calls ? s.db_queries : e.fixed_calls);
    }
    return req;
  };
}

ClosedLoopGenerator::ClosedLoopGenerator(sim::Engine& engine, ntier::NTierApp& app,
                                         RequestFactory factory, ClosedLoopConfig config)
    : engine_(&engine),
      app_(&app),
      factory_(std::move(factory)),
      think_time_(std::move(config.think_time)),
      start_stagger_(config.start_stagger),
      rng_(config.seed),
      target_users_(config.users) {
  DCM_CHECK(config.users >= 0);
  DCM_CHECK(start_stagger_ >= 0);
  DCM_CHECK(factory_ != nullptr);
}

void ClosedLoopGenerator::start() {
  if (running_) return;
  running_ = true;
  while (live_users_ < target_users_) {
    spawn_user(next_user_id_++, rng_.uniform_int(0, start_stagger_));
  }
}

void ClosedLoopGenerator::stop() { running_ = false; }

void ClosedLoopGenerator::set_user_count(int users) {
  DCM_CHECK(users >= 0);
  target_users_ = users;
  if (!running_) return;
  // Deficit: spawn staggered newcomers. Excess: loops park themselves at
  // their next cycle boundary (see user_cycle).
  while (live_users_ < target_users_) {
    spawn_user(next_user_id_++, rng_.uniform_int(0, start_stagger_));
  }
}

void ClosedLoopGenerator::spawn_user(int user_index, sim::SimTime initial_delay) {
  ++live_users_;
  engine_->schedule_after(initial_delay, [this, user_index] { user_cycle(user_index); });
}

ClosedLoopGenerator::UserSlot& ClosedLoopGenerator::user_slot(int user_index) {
  if (static_cast<size_t>(user_index) >= users_.size()) {
    users_.resize(static_cast<size_t>(user_index) + 1);
  }
  return users_[static_cast<size_t>(user_index)];
}

void ClosedLoopGenerator::user_cycle(int user_index, double prior_think) {
  if (!running_ || live_users_ > target_users_) {
    --live_users_;
    return;
  }
  const sim::SimTime issued = engine_->now();
  auto request = factory_(&engine_->arena(), app_->next_request_id(), rng_, issued);
  const int servlet = request->servlet;
  if (tracer_ != nullptr) {
    request->trace = tracer_->maybe_sample(request->id, servlet, issued);
    if (request->trace != nullptr && prior_think > 0.0) {
      request->trace->add_span(trace::SpanKind::kThink, trace::kClientTier,
                               issued - sim::from_seconds(prior_think), issued,
                               prior_think);
    }
  }
  if (retry_.enabled()) {
    issue_attempt(user_index, request, servlet, issued, /*attempt=*/0);
    return;
  }
  // Legacy path — byte-for-byte the pre-resilience behaviour when no retry
  // policy is configured. In-flight per-user state (issue time, servlet,
  // the raw TraceContext pointer kept alive by the Tracer) lives in the
  // user's slot so the completion lambda is [this, user_index] — 16 bytes,
  // inside std::function's inline buffer: issuing a request allocates
  // nothing.
  UserSlot& slot = user_slot(user_index);
  slot.issued = issued;
  slot.servlet = servlet;
  slot.trace = request->trace.get();
  app_->submit(request, [this, user_index](bool ok) {
    const UserSlot& done = users_[static_cast<size_t>(user_index)];
    const sim::SimTime now = engine_->now();
    if (ok) {
      stats_.record_completion(now, sim::to_seconds(now - done.issued), done.servlet);
    } else {
      stats_.record_error(now);
    }
    if (done.trace != nullptr) done.trace->finalize(now, ok);
    const double think = think_time_ ? think_time_->sample(rng_) : 0.0;
    // Always reschedule through the engine — a zero think time must not
    // recurse synchronously.
    engine_->schedule_after(sim::from_seconds(think), [this, user_index, think] {
      user_cycle(user_index, think);
    });
  });
}

void ClosedLoopGenerator::issue_attempt(int user_index, const ntier::RequestPtr& request,
                                        int servlet, sim::SimTime first_issued, int attempt) {
  // Settlement record shared by the response and the deadline: whichever
  // fires second finds `settled` set and becomes a no-op.
  struct Attempt {
    bool settled = false;
    sim::EventHandle timeout;
  };
  auto state = std::make_shared<Attempt>();
  if (trace::TraceContext* tr = request->trace.get()) tr->attempts = attempt + 1;
  app_->submit(request, [this, user_index, request, servlet, first_issued, attempt,
                         state](bool ok) {
    if (state->settled) return;  // deadline already expired; drop late response
    state->settled = true;
    state->timeout.cancel();
    if (ok) {
      const sim::SimTime now = engine_->now();
      stats_.record_completion(now, sim::to_seconds(now - first_issued), servlet);
      if (trace::TraceContext* tr = request->trace.get()) tr->finalize(now, true);
      finish_cycle(user_index);
      return;
    }
    on_attempt_failed(user_index, request, servlet, first_issued, attempt);
  });
  if (retry_.timeout_seconds > 0.0 && !state->settled) {
    state->timeout = engine_->schedule_after(
        sim::from_seconds(retry_.timeout_seconds),
        [this, user_index, request, servlet, first_issued, attempt, state] {
          if (state->settled) return;
          state->settled = true;
          const sim::SimTime now = engine_->now();
          stats_.record_timeout(now);
          if (trace::TraceContext* tr = request->trace.get()) {
            tr->add_span(trace::SpanKind::kTimeoutWait, trace::kClientTier,
                         now - sim::from_seconds(retry_.timeout_seconds), now);
          }
          on_attempt_failed(user_index, request, servlet, first_issued, attempt);
        });
  }
}

void ClosedLoopGenerator::on_attempt_failed(int user_index, const ntier::RequestPtr& request,
                                            int servlet, sim::SimTime first_issued,
                                            int attempt) {
  if (attempt < retry_.max_retries) {
    stats_.record_retry();
    const double base =
        retry_.backoff_base_seconds * std::pow(retry_.backoff_multiplier, attempt);
    const double jitter =
        retry_.jitter_fraction > 0.0
            ? 1.0 + retry_.jitter_fraction * (2.0 * rng_.next_double() - 1.0)
            : 1.0;
    const double delay = std::max(0.0, base * jitter);
    if (trace::TraceContext* tr = request->trace.get()) {
      tr->add_span(trace::SpanKind::kBackoff, trace::kClientTier, engine_->now(),
                   engine_->now() + sim::from_seconds(delay));
    }
    engine_->schedule_after(
        sim::from_seconds(delay),
        [this, user_index, request, servlet, first_issued, attempt] {
          issue_attempt(user_index, request, servlet, first_issued, attempt + 1);
        });
    return;
  }
  stats_.record_error(engine_->now());
  if (trace::TraceContext* tr = request->trace.get()) {
    tr->finalize(engine_->now(), false);
  }
  finish_cycle(user_index);
}

void ClosedLoopGenerator::finish_cycle(int user_index) {
  const double think = think_time_ ? think_time_->sample(rng_) : 0.0;
  engine_->schedule_after(sim::from_seconds(think),
                          [this, user_index, think] { user_cycle(user_index, think); });
}

std::unique_ptr<ClosedLoopGenerator> make_jmeter(sim::Engine& engine, ntier::NTierApp& app,
                                                 const ServletCatalog& catalog, int users,
                                                 uint64_t seed) {
  ClosedLoopConfig config;
  config.users = users;
  config.think_time = nullptr;
  config.seed = seed;
  return std::make_unique<ClosedLoopGenerator>(engine, app, catalog_factory(catalog),
                                               std::move(config));
}

std::unique_ptr<ClosedLoopGenerator> make_jmeter(sim::Engine& engine, ntier::NTierApp& app,
                                                 RequestFactory factory, int users,
                                                 uint64_t seed) {
  ClosedLoopConfig config;
  config.users = users;
  config.think_time = nullptr;
  config.seed = seed;
  return std::make_unique<ClosedLoopGenerator>(engine, app, std::move(factory),
                                               std::move(config));
}

std::unique_ptr<ClosedLoopGenerator> make_rubbos_clients(sim::Engine& engine,
                                                         ntier::NTierApp& app,
                                                         const ServletCatalog& catalog, int users,
                                                         double mean_think_seconds,
                                                         uint64_t seed) {
  ClosedLoopConfig config;
  config.users = users;
  config.think_time = sim::make_exponential(mean_think_seconds);
  config.seed = seed;
  return std::make_unique<ClosedLoopGenerator>(engine, app, catalog_factory(catalog),
                                               std::move(config));
}

std::unique_ptr<ClosedLoopGenerator> make_rubbos_clients(sim::Engine& engine,
                                                         ntier::NTierApp& app,
                                                         RequestFactory factory, int users,
                                                         double mean_think_seconds,
                                                         uint64_t seed) {
  ClosedLoopConfig config;
  config.users = users;
  config.think_time = sim::make_exponential(mean_think_seconds);
  config.seed = seed;
  return std::make_unique<ClosedLoopGenerator>(engine, app, std::move(factory),
                                               std::move(config));
}

}  // namespace dcm::workload
