#include "workload/closed_loop.h"

#include "common/check.h"

namespace dcm::workload {

RequestFactory catalog_factory(const ServletCatalog& catalog) {
  return [&catalog](uint64_t id, Rng& rng, sim::SimTime now) {
    return catalog.make_request(id, catalog.sample(rng), now);
  };
}

ClosedLoopGenerator::ClosedLoopGenerator(sim::Engine& engine, ntier::NTierApp& app,
                                         RequestFactory factory, ClosedLoopConfig config)
    : engine_(&engine),
      app_(&app),
      factory_(std::move(factory)),
      think_time_(std::move(config.think_time)),
      start_stagger_(config.start_stagger),
      rng_(config.seed),
      target_users_(config.users) {
  DCM_CHECK(config.users >= 0);
  DCM_CHECK(start_stagger_ >= 0);
  DCM_CHECK(factory_ != nullptr);
}

void ClosedLoopGenerator::start() {
  if (running_) return;
  running_ = true;
  while (live_users_ < target_users_) {
    spawn_user(next_user_id_++, rng_.uniform_int(0, start_stagger_));
  }
}

void ClosedLoopGenerator::stop() { running_ = false; }

void ClosedLoopGenerator::set_user_count(int users) {
  DCM_CHECK(users >= 0);
  target_users_ = users;
  if (!running_) return;
  // Deficit: spawn staggered newcomers. Excess: loops park themselves at
  // their next cycle boundary (see user_cycle).
  while (live_users_ < target_users_) {
    spawn_user(next_user_id_++, rng_.uniform_int(0, start_stagger_));
  }
}

void ClosedLoopGenerator::spawn_user(int user_index, sim::SimTime initial_delay) {
  ++live_users_;
  engine_->schedule_after(initial_delay, [this, user_index] { user_cycle(user_index); });
}

void ClosedLoopGenerator::user_cycle(int user_index) {
  if (!running_ || live_users_ > target_users_) {
    --live_users_;
    return;
  }
  const sim::SimTime issued = engine_->now();
  auto request = factory_(app_->next_request_id(), rng_, issued);
  const int servlet = request->servlet;
  app_->submit(request, [this, user_index, issued, servlet](bool ok) {
    const sim::SimTime now = engine_->now();
    if (ok) {
      stats_.record_completion(now, sim::to_seconds(now - issued), servlet);
    } else {
      stats_.record_error(now);
    }
    const double think = think_time_ ? think_time_->sample(rng_) : 0.0;
    // Always reschedule through the engine — a zero think time must not
    // recurse synchronously.
    engine_->schedule_after(sim::from_seconds(think), [this, user_index] {
      user_cycle(user_index);
    });
  });
}

std::unique_ptr<ClosedLoopGenerator> make_jmeter(sim::Engine& engine, ntier::NTierApp& app,
                                                 const ServletCatalog& catalog, int users,
                                                 uint64_t seed) {
  ClosedLoopConfig config;
  config.users = users;
  config.think_time = nullptr;
  config.seed = seed;
  return std::make_unique<ClosedLoopGenerator>(engine, app, catalog_factory(catalog),
                                               std::move(config));
}

std::unique_ptr<ClosedLoopGenerator> make_rubbos_clients(sim::Engine& engine,
                                                         ntier::NTierApp& app,
                                                         const ServletCatalog& catalog, int users,
                                                         double mean_think_seconds,
                                                         uint64_t seed) {
  ClosedLoopConfig config;
  config.users = users;
  config.think_time = sim::make_exponential(mean_think_seconds);
  config.seed = seed;
  return std::make_unique<ClosedLoopGenerator>(engine, app, catalog_factory(catalog),
                                               std::move(config));
}

}  // namespace dcm::workload
