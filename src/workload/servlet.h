// RUBBoS servlet catalog.
//
// RUBBoS (the paper's benchmark) exposes 24 servlet interactions modelled on
// Slashdot. Each servlet puts a different CPU demand on the web/app/DB tiers
// and issues a different number of DB queries. The paper uses the
// CPU-intensive browse-only mix; browse_only_mix() reproduces that: only the
// read-only interactions carry weight, and the catalog is normalised so the
// *weighted mean* per-tier demand scale is 1.0 and the weighted mean query
// count equals the configured visit ratio (V_db = 2 by default, matching the
// paper's Sec. III-A example).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "ntier/request.h"

namespace dcm::workload {

struct Servlet {
  std::string name;
  double weight = 0.0;      // probability mass in the mix (0 = excluded)
  double web_scale = 1.0;   // demand multiplier at the web tier
  double app_scale = 1.0;   // demand multiplier at the app tier
  double db_scale = 1.0;    // demand multiplier per DB query
  int db_queries = 2;       // queries issued by the app tier
};

class ServletCatalog {
 public:
  explicit ServletCatalog(std::vector<Servlet> servlets);

  /// The paper's CPU-intensive browse-only RUBBoS mix (24 interactions, the
  /// 9 read-only ones weighted). `mean_db_queries` sets the normalised
  /// weighted-average visit ratio to the DB tier.
  static ServletCatalog browse_only_mix(double mean_db_queries = 2.0);

  size_t size() const { return servlets_.size(); }
  const Servlet& servlet(size_t index) const { return servlets_[index]; }

  /// Weighted draw of a servlet index.
  size_t sample(Rng& rng) const;

  /// Builds a RequestContext for a 3-tier deployment (web/app/db) from a
  /// sampled servlet. When `arena` is non-null the context is arena-backed
  /// (allocation-free in steady state); see make_request_context.
  ntier::RequestPtr make_request(uint64_t id, size_t servlet_index, sim::SimTime now,
                                 sim::Arena* arena = nullptr) const;

  /// Weighted mean of db_queries across the mix.
  double mean_db_queries() const;
  /// Weighted mean demand scale for a tier (0=web, 1=app, 2=db).
  double mean_scale(int tier) const;

 private:
  std::vector<Servlet> servlets_;
  std::vector<double> cumulative_;  // cumulative weights for sampling
  double total_weight_ = 0.0;
};

}  // namespace dcm::workload
