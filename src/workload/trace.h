// Workload traces: a time series of concurrent-user counts.
//
// The paper's Fig. 5 drives the system with the "Large Variation" trace
// published by Gandhi et al. (AutoScale, TOCS 2012). That trace is not
// redistributable, so large_variation() synthesizes a reproducible stand-in
// with the burst structure the paper narrates: three overload bursts around
// 50–90 s, 220–260 s and 530–560 s, with a long trough before the third
// burst (which is what lures the baseline into scaling in too far).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/time.h"

namespace dcm::workload {

class Trace {
 public:
  Trace() = default;
  /// One entry per step; entry i applies during [i*step, (i+1)*step).
  Trace(std::vector<int> users_per_step, sim::SimTime step = sim::kNanosPerSecond);

  size_t step_count() const { return users_.size(); }
  sim::SimTime step() const { return step_; }
  sim::SimTime duration() const { return static_cast<sim::SimTime>(users_.size()) * step_; }

  /// User count at absolute time t (clamped to the last step beyond the
  /// end, 0 for an empty trace).
  int users_at(sim::SimTime t) const;
  const std::vector<int>& values() const { return users_; }

  int max_users() const;
  double mean_users() const;

  /// Uniformly scales every step (rounding), e.g. to re-target a trace at a
  /// differently-sized deployment.
  Trace scaled(double factor) const;

  // --- I/O: CSV with columns time_s,users ---
  void save_csv(const std::string& path) const;
  static Trace load_csv(const std::string& path);

  // --- synthesizers ---
  /// The Fig. 5 stand-in described above (~700 s, 1 s steps).
  static Trace large_variation(uint64_t seed = 7, double scale = 1.0);
  /// Constant level.
  static Trace flat(int users, int seconds);
  /// Square wave between lo and hi.
  static Trace square(int lo, int hi, int period_seconds, int seconds);
  /// Sinusoid between lo and hi.
  static Trace sine(int lo, int hi, int period_seconds, int seconds);

 private:
  std::vector<int> users_;
  sim::SimTime step_ = sim::kNanosPerSecond;
};

}  // namespace dcm::workload
