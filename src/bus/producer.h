// Producer: appends keyed records to a topic via the broker.
#pragma once

#include <string>

#include "bus/broker.h"

namespace dcm::bus {

class Producer {
 public:
  /// The broker must outlive the producer.
  explicit Producer(Broker& broker);

  /// Appends to the key's partition; returns the assigned offset, or -1 if
  /// the topic is inside a fault-injected drop window (record lost).
  /// The topic must exist.
  int64_t send(const std::string& topic, const std::string& key, std::string value,
               sim::SimTime timestamp);

  uint64_t records_sent() const { return records_sent_; }
  /// Records lost to topic drop windows (telemetry-loss fault accounting).
  uint64_t records_dropped() const { return records_dropped_; }

 private:
  Broker* broker_;
  uint64_t records_sent_ = 0;
  uint64_t records_dropped_ = 0;
};

}  // namespace dcm::bus
