// In-memory broker: topics, partitions, retention, consumer-group offsets.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/record.h"
#include "sim/time.h"

namespace dcm::bus {

/// One append-only log. Offsets are dense and monotone; retention may trim
/// the head, in which case base_offset() moves forward.
class Partition {
 public:
  /// Appends and returns the assigned offset.
  int64_t append(Record record);

  /// Copies up to `max_records` records with offset >= from (clamped to the
  /// retained range).
  std::vector<Record> fetch(int64_t from, size_t max_records) const;

  int64_t base_offset() const { return base_offset_; }
  /// Offset the next append will get.
  int64_t end_offset() const { return base_offset_ + static_cast<int64_t>(log_.size()); }
  size_t size() const { return log_.size(); }

  /// Drops records with timestamp < horizon.
  void expire_before(sim::SimTime horizon);

 private:
  std::vector<Record> log_;
  int64_t base_offset_ = 0;
};

struct TopicConfig {
  int partitions = 1;
  /// Records older than now - retention are dropped by enforce_retention();
  /// <= 0 means keep everything.
  sim::SimTime retention = 0;
};

class Topic {
 public:
  Topic(std::string name, TopicConfig config);

  const std::string& name() const { return name_; }
  int partition_count() const { return static_cast<int>(partitions_.size()); }
  /// Stable key → partition mapping (FNV-1a hash).
  int partition_for_key(const std::string& key) const;

  Partition& partition(int index);
  const Partition& partition(int index) const;

  const TopicConfig& config() const { return config_; }

  /// Fault injection: records produced before `until` (exclusive) are
  /// dropped instead of appended — a telemetry-loss window. Idempotent;
  /// overlapping windows extend to the later bound.
  void set_drop_until(sim::SimTime until);
  /// True when a record timestamped `at` would be dropped.
  bool drops_at(sim::SimTime at) const { return at < drop_until_; }
  sim::SimTime drop_until() const { return drop_until_; }

 private:
  std::string name_;
  TopicConfig config_;
  std::vector<Partition> partitions_;
  sim::SimTime drop_until_ = 0;
};

/// The broker owns topics and consumer-group committed offsets.
class Broker {
 public:
  /// Creates a topic; rejects duplicates.
  Topic& create_topic(const std::string& name, TopicConfig config = {});
  /// Looks up a topic; nullptr if absent.
  Topic* find_topic(const std::string& name);

  /// Applies time-based retention across all topics.
  void enforce_retention(sim::SimTime now);

  /// Consumer-group committed offset bookkeeping.
  void commit_offset(const std::string& group, const std::string& topic, int partition,
                     int64_t offset);
  std::optional<int64_t> committed_offset(const std::string& group, const std::string& topic,
                                          int partition) const;

  /// Total records currently retained (diagnostics).
  size_t total_records() const;

 private:
  std::map<std::string, std::unique_ptr<Topic>> topics_;
  // (group, topic, partition) -> next offset to consume
  std::map<std::tuple<std::string, std::string, int>, int64_t> committed_;
};

}  // namespace dcm::bus
