#include "bus/broker.h"

#include <algorithm>

#include "common/check.h"

namespace dcm::bus {

int64_t Partition::append(Record record) {
  record.offset = end_offset();
  log_.push_back(std::move(record));
  return log_.back().offset;
}

std::vector<Record> Partition::fetch(int64_t from, size_t max_records) const {
  std::vector<Record> out;
  const int64_t start = std::max(from, base_offset_);
  const int64_t end = end_offset();
  if (start >= end) return out;
  const auto first = static_cast<size_t>(start - base_offset_);
  const size_t n = std::min(max_records, static_cast<size_t>(end - start));
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(log_[first + i]);
  return out;
}

void Partition::expire_before(sim::SimTime horizon) {
  size_t drop = 0;
  while (drop < log_.size() && log_[drop].timestamp < horizon) ++drop;
  if (drop == 0) return;
  log_.erase(log_.begin(), log_.begin() + static_cast<long>(drop));
  base_offset_ += static_cast<int64_t>(drop);
}

Topic::Topic(std::string name, TopicConfig config) : name_(std::move(name)), config_(config) {
  DCM_CHECK_MSG(config_.partitions >= 1, "topic needs at least one partition");
  partitions_.resize(static_cast<size_t>(config_.partitions));
}

void Topic::set_drop_until(sim::SimTime until) {
  if (until > drop_until_) drop_until_ = until;
}

int Topic::partition_for_key(const std::string& key) const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<int>(h % static_cast<uint64_t>(partitions_.size()));
}

Partition& Topic::partition(int index) {
  DCM_CHECK(index >= 0 && index < partition_count());
  return partitions_[static_cast<size_t>(index)];
}

const Partition& Topic::partition(int index) const {
  DCM_CHECK(index >= 0 && index < partition_count());
  return partitions_[static_cast<size_t>(index)];
}

Topic& Broker::create_topic(const std::string& name, TopicConfig config) {
  DCM_CHECK_MSG(topics_.find(name) == topics_.end(), "duplicate topic");
  auto topic = std::make_unique<Topic>(name, config);
  Topic& ref = *topic;
  topics_.emplace(name, std::move(topic));
  return ref;
}

Topic* Broker::find_topic(const std::string& name) {
  const auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : it->second.get();
}

void Broker::enforce_retention(sim::SimTime now) {
  for (auto& [name, topic] : topics_) {
    const sim::SimTime retention = topic->config().retention;
    if (retention <= 0) continue;
    for (int p = 0; p < topic->partition_count(); ++p) {
      topic->partition(p).expire_before(now - retention);
    }
  }
}

void Broker::commit_offset(const std::string& group, const std::string& topic, int partition,
                           int64_t offset) {
  committed_[{group, topic, partition}] = offset;
}

std::optional<int64_t> Broker::committed_offset(const std::string& group, const std::string& topic,
                                                int partition) const {
  const auto it = committed_.find({group, topic, partition});
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

size_t Broker::total_records() const {
  size_t total = 0;
  for (const auto& [name, topic] : topics_) {
    for (int p = 0; p < topic->partition_count(); ++p) total += topic->partition(p).size();
  }
  return total;
}

}  // namespace dcm::bus
