// Consumer: polls all partitions of a topic, tracking (and optionally
// committing) per-partition offsets under a consumer group.
//
// A freshly constructed consumer resumes from its group's committed offsets
// (Kafka semantics), or from the earliest retained record when the group has
// no commit yet.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bus/broker.h"

namespace dcm::bus {

class Consumer {
 public:
  /// The broker must outlive the consumer. The topic must exist.
  Consumer(Broker& broker, std::string group, std::string topic);

  /// Static group membership (Kafka's group.instance.id pattern): member
  /// `member_index` of `member_count` owns the partitions p with
  /// p % member_count == member_index. Members of the same group with the
  /// same topology share the work without overlap.
  Consumer(Broker& broker, std::string group, std::string topic, int member_index,
           int member_count);

  /// Fetches up to `max_records` across partitions (round-robin), advancing
  /// the in-memory position. Does not commit.
  std::vector<Record> poll(size_t max_records = 256);

  /// Persists current positions to the broker for this group.
  void commit();

  /// Moves the position of every partition to the log end (skip backlog).
  void seek_to_end();
  /// Moves the position of every partition to the earliest retained record.
  void seek_to_beginning();

  /// Records available but not yet polled.
  int64_t lag() const;

 private:
  Broker* broker_;
  std::string group_;
  std::string topic_name_;
  std::map<int, int64_t> positions_;  // partition -> next offset
};

}  // namespace dcm::bus
