#include "bus/consumer.h"

#include <algorithm>

#include "common/check.h"

namespace dcm::bus {

Consumer::Consumer(Broker& broker, std::string group, std::string topic)
    : Consumer(broker, std::move(group), std::move(topic), 0, 1) {}

Consumer::Consumer(Broker& broker, std::string group, std::string topic, int member_index,
                   int member_count)
    : broker_(&broker), group_(std::move(group)), topic_name_(std::move(topic)) {
  DCM_CHECK(member_count >= 1);
  DCM_CHECK(member_index >= 0 && member_index < member_count);
  Topic* t = broker_->find_topic(topic_name_);
  DCM_CHECK_MSG(t != nullptr, "consumer on unknown topic");
  for (int p = 0; p < t->partition_count(); ++p) {
    if (p % member_count != member_index) continue;
    const auto committed = broker_->committed_offset(group_, topic_name_, p);
    positions_[p] = committed.value_or(t->partition(p).base_offset());
  }
}

std::vector<Record> Consumer::poll(size_t max_records) {
  Topic* t = broker_->find_topic(topic_name_);
  DCM_CHECK(t != nullptr);
  std::vector<Record> out;
  for (auto& [p, pos] : positions_) {
    if (out.size() >= max_records) break;
    Partition& part = t->partition(p);
    // Retention may have trimmed past our position.
    pos = std::max(pos, part.base_offset());
    auto batch = part.fetch(pos, max_records - out.size());
    if (!batch.empty()) {
      pos = batch.back().offset + 1;
      for (auto& r : batch) out.push_back(std::move(r));
    }
  }
  // Deliver in event-time order so the controller sees one merged stream.
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) { return a.timestamp < b.timestamp; });
  return out;
}

void Consumer::commit() {
  for (const auto& [p, pos] : positions_) {
    broker_->commit_offset(group_, topic_name_, p, pos);
  }
}

void Consumer::seek_to_end() {
  Topic* t = broker_->find_topic(topic_name_);
  DCM_CHECK(t != nullptr);
  for (auto& [p, pos] : positions_) pos = t->partition(p).end_offset();
}

void Consumer::seek_to_beginning() {
  Topic* t = broker_->find_topic(topic_name_);
  DCM_CHECK(t != nullptr);
  for (auto& [p, pos] : positions_) pos = t->partition(p).base_offset();
}

int64_t Consumer::lag() const {
  Topic* t = broker_->find_topic(topic_name_);
  DCM_CHECK(t != nullptr);
  int64_t total = 0;
  for (const auto& [p, pos] : positions_) {
    total += std::max<int64_t>(0, t->partition(p).end_offset() - pos);
  }
  return total;
}

}  // namespace dcm::bus
