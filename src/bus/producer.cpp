#include "bus/producer.h"

#include "common/check.h"

namespace dcm::bus {

Producer::Producer(Broker& broker) : broker_(&broker) {}

int64_t Producer::send(const std::string& topic_name, const std::string& key, std::string value,
                       sim::SimTime timestamp) {
  Topic* topic = broker_->find_topic(topic_name);
  DCM_CHECK_MSG(topic != nullptr, "produce to unknown topic");
  if (topic->drops_at(timestamp)) {
    ++records_dropped_;
    return -1;
  }
  const int p = topic->partition_for_key(key);
  Record record;
  record.timestamp = timestamp;
  record.key = key;
  record.value = std::move(value);
  const int64_t offset = topic->partition(p).append(std::move(record));
  ++records_sent_;
  return offset;
}

}  // namespace dcm::bus
