// Bus record type.
//
// The DCM monitoring pipeline ships per-second metric samples from agents to
// the controller through a Kafka-like log (paper Sec. IV: agents produce at
// 1 Hz, the controller consumes at its own 15 s pace; the log decouples the
// rates). Records carry opaque string payloads, like Kafka's byte values —
// agents serialise samples, the controller parses them.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace dcm::bus {

struct Record {
  int64_t offset = -1;          // assigned by the partition on append
  sim::SimTime timestamp = 0;   // producer-supplied event time
  std::string key;              // partitioning key (e.g. server id)
  std::string value;            // serialised payload
};

}  // namespace dcm::bus
