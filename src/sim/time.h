// Simulation time.
//
// Time is an integer count of nanoseconds since experiment start. Integer
// time makes event ordering exact and replayable; doubles are used only for
// durations produced by samplers and converted at the boundary.
#pragma once

#include <cstdint>
#include <string>

namespace dcm::sim {

using SimTime = int64_t;  // nanoseconds

inline constexpr SimTime kMaxSimTime = INT64_MAX;

inline constexpr SimTime kNanosPerMicro = 1'000;
inline constexpr SimTime kNanosPerMilli = 1'000'000;
inline constexpr SimTime kNanosPerSecond = 1'000'000'000;

constexpr SimTime from_seconds(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kNanosPerSecond) + 0.5);
}

constexpr SimTime from_millis(double millis) {
  return static_cast<SimTime>(millis * static_cast<double>(kNanosPerMilli) + 0.5);
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerSecond);
}

constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerMilli);
}

/// "12.345s" style rendering for logs.
std::string format_time(SimTime t);

}  // namespace dcm::sim
