#include "sim/event_queue.h"

#include "common/check.h"

namespace dcm::sim {

uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNilSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNilSlot;
    return slot;
  }
  DCM_CHECK_MSG(slots_.size() < kNilSlot, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::cancel(uint32_t slot, uint32_t generation) {
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.generation != generation) return;  // already fired, cancelled, or reused
  s.fn.reset();  // release captured state eagerly; the heap entry dies lazily
  free_slot(slot);
}

bool EventQueue::empty() { return min_front() == nullptr; }

SimTime EventQueue::next_time() {
  std::vector<Entry>* h = min_front();
  DCM_CHECK_MSG(h != nullptr, "next_time on empty queue");
  return h->front().time;
}

EventQueue::Popped EventQueue::pop() {
  std::vector<Entry>* h = min_front();
  DCM_CHECK_MSG(h != nullptr, "pop on empty queue");
  const Entry top = h->front();
  Popped out{top.time, std::move(slots_[top.slot].fn)};
  free_slot(top.slot);  // generation bump makes a late cancel() a no-op
  now_floor_ = top.time;
  remove_front(*h);
  return out;
}

}  // namespace dcm::sim
