#include "sim/event_queue.h"

#include "common/check.h"

namespace dcm::sim {

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  auto flag = std::make_shared<bool>(false);
  heap_.push(Entry{at, next_seq_++, std::move(fn), flag});
  return EventHandle(std::move(flag));
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && *heap_.top().cancelled) {
    heap_.pop();
  }
}

bool EventQueue::empty() {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  drop_cancelled();
  DCM_CHECK_MSG(!heap_.empty(), "next_time on empty queue");
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  DCM_CHECK_MSG(!heap_.empty(), "pop on empty queue");
  // priority_queue::top() is const; the entry is move-extracted via a
  // const_cast that is safe because pop() immediately removes it.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, std::move(top.fn)};
  *top.cancelled = true;  // mark consumed so a late cancel() is a no-op
  heap_.pop();
  return out;
}

}  // namespace dcm::sim
