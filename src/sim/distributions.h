// Random-variate distributions for service demands and think times.
//
// A Distribution is a value-semantic sampler: sample(rng) returns a
// non-negative duration in seconds. Factories cover the shapes the
// reproduction needs; Empirical resamples a measured set.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"

namespace dcm::sim {

class Distribution {
 public:
  virtual ~Distribution() = default;
  /// Draws one variate (seconds, >= 0).
  virtual double sample(Rng& rng) const = 0;
  /// Analytic (or empirical) mean of the distribution.
  virtual double mean() const = 0;
  virtual std::unique_ptr<Distribution> clone() const = 0;
};

/// Always returns `value`.
std::unique_ptr<Distribution> make_deterministic(double value);

/// Exponential with the given mean.
std::unique_ptr<Distribution> make_exponential(double mean);

/// Uniform on [lo, hi].
std::unique_ptr<Distribution> make_uniform(double lo, double hi);

/// Lognormal with the given mean and coefficient of variation.
std::unique_ptr<Distribution> make_lognormal(double mean, double cv);

/// Resamples uniformly from `samples` (must be non-empty, all >= 0).
std::unique_ptr<Distribution> make_empirical(std::vector<double> samples);

}  // namespace dcm::sim
