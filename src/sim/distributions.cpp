#include "sim/distributions.h"

#include <numeric>

#include "common/check.h"

namespace dcm::sim {
namespace {

class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value) : value_(value) { DCM_CHECK(value >= 0.0); }
  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<Deterministic>(value_);
  }

 private:
  double value_;
};

class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean) : mean_(mean) { DCM_CHECK(mean > 0.0); }
  double sample(Rng& rng) const override { return rng.exponential(mean_); }
  double mean() const override { return mean_; }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<Exponential>(mean_);
  }

 private:
  double mean_;
};

class UniformDist final : public Distribution {
 public:
  UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {
    DCM_CHECK(lo >= 0.0);
    DCM_CHECK(hi >= lo);
  }
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<UniformDist>(lo_, hi_);
  }

 private:
  double lo_, hi_;
};

class LogNormal final : public Distribution {
 public:
  LogNormal(double mean, double cv) : mean_(mean), cv_(cv) {
    DCM_CHECK(mean > 0.0);
    DCM_CHECK(cv > 0.0);
  }
  double sample(Rng& rng) const override { return rng.lognormal_mean_cv(mean_, cv_); }
  double mean() const override { return mean_; }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<LogNormal>(mean_, cv_);
  }

 private:
  double mean_, cv_;
};

class Empirical final : public Distribution {
 public:
  explicit Empirical(std::vector<double> samples) : samples_(std::move(samples)) {
    DCM_CHECK_MSG(!samples_.empty(), "empirical distribution needs samples");
    for (double s : samples_) DCM_CHECK(s >= 0.0);
    mean_ = std::accumulate(samples_.begin(), samples_.end(), 0.0) /
            static_cast<double>(samples_.size());
  }
  double sample(Rng& rng) const override {
    const auto idx =
        static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(samples_.size()) - 1));
    return samples_[idx];
  }
  double mean() const override { return mean_; }
  std::unique_ptr<Distribution> clone() const override {
    return std::make_unique<Empirical>(samples_);
  }

 private:
  std::vector<double> samples_;
  double mean_;
};

}  // namespace

std::unique_ptr<Distribution> make_deterministic(double value) {
  return std::make_unique<Deterministic>(value);
}

std::unique_ptr<Distribution> make_exponential(double mean) {
  return std::make_unique<Exponential>(mean);
}

std::unique_ptr<Distribution> make_uniform(double lo, double hi) {
  return std::make_unique<UniformDist>(lo, hi);
}

std::unique_ptr<Distribution> make_lognormal(double mean, double cv) {
  return std::make_unique<LogNormal>(mean, cv);
}

std::unique_ptr<Distribution> make_empirical(std::vector<double> samples) {
  return std::make_unique<Empirical>(std::move(samples));
}

}  // namespace dcm::sim
