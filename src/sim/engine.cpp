#include "sim/engine.h"

#include <cstdio>

#include "common/check.h"
#include "sim/time.h"

namespace dcm::sim {

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(t));
  return buf;
}

void EventHandle::cancel() {
  switch (kind_) {
    case Kind::kNone:
      return;
    case Kind::kEvent:
      static_cast<EventQueue*>(owner_)->cancel(slot_, generation_);
      return;
    case Kind::kPeriodic:
      static_cast<Engine*>(owner_)->cancel_periodic(slot_, generation_);
      return;
  }
}

EventHandle Engine::schedule_after(SimTime delay, EventFn fn) {
  DCM_CHECK_MSG(delay >= 0, "negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_at(SimTime at, EventFn fn) {
  DCM_CHECK_MSG(at >= now_, "scheduling into the past");
  return queue_.schedule(at, std::move(fn));
}

uint32_t Engine::alloc_periodic_slot() {
  if (periodic_free_head_ != kNilSlot) {
    const uint32_t slot = periodic_free_head_;
    periodic_free_head_ = periodics_[slot].next_free;
    periodics_[slot].next_free = kNilSlot;
    return slot;
  }
  DCM_CHECK_MSG(periodics_.size() < kNilSlot, "periodic slab exhausted");
  periodics_.emplace_back();
  return static_cast<uint32_t>(periodics_.size() - 1);
}

EventHandle Engine::schedule_periodic(SimTime period, EventFn fn) {
  DCM_CHECK_MSG(period > 0, "periodic task needs positive period");
  const uint32_t slot = alloc_periodic_slot();
  PeriodicTask& task = periodics_[slot];
  task.fn = std::move(fn);
  task.period = period;
  task.live = true;
  const uint32_t generation = task.generation;
  task.pending =
      schedule_after(period, [this, slot, generation] { fire_periodic(slot, generation); });
  return EventHandle(this, slot, generation, EventHandle::Kind::kPeriodic);
}

void Engine::fire_periodic(uint32_t slot, uint32_t generation) {
  {
    const PeriodicTask& task = periodics_[slot];
    if (!task.live || task.generation != generation) return;
  }
  // The callable is moved out for the duration of the call so that a
  // cancel() from inside it (or a slab growth it triggers) cannot destroy
  // or relocate it mid-invocation.
  EventFn body = std::move(periodics_[slot].fn);
  body();
  PeriodicTask& task = periodics_[slot];  // re-lookup: body() may grow the slab
  if (task.live && task.generation == generation) {
    task.fn = std::move(body);
    task.pending =
        schedule_after(task.period, [this, slot, generation] { fire_periodic(slot, generation); });
  }
  // else: cancelled from inside body(); captured state dies with `body` here.
}

void Engine::cancel_periodic(uint32_t slot, uint32_t generation) {
  if (slot >= periodics_.size()) return;
  PeriodicTask& task = periodics_[slot];
  if (!task.live || task.generation != generation) return;
  task.live = false;
  ++task.generation;
  task.pending.cancel();
  task.pending = EventHandle();
  task.fn.reset();  // empty if we are inside fire_periodic; the moved-out body cleans up
  task.next_free = periodic_free_head_;
  periodic_free_head_ = slot;
}

void Engine::run_until(SimTime end) {
  DCM_CHECK_MSG(end >= now_, "run_until into the past");
  EventQueue::Popped event;
  while (queue_.pop_until(end, event)) {
    DCM_CHECK(event.time >= now_);
    now_ = event.time;
    ++dispatched_;
    event.fn();
  }
  now_ = end;
}

void Engine::run_for(SimTime duration) { run_until(now_ + duration); }

void Engine::run_to_completion() {
  EventQueue::Popped event;
  while (queue_.pop_until(kMaxSimTime, event)) {
    DCM_CHECK(event.time >= now_);
    now_ = event.time;
    ++dispatched_;
    event.fn();
  }
}

}  // namespace dcm::sim
