#include "sim/engine.h"

#include <memory>

#include "common/check.h"
#include "sim/time.h"

namespace dcm::sim {

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(t));
  return buf;
}

EventHandle Engine::schedule_after(SimTime delay, EventFn fn) {
  DCM_CHECK_MSG(delay >= 0, "negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_at(SimTime at, EventFn fn) {
  DCM_CHECK_MSG(at >= now_, "scheduling into the past");
  return queue_.schedule(at, std::move(fn));
}

EventHandle Engine::schedule_periodic(SimTime period, std::function<void()> fn) {
  DCM_CHECK_MSG(period > 0, "periodic task needs positive period");
  // The chain re-arms itself; all links share one cancellation flag so a
  // single cancel() stops the whole chain.
  auto flag = std::make_shared<bool>(false);
  auto arm = std::make_shared<std::function<void()>>();
  *arm = [this, flag, arm, period, fn = std::move(fn)]() {
    if (*flag) return;
    fn();
    if (*flag) return;  // fn may have cancelled the chain
    schedule_after(period, *arm);
  };
  schedule_after(period, *arm);

  // The handle's only job is flipping the shared flag that every link in
  // the chain checks before re-arming.
  return EventHandle(std::move(flag));
}

void Engine::run_until(SimTime end) {
  DCM_CHECK_MSG(end >= now_, "run_until into the past");
  while (!queue_.empty() && queue_.next_time() <= end) {
    auto [time, fn] = queue_.pop();
    DCM_CHECK(time >= now_);
    now_ = time;
    ++dispatched_;
    fn();
  }
  now_ = end;
}

void Engine::run_for(SimTime duration) { run_until(now_ + duration); }

void Engine::run_to_completion() {
  while (!queue_.empty()) {
    auto [time, fn] = queue_.pop();
    DCM_CHECK(time >= now_);
    now_ = time;
    ++dispatched_;
    fn();
  }
}

}  // namespace dcm::sim
