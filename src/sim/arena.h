// Size-bucketed free-list arena for hot-path simulation objects.
//
// The request path allocates and frees the same small control blocks
// (RequestContext + its shared_ptr control block) millions of times per run.
// A general-purpose heap pays lock/metadata costs and fragments; this arena
// hands out 16-byte-granular blocks carved from large chunks and recycles
// freed blocks through per-size free lists, so steady state performs ZERO
// calls into the global allocator.
//
// Design:
//  - Blocks <= kMaxBucketBytes round up to a 16-byte bucket. Each bucket is
//    an intrusive singly-linked free list threaded through the freed blocks
//    themselves (a freed block stores the next pointer in its first 8 bytes).
//  - A bucket miss bump-allocates from the current chunk; a chunk miss
//    reserves a fresh kChunkBytes chunk. Chunks are only released when the
//    arena is destroyed — freed blocks go back to the bucket, never to the
//    chunk, which keeps deallocation O(1) and branch-free.
//  - Oversized or over-aligned requests fall through to the global heap so
//    the arena never has to say no.
//
// Thread safety: none, by design. Each sim::Engine owns one Arena and the
// engine is single-threaded; parallel sweeps give every run its own engine
// (and therefore its own arena).
//
// Lifetime: the arena must outlive every block it handed out. sim::Engine
// declares its arena as the FIRST data member so it is destroyed last, after
// the event queue has released any callbacks still holding arena-backed
// shared_ptrs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/check.h"

namespace dcm::sim {

class Arena {
 public:
  static constexpr size_t kAlign = 16;
  static constexpr size_t kMaxBucketBytes = 512;
  static constexpr size_t kChunkBytes = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns a block of at least `bytes` bytes, aligned to kAlign. Blocks up
  /// to kMaxBucketBytes recycle through the free lists; larger ones hit the
  /// global heap.
  void* allocate(size_t bytes) {
    if (bytes == 0) bytes = 1;
    if (bytes > kMaxBucketBytes) {
      ++oversized_live_;
      return ::operator new(bytes);  // dcm-lint: allow(no-raw-new-in-hot-path)
    }
    const size_t bucket = (bytes + kAlign - 1) / kAlign - 1;
    void* head = free_lists_[bucket];
    if (head != nullptr) {
      free_lists_[bucket] = *static_cast<void**>(head);
      return head;
    }
    return carve((bucket + 1) * kAlign);
  }

  /// Returns a block obtained from allocate(). `bytes` must match the
  /// original request (the STL allocator contract guarantees this).
  void deallocate(void* ptr, size_t bytes) {
    if (bytes == 0) bytes = 1;
    if (bytes > kMaxBucketBytes) {
      --oversized_live_;
      ::operator delete(ptr);  // dcm-lint: allow(no-raw-new-in-hot-path)
      return;
    }
    const size_t bucket = (bytes + kAlign - 1) / kAlign - 1;
    *static_cast<void**>(ptr) = free_lists_[bucket];
    free_lists_[bucket] = ptr;
  }

  /// Chunks reserved so far. Steady state: stops growing after warmup.
  size_t chunks() const { return chunks_.size(); }
  /// Total bytes reserved from the global heap for bucketed blocks.
  size_t bytes_reserved() const { return chunks_.size() * kChunkBytes; }
  /// Oversized blocks currently live (diagnostic; should stay ~0).
  int64_t oversized_live() const { return oversized_live_; }

 private:
  static constexpr size_t kBucketCount = kMaxBucketBytes / kAlign;

  /// Cold path: bump-allocate `bytes` (already rounded to kAlign) from the
  /// current chunk, reserving a new chunk when it runs dry.
  void* carve(size_t bytes);

  void* free_lists_[kBucketCount] = {};
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  size_t chunk_used_ = kChunkBytes;  // forces a reserve on first carve
  int64_t oversized_live_ = 0;
};

/// Minimal STL allocator over an Arena, for std::allocate_shared of
/// hot-path objects. Copies are cheap (one pointer); all copies and rebinds
/// of an allocator compare equal when they share the arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) { DCM_CHECK(arena != nullptr); }
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    if (alignof(T) > Arena::kAlign) {
      // Over-aligned types bypass the arena; keep the hot path simple.
      return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(alignof(T))));  // dcm-lint: allow(no-raw-new-in-hot-path)
    }
    return static_cast<T*>(arena_->allocate(n * sizeof(T)));
  }
  void deallocate(T* ptr, size_t n) {
    if (alignof(T) > Arena::kAlign) {
      ::operator delete(ptr, std::align_val_t(alignof(T)));  // dcm-lint: allow(no-raw-new-in-hot-path)
      return;
    }
    arena_->deallocate(ptr, n * sizeof(T));
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_;
};

}  // namespace dcm::sim
