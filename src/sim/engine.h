// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, scheduling-order)
// order. Components hold a reference to the engine, schedule callbacks, and
// read the clock via now().
#pragma once

#include <cstdint>
#include <vector>

#include "sim/arena.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace dcm::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedules `fn` after `delay` (>= 0) relative to now().
  EventHandle schedule_after(SimTime delay, EventFn fn);

  /// Schedules `fn` at absolute time `at` (>= now()).
  EventHandle schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` every `period` starting at now()+period, until the
  /// returned handle is cancelled or the run ends. The engine owns the
  /// callable; cancelling destroys it (and everything it captures).
  EventHandle schedule_periodic(SimTime period, EventFn fn);

  /// Runs until the queue drains or the clock would pass `end`; the clock is
  /// left at min(end, last-event-time... ) — precisely: events with time <=
  /// end fire, then now() becomes end.
  void run_until(SimTime end);

  /// run_until(now() + duration).
  void run_for(SimTime duration);

  /// Runs until the queue fully drains (use only with self-limiting models).
  void run_to_completion();

  /// Number of events dispatched so far (for microbenches/diagnostics).
  uint64_t events_dispatched() const { return dispatched_; }

  /// Run-scoped allocation arena for hot-path objects (request contexts and
  /// friends). Everything allocated from it must die before the engine does.
  Arena& arena() { return arena_; }

 private:
  friend class EventHandle;
  static constexpr uint32_t kNilSlot = 0xffffffffu;

  // Periodic chains live in an engine-owned slab: the callable is stored
  // once here (never copied into the queue) and each tick schedules a thin
  // (slot, generation) trampoline. This is what breaks the old
  // shared_ptr<function> self-capture cycle — cancel_periodic() destroys
  // the callable deterministically.
  struct PeriodicTask {
    EventFn fn;
    SimTime period = 0;
    EventHandle pending;  // the currently scheduled tick
    uint32_t generation = 0;
    uint32_t next_free = kNilSlot;
    bool live = false;
  };

  void fire_periodic(uint32_t slot, uint32_t generation);
  void cancel_periodic(uint32_t slot, uint32_t generation);
  uint32_t alloc_periodic_slot();

  // First member on purpose: destroyed LAST, after queue_ has released any
  // pending callbacks that still hold arena-backed shared_ptrs.
  Arena arena_;
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t dispatched_ = 0;
  std::vector<PeriodicTask> periodics_;
  uint32_t periodic_free_head_ = kNilSlot;
};

}  // namespace dcm::sim
