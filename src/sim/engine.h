// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, scheduling-order)
// order. Components hold a reference to the engine, schedule callbacks, and
// read the clock via now().
#pragma once

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace dcm::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedules `fn` after `delay` (>= 0) relative to now().
  EventHandle schedule_after(SimTime delay, EventFn fn);

  /// Schedules `fn` at absolute time `at` (>= now()).
  EventHandle schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` every `period` starting at now()+period, until the
  /// returned handle is cancelled or the run ends.
  EventHandle schedule_periodic(SimTime period, std::function<void()> fn);

  /// Runs until the queue drains or the clock would pass `end`; the clock is
  /// left at min(end, last-event-time... ) — precisely: events with time <=
  /// end fire, then now() becomes end.
  void run_until(SimTime end);

  /// run_until(now() + duration).
  void run_for(SimTime duration);

  /// Runs until the queue fully drains (use only with self-limiting models).
  void run_to_completion();

  /// Number of events dispatched so far (for microbenches/diagnostics).
  uint64_t events_dispatched() const { return dispatched_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t dispatched_ = 0;
};

}  // namespace dcm::sim
