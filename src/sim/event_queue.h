// Pending-event set for the discrete-event engine.
//
// Events at equal timestamps fire in scheduling order (FIFO), which the
// engine relies on for deterministic replay. Cancellation is O(1) lazy: a
// cancelled event stays in the heap until it surfaces, then is skipped.
//
// Hot-path design (the simulator spends most of its time here):
//  - EventFn is a small-buffer-optimized move-only callable: captures up to
//    kInlineCapacity bytes live inline, larger ones fall back to the heap.
//  - Cancellation is generation-counted: each scheduled event borrows a slot
//    from a slab; the handle remembers (slot, generation) and a stale
//    generation makes cancel() a no-op. No per-event shared_ptr.
//  - The pending set is an owned vector-backed 4-ary min-heap whose entries
//    are 24-byte PODs (the callable stays in the slab), so sift operations
//    are plain copies and pop() moves the callable out exactly once.
// Steady-state schedule/pop/cancel therefore performs zero heap allocations
// once the heap vector and slab have grown to the working-set size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace dcm::sim {

/// Move-only callable with small-buffer optimization. Replaces
/// std::function<void()> on the scheduling hot path: captures of up to
/// kInlineCapacity bytes are stored inline (no allocation); larger callables
/// are boxed on the heap. Invocable repeatedly until destroyed or moved-from.
class EventFn {
 public:
  /// Captures at or below this size (and max_align_t alignment) live inline.
  static constexpr size_t kInlineCapacity = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      // SBO internals: placement-new into the inline buffer (no allocation).
      ::new (static_cast<void*>(storage_.inline_buf)) D(std::forward<F>(f));  // dcm-lint: allow(no-raw-new-in-hot-path)
      ops_ = &kInlineOps<D>;
    } else {
      // Oversized capture: the one sanctioned boxing allocation (cold path).
      storage_.heap = new D(std::forward<F>(f));  // dcm-lint: allow(no-raw-new-in-hot-path)
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial_destroy) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  union Storage {
    alignas(alignof(std::max_align_t)) std::byte inline_buf[kInlineCapacity];
    void* heap;
  };
  struct Ops {
    void (*invoke)(Storage&);
    void (*relocate)(Storage& dst, Storage& src) noexcept;  // move-construct + destroy src
    void (*destroy)(Storage&) noexcept;
    // Fast-path flags: relocation-by-memcpy (all heap-boxed callables and
    // trivially copyable inline ones) and no-op destruction. They let the
    // per-event move/destroy churn skip the indirect calls entirely for the
    // common small-POD-capture lambdas.
    bool trivial_relocate;
    bool trivial_destroy;
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineCapacity && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  static F& inline_ref(Storage& s) {
    return *std::launder(reinterpret_cast<F*>(s.inline_buf));
  }

  template <typename F>
  static constexpr Ops kInlineOps{
      [](Storage& s) { inline_ref<F>(s)(); },
      [](Storage& dst, Storage& src) noexcept {
        // Relocation placement-new into the destination's inline buffer.
        ::new (static_cast<void*>(dst.inline_buf)) F(std::move(inline_ref<F>(src)));  // dcm-lint: allow(no-raw-new-in-hot-path)
        inline_ref<F>(src).~F();
      },
      [](Storage& s) noexcept { inline_ref<F>(s).~F(); },
      std::is_trivially_copyable_v<F>,
      std::is_trivially_destructible_v<F>,
  };

  template <typename F>
  static constexpr Ops kHeapOps{
      [](Storage& s) { (*static_cast<F*>(s.heap))(); },
      [](Storage& dst, Storage& src) noexcept { dst.heap = src.heap; },
      [](Storage& s) noexcept { delete static_cast<F*>(s.heap); },  // dcm-lint: allow(no-raw-new-in-hot-path)
      /*trivial_relocate=*/true,  // relocation is a pointer copy
      /*trivial_destroy=*/false,
  };

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->trivial_relocate) {
      storage_ = other.storage_;  // branchless fixed-size copy
    } else {
      ops_->relocate(storage_, other.storage_);
    }
    other.ops_ = nullptr;
  }

  const Ops* ops_ = nullptr;
  Storage storage_;
};

class EventQueue;
class Engine;

/// Handle for cancelling a scheduled event or periodic chain.
/// Default-constructed handles are inert. Copies share the underlying
/// (slot, generation) identity, so cancelling any copy cancels the event.
/// A handle that outlives its owner (EventQueue or Engine) must not be
/// cancelled — all current components hold a reference to an engine that
/// outlives them, matching that rule by construction.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event (or periodic chain) from firing; idempotent, safe
  /// after the event fired — generation counting makes stale cancels no-ops.
  void cancel();

  bool valid() const { return owner_ != nullptr; }

 private:
  friend class EventQueue;
  friend class Engine;
  enum class Kind : uint8_t { kNone, kEvent, kPeriodic };
  EventHandle(void* owner, uint32_t slot, uint32_t generation, Kind kind)
      : owner_(owner), slot_(slot), generation_(generation), kind_(kind) {}

  void* owner_ = nullptr;
  uint32_t slot_ = 0;
  uint32_t generation_ = 0;
  Kind kind_ = Kind::kNone;
};

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  ///
  /// Two-band storage: entries land in the near or far heap depending on how
  /// far past the last dispatched time they aim. A pop takes the global
  /// (time, seq) minimum across both fronts, so dispatch order is exactly
  /// that of a single heap — the band split only changes which vector an
  /// entry sifts through. The payoff: ms-scale churn (CPU completions,
  /// network hops — scheduled and popped constantly) sifts through a heap of
  /// tens of entries instead of one inflated by every pending think-time and
  /// periodic timer, which cuts the per-event compare/copy depth.
  EventHandle schedule(SimTime at, EventFn fn) {
    const uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    std::vector<Entry>& h = (at - now_floor_) > kFarDelay ? far_ : near_;
    h.push_back(Entry{at, next_seq_++, slot, s.generation});
    sift_up(h, h.size() - 1);
    return EventHandle(this, slot, s.generation, EventHandle::Kind::kEvent);
  }

  /// True iff no live (non-cancelled) event remains. Purges dead entries at
  /// the front as a side effect, hence non-const.
  bool empty();

  /// Number of entries still in the heaps — an upper bound on live events
  /// (cancelled entries buried below the front are counted until they
  /// surface).
  size_t pending_upper_bound() const { return near_.size() + far_.size(); }

  /// Timestamp of the earliest live event; requires !empty().
  SimTime next_time();

  /// Pops and returns the earliest live event. Requires !empty().
  struct Popped {
    SimTime time;
    EventFn fn;
  };
  Popped pop();

  /// Hot-path combination of empty()/next_time()/pop(): pops the earliest
  /// live event into `out` iff its time is <= `horizon`. Returns false when
  /// the queue is empty or the next event is beyond the horizon. Does the
  /// lazy-cancellation purge exactly once.
  bool pop_until(SimTime horizon, Popped& out) {
    std::vector<Entry>* h = min_front();
    if (h == nullptr || h->front().time > horizon) return false;
    const Entry top = h->front();
    out.time = top.time;
    out.fn = std::move(slots_[top.slot].fn);
    free_slot(top.slot);
    now_floor_ = top.time;
    remove_front(*h);
    return true;
  }

  /// Cancels the event identified by (slot, generation); stale identities
  /// are ignored. Destroys the captured state eagerly.
  void cancel(uint32_t slot, uint32_t generation);

 private:
  static constexpr size_t kArity = 4;  // 4-ary heap: shallower, cache-friendlier
  static constexpr uint32_t kNilSlot = 0xffffffffu;
  /// Band boundary for the near/far heap split: events aiming further than
  /// this past the last dispatched time go to the far heap. 200ms cleanly
  /// separates the simulator's two event populations — sub-ms service/
  /// network churn vs. second-scale think times, periodic monitors, and VM
  /// boots. Band choice never affects pop order (the pop takes the global
  /// minimum), so the constant only tunes locality.
  static constexpr SimTime kFarDelay = 200'000'000;  // 200ms in ns

  // POD heap entry; the callable stays in the slab so sifts copy 24 bytes.
  struct Entry {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
  };
  struct Slot {
    EventFn fn;
    uint32_t generation = 0;
    uint32_t next_free = kNilSlot;
  };

  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  bool live(const Entry& e) const { return slots_[e.slot].generation == e.generation; }

  // The helpers below are defined inline: they sit on the per-event hot path
  // and the simulator's throughput is bounded by how fast they run.

  uint32_t alloc_slot();  // out-of-line: grows the slab on a cold miss

  void free_slot(uint32_t slot) {
    Slot& s = slots_[slot];
    // Bumping the generation invalidates every outstanding handle and every
    // heap entry that still references this slot.
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = slot;
  }

  void sift_up(std::vector<Entry>& h, size_t i) {
    const Entry e = h[i];
    while (i > 0) {
      const size_t parent = (i - 1) / kArity;
      if (!before(e, h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = e;
  }

  void sift_down(std::vector<Entry>& h, size_t i) {
    const size_t n = h.size();
    const Entry e = h[i];
    for (;;) {
      const size_t first = i * kArity + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t last = first + kArity < n ? first + kArity : n;
      for (size_t c = first + 1; c < last; ++c) {
        if (before(h[c], h[best])) best = c;
      }
      if (!before(h[best], e)) break;
      h[i] = h[best];
      i = best;
    }
    h[i] = e;
  }

  void remove_front(std::vector<Entry>& h) {
    h.front() = h.back();
    h.pop_back();
    if (!h.empty()) sift_down(h, 0);
  }

  void drop_cancelled(std::vector<Entry>& h) {
    while (!h.empty() && !live(h.front())) {
      remove_front(h);
    }
  }

  /// Purges dead fronts and returns the heap holding the globally earliest
  /// live entry by (time, seq) — nullptr when both bands are drained. This
  /// is the merge point that makes the band split invisible to callers.
  std::vector<Entry>* min_front() {
    drop_cancelled(near_);
    drop_cancelled(far_);
    if (near_.empty()) return far_.empty() ? nullptr : &far_;
    if (far_.empty() || before(near_.front(), far_.front())) return &near_;
    return &far_;
  }

  std::vector<Entry> near_;
  std::vector<Entry> far_;
  std::vector<Slot> slots_;
  /// Time of the last popped event — a monotone floor of "now" used to band
  /// incoming schedules by delay without a back-pointer to the engine.
  SimTime now_floor_ = 0;
  uint32_t free_head_ = kNilSlot;
  uint64_t next_seq_ = 0;
};

}  // namespace dcm::sim
