// Pending-event set for the discrete-event engine.
//
// Events at equal timestamps fire in scheduling order (FIFO), which the
// engine relies on for deterministic replay. Cancellation is O(1) lazy: a
// cancelled event stays in the heap until it surfaces, then is skipped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace dcm::sim {

using EventFn = std::function<void()>;

/// Handle for cancelling a scheduled event. Default-constructed handles are
/// inert. Copying shares the cancellation flag.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing; idempotent, safe after the event fired.
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }

  bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class EventQueue;
  friend class Engine;  // periodic chains hand out a shared cancel flag
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`. Returns a cancellation handle.
  EventHandle schedule(SimTime at, EventFn fn);

  /// True iff no live (non-cancelled) event remains. Purges dead entries at
  /// the front as a side effect, hence non-const.
  bool empty();

  /// Number of entries still in the heap — an upper bound on live events
  /// (cancelled entries buried below the front are counted until they
  /// surface).
  size_t pending_upper_bound() const { return heap_.size(); }

  /// Timestamp of the earliest live event; requires !empty().
  SimTime next_time();

  /// Pops and returns the earliest live event. Requires !empty().
  struct Popped {
    SimTime time;
    EventFn fn;
  };
  Popped pop();

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace dcm::sim
