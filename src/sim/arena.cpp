#include "sim/arena.h"

namespace dcm::sim {

void* Arena::carve(size_t bytes) {
  if (chunk_used_ + bytes > kChunkBytes) {
    chunks_.push_back(std::make_unique<std::byte[]>(kChunkBytes));
    chunk_used_ = 0;
  }
  std::byte* block = chunks_.back().get() + chunk_used_;
  chunk_used_ += bytes;
  return block;
}

}  // namespace dcm::sim
