// FaultInjector: deterministic targeting and per-family injection effects
// against a live 3-tier deployment.
#include <gtest/gtest.h>

#include "bus/broker.h"
#include "core/topologies.h"
#include "fault/fault_injector.h"
#include "ntier/monitor_agent.h"

namespace dcm::fault {
namespace {

FaultEvent crash_at(double t) {
  FaultEvent event;
  event.kind = FaultKind::kVmCrash;
  event.at = sim::from_seconds(t);
  return event;
}

class FaultInjectorTest : public ::testing::Test {
 protected:
  FaultInjectorTest() : app_(engine_, core::rubbos_app_config({1, 2, 1}, {1000, 100, 80})) {
    broker_.create_topic(ntier::kMetricsTopic);
  }

  sim::Engine engine_;
  ntier::NTierApp app_;
  bus::Broker broker_;
};

TEST_F(FaultInjectorTest, CrashHitsOldestActiveVmAndStaysInBalancer) {
  FaultPlan plan;
  plan.events.push_back(crash_at(10.0));
  FaultInjector injector(engine_, app_, broker_, nullptr, plan);
  engine_.run_until(sim::from_seconds(20.0));

  // Rotation starts at the first scalable tier (depth 1); the oldest ACTIVE
  // VM there is tomcat-vm0. The crash is silent: the dead server stays a
  // balancer member until health checks eject it.
  ntier::Tier& app_tier = app_.tier(1);
  EXPECT_EQ(app_tier.vms()[0]->state(), ntier::VmState::kFailed);
  EXPECT_TRUE(app_tier.balancer().contains(&app_tier.vms()[0]->server()));
  EXPECT_FALSE(app_tier.vms()[0]->server().online());

  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0].kind, "vm_crash");
  EXPECT_EQ(injector.log()[0].target, "tomcat-vm0");
  EXPECT_EQ(injector.injected_count(), 1);
}

TEST_F(FaultInjectorTest, TargetRotationAlternatesScalableTiers) {
  FaultPlan plan;
  plan.events.push_back(crash_at(10.0));
  plan.events.push_back(crash_at(20.0));
  plan.events.push_back(crash_at(30.0));
  FaultInjector injector(engine_, app_, broker_, nullptr, plan);
  engine_.run_until(sim::from_seconds(40.0));

  ASSERT_EQ(injector.log().size(), 3u);
  EXPECT_EQ(injector.log()[0].target, "tomcat-vm0");
  EXPECT_EQ(injector.log()[1].target, "mysql-vm0");
  EXPECT_EQ(injector.log()[2].target, "tomcat-vm1");
}

TEST_F(FaultInjectorTest, SlowdownScalesCpuCapacityThenRecovers) {
  FaultEvent event;
  event.kind = FaultKind::kVmSlowdown;
  event.at = sim::from_seconds(5.0);
  event.duration = sim::from_seconds(10.0);
  event.severity = 0.25;
  FaultPlan plan;
  plan.events.push_back(event);
  FaultInjector injector(engine_, app_, broker_, nullptr, plan);

  const ntier::Server& victim = app_.tier(1).vms()[0]->server();
  engine_.run_until(sim::from_seconds(7.0));
  EXPECT_EQ(victim.cpu().capacity_factor(), 0.25);
  engine_.run_until(sim::from_seconds(20.0));
  EXPECT_EQ(victim.cpu().capacity_factor(), 1.0);

  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_EQ(injector.log()[0].kind, "vm_slowdown");
  EXPECT_EQ(injector.log()[1].kind, "vm_recover");
  EXPECT_EQ(injector.log()[1].target, injector.log()[0].target);
}

TEST_F(FaultInjectorTest, TelemetryLossOpensTopicDropWindow) {
  FaultEvent event;
  event.kind = FaultKind::kTelemetryLoss;
  event.at = sim::from_seconds(5.0);
  event.duration = sim::from_seconds(10.0);
  FaultPlan plan;
  plan.events.push_back(event);
  FaultInjector injector(engine_, app_, broker_, nullptr, plan);
  engine_.run_until(sim::from_seconds(6.0));

  bus::Topic* topic = broker_.find_topic(ntier::kMetricsTopic);
  ASSERT_NE(topic, nullptr);
  EXPECT_TRUE(topic->drops_at(sim::from_seconds(10.0)));
  EXPECT_FALSE(topic->drops_at(sim::from_seconds(15.0)));
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0].kind, "telemetry_loss");
  EXPECT_EQ(injector.log()[0].target, ntier::kMetricsTopic);
}

TEST_F(FaultInjectorTest, AgentSilenceWithoutFleetIsLoggedAsSkipped) {
  FaultEvent event;
  event.kind = FaultKind::kAgentSilence;
  event.at = sim::from_seconds(5.0);
  event.duration = sim::from_seconds(10.0);
  FaultPlan plan;
  plan.events.push_back(event);
  FaultInjector injector(engine_, app_, broker_, nullptr, plan);
  engine_.run_until(sim::from_seconds(6.0));

  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0].kind, "skipped");
  EXPECT_EQ(injector.injected_count(), 0);
}

TEST_F(FaultInjectorTest, AgentSilenceMutesTheVictimsMonitor) {
  ntier::MonitorFleet fleet(engine_, app_, broker_);
  FaultEvent event;
  event.kind = FaultKind::kAgentSilence;
  event.at = sim::from_seconds(5.0);
  event.duration = sim::from_seconds(10.0);
  FaultPlan plan;
  plan.events.push_back(event);
  FaultInjector injector(engine_, app_, broker_, &fleet, plan);
  engine_.run_until(sim::from_seconds(6.0));

  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0].kind, "agent_silence");
  EXPECT_EQ(injector.log()[0].target, "tomcat-vm0");
  EXPECT_EQ(injector.injected_count(), 1);
}

TEST_F(FaultInjectorTest, InjectionLogIsReproducible) {
  FaultSpec spec;
  spec.crash_mttf_seconds = 40.0;
  spec.slowdown_mttf_seconds = 60.0;
  const FaultPlan plan = FaultPlan::synthesize(spec, 21, 120.0);
  ASSERT_FALSE(plan.events.empty());

  auto run_once = [&plan] {
    sim::Engine engine;
    ntier::NTierApp app(engine, core::rubbos_app_config({1, 2, 1}, {1000, 100, 80}));
    bus::Broker broker;
    broker.create_topic(ntier::kMetricsTopic);
    FaultInjector injector(engine, app, broker, nullptr, plan);
    engine.run_until(sim::from_seconds(120.0));
    return injector.log();
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].at, second[i].at);
    EXPECT_EQ(first[i].kind, second[i].kind);
    EXPECT_EQ(first[i].target, second[i].target);
    EXPECT_EQ(first[i].detail, second[i].detail);
  }
}

}  // namespace
}  // namespace dcm::fault
