// FaultPlan synthesis: bit-reproducible schedules from (spec, seed, horizon),
// with independent per-family streams.
#include <gtest/gtest.h>

#include "fault/fault_plan.h"

namespace dcm::fault {
namespace {

FaultSpec all_families() {
  FaultSpec spec;
  spec.crash_mttf_seconds = 60.0;
  spec.slowdown_mttf_seconds = 80.0;
  spec.telemetry_loss_mttf_seconds = 120.0;
  spec.agent_silence_mttf_seconds = 100.0;
  return spec;
}

std::vector<sim::SimTime> times_of(const FaultPlan& plan, FaultKind kind) {
  std::vector<sim::SimTime> times;
  for (const auto& event : plan.events) {
    if (event.kind == kind) times.push_back(event.at);
  }
  return times;
}

TEST(FaultPlanTest, EmptySpecYieldsEmptyPlan) {
  const FaultPlan plan = FaultPlan::synthesize(FaultSpec{}, 1, 600.0);
  EXPECT_TRUE(plan.events.empty());
  EXPECT_FALSE(FaultSpec{}.any_enabled());
}

TEST(FaultPlanTest, SameSeedIsBitIdentical) {
  const FaultPlan a = FaultPlan::synthesize(all_families(), 99, 600.0);
  const FaultPlan b = FaultPlan::synthesize(all_families(), 99, 600.0);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_GT(a.events.size(), 0u);
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
    EXPECT_EQ(a.events[i].severity, b.events[i].severity);
  }
}

TEST(FaultPlanTest, DifferentSeedsDiverge) {
  const FaultPlan a = FaultPlan::synthesize(all_families(), 1, 600.0);
  const FaultPlan b = FaultPlan::synthesize(all_families(), 2, 600.0);
  ASSERT_FALSE(a.events.empty());
  bool differs = a.events.size() != b.events.size();
  for (size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].at != b.events[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanTest, EventsSortedAndWithinHorizon) {
  const FaultPlan plan = FaultPlan::synthesize(all_families(), 7, 300.0);
  ASSERT_FALSE(plan.events.empty());
  const sim::SimTime horizon = sim::from_seconds(300.0);
  sim::SimTime prev = 0;
  for (const auto& event : plan.events) {
    EXPECT_GE(event.at, prev);
    EXPECT_LT(event.at, horizon);
    prev = event.at;
  }
}

TEST(FaultPlanTest, OnlyEnabledFamiliesAppear) {
  FaultSpec spec;
  spec.crash_mttf_seconds = 50.0;
  const FaultPlan plan = FaultPlan::synthesize(spec, 3, 600.0);
  ASSERT_FALSE(plan.events.empty());
  for (const auto& event : plan.events) {
    EXPECT_EQ(event.kind, FaultKind::kVmCrash);
    EXPECT_STREQ(fault_kind_name(event.kind), "vm_crash");
  }
}

TEST(FaultPlanTest, FamilyStreamsAreIndependent) {
  // Enabling a second family must not shift the first family's times: each
  // family draws from its own derived stream.
  FaultSpec crash_only;
  crash_only.crash_mttf_seconds = 60.0;
  FaultSpec both = crash_only;
  both.slowdown_mttf_seconds = 45.0;

  const auto lone = times_of(FaultPlan::synthesize(crash_only, 11, 600.0), FaultKind::kVmCrash);
  const auto mixed = times_of(FaultPlan::synthesize(both, 11, 600.0), FaultKind::kVmCrash);
  EXPECT_EQ(lone, mixed);
}

TEST(FaultPlanTest, WindowedKindsCarryDurationAndSeverity) {
  FaultSpec spec;
  spec.slowdown_mttf_seconds = 40.0;
  spec.slowdown_factor = 0.5;
  spec.slowdown_duration_seconds = 20.0;
  const FaultPlan plan = FaultPlan::synthesize(spec, 5, 400.0);
  ASSERT_FALSE(plan.events.empty());
  for (const auto& event : plan.events) {
    EXPECT_EQ(event.kind, FaultKind::kVmSlowdown);
    EXPECT_EQ(event.duration, sim::from_seconds(20.0));
    EXPECT_EQ(event.severity, 0.5);
  }
}

}  // namespace
}  // namespace dcm::fault
