#include "fit/levenberg_marquardt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/concurrency_model.h"

namespace dcm::fit {
namespace {

TEST(LmTest, ExponentialDecayRecovered) {
  // y = a·exp(-b·x), truth a=3, b=0.7.
  const ModelFn fn = [](const std::vector<double>& p, double x) {
    return p[0] * std::exp(-p[1] * x);
  };
  std::vector<double> x, y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(0.2 * i);
    y.push_back(3.0 * std::exp(-0.7 * 0.2 * i));
  }
  const auto result = levenberg_marquardt(fn, x, y, {1.0, 1.0});
  EXPECT_NEAR(result.params[0], 3.0, 1e-4);
  EXPECT_NEAR(result.params[1], 0.7, 1e-4);
  EXPECT_GT(result.r_squared, 0.9999);
}

TEST(LmTest, NoisyFitStillClose) {
  const ModelFn fn = [](const std::vector<double>& p, double x) {
    return p[0] * x / (p[1] + x);  // Michaelis–Menten
  };
  Rng rng(21);
  std::vector<double> x, y;
  for (int i = 1; i <= 100; ++i) {
    const double xi = 0.1 * i;
    x.push_back(xi);
    y.push_back(5.0 * xi / (2.0 + xi) + rng.normal(0.0, 0.02));
  }
  const auto result = levenberg_marquardt(fn, x, y, {1.0, 1.0});
  EXPECT_NEAR(result.params[0], 5.0, 0.1);
  EXPECT_NEAR(result.params[1], 2.0, 0.1);
  EXPECT_GT(result.r_squared, 0.99);
}

TEST(LmTest, RecoversEq7Parameters) {
  // The paper's throughput model with Table I MySQL truth.
  const model::ServiceTimeParams truth{7.19e-3, 5.04e-3, 1.65e-6};
  const ModelFn fn = [](const std::vector<double>& p, double n) {
    return n / (p[0] + p[1] * (n - 1.0) + p[2] * n * (n - 1.0));
  };
  std::vector<double> x, y;
  for (int n = 1; n <= 200; n += 3) {
    x.push_back(n);
    y.push_back(model::server_throughput(truth, n));
  }
  LmOptions options;
  options.lower_bounds = {1e-9, 0.0, 0.0};
  options.upper_bounds = {1.0, 1.0, 1.0};
  const auto result = levenberg_marquardt(fn, x, y, {1e-2, 1e-3, 1e-5}, options);
  EXPECT_NEAR(result.params[0], truth.s0, truth.s0 * 0.02);
  EXPECT_NEAR(result.params[1], truth.alpha, truth.alpha * 0.02);
  EXPECT_NEAR(result.params[2], truth.beta, truth.beta * 0.10);
  // The derived optimum is the control-relevant output.
  const double nb = std::sqrt((result.params[0] - result.params[1]) / result.params[2]);
  EXPECT_NEAR(nb, 36.1, 1.5);
}

TEST(LmTest, BoundsAreRespected) {
  const ModelFn fn = [](const std::vector<double>& p, double x) { return p[0] * x; };
  LmOptions options;
  options.lower_bounds = {2.0};
  options.upper_bounds = {10.0};
  // Truth slope 1.0 is below the lower bound; fit must clamp at 2.0.
  const auto result = levenberg_marquardt(fn, {1, 2, 3}, {1, 2, 3}, {5.0}, options);
  EXPECT_DOUBLE_EQ(result.params[0], 2.0);
}

TEST(LmTest, AlreadyOptimalConvergesImmediately) {
  const ModelFn fn = [](const std::vector<double>& p, double x) { return p[0] + x; };
  const auto result = levenberg_marquardt(fn, {0, 1, 2}, {5, 6, 7}, {5.0});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.sse, 0.0, 1e-18);
  EXPECT_LE(result.iterations, 3);
}

TEST(LmTest, ReportsIterationsAndSse) {
  const ModelFn fn = [](const std::vector<double>& p, double x) { return p[0] * x * x; };
  const auto result = levenberg_marquardt(fn, {1, 2, 3}, {2, 8, 18}, {0.1});
  EXPECT_GT(result.iterations, 0);
  EXPECT_NEAR(result.params[0], 2.0, 1e-6);
  EXPECT_LT(result.sse, 1e-10);
}

}  // namespace
}  // namespace dcm::fit
