#include "fit/least_squares.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcm::fit {
namespace {

TEST(LeastSquaresTest, ExactLineRecovered) {
  // y = 2 + 3x
  std::vector<double> x, y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(2.0 + 3.0 * i);
  }
  const auto coeffs = polyfit(x, y, 1);
  ASSERT_EQ(coeffs.size(), 2u);
  EXPECT_NEAR(coeffs[0], 2.0, 1e-9);
  EXPECT_NEAR(coeffs[1], 3.0, 1e-9);
}

TEST(LeastSquaresTest, NoisyQuadraticRecovered) {
  Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 400; ++i) {
    const double xi = rng.uniform(-5.0, 5.0);
    x.push_back(xi);
    y.push_back(1.0 - 2.0 * xi + 0.5 * xi * xi + rng.normal(0.0, 0.05));
  }
  const auto coeffs = polyfit(x, y, 2);
  ASSERT_EQ(coeffs.size(), 3u);
  EXPECT_NEAR(coeffs[0], 1.0, 0.02);
  EXPECT_NEAR(coeffs[1], -2.0, 0.02);
  EXPECT_NEAR(coeffs[2], 0.5, 0.01);
}

TEST(LeastSquaresTest, GeneralDesignMatrix) {
  // y = 4a - b over two features.
  Matrix a(4, 2);
  std::vector<double> y(4);
  const double rows[4][2] = {{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  for (size_t i = 0; i < 4; ++i) {
    a(i, 0) = rows[i][0];
    a(i, 1) = rows[i][1];
    y[i] = 4.0 * rows[i][0] - rows[i][1];
  }
  const auto c = linear_least_squares(a, y);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 4.0, 1e-9);
  EXPECT_NEAR(c[1], -1.0, 1e-9);
}

TEST(LeastSquaresTest, RankDeficientReturnsEmpty) {
  Matrix a(3, 2);
  for (size_t i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // duplicate direction
  }
  EXPECT_TRUE(linear_least_squares(a, {1, 2, 3}).empty());
}

TEST(RSquaredTest, PerfectFitIsOne) {
  EXPECT_DOUBLE_EQ(r_squared({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(RSquaredTest, MeanPredictorIsZero) {
  EXPECT_NEAR(r_squared({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
}

TEST(RSquaredTest, WorseThanMeanIsNegative) {
  EXPECT_LT(r_squared({1, 2, 3}, {3, 2, 1}), 0.0);
}

TEST(RSquaredTest, ConstantObservations) {
  EXPECT_DOUBLE_EQ(r_squared({5, 5, 5}, {5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(r_squared({5, 5, 5}, {4, 5, 6}), 0.0);
}

}  // namespace
}  // namespace dcm::fit
