#include "fit/golden_section.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcm::fit {
namespace {

TEST(GoldenSectionTest, QuadraticMinimum) {
  const auto result = golden_section_minimize([](double x) { return (x - 3.0) * (x - 3.0); },
                                              0.0, 10.0);
  EXPECT_NEAR(result.x, 3.0, 1e-6);
  EXPECT_NEAR(result.value, 0.0, 1e-10);
}

TEST(GoldenSectionTest, MinimumAtBoundary) {
  const auto result = golden_section_minimize([](double x) { return x; }, 2.0, 5.0);
  EXPECT_NEAR(result.x, 2.0, 1e-6);
}

TEST(GoldenSectionTest, NonSymmetricUnimodal) {
  // Minimize S(N) = (S0-α)/N + βN (the paper's Sec. III-C form).
  const double s0 = 7.19e-3, alpha = 5.04e-3, beta = 1.65e-6;
  const auto result = golden_section_minimize(
      [&](double n) { return (s0 - alpha) / n + beta * n; }, 1.0, 500.0, 1e-9, 300);
  EXPECT_NEAR(result.x, std::sqrt((s0 - alpha) / beta), 0.01);
}

TEST(GoldenSectionTest, CountsEvaluations) {
  int calls = 0;
  golden_section_minimize(
      [&](double x) {
        ++calls;
        return x * x;
      },
      -1.0, 1.0);
  EXPECT_GT(calls, 10);
  EXPECT_LT(calls, 200);
}

TEST(IntegerArgminTest, FindsExactInteger) {
  EXPECT_EQ(integer_argmin([](int n) { return (n - 17) * (n - 17); }, 1, 100), 17);
}

TEST(IntegerArgminTest, TieBreaksToSmaller) {
  // f(3) == f(4) minimum plateau.
  EXPECT_EQ(integer_argmin([](int n) { return std::abs(2 * n - 7); }, 1, 10), 3);
}

TEST(IntegerArgminTest, SinglePointDomain) {
  EXPECT_EQ(integer_argmin([](int) { return 1.0; }, 5, 5), 5);
}

TEST(IntegerArgminTest, MatchesEq7Knee) {
  const double s0 = 2.84e-2, alpha = 9.87e-3, beta = 4.54e-5;
  const int knee = integer_argmin(
      [&](int n) {
        const double s = s0 + alpha * (n - 1.0) + beta * n * (n - 1.0);
        return -(n / s);
      },
      1, 500);
  EXPECT_NEAR(knee, 20, 1);  // Table I: Tomcat N_b = 20
}

}  // namespace
}  // namespace dcm::fit
