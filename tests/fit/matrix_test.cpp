#include "fit/matrix.h"

#include <gtest/gtest.h>

namespace dcm::fit {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
}

TEST(MatrixTest, Identity) {
  const Matrix id = Matrix::identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3);
  m(0, 1) = 5.0;
  m(1, 2) = -2.0;
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(2, 1), -2.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a(1, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  Matrix b(1, 2);
  b(0, 0) = 3;
  b(0, 1) = 5;
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 7);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2);
  EXPECT_DOUBLE_EQ(a.scaled(4.0)(0, 1), 8);
}

TEST(MatrixTest, SolveWellConditioned) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = a.solve({5, 10});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(MatrixTest, SolveRequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = a.solve({3, 7});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(MatrixTest, SolveSingularReturnsEmpty) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;  // rank 1
  EXPECT_TRUE(a.solve({1, 2}).empty());
}

TEST(MatrixTest, SolveLargerSystem) {
  // A = L with known solution.
  const size_t n = 6;
  Matrix a(n, n);
  std::vector<double> truth(n);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<double>(i) - 2.5;
    for (size_t j = 0; j < n; ++j) {
      a(i, j) = 1.0 / (1.0 + static_cast<double>(i + j));  // Hilbert-like
    }
    a(i, i) += 2.0;  // diagonally dominant → well-conditioned
  }
  std::vector<double> b(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) b[i] += a(i, j) * truth[j];
  }
  const auto x = a.solve(b);
  ASSERT_EQ(x.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-9);
}

}  // namespace
}  // namespace dcm::fit
