// DCM graceful degradation: the stale-telemetry watchdog freezes soft
// actuation (hardware-only fallback) and resumes on fresh samples; the R²
// gate rejects degraded online fits.
#include <gtest/gtest.h>

#include "bus/producer.h"
#include "control/dcm_controller.h"
#include "core/topologies.h"
#include "model/concurrency_model.h"
#include "ntier/monitor_agent.h"

namespace dcm::control {
namespace {

int count_actions(const ControlLog& log, const std::string& action) {
  return static_cast<int>(log.filtered(action).size());
}

class WatchdogTest : public ::testing::Test {
 protected:
  WatchdogTest() : app_(engine_, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80})) {
    bus::TopicConfig config;
    config.partitions = 4;
    broker_.create_topic(ntier::kMetricsTopic, config);
    producer_ = std::make_unique<bus::Producer>(broker_);
  }

  void publish_sample(sim::SimTime t, const std::string& tier, int depth, double concurrency,
                      double throughput) {
    ntier::MetricSample s;
    s.time = t;
    s.server_id = tier + "-vm0";
    s.tier = tier;
    s.depth = depth;
    s.vm_state = "ACTIVE";
    s.concurrency = concurrency;
    s.throughput = throughput;
    s.cpu_util = 0.5;
    producer_->send(ntier::kMetricsTopic, s.server_id, s.serialize(), t);
  }

  DcmConfig base_config() {
    DcmConfig config;
    config.app_tier_model = core::tomcat_reference_model();
    config.db_tier_model = core::mysql_reference_model();
    return config;
  }

  sim::Engine engine_;
  ntier::NTierApp app_;
  bus::Broker broker_;
  std::unique_ptr<bus::Producer> producer_;
};

TEST_F(WatchdogTest, ConsecutiveSilentPeriodsFreezeSoftActuation) {
  DcmConfig config = base_config();
  config.watchdog_periods = 2;
  DcmController controller(engine_, app_, broker_, config);
  controller.start();
  EXPECT_FALSE(controller.actuation_frozen());

  // No telemetry at all: periods at 15 s and 30 s are both empty.
  engine_.run_until(sim::from_seconds(31.0));
  EXPECT_TRUE(controller.actuation_frozen());
  EXPECT_GE(controller.silent_periods(), 2);
  EXPECT_EQ(count_actions(controller.log(), "watchdog_freeze"), 1);
  EXPECT_EQ(count_actions(controller.log(), "watchdog_resume"), 0);
}

TEST_F(WatchdogTest, FreshTelemetryResumesActuation) {
  DcmConfig config = base_config();
  config.watchdog_periods = 2;
  DcmController controller(engine_, app_, broker_, config);
  controller.start();
  engine_.run_until(sim::from_seconds(31.0));
  ASSERT_TRUE(controller.actuation_frozen());

  publish_sample(sim::from_seconds(40.0), "tomcat", 1, 10.0, 120.0);
  engine_.run_until(sim::from_seconds(46.0));  // decide at 45 s sees the sample
  EXPECT_FALSE(controller.actuation_frozen());
  EXPECT_EQ(controller.silent_periods(), 0);
  EXPECT_EQ(count_actions(controller.log(), "watchdog_resume"), 1);
}

TEST_F(WatchdogTest, FreezeAndResumeToggleRepeatedly) {
  DcmConfig config = base_config();
  config.watchdog_periods = 2;
  DcmController controller(engine_, app_, broker_, config);
  controller.start();

  engine_.run_until(sim::from_seconds(31.0));
  ASSERT_TRUE(controller.actuation_frozen());
  publish_sample(sim::from_seconds(40.0), "tomcat", 1, 10.0, 120.0);
  engine_.run_until(sim::from_seconds(46.0));
  ASSERT_FALSE(controller.actuation_frozen());
  // Telemetry goes dark again: two more silent periods re-freeze.
  engine_.run_until(sim::from_seconds(76.0));
  EXPECT_TRUE(controller.actuation_frozen());
  EXPECT_EQ(count_actions(controller.log(), "watchdog_freeze"), 2);
}

TEST_F(WatchdogTest, WatchdogDisabledNeverFreezes) {
  DcmConfig config = base_config();  // watchdog_periods = 0
  DcmController controller(engine_, app_, broker_, config);
  controller.start();
  engine_.run_until(sim::from_seconds(100.0));
  EXPECT_FALSE(controller.actuation_frozen());
  EXPECT_EQ(count_actions(controller.log(), "watchdog_freeze"), 0);
}

TEST_F(WatchdogTest, LowRSquaredFitIsRejectedAndFreezes) {
  DcmConfig config = base_config();
  config.online_estimation = true;
  config.min_fit_r2 = 0.95;
  config.estimator.min_bins = 6;
  config.estimator.min_spread = 3.0;
  config.estimator.min_samples_per_bin = 1;
  // Let the estimator hand every converged fit to the controller: the
  // controller-level R² gate (not the estimator's own floor) is under test.
  config.estimator.min_r_squared = 0.0;
  DcmController controller(engine_, app_, broker_, config);
  controller.start();
  ASSERT_EQ(controller.db_tier_nb(), 36);  // seeded optimum deployed

  // Noisy telemetry that no Eq. 5 curve fits well: throughput oscillates
  // hard with concurrency, so the refit's R² is poor and must be rejected.
  int step = 0;
  for (double t = 1.0; t <= 30.0; t += 1.0) {
    const double n = 1.0 + 2.0 * step;
    const double x = (step % 2 == 0) ? 5.0 : 120.0;
    publish_sample(sim::from_seconds(t), "mysql", 2, n, x);
    ++step;
  }
  engine_.run_until(sim::from_seconds(31.0));

  // The degraded fit froze soft actuation and the seeded model survived.
  EXPECT_TRUE(controller.actuation_frozen());
  EXPECT_EQ(controller.db_tier_nb(), 36);
  EXPECT_EQ(count_actions(controller.log(), "watchdog_freeze"), 1);
}

}  // namespace
}  // namespace dcm::control
