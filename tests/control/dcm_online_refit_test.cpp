// DCM online model refitting: feeding the controller monitoring samples
// drawn from a known throughput curve must steer the deployed allocation
// toward that curve's optimum.
#include <gtest/gtest.h>

#include "bus/producer.h"
#include "control/dcm_controller.h"
#include "core/topologies.h"
#include "model/concurrency_model.h"
#include "ntier/monitor_agent.h"

namespace dcm::control {
namespace {

class DcmOnlineRefitTest : public ::testing::Test {
 protected:
  DcmOnlineRefitTest() : app_(engine_, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80})) {
    bus::TopicConfig config;
    config.partitions = 4;
    broker_.create_topic(ntier::kMetricsTopic, config);
    producer_ = std::make_unique<bus::Producer>(broker_);
  }

  void publish_curve_sample(sim::SimTime t, const std::string& tier, int depth,
                            double concurrency, double throughput) {
    ntier::MetricSample s;
    s.time = t;
    s.server_id = tier + "-vm0";
    s.tier = tier;
    s.depth = depth;
    s.vm_state = "ACTIVE";
    s.concurrency = concurrency;
    s.throughput = throughput;
    s.cpu_util = 0.5;
    producer_->send(ntier::kMetricsTopic, s.server_id, s.serialize(), t);
  }

  sim::Engine engine_;
  ntier::NTierApp app_;
  bus::Broker broker_;
  std::unique_ptr<bus::Producer> producer_;
};

TEST_F(DcmOnlineRefitTest, DbAllocationConvergesToObservedCurve) {
  // The "real" MySQL behaves with a much smaller knee than the seeded
  // model claims: N_b_true = 12 vs seeded 36.
  const model::ServiceTimeParams truth{7.19e-3, 1.0e-3, (7.19e-3 - 1.0e-3) / 144.0};

  DcmConfig config;
  config.app_tier_model = core::tomcat_reference_model();
  config.db_tier_model = core::mysql_reference_model();  // wrong on purpose
  config.online_estimation = true;
  config.estimator.min_bins = 6;
  config.estimator.min_spread = 3.0;
  config.estimator.min_samples_per_bin = 1;
  DcmController controller(engine_, app_, broker_, config);
  controller.start();

  ASSERT_EQ(controller.db_tier_nb(), 36);  // seeded value deployed first

  // Stream two control periods of monitoring data sweeping the true curve.
  int step = 0;
  for (double t = 1.0; t <= 30.0; t += 1.0) {
    const double n = 1.0 + 2.0 * step;
    publish_curve_sample(sim::from_seconds(t), "mysql", 2, n,
                         model::server_throughput(truth, n) / core::kDbVisitRatio);
    ++step;
  }
  engine_.run_until(sim::from_seconds(31.0));

  EXPECT_NEAR(controller.db_tier_nb(), 12, 4);
  // And the actuated pool follows the refit model.
  EXPECT_EQ(app_.tier(1).current_downstream_connections(), controller.db_tier_nb());
}

TEST_F(DcmOnlineRefitTest, RefitDisabledKeepsSeededModels) {
  DcmConfig config;
  config.app_tier_model = core::tomcat_reference_model();
  config.db_tier_model = core::mysql_reference_model();
  config.online_estimation = false;
  DcmController controller(engine_, app_, broker_, config);
  controller.start();

  const model::ServiceTimeParams truth{7.19e-3, 1.0e-3, 4.3e-5};
  int step = 0;
  for (double t = 1.0; t <= 30.0; t += 1.0) {
    const double n = 1.0 + 2.0 * step++;
    publish_curve_sample(sim::from_seconds(t), "mysql", 2, n,
                         model::server_throughput(truth, n));
  }
  engine_.run_until(sim::from_seconds(31.0));
  EXPECT_EQ(controller.db_tier_nb(), 36);
}

TEST_F(DcmOnlineRefitTest, GarbageSamplesDoNotCorruptModels) {
  DcmConfig config;
  config.app_tier_model = core::tomcat_reference_model();
  config.db_tier_model = core::mysql_reference_model();
  config.online_estimation = true;
  config.estimator.min_r_squared = 0.90;
  DcmController controller(engine_, app_, broker_, config);
  controller.start();

  // Wide-spread noise: the estimator's R² gate must reject the fit.
  Rng rng(5);
  for (double t = 1.0; t <= 45.0; t += 1.0) {
    publish_curve_sample(sim::from_seconds(t), "mysql", 2, rng.uniform(1.0, 80.0),
                         rng.uniform(5.0, 400.0));
  }
  engine_.run_until(sim::from_seconds(46.0));
  EXPECT_EQ(controller.db_tier_nb(), 36);  // unchanged
}

}  // namespace
}  // namespace dcm::control
