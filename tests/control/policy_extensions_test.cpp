// SLA-driven and predictive scale-out policy extensions.
#include <gtest/gtest.h>

#include "bus/producer.h"
#include "control/ec2_autoscale.h"
#include "core/topologies.h"
#include "ntier/monitor_agent.h"

namespace dcm::control {
namespace {

class PolicyExtensionsTest : public ::testing::Test {
 protected:
  PolicyExtensionsTest() : app_(engine_, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80})) {
    bus::TopicConfig config;
    config.partitions = 4;
    broker_.create_topic(ntier::kMetricsTopic, config);
    producer_ = std::make_unique<bus::Producer>(broker_);
  }

  void emit_period(double end_s, double tomcat_util, double tomcat_rt = 0.05) {
    for (double t = end_s - 14.0; t <= end_s; t += 1.0) {
      ntier::MetricSample s;
      s.time = sim::from_seconds(t);
      s.server_id = "tomcat-vm0";
      s.tier = "tomcat";
      s.depth = 1;
      s.vm_state = "ACTIVE";
      s.cpu_util = tomcat_util;
      s.throughput = 50.0;
      s.avg_response_time = tomcat_rt;
      producer_->send(ntier::kMetricsTopic, s.server_id, s.serialize(), s.time);
    }
  }

  sim::Engine engine_;
  ntier::NTierApp app_;
  bus::Broker broker_;
  std::unique_ptr<bus::Producer> producer_;
};

TEST_F(PolicyExtensionsTest, SlaViolationTriggersScaleOutAtLowUtil) {
  ScalingPolicy policy;
  policy.scale_out_response_time = 0.5;  // 500 ms SLA
  Ec2AutoScaleController controller(engine_, app_, broker_, policy);
  controller.start();
  emit_period(15.0, /*util=*/0.50, /*rt=*/1.2);  // util fine, RT violated
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
}

TEST_F(PolicyExtensionsTest, SlaDisabledByDefault) {
  Ec2AutoScaleController controller(engine_, app_, broker_, {});
  controller.start();
  emit_period(15.0, 0.50, 5.0);  // terrible RT but SLA trigger off
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
}

TEST_F(PolicyExtensionsTest, SlaWithinBoundDoesNotTrigger) {
  ScalingPolicy policy;
  policy.scale_out_response_time = 0.5;
  Ec2AutoScaleController controller(engine_, app_, broker_, policy);
  controller.start();
  emit_period(15.0, 0.50, 0.2);
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
}

TEST_F(PolicyExtensionsTest, PredictiveScalesOnRisingTrendBeforeThreshold) {
  ScalingPolicy policy;
  policy.predictive = true;
  Ec2AutoScaleController controller(engine_, app_, broker_, policy);
  controller.start();
  // 0.45 → 0.70: projection 0.95 > 0.80 even though 0.70 is below it.
  // (Emit each period before its tick — the consumer drains everything
  // available at tick time.)
  emit_period(15.0, 0.45);
  engine_.run_until(sim::from_seconds(16.0));
  emit_period(30.0, 0.70);
  engine_.run_until(sim::from_seconds(31.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
}

TEST_F(PolicyExtensionsTest, ReactiveWouldNotHaveScaledYet) {
  Ec2AutoScaleController controller(engine_, app_, broker_, {});
  controller.start();
  emit_period(15.0, 0.45);
  engine_.run_until(sim::from_seconds(16.0));
  emit_period(30.0, 0.70);
  engine_.run_until(sim::from_seconds(31.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
}

TEST_F(PolicyExtensionsTest, PredictiveIgnoresFallingTrend) {
  ScalingPolicy policy;
  policy.predictive = true;
  Ec2AutoScaleController controller(engine_, app_, broker_, policy);
  controller.start();
  emit_period(15.0, 0.75);
  engine_.run_until(sim::from_seconds(16.0));
  emit_period(30.0, 0.60);  // falling: projection 0.45
  engine_.run_until(sim::from_seconds(31.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
}

TEST_F(PolicyExtensionsTest, PredictiveFirstPeriodHasNoTrend) {
  ScalingPolicy policy;
  policy.predictive = true;
  Ec2AutoScaleController controller(engine_, app_, broker_, policy);
  controller.start();
  emit_period(15.0, 0.75);  // no previous observation → reactive only
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
}

TEST_F(PolicyExtensionsTest, PredictiveDiscardsPriorAcrossTelemetryGap) {
  ScalingPolicy policy;
  policy.predictive = true;
  Ec2AutoScaleController controller(engine_, app_, broker_, policy);
  controller.start();
  emit_period(15.0, 0.45);
  engine_.run_until(sim::from_seconds(16.0));
  // One silent period: no samples reach the controller at the 30 s tick.
  engine_.run_until(sim::from_seconds(31.0));
  emit_period(45.0, 0.70);
  engine_.run_until(sim::from_seconds(46.0));
  // Extrapolating 0.45 → 0.70 as if adjacent would project 0.95 and scale
  // out; the gap must instead reset the prior, making 0.70 a first
  // observation (reactive only).
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
  // The trend resumes from the post-gap baseline: 0.70 → 0.78 projects 0.86.
  emit_period(60.0, 0.78);
  engine_.run_until(sim::from_seconds(61.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
}

TEST_F(PolicyExtensionsTest, PredictiveStillUsesReactiveSignal) {
  ScalingPolicy policy;
  policy.predictive = true;
  Ec2AutoScaleController controller(engine_, app_, broker_, policy);
  controller.start();
  emit_period(15.0, 0.95);  // plain threshold breach, first period
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
}

}  // namespace
}  // namespace dcm::control
