// HysteresisGate unit behaviour plus the end-to-end flap-kill property:
// an oscillating utilisation trace through Ec2AutoScale must churn VMs with
// the gate off and hold still with the gate on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bus/producer.h"
#include "control/ec2_autoscale.h"
#include "control/hysteresis.h"
#include "core/topologies.h"
#include "ntier/monitor_agent.h"

namespace dcm::control {
namespace {

TEST(HysteresisGateTest, AboveDirectionSwitchesOnDecisiveCrossings) {
  HysteresisGate gate(0.05, TriggerDirection::kAbove);
  EXPECT_FALSE(gate.update(0.80, 0.80));  // inside the band: stays off
  EXPECT_FALSE(gate.update(0.84, 0.80));  // still inside threshold+width
  EXPECT_TRUE(gate.update(0.86, 0.80));   // decisive breach
  EXPECT_TRUE(gate.update(0.78, 0.80));   // inside the band: holds on
  EXPECT_TRUE(gate.update(0.76, 0.80));
  EXPECT_FALSE(gate.update(0.74, 0.80));  // decisive retreat
  EXPECT_FALSE(gate.update(0.84, 0.80));  // band again: holds off
}

TEST(HysteresisGateTest, BelowDirectionMirrors) {
  HysteresisGate gate(0.05, TriggerDirection::kBelow);
  EXPECT_FALSE(gate.update(0.40, 0.40));
  EXPECT_FALSE(gate.update(0.36, 0.40));  // inside threshold-width
  EXPECT_TRUE(gate.update(0.34, 0.40));   // decisive drop
  EXPECT_TRUE(gate.update(0.44, 0.40));   // band: holds on
  EXPECT_FALSE(gate.update(0.46, 0.40));  // decisive recovery
}

TEST(HysteresisGateTest, ZeroWidthDegeneratesToStrictComparison) {
  HysteresisGate above(0.0, TriggerDirection::kAbove);
  EXPECT_FALSE(above.update(0.80, 0.80));  // strict >: equality is off
  EXPECT_TRUE(above.update(0.8000001, 0.80));
  EXPECT_FALSE(above.update(0.7999999, 0.80));  // no memory at width 0

  HysteresisGate below(0.0, TriggerDirection::kBelow);
  EXPECT_FALSE(below.update(0.40, 0.40));  // strict <
  EXPECT_TRUE(below.update(0.3999999, 0.40));
  EXPECT_FALSE(below.update(0.4000001, 0.40));

  // A negative width behaves like zero, not like an inverted band.
  HysteresisGate negative(-0.1, TriggerDirection::kAbove);
  EXPECT_TRUE(negative.update(0.81, 0.80));
  EXPECT_FALSE(negative.update(0.79, 0.80));
}

TEST(HysteresisGateTest, NonFiniteSignalForcesOff) {
  HysteresisGate gate(0.05, TriggerDirection::kAbove);
  EXPECT_TRUE(gate.update(0.90, 0.80));
  EXPECT_FALSE(gate.update(std::numeric_limits<double>::quiet_NaN(), 0.80));
  EXPECT_FALSE(gate.state());
  EXPECT_TRUE(gate.update(0.90, 0.80));
  EXPECT_FALSE(gate.update(std::numeric_limits<double>::infinity(), 0.80));
}

TEST(HysteresisGateTest, ResetForgetsState) {
  HysteresisGate gate(0.05, TriggerDirection::kAbove);
  EXPECT_TRUE(gate.update(0.90, 0.80));
  gate.reset();
  EXPECT_FALSE(gate.state());
  EXPECT_FALSE(gate.update(0.78, 0.80));  // band after reset: stays off
}

// --- end-to-end flap kill through Ec2AutoScale ---

void publish(bus::Producer& producer, sim::SimTime t, const std::string& tier, int depth,
             const std::string& server, double util) {
  ntier::MetricSample s;
  s.time = t;
  s.server_id = server;
  s.tier = tier;
  s.depth = depth;
  s.vm_state = "ACTIVE";
  s.cpu_util = util;
  s.concurrency = 10.0;
  s.throughput = 50.0;
  producer.send(ntier::kMetricsTopic, server, s.serialize(), t);
}

class FlapTest : public ::testing::Test {
 protected:
  FlapTest() : app_(engine_, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80})) {
    bus::TopicConfig config;
    config.partitions = 4;
    broker_.create_topic(ntier::kMetricsTopic, config);
    producer_ = std::make_unique<bus::Producer>(broker_);
  }

  // Shallow oscillation around both thresholds: one period just above the
  // scale-out trigger, three just below the scale-in trigger, repeated.
  // Without hysteresis this is the classic ping-pong; with a 0.1 band no
  // excursion is decisive.
  int run_oscillation(double hysteresis) {
    ScalingPolicy policy;
    policy.hysteresis = hysteresis;
    Ec2AutoScaleController controller(engine_, app_, broker_, policy);
    controller.start();
    const double pattern[] = {0.82, 0.38, 0.38, 0.38};
    for (int period = 1; period <= 16; ++period) {
      const double end_s = 15.0 * period;
      const double util = pattern[(period - 1) % 4];
      // Emit each period before its tick — the consumer drains everything
      // available at tick time.
      for (double t = end_s - 14.0; t <= end_s; t += 1.0) {
        publish(*producer_, sim::from_seconds(t), "tomcat", 1, "tomcat-vm0", util);
      }
      engine_.run_until(sim::from_seconds(end_s + 1.0));
    }
    return static_cast<int>(controller.log().filtered("scale_out").size() +
                            controller.log().filtered("scale_in").size());
  }

  sim::Engine engine_;
  ntier::NTierApp app_;
  bus::Broker broker_;
  std::unique_ptr<bus::Producer> producer_;
};

TEST_F(FlapTest, GateOffPingPongsGateOnHoldsStill) {
  const int actions_without_gate = run_oscillation(0.0);
  EXPECT_GE(actions_without_gate, 4) << "oscillation should churn VMs with the gate off";
}

TEST_F(FlapTest, GateOnSuppressesAllFlapping) {
  const int actions_with_gate = run_oscillation(0.1);
  EXPECT_EQ(actions_with_gate, 0) << "no excursion is decisive inside a 0.1 band";
}

}  // namespace
}  // namespace dcm::control
