// Controller behaviour against a hand-driven monitoring stream: threshold
// triggers, hysteresis, sample filtering, and DCM's allocation arithmetic.
#include <gtest/gtest.h>

#include "bus/producer.h"
#include "control/dcm_controller.h"
#include "control/ec2_autoscale.h"
#include "core/topologies.h"
#include "ntier/monitor_agent.h"

namespace dcm::control {
namespace {

// Publishes synthetic samples for one server of a tier.
void publish(bus::Producer& producer, sim::SimTime t, const std::string& tier, int depth,
             const std::string& server, double util, const std::string& state = "ACTIVE",
             double concurrency = 10.0, double throughput = 50.0) {
  ntier::MetricSample s;
  s.time = t;
  s.server_id = server;
  s.tier = tier;
  s.depth = depth;
  s.vm_state = state;
  s.cpu_util = util;
  s.concurrency = concurrency;
  s.throughput = throughput;
  producer.send(ntier::kMetricsTopic, server, s.serialize(), t);
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : app_(engine_, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80})) {
    bus::TopicConfig config;
    config.partitions = 4;
    broker_.create_topic(ntier::kMetricsTopic, config);
    producer_ = std::make_unique<bus::Producer>(broker_);
  }

  // Emits `util` for every tier's server once per second over one control
  // period ending at `end_s`.
  void emit_period(double end_s, double tomcat_util, double mysql_util) {
    for (double t = end_s - 14.0; t <= end_s; t += 1.0) {
      const sim::SimTime ts = sim::from_seconds(t);
      publish(*producer_, ts, "apache", 0, "apache-vm0", 0.10);
      publish(*producer_, ts, "tomcat", 1, "tomcat-vm0", tomcat_util);
      publish(*producer_, ts, "mysql", 2, "mysql-vm0", mysql_util);
    }
  }

  sim::Engine engine_;
  ntier::NTierApp app_;
  bus::Broker broker_;
  std::unique_ptr<bus::Producer> producer_;
};

TEST_F(ControllerTest, ScaleOutOnHighUtil) {
  Ec2AutoScaleController controller(engine_, app_, broker_);
  controller.start();
  emit_period(15.0, /*tomcat=*/0.95, /*mysql=*/0.50);
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
  EXPECT_EQ(app_.tier(2).provisioned_vm_count(), 1);  // mid-band: no action
  EXPECT_EQ(controller.log().filtered("scale_out").size(), 1u);
}

TEST_F(ControllerTest, NoActionInComfortBand) {
  Ec2AutoScaleController controller(engine_, app_, broker_);
  controller.start();
  for (int period = 1; period <= 4; ++period) {
    emit_period(15.0 * period, 0.60, 0.60);
  }
  engine_.run_until(sim::from_seconds(61.0));
  EXPECT_TRUE(controller.log().actions().empty());
}

TEST_F(ControllerTest, ScaleInNeedsThreeConsecutiveLowPeriods) {
  Ec2AutoScaleController controller(engine_, app_, broker_);
  controller.start();
  // Grow the tier first so scale-in is possible.
  app_.tier(1).scale_out();
  engine_.run_until(sim::from_seconds(16.0));
  ASSERT_EQ(app_.tier(1).active_vm_count(), 2);

  // Two low periods, one medium (streak reset), then three low.
  emit_period(30.0, 0.10, 0.60);
  emit_period(45.0, 0.10, 0.60);
  emit_period(60.0, 0.60, 0.60);
  engine_.run_until(sim::from_seconds(61.0));
  EXPECT_EQ(controller.log().filtered("scale_in").size(), 0u);

  emit_period(75.0, 0.10, 0.60);
  emit_period(90.0, 0.10, 0.60);
  engine_.run_until(sim::from_seconds(91.0));
  EXPECT_EQ(controller.log().filtered("scale_in").size(), 0u);
  emit_period(105.0, 0.10, 0.60);
  engine_.run_until(sim::from_seconds(106.0));
  EXPECT_EQ(controller.log().filtered("scale_in").size(), 1u);
}

TEST_F(ControllerTest, MembershipChurnResetsTheScaleInStreak) {
  Ec2AutoScaleController controller(engine_, app_, broker_);
  controller.start();
  app_.tier(1).scale_out();
  engine_.run_until(sim::from_seconds(16.0));
  ASSERT_EQ(app_.tier(1).active_vm_count(), 2);

  // Two low periods build the streak... (emit each before its tick — the
  // consumer drains everything available at tick time)
  emit_period(30.0, 0.10, 0.60);
  engine_.run_until(sim::from_seconds(31.0));
  emit_period(45.0, 0.10, 0.60);
  engine_.run_until(sim::from_seconds(46.0));
  ASSERT_EQ(controller.log().filtered("scale_in").size(), 0u);

  // ...then the membership changes mid-streak (an operator launch; a crash
  // or resilience relaunch looks identical to the controller). The evidence
  // was gathered against the old fleet, so the streak must restart.
  ASSERT_TRUE(app_.tier(1).scale_out());
  emit_period(60.0, 0.10, 0.60);
  engine_.run_until(sim::from_seconds(61.0));
  EXPECT_EQ(controller.log().filtered("scale_in").size(), 0u)
      << "third low period after churn must not complete the old streak";

  // Two more low periods complete a fresh streak against the stable fleet.
  emit_period(75.0, 0.10, 0.60);
  engine_.run_until(sim::from_seconds(76.0));
  emit_period(90.0, 0.10, 0.60);
  engine_.run_until(sim::from_seconds(91.0));
  EXPECT_EQ(controller.log().filtered("scale_in").size(), 1u);
}

TEST_F(ControllerTest, BootingVmSuppressesFurtherScaleOut) {
  Ec2AutoScaleController controller(engine_, app_, broker_);
  controller.start();
  emit_period(15.0, 0.95, 0.50);
  engine_.run_until(sim::from_seconds(16.0));
  ASSERT_EQ(app_.tier(1).provisioned_vm_count(), 2);
  // Next period still hot, but a VM is booting (boot takes 15 s; the next
  // tick at 30 s sees it just activated — emit the period ending before).
  emit_period(29.9, 0.95, 0.50);
  engine_.run_until(sim::from_seconds(29.95));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
}

TEST_F(ControllerTest, FrontTierIsNotScaled) {
  Ec2AutoScaleController controller(engine_, app_, broker_);
  controller.start();
  for (int period = 1; period <= 3; ++period) {
    for (double t = 15.0 * period - 14.0; t <= 15.0 * period; t += 1.0) {
      publish(*producer_, sim::from_seconds(t), "apache", 0, "apache-vm0", 0.99);
    }
  }
  engine_.run_until(sim::from_seconds(46.0));
  EXPECT_EQ(app_.tier(0).provisioned_vm_count(), 1);
  EXPECT_TRUE(controller.log().actions().empty());
}

TEST_F(ControllerTest, NonActiveSamplesIgnored) {
  Ec2AutoScaleController controller(engine_, app_, broker_);
  controller.start();
  for (double t = 1.0; t <= 15.0; t += 1.0) {
    publish(*producer_, sim::from_seconds(t), "tomcat", 1, "tomcat-vm9", 0.99, "BOOTING");
  }
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_TRUE(controller.log().actions().empty());
}

TEST_F(ControllerTest, MalformedSamplesAreDropped) {
  Ec2AutoScaleController controller(engine_, app_, broker_);
  controller.start();
  producer_->send(ntier::kMetricsTopic, "junk", "garbage-payload", sim::from_seconds(1.0));
  emit_period(15.0, 0.95, 0.50);
  engine_.run_until(sim::from_seconds(16.0));
  // Still acts on the valid samples.
  EXPECT_EQ(controller.log().filtered("scale_out").size(), 1u);
}

TEST_F(ControllerTest, UtilSeriesRecordsObservations) {
  Ec2AutoScaleController controller(engine_, app_, broker_);
  controller.start();
  emit_period(15.0, 0.42, 0.77);
  engine_.run_until(sim::from_seconds(16.0));
  const auto& series = controller.util_series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_NEAR(series[1].overall().mean(), 0.42, 1e-6);
  EXPECT_NEAR(series[2].overall().mean(), 0.77, 1e-6);
}

class DcmControllerTest : public ControllerTest {
 protected:
  DcmConfig dcm_config() {
    DcmConfig config;
    config.app_tier_model = core::tomcat_reference_model();
    config.db_tier_model = core::mysql_reference_model();
    return config;
  }
};

TEST_F(DcmControllerTest, DeploysOptimaAtStartup) {
  DcmController controller(engine_, app_, broker_, dcm_config());
  EXPECT_EQ(app_.tier(1).current_thread_pool_size(), controller.app_tier_nb());
  EXPECT_EQ(app_.tier(1).current_downstream_connections(), controller.db_tier_nb());
  EXPECT_NEAR(controller.app_tier_nb(), 20, 1);
  EXPECT_NEAR(controller.db_tier_nb(), 36, 1);
}

TEST_F(DcmControllerTest, HeadroomScalesThreadPool) {
  DcmConfig config = dcm_config();
  config.stp_headroom = 2.0;
  DcmController controller(engine_, app_, broker_, config);
  EXPECT_NEAR(controller.app_tier_nb(), 40, 2);
  EXPECT_EQ(app_.tier(1).current_thread_pool_size(), controller.app_tier_nb());
}

TEST_F(DcmControllerTest, ConnectionsSplitAcrossAppServers) {
  DcmController controller(engine_, app_, broker_, dcm_config());
  controller.start();
  // Scale the app tier to 2; once active, per-server conns halve.
  app_.tier(1).scale_out();
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(app_.tier(1).current_downstream_connections(),
            (controller.db_tier_nb() + 1) / 2);
}

TEST_F(DcmControllerTest, ConnectionsGrowWithDbServers) {
  DcmController controller(engine_, app_, broker_, dcm_config());
  controller.start();
  app_.tier(2).scale_out();
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(app_.tier(1).current_downstream_connections(), 2 * controller.db_tier_nb());
}

TEST_F(DcmControllerTest, HardwareRuleStillApplies) {
  DcmController controller(engine_, app_, broker_, dcm_config());
  controller.start();
  emit_period(15.0, 0.95, 0.50);
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
}

}  // namespace
}  // namespace dcm::control
