#include "control/actuators.h"

#include <gtest/gtest.h>

#include "core/topologies.h"

namespace dcm::control {
namespace {

class ActuatorsTest : public ::testing::Test {
 protected:
  ActuatorsTest()
      : app_(engine_, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80})),
        vm_agent_(engine_, app_, log_),
        app_agent_(engine_, app_, log_) {}

  sim::Engine engine_;
  ntier::NTierApp app_;
  ControlLog log_;
  VmAgent vm_agent_;
  AppAgent app_agent_;
};

TEST_F(ActuatorsTest, ScaleOutLaunchesAndLogs) {
  EXPECT_TRUE(vm_agent_.scale_out(1));
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
  ASSERT_EQ(log_.actions().size(), 1u);
  EXPECT_EQ(log_.actions()[0].action, "scale_out");
  EXPECT_EQ(log_.actions()[0].tier, "tomcat");
}

TEST_F(ActuatorsTest, ScaleOutFailsAtMax) {
  while (vm_agent_.scale_out(1)) {
  }
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), app_.tier(1).config().max_vms);
  const size_t actions = log_.actions().size();
  EXPECT_FALSE(vm_agent_.scale_out(1));
  EXPECT_EQ(log_.actions().size(), actions);  // failed action not logged
}

TEST_F(ActuatorsTest, ScaleInFailsAtMin) {
  EXPECT_FALSE(vm_agent_.scale_in(1));
  EXPECT_TRUE(log_.actions().empty());
}

TEST_F(ActuatorsTest, ScaleInAfterScaleOut) {
  vm_agent_.scale_out(2);
  engine_.run_until(sim::from_seconds(16.0));
  EXPECT_TRUE(vm_agent_.scale_in(2));
  engine_.run_until(sim::from_seconds(17.0));
  EXPECT_EQ(app_.tier(2).active_vm_count(), 1);
}

TEST_F(ActuatorsTest, SetThreadPoolAppliesToAllServers) {
  vm_agent_.scale_out(1);
  engine_.run_until(sim::from_seconds(16.0));
  app_agent_.set_thread_pool_size(1, 20);
  for (const auto& vm : app_.tier(1).vms()) {
    if (vm->state() == ntier::VmState::kActive) {
      EXPECT_EQ(vm->server().thread_pool_size(), 20);
    }
  }
}

TEST_F(ActuatorsTest, SetThreadPoolIsIdempotentInLog) {
  app_agent_.set_thread_pool_size(1, 20);
  app_agent_.set_thread_pool_size(1, 20);  // unchanged → not logged
  EXPECT_EQ(log_.filtered("set_stp").size(), 1u);
}

TEST_F(ActuatorsTest, SetConnectionsAdjustsPools) {
  app_agent_.set_downstream_connections(1, 18);
  EXPECT_EQ(app_.tier(1).current_downstream_connections(), 18);
  EXPECT_EQ(log_.filtered("set_conns").size(), 1u);
  EXPECT_EQ(log_.filtered("set_conns")[0].detail, "conns=18");
}

TEST_F(ActuatorsTest, FilteredSelectsByKind) {
  vm_agent_.scale_out(1);
  app_agent_.set_thread_pool_size(1, 25);
  app_agent_.set_downstream_connections(1, 30);
  EXPECT_EQ(log_.filtered("scale_out").size(), 1u);
  EXPECT_EQ(log_.filtered("set_stp").size(), 1u);
  EXPECT_EQ(log_.filtered("scale_in").size(), 0u);
  EXPECT_EQ(log_.actions().size(), 3u);
}

}  // namespace
}  // namespace dcm::control
