#include "control/online_estimator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "model/concurrency_model.h"

namespace dcm::control {
namespace {

const model::ServiceTimeParams kMysql{7.19e-3, 5.04e-3, 1.65e-6};

void feed_curve(OnlineModelEstimator& estimator, int max_n, double noise_cv, uint64_t seed,
                int repeats = 3) {
  Rng rng(seed);
  for (int rep = 0; rep < repeats; ++rep) {
    for (int n = 1; n <= max_n; n += 2) {
      const double x = model::server_throughput(kMysql, n);
      const double noisy = noise_cv > 0 ? x * (1.0 + noise_cv * rng.normal()) : x;
      estimator.observe(n, std::max(0.0, noisy));
    }
  }
}

TEST(OnlineEstimatorTest, NotReadyWithoutSpread) {
  OnlineModelEstimator estimator;
  for (int i = 0; i < 100; ++i) estimator.observe(10.0, 50.0);
  EXPECT_FALSE(estimator.ready());
  EXPECT_FALSE(estimator.fit(1, 1.0).has_value());
}

TEST(OnlineEstimatorTest, ReadyAfterWideObservations) {
  OnlineModelEstimator estimator;
  feed_curve(estimator, 60, 0.0, 1);
  EXPECT_TRUE(estimator.ready());
  EXPECT_GE(estimator.bin_count(), 8u);
}

TEST(OnlineEstimatorTest, RecoversKneeFromCleanData) {
  OnlineModelEstimator estimator;
  feed_curve(estimator, 120, 0.0, 2);
  const auto fitted = estimator.fit(1, 1.0);
  ASSERT_TRUE(fitted.has_value());
  EXPECT_GT(fitted->r_squared, 0.99);
  EXPECT_NEAR(fitted->optimal_concurrency(), 36.1, 3.0);
}

TEST(OnlineEstimatorTest, ToleratesModerateNoise) {
  OnlineModelEstimator estimator;
  feed_curve(estimator, 120, 0.02, 3, /*repeats=*/10);
  const auto fitted = estimator.fit(1, 1.0);
  ASSERT_TRUE(fitted.has_value());
  // Flat plateau ⇒ loose N_b bounds, but the fitted curve must be sane.
  EXPECT_GT(fitted->optimal_concurrency(), 10.0);
  EXPECT_LT(fitted->optimal_concurrency(), 120.0);
}

TEST(OnlineEstimatorTest, RejectsPoorFits) {
  EstimatorConfig config;
  config.min_r_squared = 0.99;
  OnlineModelEstimator estimator(config);
  // Feed pure wide-spectrum noise over a wide concurrency range.
  Rng rng(4);
  for (int rep = 0; rep < 20; ++rep) {
    for (int n = 1; n <= 60; n += 3) estimator.observe(n, rng.uniform(10.0, 500.0));
  }
  EXPECT_TRUE(estimator.ready());
  EXPECT_FALSE(estimator.fit(1, 1.0).has_value());
}

TEST(OnlineEstimatorTest, IgnoresIdleSamples) {
  OnlineModelEstimator estimator;
  for (int i = 0; i < 1000; ++i) estimator.observe(0.0, 0.0);  // idle seconds
  EXPECT_EQ(estimator.bin_count(), 0u);
}

TEST(OnlineEstimatorTest, RejectsZeroThroughputAtNonzeroConcurrency) {
  // A stalled measurement interval (busy threads, zero completions) is not a
  // throughput observation; admitting it would drag bin means toward zero.
  OnlineModelEstimator estimator;
  for (int i = 0; i < 100; ++i) estimator.observe(20.0, 0.0);
  EXPECT_EQ(estimator.bin_count(), 0u);
  feed_curve(estimator, 120, 0.0, 6);
  for (int i = 0; i < 1000; ++i) estimator.observe(20.0, 0.0);  // must not bias bin 20
  const auto fitted = estimator.fit(1, 1.0);
  ASSERT_TRUE(fitted.has_value());
  EXPECT_NEAR(fitted->optimal_concurrency(), 36.1, 3.0);
}

TEST(OnlineEstimatorTest, WindowedBinsTrackRegimeChange) {
  // Service times double their contention terms (e.g. the VM flavor or the
  // co-tenant mix changed): the knee moves from ~36 to ~18. An unbounded
  // accumulator would average the regimes; the sliding window must forget
  // the old one once enough fresh samples arrive.
  const model::ServiceTimeParams kSlowerMysql{7.19e-3, 5.04e-3, 6.6e-6};
  EstimatorConfig config;
  config.window_per_bin = 20;
  OnlineModelEstimator estimator(config);
  feed_curve(estimator, 120, 0.0, 7, /*repeats=*/30);  // old regime, saturating windows
  {
    const auto fitted = estimator.fit(1, 1.0);
    ASSERT_TRUE(fitted.has_value());
    EXPECT_NEAR(fitted->optimal_concurrency(), 36.1, 3.0);
  }
  for (int rep = 0; rep < 25; ++rep) {  // > window_per_bin repeats of the new regime
    for (int n = 1; n <= 120; n += 2) {
      estimator.observe(n, model::server_throughput(kSlowerMysql, n));
    }
  }
  const auto fitted = estimator.fit(1, 1.0);
  ASSERT_TRUE(fitted.has_value());
  EXPECT_GT(fitted->r_squared, 0.99);  // pure new-regime data, clean fit
  EXPECT_NEAR(fitted->optimal_concurrency(), 18.1, 2.0);
}

TEST(OnlineEstimatorTest, MinSamplesPerBinEnforced) {
  EstimatorConfig config;
  config.min_samples_per_bin = 5;
  OnlineModelEstimator estimator(config);
  feed_curve(estimator, 60, 0.0, 5, /*repeats=*/1);  // only 1 sample per bin
  EXPECT_EQ(estimator.bin_count(), 0u);
  EXPECT_FALSE(estimator.ready());
}

}  // namespace
}  // namespace dcm::control
