// Behaviour of the zoo beyond the classic threshold pair: the predictive
// Holt smoother, the queueing-theoretic inversion, the PI loop with
// anti-windup, and the registry that names them all.
#include <gtest/gtest.h>

#include <stdexcept>

#include "bus/producer.h"
#include "control/controller_registry.h"
#include "control/pi_controller.h"
#include "control/predictive_controller.h"
#include "control/queueing_controller.h"
#include "core/topologies.h"
#include "ntier/monitor_agent.h"

namespace dcm::control {
namespace {

void publish(bus::Producer& producer, sim::SimTime t, const std::string& tier, int depth,
             const std::string& server, double util) {
  ntier::MetricSample s;
  s.time = t;
  s.server_id = server;
  s.tier = tier;
  s.depth = depth;
  s.vm_state = "ACTIVE";
  s.cpu_util = util;
  s.concurrency = 10.0;
  s.throughput = 50.0;
  producer.send(ntier::kMetricsTopic, server, s.serialize(), t);
}

class ZooTest : public ::testing::Test {
 protected:
  explicit ZooTest(int max_vms_per_tier = 8)
      : app_(engine_, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80}, 1, max_vms_per_tier)) {
    bus::TopicConfig config;
    config.partitions = 4;
    broker_.create_topic(ntier::kMetricsTopic, config);
    producer_ = std::make_unique<bus::Producer>(broker_);
  }

  // One control period of per-second samples ending at `end_s`, then the
  // simulation advances past the tick at `end_s`. Emit-then-advance matters:
  // the consumer drains everything available at tick time, so pre-publishing
  // several periods would collapse them into one observation. A negative
  // utilisation skips that tier for the period (a telemetry gap).
  void step(double end_s, double tomcat_util, double mysql_util = 0.5) {
    for (double t = end_s - 14.0; t <= end_s; t += 1.0) {
      const sim::SimTime now = sim::from_seconds(t);
      publish(*producer_, now, "apache", 0, "apache-vm0", 0.3);
      if (tomcat_util >= 0.0) publish(*producer_, now, "tomcat", 1, "tomcat-vm0", tomcat_util);
      if (mysql_util >= 0.0) publish(*producer_, now, "mysql", 2, "mysql-vm0", mysql_util);
    }
    engine_.run_until(sim::from_seconds(end_s + 1.0));
  }

  sim::Engine engine_;
  ntier::NTierApp app_;
  bus::Broker broker_;
  std::unique_ptr<bus::Producer> producer_;
};

// --- registry ---

TEST(ControllerRegistryTest, NamesAreSortedAndComplete) {
  const std::vector<std::string>& names = controller_names();
  const std::vector<std::string> expected = {"dcm", "ec2", "pi", "predictive", "queueing"};
  EXPECT_EQ(names, expected);
  for (const auto& name : names) EXPECT_TRUE(has_controller(name));
  EXPECT_FALSE(has_controller("pid"));
  EXPECT_FALSE(has_controller(""));
}

class RegistryConstructTest : public ZooTest {};

TEST_F(RegistryConstructTest, EveryRegisteredNameConstructs) {
  ControllerMenu menu;
  menu.dcm.app_tier_model = core::tomcat_reference_model();
  menu.dcm.db_tier_model = core::mysql_reference_model();
  for (const auto& name : controller_names()) {
    auto controller = make_controller(name, engine_, app_, broker_, menu);
    ASSERT_NE(controller, nullptr) << name;
  }
}

TEST_F(RegistryConstructTest, UnknownNameThrows) {
  ControllerMenu menu;
  EXPECT_THROW(make_controller("pid", engine_, app_, broker_, menu), std::invalid_argument);
}

TEST_F(RegistryConstructTest, MenuPolicyIsStampedIntoTheChosenFamily) {
  ControllerMenu menu;
  menu.policy.scale_in_consecutive = 7;
  auto controller = make_controller("queueing", engine_, app_, broker_, menu);
  EXPECT_EQ(controller->policy().scale_in_consecutive, 7);
}

// --- predictive ---

class PredictiveTest : public ZooTest {
 protected:
  PredictiveConfig ramp_config() const {
    PredictiveConfig config;
    config.level_alpha = 0.5;
    config.trend_beta = 0.3;
    config.horizon_periods = 3;
    return config;
  }
};

TEST_F(PredictiveTest, RampScalesOutBeforeRawUtilizationCrosses) {
  PredictiveController controller(engine_, app_, broker_, ramp_config());
  controller.start();
  // Rising ramp that never reaches the 0.8 trigger: the forecast must.
  step(15.0, 0.40);
  step(30.0, 0.60);
  step(45.0, 0.78);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2)
      << "forecast " << controller.forecast(1) << " should have pre-empted the breach";
  EXPECT_GT(controller.forecast(1), 0.8);
  EXPECT_EQ(controller.log().filtered("scale_out").size(), 1u);
}

TEST_F(PredictiveTest, FirstPeriodIsReactiveNotBlind) {
  PredictiveController controller(engine_, app_, broker_, ramp_config());
  controller.start();
  // No history at all: a live breach in the very first period still acts,
  // because the seeded forecast equals the observation.
  step(15.0, 0.95);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
}

TEST_F(PredictiveTest, FirstPeriodDoesNotExtrapolateAPhantomTrend) {
  PredictiveController controller(engine_, app_, broker_, ramp_config());
  controller.start();
  // A calm first observation must seed (level = u, trend = 0): no forecast
  // excursion, no action.
  step(15.0, 0.60);
  EXPECT_NEAR(controller.forecast(1), 0.60, 1e-9);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
}

TEST_F(PredictiveTest, TelemetryGapDiscardsTheTrend) {
  PredictiveController controller(engine_, app_, broker_, ramp_config());
  controller.start();
  step(15.0, 0.40);
  step(30.0, 0.60);  // trend is now rising
  step(45.0, -1.0);  // tomcat goes silent for one period
  step(60.0, 0.78);  // reappears below the trigger
  // Extrapolating the pre-gap trend across the silence would have forecast a
  // breach; the re-seed treats 0.78 as a fresh start instead.
  EXPECT_NEAR(controller.forecast(1), 0.78, 1e-9);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
}

// --- queueing ---

class QueueingTest : public ZooTest {};

TEST_F(QueueingTest, UtilizationLawInversionScalesOut) {
  QueueingController controller(engine_, app_, broker_, QueueingConfig{});
  controller.start();
  // One server at 0.9 busy-servers of demand against rho* = 0.6:
  // k* = ceil(0.9 / 0.6) = 2.
  step(15.0, 0.90);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
  EXPECT_NEAR(controller.demand_estimate(1), 0.90, 1e-9);
}

TEST_F(QueueingTest, AtTargetHoldsStill) {
  QueueingController controller(engine_, app_, broker_, QueueingConfig{});
  controller.start();
  // Demand 0.5 against rho* = 0.6 inverts to k* = 1 = current fleet.
  step(15.0, 0.50);
  step(30.0, 0.50);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
  EXPECT_TRUE(controller.log().actions().empty());
}

TEST_F(QueueingTest, SurplusMustPersistForTheScaleInStreak) {
  ASSERT_TRUE(app_.tier(1).scale_out());
  QueueingController controller(engine_, app_, broker_, QueueingConfig{});
  controller.start();
  engine_.run_until(sim::from_seconds(16.0));
  ASSERT_EQ(app_.tier(1).active_vm_count(), 2);
  // Two servers nearly idle: demand 0.3 inverts to k* = 1, a one-VM surplus.
  step(30.0, 0.15);
  step(45.0, 0.15);
  EXPECT_EQ(app_.tier(1).active_vm_count(), 2) << "two low periods must not yet drain";
  step(60.0, 0.15);
  EXPECT_EQ(app_.tier(1).active_vm_count(), 1) << "third consecutive period drains";
}

// --- PI ---

class PiTest : public ZooTest {};

TEST_F(PiTest, ProportionalTermActsOnALargeErrorImmediately) {
  PiController controller(engine_, app_, broker_, PiConfig{});
  controller.start();
  // e = 0.35 -> delta = 2*0.35 + 0.5*0.35 = 0.875 > deadband 0.5.
  step(15.0, 0.95);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
  // Back-calculation reset: the fleet changed, the evidence restarts.
  EXPECT_DOUBLE_EQ(controller.integral(1), 0.0);
}

TEST_F(PiTest, IntegralTermRemovesSteadyStateOffset) {
  PiController controller(engine_, app_, broker_, PiConfig{});
  controller.start();
  // e = 0.12: the proportional term alone (0.24) never clears the deadband,
  // but the integral winds up 0.12 per period; at period 5 the PI signal
  // 0.24 + 0.5*0.60 = 0.54 finally does.
  for (int period = 1; period <= 4; ++period) step(15.0 * period, 0.72);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1) << "period 4: delta 0.48 still inside";
  step(15.0 * 5, 0.72);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 2);
}

TEST_F(PiTest, PurePTolerantOfTheSameOffsetForever) {
  PiConfig config;
  config.ki = 0.0;
  PiController controller(engine_, app_, broker_, config);
  controller.start();
  for (int period = 1; period <= 10; ++period) step(15.0 * period, 0.72);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
}

TEST_F(PiTest, DeadbandHoldsSmallErrors) {
  PiController controller(engine_, app_, broker_, PiConfig{});
  controller.start();
  // e = 0.05 -> delta well inside the deadband; integral accumulates quietly.
  step(15.0, 0.65);
  step(30.0, 0.65);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
  EXPECT_NEAR(controller.integral(1), 0.10, 1e-9);
}

class PiSaturationTest : public ZooTest {
 protected:
  PiSaturationTest() : ZooTest(/*max_vms_per_tier=*/1) {}
};

TEST_F(PiSaturationTest, ConditionalIntegrationFreezesAgainstASaturatedActuator) {
  PiController controller(engine_, app_, broker_, PiConfig{});
  controller.start();
  // The tier is already at max_vms = 1, so every scale-out request is
  // refused. Without conditional integration the error 0.35/period would
  // wind the integral to the clamp; frozen, it stays at zero.
  for (int period = 1; period <= 4; ++period) step(15.0 * period, 0.95);
  EXPECT_EQ(app_.tier(1).provisioned_vm_count(), 1);
  EXPECT_DOUBLE_EQ(controller.integral(1), 0.0);
  EXPECT_TRUE(controller.log().actions().empty());
}

}  // namespace
}  // namespace dcm::control
