#include "bus/consumer.h"

#include <gtest/gtest.h>

#include "bus/producer.h"

namespace dcm::bus {
namespace {

class ConsumerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TopicConfig config;
    config.partitions = 4;
    broker_.create_topic("t", config);
  }
  Broker broker_;
};

TEST_F(ConsumerTest, ProducerAssignsByKey) {
  Producer producer(broker_);
  producer.send("t", "key", "v1", 1);
  producer.send("t", "key", "v2", 2);
  EXPECT_EQ(producer.records_sent(), 2u);
  Consumer consumer(broker_, "g", "t");
  const auto records = consumer.poll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].value, "v1");
  EXPECT_EQ(records[1].value, "v2");
}

TEST_F(ConsumerTest, PollAdvancesPosition) {
  Producer producer(broker_);
  producer.send("t", "a", "1", 1);
  Consumer consumer(broker_, "g", "t");
  EXPECT_EQ(consumer.poll().size(), 1u);
  EXPECT_TRUE(consumer.poll().empty());
  producer.send("t", "a", "2", 2);
  EXPECT_EQ(consumer.poll().size(), 1u);
}

TEST_F(ConsumerTest, MergedStreamIsTimeOrdered) {
  Producer producer(broker_);
  // Different keys → different partitions, interleaved timestamps.
  for (int i = 0; i < 20; ++i) {
    producer.send("t", "key-" + std::to_string(i % 5), "v", i);
  }
  Consumer consumer(broker_, "g", "t");
  const auto records = consumer.poll();
  ASSERT_EQ(records.size(), 20u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].timestamp, records[i].timestamp);
  }
}

TEST_F(ConsumerTest, CommitResumesNewConsumerAtPosition) {
  Producer producer(broker_);
  for (int i = 0; i < 6; ++i) producer.send("t", "k", std::to_string(i), i);
  {
    Consumer first(broker_, "g", "t");
    EXPECT_EQ(first.poll(3).size(), 3u);
    first.commit();
  }
  Consumer second(broker_, "g", "t");
  const auto rest = second.poll();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0].value, "3");
}

TEST_F(ConsumerTest, UncommittedPositionIsNotPersisted) {
  Producer producer(broker_);
  producer.send("t", "k", "v", 1);
  {
    Consumer first(broker_, "g", "t");
    EXPECT_EQ(first.poll().size(), 1u);
    // no commit
  }
  Consumer second(broker_, "g", "t");
  EXPECT_EQ(second.poll().size(), 1u);
}

TEST_F(ConsumerTest, IndependentGroups) {
  Producer producer(broker_);
  producer.send("t", "k", "v", 1);
  Consumer a(broker_, "group-a", "t");
  Consumer b(broker_, "group-b", "t");
  EXPECT_EQ(a.poll().size(), 1u);
  EXPECT_EQ(b.poll().size(), 1u);
}

TEST_F(ConsumerTest, SeekToEndSkipsBacklog) {
  Producer producer(broker_);
  for (int i = 0; i < 5; ++i) producer.send("t", "k", "old", i);
  Consumer consumer(broker_, "g", "t");
  consumer.seek_to_end();
  EXPECT_TRUE(consumer.poll().empty());
  producer.send("t", "k", "new", 10);
  const auto records = consumer.poll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].value, "new");
}

TEST_F(ConsumerTest, SeekToBeginningReplays) {
  Producer producer(broker_);
  producer.send("t", "k", "v", 1);
  Consumer consumer(broker_, "g", "t");
  EXPECT_EQ(consumer.poll().size(), 1u);
  consumer.seek_to_beginning();
  EXPECT_EQ(consumer.poll().size(), 1u);
}

TEST_F(ConsumerTest, LagCountsUnpolledRecords) {
  Producer producer(broker_);
  Consumer consumer(broker_, "g", "t");
  EXPECT_EQ(consumer.lag(), 0);
  for (int i = 0; i < 7; ++i) producer.send("t", "k" + std::to_string(i), "v", i);
  EXPECT_EQ(consumer.lag(), 7);
  consumer.poll(3);
  EXPECT_EQ(consumer.lag(), 4);
}

TEST_F(ConsumerTest, SurvivesRetentionTrimAheadOfPosition) {
  TopicConfig config;
  config.partitions = 1;
  config.retention = 100;
  broker_.create_topic("short", config);
  Producer producer(broker_);
  producer.send("short", "k", "old", 10);
  Consumer consumer(broker_, "g", "short");
  broker_.enforce_retention(500);  // trims the record before it was polled
  producer.send("short", "k", "new", 490);
  const auto records = consumer.poll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].value, "new");
}

TEST_F(ConsumerTest, PollHonorsMaxAcrossPartitions) {
  Producer producer(broker_);
  for (int i = 0; i < 40; ++i) producer.send("t", "key-" + std::to_string(i), "v", i);
  Consumer consumer(broker_, "g", "t");
  size_t total = 0;
  while (true) {
    const auto batch = consumer.poll(16);
    if (batch.empty()) break;
    EXPECT_LE(batch.size(), 16u);
    total += batch.size();
  }
  EXPECT_EQ(total, 40u);
}

}  // namespace
}  // namespace dcm::bus
