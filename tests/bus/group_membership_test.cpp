// Static consumer-group membership: members split partitions without
// overlap or loss.
#include <gtest/gtest.h>

#include "bus/consumer.h"
#include "bus/producer.h"

namespace dcm::bus {
namespace {

class GroupMembershipTest : public ::testing::Test {
 protected:
  GroupMembershipTest() {
    TopicConfig config;
    config.partitions = 4;
    broker_.create_topic("t", config);
  }
  Broker broker_;
};

TEST_F(GroupMembershipTest, MembersPartitionTheTopic) {
  Producer producer(broker_);
  for (int i = 0; i < 200; ++i) {
    producer.send("t", "key-" + std::to_string(i), std::to_string(i), i);
  }
  Consumer member0(broker_, "g", "t", 0, 2);
  Consumer member1(broker_, "g", "t", 1, 2);

  std::set<std::string> seen;
  size_t total = 0;
  for (Consumer* member : {&member0, &member1}) {
    for (const auto& record : member->poll(1000)) {
      EXPECT_TRUE(seen.insert(record.key + "#" + record.value).second)
          << "duplicate delivery across members";
      ++total;
    }
  }
  EXPECT_EQ(total, 200u);  // nothing lost
}

TEST_F(GroupMembershipTest, SingleMemberFormEqualsDefault) {
  Producer producer(broker_);
  for (int i = 0; i < 20; ++i) producer.send("t", "k" + std::to_string(i), "v", i);
  Consumer explicit_solo(broker_, "g1", "t", 0, 1);
  Consumer default_solo(broker_, "g2", "t");
  EXPECT_EQ(explicit_solo.poll(100).size(), 20u);
  EXPECT_EQ(default_solo.poll(100).size(), 20u);
}

TEST_F(GroupMembershipTest, MembersCommitIndependentPartitions) {
  Producer producer(broker_);
  for (int i = 0; i < 100; ++i) producer.send("t", "key-" + std::to_string(i), "v", i);
  {
    Consumer member0(broker_, "g", "t", 0, 2);
    member0.poll(1000);
    member0.commit();
  }
  // A restarted member 0 sees nothing new; member 1 still has its backlog.
  Consumer member0_again(broker_, "g", "t", 0, 2);
  EXPECT_TRUE(member0_again.poll(1000).empty());
  Consumer member1(broker_, "g", "t", 1, 2);
  EXPECT_FALSE(member1.poll(1000).empty());
}

TEST_F(GroupMembershipTest, MoreMembersThanPartitionsLeavesIdleMembers) {
  Producer producer(broker_);
  for (int i = 0; i < 50; ++i) producer.send("t", "key-" + std::to_string(i), "v", i);
  size_t total = 0;
  for (int m = 0; m < 6; ++m) {
    Consumer member(broker_, "g6", "t", m, 6);
    total += member.poll(1000).size();
  }
  EXPECT_EQ(total, 50u);  // members 4 and 5 own no partitions but harm nothing
}

}  // namespace
}  // namespace dcm::bus
