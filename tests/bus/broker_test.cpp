#include "bus/broker.h"

#include <gtest/gtest.h>

namespace dcm::bus {
namespace {

TEST(PartitionTest, AppendsAssignDenseOffsets) {
  Partition p;
  EXPECT_EQ(p.append({-1, 0, "k", "a"}), 0);
  EXPECT_EQ(p.append({-1, 0, "k", "b"}), 1);
  EXPECT_EQ(p.end_offset(), 2);
  EXPECT_EQ(p.base_offset(), 0);
}

TEST(PartitionTest, FetchFromOffset) {
  Partition p;
  for (int i = 0; i < 5; ++i) p.append({-1, i, "k", std::to_string(i)});
  const auto records = p.fetch(2, 10);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].value, "2");
  EXPECT_EQ(records[0].offset, 2);
}

TEST(PartitionTest, FetchRespectsMax) {
  Partition p;
  for (int i = 0; i < 5; ++i) p.append({-1, i, "k", "v"});
  EXPECT_EQ(p.fetch(0, 2).size(), 2u);
}

TEST(PartitionTest, FetchBeyondEndIsEmpty) {
  Partition p;
  p.append({-1, 0, "k", "v"});
  EXPECT_TRUE(p.fetch(5, 10).empty());
}

TEST(PartitionTest, ExpireMovesBaseOffset) {
  Partition p;
  for (int i = 0; i < 5; ++i) p.append({-1, i * 100, "k", std::to_string(i)});
  p.expire_before(250);
  EXPECT_EQ(p.base_offset(), 3);
  EXPECT_EQ(p.size(), 2u);
  // Offsets of surviving records unchanged.
  const auto records = p.fetch(0, 10);  // clamped to base 3
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].offset, 3);
}

TEST(TopicTest, KeyPartitioningIsStable) {
  Topic topic("t", {4, 0});
  const int p1 = topic.partition_for_key("server-1");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(topic.partition_for_key("server-1"), p1);
  EXPECT_GE(p1, 0);
  EXPECT_LT(p1, 4);
}

TEST(TopicTest, KeysSpreadAcrossPartitions) {
  Topic topic("t", {4, 0});
  std::set<int> used;
  for (int i = 0; i < 64; ++i) used.insert(topic.partition_for_key("key-" + std::to_string(i)));
  EXPECT_GE(used.size(), 3u);
}

TEST(BrokerTest, CreateAndFindTopic) {
  Broker broker;
  broker.create_topic("metrics", {2, 0});
  EXPECT_NE(broker.find_topic("metrics"), nullptr);
  EXPECT_EQ(broker.find_topic("absent"), nullptr);
  EXPECT_EQ(broker.find_topic("metrics")->partition_count(), 2);
}

TEST(BrokerTest, RetentionEnforcedPerTopicConfig) {
  Broker broker;
  TopicConfig config;
  config.partitions = 1;
  config.retention = 100;
  Topic& topic = broker.create_topic("short", config);
  topic.partition(0).append({-1, 10, "k", "old"});
  topic.partition(0).append({-1, 500, "k", "new"});
  broker.enforce_retention(/*now=*/550);
  EXPECT_EQ(topic.partition(0).size(), 1u);
  EXPECT_EQ(topic.partition(0).fetch(0, 10)[0].value, "new");
}

TEST(BrokerTest, ZeroRetentionKeepsEverything) {
  Broker broker;
  Topic& topic = broker.create_topic("keep", {1, 0});
  topic.partition(0).append({-1, 1, "k", "v"});
  broker.enforce_retention(1'000'000'000);
  EXPECT_EQ(topic.partition(0).size(), 1u);
}

TEST(BrokerTest, CommittedOffsets) {
  Broker broker;
  broker.create_topic("t", {1, 0});
  EXPECT_FALSE(broker.committed_offset("g", "t", 0).has_value());
  broker.commit_offset("g", "t", 0, 42);
  EXPECT_EQ(broker.committed_offset("g", "t", 0).value(), 42);
  broker.commit_offset("g", "t", 0, 50);
  EXPECT_EQ(broker.committed_offset("g", "t", 0).value(), 50);
  // Groups are independent.
  EXPECT_FALSE(broker.committed_offset("other", "t", 0).has_value());
}

TEST(BrokerTest, TotalRecordsAcrossTopics) {
  Broker broker;
  Topic& a = broker.create_topic("a", {2, 0});
  Topic& b = broker.create_topic("b", {1, 0});
  a.partition(0).append({-1, 0, "k", "v"});
  a.partition(1).append({-1, 0, "k", "v"});
  b.partition(0).append({-1, 0, "k", "v"});
  EXPECT_EQ(broker.total_records(), 3u);
}

}  // namespace
}  // namespace dcm::bus
