// Tournament determinism contract: the scorecard is bit-identical for any
// worker count, ranks are a clean permutation per scenario, and the writers
// agree on the digest.
#include "scenario/tournament.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "control/controller_registry.h"

namespace dcm::scenario {
namespace {

TournamentOptions smoke_options() {
  TournamentOptions options;
  options.scenarios = {"quickstart", "chaos-resilience"};  // steady load + fault plan
  options.overrides = {{"run.duration", "90"}};
  return options;
}

TEST(TournamentTest, ScorecardDigestIsJobsInvariant) {
  TournamentOptions serial = smoke_options();
  serial.jobs = 1;
  TournamentOptions threaded = smoke_options();
  threaded.jobs = 4;
  const Tournament a = run_tournament(serial);
  const Tournament b = run_tournament(threaded);
  EXPECT_EQ(scorecard_digest(a), scorecard_digest(b));
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].result_digest, b.cells[i].result_digest) << a.cells[i].controller;
  }
}

TEST(TournamentTest, DefaultFieldIsTheWholeRegistryAndRanksArePermutations) {
  const Tournament tournament = run_tournament(smoke_options());
  EXPECT_EQ(tournament.controllers, control::controller_names());
  ASSERT_EQ(tournament.cells.size(),
            tournament.scenarios.size() * tournament.controllers.size());
  // Scenario-major, controller-minor, matching the sweep's axis order.
  for (size_t i = 0; i < tournament.cells.size(); ++i) {
    const size_t scenario = i / tournament.controllers.size();
    const size_t controller = i % tournament.controllers.size();
    EXPECT_EQ(tournament.cells[i].scenario, tournament.scenarios[scenario]);
    EXPECT_EQ(tournament.cells[i].controller, tournament.controllers[controller]);
  }
  // Within each scenario the ranks are exactly 1..n.
  for (const auto& scenario : tournament.scenarios) {
    std::vector<int> ranks;
    for (const auto& cell : tournament.cells) {
      if (cell.scenario == scenario) ranks.push_back(cell.rank);
    }
    std::sort(ranks.begin(), ranks.end());
    ASSERT_EQ(ranks.size(), tournament.controllers.size());
    for (size_t place = 0; place < ranks.size(); ++place) {
      EXPECT_EQ(ranks[place], static_cast<int>(place) + 1);
    }
  }
  // Standings cover every controller, best (fewest rank points) first.
  ASSERT_EQ(tournament.standings.size(), tournament.controllers.size());
  for (size_t i = 1; i < tournament.standings.size(); ++i) {
    EXPECT_LE(tournament.standings[i - 1].rank_points, tournament.standings[i].rank_points);
  }
}

TEST(TournamentTest, ControllerSubsetRunsOnlyThoseCells) {
  TournamentOptions options;
  options.scenarios = {"quickstart"};
  options.overrides = {{"run.duration", "90"}};
  options.controllers = {"ec2", "dcm"};  // caller order is axis order
  const Tournament tournament = run_tournament(options);
  ASSERT_EQ(tournament.cells.size(), 2u);
  EXPECT_EQ(tournament.cells[0].controller, "ec2");
  EXPECT_EQ(tournament.cells[1].controller, "dcm");
}

TEST(TournamentTest, WritersCarryTheScorecardDigest) {
  TournamentOptions options;
  options.scenarios = {"quickstart"};
  options.overrides = {{"run.duration", "90"}};
  options.controllers = {"ec2", "queueing"};
  const Tournament tournament = run_tournament(options);

  std::ostringstream json;
  write_tournament_json(json, tournament);
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find("\"schema\": \"dcm-tournament-v1\""), std::string::npos);
  EXPECT_NE(json_text.find("\"scorecard_digest\": \"" +
                           std::to_string(scorecard_digest(tournament)) + "\""),
            std::string::npos);

  std::ostringstream csv;
  write_tournament_csv(csv, tournament);
  const std::string csv_text = csv.str();
  // Header plus one row per cell.
  EXPECT_EQ(std::count(csv_text.begin(), csv_text.end(), '\n'), 3);
}

TEST(TournamentTest, UnknownNamesThrowEagerly) {
  TournamentOptions unknown_controller = smoke_options();
  unknown_controller.controllers = {"pid"};
  EXPECT_THROW(run_tournament(unknown_controller), std::invalid_argument);

  TournamentOptions unknown_scenario;
  unknown_scenario.scenarios = {"no-such-scenario"};
  EXPECT_THROW(run_tournament(unknown_scenario), std::runtime_error);

  TournamentOptions no_scenarios;
  no_scenarios.scenarios = {};
  EXPECT_THROW(run_tournament(no_scenarios), std::runtime_error);
}

}  // namespace
}  // namespace dcm::scenario
