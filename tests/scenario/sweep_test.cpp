#include "scenario/sweep.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcm::scenario {
namespace {

Scenario small_base() {
  return Scenario::parse(
      "[workload]\nkind=rubbos\nusers=40\n"
      "[run]\nduration=20\nwarmup=5\nseed=11\n");
}

TEST(ParseAxisTest, ParsesSectionKeyAndValues) {
  const SweepAxis axis = parse_axis("workload.users = 40, 60 ,80");
  EXPECT_EQ(axis.section, "workload");
  EXPECT_EQ(axis.key, "users");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"40", "60", "80"}));
}

TEST(ParseAxisTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_axis("no-equals"), std::runtime_error);
  EXPECT_THROW(parse_axis("nodot=1,2"), std::runtime_error);
  EXPECT_THROW(parse_axis(".key=1"), std::runtime_error);
  EXPECT_THROW(parse_axis("run.=1"), std::runtime_error);
  EXPECT_THROW(parse_axis("workload.users=40,,80"), std::runtime_error);
}

TEST(ExpandGridTest, NoAxesYieldsTheBaseAsRunZero) {
  SweepPlan plan;
  plan.base = small_base();
  const auto runs = expand_grid(plan);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].index, 0u);
  EXPECT_TRUE(runs[0].overrides.empty());
  // kDerivePerRun still applies: run 0's seed is derive_seed(root, 0).
  EXPECT_EQ(runs[0].scenario.seed, derive_seed(11, 0));
}

TEST(ExpandGridTest, SinglePointAxis) {
  SweepPlan plan;
  plan.base = small_base();
  plan.axes.push_back(parse_axis("workload.users=60"));
  const auto runs = expand_grid(plan);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].scenario.workload.users, 60);
}

TEST(ExpandGridTest, EmptyValueAxisThrows) {
  SweepPlan plan;
  plan.base = small_base();
  plan.axes.push_back({"workload", "users", {}});
  EXPECT_THROW(expand_grid(plan), std::runtime_error);
}

TEST(ExpandGridTest, CartesianOrderingLastAxisFastest) {
  SweepPlan plan;
  plan.base = small_base();
  plan.axes.push_back(parse_axis("workload.users=40,60"));
  plan.axes.push_back(parse_axis("run.max_vms=2,4,8"));
  const auto runs = expand_grid(plan);
  ASSERT_EQ(runs.size(), 6u);
  // (40,2) (40,4) (40,8) (60,2) (60,4) (60,8) — like nested loops.
  const std::vector<std::pair<int, int>> expected = {{40, 2}, {40, 4}, {40, 8},
                                                     {60, 2}, {60, 4}, {60, 8}};
  for (size_t i = 0; i < runs.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(runs[i].index, i);
    EXPECT_EQ(runs[i].scenario.workload.users, expected[i].first);
    EXPECT_EQ(runs[i].scenario.max_vms, expected[i].second);
    // Overrides are recorded in axis order.
    ASSERT_EQ(runs[i].overrides.size(), 2u);
    EXPECT_EQ(runs[i].overrides[0].first, "workload.users");
    EXPECT_EQ(runs[i].overrides[1].first, "run.max_vms");
  }
}

TEST(ExpandGridTest, SeedPolicies) {
  SweepPlan plan;
  plan.base = small_base();
  plan.axes.push_back(parse_axis("workload.users=40,60,80"));

  const auto derived = expand_grid(plan);
  for (size_t i = 0; i < derived.size(); ++i) {
    EXPECT_EQ(derived[i].scenario.seed, derive_seed(11, i));
  }

  plan.seed_policy = SeedPolicy::kFixed;
  for (const auto& run : expand_grid(plan)) {
    EXPECT_EQ(run.scenario.seed, 11u);
  }
}

TEST(ExpandGridTest, ExplicitSeedAxisWinsOverDerivation) {
  SweepPlan plan;
  plan.base = small_base();
  plan.axes.push_back(parse_axis("run.seed=100,200"));
  const auto runs = expand_grid(plan);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].scenario.seed, 100u);
  EXPECT_EQ(runs[1].scenario.seed, 200u);
}

TEST(ExpandGridTest, KindOverrideRescopesKeys) {
  SweepPlan plan;
  // A dcm base emits dcm-only keys (headroom, online_estimation, models);
  // sweeping the controller kind must drop them for the non-dcm points
  // instead of tripping the strict check.
  plan.base = Scenario::parse(
      "[workload]\nkind=rubbos\nusers=40\n"
      "[controller]\nkind=dcm\nheadroom=1.5\n"
      "[run]\nduration=20\nwarmup=5\n");
  plan.axes.push_back(parse_axis("controller.kind=dcm,ec2,none"));
  const auto runs = expand_grid(plan);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].scenario.controller.kind, ControllerDecl::Kind::kDcm);
  EXPECT_DOUBLE_EQ(runs[0].scenario.controller.headroom, 1.5);
  EXPECT_EQ(runs[1].scenario.controller.kind, ControllerDecl::Kind::kEc2);
  EXPECT_EQ(runs[2].scenario.controller.kind, ControllerDecl::Kind::kNone);
}

TEST(ExpandGridTest, TypoOverrideStillThrows) {
  SweepPlan plan;
  plan.base = small_base();
  plan.axes.push_back(parse_axis("workload.usres=40,60"));
  EXPECT_THROW(expand_grid(plan), std::runtime_error);
}

}  // namespace
}  // namespace dcm::scenario
