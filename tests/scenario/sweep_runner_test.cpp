// SweepRunner determinism contract: merged results are bit-identical
// regardless of worker-thread count (and therefore completion order), and a
// failing run surfaces as an exception after the pool drains instead of a
// partial result set.
#include <gtest/gtest.h>

#include "scenario/registry.h"
#include "scenario/result_writer.h"
#include "scenario/sweep.h"

namespace dcm::scenario {
namespace {

SweepPlan small_plan() {
  SweepPlan plan;
  plan.base = Scenario::parse(
      "[workload]\nkind=rubbos\nusers=40\n"
      "[controller]\nkind=ec2\n"
      "[run]\nduration=25\nwarmup=5\nseed=13\n");
  plan.axes.push_back(parse_axis("workload.users=40,70,100"));
  plan.axes.push_back(parse_axis("controller.kind=none,ec2"));
  return plan;
}

TEST(SweepRunnerTest, ResultsArriveInRunIndexOrder) {
  const auto runs = SweepRunner(small_plan(), /*jobs=*/2).run();
  ASSERT_EQ(runs.size(), 6u);
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);
    EXPECT_GT(runs[i].result.completed, 0u);
  }
}

TEST(SweepRunnerTest, DigestIsInvariantAcrossThreadCounts) {
  const uint64_t serial = sweep_digest(SweepRunner(small_plan(), /*jobs=*/1).run());
  const uint64_t parallel4 = sweep_digest(SweepRunner(small_plan(), /*jobs=*/4).run());
  const uint64_t parallel7 = sweep_digest(SweepRunner(small_plan(), /*jobs=*/7).run());
  EXPECT_EQ(serial, parallel4)
      << "sweep digest diverged between --jobs 1 and --jobs 4 — a run is "
         "reading shared mutable state, or the merge depends on completion order";
  EXPECT_EQ(serial, parallel7);
}

TEST(SweepRunnerTest, PairedSeedPolicyGivesEveryRunTheSameRootSeed) {
  SweepPlan plan = small_plan();
  plan.seed_policy = SeedPolicy::kFixed;
  const auto runs = SweepRunner(std::move(plan), /*jobs=*/2).run();
  for (const auto& run : runs) {
    EXPECT_EQ(run.scenario.seed, 13u);
  }
  // Same workload+seed under none vs ec2: the closed-loop client stream is
  // identical, so completed counts only diverge once the controller acts.
  ASSERT_EQ(runs.size(), 6u);
}

TEST(SweepRunnerTest, FailingRunRethrowsAfterDrain) {
  SweepPlan plan;
  plan.base = Scenario::parse(
      "[workload]\nkind=trace\ntrace=large-variation\npeak_users=100\n"
      "[run]\nduration=10\nwarmup=2\n");
  // The second point names a nonexistent trace CSV. Plan expansion only
  // stores the string; resolution happens inside the worker when the
  // experiment is built, so the failure must surface from run().
  plan.axes.push_back(parse_axis("workload.trace=large-variation,/no/such/file.csv"));
  SweepRunner runner(std::move(plan), /*jobs=*/2);
  ASSERT_EQ(runner.planned().size(), 2u);  // expansion itself is fine
  EXPECT_THROW(runner.run(), std::runtime_error);
}

TEST(SweepRunnerTest, JobsZeroUsesHardwareConcurrency) {
  SweepRunner runner(small_plan(), /*jobs=*/0);
  EXPECT_GE(runner.jobs(), 1);
}

}  // namespace
}  // namespace dcm::scenario
