#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include "scenario/registry.h"

namespace dcm::scenario {
namespace {

TEST(ScenarioTest, DefaultsMatchConfigLoaderDefaults) {
  const Scenario scenario = Scenario::parse("");
  const auto experiment = scenario.experiment();
  EXPECT_EQ(experiment.hardware.app, 1);
  EXPECT_EQ(experiment.soft.db_connections, 80);
  EXPECT_EQ(experiment.workload.kind, core::WorkloadSpec::Kind::kRubbosClients);
  EXPECT_EQ(experiment.controller.kind, core::ControllerSpec::Kind::kNone);
  EXPECT_DOUBLE_EQ(experiment.duration_seconds, 300.0);
  EXPECT_EQ(experiment.seed, 1u);
}

TEST(ScenarioTest, ParseEmitParseIsIdentity) {
  const std::string text =
      "[scenario]\nname = t\nsummary = roundtrip probe\n"
      "[hardware]\nweb=1\napp=2\ndb=2\n"
      "[soft]\napp_threads=20\ndb_connections=18\n"
      "[workload]\nkind=trace\ntrace=big-spike\npeak_users=200\nthink_seconds=1.5\n"
      "[controller]\nkind=dcm\nheadroom=1.25\nsla_rt=0.8\npredictive=true\n"
      "[run]\nduration=120\nwarmup=10\nmax_vms=6\nseed=42\n";
  const Scenario first = Scenario::parse(text);
  const Scenario second = Scenario::parse(first.to_text());
  EXPECT_TRUE(first == second);
  // Canonical emission is a fixed point.
  EXPECT_EQ(first.to_text(), second.to_text());
  // And the fields survived.
  EXPECT_EQ(second.name, "t");
  EXPECT_EQ(second.hardware.app, 2);
  EXPECT_EQ(second.workload.kind, WorkloadDecl::Kind::kTrace);
  EXPECT_EQ(second.workload.trace, "big-spike");
  EXPECT_DOUBLE_EQ(second.workload.think_seconds, 1.5);
  EXPECT_DOUBLE_EQ(second.controller.headroom, 1.25);
  EXPECT_TRUE(second.controller.predictive);
  EXPECT_EQ(second.seed, 42u);
}

TEST(ScenarioTest, UnknownSectionAndKeyAreRejected) {
  EXPECT_THROW(Scenario::parse("[contorller]\nkind=dcm\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkidn=dcm\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[workload]\nseed=9\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("toplevel=1\n"), std::runtime_error);
}

TEST(ScenarioTest, KindScopesWhichKeysApply) {
  // DCM-only keys under ec2 are typos, not silently-ignored extras.
  EXPECT_THROW(Scenario::parse("[controller]\nkind=ec2\nheadroom=1.5\n"),
               std::runtime_error);
  // Controller tunables without a controller are dead config.
  EXPECT_THROW(Scenario::parse("[controller]\nscale_out_util=0.7\n"), std::runtime_error);
  // Trace keys under a closed-loop workload are dead config.
  EXPECT_THROW(Scenario::parse("[workload]\nkind=rubbos\ntrace=big-spike\n"),
               std::runtime_error);
  // jmeter has no think time.
  EXPECT_THROW(Scenario::parse("[workload]\nkind=jmeter\nthink_seconds=2\n"),
               std::runtime_error);
  // The same keys under the right kinds are fine.
  EXPECT_NO_THROW(Scenario::parse("[controller]\nkind=dcm\nheadroom=1.5\n"));
  EXPECT_NO_THROW(Scenario::parse("[workload]\nkind=trace\ntrace=big-spike\n"));
}

TEST(ScenarioTest, UnknownKindsThrow) {
  EXPECT_THROW(Scenario::parse("[workload]\nkind=weird\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=weird\n"), std::runtime_error);
}

TEST(ScenarioTest, ModelTriplesAreValidatedAndNormalized) {
  const Scenario scenario =
      Scenario::parse("[controller]\nkind=dcm\napp_model = 2.84e-2, 1e-4, 7.09e-7\n");
  // Canonical spelling: shortest round-trip form, no spaces.
  EXPECT_EQ(scenario.controller.app_model.find(' '), std::string::npos);
  // Normalization is a fixed point through the round trip, and the values
  // survive exactly into the runnable config.
  EXPECT_TRUE(Scenario::parse(scenario.to_text()) == scenario);
  const auto experiment = scenario.experiment();
  EXPECT_DOUBLE_EQ(experiment.controller.dcm.app_tier_model.params.s0, 2.84e-2);
  EXPECT_DOUBLE_EQ(experiment.controller.dcm.app_tier_model.params.alpha, 1e-4);
  EXPECT_DOUBLE_EQ(experiment.controller.dcm.app_tier_model.params.beta, 7.09e-7);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=dcm\napp_model = 1,2\n"),
               std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=dcm\ndb_model = a,b,c\n"),
               std::runtime_error);
}

TEST(ScenarioTest, ExperimentTranslationGoesThroughConfigLoader) {
  const Scenario scenario = Scenario::parse(
      "[hardware]\napp=2\n"
      "[workload]\nkind=jmeter\nusers=64\n"
      "[controller]\nkind=ec2\nscale_out_util=0.7\n"
      "[run]\nduration=120\nseed=5\n");
  const auto experiment = scenario.experiment();
  EXPECT_EQ(experiment.hardware.app, 2);
  EXPECT_EQ(experiment.workload.kind, core::WorkloadSpec::Kind::kJmeter);
  EXPECT_EQ(experiment.workload.users, 64);
  EXPECT_EQ(experiment.controller.kind, core::ControllerSpec::Kind::kEc2AutoScale);
  EXPECT_DOUBLE_EQ(experiment.controller.policy.scale_out_util, 0.7);
  EXPECT_EQ(experiment.seed, 5u);
}

TEST(ScenarioTest, KeyAppliesFollowsDeclaredKinds) {
  Config config;
  config.set("controller", "kind", "dcm");
  EXPECT_TRUE(scenario_key_applies(config, "controller", "headroom"));
  config.set("controller", "kind", "ec2");
  EXPECT_FALSE(scenario_key_applies(config, "controller", "headroom"));
  EXPECT_TRUE(scenario_key_applies(config, "controller", "control_period"));
  config.set("controller", "kind", "none");
  EXPECT_FALSE(scenario_key_applies(config, "controller", "control_period"));
  EXPECT_TRUE(scenario_key_applies(config, "run", "seed"));
  EXPECT_FALSE(scenario_key_applies(config, "run", "sede"));
}

TEST(ScenarioTest, FaultAndResilienceVocabularyRoundTrips) {
  const std::string text =
      "[controller]\nkind=dcm\n"
      "[faults]\ncrash_mttf=90\nslowdown_mttf=120\nslowdown_factor=0.5\n"
      "telemetry_loss_mttf=200\nagent_silence_mttf=150\nagent_silence_duration=20\n"
      "[resilience]\nenabled=true\nclient_timeout=1.5\nclient_retries=3\n"
      "subrequest_timeout=0.5\nhealth_period=4\nwatchdog_periods=3\nmin_fit_r2=0.6\n";
  const Scenario first = Scenario::parse(text);
  EXPECT_DOUBLE_EQ(first.faults.crash_mttf, 90.0);
  EXPECT_DOUBLE_EQ(first.faults.slowdown_factor, 0.5);
  EXPECT_DOUBLE_EQ(first.faults.agent_silence_duration, 20.0);
  EXPECT_TRUE(first.resilience.enabled);
  EXPECT_DOUBLE_EQ(first.resilience.client_timeout, 1.5);
  EXPECT_EQ(first.resilience.client_retries, 3);
  EXPECT_EQ(first.resilience.watchdog_periods, 3);
  EXPECT_DOUBLE_EQ(first.resilience.min_fit_r2, 0.6);

  const Scenario second = Scenario::parse(first.to_text());
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.to_text(), second.to_text());

  // And the fields survive into the runnable config.
  const auto experiment = first.experiment();
  EXPECT_DOUBLE_EQ(experiment.faults.crash_mttf_seconds, 90.0);
  EXPECT_TRUE(experiment.resilience.enabled);
  EXPECT_EQ(experiment.resilience.client_retries, 3);
  EXPECT_EQ(experiment.resilience.watchdog_periods, 3);
}

TEST(ScenarioTest, ResilienceDetailKeysRequireEnabled) {
  // Detail keys without enabled=true are dead config, not silent extras.
  EXPECT_THROW(Scenario::parse("[resilience]\nclient_timeout=1.5\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[resilience]\nenabled=false\nclient_retries=3\n"),
               std::runtime_error);
  // The watchdog keys additionally require the dcm controller.
  EXPECT_THROW(Scenario::parse("[resilience]\nenabled=true\nwatchdog_periods=2\n"),
               std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=ec2\n"
                               "[resilience]\nenabled=true\nmin_fit_r2=0.5\n"),
               std::runtime_error);
  EXPECT_NO_THROW(Scenario::parse("[resilience]\nenabled=true\nclient_retries=3\n"));
  EXPECT_NO_THROW(Scenario::parse("[controller]\nkind=dcm\n"
                                  "[resilience]\nenabled=true\nwatchdog_periods=2\n"));
  // [faults] keys are always part of the vocabulary.
  EXPECT_NO_THROW(Scenario::parse("[faults]\ncrash_mttf=120\n"));
  EXPECT_THROW(Scenario::parse("[faults]\ncrash_mtff=120\n"), std::runtime_error);
}

TEST(ScenarioTest, TraceVocabularyRoundTrips) {
  const Scenario first = Scenario::parse("[trace]\nenabled=true\nrate=0.25\n");
  EXPECT_TRUE(first.trace.enabled);
  EXPECT_DOUBLE_EQ(first.trace.rate, 0.25);

  const Scenario second = Scenario::parse(first.to_text());
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.to_text(), second.to_text());

  const auto experiment = first.experiment();
  EXPECT_TRUE(experiment.trace.enabled);
  EXPECT_DOUBLE_EQ(experiment.trace.rate, 0.25);

  // Disabled tracing emits no [trace] section at all, so a default
  // scenario's canonical text is untouched by the feature.
  EXPECT_EQ(Scenario().to_text().find("[trace]"), std::string::npos);
  EXPECT_FALSE(Scenario().experiment().trace.enabled);
}

TEST(ScenarioTest, TraceDetailKeysRequireEnabled) {
  EXPECT_THROW(Scenario::parse("[trace]\nrate=0.5\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[trace]\nenabled=false\nrate=0.5\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[trace]\nenabled=true\nsample=0.5\n"), std::runtime_error);
  // Rate is a probability; reject anything outside [0, 1].
  EXPECT_THROW(Scenario::parse("[trace]\nenabled=true\nrate=1.5\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[trace]\nenabled=true\nrate=-0.1\n"), std::runtime_error);
  EXPECT_NO_THROW(Scenario::parse("[trace]\nenabled=true\n"));
  EXPECT_NO_THROW(Scenario::parse("[trace]\nenabled=true\nrate=1\n"));
}

TEST(ScenarioTest, KeyAppliesFollowsTraceGate) {
  Config config;
  EXPECT_TRUE(scenario_key_applies(config, "trace", "enabled"));
  EXPECT_FALSE(scenario_key_applies(config, "trace", "rate"));
  config.set("trace", "enabled", "true");
  EXPECT_TRUE(scenario_key_applies(config, "trace", "rate"));
}

TEST(ScenarioTest, KeyAppliesFollowsResilienceGate) {
  Config config;
  EXPECT_TRUE(scenario_key_applies(config, "faults", "crash_mttf"));
  EXPECT_TRUE(scenario_key_applies(config, "resilience", "enabled"));
  EXPECT_FALSE(scenario_key_applies(config, "resilience", "client_timeout"));
  config.set("resilience", "enabled", "true");
  EXPECT_TRUE(scenario_key_applies(config, "resilience", "client_timeout"));
  EXPECT_FALSE(scenario_key_applies(config, "resilience", "watchdog_periods"));
  config.set("controller", "kind", "dcm");
  EXPECT_TRUE(scenario_key_applies(config, "resilience", "watchdog_periods"));
}

TEST(RegistryTest, AllScenariosParseAndRoundTrip) {
  const auto names = scenario_names();
  ASSERT_FALSE(names.empty());
  for (const auto& name : names) {
    SCOPED_TRACE(name);
    const Scenario scenario = get_scenario(name);
    // The registered name is the scenario's own name.
    EXPECT_EQ(scenario.name, name);
    EXPECT_FALSE(scenario.summary.empty());
    // Registered text is strict-parseable and round-trips canonically.
    const Scenario reparsed = Scenario::parse(scenario.to_text());
    EXPECT_TRUE(reparsed == scenario);
  }
}

TEST(RegistryTest, ChaosResilienceScenarioArmsFaultsAndResilience) {
  const Scenario chaos = get_scenario("chaos-resilience");
  EXPECT_EQ(chaos.controller.kind, ControllerDecl::Kind::kDcm);
  EXPECT_TRUE(chaos.controller.online_estimation);
  EXPECT_TRUE(chaos.resilience.enabled);
  const auto experiment = chaos.experiment();
  EXPECT_TRUE(experiment.faults.any_enabled());
  EXPECT_TRUE(experiment.resilience.enabled);
  EXPECT_GT(experiment.faults.crash_mttf_seconds, 0.0);
  EXPECT_GT(experiment.faults.telemetry_loss_mttf_seconds, 0.0);
}

TEST(RegistryTest, TraceAttributionScenarioArmsFullTracing) {
  const Scenario scenario = get_scenario("trace-attribution");
  EXPECT_TRUE(scenario.trace.enabled);
  EXPECT_DOUBLE_EQ(scenario.trace.rate, 1.0);
  // Saturated app tier: far more users than app worker threads, so the
  // waterfall's dominant cause is the app tier's pool-queue wait.
  EXPECT_GT(scenario.workload.users, scenario.soft.app_threads);
  const auto experiment = scenario.experiment();
  EXPECT_TRUE(experiment.trace.enabled);
  EXPECT_DOUBLE_EQ(experiment.trace.rate, 1.0);
}

TEST(RegistryTest, UnknownNameThrowsWithKnownList) {
  EXPECT_FALSE(has_scenario("no-such-scenario"));
  try {
    get_scenario("no-such-scenario");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // The error should help: it lists the known names.
    EXPECT_NE(std::string(e.what()).find("fig5"), std::string::npos);
  }
}

TEST(RegistryTest, CanonicalScenariosMatchThePaperSetups) {
  const Scenario fig5 = get_scenario("fig5");
  EXPECT_EQ(fig5.workload.kind, WorkloadDecl::Kind::kTrace);
  EXPECT_EQ(fig5.workload.trace, "large-variation");
  EXPECT_EQ(fig5.soft.app_threads, 200);
  EXPECT_EQ(fig5.controller.kind, ControllerDecl::Kind::kDcm);
  EXPECT_DOUBLE_EQ(fig5.duration_seconds, 700.0);

  const Scenario ec2 = get_scenario("fig5-ec2");
  EXPECT_EQ(ec2.controller.kind, ControllerDecl::Kind::kEc2);
  // Paired comparison: identical deployment, workload and root seed.
  EXPECT_TRUE(ec2.hardware == fig5.hardware);
  EXPECT_TRUE(ec2.soft == fig5.soft);
  EXPECT_TRUE(ec2.workload == fig5.workload);
  EXPECT_EQ(ec2.seed, fig5.seed);

  const Scenario soft_only = get_scenario("ablation-soft-only");
  EXPECT_EQ(soft_only.max_vms, 1);

  const Scenario wrong = get_scenario("ablation-wrong-models");
  const auto experiment = wrong.experiment();
  // The wrong models put the optima near the default pools (≈200 / ≈160).
  EXPECT_NEAR(experiment.controller.dcm.app_tier_model.optimal_concurrency(), 200.0, 10.0);
  EXPECT_NEAR(experiment.controller.dcm.db_tier_model.optimal_concurrency(), 160.0, 10.0);
}

TEST(ScenarioTest, TopologyChain3IsCanonicalAsAnAbsentSection) {
  const Scenario scenario = Scenario::parse("");
  EXPECT_EQ(scenario.topology.kind, core::TopologySpec::Kind::kChain3);
  EXPECT_EQ(scenario.to_text().find("[topology]"), std::string::npos);
  // Spelling it out parses fine but canonicalizes away.
  const Scenario explicit_chain = Scenario::parse("[topology]\nkind = chain3\n");
  EXPECT_TRUE(explicit_chain == scenario);
}

TEST(ScenarioTest, TopologyChain4RoundTrips) {
  const Scenario scenario = Scenario::parse("[topology]\nkind = chain4\n");
  EXPECT_EQ(scenario.topology.kind, core::TopologySpec::Kind::kChain4);
  EXPECT_NE(scenario.to_text().find("kind = chain4"), std::string::npos);
  EXPECT_TRUE(Scenario::parse(scenario.to_text()) == scenario);
  // Graph-only keys are rejected under a chain kind.
  EXPECT_THROW(Scenario::parse("[topology]\nkind = chain4\nnodes = a:web\n"),
               std::runtime_error);
}

TEST(ScenarioTest, TopologyGraphRoundTripsCanonically) {
  const std::string text =
      "[topology]\n"
      "kind = graph\n"
      "nodes = apache:web, tomcat:app, memcache:cache, mysql:db\n"
      "edges = apache->tomcat:1, tomcat->memcache:1, tomcat->mysql:q:managed\n";
  const Scenario first = Scenario::parse(text);
  EXPECT_EQ(first.topology.kind, core::TopologySpec::Kind::kGraph);
  ASSERT_EQ(first.topology.nodes.size(), 4u);
  ASSERT_EQ(first.topology.edges.size(), 3u);
  EXPECT_TRUE(first.topology.edges[2].servlet_calls);
  EXPECT_TRUE(first.topology.edges[2].managed);

  const Scenario second = Scenario::parse(first.to_text());
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.to_text(), second.to_text());
}

TEST(ScenarioTest, TopologyGraphErrorsAreEager) {
  // Malformed spellings fail at parse.
  EXPECT_THROW(Scenario::parse("[topology]\nkind = ring\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[topology]\nkind = graph\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[topology]\nkind = graph\nnodes = apache\n"),
               std::runtime_error);
  EXPECT_THROW(
      Scenario::parse("[topology]\nkind = graph\nnodes = a:web, b:app\n"
                      "edges = a-b:1\n"),
      std::runtime_error);
  EXPECT_THROW(
      Scenario::parse("[topology]\nkind = graph\nnodes = a:web, b:app\n"
                      "edges = a->b:-2\n"),
      std::runtime_error);
  // Structural violations (a cycle) also fail at parse, not at run time:
  // from_config materializes the graph once to validate it.
  EXPECT_THROW(
      Scenario::parse("[topology]\nkind = graph\nnodes = a:web, b:app, c:db\n"
                      "edges = a->b:1, b->c:1, c->b:1\n"),
      std::runtime_error);
}

TEST(ScenarioTest, GraphScenariosInTheRegistryParse) {
  const Scenario diamond = get_scenario("diamond-cache");
  EXPECT_EQ(diamond.topology.kind, core::TopologySpec::Kind::kGraph);
  EXPECT_EQ(diamond.hardware.app, 3);
  EXPECT_TRUE(Scenario::parse(diamond.to_text()) == diamond);

  const Scenario fanout = get_scenario("fanout-join");
  ASSERT_EQ(fanout.topology.nodes.size(), 5u);
  EXPECT_TRUE(Scenario::parse(fanout.to_text()) == fanout);
}

TEST(ScenarioTest, PredictiveControllerVocabularyRoundTrips) {
  const Scenario scenario = Scenario::parse(
      "[controller]\nkind=predictive\nalpha=0.6\nbeta=0.2\nhorizon=4\nhysteresis=0.05\n");
  const Scenario again = Scenario::parse(scenario.to_text());
  EXPECT_TRUE(scenario == again);
  EXPECT_EQ(again.controller.kind, ControllerDecl::Kind::kPredictive);
  const auto experiment = scenario.experiment();
  EXPECT_EQ(experiment.controller.kind, core::ControllerSpec::Kind::kPredictive);
  EXPECT_DOUBLE_EQ(experiment.controller.predictive.level_alpha, 0.6);
  EXPECT_DOUBLE_EQ(experiment.controller.predictive.trend_beta, 0.2);
  EXPECT_EQ(experiment.controller.predictive.horizon_periods, 4);
  EXPECT_DOUBLE_EQ(experiment.controller.policy.hysteresis, 0.05);
}

TEST(ScenarioTest, QueueingAndPiControllerVocabularyRoundTrips) {
  const Scenario queueing = Scenario::parse("[controller]\nkind=queueing\ntarget_util=0.55\n");
  EXPECT_TRUE(queueing == Scenario::parse(queueing.to_text()));
  EXPECT_DOUBLE_EQ(queueing.experiment().controller.queueing.target_util, 0.55);

  const Scenario pi = Scenario::parse(
      "[controller]\nkind=pi\ntarget_util=0.65\nkp=3\nki=0.25\ndeadband=0.4\n");
  EXPECT_TRUE(pi == Scenario::parse(pi.to_text()));
  const auto experiment = pi.experiment();
  EXPECT_EQ(experiment.controller.kind, core::ControllerSpec::Kind::kPi);
  EXPECT_DOUBLE_EQ(experiment.controller.pi.target_util, 0.65);
  EXPECT_DOUBLE_EQ(experiment.controller.pi.kp, 3.0);
  EXPECT_DOUBLE_EQ(experiment.controller.pi.ki, 0.25);
  EXPECT_DOUBLE_EQ(experiment.controller.pi.deadband, 0.4);
}

TEST(ScenarioTest, ZooKindsScopeTheirTuningKeys) {
  // Family knobs only apply to their family.
  EXPECT_THROW(Scenario::parse("[controller]\nkind=queueing\nalpha=0.5\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=predictive\nkp=2\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=ec2\ntarget_util=0.6\n"), std::runtime_error);
  // The threshold-rule extensions stay with the threshold-rule families.
  EXPECT_THROW(Scenario::parse("[controller]\nkind=queueing\npredictive=true\n"),
               std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=pi\nsla_rt=0.5\n"), std::runtime_error);
  // The hysteresis gate belongs to every real controller, but not to none.
  EXPECT_NO_THROW(Scenario::parse("[controller]\nkind=ec2\nhysteresis=0.05\n"));
  EXPECT_NO_THROW(Scenario::parse("[controller]\nkind=pi\nhysteresis=0.05\n"));
  EXPECT_THROW(Scenario::parse("[controller]\nhysteresis=0.05\n"), std::runtime_error);
}

TEST(ScenarioTest, ZooTuningValuesAreValidated) {
  EXPECT_THROW(Scenario::parse("[controller]\nkind=ec2\nhysteresis=-0.1\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=predictive\nalpha=0\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=predictive\nbeta=1.5\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=predictive\nhorizon=0\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=queueing\ntarget_util=1\n"),
               std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=pi\nkp=-1\n"), std::runtime_error);
  EXPECT_THROW(Scenario::parse("[controller]\nkind=pi\ndeadband=-0.5\n"), std::runtime_error);
}

TEST(ScenarioTest, KeyAppliesFollowsZooKinds) {
  Config config;
  config.set("controller", "kind", "predictive");
  EXPECT_TRUE(scenario_key_applies(config, "controller", "alpha"));
  EXPECT_TRUE(scenario_key_applies(config, "controller", "hysteresis"));
  EXPECT_FALSE(scenario_key_applies(config, "controller", "kp"));
  EXPECT_FALSE(scenario_key_applies(config, "controller", "target_util"));
  config.set("controller", "kind", "pi");
  EXPECT_TRUE(scenario_key_applies(config, "controller", "kp"));
  EXPECT_TRUE(scenario_key_applies(config, "controller", "target_util"));
  EXPECT_FALSE(scenario_key_applies(config, "controller", "alpha"));
  config.set("controller", "kind", "queueing");
  EXPECT_TRUE(scenario_key_applies(config, "controller", "target_util"));
  EXPECT_FALSE(scenario_key_applies(config, "controller", "predictive"));
}

}  // namespace
}  // namespace dcm::scenario
