// Digest-equality regression against the registry's pinned values.
//
// Each scenario in the macro benchmark suite (plus the reproduction figures)
// is run end to end and its result_digest compared to the value committed in
// the registry. This is the test that makes hot-path "optimisations" honest:
// the request-slab/arena refactor, the CPU-scheduler batching, and every
// future event-loop change must reproduce the pre-refactor trajectories bit
// for bit or fail here by name.
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.h"
#include "scenario/registry.h"
#include "scenario/result_writer.h"

namespace dcm::scenario {
namespace {

class RegistryDigestTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RegistryDigestTest, CanonicalRunMatchesPinnedDigest) {
  const std::string name = GetParam();
  const auto expected = expected_result_digest(name);
  ASSERT_TRUE(expected.has_value()) << name << " has no pinned digest";
  const core::ExperimentResult result =
      core::run_experiment(get_scenario(name).experiment());
  EXPECT_EQ(result_digest(result), *expected)
      << name << ": trajectory diverged from the registry's pinned digest";
}

INSTANTIATE_TEST_SUITE_P(
    MacroSuite, RegistryDigestTest,
    ::testing::Values("quickstart", "fig2b", "fig4a", "fig4b", "fig5",
                      "fig5-ec2", "chaos-resilience", "trace-attribution"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string n = info.param;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace dcm::scenario
