// Digest-equality regression against the registry's pinned values.
//
// Every registered scenario is run end to end and its result_digest compared
// to the value committed in the registry. This is the test that makes both
// hot-path "optimisations" and topology refactors honest: the
// request-slab/arena refactor, the CPU-scheduler batching, the service-graph
// routing rewrite, and every future event-loop change must reproduce the
// pre-refactor trajectories bit for bit or fail here by name.
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.h"
#include "scenario/registry.h"
#include "scenario/result_writer.h"

namespace dcm::scenario {
namespace {

class RegistryDigestTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryDigestTest, CanonicalRunMatchesPinnedDigest) {
  const std::string& name = GetParam();
  const auto expected = expected_result_digest(name);
  ASSERT_TRUE(expected.has_value()) << name << " has no pinned digest";
  const core::ExperimentResult result =
      core::run_experiment(get_scenario(name).experiment());
  EXPECT_EQ(result_digest(result), *expected)
      << name << ": trajectory diverged from the registry's pinned digest";
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, RegistryDigestTest, ::testing::ValuesIn(scenario_names()),
    [](const ::testing::TestParamInfo<std::string>& param) {
      std::string test_name = param.param;
      for (char& c : test_name) {
        if (c == '-') c = '_';
      }
      return test_name;
    });

}  // namespace
}  // namespace dcm::scenario
