#include "model/bottleneck.h"

#include <gtest/gtest.h>

namespace dcm::model {
namespace {

std::vector<TierDemand> paper_example() {
  // Sec. III-A: one HTTP request → 1 Apache visit, 1 Tomcat visit, 2 MySQL
  // queries. Demands chosen so Tomcat is the bottleneck (as in 1/1/1).
  return {
      {"apache", 1.0, 1.0e-3, 1, 1.0},
      {"tomcat", 1.0, 2.84e-2, 1, 1.0},
      {"mysql", 2.0, 7.19e-3, 1, 1.0},
  };
}

TEST(BottleneckTest, IdentifiesLongestDemandTier) {
  const auto report = analyze_bottleneck(paper_example());
  EXPECT_EQ(report.bottleneck_tier, 1);  // tomcat: 28.4ms > 2·7.19ms > 1ms
}

TEST(BottleneckTest, MaxThroughputIsEq3) {
  const auto report = analyze_bottleneck(paper_example());
  EXPECT_NEAR(report.max_throughput, 1.0 / 2.84e-2, 1e-9);
}

TEST(BottleneckTest, AddingServersShiftsBottleneck) {
  auto tiers = paper_example();
  tiers[1].servers = 2;  // 1/2/1: tomcat demand halves per Eq. 4
  const auto report = analyze_bottleneck(tiers);
  EXPECT_EQ(report.bottleneck_tier, 2);  // mysql becomes the constraint
  EXPECT_NEAR(report.max_throughput, 1.0 / (2.0 * 7.19e-3), 1e-9);
}

TEST(BottleneckTest, GammaCorrectsLinearScaling) {
  auto tiers = paper_example();
  tiers[1].servers = 2;
  tiers[1].gamma = 0.8;  // imperfect scaling
  const auto report = analyze_bottleneck(tiers);
  EXPECT_NEAR(report.tier_capacity[1], 0.8 * 2.0 / 2.84e-2, 1e-9);
}

TEST(BottleneckTest, UtilizationAtPeak) {
  const auto report = analyze_bottleneck(paper_example());
  EXPECT_NEAR(report.utilization_at_peak[1], 1.0, 1e-12);  // bottleneck at 100%
  // Other tiers below 100%.
  EXPECT_LT(report.utilization_at_peak[0], 0.1);
  EXPECT_LT(report.utilization_at_peak[2], 1.0);
}

TEST(BottleneckTest, UtilizationLawInverses) {
  const TierDemand tier{"mysql", 2.0, 7.19e-3, 1, 1.0};
  const double x = throughput_from_utilization(tier, 0.5);
  EXPECT_NEAR(utilization_at_throughput(tier, x), 0.5, 1e-12);
}

TEST(BottleneckTest, ForcedFlowLawScalesWithVisitRatio) {
  const TierDemand v1{"db", 1.0, 0.01, 1, 1.0};
  const TierDemand v3{"db", 3.0, 0.01, 1, 1.0};
  EXPECT_NEAR(throughput_from_utilization(v1, 1.0), 3.0 * throughput_from_utilization(v3, 1.0),
              1e-9);
}

TEST(BottleneckTest, SingleTierSystem) {
  const auto report = analyze_bottleneck({{"only", 1.0, 0.02, 1, 1.0}});
  EXPECT_EQ(report.bottleneck_tier, 0);
  EXPECT_NEAR(report.max_throughput, 50.0, 1e-9);
}

}  // namespace
}  // namespace dcm::model
