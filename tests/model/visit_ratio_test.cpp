#include "model/visit_ratio.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/topologies.h"
#include "workload/closed_loop.h"

namespace dcm::model {
namespace {

TEST(VisitRatioPropagationTest, ChainDegeneratesToPaperVector) {
  // web --1--> app --3.5--> db is the paper's V = {1, 1, q}.
  const auto ratios = propagate_visit_ratios(3, {{0, 1, 1.0}, {1, 2, 3.5}});
  ASSERT_EQ(ratios.size(), 3u);
  EXPECT_DOUBLE_EQ(ratios[0], 1.0);
  EXPECT_DOUBLE_EQ(ratios[1], 1.0);
  EXPECT_DOUBLE_EQ(ratios[2], 3.5);
}

TEST(VisitRatioPropagationTest, DiamondSumsPathProducts) {
  // 0 → 1 (×2) and 0 → 2 (×1); both call 3: V_3 = 2·3 + 1·0.5 = 6.5.
  const auto ratios = propagate_visit_ratios(
      4, {{0, 1, 2.0}, {0, 2, 1.0}, {1, 3, 3.0}, {2, 3, 0.5}});
  EXPECT_DOUBLE_EQ(ratios[1], 2.0);
  EXPECT_DOUBLE_EQ(ratios[2], 1.0);
  EXPECT_DOUBLE_EQ(ratios[3], 6.5);
}

TEST(VisitRatioPropagationTest, FanOutWithDeepMultiplication) {
  // 0 → 1 (×1); 1 fans out to 2 (×1), 3 (×2), 4 (×3); 3 → 4 adds 2·0.5.
  const auto ratios = propagate_visit_ratios(
      5, {{0, 1, 1.0}, {1, 2, 1.0}, {1, 3, 2.0}, {1, 4, 3.0}, {3, 4, 0.5}});
  EXPECT_DOUBLE_EQ(ratios[2], 1.0);
  EXPECT_DOUBLE_EQ(ratios[3], 2.0);
  EXPECT_DOUBLE_EQ(ratios[4], 4.0);
}

TEST(VisitRatioPropagationTest, UnreachableNodeKeepsZero) {
  const auto ratios = propagate_visit_ratios(3, {{0, 1, 1.0}});
  EXPECT_DOUBLE_EQ(ratios[1], 1.0);
  EXPECT_DOUBLE_EQ(ratios[2], 0.0);
}

TEST(VisitRatioPropagationTest, CycleIsRejectedByNodeId) {
  try {
    propagate_visit_ratios(3, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 1, 1.0}});
    FAIL() << "expected std::runtime_error for the 1↔2 cycle";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cycle"), std::string::npos) << what;
    EXPECT_NE(what.find('1'), std::string::npos) << what;
    EXPECT_NE(what.find('2'), std::string::npos) << what;
  }
}

TEST(VisitRatioPropagationTest, BadEdgesAreRejected) {
  EXPECT_THROW(propagate_visit_ratios(2, {{0, 5, 1.0}}), std::runtime_error);
  EXPECT_THROW(propagate_visit_ratios(2, {{-1, 1, 1.0}}), std::runtime_error);
  EXPECT_THROW(propagate_visit_ratios(2, {{0, 1, -2.0}}), std::runtime_error);
}

TEST(VisitRatioEstimatorTest, NoTrafficIsZero) {
  VisitRatioEstimator estimator(3);
  EXPECT_DOUBLE_EQ(estimator.visit_ratio(0), 0.0);
  EXPECT_DOUBLE_EQ(estimator.visit_ratio(2), 0.0);
  EXPECT_EQ(estimator.observations(), 0u);
}

TEST(VisitRatioEstimatorTest, ExactRatiosFromSyntheticFeed) {
  VisitRatioEstimator estimator(3);
  for (int i = 0; i < 10; ++i) {
    estimator.observe(0, 50.0);
    estimator.observe(1, 50.0);
    estimator.observe(2, 100.0);
  }
  EXPECT_DOUBLE_EQ(estimator.visit_ratio(0), 1.0);
  EXPECT_DOUBLE_EQ(estimator.visit_ratio(1), 1.0);
  EXPECT_DOUBLE_EQ(estimator.visit_ratio(2), 2.0);
  EXPECT_EQ(estimator.observations(), 10u);
}

TEST(VisitRatioEstimatorTest, MultiServerTiersSumPerSecond) {
  // Two DB servers each at 60 qps vs one front server at 60 rps → V=2.
  VisitRatioEstimator estimator(2);
  estimator.observe(0, 60.0);
  estimator.observe(1, 60.0);
  estimator.observe(1, 60.0);
  EXPECT_DOUBLE_EQ(estimator.visit_ratio(1), 2.0);
}

TEST(VisitRatioEstimatorTest, IgnoresOutOfRangeAndNegative) {
  VisitRatioEstimator estimator(2);
  estimator.observe(5, 100.0);
  estimator.observe(0, -3.0);
  estimator.observe(0, 10.0);
  estimator.observe(1, 20.0);
  EXPECT_DOUBLE_EQ(estimator.visit_ratio(1), 2.0);
}

TEST(VisitRatioEstimatorTest, ResetClears) {
  VisitRatioEstimator estimator(2);
  estimator.observe(0, 10.0);
  estimator.reset();
  EXPECT_DOUBLE_EQ(estimator.visit_ratio(0), 0.0);
  EXPECT_EQ(estimator.observations(), 0u);
}

TEST(VisitRatioEstimatorTest, RecoversMixVisitRatioFromSimulation) {
  // End-to-end: measure V_db of the browse-only mix from real tier
  // completion counts, as the forced-flow law prescribes.
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80}));
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  auto generator = workload::make_rubbos_clients(engine, app, catalog, 100);
  generator->start();

  VisitRatioEstimator estimator(app.tier_count());
  std::vector<uint64_t> prev(app.tier_count(), 0);
  engine.schedule_periodic(sim::kNanosPerSecond, [&] {
    for (size_t i = 0; i < app.tier_count(); ++i) {
      const uint64_t now_completed = app.tier(i).completed();
      estimator.observe(i, static_cast<double>(now_completed - prev[i]));
      prev[i] = now_completed;
    }
  });
  engine.run_until(sim::from_seconds(120.0));

  EXPECT_NEAR(estimator.visit_ratio(1), 1.0, 0.03);
  EXPECT_NEAR(estimator.visit_ratio(2), catalog.mean_db_queries(), 0.1);
}

}  // namespace
}  // namespace dcm::model
