#include "model/trainer.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dcm::model {
namespace {

const ServiceTimeParams kMysql{7.19e-3, 5.04e-3, 1.65e-6};

std::vector<TrainingSample> synthetic_sweep(const ServiceTimeParams& truth, double gamma,
                                            int servers, double visit_ratio, double noise_cv,
                                            uint64_t seed) {
  ConcurrencyModel model{truth, gamma, servers, visit_ratio};
  Rng rng(seed);
  std::vector<TrainingSample> samples;
  for (int n = 1; n <= 160; n += 3) {
    const double x = model.throughput(n);
    const double noisy = noise_cv > 0 ? x * (1.0 + noise_cv * rng.normal()) : x;
    samples.push_back({static_cast<double>(n), std::max(0.0, noisy)});
  }
  return samples;
}

TEST(TrainerTest, NormalizedFitRecoversNbExactData) {
  const auto samples = synthetic_sweep(kMysql, 1.0, 1, 2.0, 0.0, 1);
  const Trainer trainer(1, 2.0);
  const auto trained = trainer.fit_normalized(samples);
  EXPECT_GT(trained.r_squared, 0.9999);
  EXPECT_NEAR(trained.optimal_concurrency(), 36.1, 1.0);
}

TEST(TrainerTest, NormalizedFitHandlesGammaScaledData) {
  // Data generated with γ=4.45 (the paper's MySQL value): the normalized
  // fit absorbs γ into the parameters but N_b is unchanged.
  const auto samples = synthetic_sweep(kMysql, 4.45, 1, 2.0, 0.0, 2);
  const Trainer trainer(1, 2.0);
  const auto trained = trainer.fit_normalized(samples);
  EXPECT_GT(trained.r_squared, 0.9999);
  EXPECT_NEAR(trained.optimal_concurrency(), 36.1, 1.5);
}

TEST(TrainerTest, KnownS0FitRecoversGamma) {
  const auto samples = synthetic_sweep(kMysql, 4.45, 1, 2.0, 0.0, 3);
  const Trainer trainer(1, 2.0);
  const auto trained = trainer.fit_with_known_s0(kMysql.s0, samples);
  EXPECT_GT(trained.r_squared, 0.999);
  EXPECT_NEAR(trained.model.gamma, 4.45, 0.2);
  EXPECT_NEAR(trained.optimal_concurrency(), 36.1, 2.0);
}

TEST(TrainerTest, RobustToMeasurementNoise) {
  const auto samples = synthetic_sweep(kMysql, 1.0, 1, 2.0, 0.03, 4);
  const Trainer trainer(1, 2.0);
  const auto trained = trainer.fit_normalized(samples);
  // R² against *noisy* observations is bounded by the noise floor (most of
  // the sweep sits on Eq. 7's plateau), so judge the fit against the
  // noiseless truth curve instead: within 5% everywhere.
  const ConcurrencyModel truth{kMysql, 1.0, 1, 2.0};
  for (int n = 1; n <= 160; n += 10) {
    const double expected = truth.throughput(n);
    EXPECT_NEAR(trained.model.throughput(n), expected, expected * 0.05) << "n=" << n;
  }
  // The curve is flat near the knee, so allow generous recovery bounds.
  EXPECT_GT(trained.optimal_concurrency(), 15.0);
  EXPECT_LT(trained.optimal_concurrency(), 90.0);
}

TEST(TrainerTest, CarriesConfigurationIntoModel) {
  const auto samples = synthetic_sweep(kMysql, 1.0, 2, 2.0, 0.0, 5);
  const Trainer trainer(2, 2.0);
  const auto trained = trainer.fit_normalized(samples);
  EXPECT_EQ(trained.model.servers, 2);
  EXPECT_DOUBLE_EQ(trained.model.visit_ratio, 2.0);
  EXPECT_EQ(trained.samples, static_cast<int>(samples.size()));
}

TEST(TrainerTest, XmaxPredictionMatchesCurvePeak) {
  const auto samples = synthetic_sweep(kMysql, 1.0, 1, 2.0, 0.0, 6);
  const Trainer trainer(1, 2.0);
  const auto trained = trainer.fit_normalized(samples);
  double peak = 0.0;
  for (const auto& s : samples) peak = std::max(peak, s.throughput);
  EXPECT_NEAR(trained.max_throughput(), peak, peak * 0.02);
}

}  // namespace
}  // namespace dcm::model
