#include "model/concurrency_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcm::model {
namespace {

// The paper's Table I parameters are the canonical fixtures.
const ServiceTimeParams kTomcat{2.84e-2, 9.87e-3, 4.54e-5};
const ServiceTimeParams kMysql{7.19e-3, 5.04e-3, 1.65e-6};

TEST(ServiceTimeTest, Eq5ReducesToS0AtOneThread) {
  EXPECT_DOUBLE_EQ(inflated_service_time(kTomcat, 1.0), kTomcat.s0);
  EXPECT_DOUBLE_EQ(inflated_service_time(kMysql, 1.0), kMysql.s0);
}

TEST(ServiceTimeTest, Eq5GrowsMonotonically) {
  double prev = 0.0;
  for (int n = 1; n <= 100; ++n) {
    const double s = inflated_service_time(kTomcat, n);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(ServiceTimeTest, Eq6EffectiveTimeHasInteriorMinimum) {
  const double at_knee = effective_service_time(kTomcat, 20.0);
  EXPECT_LT(at_knee, effective_service_time(kTomcat, 1.0));
  EXPECT_LT(at_knee, effective_service_time(kTomcat, 100.0));
}

TEST(ServiceTimeTest, ThroughputIsReciprocalOfEffectiveTime) {
  for (const double n : {1.0, 10.0, 50.0}) {
    EXPECT_NEAR(server_throughput(kMysql, n) * effective_service_time(kMysql, n), 1.0, 1e-12);
  }
}

TEST(ConcurrencyModelTest, OptimalConcurrencyClosedForm) {
  ConcurrencyModel tomcat{kTomcat, 1.0, 1, 1.0};
  EXPECT_NEAR(tomcat.optimal_concurrency(), std::sqrt((kTomcat.s0 - kTomcat.alpha) / kTomcat.beta),
              1e-12);
  EXPECT_NEAR(tomcat.optimal_concurrency(), 20.2, 0.2);  // Table I: 20

  ConcurrencyModel mysql{kMysql, 1.0, 1, 2.0};
  EXPECT_NEAR(mysql.optimal_concurrency(), 36.1, 0.3);  // Table I: 36
}

TEST(ConcurrencyModelTest, IntegerOptimumMatchesContinuous) {
  ConcurrencyModel model{kTomcat, 1.0, 1, 1.0};
  const int nb = model.optimal_concurrency_int();
  EXPECT_NEAR(nb, model.optimal_concurrency(), 1.0);
  // It is a genuine argmax.
  EXPECT_GE(model.throughput(nb), model.throughput(nb - 1));
  EXPECT_GE(model.throughput(nb), model.throughput(nb + 1));
}

TEST(ConcurrencyModelTest, Eq8MatchesThroughputAtOptimum) {
  ConcurrencyModel model{kMysql, 1.0, 1, 2.0};
  EXPECT_NEAR(model.max_throughput(), model.throughput(model.optimal_concurrency()), 1e-9);
}

TEST(ConcurrencyModelTest, ThroughputScalesWithGammaAndServers) {
  ConcurrencyModel one{kMysql, 1.0, 1, 1.0};
  ConcurrencyModel three{kMysql, 1.0, 3, 1.0};
  ConcurrencyModel corrected{kMysql, 0.9, 3, 1.0};
  EXPECT_NEAR(three.throughput(36.0), 3.0 * one.throughput(36.0), 1e-9);
  EXPECT_NEAR(corrected.throughput(36.0), 2.7 * one.throughput(36.0), 1e-9);
}

TEST(ConcurrencyModelTest, VisitRatioDividesThroughput) {
  ConcurrencyModel v1{kMysql, 1.0, 1, 1.0};
  ConcurrencyModel v2{kMysql, 1.0, 1, 2.0};
  EXPECT_NEAR(v1.throughput(36.0), 2.0 * v2.throughput(36.0), 1e-9);
}

TEST(ConcurrencyModelTest, NbInvariantUnderGammaScaling) {
  // Scaling (S0, α, β) and γ by the same constant leaves N_b unchanged —
  // the identifiability property the normalized trainer relies on.
  const double c = 7.3;
  ConcurrencyModel scaled{{kMysql.s0 * c, kMysql.alpha * c, kMysql.beta * c}, c, 1, 2.0};
  ConcurrencyModel base{kMysql, 1.0, 1, 2.0};
  EXPECT_NEAR(scaled.optimal_concurrency(), base.optimal_concurrency(), 1e-9);
  EXPECT_NEAR(scaled.throughput(36.0), base.throughput(36.0), 1e-9);
}

TEST(ConcurrencyModelTest, DegenerateCurveFallsBackToOne) {
  // β = 0 (no crosstalk) ⇒ monotone curve, no finite optimum.
  ConcurrencyModel model{{0.01, 0.001, 0.0}, 1.0, 1, 1.0};
  EXPECT_DOUBLE_EQ(model.optimal_concurrency(), 1.0);
  // α ≥ S0 ⇒ same fallback.
  ConcurrencyModel model2{{0.01, 0.02, 1e-6}, 1.0, 1, 1.0};
  EXPECT_DOUBLE_EQ(model2.optimal_concurrency(), 1.0);
}

TEST(ParamsTest, ValidityChecks) {
  EXPECT_TRUE(kTomcat.valid());
  EXPECT_FALSE((ServiceTimeParams{0.0, 0.0, 0.0}).valid());
  EXPECT_FALSE((ServiceTimeParams{0.1, -0.1, 0.0}).valid());
}

}  // namespace
}  // namespace dcm::model
