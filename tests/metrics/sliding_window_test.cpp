#include "metrics/sliding_window.h"

#include <gtest/gtest.h>

namespace dcm::metrics {
namespace {

using sim::from_seconds;

TEST(SlidingWindowStatTest, EmptyWindowIsZero) {
  SlidingWindowStat w(from_seconds(10.0));
  EXPECT_DOUBLE_EQ(w.mean(from_seconds(100.0)), 0.0);
  EXPECT_DOUBLE_EQ(w.max(from_seconds(100.0)), 0.0);
  EXPECT_EQ(w.count(from_seconds(100.0)), 0u);
}

TEST(SlidingWindowStatTest, MeanOverRecentPoints) {
  SlidingWindowStat w(from_seconds(10.0));
  w.add(from_seconds(1.0), 2.0);
  w.add(from_seconds(2.0), 4.0);
  EXPECT_DOUBLE_EQ(w.mean(from_seconds(3.0)), 3.0);
  EXPECT_DOUBLE_EQ(w.max(from_seconds(3.0)), 4.0);
}

TEST(SlidingWindowStatTest, OldPointsEvicted) {
  SlidingWindowStat w(from_seconds(10.0));
  w.add(from_seconds(1.0), 100.0);
  w.add(from_seconds(9.0), 2.0);
  // At t=12, the t=1 point is outside (12-10=2 cutoff, 1 <= 2 evicted).
  EXPECT_DOUBLE_EQ(w.mean(from_seconds(12.0)), 2.0);
  EXPECT_EQ(w.count(from_seconds(12.0)), 1u);
}

TEST(SlidingWindowStatTest, AllEvictedReturnsZero) {
  SlidingWindowStat w(from_seconds(5.0));
  w.add(from_seconds(1.0), 7.0);
  EXPECT_DOUBLE_EQ(w.mean(from_seconds(100.0)), 0.0);
}

TEST(SlidingRateTest, CountsEventsPerSecond) {
  SlidingRate r(from_seconds(10.0));
  for (int i = 0; i < 50; ++i) r.add(from_seconds(0.1 * i));
  // 50 events in ~5 s, window 10 s → 5 events/s.
  EXPECT_NEAR(r.rate(from_seconds(5.0)), 5.0, 1e-9);
}

TEST(SlidingRateTest, RateDecaysAsEventsAge) {
  SlidingRate r(from_seconds(10.0));
  for (int i = 0; i < 10; ++i) r.add(from_seconds(i));
  EXPECT_NEAR(r.rate(from_seconds(9.0)), 1.0, 1e-9);
  // After 25 s everything is out of the window.
  EXPECT_DOUBLE_EQ(r.rate(from_seconds(25.0)), 0.0);
}

TEST(SlidingRateTest, WeightedEvents) {
  SlidingRate r(from_seconds(10.0));
  r.add(from_seconds(1.0), 5.0);
  r.add(from_seconds(2.0), 5.0);
  EXPECT_NEAR(r.rate(from_seconds(3.0)), 1.0, 1e-9);
}

}  // namespace
}  // namespace dcm::metrics
