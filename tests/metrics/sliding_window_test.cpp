#include "metrics/sliding_window.h"

#include <gtest/gtest.h>

namespace dcm::metrics {
namespace {

using sim::from_seconds;

TEST(SlidingWindowStatTest, EmptyWindowIsZero) {
  SlidingWindowStat w(from_seconds(10.0));
  EXPECT_DOUBLE_EQ(w.mean(from_seconds(100.0)), 0.0);
  EXPECT_DOUBLE_EQ(w.max(from_seconds(100.0)), 0.0);
  EXPECT_EQ(w.count(from_seconds(100.0)), 0u);
}

TEST(SlidingWindowStatTest, MeanOverRecentPoints) {
  SlidingWindowStat w(from_seconds(10.0));
  w.add(from_seconds(1.0), 2.0);
  w.add(from_seconds(2.0), 4.0);
  EXPECT_DOUBLE_EQ(w.mean(from_seconds(3.0)), 3.0);
  EXPECT_DOUBLE_EQ(w.max(from_seconds(3.0)), 4.0);
}

TEST(SlidingWindowStatTest, OldPointsEvicted) {
  SlidingWindowStat w(from_seconds(10.0));
  w.add(from_seconds(1.0), 100.0);
  w.add(from_seconds(9.0), 2.0);
  // At t=12, the t=1 point is outside (12-10=2 cutoff, 1 <= 2 evicted).
  EXPECT_DOUBLE_EQ(w.mean(from_seconds(12.0)), 2.0);
  EXPECT_EQ(w.count(from_seconds(12.0)), 1u);
}

TEST(SlidingWindowStatTest, AllEvictedReturnsZero) {
  SlidingWindowStat w(from_seconds(5.0));
  w.add(from_seconds(1.0), 7.0);
  EXPECT_DOUBLE_EQ(w.mean(from_seconds(100.0)), 0.0);
}

TEST(SlidingRateTest, CountsEventsPerSecond) {
  SlidingRate r(from_seconds(10.0));
  for (int i = 0; i < 50; ++i) r.add(from_seconds(0.1 * i));
  // 50 events in ~5 s, window 10 s → 5 events/s.
  EXPECT_NEAR(r.rate(from_seconds(5.0)), 5.0, 1e-9);
}

TEST(SlidingRateTest, RateDecaysAsEventsAge) {
  SlidingRate r(from_seconds(10.0));
  for (int i = 0; i < 10; ++i) r.add(from_seconds(i));
  EXPECT_NEAR(r.rate(from_seconds(9.0)), 1.0, 1e-9);
  // After 25 s everything is out of the window.
  EXPECT_DOUBLE_EQ(r.rate(from_seconds(25.0)), 0.0);
}

TEST(SlidingRateTest, WeightedEvents) {
  SlidingRate r(from_seconds(10.0));
  r.add(from_seconds(1.0), 5.0);
  r.add(from_seconds(2.0), 5.0);
  EXPECT_NEAR(r.rate(from_seconds(3.0)), 1.0, 1e-9);
}

// Both window types share one boundary convention: a sample sitting exactly
// on the trailing edge (timestamp == now - window) is OUT. "The last
// window seconds" means (now - window, now], never a closed interval —
// otherwise a sample is counted in window+1 distinct whole-second reads.
TEST(SlidingWindowStatTest, SampleExactlyOnWindowEdgeIsEvicted) {
  SlidingWindowStat w(from_seconds(10.0));
  w.add(from_seconds(2.0), 5.0);
  w.add(from_seconds(4.0), 7.0);
  // cutoff = 12 - 10 = 2: the t=2 sample is exactly on the edge → out.
  EXPECT_EQ(w.count(from_seconds(12.0)), 1u);
  EXPECT_DOUBLE_EQ(w.mean(from_seconds(12.0)), 7.0);
  // One tick earlier both are still in.
  SlidingWindowStat v(from_seconds(10.0));
  v.add(from_seconds(2.0), 5.0);
  v.add(from_seconds(4.0), 7.0);
  EXPECT_EQ(v.count(from_seconds(12.0) - 1), 2u);
}

TEST(SlidingRateTest, EventExactlyOnWindowEdgeIsEvicted) {
  SlidingRate r(from_seconds(10.0));
  r.add(from_seconds(2.0), 1.0);
  r.add(from_seconds(4.0), 1.0);
  EXPECT_NEAR(r.rate(from_seconds(12.0)), 0.1, 1e-12);  // only the t=4 event
  SlidingRate s(from_seconds(10.0));
  s.add(from_seconds(2.0), 1.0);
  s.add(from_seconds(4.0), 1.0);
  EXPECT_NEAR(s.rate(from_seconds(12.0) - 1), 0.2, 1e-12);
}

// Regression: the incremental sum accumulates floating-point residue as
// events are added and subtracted; once every event has aged out the rate
// must be exactly zero, not the leftover drift. (0.1 is not representable
// in binary, so thousands of add/subtract pairs leave a nonzero residue
// without the empty-window re-anchor in evict().)
TEST(SlidingRateTest, EmptyWindowReportsExactlyZeroAfterDrift) {
  SlidingRate r(from_seconds(1.0));
  for (int i = 0; i < 5000; ++i) {
    const sim::SimTime t = from_seconds(0.001 * i);
    r.add(t, 0.1);
    r.rate(t);  // interleave evictions so sum_ is incrementally adjusted
  }
  EXPECT_DOUBLE_EQ(r.rate(from_seconds(1000.0)), 0.0);
  // And the window refills cleanly from the re-anchored zero.
  r.add(from_seconds(2000.0), 3.0);
  EXPECT_DOUBLE_EQ(r.rate(from_seconds(2000.5)), 3.0);
}

}  // namespace
}  // namespace dcm::metrics
