#include "metrics/histogram.h"

#include <gtest/gtest.h>

namespace dcm::metrics {
namespace {

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h = Histogram::linear(0.0, 10.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, UniformFillQuantiles) {
  Histogram h = Histogram::linear(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.p50(), 50.0, 1.5);
  EXPECT_NEAR(h.p95(), 95.0, 1.5);
  EXPECT_NEAR(h.quantile(0.25), 25.0, 1.5);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram h = Histogram::linear(0.0, 10.0, 10);
  h.add(1.0, 99);
  h.add(9.0, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LT(h.p50(), 2.0);
  EXPECT_GT(h.p99(), 1.0);
}

TEST(HistogramTest, UnderflowAndOverflowClampToEdges) {
  Histogram h = Histogram::linear(1.0, 2.0, 4);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(HistogramTest, LogarithmicSpansDecades) {
  Histogram h = Histogram::logarithmic(1e-4, 100.0);
  h.add(0.001);
  h.add(0.01);
  h.add(0.1);
  h.add(1.0);
  EXPECT_EQ(h.count(), 4u);
  // Median between 0.01 and 0.1.
  const double p50 = h.p50();
  EXPECT_GT(p50, 0.005);
  EXPECT_LT(p50, 0.2);
}

TEST(HistogramTest, ResetClears) {
  Histogram h = Histogram::linear(0.0, 1.0, 4);
  h.add(0.5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.p95(), 0.0);
}

TEST(HistogramTest, QuantileZeroIsLowerEdgeOfFirstNonEmptyBucket) {
  Histogram h = Histogram::linear(0.0, 10.0, 10);
  h.add(5.5);  // bucket [5, 6)
  h.add(7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
}

TEST(HistogramTest, QuantileOneIsUpperEdgeOfLastNonEmptyBucket) {
  Histogram h = Histogram::linear(0.0, 10.0, 10);
  h.add(1.5);
  h.add(3.5);  // bucket [3, 4)
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(HistogramTest, AllMassInUnderflowClampsEveryQuantile) {
  Histogram h = Histogram::linear(1.0, 2.0, 4);
  h.add(-3.0, 10);
  // The underflow bucket is unbounded below; quantiles must clamp to the
  // range's lower edge, never interpolate into it.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(HistogramTest, AllMassInOverflowClampsEveryQuantile) {
  Histogram h = Histogram::linear(1.0, 2.0, 4);
  h.add(50.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(HistogramTest, SampleOnUpperRangeEdgeReportsExactlyTheEdge) {
  Histogram h = Histogram::linear(0.0, 1.0, 4);
  h.add(1.0);  // x == hi lands in overflow, which clamps to exactly hi
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(HistogramTest, EmptyHistogramEveryQuantileZero) {
  Histogram h = Histogram::logarithmic(1e-3, 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramTest, MonotoneQuantiles) {
  Histogram h = Histogram::logarithmic(1e-3, 10.0);
  for (int i = 1; i <= 1000; ++i) h.add(0.001 * i);
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace dcm::metrics
