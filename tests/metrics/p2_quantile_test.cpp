#include "metrics/p2_quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace dcm::metrics {
namespace {

double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const double idx = q * (xs.size() - 1);
  const auto lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - lo;
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

TEST(P2QuantileTest, NoSamplesIsZero) {
  P2Quantile q(0.95);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

TEST(P2QuantileTest, FewSamplesExact) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);  // exact median of {1,2,3}
}

TEST(P2QuantileTest, MedianOfUniformStream) {
  P2Quantile q(0.5);
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    q.add(x);
  }
  EXPECT_NEAR(q.value(), exact_quantile(xs, 0.5), 0.15);
}

TEST(P2QuantileTest, P95OfExponentialStream) {
  P2Quantile q(0.95);
  Rng rng(43);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential(1.0);
    xs.push_back(x);
    q.add(x);
  }
  const double exact = exact_quantile(xs, 0.95);
  EXPECT_NEAR(q.value(), exact, exact * 0.05);
}

TEST(P2QuantileTest, P99OfLognormalStream) {
  P2Quantile q(0.99);
  Rng rng(44);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal_mean_cv(0.1, 1.0);
    xs.push_back(x);
    q.add(x);
  }
  const double exact = exact_quantile(xs, 0.99);
  EXPECT_NEAR(q.value(), exact, exact * 0.15);
}

TEST(P2QuantileTest, CountTracksSamples) {
  P2Quantile q(0.9);
  for (int i = 0; i < 123; ++i) q.add(i);
  EXPECT_EQ(q.count(), 123u);
}

}  // namespace
}  // namespace dcm::metrics
