#include "metrics/p2_quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace dcm::metrics {
namespace {

double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const double idx = q * (xs.size() - 1);
  const auto lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - lo;
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

TEST(P2QuantileTest, NoSamplesIsZero) {
  P2Quantile q(0.95);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

TEST(P2QuantileTest, FewSamplesExact) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);  // exact median of {1,2,3}
}

TEST(P2QuantileTest, MedianOfUniformStream) {
  P2Quantile q(0.5);
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    xs.push_back(x);
    q.add(x);
  }
  EXPECT_NEAR(q.value(), exact_quantile(xs, 0.5), 0.15);
}

TEST(P2QuantileTest, P95OfExponentialStream) {
  P2Quantile q(0.95);
  Rng rng(43);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential(1.0);
    xs.push_back(x);
    q.add(x);
  }
  const double exact = exact_quantile(xs, 0.95);
  EXPECT_NEAR(q.value(), exact, exact * 0.05);
}

TEST(P2QuantileTest, P99OfLognormalStream) {
  P2Quantile q(0.99);
  Rng rng(44);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal_mean_cv(0.1, 1.0);
    xs.push_back(x);
    q.add(x);
  }
  const double exact = exact_quantile(xs, 0.99);
  EXPECT_NEAR(q.value(), exact, exact * 0.15);
}

TEST(P2QuantileTest, P99OfHeavyTailLognormalInterpolatesToDesiredRank) {
  // Heavier tail (cv = 2) than the stream above; the raw middle-marker
  // readout systematically understates this. The desired-rank interpolation
  // must stay within a bounded relative error of the exact quantile.
  P2Quantile q(0.99);
  Rng rng(45);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal_mean_cv(0.1, 2.0);
    xs.push_back(x);
    q.add(x);
  }
  const double exact = exact_quantile(xs, 0.99);
  EXPECT_NEAR(q.value(), exact, exact * 0.20);
}

TEST(P2QuantileTest, AdversarialSortedStreamStaysBounded) {
  // Monotone-increasing input is the classic P² adversary: every sample
  // lands in the last cell and drags the max marker up. The p95 estimate
  // must still interpolate near the desired rank, not collapse to a stale
  // middle marker.
  P2Quantile q(0.95);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    q.add(x);
  }
  const double exact = exact_quantile(xs, 0.95);  // 9499.05
  EXPECT_NEAR(q.value(), exact, exact * 0.10);
}

TEST(P2QuantileTest, TwoClusterStreamTracksUpperCluster) {
  // 90% of mass near 1ms, 10% near 100ms — a bimodal response-time shape
  // where p95 sits inside the upper cluster.
  P2Quantile q(0.95);
  Rng rng(46);
  std::vector<double> xs;
  for (int i = 0; i < 40000; ++i) {
    const double x = rng.bernoulli(0.1) ? rng.uniform(95.0, 105.0) : rng.uniform(0.5, 1.5);
    xs.push_back(x);
    q.add(x);
  }
  const double exact = exact_quantile(xs, 0.95);
  EXPECT_NEAR(q.value(), exact, exact * 0.25);
}

TEST(P2QuantileTest, CountTracksSamples) {
  P2Quantile q(0.9);
  for (int i = 0; i < 123; ++i) q.add(i);
  EXPECT_EQ(q.count(), 123u);
}

}  // namespace
}  // namespace dcm::metrics
