#include "metrics/welford.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcm::metrics {
namespace {

TEST(WelfordTest, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 0.0);
  EXPECT_DOUBLE_EQ(w.max(), 0.0);
}

TEST(WelfordTest, SingleSample) {
  Welford w;
  w.add(4.0);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 4.0);
  EXPECT_DOUBLE_EQ(w.max(), 4.0);
}

TEST(WelfordTest, KnownMoments) {
  Welford w;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(w.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
  EXPECT_DOUBLE_EQ(w.sum(), 40.0);
}

TEST(WelfordTest, MergeEqualsCombinedStream) {
  Welford all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3.0;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(WelfordTest, MergeWithEmptySides) {
  Welford a, b;
  a.add(1.0);
  a.merge(b);  // empty rhs
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // empty lhs
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(WelfordTest, ResetClears) {
  Welford w;
  w.add(10.0);
  w.reset();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(WelfordTest, NumericallyStableForLargeOffsets) {
  Welford w;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) w.add(x);
  EXPECT_NEAR(w.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(w.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace dcm::metrics
