#include "metrics/timeseries.h"

#include <gtest/gtest.h>

namespace dcm::metrics {
namespace {

using sim::from_seconds;
using sim::kNanosPerSecond;

TEST(TimeSeriesTest, BucketsByTime) {
  TimeSeries ts("test", kNanosPerSecond);
  ts.add(from_seconds(0.5), 1.0);
  ts.add(from_seconds(0.9), 3.0);
  ts.add(from_seconds(1.5), 10.0);
  const auto& buckets = ts.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].stat.mean(), 2.0);
  EXPECT_DOUBLE_EQ(buckets[1].stat.mean(), 10.0);
}

TEST(TimeSeriesTest, GapsLeaveEmptyBuckets) {
  TimeSeries ts("test", kNanosPerSecond);
  ts.add(from_seconds(0.0), 1.0);
  ts.add(from_seconds(3.5), 2.0);
  ASSERT_EQ(ts.buckets().size(), 4u);
  EXPECT_EQ(ts.buckets()[1].stat.count(), 0u);
  EXPECT_EQ(ts.buckets()[2].stat.count(), 0u);
}

TEST(TimeSeriesTest, MeanSeries) {
  TimeSeries ts("test", kNanosPerSecond);
  ts.add(from_seconds(0.1), 2.0);
  ts.add(from_seconds(0.2), 4.0);
  const auto series = ts.mean_series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].first, 0.0);
  EXPECT_DOUBLE_EQ(series[0].second, 3.0);
}

TEST(TimeSeriesTest, RateSeriesDividesByWidth) {
  TimeSeries ts("test", from_seconds(2.0));
  for (int i = 0; i < 10; ++i) ts.add(from_seconds(0.1 * i), 1.0);
  const auto series = ts.rate_series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].second, 5.0);  // 10 events / 2 s
}

TEST(TimeSeriesTest, MaxSeries) {
  TimeSeries ts("test", kNanosPerSecond);
  ts.add(from_seconds(0.1), 1.0);
  ts.add(from_seconds(0.2), 9.0);
  ts.add(from_seconds(1.5), 4.0);
  const auto series = ts.max_series();
  EXPECT_DOUBLE_EQ(series[0].second, 9.0);
  EXPECT_DOUBLE_EQ(series[1].second, 4.0);
}

TEST(TimeSeriesTest, OverallMergesAllBuckets) {
  TimeSeries ts("test", kNanosPerSecond);
  for (int i = 0; i < 10; ++i) ts.add(from_seconds(i), static_cast<double>(i));
  const Welford overall = ts.overall();
  EXPECT_EQ(overall.count(), 10u);
  EXPECT_DOUBLE_EQ(overall.mean(), 4.5);
}

TEST(TimeSeriesTest, NameAndWidthAccessors) {
  TimeSeries ts("throughput", from_seconds(5.0));
  EXPECT_EQ(ts.name(), "throughput");
  EXPECT_EQ(ts.bucket_width(), from_seconds(5.0));
}

}  // namespace
}  // namespace dcm::metrics
