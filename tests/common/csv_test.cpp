#include "common/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dcm {
namespace {

TEST(CsvTest, WriterProducesRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_header({"a", "b"});
  writer.write_row({std::vector<std::string>{"1", "2"}});
  writer.write_row(std::vector<double>{3.5, 4.0});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3.5,4\n");
}

TEST(CsvTest, ParseWithHeader) {
  const CsvTable table = parse_csv("x,y\n1,2\n3,4\n");
  EXPECT_EQ(table.header, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][0], "3");
}

TEST(CsvTest, ParseWithoutHeader) {
  const CsvTable table = parse_csv("1,2\n3,4\n", /*has_header=*/false);
  EXPECT_TRUE(table.header.empty());
  EXPECT_EQ(table.rows.size(), 2u);
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  const CsvTable table = parse_csv("# comment\nx,y\n\n1,2\n# more\n3,4\n");
  EXPECT_EQ(table.header[0], "x");
  EXPECT_EQ(table.rows.size(), 2u);
}

TEST(CsvTest, TrimsFieldWhitespace) {
  const CsvTable table = parse_csv("x, y\n 1 , 2 \n");
  EXPECT_EQ(table.header[1], "y");
  EXPECT_EQ(table.rows[0][0], "1");
}

TEST(CsvTest, ColumnLookup) {
  const CsvTable table = parse_csv("time,users\n0,5\n");
  EXPECT_EQ(table.column("users"), 1);
  EXPECT_EQ(table.column("absent"), -1);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/dcm_csv_test.csv";
  {
    CsvWriter writer(path);
    writer.write_header({"k", "v"});
    writer.write_row({std::vector<std::string>{"a", "1"}});
  }
  const CsvTable table = read_csv(path);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "a");
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/definitely/missing.csv"), std::runtime_error);
}

}  // namespace
}  // namespace dcm
