#include "common/table.h"

#include <gtest/gtest.h>

namespace dcm {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({std::vector<std::string>{"x", "1"}});
  table.add_row({std::vector<std::string>{"longer", "22"}});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, NumericRowsFormatted) {
  TextTable table({"a", "b"});
  table.add_row(std::vector<double>{1.5, 2.0}, 2);
  EXPECT_EQ(table.row_count(), 1u);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(FormatNumberTest, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(3.1400, 4), "3.14");
  EXPECT_EQ(format_number(0.5, 2), "0.5");
}

TEST(FormatNumberTest, RespectsPrecision) {
  EXPECT_EQ(format_number(1.23456, 2), "1.23");
  EXPECT_EQ(format_number(1.23456, 0), "1");
}

TEST(FormatNumberTest, NegativeNumbers) {
  EXPECT_EQ(format_number(-2.50, 2), "-2.5");
}

}  // namespace
}  // namespace dcm
