#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dcm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.03);
}

TEST(RngTest, LognormalMeanCvMatch) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal_mean_cv(2.0, 0.5);
    ASSERT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double cv = std::sqrt(sq / n - mean * mean) / mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(cv, 0.5, 0.02);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next_u64() == child.next_u64() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitMixExpandsDistinctValues) {
  uint64_t state = 0;
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(splitmix64(state));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace dcm
