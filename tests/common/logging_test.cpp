#include "common/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace dcm {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kTrace);
    set_log_sink([this](LogLevel level, const std::string& message) {
      captured_.emplace_back(level, message);
    });
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kInfo);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, FormatsPrintfStyle) {
  DCM_LOG_INFO("x=%d y=%s", 3, "abc");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "x=3 y=abc");
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
}

TEST_F(LoggingTest, LevelFiltersBelowThreshold) {
  set_log_level(LogLevel::kWarn);
  DCM_LOG_DEBUG("dropped");
  DCM_LOG_INFO("dropped too");
  DCM_LOG_WARN("kept");
  DCM_LOG_ERROR("kept too");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "kept");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  DCM_LOG_ERROR("nope");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace dcm
