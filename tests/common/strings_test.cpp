#include "common/strings.h"

#include <gtest/gtest.h>

namespace dcm {
namespace {

TEST(StringsTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, TrimStripsWhitespace) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("solid"), "solid");
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(parse_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_double(" -1e3 ").value(), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double("0").value(), 0.0);
}

TEST(StringsTest, ParseDoubleRejectsJunk) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
}

TEST(StringsTest, ParseIntValid) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int(" -7 ").value(), -7);
}

TEST(StringsTest, ParseIntRejectsJunk) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("x4").has_value());
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(starts_with("tomcat-vm1", "tomcat"));
  EXPECT_FALSE(starts_with("tom", "tomcat"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(str_format("%.2f", 1.5), "1.50");
  EXPECT_EQ(str_format("empty"), "empty");
}

}  // namespace
}  // namespace dcm
