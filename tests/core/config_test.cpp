#include "common/config.h"

#include <gtest/gtest.h>

#include "core/config_loader.h"

namespace dcm {
namespace {

TEST(ConfigTest, ParsesSectionsAndKeys) {
  const Config config = Config::parse(
      "[hardware]\n"
      "web = 2\n"
      "app=3\n"
      "\n"
      "[run]\n"
      "duration = 42.5\n");
  EXPECT_EQ(config.get_int("hardware", "web", 0), 2);
  EXPECT_EQ(config.get_int("hardware", "app", 0), 3);
  EXPECT_DOUBLE_EQ(config.get_double("run", "duration", 0.0), 42.5);
}

TEST(ConfigTest, CommentsAndWhitespace) {
  const Config config = Config::parse(
      "# full line comment\n"
      "[s]  \n"
      "key = value   ; trailing comment\n"
      "other = x # another\n");
  EXPECT_EQ(config.get_string("s", "key"), "value");
  EXPECT_EQ(config.get_string("s", "other"), "x");
}

TEST(ConfigTest, FallbacksForMissingKeys) {
  const Config config = Config::parse("[a]\nx = 1\n");
  EXPECT_EQ(config.get_int("a", "missing", 9), 9);
  EXPECT_EQ(config.get_string("nope", "x", "d"), "d");
  EXPECT_TRUE(config.get_bool("a", "missing", true));
  EXPECT_FALSE(config.has("a", "missing"));
  EXPECT_TRUE(config.has("a", "x"));
}

TEST(ConfigTest, BooleanSpellings) {
  const Config config = Config::parse(
      "[b]\nt1=true\nt2=Yes\nt3=ON\nt4=1\nf1=false\nf2=no\nf3=Off\nf4=0\n");
  for (const char* key : {"t1", "t2", "t3", "t4"}) {
    EXPECT_TRUE(config.get_bool("b", key, false)) << key;
  }
  for (const char* key : {"f1", "f2", "f3", "f4"}) {
    EXPECT_FALSE(config.get_bool("b", key, true)) << key;
  }
}

TEST(ConfigTest, MalformedInputsThrow) {
  EXPECT_THROW(Config::parse("[unclosed\nx=1\n"), std::runtime_error);
  EXPECT_THROW(Config::parse("[s]\nno_equals_here\n"), std::runtime_error);
  EXPECT_THROW(Config::parse("[s]\n= value\n"), std::runtime_error);
  const Config config = Config::parse("[s]\nx = notanumber\n");
  EXPECT_THROW(config.get_int("s", "x", 0), std::runtime_error);
  EXPECT_THROW(config.get_double("s", "x", 0.0), std::runtime_error);
  EXPECT_THROW(config.get_bool("s", "x", false), std::runtime_error);
}

TEST(ConfigTest, SetOverrides) {
  Config config = Config::parse("[s]\nx = 1\n");
  config.set("s", "x", "2");
  config.set("new", "y", "3");
  EXPECT_EQ(config.get_int("s", "x", 0), 2);
  EXPECT_EQ(config.get_int("new", "y", 0), 3);
}

TEST(ConfigLoaderTest, DefaultsWhenEmpty) {
  const auto experiment = core::experiment_from_config(Config::parse(""));
  EXPECT_EQ(experiment.hardware.app, 1);
  EXPECT_EQ(experiment.soft.db_connections, 80);
  EXPECT_EQ(experiment.workload.kind, core::WorkloadSpec::Kind::kRubbosClients);
  EXPECT_EQ(experiment.controller.kind, core::ControllerSpec::Kind::kNone);
  EXPECT_DOUBLE_EQ(experiment.duration_seconds, 300.0);
}

TEST(ConfigLoaderTest, FullExperimentTranslation) {
  const auto experiment = core::experiment_from_config(Config::parse(
      "[hardware]\nweb=1\napp=2\ndb=2\n"
      "[soft]\napp_threads=20\ndb_connections=18\n"
      "[workload]\nkind=jmeter\nusers=64\n"
      "[controller]\nkind=ec2\nscale_out_util=0.7\npredictive=true\nsla_rt=0.8\n"
      "[run]\nduration=120\nwarmup=10\nmax_vms=6\n"));
  EXPECT_EQ(experiment.hardware.app, 2);
  EXPECT_EQ(experiment.soft.app_threads, 20);
  EXPECT_EQ(experiment.workload.kind, core::WorkloadSpec::Kind::kJmeter);
  EXPECT_EQ(experiment.workload.users, 64);
  EXPECT_EQ(experiment.controller.kind, core::ControllerSpec::Kind::kEc2AutoScale);
  EXPECT_DOUBLE_EQ(experiment.controller.policy.scale_out_util, 0.7);
  EXPECT_TRUE(experiment.controller.policy.predictive);
  EXPECT_DOUBLE_EQ(experiment.controller.policy.scale_out_response_time, 0.8);
  EXPECT_EQ(experiment.max_vms_per_tier, 6);
}

TEST(ConfigLoaderTest, TaxonomyTraceByName) {
  const auto experiment = core::experiment_from_config(Config::parse(
      "[workload]\nkind=trace\ntrace=big-spike\npeak_users=200\n"));
  EXPECT_EQ(experiment.workload.kind, core::WorkloadSpec::Kind::kTrace);
  EXPECT_GE(experiment.workload.trace.max_users(), 170);
  EXPECT_LE(experiment.workload.trace.max_users(), 230);
}

TEST(ConfigLoaderTest, DcmControllerGetsReferenceModels) {
  const auto experiment =
      core::experiment_from_config(Config::parse("[controller]\nkind=dcm\nheadroom=1.5\n"));
  EXPECT_EQ(experiment.controller.kind, core::ControllerSpec::Kind::kDcm);
  EXPECT_DOUBLE_EQ(experiment.controller.dcm.stp_headroom, 1.5);
  EXPECT_NEAR(experiment.controller.dcm.db_tier_model.optimal_concurrency(), 36.0, 1.0);
}

TEST(ConfigLoaderTest, WorkloadSeedIsRejected) {
  // The two-seed split ([run] seed + [workload] seed) was unified into a
  // single root seed; the old key must fail loudly, not silently no-op.
  EXPECT_THROW(core::experiment_from_config(
                   Config::parse("[workload]\nkind=rubbos\nseed=9\n")),
               std::runtime_error);
}

TEST(ConfigLoaderTest, DcmModelOverridesParsed) {
  const auto experiment = core::experiment_from_config(Config::parse(
      "[controller]\nkind=dcm\napp_model = 2.84e-2, 1e-4, 7.09e-7\n"));
  EXPECT_DOUBLE_EQ(experiment.controller.dcm.app_tier_model.params.s0, 2.84e-2);
  EXPECT_DOUBLE_EQ(experiment.controller.dcm.app_tier_model.params.alpha, 1e-4);
  EXPECT_DOUBLE_EQ(experiment.controller.dcm.app_tier_model.params.beta, 7.09e-7);
  // db model untouched → reference N_b ≈ 36.
  EXPECT_NEAR(experiment.controller.dcm.db_tier_model.optimal_concurrency(), 36.0, 1.0);
  EXPECT_THROW(core::experiment_from_config(
                   Config::parse("[controller]\nkind=dcm\napp_model = 1,2\n")),
               std::runtime_error);
  EXPECT_THROW(core::experiment_from_config(
                   Config::parse("[controller]\nkind=dcm\ndb_model = a,b,c\n")),
               std::runtime_error);
}

TEST(ConfigTest, ToTextRoundTrips) {
  const Config config = Config::parse(
      "top = 1\n"
      "[b]\nz = 2\na = hello world\n"
      "[a]\nk = 0.5\n");
  const std::string text = config.to_text();
  // parse → emit → parse is identity...
  EXPECT_TRUE(Config::parse(text) == config);
  // ...and emit is a fixed point (canonical form).
  EXPECT_EQ(Config::parse(text).to_text(), text);
  // Sections and keys are emitted sorted, sectionless keys first.
  EXPECT_EQ(text,
            "top = 1\n"
            "\n[a]\nk = 0.5\n"
            "\n[b]\na = hello world\nz = 2\n");
}

TEST(ConfigLoaderTest, UnknownKindsThrow) {
  EXPECT_THROW(core::experiment_from_config(Config::parse("[workload]\nkind=weird\n")),
               std::runtime_error);
  EXPECT_THROW(core::experiment_from_config(Config::parse("[controller]\nkind=weird\n")),
               std::runtime_error);
  EXPECT_THROW(core::experiment_from_config(
                   Config::parse("[workload]\nkind=trace\ntrace=/no/such/file.csv\n")),
               std::runtime_error);
}

TEST(ConfigLoaderTest, ConfigDrivenRunExecutes) {
  const auto experiment = core::experiment_from_config(Config::parse(
      "[workload]\nkind=rubbos\nusers=50\n"
      "[run]\nduration=40\nwarmup=10\n"));
  const auto result = core::run_experiment(experiment);
  EXPECT_GT(result.completed, 100u);
  EXPECT_EQ(result.errors, 0u);
}

}  // namespace
}  // namespace dcm
