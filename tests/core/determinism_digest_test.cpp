// End-to-end determinism regression: the full experiment facade (engine +
// n-tier app + monitoring bus + workload + controller) must be a pure
// function of its seed. Two runs with the same seed must produce
// bit-identical traces — one stray wall-clock read, ambient random draw, or
// unordered-container iteration anywhere in the stack changes the digest.
//
// The digest is FNV-1a over the raw bit patterns of the completed-request
// trace: per-second response-time and throughput buckets (timestamps,
// counts, means, extrema), every per-tier timeline, and the controller's
// action log. It is intentionally exact (no tolerances): determinism is a
// bit-for-bit property.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string_view>

#include "core/experiment.h"

namespace dcm::core {
namespace {

class Fnv1a {
 public:
  void mix_bytes(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 1099511628211ull;
    }
  }
  void mix(uint64_t v) { mix_bytes(&v, sizeof(v)); }
  void mix(int64_t v) { mix(static_cast<uint64_t>(v)); }
  void mix(double v) { mix(std::bit_cast<uint64_t>(v)); }
  void mix(std::string_view s) { mix_bytes(s.data(), s.size()); }

  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

void mix_series(Fnv1a& h, const metrics::TimeSeries& series) {
  h.mix(static_cast<uint64_t>(series.buckets().size()));
  for (const auto& bucket : series.buckets()) {
    h.mix(bucket.start);
    h.mix(bucket.stat.count());
    h.mix(bucket.stat.mean());
    h.mix(bucket.stat.min());
    h.mix(bucket.stat.max());
  }
}

uint64_t trace_digest(const ExperimentResult& result) {
  Fnv1a h;
  h.mix(result.completed);
  h.mix(result.errors);
  mix_series(h, result.client.response_time_series());
  mix_series(h, result.client.throughput_series());
  for (const auto& tier : result.tiers) {
    h.mix(tier.name);
    mix_series(h, tier.provisioned_vms);
    mix_series(h, tier.cpu_util);
    mix_series(h, tier.concurrency);
  }
  h.mix(static_cast<uint64_t>(result.actions.size()));
  for (const auto& action : result.actions) {
    h.mix(action.time);
    h.mix(action.tier);
    h.mix(action.action);
    h.mix(action.detail);
  }
  return h.value();
}

uint64_t run_digest(uint64_t seed) {
  ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 100, 80};
  config.workload = WorkloadSpec::rubbos(250, /*think_s=*/1.0, seed);
  config.controller = ControllerSpec::ec2();
  config.duration_seconds = 45.0;
  config.warmup_seconds = 10.0;
  config.seed = seed;
  return trace_digest(run_experiment(config));
}

TEST(DeterminismDigestTest, SameSeedSameDigest) {
  const uint64_t first = run_digest(7);
  const uint64_t second = run_digest(7);
  EXPECT_EQ(first, second)
      << "same-seed replay diverged — something reads wall clocks, ambient "
         "randomness, or unordered iteration order";
  // Logged so digest stability can be compared across build types (the
  // value must match between Debug and Release binaries).
  RecordProperty("digest", std::to_string(first));
  std::printf("[ digest   ] %llu\n", static_cast<unsigned long long>(first));
}

TEST(DeterminismDigestTest, DifferentSeedDifferentDigest) {
  EXPECT_NE(run_digest(7), run_digest(8));
}

}  // namespace
}  // namespace dcm::core
