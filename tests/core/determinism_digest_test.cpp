// End-to-end determinism regression: the full experiment facade (engine +
// n-tier app + monitoring bus + workload + controller) must be a pure
// function of its seed. Two runs with the same seed must produce
// bit-identical traces — one stray wall-clock read, ambient random draw, or
// unordered-container iteration anywhere in the stack changes the digest.
//
// The digest is scenario::result_digest — FNV-1a over the raw bit patterns
// of the completed-request trace: per-second response-time and throughput
// buckets (timestamps, counts, means, extrema), every per-tier timeline, and
// the controller's action log. It is intentionally exact (no tolerances):
// determinism is a bit-for-bit property. The same digest backs the sweep
// runner's thread-count-invariance guarantee (see tests/scenario).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>

#include "core/experiment.h"
#include "scenario/result_writer.h"
#include "scenario/sweep.h"

namespace dcm::core {
namespace {

uint64_t run_digest(uint64_t seed) {
  ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 100, 80};
  config.workload = WorkloadSpec::rubbos(250, /*think_s=*/1.0);
  config.controller = ControllerSpec::ec2();
  config.duration_seconds = 45.0;
  config.warmup_seconds = 10.0;
  config.seed = seed;
  return scenario::result_digest(run_experiment(config));
}

TEST(DeterminismDigestTest, SameSeedSameDigest) {
  const uint64_t first = run_digest(7);
  const uint64_t second = run_digest(7);
  EXPECT_EQ(first, second)
      << "same-seed replay diverged — something reads wall clocks, ambient "
         "randomness, or unordered iteration order";
  // Logged so digest stability can be compared across build types (the
  // value must match between Debug and Release binaries).
  RecordProperty("digest", std::to_string(first));
  std::printf("[ digest   ] %llu\n", static_cast<unsigned long long>(first));
}

TEST(DeterminismDigestTest, DifferentSeedDifferentDigest) {
  EXPECT_NE(run_digest(7), run_digest(8));
}

// The sweep extension of the same property: a whole grid of experiments,
// hashed run-by-run in index order, replays bit-identically.
TEST(DeterminismDigestTest, SweepReplayIsBitIdentical) {
  scenario::SweepPlan plan;
  plan.base = scenario::Scenario::parse(
      "[workload]\nkind=rubbos\nusers=60\n"
      "[controller]\nkind=ec2\n"
      "[run]\nduration=20\nwarmup=5\nseed=7\n");
  plan.axes.push_back(scenario::parse_axis("workload.users=60,90"));
  const uint64_t first =
      scenario::sweep_digest(scenario::SweepRunner(plan, /*jobs=*/1).run());
  const uint64_t second =
      scenario::sweep_digest(scenario::SweepRunner(plan, /*jobs=*/2).run());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dcm::core
